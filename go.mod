module peak

go 1.22
