package peak

import (
	"reflect"
	"strings"
	"testing"
)

func TestFacadeBasics(t *testing.T) {
	if len(Benchmarks()) != 14 {
		t.Fatalf("benchmarks = %d, want 14", len(Benchmarks()))
	}
	names := BenchmarkNames()
	if len(names) != 14 || names[0] != "BZIP2" {
		t.Errorf("names = %v", names)
	}
	for _, n := range names {
		b, ok := BenchmarkByName(n)
		if !ok {
			t.Fatalf("BenchmarkByName(%s) failed", n)
		}
		if err := Validate(b); err != nil {
			t.Errorf("Validate(%s): %v", n, err)
		}
	}
	if _, ok := BenchmarkByName("NOPE"); ok {
		t.Error("ghost benchmark found")
	}
	if err := Validate(nil); err == nil {
		t.Error("Validate(nil) passed")
	}

	if SPARCII().Name != "sparc2" || PentiumIV().Name != "p4" {
		t.Error("machine constructors broken")
	}
	if m, ok := MachineByName("p4"); !ok || m.Name != "p4" {
		t.Error("MachineByName broken")
	}

	if O3().Count() != 38 || O0().Count() != 0 {
		t.Error("flag sets broken")
	}
	fs, err := ParseFlags("-fgcse -fstrict-aliasing")
	if err != nil || fs.Count() != 2 {
		t.Errorf("ParseFlags: %v, %v", fs, err)
	}
	if m, ok := ParseMethodName("RBR"); !ok || m != RBR {
		t.Error("ParseMethodName broken")
	}
	if CBR.String() != "CBR" || WHL.String() != "WHL" {
		t.Error("method constants broken")
	}
}

func TestFacadePipeline(t *testing.T) {
	// End-to-end through the public API on the cheapest benchmark.
	b, _ := BenchmarkByName("EQUAKE")
	m := SPARCII()
	prof, err := ProfileBenchmark(b, m)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	app := Consult(prof, &cfg)
	if app.Chosen() != CBR {
		t.Errorf("EQUAKE consultant chose %s, want CBR", app.Chosen())
	}
	res, err := TuneWithMethod(b, m, CBR, b.Train, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MethodUsed != CBR {
		t.Errorf("method used = %s", res.MethodUsed)
	}
	base, prog, err := Measure(b, b.Ref, m, O3())
	if err != nil {
		t.Fatal(err)
	}
	if prog <= base {
		t.Error("program cycles must include non-TS time")
	}
	tuned, _, err := Measure(b, b.Ref, m, res.Best)
	if err != nil {
		t.Fatal(err)
	}
	if Improvement(base, tuned) < -0.01 {
		t.Errorf("tuned version slower than -O3: %d vs %d", tuned, base)
	}
	if !strings.Contains(res.Best.String(), "-f") && res.Best != O3() {
		t.Errorf("odd flag rendering: %s", res.Best)
	}
}

// TestPoolDeterminism is the parallel-tuning acceptance test: a full tune
// of one floating-point and one integer workload must produce a TuneResult
// that is identical — Best flags, TuningCycles, Invocations and all other
// ledger fields — whether the candidate ratings run on one worker or
// eight. This is the bit-identity contract of internal/sched
// (per-job derived seeds + index-ordered reduction); see ARCHITECTURE.md.
func TestPoolDeterminism(t *testing.T) {
	for _, name := range []string{"SWIM", "MCF"} {
		b, ok := BenchmarkByName(name)
		if !ok {
			t.Fatalf("benchmark %s missing", name)
		}
		m := PentiumIV()
		serial, err := TuneBenchmarkOn(b, m, nil, NewPool(1))
		if err != nil {
			t.Fatalf("%s workers=1: %v", name, err)
		}
		parallel, err := TuneBenchmarkOn(b, m, nil, NewPool(8))
		if err != nil {
			t.Fatalf("%s workers=8: %v", name, err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("%s: workers=8 diverged from workers=1:\n  serial:   %+v\n  parallel: %+v",
				name, serial, parallel)
		}
		if serial.Invocations == 0 || serial.TuningCycles == 0 {
			t.Errorf("%s: empty ledger %+v", name, serial)
		}
	}
}
