// Package peak is the public facade of this repository: a reproduction of
//
//	Zhelong Pan and Rudolf Eigenmann,
//	"Rating Compiler Optimizations for Automatic Performance Tuning",
//	Supercomputing 2004 (SC'04).
//
// PEAK is an automatic performance tuning system. It partitions a program
// into tuning sections, rates differently-optimized code versions of each
// section with one of three context-fair rating methods — context-based
// (CBR), model-based (MBR) and re-execution-based (RBR) rating — and
// searches the compiler-flag space with Iterative Elimination to find the
// best flag combination per section.
//
// Because the original substrate (GCC 3.3, SPARC II and Pentium IV
// hardware, SPEC CPU 2000) is not reproducible from pure Go, this module
// implements the complete stack as a deterministic simulation: a two-level
// IR with an optimizing compiler exposing the 38 "-O3" flags, a
// cycle-cost execution engine with caches, branch prediction, instruction
// scheduling stalls and register pressure, and 14 workload kernels that
// mirror the tuning sections of the paper's Table 1. See DESIGN.md for the
// substitution map and EXPERIMENTS.md for paper-vs-measured results.
//
// # Quick start
//
//	b, _ := peak.BenchmarkByName("ART")
//	m := peak.PentiumIV()
//	res, err := peak.TuneBenchmark(b, m, nil)   // profile + consult + tune
//	fmt.Println(res.MethodUsed, res.Best)       // RBR, flags without strict-aliasing
//
// Lower-level building blocks (IR construction, compilation, simulation,
// individual raters) live in the internal packages and are exercised by
// the example programs under examples/.
package peak

import (
	"fmt"
	"io"

	"peak/internal/bench"
	"peak/internal/core"
	"peak/internal/experiments"
	"peak/internal/fault"
	"peak/internal/machine"
	"peak/internal/noise"
	"peak/internal/opt"
	"peak/internal/profiling"
	"peak/internal/sched"
	"peak/internal/sim"
	"peak/internal/trace"
	"peak/internal/vcache"
	"peak/internal/workloads"
)

// Re-exported core types. Method, Rating, Config and results keep their
// full documentation in the core package.
type (
	// Benchmark is a program with one tuning section plus train/ref
	// datasets.
	Benchmark = bench.Benchmark
	// Dataset drives the tuning section through one program run.
	Dataset = bench.Dataset
	// Machine is a simulated target description.
	Machine = machine.Machine
	// Method identifies a rating method (CBR, MBR, RBR, AVG, WHL).
	Method = core.Method
	// Rating is the (EVAL, VAR) pair of one rated version.
	Rating = core.Rating
	// Config holds the rating-process parameters.
	Config = core.Config
	// TuneResult reports a finished tuning process.
	TuneResult = core.TuneResult
	// Profile is the outcome of an offline profile run.
	Profile = profiling.Profile
	// Applicability is the Rating Approach Consultant's verdict.
	Applicability = core.Applicability
	// FlagSet is a set of enabled optimization flags.
	FlagSet = opt.FlagSet
	// ConsistencyRow is one row of the Table-1 consistency experiment.
	ConsistencyRow = core.ConsistencyRow
	// Fig7Entry is one bar group of the Figure-7 experiments.
	Fig7Entry = experiments.Fig7Entry
	// AdaptiveTuner tunes during production runs (the paper's §6 online
	// scenario); AdaptiveResult reports one adaptive run.
	AdaptiveTuner = core.AdaptiveTuner
	// AdaptiveResult reports one adaptive production run.
	AdaptiveResult = core.AdaptiveResult
	// Composite is a whole application with several candidate tuning
	// sections (input to the TS Selector, paper §4.1).
	Composite = bench.Composite
	// SectionStat reports a candidate section's profiled time share.
	SectionStat = core.SectionStat
	// SelectorConfig tunes the TS Selector.
	SelectorConfig = core.SelectorConfig
	// Pool shards independent tuning work across workers while keeping
	// results bit-identical to a serial run (see ARCHITECTURE.md for the
	// determinism contract).
	Pool = sched.Pool
	// NoiseModel is a composable measurement-noise model (Gaussian jitter,
	// heavy-tailed spikes, thermal drift, correlated bursts). Set
	// Config.Noise to override a machine's default model.
	NoiseModel = noise.Model
	// NoiseRegime is a named noise model from the sensitivity sweep.
	NoiseRegime = experiments.NoiseRegime
	// VersionCache is a concurrency-safe, content-addressed compile cache.
	// Pass one (via Tuner-level helpers like TuneBenchmarkCached or
	// experiments.Figure7OnCached) to share compiled versions across tuning
	// processes; results are bit-identical with or without it. Caching is on
	// by default inside each tuning process — the shared cache only widens
	// its scope. Config.NoCompileCache disables caching entirely.
	VersionCache = vcache.Cache
	// VersionCacheStats is a snapshot of a cache's counters.
	VersionCacheStats = vcache.Stats
	// FaultPlan configures deterministic fault injection (compile failures,
	// miscompiles, measurement hangs, rating-job panics). Set Config.Faults
	// to tune under faults; same seed + same plan gives byte-identical
	// results at any worker count, cache on or off, resumed or not.
	FaultPlan = fault.Plan
	// Journal is an append-only checkpoint journal: attach one to a tuning
	// run (core.Tuner.Journal, Figure7Journaled, FaultReport) to checkpoint
	// after every Iterative Elimination round and resume interrupted runs
	// byte-identically.
	Journal = fault.Journal
	// FaultBar is one (benchmark, method) comparison of the fault report.
	FaultBar = experiments.FaultBar
	// TraceBuffer collects structured tuning events deterministically: the
	// trace of a run is byte-identical at any worker count and with the
	// compile cache on or off (see OBSERVABILITY.md). Pass one to the
	// Traced entry points; a nil buffer disables tracing at no cost.
	TraceBuffer = trace.Buffer
	// TraceEvent is one structured trace record (schema in OBSERVABILITY.md).
	TraceEvent = trace.Event
	// Tracer serializes trace buffers to JSONL, assigning sequence numbers.
	Tracer = trace.Tracer
	// Metrics is a registry of named counters and gauges filled by the
	// Traced entry points and the FillMetrics methods of TuneResult,
	// scheduler stats, cache stats and journals.
	Metrics = trace.Metrics
	// TraceAnalysis digests a trace into per-tune time breakdowns and
	// elimination timelines (what cmd/peak-trace prints).
	TraceAnalysis = trace.Analysis
)

// Rating methods.
const (
	CBR = core.MethodCBR
	MBR = core.MethodMBR
	RBR = core.MethodRBR
	AVG = core.MethodAVG
	WHL = core.MethodWHL
)

// SPARCII returns the SPARC-II-like simulated machine.
func SPARCII() *Machine { return machine.SPARCII() }

// PentiumIV returns the Pentium-IV-like simulated machine.
func PentiumIV() *Machine { return machine.PentiumIV() }

// MachineByName resolves "sparc2" or "p4".
func MachineByName(name string) (*Machine, bool) { return machine.ByName(name) }

// Benchmarks returns all 14 Table-1 workload kernels.
func Benchmarks() []*Benchmark { return workloads.All() }

// BenchmarkByName returns the named workload ("SWIM", "ART", ...).
func BenchmarkByName(name string) (*Benchmark, bool) { return workloads.ByName(name) }

// BenchmarkNames lists the workload names in Table-1 order.
func BenchmarkNames() []string { return workloads.Names() }

// Figure7Benchmarks returns the paper's Figure-7 benchmark set (SWIM,
// MGRID, ART, EQUAKE).
func Figure7Benchmarks() []*Benchmark { return workloads.Figure7Set() }

// DefaultConfig mirrors the paper's operating point.
func DefaultConfig() Config { return core.DefaultConfig() }

// ParseMethodName resolves a rating-method name ("CBR", "RBR", ...).
func ParseMethodName(s string) (Method, bool) { return core.ParseMethod(s) }

// O3 returns the full 38-flag optimization set; O0 the empty one.
func O3() FlagSet { return opt.O3() }

// O0 returns the empty optimization set.
func O0() FlagSet { return opt.O0() }

// ParseFlags parses "-O3", "-O0" or a list of "-f<name>" tokens.
func ParseFlags(s string) (FlagSet, error) { return opt.ParseFlagSet(s) }

// ProfileBenchmark runs the offline profile pass (paper §3) of b's tuning
// section over its training dataset on machine m.
func ProfileBenchmark(b *Benchmark, m *Machine) (*Profile, error) {
	return profiling.Run(b, b.Train, m)
}

// Consult runs the Rating Approach Consultant on a profile.
func Consult(p *Profile, cfg *Config) *Applicability { return core.Consult(p, cfg) }

// NewPool returns a worker pool with the given size. workers <= 0 uses
// GOMAXPROCS; workers == 1 is the serial pool. Pass the pool to the On
// variants (TuneBenchmarkOn, Table1On, Figure7On) — any size produces
// bit-identical results, so workers=1 is a drop-in check of the others.
func NewPool(workers int) Pool { return sched.New(workers) }

// TuneBenchmark profiles b on m, lets the consultant pick the rating
// method, and runs the full PEAK tuning process on the training dataset.
// cfg may be nil for the default configuration.
func TuneBenchmark(b *Benchmark, m *Machine, cfg *Config) (*TuneResult, error) {
	return TuneBenchmarkOn(b, m, cfg, nil)
}

// TuneBenchmarkOn is TuneBenchmark with the candidate ratings of every
// Iterative Elimination round sharded across pool (nil means serial).
func TuneBenchmarkOn(b *Benchmark, m *Machine, cfg *Config, pool Pool) (*TuneResult, error) {
	return TuneBenchmarkCached(b, m, cfg, pool, nil)
}

// NewVersionCache returns an empty compile cache for sharing across tuning
// processes (see VersionCache).
func NewVersionCache() *VersionCache { return vcache.New() }

// TuneBenchmarkCached is TuneBenchmarkOn resolving compilations through a
// shared cache (nil keeps the tune's private cache). The result is
// bit-identical for any cache value and worker count.
func TuneBenchmarkCached(b *Benchmark, m *Machine, cfg *Config, pool Pool, cache *VersionCache) (*TuneResult, error) {
	c := DefaultConfig()
	if cfg != nil {
		c = *cfg
	}
	p, err := profiling.Run(b, b.Train, m)
	if err != nil {
		return nil, err
	}
	t := &core.Tuner{Bench: b, Mach: m, Dataset: b.Train, Cfg: c, Profile: p, Pool: pool, Cache: cache}
	return t.Tune()
}

// TuneWithMethod forces a specific rating method (the Figure-7 protocol).
func TuneWithMethod(b *Benchmark, m *Machine, method Method, ds *Dataset, cfg *Config) (*TuneResult, error) {
	return TuneWithMethodOn(b, m, method, ds, cfg, nil)
}

// TuneWithMethodOn is TuneWithMethod sharded across pool (nil = serial).
func TuneWithMethodOn(b *Benchmark, m *Machine, method Method, ds *Dataset, cfg *Config, pool Pool) (*TuneResult, error) {
	c := DefaultConfig()
	if cfg != nil {
		c = *cfg
	}
	if ds == nil {
		ds = b.Train
	}
	p, err := profiling.Run(b, ds, m)
	if err != nil {
		return nil, err
	}
	t := &core.Tuner{Bench: b, Mach: m, Dataset: ds, Cfg: c, Profile: p, Force: &method, Pool: pool}
	return t.Tune()
}

// NewAdaptiveTuner builds an online tuner for b on m: it profiles the
// benchmark for context keying and then tunes during production runs via
// AdaptiveTuner.Run (no separate tuning time — the §6 scenario).
func NewAdaptiveTuner(b *Benchmark, m *Machine, cfg *Config) (*AdaptiveTuner, error) {
	c := DefaultConfig()
	if cfg != nil {
		c = *cfg
	}
	return core.NewAdaptiveTuner(b, m, c)
}

// Measure runs b's tuning section over ds with the given flags and returns
// (TS cycles, whole-program cycles).
func Measure(b *Benchmark, ds *Dataset, m *Machine, flags FlagSet) (int64, int64, error) {
	return core.MeasurePerformance(b, ds, m, flags)
}

// SelectSections runs the TS Selector (paper §4.1) over a composite
// program: it profiles all candidate sections and marks the
// most-time-consuming ones for tuning.
func SelectSections(c *Composite, m *Machine, cfg SelectorConfig) ([]SectionStat, error) {
	return core.SelectSections(c, m, cfg)
}

// DefaultSelectorConfig mirrors the paper's selection criterion.
func DefaultSelectorConfig() SelectorConfig { return core.DefaultSelectorConfig() }

// Improvement converts two measured times into a relative improvement.
func Improvement(base, tuned int64) float64 { return core.Improvement(base, tuned) }

// Table1 regenerates the paper's Table-1 consistency experiment on m.
func Table1(m *Machine, cfg *Config) ([]ConsistencyRow, error) {
	return Table1On(m, cfg, nil)
}

// Table1On is Table1 with each benchmark's consistency measurement run as
// one coarse job on pool (nil means serial).
func Table1On(m *Machine, cfg *Config, pool Pool) ([]ConsistencyRow, error) {
	c := DefaultConfig()
	if cfg != nil {
		c = *cfg
	}
	return experiments.Table1On(m, experiments.PaperWindows, &c, pool)
}

// Figure7 regenerates the paper's Figure-7 experiment on m.
func Figure7(m *Machine, cfg *Config) ([]Fig7Entry, error) {
	return Figure7On(m, cfg, nil)
}

// Figure7On is Figure7 sharded over pool (nil means serial): benchmarks at
// coarse grain, each tuning process's candidate ratings at fine grain.
func Figure7On(m *Machine, cfg *Config, pool Pool) ([]Fig7Entry, error) {
	c := DefaultConfig()
	if cfg != nil {
		c = *cfg
	}
	return experiments.Figure7On(workloads.Figure7Set(), m, &c, pool)
}

// DefaultNoise returns machine m's calibrated jitter-plus-spikes noise
// model — what measurements experience when Config.Noise is nil.
func DefaultNoise(m *Machine) NoiseModel { return sim.DefaultNoise(m) }

// NoiseRegimes lists the noise-sensitivity regimes for machine m
// (baseline, gauss4x, spikes, drift, bursts).
func NoiseRegimes(m *Machine) []NoiseRegime { return experiments.RegimesFor(m) }

// NoiseRegimeByName resolves a regime label for machine m.
func NoiseRegimeByName(m *Machine, name string) (NoiseRegime, bool) {
	return experiments.RegimeByName(m, name)
}

// NoiseReport regenerates the noise-sensitivity report for machine m:
// Table-1-style rating consistency and winner-picking reliability under
// each regime. cfg may be nil for the default configuration; the grid is
// sharded over pool (nil means serial) with byte-identical output at any
// worker count.
func NoiseReport(m *Machine, cfg *Config, pool Pool) (string, error) {
	c := DefaultConfig()
	if cfg != nil {
		c = *cfg
	}
	return experiments.NoiseReportOn(m, &c, pool)
}

// UniformFaults returns a fault plan injecting every fault class at the
// given rate (miscompiles at a tenth of it — they are the rarest and most
// serious real-world failure) with deterministic per-identity streams
// derived from seed.
func UniformFaults(rate float64, seed int64) *FaultPlan { return fault.Uniform(rate, seed) }

// NewJournal creates (truncating) a checkpoint journal at path.
func NewJournal(path string) (*Journal, error) { return fault.NewJournal(path) }

// OpenJournal opens an existing checkpoint journal for resuming, dropping
// a torn trailing record if the writer was killed mid-append.
func OpenJournal(path string) (*Journal, error) { return fault.OpenJournal(path) }

// FaultReport runs the robustness experiment on m: the Figure-7 tuning
// protocol under fault injection, each bar's winner compared against its
// fault-free twin, with a recovery-ledger footer. A non-nil journal
// checkpoints (and resumes) the faulted tunes. cfg may be nil for the
// default configuration.
func FaultReport(m *Machine, cfg *Config, plan *FaultPlan, pool Pool, j *Journal) (string, error) {
	c := DefaultConfig()
	if cfg != nil {
		c = *cfg
	}
	return experiments.FaultReport(m, &c, plan, pool, j)
}

// FaultReportBars is FaultReport returning the raw comparison bars for an
// explicit benchmark list (partial bars plus the first error on failure).
func FaultReportBars(benches []*Benchmark, m *Machine, cfg *Config, plan *FaultPlan, pool Pool, j *Journal) ([]FaultBar, error) {
	c := DefaultConfig()
	if cfg != nil {
		c = *cfg
	}
	return experiments.FaultReportFor(benches, m, &c, plan, pool, j)
}

// Figure7Journaled is Figure7On with checkpoint/resume through j and a
// caller-supplied shared compile cache (both may be nil).
func Figure7Journaled(m *Machine, cfg *Config, pool Pool, cache *VersionCache, j *Journal) ([]Fig7Entry, error) {
	c := DefaultConfig()
	if cfg != nil {
		c = *cfg
	}
	return experiments.Figure7Journaled(workloads.Figure7Set(), m, &c, pool, cache, j)
}

// NewTraceBuffer returns an empty trace buffer for the Traced entry
// points. Serialize it with NewTracer after the run completes.
func NewTraceBuffer() *TraceBuffer { return trace.NewBuffer() }

// NewTracer returns a tracer writing JSONL trace records to w.
func NewTracer(w io.Writer) *Tracer { return trace.NewTracer(w) }

// NewMetrics returns an empty metrics registry for the Traced entry
// points.
func NewMetrics() *Metrics { return trace.NewMetrics() }

// ReadTrace parses a JSONL trace stream (as written by a Tracer or the
// cmds' -trace flag) back into events, preserving file order.
func ReadTrace(r io.Reader) ([]TraceEvent, error) { return trace.ReadEvents(r) }

// AnalyzeTrace digests trace events into per-tune time breakdowns and
// elimination timelines — the digest cmd/peak-trace renders.
func AnalyzeTrace(events []TraceEvent) TraceAnalysis { return trace.Analyze(events) }

// TuneBenchmarkTraced is TuneBenchmarkCached with observability: a
// non-nil trace buffer records the tuning process's event stream
// (byte-identical at any worker count, cache on or off) and a non-nil
// metrics registry accumulates the result's counters.
func TuneBenchmarkTraced(b *Benchmark, m *Machine, cfg *Config, pool Pool, cache *VersionCache, tb *TraceBuffer, mx *Metrics) (*TuneResult, error) {
	c := DefaultConfig()
	if cfg != nil {
		c = *cfg
	}
	p, err := profiling.Run(b, b.Train, m)
	if err != nil {
		return nil, err
	}
	t := &core.Tuner{Bench: b, Mach: m, Dataset: b.Train, Cfg: c, Profile: p, Pool: pool, Cache: cache, Trace: tb}
	res, err := t.Tune()
	if err == nil {
		res.FillMetrics(mx)
	}
	return res, err
}

// TuneWithMethodTraced is TuneWithMethodOn with observability (see
// TuneBenchmarkTraced).
func TuneWithMethodTraced(b *Benchmark, m *Machine, method Method, ds *Dataset, cfg *Config, pool Pool, tb *TraceBuffer, mx *Metrics) (*TuneResult, error) {
	c := DefaultConfig()
	if cfg != nil {
		c = *cfg
	}
	if ds == nil {
		ds = b.Train
	}
	p, err := profiling.Run(b, ds, m)
	if err != nil {
		return nil, err
	}
	t := &core.Tuner{Bench: b, Mach: m, Dataset: ds, Cfg: c, Profile: p, Force: &method, Pool: pool, Trace: tb}
	res, err := t.Tune()
	if err == nil {
		res.FillMetrics(mx)
	}
	return res, err
}

// Table1Traced is Table1On with observability: one "cell" trace event
// per consistency row and the grid totals in the metrics registry.
func Table1Traced(m *Machine, cfg *Config, pool Pool, tb *TraceBuffer, mx *Metrics) ([]ConsistencyRow, error) {
	c := DefaultConfig()
	if cfg != nil {
		c = *cfg
	}
	return experiments.Table1Traced(m, experiments.PaperWindows, &c, pool, tb, mx)
}

// Figure7Traced is Figure7Journaled with observability: the trace
// carries every tuning process of the protocol (train and ref tunes per
// bar) and the metrics registry their summed counters.
func Figure7Traced(m *Machine, cfg *Config, pool Pool, cache *VersionCache, j *Journal, tb *TraceBuffer, mx *Metrics) ([]Fig7Entry, error) {
	c := DefaultConfig()
	if cfg != nil {
		c = *cfg
	}
	return experiments.Figure7Traced(workloads.Figure7Set(), m, &c, pool, cache, j, tb, mx)
}

// NoiseReportTraced is NoiseReport with observability: one "cell" event
// per grid cell and two "trials" events per regime.
func NoiseReportTraced(m *Machine, cfg *Config, pool Pool, tb *TraceBuffer, mx *Metrics) (string, error) {
	c := DefaultConfig()
	if cfg != nil {
		c = *cfg
	}
	return experiments.NoiseReportTraced(m, &c, pool, tb, mx)
}

// FaultReportBarsTraced is FaultReportBars with observability: the trace
// carries the faulted tunes' event streams (the fault-free twins stay
// untraced), the metrics registry both tunes' counters.
func FaultReportBarsTraced(benches []*Benchmark, m *Machine, cfg *Config, plan *FaultPlan, pool Pool, j *Journal, tb *TraceBuffer, mx *Metrics) ([]FaultBar, error) {
	c := DefaultConfig()
	if cfg != nil {
		c = *cfg
	}
	return experiments.FaultReportTraced(benches, m, &c, plan, pool, j, tb, mx)
}

// Validate sanity-checks a benchmark definition (useful when constructing
// custom workloads against the public API).
func Validate(b *Benchmark) error {
	if b == nil || b.Prog == nil || b.TS == nil {
		return fmt.Errorf("peak: benchmark missing program or tuning section")
	}
	if b.Prog.Funcs[b.TSName] != b.TS {
		return fmt.Errorf("peak: tuning section %q not registered in program", b.TSName)
	}
	if b.Train == nil || b.Ref == nil {
		return fmt.Errorf("peak: benchmark needs train and ref datasets")
	}
	if b.Train.NumInvocations <= 0 || b.Ref.NumInvocations <= 0 {
		return fmt.Errorf("peak: datasets need positive invocation counts")
	}
	return nil
}
