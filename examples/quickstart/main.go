// Quickstart: tune one of the built-in workloads end to end.
//
// This walks the whole PEAK pipeline from the public API: profile the
// tuning section, ask the Rating Approach Consultant which rating method
// applies, run the Iterative Elimination search, and measure the tuned
// version against "-O3" on the production (ref) dataset.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"peak"
)

func main() {
	b, ok := peak.BenchmarkByName("ART")
	if !ok {
		log.Fatal("ART benchmark missing")
	}
	if err := peak.Validate(b); err != nil {
		log.Fatal(err)
	}
	m := peak.PentiumIV()

	// 1. Offline profile run (paper §3): contexts, components, timing.
	prof, err := peak.ProfileBenchmark(b, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled %s/%s on %s: %d invocations, mean %.0f cycles\n",
		b.Name, b.TSName, m.Name, prof.Invocations, prof.MeanCycles)

	// 2. The consultant picks the rating method (Table 1's "Approach").
	cfg := peak.DefaultConfig()
	app := peak.Consult(prof, &cfg)
	fmt.Printf("consultant: %s", app)
	if app.CBRReason != "" {
		fmt.Printf("  (CBR rejected: %s)", app.CBRReason)
	}
	fmt.Println()

	// 3. Tune: Iterative Elimination over the 38 -O3 flags, rating each
	// candidate version with the chosen method.
	res, err := peak.TuneBenchmark(b, m, &cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tuned with %s: removed %v in %d rounds (%d versions rated)\n",
		res.MethodUsed, res.Removed, res.Rounds, res.VersionsRated)

	// 4. Evaluate on the production dataset, like the paper's Figure 7.
	base, _, err := peak.Measure(b, b.Ref, m, peak.O3())
	if err != nil {
		log.Fatal(err)
	}
	tuned, _, err := peak.Measure(b, b.Ref, m, res.Best)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ref dataset: -O3 = %d cycles, tuned = %d cycles  =>  %.1f%% improvement\n",
		base, tuned, 100*peak.Improvement(base, tuned))
}
