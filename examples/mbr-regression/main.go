// MBR worked example: reproduces the paper's Figure 2.
//
// A tuning section with two components — a loop body entered N times per
// invocation and a tail entered once — is invoked with varying N. The
// rating system gathers the TS-invocation-time vector Y and the
// component-count matrix C, and linear regression over Y = T·C recovers
// the component-time vector T (the paper's example yields T = [110.05,
// 3.75]).
//
// This example builds that situation twice: first with the paper's literal
// numbers, then live — running a real two-component kernel on the
// simulated machine, instrumenting it with counters, and solving for T.
//
//	go run ./examples/mbr-regression
package main

import (
	"fmt"
	"log"
	"math/rand"

	"peak/internal/analysis"
	"peak/internal/ir"
	"peak/internal/irbuild"
	"peak/internal/machine"
	"peak/internal/opt"
	"peak/internal/regress"
	"peak/internal/sim"
)

func main() {
	paperExample()
	liveExample()
}

// paperExample solves Figure 2's literal system.
func paperExample() {
	y := []float64{11015, 5508, 6626, 6044, 8793}
	c := [][]float64{
		{100, 1}, {50, 1}, {60, 1}, {55, 1}, {80, 1},
	}
	res, err := regress.Solve(c, y)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Paper Figure 2:")
	fmt.Printf("  Y = %v\n", y)
	fmt.Printf("  T = [%.2f  %.2f]   (paper: [110.05  3.75])\n", res.Coef[0], res.Coef[1])
	fmt.Printf("  dominant component rating: T1 = %.2f\n\n", res.Coef[0])
}

// liveExample builds the same shape as real code and lets the pipeline
// (instrumentation, component merging, regression) do the work.
func liveExample() {
	prog := ir.NewProgram()
	prog.AddArray("data", ir.F64, 256)
	b := irbuild.NewFunc("ts")
	b.ScalarParam("n", ir.I64).Local("s", ir.F64)
	fn := b.Body(
		// Component 1: the loop body, N entries per invocation.
		b.For("i", b.I(0), b.V("n"), 1,
			b.Set(b.V("s"), b.FAdd(b.V("s"), b.FMul(b.At("data", b.V("i")), b.F(1.0001)))),
		),
		// Component 2: the tail code, one entry per invocation.
		b.Set(b.At("data", b.I(0)), b.Call("sqrt", b.Call("abs", b.V("s")))),
		b.Ret(b.V("s")),
	)
	prog.AddFunc(fn)

	// Instrument with counters, then merge components from a profile.
	instr := analysis.Instrument(fn)
	prog.AddFunc(instr)
	m := machine.SPARCII()
	v, err := opt.Compile(prog, instr, opt.O3(), m)
	if err != nil {
		log.Fatal(err)
	}

	mem := sim.NewMemory(prog)
	rng := rand.New(rand.NewSource(42))
	for i := range mem.Get("data").Data {
		mem.Get("data").Data[i] = rng.Float64()
	}
	runner := sim.NewRunner(m, mem, 7)
	clock := sim.NewClock(m, 11)

	// Warm the cache so per-entry component times are stationary (the
	// tuning system sees steady-state invocations; cold-start rows would
	// bias the regression).
	for i := 0; i < 3; i++ {
		if _, _, err := runner.Run(v, []float64{256}); err != nil {
			log.Fatal(err)
		}
	}

	trips := []float64{100, 50, 60, 55, 80, 120, 90, 70, 40, 110, 65, 85}
	var counterRows [][]float64
	var rawCounts [][]int64
	var times []float64
	for _, n := range trips {
		_, st, err := runner.Run(v, []float64{n})
		if err != nil {
			log.Fatal(err)
		}
		row := make([]float64, len(st.Counters))
		for i, c := range st.Counters {
			row[i] = float64(c)
		}
		counterRows = append(counterRows, row)
		rawCounts = append(rawCounts, st.Counters)
		times = append(times, clock.Measure(st.Cycles))
	}

	model, err := analysis.MergeComponents(counterRows)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Live two-component kernel:")
	fmt.Printf("  counters inserted: %d, merged into %d components\n",
		instr.NumCounters, len(model.Components))

	c := make([][]float64, len(times))
	for i := range times {
		c[i] = model.CountsFor(rawCounts[i])
	}
	res, err := regress.Solve(c, times)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  T = %v cycles per component entry\n", formatCoefs(res.Coef))
	fmt.Printf("  fit: SSR/SST = %.4f (MBR's VAR, paper §3)\n", res.VarRatio())
	fmt.Printf("  T_avg estimate per invocation = %.0f cycles\n", tAvg(res.Coef, c))
}

func formatCoefs(coefs []float64) string {
	out := "["
	for i, v := range coefs {
		if i > 0 {
			out += "  "
		}
		out += fmt.Sprintf("%.2f", v)
	}
	return out + "]"
}

func tAvg(coefs []float64, rows [][]float64) float64 {
	avg := 0.0
	for _, row := range rows {
		for i, c := range row {
			avg += coefs[i] * c
		}
	}
	return avg / float64(len(rows))
}
