// spec-tuning: a miniature of the paper's Figure-7 experiment.
//
// Tunes the paper's four evaluation benchmarks (SWIM, MGRID, ART, EQUAKE)
// on both simulated machines with the consultant-chosen rating method,
// then reports the improvement over "-O3" on the production (ref) dataset
// and the tuning cost. The full experiment (all method variants, WHL/AVG
// baselines, normalized tuning times) lives in cmd/peak-experiments.
//
//	go run ./examples/spec-tuning
package main

import (
	"fmt"
	"log"

	"peak"
)

func main() {
	cfg := peak.DefaultConfig()
	for _, m := range []*peak.Machine{peak.SPARCII(), peak.PentiumIV()} {
		fmt.Printf("=== %s ===\n", m.Name)
		fmt.Printf("%-8s %-8s %-10s %-14s %s\n",
			"bench", "method", "improve", "tuning-cycles", "flags removed")
		for _, name := range []string{"SWIM", "MGRID", "ART", "EQUAKE"} {
			b, ok := peak.BenchmarkByName(name)
			if !ok {
				log.Fatalf("missing benchmark %s", name)
			}
			res, err := peak.TuneBenchmark(b, m, &cfg)
			if err != nil {
				log.Fatalf("%s: %v", name, err)
			}
			base, _, err := peak.Measure(b, b.Ref, m, peak.O3())
			if err != nil {
				log.Fatal(err)
			}
			tuned, _, err := peak.Measure(b, b.Ref, m, res.Best)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8s %-8s %9.1f%% %-14d %v\n",
				name, res.MethodUsed.String(),
				100*peak.Improvement(base, tuned), res.TuningCycles, res.Removed)
		}
		fmt.Println()
	}
}
