// adaptive: the paper's online/adaptive scenario (§2.2, §6).
//
// "The best versions for different contexts may be different, in which case
// CBR reports the context-specific winners. [...] an adaptive tuning
// scenario would make use of all versions."
//
// This example builds a custom benchmark whose tuning section is invoked
// under two very different contexts — short vectors (n=6) and long vectors
// (n=220) — where the profitable flag sets diverge (loop unrolling pays on
// long trips and costs on short ones). It tunes each context separately
// with CBR, then simulates the production run twice: once with the single
// global winner (offline tuning) and once with an adaptive dispatcher that
// swaps in each context's own winner, the ADAPT-style dynamic mechanism of
// paper Figure 6.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"peak"
	"peak/internal/bench"
	"peak/internal/core"
	"peak/internal/ir"
	"peak/internal/irbuild"
	"peak/internal/machine"
	"peak/internal/opt"
	"peak/internal/profiling"
	"peak/internal/sim"
)

// buildBenchmark constructs a two-context workload whose contexts execute
// different code paths with different optimal flags:
//
//   - mode 0 (dense axpy/norm over a long vector): "-O3" is already right;
//   - mode 1 (a reduction whose branch is highly predictable because the
//     gate array is all-positive): if-conversion *hurts* — the converted
//     select executes the expensive sqrt arm every iteration where the
//     branch predictor would have been nearly free.
//
// The offline global winner is tuned for the time-dominant context, so the
// adaptive per-context dispatch recovers the mode-1 loss.
func buildBenchmark() *peak.Benchmark {
	prog := ir.NewProgram()
	prog.AddArray("vx", ir.F64, 256)
	prog.AddArray("vy", ir.F64, 256)
	prog.AddArray("vz", ir.F64, 256)
	b := irbuild.NewFunc("phase")
	b.ScalarParam("mode", ir.I64).ScalarParam("n", ir.I64).ScalarParam("a", ir.F64).Local("s", ir.F64)
	fn := b.Body(
		b.IfElse(b.Eq(b.V("mode"), b.I(0)),
			b.Stmts(
				b.For("i", b.I(0), b.V("n"), 1,
					b.Set(b.At("vy", b.V("i")),
						b.FAdd(b.At("vy", b.V("i")), b.FMul(b.V("a"), b.At("vx", b.V("i"))))),
					b.Set(b.V("s"), b.FAdd(b.V("s"),
						b.FMul(b.At("vy", b.V("i")), b.At("vy", b.V("i"))))),
				),
			),
			b.Stmts(
				b.For("i", b.I(0), b.V("n"), 1,
					b.IfElse(b.FGt(b.At("vz", b.V("i")), b.F(0)),
						b.Stmts(b.Set(b.V("s"),
							b.FAdd(b.V("s"), b.Call("sqrt", b.At("vz", b.V("i")))))),
						b.Stmts(b.Set(b.V("s"),
							b.FSub(b.V("s"), b.FMul(b.At("vz", b.V("i")), b.V("a"))))),
					),
				),
			),
		),
		b.Ret(b.V("s")),
	)
	prog.AddFunc(fn)

	setup := func(mem *sim.Memory, rng *rand.Rand) {
		for _, a := range []string{"vx", "vy"} {
			d := mem.Get(a).Data
			for i := range d {
				d[i] = rng.NormFloat64()
			}
		}
		vz := mem.Get("vz").Data
		for i := range vz {
			vz[i] = rng.Float64() + 0.1 // all positive: predictable branch
		}
	}
	args := func(i int, mem *sim.Memory, rng *rand.Rand) []float64 {
		// Two contexts; the dense one dominates total time.
		if i%3 == 0 {
			return []float64{0, 220, 0.5}
		}
		return []float64{1, 70, 0.5}
	}
	mkDS := func(name string, inv int) *bench.Dataset {
		return &bench.Dataset{Name: name, NumInvocations: inv, Setup: setup, Args: args}
	}
	return &bench.Benchmark{
		Name: "PHASE", TSName: "phase", Class: bench.FP,
		Prog: prog, TS: fn,
		Train: mkDS("train", 3000), Ref: mkDS("ref", 6000),
		NonTSCycles:      500_000,
		PaperInvocations: "(custom)",
	}
}

func main() {
	b := buildBenchmark()
	if err := peak.Validate(b); err != nil {
		log.Fatal(err)
	}
	m := machine.PentiumIV()
	cfg := core.DefaultConfig()

	prof, err := profiling.Run(b, b.Train, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s/%s has %d contexts:\n", b.Name, b.TSName, prof.NumContexts())

	// Stable context order, largest share of time first.
	keys := make([]string, 0, len(prof.Contexts))
	for k := range prof.Contexts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, bb := prof.Contexts[keys[i]], prof.Contexts[keys[j]]
		if a.TotalCycles != bb.TotalCycles {
			return a.TotalCycles > bb.TotalCycles
		}
		return keys[i] < keys[j]
	})

	// Tune once per context: CBR with that context as the target.
	winners := map[string]opt.FlagSet{}
	force := core.MethodCBR
	for ci, key := range keys {
		p := *prof
		p.DominantContext = key
		tu := &core.Tuner{Bench: b, Mach: m, Dataset: b.Train, Cfg: cfg, Profile: &p, Force: &force}
		res, err := tu.Tune()
		if err != nil {
			log.Fatal(err)
		}
		winners[key] = res.Best
		st := prof.Contexts[key]
		fmt.Printf("  context %d: %5.1f%% of invocations, winner removes %v\n",
			ci+1, 100*float64(st.Count)/float64(prof.Invocations), res.Removed)
	}

	// Global offline winner: tuned against the dominant context only.
	tu := &core.Tuner{Bench: b, Mach: m, Dataset: b.Train, Cfg: cfg, Profile: prof, Force: &force}
	globalRes, err := tu.Tune()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  global winner (dominant context only) removes %v\n", globalRes.Removed)

	globalCycles, err := runProduction(b, m, prof, func(string) opt.FlagSet { return globalRes.Best })
	if err != nil {
		log.Fatal(err)
	}
	adaptiveCycles, err := runProduction(b, m, prof, func(key string) opt.FlagSet {
		if fs, ok := winners[key]; ok {
			return fs
		}
		return globalRes.Best
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nproduction run (ref dataset, %d invocations):\n", b.Ref.NumInvocations)
	fmt.Printf("  single global winner: %d cycles\n", globalCycles)
	fmt.Printf("  adaptive per-context: %d cycles (%.2f%% faster than global)\n",
		adaptiveCycles, 100*(float64(globalCycles)/float64(adaptiveCycles)-1))

	// Fully online variant: no offline tuning at all — the core
	// AdaptiveTuner explores while the production run executes (§6).
	at, err := peak.NewAdaptiveTuner(b, m, &cfg)
	if err != nil {
		log.Fatal(err)
	}
	at.Window = 12
	onlineRes, err := at.Run(b.Ref)
	if err != nil {
		log.Fatal(err)
	}
	o3Only, err := runProduction(b, m, prof, func(string) opt.FlagSet { return opt.O3() })
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfully online tuning (no offline phase):\n")
	fmt.Printf("  -O3 throughout:        %d cycles\n", o3Only)
	fmt.Printf("  online adaptive total: %d cycles (exploration included, %.2f%% vs -O3)\n",
		onlineRes.TotalCycles, 100*(float64(o3Only)/float64(onlineRes.TotalCycles)-1))
	fmt.Printf("  %d contexts, %d variants tried, %d adoptions\n",
		onlineRes.ContextsSeen, onlineRes.VersionsTried, onlineRes.Adoptions)
}

// runProduction executes the ref dataset, selecting the version for each
// invocation by its runtime context key — the ADAPT-style dynamic swap.
func runProduction(b *peak.Benchmark, m *machine.Machine, prof *profiling.Profile,
	pick func(key string) opt.FlagSet) (int64, error) {
	versions := map[opt.FlagSet]*sim.Version{}
	version := func(fs opt.FlagSet) (*sim.Version, error) {
		if v, ok := versions[fs]; ok {
			return v, nil
		}
		v, err := opt.Compile(b.Prog, b.TS, fs, m)
		if err != nil {
			return nil, err
		}
		versions[fs] = v
		return v, nil
	}
	rng := rand.New(rand.NewSource(b.Seed(31)))
	mem := sim.NewMemory(b.Prog)
	if b.Ref.Setup != nil {
		b.Ref.Setup(mem, rng)
	}
	runner := sim.NewRunner(m, mem, b.Seed(37))
	var total int64
	for i := 0; i < b.Ref.NumInvocations; i++ {
		args := b.Ref.Args(i, mem, rng)
		key := prof.CBRKeyFor(b, args, mem)
		v, err := version(pick(key))
		if err != nil {
			return 0, err
		}
		_, st, err := runner.Run(v, args)
		if err != nil {
			return 0, err
		}
		total += st.Cycles
	}
	return total, nil
}
