// sections: the full PEAK pipeline of paper Figure 5, starting from a whole
// application rather than a pre-chosen kernel.
//
//  1. TS Selector (§4.1): profile the composite program and pick the
//     most time-consuming candidate sections.
//
//  2. Rating Approach Consultant: annotate each selected section.
//
//  3. Performance Tuning Driver: tune each section independently.
//
//     go run ./examples/sections
package main

import (
	"fmt"
	"log"
	"math/rand"

	"peak"
	"peak/internal/bench"
	"peak/internal/ir"
	"peak/internal/irbuild"
	"peak/internal/sim"
)

// buildApplication assembles a small "application": a 2D relaxation solver
// with three phases — a heavy stencil sweep, a medium residual reduction,
// and a cheap boundary fix-up.
func buildApplication() *peak.Composite {
	prog := ir.NewProgram()
	prog.AddArray("grid", ir.F64, 1600)
	prog.AddArray("res", ir.F64, 1600)

	sb := irbuild.NewFunc("sweep")
	sb.ScalarParam("n", ir.I64).Local("idx", ir.I64)
	prog.AddFunc(sb.Body(
		sb.For("i", sb.I(1), sb.Sub(sb.V("n"), sb.I(1)), 1,
			sb.For("j", sb.I(1), sb.Sub(sb.V("n"), sb.I(1)), 1,
				sb.Set(sb.V("idx"), sb.Add(sb.Mul(sb.V("i"), sb.V("n")), sb.V("j"))),
				sb.Set(sb.At("grid", sb.V("idx")),
					sb.FMul(sb.F(0.25),
						sb.FAdd(sb.FAdd(sb.At("grid", sb.Sub(sb.V("idx"), sb.I(1))),
							sb.At("grid", sb.Add(sb.V("idx"), sb.I(1)))),
							sb.FAdd(sb.At("grid", sb.Sub(sb.V("idx"), sb.V("n"))),
								sb.At("grid", sb.Add(sb.V("idx"), sb.V("n"))))))),
			),
		),
	))

	rb := irbuild.NewFunc("residual")
	rb.ScalarParam("n", ir.I64).Local("s", ir.F64)
	prog.AddFunc(rb.Body(
		rb.For("i", rb.I(0), rb.Mul(rb.V("n"), rb.V("n")), 1,
			rb.Set(rb.V("s"), rb.FAdd(rb.V("s"),
				rb.Call("abs", rb.FSub(rb.At("grid", rb.V("i")), rb.At("res", rb.V("i")))))),
			rb.Set(rb.At("res", rb.V("i")), rb.At("grid", rb.V("i"))),
		),
		rb.Ret(rb.V("s")),
	))

	bb := irbuild.NewFunc("boundary")
	bb.ScalarParam("n", ir.I64)
	prog.AddFunc(bb.Body(
		bb.For("i", bb.I(0), bb.V("n"), 1,
			bb.Set(bb.At("grid", bb.V("i")), bb.F(1)),
		),
	))

	return &peak.Composite{
		Name:           "RELAX",
		Prog:           prog,
		Candidates:     []string{"sweep", "residual", "boundary"},
		NumInvocations: 1200,
		Setup: func(mem *sim.Memory, rng *rand.Rand) {
			d := mem.Get("grid").Data
			for i := range d {
				d[i] = rng.Float64()
			}
		},
		Next: func(i int, mem *sim.Memory, rng *rand.Rand) (string, []float64) {
			switch i % 4 {
			case 0:
				return "sweep", []float64{36}
			case 1, 2:
				return "residual", []float64{20}
			default:
				return "boundary", []float64{36}
			}
		},
		NonTSCycles: 400_000,
	}
}

func main() {
	app := buildApplication()
	m := peak.SPARCII()

	stats, err := peak.SelectSections(app, m, peak.DefaultSelectorConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("TS Selector (paper §4.1):")
	for _, s := range stats {
		mark := " "
		if s.Selected {
			mark = "*"
		}
		fmt.Printf("  %s %-9s %6d invocations, %5.1f%% of program time\n",
			mark, s.Name, s.Invocations, 100*s.Share)
	}

	cfg := peak.DefaultConfig()
	for _, s := range stats {
		if !s.Selected {
			continue
		}
		b := app.Section(s.Name, bench.FP)
		prof, err := peak.ProfileBenchmark(b, m)
		if err != nil {
			log.Fatal(err)
		}
		appl := peak.Consult(prof, &cfg)
		res, err := peak.TuneBenchmark(b, m, &cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ntuned %s: consultant=%s method=%s removed=%v\n",
			s.Name, appl, res.MethodUsed, res.Removed)
	}
}
