package bench

import (
	"math/rand"
	"testing"

	"peak/internal/ir"
	"peak/internal/irbuild"
	"peak/internal/sim"
)

func TestSeedDeterministicAndDistinct(t *testing.T) {
	a := &Benchmark{Name: "A", TSName: "x"}
	b := &Benchmark{Name: "B", TSName: "x"}
	if a.Seed(1) != a.Seed(1) {
		t.Error("Seed not deterministic")
	}
	if a.Seed(1) == a.Seed(2) {
		t.Error("Seed ignores the extra component")
	}
	if a.Seed(1) == b.Seed(1) {
		t.Error("different benchmarks share a seed")
	}
}

func TestClassString(t *testing.T) {
	if Int.String() != "INT" || FP.String() != "FP" {
		t.Errorf("class names: %s/%s", Int, FP)
	}
}

func TestCompositeSectionFiltersSchedule(t *testing.T) {
	prog := ir.NewProgram()
	fa := irbuild.NewFunc("fa")
	fa.ScalarParam("x", ir.I64)
	prog.AddFunc(fa.Body(fa.Ret(fa.V("x"))))
	fb := irbuild.NewFunc("fb")
	fb.ScalarParam("x", ir.I64)
	prog.AddFunc(fb.Body(fb.Ret(fb.Mul(fb.V("x"), fb.I(2)))))

	c := &Composite{
		Name:           "C",
		Prog:           prog,
		Candidates:     []string{"fa", "fb"},
		NumInvocations: 100,
		Next: func(i int, mem *sim.Memory, rng *rand.Rand) (string, []float64) {
			if i%2 == 0 {
				return "fa", []float64{float64(i)}
			}
			return "fb", []float64{float64(i)}
		},
		NonTSCycles: 123,
	}
	sec := c.Section("fb", Int)
	if sec.TSName != "fb" || sec.TS != prog.Funcs["fb"] {
		t.Fatal("wrong section extracted")
	}
	if sec.NonTSCycles != 123 {
		t.Error("non-TS time not propagated")
	}
	// The filtered dataset must deliver only fb's arguments (odd i).
	mem := sim.NewMemory(prog)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		args := sec.Train.Args(i, mem, rng)
		if int(args[0])%2 == 0 {
			t.Errorf("invocation %d got fa's args %v", i, args)
		}
	}
}
