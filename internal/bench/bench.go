// Package bench defines the benchmark model shared by the profiler, the
// tuning engine, and the workload definitions: a program with one tuning
// section, plus datasets that drive its invocations.
//
// The paper partitions each SPEC benchmark into tuning sections — "the most
// time-consuming functions and loops" (§4.1) — and tunes each separately.
// Here every Benchmark carries its dominant tuning section (the one the
// paper's Table 1 reports) and two datasets mirroring SPEC's train and ref
// inputs.
package bench

import (
	"math/rand"

	"peak/internal/ir"
	"peak/internal/sim"
)

// Class distinguishes the paper's integer and floating-point groups.
type Class int

// Benchmark classes.
const (
	Int Class = iota
	FP
)

func (c Class) String() string {
	if c == FP {
		return "FP"
	}
	return "INT"
}

// Dataset drives the tuning section through one program run: Setup
// initializes memory, then the harness calls Args for invocations
// 0..NumInvocations-1, executing the TS with the returned arguments.
// Args may also mutate memory to model the surrounding program writing the
// TS's inputs between invocations.
type Dataset struct {
	Name string
	// NumInvocations is the number of TS invocations in one program run.
	NumInvocations int
	// Setup initializes program memory at the start of a run.
	Setup func(mem *sim.Memory, rng *rand.Rand)
	// Args produces the scalar arguments of invocation i and performs any
	// between-invocation memory updates the surrounding program would do.
	Args func(i int, mem *sim.Memory, rng *rand.Rand) []float64
}

// Benchmark is one program with its dominant tuning section.
type Benchmark struct {
	// Name is the SPEC benchmark name (e.g. "SWIM"); TSName the tuning
	// section (e.g. "calc3").
	Name   string
	TSName string
	Class  Class

	Prog *ir.Program
	// TS is the tuning section function (must be Prog.Funcs[TSName]).
	TS *ir.Func

	Train, Ref *Dataset

	// NonTSCycles approximates the simulated time one program run spends
	// outside the tuning section (rest of the application plus startup).
	// It dominates whole-program tuning cost (the WHL baseline).
	NonTSCycles int64

	// PaperInvocations documents the invocation count the paper reports
	// for the ref/train run (Table 1, column 4); our datasets scale this
	// down (DESIGN.md §6).
	PaperInvocations string
}

// Seed derives a deterministic per-benchmark RNG seed.
func (b *Benchmark) Seed(extra int64) int64 {
	var h int64 = 1469598103934665603
	for _, c := range b.Name + "/" + b.TSName {
		h = (h ^ int64(c)) * 1099511628211
	}
	return h ^ extra
}
