package bench

import (
	"math/rand"

	"peak/internal/ir"
	"peak/internal/sim"
)

// Composite describes a whole application containing several candidate
// tuning sections, driven by one interleaved invocation schedule. It is the
// input to the TS Selector (paper §4.1: "we choose as TS's the most
// time-consuming functions and loops, according to the program execution
// profiles"), which decides which candidates PEAK tunes.
type Composite struct {
	Name string
	Prog *ir.Program
	// Candidates are the function names eligible to become tuning
	// sections (each must exist in Prog.Funcs).
	Candidates []string
	// NumInvocations is the length of the schedule; Next returns the
	// function called by invocation i with its arguments.
	NumInvocations int
	Setup          func(mem *sim.Memory, rng *rand.Rand)
	Next           func(i int, mem *sim.Memory, rng *rand.Rand) (fn string, args []float64)
	// NonTSCycles is the time the program spends outside all candidates.
	NonTSCycles int64
}

// Section converts one selected candidate into a standalone Benchmark whose
// datasets replay only that candidate's invocations from the composite
// schedule — the paper's "each TS is extracted into a subroutine so that it
// can be compiled and optimized separately" (§4.1).
func (c *Composite) Section(name string, class Class) *Benchmark {
	fn := c.Prog.Funcs[name]
	filterDS := func(dsName string, scale int) *Dataset {
		// Pre-scan is impossible without running, so the dataset lazily
		// skips foreign invocations: Args steps the composite schedule
		// until it reaches the next invocation of this section.
		return &Dataset{
			Name:           dsName,
			NumInvocations: c.NumInvocations * scale / invocationShareDenom,
			Setup:          c.Setup,
			Args: func(i int, mem *sim.Memory, rng *rand.Rand) []float64 {
				for {
					fnName, args := c.Next(i, mem, rng)
					if fnName == name {
						return args
					}
					i++
				}
			},
		}
	}
	return &Benchmark{
		Name:             c.Name + "/" + name,
		TSName:           name,
		Class:            class,
		Prog:             c.Prog,
		TS:               fn,
		Train:            filterDS("train", 1),
		Ref:              filterDS("ref", 2),
		NonTSCycles:      c.NonTSCycles,
		PaperInvocations: "(composite)",
	}
}

const invocationShareDenom = 2
