// Package lower translates HIR functions into LIR control-flow graphs.
//
// Lowering conventions:
//   - every named scalar (parameter, local, loop variable) lives in a
//     dedicated "home" virtual register; assignments move values into it;
//   - global scalars are lowered to loads/stores of the reserved array
//     GlobalsArray at a fixed per-scalar index, so they participate in
//     memory liveness like any other array;
//   - block 0 is the entry block; every function ends in TermReturn blocks.
package lower

import (
	"fmt"

	"peak/internal/ir"
)

// GlobalsArray is the reserved array name backing global scalars.
const GlobalsArray = "$g"

// GlobalIndex returns the index of the named global scalar inside
// GlobalsArray, or -1 when the program has no such scalar.
func GlobalIndex(p *ir.Program, name string) int {
	for i, s := range p.Scalars {
		if s.Name == name {
			return i
		}
	}
	return -1
}

type loweringCtx struct {
	prog    *ir.Program
	fn      *ir.Func
	blocks  []*ir.Block
	cur     *ir.Block
	nextReg ir.Reg
	vars    map[string]ir.Reg
	float   []bool
	depth   int
	// breakTargets is a stack of loop-exit block IDs for Break lowering.
	breakTargets []int
	sealed       map[*ir.Block]bool
	err          error
}

// Lower translates fn (defined within prog) to LIR. It returns an error for
// malformed HIR (unknown variables, bad assignment targets, calls to
// undefined functions).
func Lower(prog *ir.Program, fn *ir.Func) (*ir.LFunc, error) {
	c := &loweringCtx{
		prog:   prog,
		fn:     fn,
		vars:   make(map[string]ir.Reg),
		sealed: make(map[*ir.Block]bool),
	}
	entry := c.newBlock()
	c.cur = entry

	lf := &ir.LFunc{
		Name:        fn.Name,
		Params:      append([]ir.Param(nil), fn.Params...),
		NumCounters: fn.NumCounters,
	}
	for _, p := range fn.Params {
		if p.IsArray {
			lf.ParamRegs = append(lf.ParamRegs, ir.NoReg)
			continue
		}
		r := c.allocReg(p.Typ == ir.F64)
		c.vars[p.Name] = r
		lf.ParamRegs = append(lf.ParamRegs, r)
	}
	for _, l := range fn.Locals {
		// Locals start at zero; no explicit initialization is emitted
		// because the execution engine zeroes all registers at entry
		// (explicit movi-0 would stretch every local's live interval to
		// the function entry and inflate register pressure).
		r := c.allocReg(l.Typ == ir.F64)
		c.vars[l.Name] = r
	}

	c.lowerStmts(fn.Body)
	if c.err != nil {
		return nil, c.err
	}
	// Terminate the final block with a return if it has no terminator yet.
	c.sealReturn()

	for _, b := range c.blocks {
		b.Origin = b.ID
	}
	lf.Blocks = c.blocks
	lf.NumRegs = int(c.nextReg)
	lf.FloatReg = c.float
	return lf, nil
}

func (c *loweringCtx) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf("lower %s: %s", c.fn.Name, fmt.Sprintf(format, args...))
	}
}

func (c *loweringCtx) newBlock() *ir.Block {
	b := &ir.Block{ID: len(c.blocks), LoopDepth: c.depth}
	c.blocks = append(c.blocks, b)
	return b
}

func (c *loweringCtx) allocReg(isFloat bool) ir.Reg {
	r := c.nextReg
	c.nextReg++
	c.float = append(c.float, isFloat)
	return r
}

func (c *loweringCtx) emit(in ir.Instr) {
	c.cur.Instrs = append(c.cur.Instrs, in)
}

// seal sets the current block's terminator unless it already has one
// (it ended in Return or Break).
func (c *loweringCtx) seal(t ir.Terminator) {
	if !c.isSealed(c.cur) {
		c.cur.Term = t
		c.sealed[c.cur] = true
	}
}

func (c *loweringCtx) isSealed(b *ir.Block) bool { return c.sealed[b] }

func (c *loweringCtx) sealReturn() {
	c.seal(ir.Terminator{Kind: ir.TermReturn, Val: ir.NoReg})
}

func (c *loweringCtx) lowerStmts(list []ir.Stmt) {
	for _, s := range list {
		if c.err != nil || c.isSealed(c.cur) {
			return
		}
		c.lowerStmt(s)
	}
}

func (c *loweringCtx) lowerStmt(s ir.Stmt) {
	switch st := s.(type) {
	case *ir.Assign:
		c.lowerAssign(st)
	case *ir.If:
		c.lowerIf(st)
	case *ir.For:
		c.lowerFor(st)
	case *ir.While:
		c.lowerWhile(st)
	case *ir.Break:
		if len(c.breakTargets) == 0 {
			c.fail("break outside loop")
			return
		}
		c.seal(ir.Terminator{Kind: ir.TermJump, Then: c.breakTargets[len(c.breakTargets)-1]})
	case *ir.Return:
		val := ir.NoReg
		if st.Value != nil {
			val = c.lowerExpr(st.Value)
		}
		c.seal(ir.Terminator{Kind: ir.TermReturn, Val: val})
	case *ir.CallStmt:
		c.lowerCall(&ir.CallExpr{Fn: st.Fn, Args: st.Args}, false)
	case *ir.Counter:
		c.emit(ir.Instr{Op: ir.LCount, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, Src: ir.NoReg, Imm: int64(st.ID)})
	default:
		c.fail("unknown statement %T", s)
	}
}

func (c *loweringCtx) lowerAssign(st *ir.Assign) {
	switch lhs := st.Lhs.(type) {
	case *ir.VarRef:
		if gi := GlobalIndex(c.prog, lhs.Name); gi >= 0 && !c.isLocalName(lhs.Name) {
			val := c.lowerExpr(st.Rhs)
			idx := c.constReg(int64(gi))
			c.emit(ir.Instr{Op: ir.LStore, Dst: ir.NoReg, A: idx, B: ir.NoReg, Src: val, Arr: GlobalsArray})
			return
		}
		dst, ok := c.vars[lhs.Name]
		if !ok {
			c.fail("assignment to undeclared variable %q", lhs.Name)
			return
		}
		val := c.lowerExpr(st.Rhs)
		c.emit(ir.Instr{Op: ir.LMov, Dst: dst, A: val, B: ir.NoReg, Src: ir.NoReg})
	case *ir.ArrayRef:
		idx := c.lowerExpr(lhs.Index)
		val := c.lowerExpr(st.Rhs)
		c.emit(ir.Instr{Op: ir.LStore, Dst: ir.NoReg, A: idx, B: ir.NoReg, Src: val, Arr: lhs.Name})
	default:
		c.fail("invalid assignment target %T", st.Lhs)
	}
}

func (c *loweringCtx) isLocalName(name string) bool {
	_, ok := c.vars[name]
	return ok
}

func (c *loweringCtx) lowerIf(st *ir.If) {
	cond := c.lowerExpr(st.Cond)
	thenB := c.newBlock()
	var elseB *ir.Block
	if len(st.Else) > 0 {
		elseB = c.newBlock()
	}
	joinB := c.newBlock()
	elseID := joinB.ID
	if elseB != nil {
		elseID = elseB.ID
	}
	c.seal(ir.Terminator{Kind: ir.TermBranch, Cond: cond, Then: thenB.ID, Else: elseID})

	c.cur = thenB
	c.lowerStmts(st.Then)
	c.seal(ir.Terminator{Kind: ir.TermJump, Then: joinB.ID})

	if elseB != nil {
		c.cur = elseB
		c.lowerStmts(st.Else)
		c.seal(ir.Terminator{Kind: ir.TermJump, Then: joinB.ID})
	}
	c.cur = joinB
}

func (c *loweringCtx) lowerFor(st *ir.For) {
	v, ok := c.vars[st.Var]
	if !ok {
		// Loop variables may be implicitly declared.
		v = c.allocReg(false)
		c.vars[st.Var] = v
	}
	from := c.lowerExpr(st.From)
	c.emit(ir.Instr{Op: ir.LMov, Dst: v, A: from, B: ir.NoReg, Src: ir.NoReg})

	header := c.newBlock()
	c.seal(ir.Terminator{Kind: ir.TermJump, Then: header.ID})

	c.depth++
	c.cur = header
	header.LoopDepth = c.depth
	to := c.lowerExpr(st.To)
	cond := c.allocReg(false)
	c.emit(ir.Instr{Op: ir.LCmpLt, Dst: cond, A: v, B: to, Src: ir.NoReg})

	body := c.newBlock()
	body.LoopDepth = c.depth
	c.depth--
	exit := c.newBlock()
	c.seal(ir.Terminator{Kind: ir.TermBranch, Cond: cond, Then: body.ID, Else: exit.ID})

	c.depth++
	c.cur = body
	c.breakTargets = append(c.breakTargets, exit.ID)
	c.lowerStmts(st.Body)
	c.breakTargets = c.breakTargets[:len(c.breakTargets)-1]
	if !c.isSealed(c.cur) {
		step := c.constReg(st.Step)
		c.emit(ir.Instr{Op: ir.LAdd, Dst: v, A: v, B: step, Src: ir.NoReg})
		c.seal(ir.Terminator{Kind: ir.TermJump, Then: header.ID})
	}
	c.depth--
	c.cur = exit
}

func (c *loweringCtx) lowerWhile(st *ir.While) {
	header := c.newBlock()
	c.seal(ir.Terminator{Kind: ir.TermJump, Then: header.ID})

	c.depth++
	c.cur = header
	header.LoopDepth = c.depth
	cond := c.lowerExpr(st.Cond)
	body := c.newBlock()
	body.LoopDepth = c.depth
	c.depth--
	exit := c.newBlock()
	c.seal(ir.Terminator{Kind: ir.TermBranch, Cond: cond, Then: body.ID, Else: exit.ID})

	c.depth++
	c.cur = body
	c.breakTargets = append(c.breakTargets, exit.ID)
	c.lowerStmts(st.Body)
	c.breakTargets = c.breakTargets[:len(c.breakTargets)-1]
	c.seal(ir.Terminator{Kind: ir.TermJump, Then: header.ID})
	c.depth--
	c.cur = exit
}

func (c *loweringCtx) constReg(v int64) ir.Reg {
	r := c.allocReg(false)
	c.emit(ir.Instr{Op: ir.LMovI, Dst: r, A: ir.NoReg, B: ir.NoReg, Src: ir.NoReg, Imm: v})
	return r
}

func (c *loweringCtx) lowerExpr(e ir.Expr) ir.Reg {
	switch ex := e.(type) {
	case *ir.ConstInt:
		return c.constReg(ex.V)
	case *ir.ConstFloat:
		r := c.allocReg(true)
		c.emit(ir.Instr{Op: ir.LMovF, Dst: r, A: ir.NoReg, B: ir.NoReg, Src: ir.NoReg, FImm: ex.V})
		return r
	case *ir.VarRef:
		if r, ok := c.vars[ex.Name]; ok {
			return r
		}
		if gi := GlobalIndex(c.prog, ex.Name); gi >= 0 {
			idx := c.constReg(int64(gi))
			r := c.allocReg(c.globalIsFloat(ex.Name))
			c.emit(ir.Instr{Op: ir.LLoad, Dst: r, A: idx, B: ir.NoReg, Src: ir.NoReg, Arr: GlobalsArray})
			return r
		}
		c.fail("reference to undeclared variable %q", ex.Name)
		return c.allocReg(false)
	case *ir.ArrayRef:
		idx := c.lowerExpr(ex.Index)
		isF := true
		if a, ok := c.prog.Array(ex.Name); ok {
			isF = a.Typ == ir.F64
		}
		r := c.allocReg(isF)
		c.emit(ir.Instr{Op: ir.LLoad, Dst: r, A: idx, B: ir.NoReg, Src: ir.NoReg, Arr: ex.Name})
		return r
	case *ir.Unary:
		x := c.lowerExpr(ex.X)
		op := ir.LNeg
		isF := c.float[x]
		switch ex.Op {
		case ir.OpNeg:
			if isF {
				op = ir.LFNeg
			}
		case ir.OpNot:
			op = ir.LNot
			isF = false
		}
		r := c.allocReg(isF)
		c.emit(ir.Instr{Op: op, Dst: r, A: x, B: ir.NoReg, Src: ir.NoReg})
		return r
	case *ir.Binary:
		x := c.lowerExpr(ex.X)
		y := c.lowerExpr(ex.Y)
		op, isF := binaryOpcode(ex)
		r := c.allocReg(isF && !ex.Op.IsComparison())
		c.emit(ir.Instr{Op: op, Dst: r, A: x, B: y, Src: ir.NoReg})
		return r
	case *ir.CallExpr:
		return c.lowerCall(ex, true)
	case *ir.Select:
		cond := c.lowerExpr(ex.Cond)
		x := c.lowerExpr(ex.X)
		y := c.lowerExpr(ex.Y)
		r := c.allocReg(c.float[x] || c.float[y])
		c.emit(ir.Instr{Op: ir.LSelect, Dst: r, A: cond, B: x, Src: y})
		return r
	default:
		c.fail("unknown expression %T", e)
		return c.allocReg(false)
	}
}

func (c *loweringCtx) globalIsFloat(name string) bool {
	for _, s := range c.prog.Scalars {
		if s.Name == name {
			return s.Typ == ir.F64
		}
	}
	return false
}

func (c *loweringCtx) lowerCall(ex *ir.CallExpr, needValue bool) ir.Reg {
	if _, ok := ir.IsIntrinsic(ex.Fn); !ok {
		if _, ok := c.prog.Funcs[ex.Fn]; !ok {
			c.fail("call to undefined function %q", ex.Fn)
			return c.allocReg(false)
		}
	}
	args := make([]ir.Reg, len(ex.Args))
	for i, a := range ex.Args {
		args[i] = c.lowerExpr(a)
	}
	dst := ir.NoReg
	if needValue {
		dst = c.allocReg(true)
	}
	c.emit(ir.Instr{Op: ir.LCall, Dst: dst, A: ir.NoReg, B: ir.NoReg, Src: ir.NoReg, Fn: ex.Fn, CallArgs: args})
	return dst
}

func binaryOpcode(ex *ir.Binary) (ir.Opcode, bool) {
	isF := ex.Typ == ir.F64
	if ex.Op.IsComparison() {
		base := ir.LCmpEq
		if isF {
			base = ir.LFCmpEq
		}
		return base + ir.Opcode(ex.Op-ir.OpEq), isF
	}
	switch ex.Op {
	case ir.OpAdd:
		if isF {
			return ir.LFAdd, true
		}
		return ir.LAdd, false
	case ir.OpSub:
		if isF {
			return ir.LFSub, true
		}
		return ir.LSub, false
	case ir.OpMul:
		if isF {
			return ir.LFMul, true
		}
		return ir.LMul, false
	case ir.OpDiv:
		if isF {
			return ir.LFDiv, true
		}
		return ir.LDiv, false
	case ir.OpMod:
		return ir.LMod, false
	case ir.OpAnd:
		return ir.LAnd, false
	case ir.OpOr:
		return ir.LOr, false
	case ir.OpXor:
		return ir.LXor, false
	case ir.OpShl:
		return ir.LShl, false
	case ir.OpShr:
		return ir.LShr, false
	}
	return ir.LNop, false
}
