package lower

import (
	"testing"

	"peak/internal/ir"
	"peak/internal/irbuild"
)

func lowerOK(t *testing.T, prog *ir.Program, fn *ir.Func) *ir.LFunc {
	t.Helper()
	lf, err := Lower(prog, fn)
	if err != nil {
		t.Fatalf("Lower: %v", err)
	}
	return lf
}

func TestStraightLine(t *testing.T) {
	prog := ir.NewProgram()
	b := irbuild.NewFunc("f")
	b.ScalarParam("x", ir.I64).Local("y", ir.I64)
	fn := b.Body(
		b.Set(b.V("y"), b.Add(b.V("x"), b.I(1))),
		b.Ret(b.V("y")),
	)
	prog.AddFunc(fn)
	lf := lowerOK(t, prog, fn)
	if len(lf.Blocks) != 1 {
		t.Errorf("blocks = %d, want 1", len(lf.Blocks))
	}
	if lf.Blocks[0].Term.Kind != ir.TermReturn {
		t.Errorf("terminator = %v, want return", lf.Blocks[0].Term.Kind)
	}
	if len(lf.ParamRegs) != 1 || lf.ParamRegs[0] == ir.NoReg {
		t.Errorf("param regs = %v", lf.ParamRegs)
	}
}

func TestIfElseCFG(t *testing.T) {
	prog := ir.NewProgram()
	b := irbuild.NewFunc("f")
	b.ScalarParam("x", ir.I64).Local("y", ir.I64)
	fn := b.Body(
		b.IfElse(b.Gt(b.V("x"), b.I(0)),
			b.Stmts(b.Set(b.V("y"), b.I(1))),
			b.Stmts(b.Set(b.V("y"), b.I(2))),
		),
		b.Ret(b.V("y")),
	)
	prog.AddFunc(fn)
	lf := lowerOK(t, prog, fn)
	// entry + then + else + join = 4 blocks.
	if len(lf.Blocks) != 4 {
		t.Errorf("blocks = %d, want 4", len(lf.Blocks))
	}
	entry := lf.Blocks[0]
	if entry.Term.Kind != ir.TermBranch {
		t.Fatalf("entry terminator = %v, want branch", entry.Term.Kind)
	}
	if len(entry.Succs()) != 2 {
		t.Errorf("entry succs = %v", entry.Succs())
	}
}

func TestLoopDepths(t *testing.T) {
	prog := ir.NewProgram()
	prog.AddArray("a", ir.F64, 16)
	b := irbuild.NewFunc("f")
	b.ScalarParam("n", ir.I64)
	fn := b.Body(
		b.For("i", b.I(0), b.V("n"), 1,
			b.For("j", b.I(0), b.V("n"), 1,
				b.Set(b.At("a", b.V("j")), b.F(1)),
			),
		),
	)
	prog.AddFunc(fn)
	lf := lowerOK(t, prog, fn)
	max := 0
	for _, blk := range lf.Blocks {
		if blk.LoopDepth > max {
			max = blk.LoopDepth
		}
	}
	if max != 2 {
		t.Errorf("max loop depth = %d, want 2", max)
	}
	if lf.Blocks[0].LoopDepth != 0 {
		t.Errorf("entry depth = %d, want 0", lf.Blocks[0].LoopDepth)
	}
}

func TestBreakTargetsLoopExit(t *testing.T) {
	prog := ir.NewProgram()
	b := irbuild.NewFunc("f")
	b.ScalarParam("n", ir.I64).Local("i", ir.I64)
	fn := b.Body(
		b.While(b.Lt(b.V("i"), b.V("n")),
			b.If(b.Gt(b.V("i"), b.I(3)), b.Break()),
			b.Set(b.V("i"), b.Add(b.V("i"), b.I(1))),
		),
		b.Ret(b.V("i")),
	)
	prog.AddFunc(fn)
	lowerOK(t, prog, fn) // must not error
}

func TestErrors(t *testing.T) {
	prog := ir.NewProgram()

	b := irbuild.NewFunc("breakless")
	fn := b.Body(b.Break())
	prog.AddFunc(fn)
	if _, err := Lower(prog, fn); err == nil {
		t.Error("break outside loop must fail")
	}

	b2 := irbuild.NewFunc("undef")
	fn2 := b2.Body(b2.Ret(b2.V("nope")))
	prog.AddFunc(fn2)
	if _, err := Lower(prog, fn2); err == nil {
		t.Error("undeclared variable must fail")
	}

	b3 := irbuild.NewFunc("badcall")
	fn3 := b3.Body(b3.Ret(b3.Call("missing")))
	prog.AddFunc(fn3)
	if _, err := Lower(prog, fn3); err == nil {
		t.Error("call to undefined function must fail")
	}
}

func TestGlobalsLowerToMemory(t *testing.T) {
	prog := ir.NewProgram()
	prog.AddScalar("g1", ir.I64)
	prog.AddScalar("g2", ir.F64)
	if GlobalIndex(prog, "g2") != 1 || GlobalIndex(prog, "nope") != -1 {
		t.Error("GlobalIndex broken")
	}
	b := irbuild.NewFunc("f")
	fn := b.Body(
		b.Set(b.V("g1"), b.Add(b.V("g1"), b.I(1))),
		b.Ret(b.V("g2")),
	)
	prog.AddFunc(fn)
	lf := lowerOK(t, prog, fn)
	loads, stores := 0, 0
	for _, blk := range lf.Blocks {
		for _, in := range blk.Instrs {
			if in.Op == ir.LLoad && in.Arr == GlobalsArray {
				loads++
			}
			if in.Op == ir.LStore && in.Arr == GlobalsArray {
				stores++
			}
		}
	}
	if loads != 2 || stores != 1 {
		t.Errorf("globals: %d loads, %d stores; want 2, 1", loads, stores)
	}
}

func TestOriginsAssigned(t *testing.T) {
	prog := ir.NewProgram()
	b := irbuild.NewFunc("f")
	b.ScalarParam("n", ir.I64).Local("s", ir.I64)
	fn := b.Body(
		b.For("i", b.I(0), b.V("n"), 1, b.Set(b.V("s"), b.Add(b.V("s"), b.V("i")))),
		b.Ret(b.V("s")),
	)
	prog.AddFunc(fn)
	lf := lowerOK(t, prog, fn)
	for _, blk := range lf.Blocks {
		if blk.Origin != blk.ID {
			t.Errorf("block %d origin = %d, want its own ID", blk.ID, blk.Origin)
		}
	}
}

func TestCounterLowering(t *testing.T) {
	prog := ir.NewProgram()
	b := irbuild.NewFunc("f")
	b.ScalarParam("n", ir.I64)
	fn := b.Fn()
	fn.Body = []ir.Stmt{
		&ir.Counter{ID: 0},
		&ir.Return{},
	}
	fn.NumCounters = 1
	prog.AddFunc(fn)
	lf := lowerOK(t, prog, fn)
	if lf.NumCounters != 1 {
		t.Errorf("NumCounters = %d, want 1", lf.NumCounters)
	}
	found := false
	for _, in := range lf.Blocks[0].Instrs {
		if in.Op == ir.LCount && in.Imm == 0 {
			found = true
		}
	}
	if !found {
		t.Error("LCount instruction missing")
	}
}
