package sched

import (
	"strings"
	"testing"
	"time"
)

// TestStatsDegenerateInputs pins the edge cases the serve /stats endpoint
// hits on a fresh or misconfigured pool: an empty pool (no job ever
// completed, Wall()==0) and nonsensical worker counts must yield clamped,
// finite figures — never NaN, ±Inf, or a negative utilization.
func TestStatsDegenerateInputs(t *testing.T) {
	busy := &Stats{}
	busy.enqueue(1)
	busy.run(func(int) { time.Sleep(2 * time.Millisecond) }, 0)

	cases := []struct {
		name    string
		stats   *Stats
		workers int
		want    float64 // exact expected utilization, -1 = "in (0, 1]"
	}{
		{"empty pool, one worker", &Stats{}, 1, 0},
		{"empty pool, zero workers", &Stats{}, 0, 0},
		{"empty pool, negative workers", &Stats{}, -3, 0},
		{"busy pool, zero workers", busy, 0, 0},
		{"busy pool, negative workers", busy, -1, 0},
		{"busy pool, one worker", busy, 1, -1},
	}
	for _, tc := range cases {
		u := tc.stats.Utilization(tc.workers)
		if u != u || u < 0 || u > 1 {
			t.Errorf("%s: Utilization(%d) = %v, want a value in [0, 1]", tc.name, tc.workers, u)
		}
		if tc.want >= 0 && u != tc.want {
			t.Errorf("%s: Utilization(%d) = %v, want %v", tc.name, tc.workers, u, tc.want)
		}
		if tc.want == -1 && u == 0 {
			t.Errorf("%s: Utilization(%d) = 0, want > 0", tc.name, tc.workers)
		}
	}
}

// TestStatsUtilizationClamped checks the upper clamp: accounting skew
// (busy time summed over workers vs a latched wall window) must never
// push the reported utilization past 1.
func TestStatsUtilizationClamped(t *testing.T) {
	s := &Stats{}
	s.enqueue(1)
	s.run(func(int) { time.Sleep(time.Millisecond) }, 0)
	// Inflate busy time past wall × workers to simulate the skew.
	s.busyNanos.Add(s.Wall().Nanoseconds() * 10)
	if u := s.Utilization(1); u != 1 {
		t.Fatalf("Utilization with inflated busy time = %v, want clamp to 1", u)
	}
}

// TestStatsSummaryDegenerate checks Summary never renders NaN and clamps
// a negative worker count.
func TestStatsSummaryDegenerate(t *testing.T) {
	for _, workers := range []int{-2, 0, 1} {
		line := (&Stats{}).Summary(workers)
		if strings.Contains(line, "NaN") || strings.Contains(line, "-Inf") || strings.Contains(line, "+Inf") {
			t.Errorf("Summary(%d) contains a non-finite number: %s", workers, line)
		}
		if strings.Contains(line, "-2 worker") {
			t.Errorf("Summary(%d) renders a negative worker count: %s", workers, line)
		}
		if !strings.Contains(line, "utilization 0%") {
			t.Errorf("Summary(%d) on an empty pool should report utilization 0%%: %s", workers, line)
		}
	}
}
