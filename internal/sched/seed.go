package sched

// DeriveSeed maps a root seed and a job key to the seed of that job's
// private random stream — rule 1 of the package determinism contract.
// Jobs must never share a rand.Rand; they derive their own stream here so
// that a job's randomness depends only on *which* job it is, not on when
// or where the scheduler ran it.
//
// The key names the job's position in the work DAG, e.g.
// "SWIM/round=2/flag=gcse/rng". Appending a distinct suffix per stream
// ("/rng", "/noise", "/clock") gives one job several independent streams.
//
// The mix is 64-bit FNV-1a over the key, XOR-folded with the root seed
// and finished with a splitmix64 avalanche so that near-identical keys
// (differing in one digit) still land far apart.
func DeriveSeed(root int64, key string) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	h ^= uint64(root)
	// splitmix64 finalizer.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return int64(h)
}
