// Package sched is the parallel tuning orchestrator: it shards the
// independent units of PEAK work — whole (tuning section × machine ×
// rating method) tuning jobs at the coarse grain, and Iterative
// Elimination's per-flag candidate evaluations at the fine grain — across
// a bounded set of workers while guaranteeing results identical to a
// serial run at any worker count.
//
// # Determinism contract
//
// The scheduler makes no decisions that influence results; it only
// decides *when* and *on which goroutine* a job runs. Determinism is the
// job author's obligation, discharged by two rules (ARCHITECTURE.md
// documents the system-wide picture):
//
//  1. Seed derivation: a job must never share a rand.Rand (or any other
//     mutable state) with another job. Every per-job random stream is
//     seeded with DeriveSeed(rootSeed, jobKey), where jobKey uniquely
//     names the job's position in the work DAG ("round=2/flag=gcse",
//     never an execution-order index). A job's output is then a pure
//     function of its inputs.
//
//  2. Reduction ordering: Map(n, fn) identifies jobs by index; callers
//     write results only into the slot for their index and combine them
//     after Map returns, in ascending index order. No reduction may
//     depend on completion order.
//
// Under these rules Serial and any parallel Pool produce bit-identical
// results, which TestPoolDeterminism and the cmd/ binaries'
// -workers 1 vs -workers N byte-comparison verify end to end.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool runs batches of independent jobs.
//
// Map is safe for concurrent use and may be nested: a job running inside
// Map may itself call Map on the same Pool (the coarse-grained experiment
// jobs do exactly that around the fine-grained candidate ratings).
// Nested calls never deadlock: a Map caller always executes jobs on its
// own goroutine too, extra workers are only an acceleration.
type Pool interface {
	// Map runs fn(i) for every i in [0, n) and returns when all calls
	// have finished. fn must be safe for concurrent invocation from
	// multiple goroutines and must communicate results only through
	// index-addressed storage (rule 2 above).
	Map(n int, fn func(i int))
	// Workers reports the configured concurrency bound (≥ 1).
	Workers() int
	// Stats returns the pool's live instrumentation counters (never nil).
	Stats() *Stats
}

// New returns a Pool with the given worker bound. workers <= 0 selects
// runtime.GOMAXPROCS(0); workers == 1 returns a Serial pool. The bound
// is global across nested Map calls: at most `workers` jobs execute
// simultaneously no matter how Maps stack.
func New(workers int) Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return NewSerial()
	}
	return &parallel{
		workers: workers,
		// The calling goroutine of every Map always participates, so only
		// workers-1 helper tokens exist.
		tokens: make(chan struct{}, workers-1),
	}
}

// Serial executes jobs on the calling goroutine in ascending index
// order — the fallback implementation used when no parallelism is wanted
// and the reference a parallel pool must match bit for bit.
type Serial struct {
	stats Stats
}

// NewSerial returns a serial pool.
func NewSerial() *Serial { return &Serial{} }

// Map runs fn(0), fn(1), …, fn(n-1) in order on the calling goroutine.
func (s *Serial) Map(n int, fn func(int)) {
	s.stats.enqueue(int64(n))
	for i := 0; i < n; i++ {
		s.stats.run(fn, i)
	}
}

// Workers reports 1.
func (s *Serial) Workers() int { return 1 }

// Stats returns the live counters.
func (s *Serial) Stats() *Stats { return &s.stats }

// parallel is the sharded pool: each Map hands out indices through an
// atomic counter to the calling goroutine plus as many helper goroutines
// as the global token budget allows at that moment. Helpers are per-Map
// (no long-lived worker state), which is what makes nesting safe: a
// blocked parent Map cannot starve its children because the child's
// caller always works.
type parallel struct {
	workers int
	tokens  chan struct{}
	stats   Stats
}

func (p *parallel) Map(n int, fn func(int)) {
	p.stats.enqueue(int64(n))
	if n == 0 {
		return
	}
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			p.stats.run(fn, i)
		}
	}

	var wg sync.WaitGroup
	// Spawn at most n-1 helpers, and only while global tokens are free;
	// everything else runs inline on the caller.
spawn:
	for h := 0; h < n-1; h++ {
		select {
		case p.tokens <- struct{}{}:
			wg.Add(1)
			go func() {
				defer func() {
					<-p.tokens
					wg.Done()
				}()
				work()
			}()
		default:
			break spawn
		}
	}
	work()
	wg.Wait()
}

func (p *parallel) Workers() int  { return p.workers }
func (p *parallel) Stats() *Stats { return &p.stats }
