package sched

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"
	"time"

	"peak/internal/trace"
)

// Stats holds a pool's live instrumentation: job counts, simulated cycles
// consumed, and busy time. All fields are safe for concurrent use; read
// them with Load while jobs run, or via Summary after the work is done.
type Stats struct {
	// JobsQueued counts jobs handed to Map; JobsRunning is the current
	// in-flight gauge; JobsDone counts completed jobs.
	JobsQueued  atomic.Int64
	JobsRunning atomic.Int64
	JobsDone    atomic.Int64
	// Cycles accumulates simulated cycles that jobs report via AddCycles
	// (the tuning-time ledger's view of how much work the pool carried).
	Cycles atomic.Int64
	// busyNanos accumulates wall time spent inside jobs, summed over
	// workers — the numerator of the utilization figure.
	busyNanos atomic.Int64
	// startNanos is the wall clock at first use (0 until then).
	startNanos atomic.Int64
	// endNanos latches the wall clock when the last queued job completes
	// (0 while jobs are queued or in flight). Queuing new work clears it,
	// so Wall freezes between batches instead of charging the pool for
	// whatever the caller does after the work is done.
	endNanos atomic.Int64
	// JobPanics counts jobs that panicked and were recovered by the pool
	// (the job contributes no result; the process survives). firstPanic
	// keeps the first panic's message for the Summary line.
	JobPanics  atomic.Int64
	firstPanic atomic.Pointer[string]
}

// FirstPanic returns the first recovered job panic's message ("" if none).
func (s *Stats) FirstPanic() string {
	if p := s.firstPanic.Load(); p != nil {
		return *p
	}
	return ""
}

// AddCycles lets a running job report simulated cycles it consumed.
func (s *Stats) AddCycles(n int64) { s.Cycles.Add(n) }

// enqueue records n jobs handed to Map and re-opens the wall-time window.
func (s *Stats) enqueue(n int64) {
	s.JobsQueued.Add(n)
	if n > 0 {
		s.endNanos.Store(0)
	}
}

// run executes one job with full accounting. A panicking job is recovered
// here — it becomes a counted per-job failure (JobPanics), never a process
// crash — and still completes for accounting purposes, so JobsDone reaches
// JobsQueued and Wall latches correctly even when jobs fail. Callers that
// need richer failure handling (the tuning engine retries injected panics
// under derived job keys) recover in the job itself; this recover is the
// pool's last line of defense for everyone else.
func (s *Stats) run(fn func(int), i int) {
	s.startNanos.CompareAndSwap(0, time.Now().UnixNano())
	s.JobsRunning.Add(1)
	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			s.JobPanics.Add(1)
			msg := fmt.Sprint(r)
			s.firstPanic.CompareAndSwap(nil, &msg)
		}
		s.busyNanos.Add(time.Since(start).Nanoseconds())
		s.JobsRunning.Add(-1)
		if s.JobsDone.Add(1) == s.JobsQueued.Load() {
			s.endNanos.Store(time.Now().UnixNano())
		}
	}()
	fn(i)
}

// Wall returns the wall time the pool spent on jobs: from the first job's
// start to now while work is queued or running, latched at the last job's
// completion once the pool drains.
func (s *Stats) Wall() time.Duration {
	start := s.startNanos.Load()
	if start == 0 {
		return 0
	}
	end := s.endNanos.Load()
	if end == 0 {
		end = time.Now().UnixNano()
	}
	return time.Duration(end - start)
}

// Utilization returns busy-time ÷ (wall-time × workers): 1.0 means every
// worker was saturated from first to last job. The result is clamped to
// [0, 1] and degenerate inputs — workers <= 0, or a pool that never ran a
// job so Wall() is zero — report 0 rather than NaN or ±Inf, so callers
// (Summary, the serve /stats endpoint) can format it unconditionally.
func (s *Stats) Utilization(workers int) float64 {
	wall := s.Wall().Nanoseconds()
	if wall <= 0 || workers <= 0 {
		return 0
	}
	// busyNanos sums completed-job time while endNanos latches at the last
	// completion instant, so rounding can push the ratio a hair past 1.
	u := float64(s.busyNanos.Load()) / float64(wall*int64(workers))
	return math.Min(math.Max(u, 0), 1)
}

// Line formats the live counters as a single status line.
func (s *Stats) Line() string {
	return fmt.Sprintf("jobs %d queued / %d running / %d done · %.2e simulated cycles · %s wall",
		s.JobsQueued.Load(), s.JobsRunning.Load(), s.JobsDone.Load(),
		float64(s.Cycles.Load()), s.Wall().Round(time.Millisecond))
}

// Summary formats the final utilization report for a finished pool. A
// nonsensical worker count (<= 0, possible when a caller forwards an
// unvalidated flag) is reported as 0 workers with zero utilization
// instead of a negative count.
func (s *Stats) Summary(workers int) string {
	if workers < 0 {
		workers = 0
	}
	line := fmt.Sprintf(
		"sched: %d jobs on %d worker(s) in %s · busy %s · utilization %.0f%% · %.3e simulated cycles",
		s.JobsDone.Load(), workers, s.Wall().Round(time.Millisecond),
		time.Duration(s.busyNanos.Load()).Round(time.Millisecond),
		100*s.Utilization(workers), float64(s.Cycles.Load()))
	if n := s.JobPanics.Load(); n > 0 {
		line += fmt.Sprintf(" · %d job panic(s) recovered (first: %s)", n, s.FirstPanic())
	}
	return line
}

// FillMetrics folds the pool's counters into a metrics registry under
// the "sched." prefix. Only the scheduling-independent totals are
// exported (job counts, simulated cycles, recovered panics, plus the
// worker count as a gauge) — wall and busy time are wall-clock and stay
// out of the deterministic -metrics report; Summary prints them. No-op
// when m is nil.
func (s *Stats) FillMetrics(m *trace.Metrics, workers int) {
	if m == nil {
		return
	}
	m.Add("sched.jobs_queued", s.JobsQueued.Load())
	m.Add("sched.jobs_done", s.JobsDone.Load())
	m.Add("sched.cycles", s.Cycles.Load())
	m.Add("sched.job_panics", s.JobPanics.Load())
	m.Gauge("sched.workers", int64(workers))
}

// StartProgress emits the pool's status line to w every interval until
// the returned stop function is called (exactly once). The cmd/ binaries
// wire this to -progress.
func StartProgress(w io.Writer, p Pool, interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				fmt.Fprintf(w, "sched: %s\n", p.Stats().Line())
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}
