package sched

import (
	"bytes"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		p := New(workers)
		const n = 1000
		hits := make([]int32, n)
		p.Map(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times, want 1", workers, i, h)
			}
		}
		st := p.Stats()
		if st.JobsQueued.Load() != n || st.JobsDone.Load() != n || st.JobsRunning.Load() != 0 {
			t.Errorf("workers=%d: stats %d/%d/%d, want %d/0/%d",
				workers, st.JobsQueued.Load(), st.JobsRunning.Load(), st.JobsDone.Load(), n, n)
		}
	}
}

func TestSerialRunsInIndexOrder(t *testing.T) {
	p := NewSerial()
	var order []int
	p.Map(64, func(i int) { order = append(order, i) })
	for i, got := range order {
		if got != i {
			t.Fatalf("serial order[%d] = %d", i, got)
		}
	}
}

// TestNestedMapDoesNotDeadlock exercises the coarse-over-fine shape the
// experiments use: outer jobs each fan out an inner Map on the same pool.
func TestNestedMapDoesNotDeadlock(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		p := New(workers)
		var total atomic.Int64
		done := make(chan struct{})
		go func() {
			defer close(done)
			p.Map(6, func(i int) {
				p.Map(17, func(j int) { total.Add(1) })
			})
		}()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatalf("workers=%d: nested Map deadlocked", workers)
		}
		if total.Load() != 6*17 {
			t.Fatalf("workers=%d: inner jobs = %d, want %d", workers, total.Load(), 6*17)
		}
	}
}

func TestMapResultsIndependentOfWorkerCount(t *testing.T) {
	// A toy deterministic computation: each job's output is a pure
	// function of its derived seed. Any worker count must agree.
	compute := func(workers int) []int64 {
		p := New(workers)
		out := make([]int64, 100)
		p.Map(len(out), func(i int) {
			s := DeriveSeed(2004, "job/"+string(rune('a'+i%26))+"/"+itoa(i))
			out[i] = s*3 + int64(i)
		})
		return out
	}
	ref := compute(1)
	for _, w := range []int{2, 8} {
		got := compute(w)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", w, i, got[i], ref[i])
			}
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestDeriveSeed(t *testing.T) {
	// Stable across calls.
	if DeriveSeed(1, "a") != DeriveSeed(1, "a") {
		t.Error("DeriveSeed not stable")
	}
	// Sensitive to root, key, and near-identical keys.
	seen := map[int64]string{}
	for _, tc := range []struct {
		root int64
		key  string
	}{
		{1, "a"}, {2, "a"}, {1, "b"}, {1, "ab"}, {1, "ba"},
		{1, "round=1/flag=gcse"}, {1, "round=2/flag=gcse"}, {1, "round=1/flag=gcse2"},
	} {
		s := DeriveSeed(tc.root, tc.key)
		if prev, dup := seen[s]; dup {
			t.Errorf("collision: (%d,%q) and %s -> %d", tc.root, tc.key, prev, s)
		}
		seen[s] = tc.key
	}
}

func TestWorkersAndNewDefaults(t *testing.T) {
	if w := New(0).Workers(); w < 1 {
		t.Errorf("New(0).Workers() = %d", w)
	}
	if _, ok := New(1).(*Serial); !ok {
		t.Error("New(1) must be the serial pool")
	}
	if w := New(4).Workers(); w != 4 {
		t.Errorf("New(4).Workers() = %d", w)
	}
}

func TestStatsCyclesAndSummary(t *testing.T) {
	p := New(2)
	p.Map(10, func(i int) { p.Stats().AddCycles(100) })
	if c := p.Stats().Cycles.Load(); c != 1000 {
		t.Errorf("cycles = %d, want 1000", c)
	}
	sum := p.Stats().Summary(p.Workers())
	for _, want := range []string{"10 jobs", "2 worker", "utilization"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary %q missing %q", sum, want)
		}
	}
}

// TestWallLatchesAfterLastJob: Wall must measure first-job-start to
// last-job-completion, not to whenever the caller happens to ask. Before
// the latch, a sleep between pool completion and Summary inflated the wall
// figure and deflated utilization.
func TestWallLatchesAfterLastJob(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := New(workers)
		p.Map(8, func(i int) { time.Sleep(2 * time.Millisecond) })
		wall := p.Stats().Wall()
		if wall <= 0 {
			t.Fatalf("workers=%d: wall = %v after Map", workers, wall)
		}
		time.Sleep(60 * time.Millisecond)
		if got := p.Stats().Wall(); got != wall {
			t.Errorf("workers=%d: wall grew while idle: %v -> %v", workers, wall, got)
		}
		sum := p.Stats().Summary(p.Workers())
		time.Sleep(60 * time.Millisecond)
		if again := p.Stats().Summary(p.Workers()); again != sum {
			t.Errorf("workers=%d: Summary unstable while idle:\n%s\n%s", workers, sum, again)
		}

		// A new batch re-opens the window: Wall must grow past the latch.
		p.Map(4, func(i int) { time.Sleep(2 * time.Millisecond) })
		if got := p.Stats().Wall(); got <= wall {
			t.Errorf("workers=%d: wall did not resume after new Map: %v <= %v", workers, got, wall)
		}
	}
}

func TestStartProgressEmitsAndStops(t *testing.T) {
	p := New(2)
	var buf bytes.Buffer
	stop := StartProgress(&buf, p, 10*time.Millisecond)
	p.Map(4, func(i int) { time.Sleep(30 * time.Millisecond) })
	stop()
	if !strings.Contains(buf.String(), "jobs") {
		t.Errorf("no progress emitted: %q", buf.String())
	}
	n := buf.Len()
	time.Sleep(30 * time.Millisecond)
	if buf.Len() != n {
		t.Error("progress kept emitting after stop")
	}
}

// A panicking job must not take down the process: the pool recovers it,
// counts it, keeps Wall latching correct, and completes the batch.
func TestJobPanicIsolated(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := New(workers)
		done := make([]bool, 16)
		p.Map(16, func(i int) {
			if i%5 == 2 {
				panic(fmt.Sprintf("boom %d", i))
			}
			done[i] = true
		})
		for i := range done {
			if want := i%5 != 2; done[i] != want {
				t.Errorf("workers=%d: job %d done=%v, want %v", workers, i, done[i], want)
			}
		}
		st := p.Stats()
		if got := st.JobPanics.Load(); got != 3 {
			t.Errorf("workers=%d: JobPanics = %d, want 3", workers, got)
		}
		if st.FirstPanic() == "" || !strings.Contains(st.FirstPanic(), "boom") {
			t.Errorf("workers=%d: FirstPanic = %q", workers, st.FirstPanic())
		}
		if got, want := st.JobsDone.Load(), st.JobsQueued.Load(); got != want {
			t.Errorf("workers=%d: JobsDone %d != JobsQueued %d after panics", workers, got, want)
		}
		// Wall must latch: panicked jobs still count as completed.
		wall := st.Wall()
		time.Sleep(30 * time.Millisecond)
		if got := st.Wall(); got != wall {
			t.Errorf("workers=%d: wall grew while idle after panics: %v -> %v", workers, wall, got)
		}
		if !strings.Contains(st.Summary(workers), "3 job panic(s)") {
			t.Errorf("workers=%d: Summary missing panic count: %s", workers, st.Summary(workers))
		}
	}
}
