package cli

import (
	"fmt"
	"strings"

	"peak/internal/bench"
	"peak/internal/core"
	"peak/internal/machine"
)

// FormatTuneReport renders the canonical result block of one finished
// tuning process — the exact text cmd/peak prints for the same arguments.
// It is shared between cmd/peak and the peak-serve daemon so that a
// service job's report is byte-for-byte the CLI's output (the serve smoke
// check in the tier-1 recipe asserts exactly that). faults adds the
// fault-recovery block; baseCycles/tunedCycles are the ref-dataset
// measurements of -O3 and the winning flag set.
//
// Every figure in the block is scheduling-independent (the cache counters
// are the tune's own ledger, not the shared cache's global state), so the
// report honours the repository-wide bit-identity contract.
func FormatTuneReport(b *bench.Benchmark, m *machine.Machine, res *core.TuneResult, faults bool, baseCycles, tunedCycles int64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "benchmark:      %s/%s on %s\n", b.Name, b.TSName, m.Name)
	fmt.Fprintf(&sb, "rating method:  %s (switches: %d)\n", res.MethodUsed, res.MethodSwitches)
	fmt.Fprintf(&sb, "flags removed:  %v\n", res.Removed)
	fmt.Fprintf(&sb, "best flags:     %s\n", res.Best)
	fmt.Fprintf(&sb, "tuning cost:    %d simulated cycles, %d program runs, %d versions rated\n",
		res.TuningCycles, res.ProgramRuns, res.VersionsRated)
	fmt.Fprintf(&sb, "compile cache:  %d lookups, %d hits, %d compiles (%d shared code), %d ratings skipped by code dedup\n",
		res.CacheLookups, res.CacheHits, res.CacheMisses, res.SharedCode, res.DedupSkips)
	if faults {
		fmt.Fprintf(&sb, "fault recovery: %d flag(s) quarantined as miscompiled %v\n", len(res.Quarantined), res.Quarantined)
		fmt.Fprintf(&sb, "                retries: %d compile, %d hung measurement, %d panicked job; %d verification invocations\n",
			res.CompileRetries, res.MeasureRetries, res.JobRetries, res.VerifyInvocations)
	}
	fmt.Fprintf(&sb, "ref performance: -O3 %d cycles, tuned %d cycles, improvement %.1f%%\n",
		baseCycles, tunedCycles, 100*core.Improvement(baseCycles, tunedCycles))
	return sb.String()
}
