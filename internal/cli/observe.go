// Package cli holds the observability plumbing shared by the command-line
// tools: every cmd exposes the same -trace/-metrics flag pair, and an
// Observer turns that pair into the (possibly nil) trace buffer and
// metrics registry the engine and experiment drivers accept. It also
// carries the canonical tune-result report (FormatTuneReport) so that
// cmd/peak and the peak-serve daemon render byte-identical results.
package cli

import (
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"syscall"

	"peak/internal/trace"
)

// Observer bundles one command invocation's observability outputs. Build
// it after flag parsing with NewObserver, thread Buf and Mx into the
// tuning or experiment entry points (both are nil when the corresponding
// flag is off — every consumer is nil-safe), and call Flush before
// exiting. Error paths should flush too: a partial trace of a failed run
// is still a valid, analyzable trace.
//
// Flush is idempotent and safe for concurrent use: the first call writes
// the outputs, every later call is a no-op returning the first call's
// error. That is what makes it safe to flush both from the normal exit
// path and from a signal handler (FlushOnInterrupt) without the second
// flush truncating the trace file and rewriting it from the
// by-then-empty buffer.
type Observer struct {
	// Buf is the run's trace buffer (nil when -trace is off).
	Buf *trace.Buffer
	// Mx is the run's metrics registry (nil when -metrics is off).
	Mx *trace.Metrics

	tracePath string
	metricsTo io.Writer

	mu       sync.Mutex
	flushed  bool
	flushErr error
}

// NewObserver returns an observer for one command run: tracePath is the
// -trace destination ("" disables tracing), metrics enables the -metrics
// registry, and metricsTo receives the formatted metrics table on Flush
// (stderr in the cmds, keeping the results on stdout byte-identical with
// observability on or off).
func NewObserver(tracePath string, metrics bool, metricsTo io.Writer) *Observer {
	o := &Observer{tracePath: tracePath, metricsTo: metricsTo}
	if tracePath != "" {
		o.Buf = trace.NewBuffer()
	}
	if metrics {
		o.Mx = trace.NewMetrics()
	}
	return o
}

// Flush writes the buffered trace to the -trace file and the metrics
// table to the observer's writer, exactly once: repeated calls (a signal
// handler racing the normal exit path, a defer after an explicit flush)
// are no-ops returning the first call's error. Safe to call when both
// outputs are disabled.
func (o *Observer) Flush() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.flushed {
		return o.flushErr
	}
	o.flushed = true
	o.flushErr = o.flushLocked()
	return o.flushErr
}

func (o *Observer) flushLocked() error {
	if o.Buf != nil {
		f, err := os.Create(o.tracePath)
		if err != nil {
			return err
		}
		tr := trace.NewTracer(f)
		tr.Flush(o.Buf)
		if err := tr.Close(); err != nil {
			f.Close()
			return fmt.Errorf("write %s: %w", o.tracePath, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("write %s: %w", o.tracePath, err)
		}
	}
	if o.Mx != nil && o.metricsTo != nil {
		fmt.Fprint(o.metricsTo, o.Mx.Format())
	}
	return nil
}

// FlushOnInterrupt installs a SIGINT/SIGTERM handler that runs extra (if
// non-nil — journal syncing, resume hints), flushes the observer, and
// exits with status 130. Without it a cmd interrupted mid-run loses the
// entire buffered trace; with it the events recorded so far land on disk
// as a valid partial trace. name prefixes the error line written to w
// when the interrupt-time flush itself fails.
//
// The handler races the normal exit path only through Flush, which is
// idempotent, so installing it is safe even in cmds that always flush
// before returning.
func (o *Observer) FlushOnInterrupt(w io.Writer, name string, extra func()) {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		if extra != nil {
			extra()
		}
		if err := o.Flush(); err != nil {
			fmt.Fprintf(w, "%s: trace: %v\n", name, err)
		} else if o.Buf != nil {
			fmt.Fprintf(w, "%s: interrupted; partial trace flushed to %s\n", name, o.tracePath)
		}
		os.Exit(130)
	}()
}
