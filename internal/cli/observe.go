// Package cli holds the observability plumbing shared by the command-line
// tools: every cmd exposes the same -trace/-metrics flag pair, and an
// Observer turns that pair into the (possibly nil) trace buffer and
// metrics registry the engine and experiment drivers accept.
package cli

import (
	"fmt"
	"io"
	"os"

	"peak/internal/trace"
)

// Observer bundles one command invocation's observability outputs. Build
// it after flag parsing with NewObserver, thread Buf and Mx into the
// tuning or experiment entry points (both are nil when the corresponding
// flag is off — every consumer is nil-safe), and call Flush exactly once
// before exiting. Error paths should flush too: a partial trace of a
// failed run is still a valid, analyzable trace.
type Observer struct {
	// Buf is the run's trace buffer (nil when -trace is off).
	Buf *trace.Buffer
	// Mx is the run's metrics registry (nil when -metrics is off).
	Mx *trace.Metrics

	tracePath string
	metricsTo io.Writer
}

// NewObserver returns an observer for one command run: tracePath is the
// -trace destination ("" disables tracing), metrics enables the -metrics
// registry, and metricsTo receives the formatted metrics table on Flush
// (stderr in the cmds, keeping the results on stdout byte-identical with
// observability on or off).
func NewObserver(tracePath string, metrics bool, metricsTo io.Writer) *Observer {
	o := &Observer{tracePath: tracePath, metricsTo: metricsTo}
	if tracePath != "" {
		o.Buf = trace.NewBuffer()
	}
	if metrics {
		o.Mx = trace.NewMetrics()
	}
	return o
}

// Flush writes the buffered trace to the -trace file and the metrics
// table to the observer's writer. Safe to call when both outputs are
// disabled; returns the first write error.
func (o *Observer) Flush() error {
	if o.Buf != nil {
		f, err := os.Create(o.tracePath)
		if err != nil {
			return err
		}
		tr := trace.NewTracer(f)
		tr.Flush(o.Buf)
		if err := tr.Close(); err != nil {
			f.Close()
			return fmt.Errorf("write %s: %w", o.tracePath, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("write %s: %w", o.tracePath, err)
		}
	}
	if o.Mx != nil && o.metricsTo != nil {
		fmt.Fprint(o.metricsTo, o.Mx.Format())
	}
	return nil
}
