package cli

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"peak/internal/trace"
)

// TestFlushIdempotent is the regression test for the double-flush data
// loss: Tracer.Flush drains the buffer, so a second Flush used to
// re-Create the trace file and rewrite it from the by-then-empty buffer —
// an interrupt handler racing the normal exit path could truncate a
// just-written trace to zero events. Now the second call is a no-op.
func TestFlushIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	var metricsOut bytes.Buffer
	o := NewObserver(path, true, &metricsOut)
	o.Buf.Emit(trace.Event{Kind: trace.KindRate, Tune: "t", JobCycles: 7})
	o.Buf.Emit(trace.Event{Kind: trace.KindTuneEnd, Tune: "t", Cycles: 7})
	o.Mx.Add("test.counter", 1)

	readEvents := func() []trace.Event {
		t.Helper()
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		evs, err := trace.ReadEvents(f)
		if err != nil {
			t.Fatal(err)
		}
		return evs
	}

	if err := o.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := readEvents(); len(got) != 2 {
		t.Fatalf("first flush wrote %d events, want 2", len(got))
	}
	// The second flush (signal handler, stray defer) must leave the file
	// untouched and not re-print the metrics table.
	if err := o.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := readEvents(); len(got) != 2 {
		t.Fatalf("second flush left %d events, want 2 (file was rewritten)", len(got))
	}
	if n := strings.Count(metricsOut.String(), "test.counter"); n != 1 {
		t.Fatalf("metrics table printed %d times, want 1", n)
	}
}

// TestFlushIdempotentError: a failing first flush must report the same
// error from later calls, not silently succeed by skipping the work.
func TestFlushIdempotentError(t *testing.T) {
	o := NewObserver(filepath.Join(t.TempDir(), "no", "such", "dir", "t.jsonl"), false, nil)
	o.Buf.Emit(trace.Event{Kind: trace.KindRate})
	err1 := o.Flush()
	if err1 == nil {
		t.Fatal("flush to an unwritable path succeeded")
	}
	if err2 := o.Flush(); err2 != err1 {
		t.Fatalf("second flush returned %v, want the first call's error %v", err2, err1)
	}
}

// TestFlushDisabledOutputs: with both -trace and -metrics off, Flush is a
// safe no-op any number of times.
func TestFlushDisabledOutputs(t *testing.T) {
	o := NewObserver("", false, nil)
	for i := 0; i < 3; i++ {
		if err := o.Flush(); err != nil {
			t.Fatalf("flush %d: %v", i, err)
		}
	}
}
