// Package store persists tuning state across process restarts: a
// content-addressed snapshot of the compile cache (internal/vcache) and a
// memo table of finished rating work, both in one CRC-32C-framed file
// written atomically (temp + fsync + rename).
//
// The store is the disk tier of the two-tier cache. The memory tier — the
// vcache — answers repeat compilations within a process; the store carries
// them across processes, and carries something the memory tier never held:
// memoized rating results, so a warm restart can skip simulation entirely
// for work it has already measured.
//
// Determinism contract: the memo read set is frozen at Open. LookupMemo
// answers only from records loaded off disk at open time; RecordMemo
// writes to a pending overlay that becomes visible only after Flush and a
// reopen. A run therefore sees the same memo answers at every worker
// count and in every scheduling order, which is what keeps warm outputs
// byte-identical to cold ones. Payloads must themselves be deterministic
// (same key ⇒ same bytes) — rating results under the engine's fixed seed
// derivation are, which is also why results that depend on injected
// faults must never be memoized: fault draws consume per-process stream
// state that a key cannot capture.
package store

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"peak/internal/opt"
	"peak/internal/sim"
	"peak/internal/vcache"
)

// storeFile is the single data file inside the store directory.
const storeFile = "peak.store"

// memoKey identifies one memo record: Kind partitions the namespaces
// ("rate", "cell", "job", ...), Key is the caller's full identity string.
type memoKey struct {
	Kind, Key string
}

// Stats is a snapshot of the store's counters, shaped for JSON (the serve
// /stats "store" and "memo" blocks render it). All values are
// scheduling-independent: the loaded set is fixed at Open and the pending
// set depends only on which work ran, not on order.
type Stats struct {
	// Versions and Entries count the cache bodies and alias keys loaded
	// from disk at Open; Memos the memo records loaded (the frozen read
	// set).
	Versions int64 `json:"versions"`
	Entries  int64 `json:"entries"`
	Memos    int64 `json:"memos"`
	// Preloaded is the number of alias keys AttachCache installed into
	// the attached compile cache.
	Preloaded int64 `json:"preloaded"`
	// MemoHits and MemoMisses count LookupMemo outcomes against the
	// frozen read set; Pending the records queued by RecordMemo for the
	// next Flush.
	MemoHits   int64 `json:"memo_hits"`
	MemoMisses int64 `json:"memo_misses"`
	Pending    int64 `json:"pending"`
	// Flushes counts completed Flush rewrites; FlushedBytes the size of
	// the last file written.
	Flushes      int64 `json:"flushes"`
	FlushedBytes int64 `json:"flushed_bytes"`
}

// RecoveryReport describes what Open found on disk, mirroring the fault
// journal's recovery contract: the valid prefix is kept, everything after
// the first torn or corrupt frame is dropped and counted.
type RecoveryReport struct {
	// Records is the number of intact frames read.
	Records int `json:"records"`
	// DroppedBytes is the size of the torn/corrupt suffix discarded;
	// TornTail is set when one existed.
	DroppedBytes int  `json:"dropped_bytes"`
	TornTail     bool `json:"torn_tail"`
	// HeaderInvalid is set when the file existed but its magic or format
	// version did not match; the store then opens empty.
	HeaderInvalid bool `json:"header_invalid"`
	// DroppedBodies counts version bodies rejected at load: payload
	// decode failure, a dangling callee reference, or — the integrity
	// backstop — a body whose re-computed 128-bit fingerprint does not
	// match the fingerprint it was stored under. DroppedAliases counts
	// alias keys whose body was rejected.
	DroppedBodies  int `json:"dropped_bodies"`
	DroppedAliases int `json:"dropped_aliases"`
}

// Store is a persistent warm-start store bound to one directory. All
// methods are safe for concurrent use.
type Store struct {
	mu    sync.Mutex
	dir   string
	cache *vcache.Cache // attached by AttachCache; exported at Flush

	versions map[vcache.FP128]*sim.Version // loaded, verified, frozen bodies
	entries  []vcache.SnapshotEntry        // loaded alias keys
	memo     map[memoKey][]byte            // frozen read set (loaded at Open)
	pending  map[memoKey][]byte            // overlay visible after Flush+reopen

	stats    Stats
	recovery RecoveryReport
}

// Open loads the store in dir, creating the directory if needed. A missing
// file opens an empty store; a damaged file opens with the valid prefix
// and a RecoveryReport, never an error. Errors are reserved for an
// unusable directory.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:      dir,
		versions: make(map[vcache.FP128]*sim.Version),
		memo:     make(map[memoKey][]byte),
		pending:  make(map[memoKey][]byte),
	}
	data, err := os.ReadFile(filepath.Join(dir, storeFile))
	if os.IsNotExist(err) {
		return s, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s.load(data)
	return s, nil
}

// load parses the file contents into the frozen read set.
func (s *Store) load(data []byte) {
	recs, dropped, torn, headerInvalid := parseFile(data)
	s.recovery = RecoveryReport{
		Records:       len(recs),
		DroppedBytes:  dropped,
		TornTail:      torn,
		HeaderInvalid: headerInvalid,
	}
	type pendingBody struct {
		v    *sim.Version
		refs []calleeRef
	}
	bodies := make(map[vcache.FP128]pendingBody)
	for _, r := range recs {
		d := &decoder{buf: r.payload}
		switch r.kind {
		case recVersionBody:
			fp := d.fp()
			v, refs := decodeVersion(d)
			if v == nil {
				s.recovery.DroppedBodies++
				continue
			}
			bodies[fp] = pendingBody{v: v, refs: refs}
		case recAlias:
			var se vcache.SnapshotEntry
			se.Key.Prog = d.u64()
			se.Key.Fn = d.str()
			se.Key.Flags = opt.FlagSet(d.u64())
			se.Key.Machine = d.str()
			se.FP = d.fp()
			se.Shared = d.bool()
			if d.err != nil || len(d.buf) != 0 {
				s.recovery.DroppedAliases++
				continue
			}
			s.entries = append(s.entries, se)
		case recMemo:
			kind := d.str()
			key := d.str()
			n := d.count(1)
			if d.err != nil || n != len(d.buf) {
				continue
			}
			val := make([]byte, n)
			copy(val, d.buf)
			s.memo[memoKey{Kind: kind, Key: key}] = val
		}
	}
	// Link every resolvable callee reference, then verify each body by
	// re-computing its full fingerprint. Verification is a pure function
	// of decoded content, so the kept set is deterministic. It catches a
	// dangling callee (the missing entry changes the hash), a payload
	// forged under another body's low 64 bits (the collision regression:
	// the store keys on all 128, so the forgery occupies its own slot and
	// fails its own check) and any decode drift.
	for _, pb := range bodies {
		for _, ref := range pb.refs {
			callee, exists := bodies[ref.FP]
			if !exists {
				continue
			}
			if pb.v.Callees == nil {
				pb.v.Callees = make(map[string]*sim.Version)
			}
			pb.v.Callees[ref.Name] = callee.v
		}
	}
	for fp, pb := range bodies {
		if vcache.Fingerprint128(pb.v) != fp {
			s.recovery.DroppedBodies++
			continue
		}
		pb.v.Freeze()
		s.versions[fp] = pb.v
	}
	kept := s.entries[:0]
	for _, se := range s.entries {
		if _, ok := s.versions[se.FP]; !ok {
			s.recovery.DroppedAliases++
			continue
		}
		kept = append(kept, se)
	}
	s.entries = kept
	s.stats.Versions = int64(len(s.versions))
	s.stats.Entries = int64(len(s.entries))
	s.stats.Memos = int64(len(s.memo))
}

// AttachCache preloads the store's snapshot into c and remembers c as the
// cache to export at Flush time. Returns the number of keys installed.
func (s *Store) AttachCache(c *vcache.Cache) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cache = c
	n := c.Preload(vcache.Snapshot{Versions: s.versions, Entries: s.entries})
	s.stats.Preloaded += int64(n)
	return n
}

// LookupMemo returns the payload recorded under (kind, key) in the frozen
// read set loaded at Open. Records written this process (RecordMemo) are
// never returned — they become visible only after Flush and a reopen,
// which is what keeps memo answers independent of scheduling.
func (s *Store) LookupMemo(kind, key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.memo[memoKey{Kind: kind, Key: key}]
	if ok {
		s.stats.MemoHits++
	} else {
		s.stats.MemoMisses++
	}
	return v, ok
}

// RecordMemo queues payload under (kind, key) for the next Flush. The
// first write wins; re-records of a key already queued or already in the
// read set are dropped (payloads are required to be deterministic, so all
// writers of one key carry identical bytes). Nil-safe no-op payloads are
// copied, so callers may reuse their buffer.
func (s *Store) RecordMemo(kind, key string, payload []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	mk := memoKey{Kind: kind, Key: key}
	if _, ok := s.memo[mk]; ok {
		return
	}
	if _, ok := s.pending[mk]; ok {
		return
	}
	cp := make([]byte, len(payload))
	copy(cp, payload)
	s.pending[mk] = cp
	s.stats.Pending++
}

// MemoEach calls fn for every record of the given kind in the frozen read
// set, in sorted key order. Pending records are not visited — like
// LookupMemo, iteration sees only what was on disk at Open.
func (s *Store) MemoEach(kind string, fn func(key string, payload []byte)) {
	s.mu.Lock()
	keys := make([]string, 0)
	for mk := range s.memo {
		if mk.Kind == kind {
			keys = append(keys, mk.Key)
		}
	}
	sort.Strings(keys)
	vals := make([][]byte, len(keys))
	for i, k := range keys {
		vals[i] = s.memo[memoKey{Kind: kind, Key: k}]
	}
	s.mu.Unlock()
	for i, k := range keys {
		fn(k, vals[i])
	}
}

// Flush rewrites the store file atomically: the attached cache's current
// snapshot (if one is attached), plus the union of the loaded and pending
// memo sets, framed, written to a temp file, fsynced and renamed over the
// old file. The file is byte-deterministic for a given content: bodies
// are sorted by fingerprint, aliases by key, memos by (kind, key).
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()

	buf := make([]byte, 0, 1<<16)
	buf = append(buf, storeMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, storeVersion)

	sn := vcache.Snapshot{Versions: s.versions, Entries: s.entries}
	if s.cache != nil {
		sn = s.cache.Export()
		// Bodies only the disk knew about (e.g. for machines this process
		// never compiled for) must survive the rewrite.
		for fp, v := range s.versions {
			if _, ok := sn.Versions[fp]; !ok {
				sn.Versions[fp] = v
			}
		}
		have := make(map[vcache.Key]bool, len(sn.Entries))
		for _, se := range sn.Entries {
			have[se.Key] = true
		}
		for _, se := range s.entries {
			if !have[se.Key] {
				sn.Entries = append(sn.Entries, se)
			}
		}
		sortEntries(sn.Entries)
	}
	fps := make([]vcache.FP128, 0, len(sn.Versions))
	for fp := range sn.Versions {
		fps = append(fps, fp)
	}
	sort.Slice(fps, func(i, j int) bool {
		if fps[i].Hi != fps[j].Hi {
			return fps[i].Hi < fps[j].Hi
		}
		return fps[i].Lo < fps[j].Lo
	})
	for _, fp := range fps {
		e := &encoder{}
		e.fp(fp)
		encodeVersion(e, sn.Versions[fp])
		buf = appendRecord(buf, recVersionBody, e.buf)
	}
	for _, se := range sn.Entries {
		e := &encoder{}
		e.u64(se.Key.Prog)
		e.str(se.Key.Fn)
		e.u64(uint64(se.Key.Flags))
		e.str(se.Key.Machine)
		e.fp(se.FP)
		e.bool(se.Shared)
		buf = appendRecord(buf, recAlias, e.buf)
	}
	mks := make([]memoKey, 0, len(s.memo)+len(s.pending))
	for mk := range s.memo {
		mks = append(mks, mk)
	}
	for mk := range s.pending {
		mks = append(mks, mk)
	}
	sort.Slice(mks, func(i, j int) bool {
		if mks[i].Kind != mks[j].Kind {
			return mks[i].Kind < mks[j].Kind
		}
		return mks[i].Key < mks[j].Key
	})
	for _, mk := range mks {
		val, ok := s.memo[mk]
		if !ok {
			val = s.pending[mk]
		}
		e := &encoder{}
		e.str(mk.Kind)
		e.str(mk.Key)
		e.u32(uint32(len(val)))
		e.buf = append(e.buf, val...)
		buf = appendRecord(buf, recMemo, e.buf)
	}

	tmp, err := os.CreateTemp(s.dir, storeFile+".tmp*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, storeFile)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	s.stats.Flushes++
	s.stats.FlushedBytes = int64(len(buf))
	return nil
}

// Stats returns a consistent snapshot of the counters (taken under the
// same mutex every writer holds).
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Recovery returns what Open found on disk.
func (s *Store) Recovery() RecoveryReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovery
}

// sortEntries orders snapshot entries by (Prog, Fn, Machine, Flags), the
// same order vcache.Export emits.
func sortEntries(entries []vcache.SnapshotEntry) {
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i].Key, entries[j].Key
		if a.Prog != b.Prog {
			return a.Prog < b.Prog
		}
		if a.Fn != b.Fn {
			return a.Fn < b.Fn
		}
		if a.Machine != b.Machine {
			return a.Machine < b.Machine
		}
		return a.Flags < b.Flags
	})
}
