package store

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"peak/internal/machine"
	"peak/internal/opt"
	"peak/internal/sim"
	"peak/internal/vcache"
	"peak/internal/workloads"
)

// fillCache compiles a handful of flag sets for bench into a fresh cache
// and returns the cache plus the keys used.
func fillCache(t *testing.T, bench string) (*vcache.Cache, []vcache.Key) {
	t.Helper()
	b, ok := workloads.ByName(bench)
	if !ok {
		t.Fatalf("benchmark %s not found", bench)
	}
	m := machine.SPARCII()
	pk := vcache.ProgramKey(b.Prog)
	c := vcache.New()
	flags := []opt.FlagSet{opt.O3()}
	for _, f := range opt.AllFlags()[:5] {
		flags = append(flags, opt.O3().Without(f))
	}
	var keys []vcache.Key
	for _, fs := range flags {
		fs := fs
		key := vcache.Key{Prog: pk, Fn: b.TSName, Flags: fs, Machine: m.Name}
		if _, err := c.Resolve(key, func() (*sim.Version, error) {
			return opt.Compile(b.Prog, b.TS, fs, m)
		}); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, key)
	}
	return c, keys
}

func TestOpenEmptyDir(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Versions != 0 || st.Entries != 0 || st.Memos != 0 {
		t.Fatalf("fresh store stats = %+v, want zeros", st)
	}
	if r := s.Recovery(); r.Records != 0 || r.TornTail || r.HeaderInvalid {
		t.Fatalf("fresh store recovery = %+v, want clean", r)
	}
}

// TestSnapshotRoundTrip is the tentpole integration check at package
// level: a populated cache flushed through the store and reloaded in a
// new Store must preload a fresh cache so that every original key
// resolves as a disk hit, with the resolved versions content-identical
// (equal full fingerprints) to the originals.
func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	warm, keys := fillCache(t, "MGRID")

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.AttachCache(warm)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r := s2.Recovery(); r.TornTail || r.HeaderInvalid || r.DroppedBodies != 0 || r.DroppedAliases != 0 {
		t.Fatalf("clean reopen reported recovery %+v", r)
	}
	st := s2.Stats()
	if st.Entries != int64(len(keys)) {
		t.Fatalf("reloaded %d entries, want %d", st.Entries, len(keys))
	}
	cold := vcache.New()
	if n := s2.AttachCache(cold); n != len(keys) {
		t.Fatalf("preloaded %d keys, want %d", n, len(keys))
	}
	wantSn := warm.Export()
	want := make(map[vcache.Key]vcache.SnapshotEntry)
	for _, se := range wantSn.Entries {
		want[se.Key] = se
	}
	for _, key := range keys {
		r, err := cold.Resolve(key, func() (*sim.Version, error) {
			t.Fatalf("key %+v recompiled despite warm store", key)
			return nil, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if !r.FromDisk {
			t.Errorf("key %+v not marked FromDisk", key)
		}
		if r.FP != want[key].FP {
			t.Errorf("key %+v round-tripped to fingerprint %s, want %s", key, r.FP, want[key].FP)
		}
		if vcache.Fingerprint128(r.V) != want[key].FP {
			t.Errorf("key %+v: decoded body re-fingerprints differently", key)
		}
	}
}

// TestFlushDeterministic pins the byte-reproducibility the warm-start
// determinism checks rely on: flushing the same content twice — from two
// independently built stores — produces identical files.
func TestFlushDeterministic(t *testing.T) {
	files := make([][]byte, 2)
	for i := range files {
		dir := t.TempDir()
		c, _ := fillCache(t, "SWIM")
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		s.AttachCache(c)
		s.RecordMemo("rate", "key-b", []byte{2})
		s.RecordMemo("rate", "key-a", []byte{1})
		s.RecordMemo("cell", "key-c", []byte{3})
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(filepath.Join(dir, "peak.store"))
		if err != nil {
			t.Fatal(err)
		}
		files[i] = data
	}
	if !bytes.Equal(files[0], files[1]) {
		t.Fatalf("two flushes of identical content differ: %d vs %d bytes", len(files[0]), len(files[1]))
	}
}

// TestMemoFrozenReadSet pins the determinism contract: records written
// this process are invisible to LookupMemo and MemoEach until the store
// is flushed and reopened.
func TestMemoFrozenReadSet(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.RecordMemo("rate", "k1", []byte("v1"))
	if _, ok := s.LookupMemo("rate", "k1"); ok {
		t.Fatal("pending record visible before flush+reopen")
	}
	s.MemoEach("rate", func(key string, _ []byte) {
		t.Fatalf("MemoEach visited pending record %q", key)
	})
	// First write wins; duplicates are dropped.
	s.RecordMemo("rate", "k1", []byte("other"))
	if st := s.Stats(); st.Pending != 1 || st.MemoMisses != 1 {
		t.Fatalf("stats = %+v, want 1 pending / 1 memo miss", st)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := s2.LookupMemo("rate", "k1")
	if !ok || string(v) != "v1" {
		t.Fatalf("reopened lookup = %q, %v; want v1, true", v, ok)
	}
	if _, ok := s2.LookupMemo("rate", "absent"); ok {
		t.Fatal("absent key reported present")
	}
	visited := 0
	s2.MemoEach("rate", func(key string, payload []byte) {
		visited++
		if key != "k1" || string(payload) != "v1" {
			t.Errorf("MemoEach visited %q=%q", key, payload)
		}
	})
	if visited != 1 {
		t.Fatalf("MemoEach visited %d records, want 1", visited)
	}
	// Re-recording a key already in the read set is dropped, and a flush
	// carries the read set forward.
	s2.RecordMemo("rate", "k1", []byte("clobber"))
	if err := s2.Flush(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := s3.LookupMemo("rate", "k1"); string(v) != "v1" {
		t.Fatalf("read set clobbered across flush: %q", v)
	}
}

// TestCorruptTailRecovery mirrors the fault journal's recovery contract:
// a file with a flipped bit mid-stream keeps its valid prefix and reports
// the damage, and a truncated file keeps the records before the tear.
func TestCorruptTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"a", "b", "c", "d"} {
		s.RecordMemo("rate", k, []byte("payload-"+k))
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "peak.store")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Flip a bit inside the third record's payload.
	recs, _, _, _ := parseFile(data)
	if len(recs) != 4 {
		t.Fatalf("setup: %d records, want 4", len(recs))
	}
	header := len(storeMagic) + 4
	off := header
	for i := 0; i < 2; i++ {
		off += 9 + int(binary.LittleEndian.Uint32(data[off+1:]))
	}
	mutated := append([]byte(nil), data...)
	mutated[off+7] ^= 0x40
	if err := os.WriteFile(path, mutated, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := s2.Recovery()
	if r.Records != 2 || !r.TornTail || r.DroppedBytes == 0 {
		t.Fatalf("corrupt-tail recovery = %+v, want 2 records kept + torn tail", r)
	}
	if _, ok := s2.LookupMemo("rate", "a"); !ok {
		t.Error("record before the corruption lost")
	}
	if _, ok := s2.LookupMemo("rate", "c"); ok {
		t.Error("record at the corruption survived")
	}

	// Truncate mid-record.
	if err := os.WriteFile(path, data[:off+4], 0o644); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r := s3.Recovery(); r.Records != 2 || !r.TornTail {
		t.Fatalf("truncation recovery = %+v, want 2 records + torn tail", r)
	}

	// Garbage header: opens empty, flagged, no error.
	if err := os.WriteFile(path, []byte("not a store file at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	s4, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r := s4.Recovery(); !r.HeaderInvalid || r.Records != 0 {
		t.Fatalf("bad-header recovery = %+v, want HeaderInvalid", r)
	}
}

// TestLowBitsCollisionRegression is the 128-bit key regression test: a
// body record forged under a fingerprint that shares the genuine body's
// low 64 bits but differs in the high 64 must neither clobber the genuine
// body nor be served — it occupies its own 128-bit slot and fails
// fingerprint verification there. A 64-bit-keyed store would have let the
// forgery replace the genuine body silently.
func TestLowBitsCollisionRegression(t *testing.T) {
	dir := t.TempDir()
	c, keys := fillCache(t, "SWIM")
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.AttachCache(c)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "peak.store")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, _, _, _ := parseFile(data)
	var forged []byte
	bodyCount := 0
	for _, r := range recs {
		if r.kind != recVersionBody {
			continue
		}
		bodyCount++
		if forged == nil {
			// Same payload, declared FP with Hi flipped: identical low
			// 64 bits, different 128-bit identity.
			forged = append([]byte(nil), r.payload...)
			binary.LittleEndian.PutUint64(forged, binary.LittleEndian.Uint64(forged)^0xdeadbeef)
		}
	}
	if forged == nil {
		t.Fatal("setup: no body records in flushed store")
	}
	data = appendRecord(data, recVersionBody, forged)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := s2.Recovery()
	if r.DroppedBodies != 1 {
		t.Fatalf("recovery = %+v, want exactly the forged body dropped", r)
	}
	if st := s2.Stats(); st.Versions != int64(bodyCount) {
		t.Fatalf("loaded %d bodies, want %d genuine ones intact", st.Versions, bodyCount)
	}
	cold := vcache.New()
	if n := s2.AttachCache(cold); n != len(keys) {
		t.Fatalf("preloaded %d keys, want %d — forgery displaced a genuine body", n, len(keys))
	}
}

// TestStoreStatsConsistentUnderRace hammers the memo paths from many
// goroutines while readers snapshot Stats, proving (under -race) that all
// counters are mutated inside the store mutex and snapshots are never
// torn: memo hits + misses always equals lookups issued so far.
func TestStoreStatsConsistentUnderRace(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := string(rune('a' + (i % 7)))
				s.LookupMemo("rate", key)
				s.RecordMemo("rate", key, []byte{byte(g)})
			}
		}()
	}
	var readers sync.WaitGroup
	for g := 0; g < 2; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				st := s.Stats()
				if st.MemoHits != 0 {
					t.Error("hit against an empty read set")
					return
				}
				if st.Pending > 7 {
					t.Errorf("pending %d > 7 distinct keys", st.Pending)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(done)
	readers.Wait()
	st := s.Stats()
	if st.MemoMisses != 4*200 {
		t.Fatalf("memo misses = %d, want %d", st.MemoMisses, 4*200)
	}
	if st.Pending != 7 {
		t.Fatalf("pending = %d, want 7 distinct keys (first write wins)", st.Pending)
	}
}
