package store

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"peak/internal/ir"
	"peak/internal/sim"
	"peak/internal/vcache"
)

// Deterministic binary codec for sim.Version. Encoding is hand-rolled
// little-endian rather than gob/json so that the same version always
// produces the same bytes (map iteration is sorted, floats are bit
// patterns) — the store file must be byte-reproducible from the same cache
// content for the warm-start determinism checks to hold.
//
// A body is encoded shallowly: callees appear as (name, FP128) references
// resolved against the store's content-addressed body table at load time,
// so each distinct body is stored exactly once no matter how many call
// graphs share it.

type encoder struct{ buf []byte }

func (e *encoder) u32(v uint32)  { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64)  { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *encoder) i64(v int64)   { e.u64(uint64(v)) }
func (e *encoder) int(v int)     { e.i64(int64(v)) }
func (e *encoder) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *encoder) reg(r ir.Reg)  { e.i64(int64(r)) }

func (e *encoder) bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

func (e *encoder) str(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *encoder) fp(f vcache.FP128) {
	e.u64(f.Hi)
	e.u64(f.Lo)
}

type decoder struct {
	buf []byte
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("store: truncated record payload")
	}
}

func (d *decoder) u32() uint32 {
	if d.err != nil || len(d.buf) < 4 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf)
	d.buf = d.buf[4:]
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || len(d.buf) < 8 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf)
	d.buf = d.buf[8:]
	return v
}

func (d *decoder) i64() int64   { return int64(d.u64()) }
func (d *decoder) int() int     { return int(d.i64()) }
func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }
func (d *decoder) reg() ir.Reg  { return ir.Reg(d.i64()) }

func (d *decoder) bool() bool {
	if d.err != nil || len(d.buf) < 1 {
		d.fail()
		return false
	}
	v := d.buf[0] != 0
	d.buf = d.buf[1:]
	return v
}

func (d *decoder) str() string {
	n := int(d.u32())
	if d.err != nil || n < 0 || len(d.buf) < n {
		d.fail()
		return ""
	}
	v := string(d.buf[:n])
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) fp() vcache.FP128 {
	hi := d.u64()
	lo := d.u64()
	return vcache.FP128{Hi: hi, Lo: lo}
}

// count reads a u32 length and bounds it against the remaining payload
// (elemSize is a lower bound on the per-element encoding) so a corrupt
// length cannot drive a giant allocation.
func (d *decoder) count(elemSize int) int {
	n := int(d.u32())
	if d.err != nil {
		return 0
	}
	if n < 0 || n*elemSize > len(d.buf) {
		d.fail()
		return 0
	}
	return n
}

// calleeRef is an unresolved callee edge: Name in the parent's Callees map,
// FP addressing the body in the store's table.
type calleeRef struct {
	Name string
	FP   vcache.FP128
}

// encodeVersion appends the shallow encoding of v (callees by reference).
func encodeVersion(e *encoder, v *sim.Version) {
	lf := v.LF
	e.str(lf.Name)
	e.int(lf.NumRegs)
	e.int(lf.NumCounters)
	e.u32(uint32(len(lf.Params)))
	for i, p := range lf.Params {
		e.str(p.Name)
		e.int(int(p.Typ))
		e.bool(p.IsArray)
		e.reg(lf.ParamRegs[i])
	}
	e.u32(uint32(len(lf.FloatReg)))
	for _, b := range lf.FloatReg {
		e.bool(b)
	}
	e.u32(uint32(len(lf.Blocks)))
	for _, b := range lf.Blocks {
		e.int(b.ID)
		e.int(b.LoopDepth)
		e.int(b.Origin)
		e.int(int(b.Term.Kind))
		e.reg(b.Term.Cond)
		e.int(b.Term.Then)
		e.int(b.Term.Else)
		e.reg(b.Term.Val)
		e.int(b.Term.Likely)
		e.u32(uint32(len(b.Instrs)))
		for i := range b.Instrs {
			in := &b.Instrs[i]
			e.int(int(in.Op))
			e.reg(in.Dst)
			e.reg(in.A)
			e.reg(in.B)
			e.reg(in.Src)
			e.i64(in.Imm)
			e.f64(in.FImm)
			e.str(in.Arr)
			e.str(in.Fn)
			e.u32(uint32(len(in.CallArgs)))
			for _, r := range in.CallArgs {
				e.reg(r)
			}
		}
	}
	e.u32(uint32(len(v.Alloc.Spilled)))
	for _, s := range v.Alloc.Spilled {
		e.bool(s)
	}
	e.int(v.Alloc.NumSpilled)
	e.int(v.Alloc.IntPressure)
	e.int(v.Alloc.FloatPressure)
	e.f64(v.Mods.TakenBranchFactor)
	e.f64(v.Mods.CallOverheadFactor)
	e.int(v.Mods.CodeSizeExtra)
	e.bool(v.Mods.StaticPredict)
	e.int(v.CodeSize)
	e.int(v.NumOrigins)
	e.str(v.Label)

	names := make([]string, 0, len(v.Callees))
	for name := range v.Callees {
		names = append(names, name)
	}
	sort.Strings(names)
	e.u32(uint32(len(names)))
	for _, name := range names {
		e.str(name)
		e.fp(vcache.Fingerprint128(v.Callees[name]))
	}
}

// decodeVersion reads one shallow version and its unresolved callee
// references.
func decodeVersion(d *decoder) (*sim.Version, []calleeRef) {
	lf := &ir.LFunc{}
	lf.Name = d.str()
	lf.NumRegs = d.int()
	lf.NumCounters = d.int()
	np := d.count(1)
	for i := 0; i < np; i++ {
		lf.Params = append(lf.Params, ir.Param{
			Name:    d.str(),
			Typ:     ir.Type(d.int()),
			IsArray: d.bool(),
		})
		lf.ParamRegs = append(lf.ParamRegs, d.reg())
	}
	nf := d.count(1)
	for i := 0; i < nf; i++ {
		lf.FloatReg = append(lf.FloatReg, d.bool())
	}
	nb := d.count(8)
	for i := 0; i < nb; i++ {
		b := &ir.Block{}
		b.ID = d.int()
		b.LoopDepth = d.int()
		b.Origin = d.int()
		b.Term.Kind = ir.TermKind(d.int())
		b.Term.Cond = d.reg()
		b.Term.Then = d.int()
		b.Term.Else = d.int()
		b.Term.Val = d.reg()
		b.Term.Likely = d.int()
		ni := d.count(8)
		for j := 0; j < ni; j++ {
			var in ir.Instr
			in.Op = ir.Opcode(d.int())
			in.Dst = d.reg()
			in.A = d.reg()
			in.B = d.reg()
			in.Src = d.reg()
			in.Imm = d.i64()
			in.FImm = d.f64()
			in.Arr = d.str()
			in.Fn = d.str()
			na := d.count(8)
			for k := 0; k < na; k++ {
				in.CallArgs = append(in.CallArgs, d.reg())
			}
			b.Instrs = append(b.Instrs, in)
		}
		lf.Blocks = append(lf.Blocks, b)
	}
	v := &sim.Version{LF: lf}
	ns := d.count(1)
	for i := 0; i < ns; i++ {
		v.Alloc.Spilled = append(v.Alloc.Spilled, d.bool())
	}
	v.Alloc.NumSpilled = d.int()
	v.Alloc.IntPressure = d.int()
	v.Alloc.FloatPressure = d.int()
	v.Mods.TakenBranchFactor = d.f64()
	v.Mods.CallOverheadFactor = d.f64()
	v.Mods.CodeSizeExtra = d.int()
	v.Mods.StaticPredict = d.bool()
	v.CodeSize = d.int()
	v.NumOrigins = d.int()
	v.Label = d.str()
	nc := d.count(20)
	var refs []calleeRef
	for i := 0; i < nc; i++ {
		refs = append(refs, calleeRef{Name: d.str(), FP: d.fp()})
	}
	if d.err != nil || len(d.buf) != 0 {
		return nil, nil
	}
	return v, refs
}
