package store

import (
	"encoding/binary"
	"hash/crc32"
)

// On-disk layout of the store file (peak.store):
//
//	header  := magic[8] version[u32 LE]
//	record  := kind[1] len[u32 LE] payload[len] crc[u32 LE]
//
// The CRC-32C covers kind, len and payload, so a flipped bit anywhere in a
// record — including its framing — is detected. Records follow each other
// with no padding. A file is only ever produced by Flush's full
// temp+fsync+rename rewrite, so a torn tail can appear only if the rename
// itself was interrupted by the kernel mid-crash; the reader still treats
// any undersized or CRC-failing suffix as a torn tail and keeps the valid
// prefix, mirroring the fault journal's recovery contract.
const (
	storeMagic   = "PEAKSTR1"
	storeVersion = 1

	recVersionBody byte = 1 // FP128 + encoded sim.Version
	recAlias       byte = 2 // vcache.Key -> FP128 (+ shared bit)
	recMemo        byte = 3 // memo kind + key + payload
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendRecord frames one record onto dst.
func appendRecord(dst []byte, kind byte, payload []byte) []byte {
	start := len(dst)
	dst = append(dst, kind)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	crc := crc32.Checksum(dst[start:], crcTable)
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// rawRecord is one framed record as read back from disk, CRC already
// verified.
type rawRecord struct {
	kind    byte
	payload []byte
}

// parseFile splits a store file into verified records. It never fails:
// a bad header yields zero records with headerInvalid set, and the first
// undersized or corrupt record truncates the read there, reporting the
// remainder as dropped bytes.
func parseFile(data []byte) (recs []rawRecord, dropped int, torn, headerInvalid bool) {
	if len(data) < len(storeMagic)+4 ||
		string(data[:len(storeMagic)]) != storeMagic ||
		binary.LittleEndian.Uint32(data[len(storeMagic):]) != storeVersion {
		return nil, len(data), false, true
	}
	rest := data[len(storeMagic)+4:]
	for len(rest) > 0 {
		if len(rest) < 9 {
			return recs, len(rest), true, false
		}
		n := int(binary.LittleEndian.Uint32(rest[1:5]))
		if len(rest) < 9+n {
			return recs, len(rest), true, false
		}
		want := binary.LittleEndian.Uint32(rest[5+n : 9+n])
		if crc32.Checksum(rest[:5+n], crcTable) != want {
			return recs, len(rest), true, false
		}
		recs = append(recs, rawRecord{kind: rest[0], payload: rest[5 : 5+n]})
		rest = rest[9+n:]
	}
	return recs, 0, false, false
}
