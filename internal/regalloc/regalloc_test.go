package regalloc

import (
	"testing"

	"peak/internal/ir"
	"peak/internal/irbuild"
	"peak/internal/lower"
)

func lowered(t *testing.T, build func(b *irbuild.FuncBuilder) *ir.Func) *ir.LFunc {
	t.Helper()
	prog := ir.NewProgram()
	prog.AddArray("ra", ir.F64, 64)
	b := irbuild.NewFunc("f")
	fn := build(b)
	prog.AddFunc(fn)
	lf, err := lower.Lower(prog, fn)
	if err != nil {
		t.Fatal(err)
	}
	return lf
}

func TestNoSpillsWithAmpleRegisters(t *testing.T) {
	lf := lowered(t, func(b *irbuild.FuncBuilder) *ir.Func {
		b.ScalarParam("n", ir.I64).Local("s", ir.F64)
		return b.Body(
			b.For("i", b.I(0), b.V("n"), 1,
				b.Set(b.V("s"), b.FAdd(b.V("s"), b.At("ra", b.V("i")))),
			),
			b.Ret(b.V("s")),
		)
	})
	res := Allocate(lf, 32, 32)
	if res.NumSpilled != 0 {
		t.Errorf("spilled %d regs with 32 available", res.NumSpilled)
	}
	if res.IntPressure <= 0 {
		t.Error("pressure not measured")
	}
}

func TestSpillsUnderPressure(t *testing.T) {
	// Many simultaneously live accumulators + tight register file.
	lf := lowered(t, func(b *irbuild.FuncBuilder) *ir.Func {
		b.ScalarParam("n", ir.I64)
		for _, name := range []string{"a", "b", "c", "d", "e", "g"} {
			b.Local(name, ir.F64)
		}
		return b.Body(
			b.For("i", b.I(0), b.V("n"), 1,
				b.Set(b.V("a"), b.FAdd(b.V("a"), b.At("ra", b.V("i")))),
				b.Set(b.V("b"), b.FAdd(b.V("b"), b.V("a"))),
				b.Set(b.V("c"), b.FAdd(b.V("c"), b.V("b"))),
				b.Set(b.V("d"), b.FAdd(b.V("d"), b.V("c"))),
				b.Set(b.V("e"), b.FAdd(b.V("e"), b.V("d"))),
				b.Set(b.V("g"), b.FAdd(b.V("g"), b.V("e"))),
			),
			b.Ret(b.V("g")),
		)
	})
	tight := Allocate(lf, 16, 3)
	if tight.NumSpilled == 0 {
		t.Error("expected spills with 3 float registers")
	}
	ample := Allocate(lf, 16, 24)
	if ample.NumSpilled != 0 {
		t.Errorf("spilled %d with 24 float registers", ample.NumSpilled)
	}
	if tight.FloatPressure < 6 {
		t.Errorf("float pressure = %d, want >= 6", tight.FloatPressure)
	}
}

func TestLoopCarriedValuesStayLive(t *testing.T) {
	// The loop variable and accumulator are live across the back edge and
	// must never share a register with loop-body temporaries. We verify
	// indirectly: with exactly enough registers for the short-lived
	// temporaries, the loop-carried values are the ones kept (they have
	// the higher spill weight), and correctness of that choice is already
	// guaranteed by the differential execution tests in package opt.
	lf := lowered(t, func(b *irbuild.FuncBuilder) *ir.Func {
		b.ScalarParam("n", ir.I64).Local("s", ir.F64)
		return b.Body(
			b.For("i", b.I(0), b.V("n"), 1,
				b.Set(b.V("s"), b.FAdd(b.V("s"),
					b.FMul(b.At("ra", b.V("i")), b.At("ra", b.V("i"))))),
			),
			b.Ret(b.V("s")),
		)
	})
	res := Allocate(lf, 4, 4)
	// The accumulator's home register has high weight; expression temps
	// are the legal spill victims.
	for r := ir.Reg(0); int(r) < lf.NumRegs; r++ {
		_ = r
	}
	if res.IntPressure == 0 || res.FloatPressure == 0 {
		t.Error("pressure not computed for both files")
	}
}

func TestPerIterationTempsDoNotInflatePressure(t *testing.T) {
	// A long chain of single-use temporaries inside a loop must not all be
	// counted simultaneously live (the unrolled-loop pathology).
	lf := lowered(t, func(b *irbuild.FuncBuilder) *ir.Func {
		b.ScalarParam("n", ir.I64).Local("s", ir.F64)
		body := []ir.Stmt{}
		for k := 0; k < 8; k++ {
			body = append(body, b.Set(b.V("s"),
				b.FAdd(b.V("s"), b.FMul(b.At("ra", b.V("i")), b.F(float64(k+1))))))
		}
		return b.Body(
			b.For("i", b.I(0), b.V("n"), 1, body...),
			b.Ret(b.V("s")),
		)
	})
	res := Allocate(lf, 8, 8)
	if res.NumSpilled != 0 {
		t.Errorf("sequential temporaries caused %d spills", res.NumSpilled)
	}
}
