// Package regalloc implements linear-scan register allocation over LIR.
//
// The allocator assigns virtual registers to the machine's integer and
// floating-point register files (allocated independently). Virtual registers
// that do not fit are marked spilled; the execution engine charges the
// machine's spill-load/spill-store costs on every dynamic access to a
// spilled register.
//
// Register pressure is the main channel through which optimization flags
// interact with the machine: strict-aliasing and loop-invariant code motion
// lengthen live ranges, which overflows small register files (the paper's
// ART-on-Pentium-IV anecdote, §5.2).
package regalloc

import (
	"sort"

	"peak/internal/ir"
)

// Result describes an allocation.
type Result struct {
	// Spilled[v] reports whether virtual register v lives in a stack slot.
	Spilled []bool
	// NumSpilled counts spilled virtual registers.
	NumSpilled int
	// IntPressure and FloatPressure are the maximum number of
	// simultaneously live intervals per file (before spilling).
	IntPressure   int
	FloatPressure int
}

type interval struct {
	reg        ir.Reg
	start, end int
	// weight estimates dynamic access frequency (loop depth based); the
	// allocator prefers to spill light intervals.
	weight float64
}

// maxOverlap returns the maximum number of simultaneously live intervals —
// the true register pressure, independent of spilling decisions.
func maxOverlap(ivs []*interval) int {
	type event struct {
		pos   int
		delta int
	}
	events := make([]event, 0, 2*len(ivs))
	for _, iv := range ivs {
		events = append(events, event{iv.start, +1}, event{iv.end + 1, -1})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].pos != events[j].pos {
			return events[i].pos < events[j].pos
		}
		return events[i].delta < events[j].delta // close before open at same pos
	})
	cur, max := 0, 0
	for _, e := range events {
		cur += e.delta
		if cur > max {
			max = cur
		}
	}
	return max
}

// Allocate runs linear scan for f on a machine with the given register file
// sizes. extraIntRegs models flags such as omit-frame-pointer that free an
// additional allocatable register.
func Allocate(f *ir.LFunc, intRegs, floatRegs int) Result {
	intervals := buildIntervals(f)

	res := Result{Spilled: make([]bool, f.NumRegs)}

	var ints, floats []*interval
	for i := range intervals {
		iv := &intervals[i]
		if iv.start < 0 {
			continue // never used
		}
		if f.FloatReg[iv.reg] {
			floats = append(floats, iv)
		} else {
			ints = append(ints, iv)
		}
	}
	res.IntPressure = maxOverlap(ints)
	res.FloatPressure = maxOverlap(floats)
	scan(ints, intRegs, res.Spilled)
	scan(floats, floatRegs, res.Spilled)
	for _, s := range res.Spilled {
		if s {
			res.NumSpilled++
		}
	}
	return res
}

// scan performs linear scan over one register file and marks spills.
func scan(ivs []*interval, numRegs int, spilled []bool) {
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].start != ivs[j].start {
			return ivs[i].start < ivs[j].start
		}
		return ivs[i].reg < ivs[j].reg
	})
	var active []*interval
	for _, iv := range ivs {
		// Expire intervals that ended before iv starts.
		live := active[:0]
		for _, a := range active {
			if a.end >= iv.start {
				live = append(live, a)
			}
		}
		active = live
		active = append(active, iv)
		if len(active) > numRegs {
			// Spill the cheapest interval (lowest weight; ties broken by
			// furthest end, the classic linear-scan heuristic).
			victim := iv
			for _, a := range active {
				if a.weight < victim.weight ||
					(a.weight == victim.weight && a.end > victim.end) {
					victim = a
				}
			}
			spilled[victim.reg] = true
			for k, a := range active {
				if a == victim {
					active = append(active[:k], active[k+1:]...)
					break
				}
			}
		}
	}
}

// buildIntervals computes approximate live intervals: [first, last] position
// of any def or use in layout order. An interval is widened to a whole loop
// region only when the value is live across the loop's back edge — i.e. the
// loop reads the register before (re)defining it, so each iteration consumes
// a value produced outside or by the previous iteration. Per-iteration
// temporaries (defined before use within one iteration) keep their short
// intervals, which is what keeps unrolled loop bodies allocatable.
func buildIntervals(f *ir.LFunc) []interval {
	intervals := make([]interval, f.NumRegs)
	for i := range intervals {
		intervals[i] = interval{reg: ir.Reg(i), start: -1, end: -1}
	}
	defPos := make([][]int, f.NumRegs)
	usePos := make([][]int, f.NumRegs)

	pos := 0
	blockStart := make(map[int]int)
	blockEnd := make(map[int]int)
	touch := func(r ir.Reg, p int, w float64) {
		if r == ir.NoReg {
			return
		}
		iv := &intervals[r]
		if iv.start < 0 || p < iv.start {
			iv.start = p
		}
		if p > iv.end {
			iv.end = p
		}
		iv.weight += w
	}

	// Parameters are defined at entry.
	for _, r := range f.ParamRegs {
		if r != ir.NoReg {
			touch(r, 0, 1)
			defPos[r] = append(defPos[r], 0)
		}
	}

	var uses []ir.Reg
	for _, b := range f.Blocks {
		blockStart[b.ID] = pos
		w := depthWeight(b.LoopDepth)
		for i := range b.Instrs {
			in := &b.Instrs[i]
			uses = in.Uses(uses[:0])
			for _, u := range uses {
				touch(u, pos, w)
				usePos[u] = append(usePos[u], pos)
			}
			if d := in.Def(); d != ir.NoReg {
				touch(d, pos, w)
				defPos[d] = append(defPos[d], pos)
			}
			pos++
		}
		if b.Term.Kind == ir.TermBranch && b.Term.Cond != ir.NoReg {
			touch(b.Term.Cond, pos, w)
			usePos[b.Term.Cond] = append(usePos[b.Term.Cond], pos)
		}
		if b.Term.Kind == ir.TermReturn && b.Term.Val != ir.NoReg {
			touch(b.Term.Val, pos, w)
			usePos[b.Term.Val] = append(usePos[b.Term.Val], pos)
		}
		pos++
		blockEnd[b.ID] = pos - 1
	}

	// Loop regions from back edges (target block starts at or before the
	// branching block in layout order).
	type region struct{ start, end int }
	var loops []region
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			ls, ok1 := blockStart[s]
			le, ok2 := blockEnd[b.ID]
			if ok1 && ok2 && ls <= le {
				loops = append(loops, region{ls, le})
			}
		}
	}

	// liveAcross reports whether reg r carries a value across lp's back
	// edge: some use inside lp is not preceded (within lp) by a def, with
	// an instruction's uses considered to happen before its def.
	liveAcross := func(r ir.Reg, lp region) bool {
		firstDef := lp.end + 1
		for _, d := range defPos[r] {
			if d >= lp.start && d <= lp.end && d < firstDef {
				firstDef = d
			}
		}
		hasDefIn := firstDef <= lp.end
		for _, u := range usePos[r] {
			if u < lp.start || u > lp.end {
				continue
			}
			if u < firstDef || (u == firstDef && hasDefIn) {
				return true
			}
			if !hasDefIn {
				// Used in the loop, defined entirely outside: live for the
				// whole loop execution.
				return true
			}
		}
		return false
	}

	for changed := true; changed; {
		changed = false
		for i := range intervals {
			iv := &intervals[i]
			if iv.start < 0 {
				continue
			}
			for _, lp := range loops {
				if iv.start <= lp.end && iv.end >= lp.start && liveAcross(iv.reg, lp) {
					if iv.start > lp.start {
						iv.start = lp.start
						changed = true
					}
					if iv.end < lp.end {
						iv.end = lp.end
						changed = true
					}
				}
			}
		}
	}
	return intervals
}

func depthWeight(depth int) float64 {
	w := 1.0
	for i := 0; i < depth && i < 6; i++ {
		w *= 10
	}
	return w
}
