package vcache

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"peak/internal/ir"
	"peak/internal/sim"
)

// FNV-1a, 128-bit. The hashers below feed every semantically relevant field
// through it in a fixed traversal order, so equal hashes are (collisions
// aside) equal programs / equal generated code. The full 128 bits key the
// persistent store's content-addressed records, where a long-lived file
// accumulates enough distinct versions that 64-bit birthday collisions stop
// being negligible; the in-memory dedup paths keep using the low 64 bits
// (see Fingerprint), whose collision budget resets every process.
const (
	// fnvOffset64/fnvPrime64 parameterize the legacy 64-bit FNV-1a lane.
	// ProgramKey and FuncKey still report this lane: their values are part
	// of the fault-injection identity strings ("progKey/fn/flags/machine"),
	// so changing them would silently re-roll every committed fault draw.
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
	// fnvOffsetHi/Lo is the FNV-128 offset basis
	// 0x6C62272E07BB014262B821756295C592.
	fnvOffsetHi = 0x6C62272E07BB0142
	fnvOffsetLo = 0x62B821756295C592
	// fnvPrimeHi/Lo is the FNV-128 prime 2^88 + 2^8 + 0x3B.
	fnvPrimeHi = 1 << 24
	fnvPrimeLo = 0x13B
)

// FP128 is a 128-bit content fingerprint (FNV-1a-128 of the hashed
// traversal). It is the persistent store's cache key; the in-memory cache
// aliases on the low 64 bits only (Fingerprint), keeping its hot maps
// compact.
type FP128 struct {
	Hi, Lo uint64
}

// String renders the fingerprint as 32 lower-case hex digits, the form
// memo keys embed.
func (f FP128) String() string { return fmt.Sprintf("%016x%016x", f.Hi, f.Lo) }

// IsZero reports whether the fingerprint is the zero value (no real
// traversal hashes to zero under FNV's nonzero offset basis, so zero is
// usable as "absent").
func (f FP128) IsZero() bool { return f.Hi == 0 && f.Lo == 0 }

// hasher folds every byte through two FNV-1a lanes at once: the legacy
// 64-bit lane that ProgramKey/FuncKey report (their values must stay
// stable — see the constant block above) and the 128-bit lane behind
// Fingerprint128 that keys the persistent store.
type hasher struct {
	h64    uint64
	hi, lo uint64
}

func newHasher() hasher {
	return hasher{h64: fnvOffset64, hi: fnvOffsetHi, lo: fnvOffsetLo}
}

func (h *hasher) byte(b byte) {
	h.h64 = (h.h64 ^ uint64(b)) * fnvPrime64
	h.lo ^= uint64(b)
	// 128-bit multiply modulo 2^128: (hi,lo) *= prime.
	carryHi, lo := bits.Mul64(h.lo, fnvPrimeLo)
	h.hi = carryHi + h.lo*fnvPrimeHi + h.hi*fnvPrimeLo
	h.lo = lo
}

func (h *hasher) u64(v uint64) {
	for i := 0; i < 8; i++ {
		h.byte(byte(v >> (8 * i)))
	}
}

func (h *hasher) i64(v int64)   { h.u64(uint64(v)) }
func (h *hasher) int(v int)     { h.u64(uint64(int64(v))) }
func (h *hasher) f64(v float64) { h.u64(math.Float64bits(v)) }
func (h *hasher) bool(v bool)   { h.byte(b2b(v)) }
func (h *hasher) reg(r ir.Reg)  { h.i64(int64(r)) }
func (h *hasher) sum() uint64   { return h.h64 }
func (h *hasher) sum128() FP128 { return FP128{Hi: h.hi, Lo: h.lo} }

func (h *hasher) str(s string) {
	h.int(len(s))
	for i := 0; i < len(s); i++ {
		h.byte(s[i])
	}
}

func b2b(v bool) byte {
	if v {
		return 1
	}
	return 0
}

// ProgramKey returns a structural hash of an HIR program: functions (sorted
// by name), global arrays and global scalars. Two programs with the same
// key compile identically under any flag set, so the key serves as the
// "program identity" component of a cache key — independent of pointer
// identity, stable across Clone.
func ProgramKey(p *ir.Program) uint64 {
	h := newHasher()
	names := make([]string, 0, len(p.Funcs))
	for name := range p.Funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	h.int(len(names))
	for _, name := range names {
		h.str(name)
		hashFunc(&h, p.Funcs[name])
	}
	h.int(len(p.Arrays))
	for _, a := range p.Arrays {
		h.str(a.Name)
		h.int(int(a.Typ))
		h.int(a.Len)
	}
	h.int(len(p.Scalars))
	for _, s := range p.Scalars {
		h.str(s.Name)
		h.int(int(s.Typ))
	}
	return h.sum()
}

// FuncKey returns the structural hash of a single HIR function (the same
// traversal ProgramKey uses per function).
func FuncKey(f *ir.Func) uint64 {
	h := newHasher()
	hashFunc(&h, f)
	return h.sum()
}

func hashFunc(h *hasher, f *ir.Func) {
	h.str(f.Name)
	h.int(len(f.Params))
	for _, p := range f.Params {
		h.str(p.Name)
		h.int(int(p.Typ))
		h.bool(p.IsArray)
	}
	h.int(len(f.Locals))
	for _, l := range f.Locals {
		h.str(l.Name)
		h.int(int(l.Typ))
	}
	h.int(f.NumCounters)
	hashStmts(h, f.Body)
}

// Per-node tags keep differently-shaped trees from colliding after
// flattening.
const (
	tagAssign byte = iota + 1
	tagIf
	tagFor
	tagWhile
	tagBreak
	tagReturn
	tagCallStmt
	tagCounter
	tagConstInt
	tagConstFloat
	tagVarRef
	tagArrayRef
	tagUnary
	tagBinary
	tagCallExpr
	tagSelect
	tagNil
)

func hashStmts(h *hasher, list []ir.Stmt) {
	h.int(len(list))
	for _, s := range list {
		hashStmt(h, s)
	}
}

func hashStmt(h *hasher, s ir.Stmt) {
	switch s := s.(type) {
	case *ir.Assign:
		h.byte(tagAssign)
		hashExpr(h, s.Lhs)
		hashExpr(h, s.Rhs)
	case *ir.If:
		h.byte(tagIf)
		hashExpr(h, s.Cond)
		hashStmts(h, s.Then)
		hashStmts(h, s.Else)
		h.bool(s.Guard)
	case *ir.For:
		h.byte(tagFor)
		h.str(s.Var)
		hashExpr(h, s.From)
		hashExpr(h, s.To)
		h.i64(s.Step)
		hashStmts(h, s.Body)
	case *ir.While:
		h.byte(tagWhile)
		hashExpr(h, s.Cond)
		hashStmts(h, s.Body)
	case *ir.Break:
		h.byte(tagBreak)
	case *ir.Return:
		h.byte(tagReturn)
		hashExpr(h, s.Value)
	case *ir.CallStmt:
		h.byte(tagCallStmt)
		h.str(s.Fn)
		h.int(len(s.Args))
		for _, a := range s.Args {
			hashExpr(h, a)
		}
	case *ir.Counter:
		h.byte(tagCounter)
		h.int(s.ID)
	default:
		h.byte(tagNil)
	}
}

func hashExpr(h *hasher, e ir.Expr) {
	switch e := e.(type) {
	case nil:
		h.byte(tagNil)
	case *ir.ConstInt:
		h.byte(tagConstInt)
		h.i64(e.V)
	case *ir.ConstFloat:
		h.byte(tagConstFloat)
		h.f64(e.V)
	case *ir.VarRef:
		h.byte(tagVarRef)
		h.str(e.Name)
	case *ir.ArrayRef:
		h.byte(tagArrayRef)
		h.str(e.Name)
		hashExpr(h, e.Index)
	case *ir.Unary:
		h.byte(tagUnary)
		h.int(int(e.Op))
		hashExpr(h, e.X)
	case *ir.Binary:
		h.byte(tagBinary)
		h.int(int(e.Op))
		h.int(int(e.Typ))
		hashExpr(h, e.X)
		hashExpr(h, e.Y)
	case *ir.CallExpr:
		h.byte(tagCallExpr)
		h.str(e.Fn)
		h.int(len(e.Args))
		for _, a := range e.Args {
			hashExpr(h, a)
		}
	case *ir.Select:
		h.byte(tagSelect)
		hashExpr(h, e.Cond)
		hashExpr(h, e.X)
		hashExpr(h, e.Y)
	default:
		h.byte(tagNil)
	}
}

// Fingerprint returns the code fingerprint of a compiled version: a hash of
// everything that determines its execution behaviour — the LIR instruction
// stream and block layout, terminators, parameter binding, spill set, cost
// modifiers, code footprint, origin mapping, and (recursively) the callee
// versions. The version's Label (the flag-set annotation) is deliberately
// excluded: two flag sets that generate identical code get identical
// fingerprints, which is what content dedup keys on. Fingerprint is the low
// half of Fingerprint128 — adequate for per-process aliasing, while the
// persistent store keys on the full 128 bits.
func Fingerprint(v *sim.Version) uint64 {
	return Fingerprint128(v).Lo
}

// Fingerprint128 is Fingerprint at full 128-bit width, the key the
// persistent store (internal/store) addresses version bodies by across
// restarts.
func Fingerprint128(v *sim.Version) FP128 {
	h := newHasher()
	hashVersion(&h, v, 0)
	return h.sum128()
}

func hashVersion(h *hasher, v *sim.Version, depth int) {
	if depth > 16 {
		return
	}
	lf := v.LF
	h.str(lf.Name)
	h.int(lf.NumRegs)
	h.int(lf.NumCounters)
	h.int(len(lf.Params))
	for i, p := range lf.Params {
		h.str(p.Name)
		h.int(int(p.Typ))
		h.bool(p.IsArray)
		h.reg(lf.ParamRegs[i])
	}
	h.int(len(lf.Blocks))
	for _, b := range lf.Blocks {
		h.int(b.ID)
		h.int(b.Origin)
		h.int(int(b.Term.Kind))
		h.reg(b.Term.Cond)
		h.int(b.Term.Then)
		h.int(b.Term.Else)
		h.reg(b.Term.Val)
		h.int(b.Term.Likely)
		h.int(len(b.Instrs))
		for i := range b.Instrs {
			in := &b.Instrs[i]
			h.int(int(in.Op))
			h.reg(in.Dst)
			h.reg(in.A)
			h.reg(in.B)
			h.reg(in.Src)
			h.i64(in.Imm)
			h.f64(in.FImm)
			h.str(in.Arr)
			h.str(in.Fn)
			h.int(len(in.CallArgs))
			for _, r := range in.CallArgs {
				h.reg(r)
			}
		}
	}
	h.int(len(v.Alloc.Spilled))
	for _, s := range v.Alloc.Spilled {
		h.bool(s)
	}
	h.f64(v.Mods.TakenBranchFactor)
	h.f64(v.Mods.CallOverheadFactor)
	h.int(v.Mods.CodeSizeExtra)
	h.bool(v.Mods.StaticPredict)
	h.int(v.CodeSize)
	h.int(v.NumOrigins)

	names := make([]string, 0, len(v.Callees))
	for name := range v.Callees {
		names = append(names, name)
	}
	sort.Strings(names)
	h.int(len(names))
	for _, name := range names {
		h.str(name)
		hashVersion(h, v.Callees[name], depth+1)
	}
}

// versionBytes estimates the in-memory footprint of a version (and callees,
// counted once per distinct pointer) for the cache's byte accounting. The
// constants approximate Go object headers and per-field storage; the point
// is a stable, proportional measure, not malloc-exact numbers.
func versionBytes(v *sim.Version, seen map[*sim.Version]bool) int64 {
	if seen[v] {
		return 0
	}
	seen[v] = true
	const (
		versionOverhead = 160
		blockOverhead   = 96
		instrBytes      = 104
	)
	n := int64(versionOverhead)
	for _, b := range v.LF.Blocks {
		n += blockOverhead + int64(len(b.Instrs))*instrBytes
		for i := range b.Instrs {
			n += int64(len(b.Instrs[i].CallArgs)) * 8
		}
	}
	n += int64(len(v.Alloc.Spilled)) + int64(len(v.LF.FloatReg)) +
		int64(len(v.LF.ParamRegs))*8 + int64(len(v.Label))
	for _, c := range v.Callees {
		n += versionBytes(c, seen)
	}
	return n
}
