// Package vcache provides a concurrency-safe, content-addressed cache of
// compiled, frozen sim.Versions.
//
// Tuning recompiles the same flag sets constantly: Iterative Elimination
// re-rates the base set every round, later rounds re-add previously dropped
// flags, and experiment drivers tune the same benchmark under several
// methods. The cache makes each distinct compilation happen exactly once
// per (program, function, flag set, machine) — and, one level deeper,
// stores only one Version per distinct *generated code*: flag sets that
// compile to identical LIR (by Fingerprint) share a single frozen Version.
//
// Determinism: compilation runs under the cache lock and the compiler
// itself is deterministic, so the cache's contents — and its Misses/Shared
// totals — depend only on the set of keys requested, never on request
// order or worker count. Hits/Lookups totals are likewise
// scheduling-independent because each tuning job performs a fixed sequence
// of lookups. Cached versions are frozen before publication and never
// mutated afterwards; per-runner state (decode plans, predictor counters)
// lives in each job's sim.Runner, not in the shared Version.
package vcache

import (
	"fmt"
	"sort"
	"sync"

	"peak/internal/opt"
	"peak/internal/sim"
	"peak/internal/trace"
)

// Key identifies one compilation: program identity (ProgramKey over the
// HIR), the function being compiled, the canonical flag-set fingerprint
// (opt.FlagSet is a canonical bitset, so the value is its own fingerprint),
// and the target machine.
type Key struct {
	Prog    uint64
	Fn      string
	Flags   opt.FlagSet
	Machine string
}

// codeKey addresses generated code rather than requested flags: two Keys
// whose compilations fingerprint identically map to the same codeKey.
type codeKey struct {
	prog    uint64
	fn      string
	machine string
	fp      uint64
}

type entry struct {
	v *sim.Version
	// fp is the full 128-bit content fingerprint; the in-memory dedup map
	// (byCode) aliases on fp.Lo only, the persistent store keys on all of
	// it.
	fp FP128
	// shared marks entries whose code was first compiled under a different
	// flag set (content-dedup alias). Recorded per key at insert time, so
	// hits report the same value every time.
	shared bool
	// fromDisk marks entries installed by Preload from a persistent
	// snapshot: they were resolved without compiling anything this process.
	// The set is fixed at boot, so the mark — and the trace tier derived
	// from it — is independent of scheduling.
	fromDisk bool
	// quarantined marks entries a tune's golden-output verification flagged
	// as miscompiled (MarkQuarantined). Observability only: tunes verify
	// every resolution themselves (the verdict is deterministic, so repeat
	// verifications agree), keeping their cycle accounting independent of
	// what other cache users already discovered.
	quarantined bool
}

// Stats is a snapshot of the cache's counters. All totals are
// scheduling-independent (see the package comment).
type Stats struct {
	// Lookups is the number of GetOrCompile calls; Hits the calls answered
	// without compiling; Misses the compilations performed.
	Lookups int64
	Hits    int64
	Misses  int64
	// Shared counts compilations whose generated code matched an existing
	// entry's fingerprint, so the compiled result was discarded and the
	// existing frozen Version reused.
	Shared int64
	// Entries is the number of distinct flag-set keys resident; Versions
	// the number of distinct code bodies backing them; Bytes their
	// estimated footprint.
	Entries  int64
	Versions int64
	Bytes    int64
	// Quarantined is the number of resident keys flagged as miscompiled by
	// golden-output verification (MarkQuarantined).
	Quarantined int64
	// Preloaded is the number of resident keys installed from a persistent
	// snapshot (Preload) rather than compiled this process; DiskHits the
	// lookups those keys answered. Both stay zero without a store.
	Preloaded int64
	DiskHits  int64
}

// HitRate returns Hits ÷ Lookups as a fraction in [0, 1]. The zero-lookup
// path — a fresh cache queried for stats, exactly what the serve /stats
// endpoint does before the first job lands — reports 0 rather than NaN
// (which json.Marshal would reject and "%.1f" would render as "NaN").
func (s Stats) HitRate() float64 {
	if s.Lookups <= 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// Summary formats the stats in the style of sched.Stats.Summary.
func (s Stats) Summary() string {
	return fmt.Sprintf("vcache: %d lookups, %d hits (%.1f%% hit rate), %d compiles (%d shared code), %d entries / %d versions, ~%d KiB",
		s.Lookups, s.Hits, 100*s.HitRate(), s.Misses, s.Shared, s.Entries, s.Versions, s.Bytes/1024)
}

// FillMetrics folds the snapshot into a metrics registry under the
// "vcache." prefix: the flow totals as counters, the residency figures
// (entries, versions, bytes, quarantined) as gauges. All values are
// scheduling-independent (see the package comment). No-op when m is nil.
func (s Stats) FillMetrics(m *trace.Metrics) {
	if m == nil {
		return
	}
	m.Add("vcache.lookups", s.Lookups)
	m.Add("vcache.hits", s.Hits)
	m.Add("vcache.misses", s.Misses)
	m.Add("vcache.shared", s.Shared)
	m.Add("vcache.disk_hits", s.DiskHits)
	m.Gauge("vcache.entries", s.Entries)
	m.Gauge("vcache.versions", s.Versions)
	m.Gauge("vcache.bytes", s.Bytes)
	m.Gauge("vcache.quarantined", s.Quarantined)
	m.Gauge("vcache.preloaded", s.Preloaded)
}

// Cache is a concurrency-safe compile cache. The zero value is not usable;
// use New.
type Cache struct {
	mu      sync.Mutex
	entries map[Key]*entry
	byCode  map[codeKey]*entry
	stats   Stats
}

// New returns an empty cache.
func New() *Cache {
	return &Cache{
		entries: make(map[Key]*entry),
		byCode:  make(map[codeKey]*entry),
	}
}

// Resolution is the outcome of one Resolve call: the frozen version, its
// full content fingerprint, whether the key's code is aliased to a Version
// first compiled under a different flag set, and whether the entry was
// installed from a persistent snapshot (Preload) rather than compiled this
// process.
type Resolution struct {
	V        *sim.Version
	FP       FP128
	Shared   bool
	FromDisk bool
}

// Resolve returns the frozen version for key, invoking compile at most
// once per distinct key.
//
// compile runs under the cache lock: concurrent requesters of the same key
// block until the first finishes, so exactly one compilation happens and
// the miss count equals the number of distinct keys — independent of
// scheduling. Compile errors are returned and not cached.
func (c *Cache) Resolve(key Key, compile func() (*sim.Version, error)) (Resolution, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Lookups++
	if e, ok := c.entries[key]; ok {
		c.stats.Hits++
		if e.fromDisk {
			c.stats.DiskHits++
		}
		return Resolution{V: e.v, FP: e.fp, Shared: e.shared, FromDisk: e.fromDisk}, nil
	}
	c.stats.Misses++
	nv, err := compile()
	if err != nil {
		return Resolution{}, err
	}
	nv.Freeze()
	nfp := Fingerprint128(nv)
	ck := codeKey{key.Prog, key.Fn, key.Machine, nfp.Lo}
	e, ok := c.byCode[ck]
	if ok {
		// Identical generated code under a different flag set: alias the
		// existing frozen Version and drop the fresh compilation. The alias
		// itself was compiled this process, so it is not fromDisk even when
		// the body it aliases is.
		c.stats.Shared++
		e = &entry{v: e.v, fp: e.fp, shared: true}
	} else {
		e = &entry{v: nv, fp: nfp}
		c.byCode[ck] = e
		c.stats.Versions++
		c.stats.Bytes += versionBytes(nv, map[*sim.Version]bool{})
	}
	c.entries[key] = e
	c.stats.Entries++
	return Resolution{V: e.v, FP: e.fp, Shared: e.shared}, nil
}

// GetOrCompile is Resolve narrowed to the pre-store signature: the frozen
// version, the low 64 fingerprint bits (Fingerprint), and the shared bit.
func (c *Cache) GetOrCompile(key Key, compile func() (*sim.Version, error)) (v *sim.Version, fp uint64, shared bool, err error) {
	r, err := c.Resolve(key, compile)
	if err != nil {
		return nil, 0, false, err
	}
	return r.V, r.FP.Lo, r.Shared, nil
}

// SnapshotEntry is one exported cache key: its full fingerprint addresses
// the version body in Snapshot.Versions, Shared preserves the key's
// content-dedup bit.
type SnapshotEntry struct {
	Key    Key
	FP     FP128
	Shared bool
}

// Snapshot is the cache's persistable content: every distinct version body
// keyed by full fingerprint (callees included, each body counted once) and
// every resident key as an alias into it. Quarantined keys are excluded —
// a persistent store must never re-serve code that failed golden-output
// verification as if it were clean.
type Snapshot struct {
	Versions map[FP128]*sim.Version
	Entries  []SnapshotEntry
}

// Export snapshots the cache for persistence. Entries are sorted by
// (Prog, Fn, Machine, Flags) so the snapshot — and any file written from
// it — is byte-deterministic regardless of insertion order.
func (c *Cache) Export() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	sn := Snapshot{Versions: make(map[FP128]*sim.Version)}
	for key, e := range c.entries {
		if e.quarantined {
			continue
		}
		sn.Entries = append(sn.Entries, SnapshotEntry{Key: key, FP: e.fp, Shared: e.shared})
		addVersions(sn.Versions, e.v, e.fp)
	}
	sort.Slice(sn.Entries, func(i, j int) bool {
		a, b := sn.Entries[i].Key, sn.Entries[j].Key
		if a.Prog != b.Prog {
			return a.Prog < b.Prog
		}
		if a.Fn != b.Fn {
			return a.Fn < b.Fn
		}
		if a.Machine != b.Machine {
			return a.Machine < b.Machine
		}
		return a.Flags < b.Flags
	})
	return sn
}

// addVersions registers v under fp and every callee under its own
// fingerprint, transitively, each body once.
func addVersions(dst map[FP128]*sim.Version, v *sim.Version, fp FP128) {
	if _, ok := dst[fp]; ok {
		return
	}
	dst[fp] = v
	for _, cv := range v.Callees {
		addVersions(dst, cv, Fingerprint128(cv))
	}
}

// Preload installs a snapshot's entries (frozen versions loaded from a
// persistent store) without touching the lookup counters, and returns how
// many keys were installed. Keys already resident — and entries whose body
// is missing from the snapshot — are skipped, so preloading composes with
// a warm cache. Callers must pass verified, frozen versions; the store's
// loader re-fingerprints every body before handing it here.
func (c *Cache) Preload(sn Snapshot) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, se := range sn.Entries {
		if _, ok := c.entries[se.Key]; ok {
			continue
		}
		body, ok := sn.Versions[se.FP]
		if !ok {
			continue
		}
		ck := codeKey{se.Key.Prog, se.Key.Fn, se.Key.Machine, se.FP.Lo}
		be, ok := c.byCode[ck]
		if !ok {
			be = &entry{v: body, fp: se.FP, fromDisk: true}
			c.byCode[ck] = be
			c.stats.Versions++
			c.stats.Bytes += versionBytes(body, map[*sim.Version]bool{})
		}
		c.entries[se.Key] = &entry{v: be.v, fp: be.fp, shared: se.Shared, fromDisk: true}
		c.stats.Entries++
		c.stats.Preloaded++
		n++
	}
	return n
}

// MarkQuarantined records that key's compilation failed golden-output
// verification. The mark is observability (Stats.Quarantined, Quarantined)
// — GetOrCompile still serves the entry, because every tune re-verifies its
// own resolutions and the verdict is deterministic. No-op for unknown keys.
func (c *Cache) MarkQuarantined(key Key) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok && !e.quarantined {
		e.quarantined = true
		c.stats.Quarantined++
	}
}

// Quarantined reports whether key has been marked miscompiled.
func (c *Cache) Quarantined(key Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	return ok && e.quarantined
}

// Stats returns a snapshot of the counters. The snapshot is taken under
// the same mutex every writer holds (Resolve, Preload, MarkQuarantined all
// mutate c.stats inside c.mu), so the returned struct is always a
// consistent point-in-time view — counters can never be torn against each
// other (Lookups always equals Hits+Misses, for example), no matter how
// many writers race the call. vcache_test.go's TestStatsConsistentUnderRace
// exercises exactly that invariant under the race detector.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
