// Package vcache provides a concurrency-safe, content-addressed cache of
// compiled, frozen sim.Versions.
//
// Tuning recompiles the same flag sets constantly: Iterative Elimination
// re-rates the base set every round, later rounds re-add previously dropped
// flags, and experiment drivers tune the same benchmark under several
// methods. The cache makes each distinct compilation happen exactly once
// per (program, function, flag set, machine) — and, one level deeper,
// stores only one Version per distinct *generated code*: flag sets that
// compile to identical LIR (by Fingerprint) share a single frozen Version.
//
// Determinism: compilation runs under the cache lock and the compiler
// itself is deterministic, so the cache's contents — and its Misses/Shared
// totals — depend only on the set of keys requested, never on request
// order or worker count. Hits/Lookups totals are likewise
// scheduling-independent because each tuning job performs a fixed sequence
// of lookups. Cached versions are frozen before publication and never
// mutated afterwards; per-runner state (decode plans, predictor counters)
// lives in each job's sim.Runner, not in the shared Version.
package vcache

import (
	"fmt"
	"sync"

	"peak/internal/opt"
	"peak/internal/sim"
	"peak/internal/trace"
)

// Key identifies one compilation: program identity (ProgramKey over the
// HIR), the function being compiled, the canonical flag-set fingerprint
// (opt.FlagSet is a canonical bitset, so the value is its own fingerprint),
// and the target machine.
type Key struct {
	Prog    uint64
	Fn      string
	Flags   opt.FlagSet
	Machine string
}

// codeKey addresses generated code rather than requested flags: two Keys
// whose compilations fingerprint identically map to the same codeKey.
type codeKey struct {
	prog    uint64
	fn      string
	machine string
	fp      uint64
}

type entry struct {
	v  *sim.Version
	fp uint64
	// shared marks entries whose code was first compiled under a different
	// flag set (content-dedup alias). Recorded per key at insert time, so
	// hits report the same value every time.
	shared bool
	// quarantined marks entries a tune's golden-output verification flagged
	// as miscompiled (MarkQuarantined). Observability only: tunes verify
	// every resolution themselves (the verdict is deterministic, so repeat
	// verifications agree), keeping their cycle accounting independent of
	// what other cache users already discovered.
	quarantined bool
}

// Stats is a snapshot of the cache's counters. All totals are
// scheduling-independent (see the package comment).
type Stats struct {
	// Lookups is the number of GetOrCompile calls; Hits the calls answered
	// without compiling; Misses the compilations performed.
	Lookups int64
	Hits    int64
	Misses  int64
	// Shared counts compilations whose generated code matched an existing
	// entry's fingerprint, so the compiled result was discarded and the
	// existing frozen Version reused.
	Shared int64
	// Entries is the number of distinct flag-set keys resident; Versions
	// the number of distinct code bodies backing them; Bytes their
	// estimated footprint.
	Entries  int64
	Versions int64
	Bytes    int64
	// Quarantined is the number of resident keys flagged as miscompiled by
	// golden-output verification (MarkQuarantined).
	Quarantined int64
}

// HitRate returns Hits ÷ Lookups as a fraction in [0, 1]. The zero-lookup
// path — a fresh cache queried for stats, exactly what the serve /stats
// endpoint does before the first job lands — reports 0 rather than NaN
// (which json.Marshal would reject and "%.1f" would render as "NaN").
func (s Stats) HitRate() float64 {
	if s.Lookups <= 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// Summary formats the stats in the style of sched.Stats.Summary.
func (s Stats) Summary() string {
	return fmt.Sprintf("vcache: %d lookups, %d hits (%.1f%% hit rate), %d compiles (%d shared code), %d entries / %d versions, ~%d KiB",
		s.Lookups, s.Hits, 100*s.HitRate(), s.Misses, s.Shared, s.Entries, s.Versions, s.Bytes/1024)
}

// FillMetrics folds the snapshot into a metrics registry under the
// "vcache." prefix: the flow totals as counters, the residency figures
// (entries, versions, bytes, quarantined) as gauges. All values are
// scheduling-independent (see the package comment). No-op when m is nil.
func (s Stats) FillMetrics(m *trace.Metrics) {
	if m == nil {
		return
	}
	m.Add("vcache.lookups", s.Lookups)
	m.Add("vcache.hits", s.Hits)
	m.Add("vcache.misses", s.Misses)
	m.Add("vcache.shared", s.Shared)
	m.Gauge("vcache.entries", s.Entries)
	m.Gauge("vcache.versions", s.Versions)
	m.Gauge("vcache.bytes", s.Bytes)
	m.Gauge("vcache.quarantined", s.Quarantined)
}

// Cache is a concurrency-safe compile cache. The zero value is not usable;
// use New.
type Cache struct {
	mu      sync.Mutex
	entries map[Key]*entry
	byCode  map[codeKey]*entry
	stats   Stats
}

// New returns an empty cache.
func New() *Cache {
	return &Cache{
		entries: make(map[Key]*entry),
		byCode:  make(map[codeKey]*entry),
	}
}

// GetOrCompile returns the frozen version for key, invoking compile at most
// once per distinct key. The returned fingerprint identifies the generated
// code (Fingerprint); shared reports whether this key's code is aliased to
// a Version first compiled under a different flag set.
//
// compile runs under the cache lock: concurrent requesters of the same key
// block until the first finishes, so exactly one compilation happens and
// the miss count equals the number of distinct keys — independent of
// scheduling. Compile errors are returned and not cached.
func (c *Cache) GetOrCompile(key Key, compile func() (*sim.Version, error)) (v *sim.Version, fp uint64, shared bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Lookups++
	if e, ok := c.entries[key]; ok {
		c.stats.Hits++
		return e.v, e.fp, e.shared, nil
	}
	c.stats.Misses++
	nv, err := compile()
	if err != nil {
		return nil, 0, false, err
	}
	nv.Freeze()
	nfp := Fingerprint(nv)
	ck := codeKey{key.Prog, key.Fn, key.Machine, nfp}
	e, ok := c.byCode[ck]
	if ok {
		// Identical generated code under a different flag set: alias the
		// existing frozen Version and drop the fresh compilation.
		c.stats.Shared++
		e = &entry{v: e.v, fp: e.fp, shared: true}
	} else {
		e = &entry{v: nv, fp: nfp}
		c.byCode[ck] = e
		c.stats.Versions++
		c.stats.Bytes += versionBytes(nv, map[*sim.Version]bool{})
	}
	c.entries[key] = e
	c.stats.Entries++
	return e.v, e.fp, e.shared, nil
}

// MarkQuarantined records that key's compilation failed golden-output
// verification. The mark is observability (Stats.Quarantined, Quarantined)
// — GetOrCompile still serves the entry, because every tune re-verifies its
// own resolutions and the verdict is deterministic. No-op for unknown keys.
func (c *Cache) MarkQuarantined(key Key) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok && !e.quarantined {
		e.quarantined = true
		c.stats.Quarantined++
	}
}

// Quarantined reports whether key has been marked miscompiled.
func (c *Cache) Quarantined(key Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	return ok && e.quarantined
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
