package vcache

import (
	"strings"
	"sync"
	"testing"

	"peak/internal/machine"
	"peak/internal/opt"
	"peak/internal/sim"
	"peak/internal/workloads"
)

func compileBench(t *testing.T, name string) (key func(fs opt.FlagSet) Key, compile func(fs opt.FlagSet) func() (*sim.Version, error)) {
	t.Helper()
	b, ok := workloads.ByName(name)
	if !ok {
		t.Fatalf("benchmark %s not found", name)
	}
	m := machine.SPARCII()
	pk := ProgramKey(b.Prog)
	key = func(fs opt.FlagSet) Key {
		return Key{Prog: pk, Fn: b.TSName, Flags: fs, Machine: m.Name}
	}
	compile = func(fs opt.FlagSet) func() (*sim.Version, error) {
		return func() (*sim.Version, error) {
			return opt.Compile(b.Prog, b.TS, fs, m)
		}
	}
	return key, compile
}

func TestGetOrCompileHitReturnsSameVersion(t *testing.T) {
	key, compile := compileBench(t, "SWIM")
	c := New()
	v1, fp1, _, err := c.GetOrCompile(key(opt.O3()), compile(opt.O3()))
	if err != nil {
		t.Fatal(err)
	}
	v2, fp2, _, err := c.GetOrCompile(key(opt.O3()), compile(opt.O3()))
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 || fp1 != fp2 {
		t.Fatalf("cache hit returned a different version (%p vs %p) or fingerprint (%x vs %x)", v1, v2, fp1, fp2)
	}
	st := c.Stats()
	if st.Lookups != 2 || st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 2 lookups / 1 hit / 1 miss / 1 entry", st)
	}
	if st.Bytes <= 0 {
		t.Fatalf("expected positive byte estimate, got %d", st.Bytes)
	}
}

func TestContentDedupSharesIdenticalCode(t *testing.T) {
	key, compile := compileBench(t, "SWIM")
	c := New()
	base := opt.O3()
	bv, bfp, _, err := c.GetOrCompile(key(base), compile(base))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]*sim.Version{bfp: bv}
	sharedFlags := 0
	for _, f := range opt.AllFlags() {
		fs := base.Without(f)
		v, fp, shared, err := c.GetOrCompile(key(fs), compile(fs))
		if err != nil {
			t.Fatal(err)
		}
		if prev, ok := seen[fp]; ok {
			if !shared {
				t.Fatalf("flag %s: fingerprint seen before but shared=false", f)
			}
			if v != prev {
				t.Fatalf("flag %s: identical fingerprint but distinct version pointer", f)
			}
			sharedFlags++
		} else {
			if v == bv {
				t.Fatalf("flag %s: distinct fingerprint but aliased to base version", f)
			}
			seen[fp] = v
		}
	}
	st := c.Stats()
	if int(st.Shared) != sharedFlags {
		t.Fatalf("stats.Shared = %d, want %d", st.Shared, sharedFlags)
	}
	if sharedFlags == 0 {
		t.Fatal("expected at least one flag to be a code no-op on SWIM")
	}
	if st.Versions >= st.Entries {
		t.Fatalf("expected fewer versions (%d) than entries (%d)", st.Versions, st.Entries)
	}
}

func TestProgramKeyStableAcrossCloneAndSensitiveToEdits(t *testing.T) {
	b, _ := workloads.ByName("MCF")
	k1 := ProgramKey(b.Prog)
	if k2 := ProgramKey(b.Prog.Clone()); k1 != k2 {
		t.Fatalf("clone changed program key: %x vs %x", k1, k2)
	}
	mutated := b.Prog.Clone()
	mutated.AddScalar("__vcache_probe", 0)
	if k3 := ProgramKey(mutated); k3 == k1 {
		t.Fatal("adding a scalar did not change the program key")
	}
}

func TestFingerprintIgnoresLabel(t *testing.T) {
	_, compile := compileBench(t, "SWIM")
	v1, err := compile(opt.O3())()
	if err != nil {
		t.Fatal(err)
	}
	v2, err := compile(opt.O3())()
	if err != nil {
		t.Fatal(err)
	}
	v2.Label = "something else entirely"
	if Fingerprint(v1) != Fingerprint(v2) {
		t.Fatal("fingerprint depends on Label")
	}
}

func TestConcurrentGetOrCompile(t *testing.T) {
	key, compile := compileBench(t, "SWIM")
	c := New()
	flags := []opt.FlagSet{opt.O3()}
	for _, f := range opt.AllFlags()[:8] {
		flags = append(flags, opt.O3().Without(f))
	}
	const goroutines = 8
	got := make([][]*sim.Version, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got[g] = make([]*sim.Version, len(flags))
			for i, fs := range flags {
				v, _, _, err := c.GetOrCompile(key(fs), compile(fs))
				if err != nil {
					t.Error(err)
					return
				}
				got[g][i] = v
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := range flags {
			if got[g][i] != got[0][i] {
				t.Fatalf("goroutine %d got a different version for flags[%d]", g, i)
			}
		}
	}
	st := c.Stats()
	if st.Misses != int64(len(flags)) {
		t.Fatalf("misses = %d, want %d (one compile per distinct key)", st.Misses, len(flags))
	}
	if st.Lookups != int64(goroutines*len(flags)) {
		t.Fatalf("lookups = %d, want %d", st.Lookups, goroutines*len(flags))
	}
}

func TestMarkQuarantined(t *testing.T) {
	key, compile := compileBench(t, "SWIM")
	c := New()
	k := key(opt.O3())
	if c.Quarantined(k) {
		t.Fatal("fresh cache reports a quarantined key")
	}
	c.MarkQuarantined(k) // unknown key: no-op
	if c.Stats().Quarantined != 0 {
		t.Fatal("marking an unknown key changed stats")
	}
	if _, _, _, err := c.GetOrCompile(k, compile(opt.O3())); err != nil {
		t.Fatal(err)
	}
	c.MarkQuarantined(k)
	c.MarkQuarantined(k) // idempotent
	if !c.Quarantined(k) {
		t.Error("Quarantined(k) = false after MarkQuarantined")
	}
	if got := c.Stats().Quarantined; got != 1 {
		t.Errorf("Stats.Quarantined = %d, want 1", got)
	}
	// The entry is still served: tunes re-verify their own resolutions.
	if v, _, _, err := c.GetOrCompile(k, compile(opt.O3())); err != nil || v == nil {
		t.Errorf("quarantined entry not served: %v, %v", v, err)
	}
}

// TestHitRateZeroLookups pins the fresh-cache stats path the serve /stats
// endpoint exercises before any job has run: HitRate must be exactly 0
// (never NaN, which json.Marshal rejects), Summary must render finite
// numbers, and the rate must track Hits/Lookups once traffic arrives.
func TestHitRateZeroLookups(t *testing.T) {
	var zero Stats
	if got := zero.HitRate(); got != 0 {
		t.Fatalf("zero-lookup HitRate = %v, want 0", got)
	}
	if line := zero.Summary(); strings.Contains(line, "NaN") {
		t.Fatalf("zero-lookup Summary renders NaN: %s", line)
	}

	key, compile := compileBench(t, "SWIM")
	c := New()
	k := key(opt.O3())
	for i := 0; i < 4; i++ {
		if _, _, _, err := c.GetOrCompile(k, compile(opt.O3())); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if got, want := st.HitRate(), 0.75; got != want {
		t.Fatalf("HitRate after 4 lookups / 3 hits = %v, want %v", got, want)
	}
	if !strings.Contains(st.Summary(), "75.0% hit rate") {
		t.Fatalf("Summary missing hit rate: %s", st.Summary())
	}
}
