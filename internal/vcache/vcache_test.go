package vcache

import (
	"strings"
	"sync"
	"testing"

	"peak/internal/machine"
	"peak/internal/opt"
	"peak/internal/sim"
	"peak/internal/workloads"
)

func compileBench(t *testing.T, name string) (key func(fs opt.FlagSet) Key, compile func(fs opt.FlagSet) func() (*sim.Version, error)) {
	t.Helper()
	b, ok := workloads.ByName(name)
	if !ok {
		t.Fatalf("benchmark %s not found", name)
	}
	m := machine.SPARCII()
	pk := ProgramKey(b.Prog)
	key = func(fs opt.FlagSet) Key {
		return Key{Prog: pk, Fn: b.TSName, Flags: fs, Machine: m.Name}
	}
	compile = func(fs opt.FlagSet) func() (*sim.Version, error) {
		return func() (*sim.Version, error) {
			return opt.Compile(b.Prog, b.TS, fs, m)
		}
	}
	return key, compile
}

func TestGetOrCompileHitReturnsSameVersion(t *testing.T) {
	key, compile := compileBench(t, "SWIM")
	c := New()
	v1, fp1, _, err := c.GetOrCompile(key(opt.O3()), compile(opt.O3()))
	if err != nil {
		t.Fatal(err)
	}
	v2, fp2, _, err := c.GetOrCompile(key(opt.O3()), compile(opt.O3()))
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 || fp1 != fp2 {
		t.Fatalf("cache hit returned a different version (%p vs %p) or fingerprint (%x vs %x)", v1, v2, fp1, fp2)
	}
	st := c.Stats()
	if st.Lookups != 2 || st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 2 lookups / 1 hit / 1 miss / 1 entry", st)
	}
	if st.Bytes <= 0 {
		t.Fatalf("expected positive byte estimate, got %d", st.Bytes)
	}
}

func TestContentDedupSharesIdenticalCode(t *testing.T) {
	key, compile := compileBench(t, "SWIM")
	c := New()
	base := opt.O3()
	bv, bfp, _, err := c.GetOrCompile(key(base), compile(base))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]*sim.Version{bfp: bv}
	sharedFlags := 0
	for _, f := range opt.AllFlags() {
		fs := base.Without(f)
		v, fp, shared, err := c.GetOrCompile(key(fs), compile(fs))
		if err != nil {
			t.Fatal(err)
		}
		if prev, ok := seen[fp]; ok {
			if !shared {
				t.Fatalf("flag %s: fingerprint seen before but shared=false", f)
			}
			if v != prev {
				t.Fatalf("flag %s: identical fingerprint but distinct version pointer", f)
			}
			sharedFlags++
		} else {
			if v == bv {
				t.Fatalf("flag %s: distinct fingerprint but aliased to base version", f)
			}
			seen[fp] = v
		}
	}
	st := c.Stats()
	if int(st.Shared) != sharedFlags {
		t.Fatalf("stats.Shared = %d, want %d", st.Shared, sharedFlags)
	}
	if sharedFlags == 0 {
		t.Fatal("expected at least one flag to be a code no-op on SWIM")
	}
	if st.Versions >= st.Entries {
		t.Fatalf("expected fewer versions (%d) than entries (%d)", st.Versions, st.Entries)
	}
}

func TestProgramKeyStableAcrossCloneAndSensitiveToEdits(t *testing.T) {
	b, _ := workloads.ByName("MCF")
	k1 := ProgramKey(b.Prog)
	if k2 := ProgramKey(b.Prog.Clone()); k1 != k2 {
		t.Fatalf("clone changed program key: %x vs %x", k1, k2)
	}
	mutated := b.Prog.Clone()
	mutated.AddScalar("__vcache_probe", 0)
	if k3 := ProgramKey(mutated); k3 == k1 {
		t.Fatal("adding a scalar did not change the program key")
	}
}

func TestFingerprintIgnoresLabel(t *testing.T) {
	_, compile := compileBench(t, "SWIM")
	v1, err := compile(opt.O3())()
	if err != nil {
		t.Fatal(err)
	}
	v2, err := compile(opt.O3())()
	if err != nil {
		t.Fatal(err)
	}
	v2.Label = "something else entirely"
	if Fingerprint(v1) != Fingerprint(v2) {
		t.Fatal("fingerprint depends on Label")
	}
}

func TestConcurrentGetOrCompile(t *testing.T) {
	key, compile := compileBench(t, "SWIM")
	c := New()
	flags := []opt.FlagSet{opt.O3()}
	for _, f := range opt.AllFlags()[:8] {
		flags = append(flags, opt.O3().Without(f))
	}
	const goroutines = 8
	got := make([][]*sim.Version, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got[g] = make([]*sim.Version, len(flags))
			for i, fs := range flags {
				v, _, _, err := c.GetOrCompile(key(fs), compile(fs))
				if err != nil {
					t.Error(err)
					return
				}
				got[g][i] = v
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := range flags {
			if got[g][i] != got[0][i] {
				t.Fatalf("goroutine %d got a different version for flags[%d]", g, i)
			}
		}
	}
	st := c.Stats()
	if st.Misses != int64(len(flags)) {
		t.Fatalf("misses = %d, want %d (one compile per distinct key)", st.Misses, len(flags))
	}
	if st.Lookups != int64(goroutines*len(flags)) {
		t.Fatalf("lookups = %d, want %d", st.Lookups, goroutines*len(flags))
	}
}

func TestMarkQuarantined(t *testing.T) {
	key, compile := compileBench(t, "SWIM")
	c := New()
	k := key(opt.O3())
	if c.Quarantined(k) {
		t.Fatal("fresh cache reports a quarantined key")
	}
	c.MarkQuarantined(k) // unknown key: no-op
	if c.Stats().Quarantined != 0 {
		t.Fatal("marking an unknown key changed stats")
	}
	if _, _, _, err := c.GetOrCompile(k, compile(opt.O3())); err != nil {
		t.Fatal(err)
	}
	c.MarkQuarantined(k)
	c.MarkQuarantined(k) // idempotent
	if !c.Quarantined(k) {
		t.Error("Quarantined(k) = false after MarkQuarantined")
	}
	if got := c.Stats().Quarantined; got != 1 {
		t.Errorf("Stats.Quarantined = %d, want 1", got)
	}
	// The entry is still served: tunes re-verify their own resolutions.
	if v, _, _, err := c.GetOrCompile(k, compile(opt.O3())); err != nil || v == nil {
		t.Errorf("quarantined entry not served: %v, %v", v, err)
	}
}

// TestProgramKeyValueFrozen pins the exact 64-bit ProgramKey values for two
// workloads. These are not arbitrary: ProgramKey is embedded in the
// fault-injection identity strings ("progKey/fn/flags/machine"), so any
// change to the legacy 64-bit FNV-1a lane silently re-rolls every committed
// fault draw (results_faults.txt and the quarantine-storm resilience test).
// The 128-bit widening of Fingerprint must never leak into these values.
func TestProgramKeyValueFrozen(t *testing.T) {
	for name, want := range map[string]uint64{
		"SWIM":  0x875c2d27974d18c6,
		"MGRID": 0x42f927cccd34de9a,
	} {
		b, ok := workloads.ByName(name)
		if !ok {
			t.Fatalf("benchmark %s not found", name)
		}
		if got := ProgramKey(b.Prog); got != want {
			t.Errorf("ProgramKey(%s) = %#x, want %#x — the legacy 64-bit hash lane changed; this breaks fault-injection determinism", name, got, want)
		}
	}
}

// TestFingerprint128LoAliasesFingerprint pins the two-tier key contract:
// the in-memory dedup path keys on the 64-bit Fingerprint, which must be
// exactly the low half of the 128-bit fingerprint the persistent store
// keys on — otherwise a preloaded body and its freshly compiled twin would
// land in different byCode slots and dedup would silently stop working.
func TestFingerprint128LoAliasesFingerprint(t *testing.T) {
	_, compile := compileBench(t, "SWIM")
	v, err := compile(opt.O3())()
	if err != nil {
		t.Fatal(err)
	}
	fp := Fingerprint128(v)
	if fp.IsZero() {
		t.Fatal("Fingerprint128 returned zero for a real version")
	}
	if got := Fingerprint(v); got != fp.Lo {
		t.Fatalf("Fingerprint = %#x, want low half of Fingerprint128 %s", got, fp)
	}
	if len(fp.String()) != 32 {
		t.Fatalf("FP128.String() = %q, want 32 hex digits", fp.String())
	}
}

// TestExportPreloadRoundTrip drives the warm-start path end to end in
// memory: a populated cache is exported, preloaded into a fresh cache, and
// every original key must resolve there as a disk hit without compiling
// anything. Quarantined keys must not survive the round trip.
func TestExportPreloadRoundTrip(t *testing.T) {
	key, compile := compileBench(t, "SWIM")
	warm := New()
	flags := []opt.FlagSet{opt.O3()}
	for _, f := range opt.AllFlags()[:6] {
		flags = append(flags, opt.O3().Without(f))
	}
	want := make(map[opt.FlagSet]Resolution)
	for _, fs := range flags {
		r, err := warm.Resolve(key(fs), compile(fs))
		if err != nil {
			t.Fatal(err)
		}
		want[fs] = r
	}
	bad := key(flags[len(flags)-1])
	warm.MarkQuarantined(bad)

	sn := warm.Export()
	if len(sn.Entries) != len(flags)-1 {
		t.Fatalf("exported %d entries, want %d (quarantined key excluded)", len(sn.Entries), len(flags)-1)
	}
	for _, se := range sn.Entries {
		if se.Key == bad {
			t.Fatal("quarantined key leaked into the snapshot")
		}
		if se.FP.IsZero() {
			t.Fatalf("entry %+v exported with zero fingerprint", se.Key)
		}
	}

	cold := New()
	if n := cold.Preload(sn); n != len(sn.Entries) {
		t.Fatalf("Preload installed %d keys, want %d", n, len(sn.Entries))
	}
	if st := cold.Stats(); st.Lookups != 0 || st.Misses != 0 || st.Preloaded != int64(len(sn.Entries)) {
		t.Fatalf("post-preload stats = %+v, want 0 lookups / 0 misses / %d preloaded", st, len(sn.Entries))
	}
	for _, fs := range flags[:len(flags)-1] {
		r, err := cold.Resolve(key(fs), func() (*sim.Version, error) {
			t.Fatalf("flags %v recompiled despite preload", fs)
			return nil, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if !r.FromDisk {
			t.Errorf("flags %v: preloaded key resolved with FromDisk=false", fs)
		}
		if r.FP != want[fs].FP || r.Shared != want[fs].Shared || r.V != want[fs].V {
			t.Errorf("flags %v: round trip changed resolution: got {fp %s shared %v}, want {fp %s shared %v}", fs, r.FP, r.Shared, want[fs].FP, want[fs].Shared)
		}
	}
	st := cold.Stats()
	if st.DiskHits != int64(len(flags)-1) {
		t.Errorf("DiskHits = %d, want %d", st.DiskHits, len(flags)-1)
	}
	// Preloading again is a no-op on resident keys.
	if n := cold.Preload(sn); n != 0 {
		t.Errorf("second Preload installed %d keys, want 0", n)
	}
}

// TestStatsConsistentUnderRace is the satellite audit of Stats()
// snapshotting: with compilers and preloaders racing readers, every Stats
// snapshot must be internally consistent — Lookups == Hits+Misses and
// Entries >= Versions at all times — because the snapshot is taken under
// the same mutex every writer holds. Run under -race this also proves the
// counters are never written outside the lock.
func TestStatsConsistentUnderRace(t *testing.T) {
	key, compile := compileBench(t, "SWIM")
	c := New()
	flags := []opt.FlagSet{opt.O3()}
	for _, f := range opt.AllFlags()[:8] {
		flags = append(flags, opt.O3().Without(f))
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				for _, fs := range flags {
					if _, err := c.Resolve(key(fs), compile(fs)); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				st := c.Stats()
				if st.Lookups != st.Hits+st.Misses {
					t.Errorf("torn stats: lookups %d != hits %d + misses %d", st.Lookups, st.Hits, st.Misses)
					return
				}
				if st.Versions > st.Entries {
					t.Errorf("torn stats: versions %d > entries %d", st.Versions, st.Entries)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(done)
	readers.Wait()
	st := c.Stats()
	if st.Lookups != int64(4*3*len(flags)) {
		t.Fatalf("final lookups = %d, want %d", st.Lookups, 4*3*len(flags))
	}
	if st.Misses != int64(len(flags)) {
		t.Fatalf("final misses = %d, want %d (one compile per distinct key)", st.Misses, len(flags))
	}
}

// TestHitRateZeroLookups pins the fresh-cache stats path the serve /stats
// endpoint exercises before any job has run: HitRate must be exactly 0
// (never NaN, which json.Marshal rejects), Summary must render finite
// numbers, and the rate must track Hits/Lookups once traffic arrives.
func TestHitRateZeroLookups(t *testing.T) {
	var zero Stats
	if got := zero.HitRate(); got != 0 {
		t.Fatalf("zero-lookup HitRate = %v, want 0", got)
	}
	if line := zero.Summary(); strings.Contains(line, "NaN") {
		t.Fatalf("zero-lookup Summary renders NaN: %s", line)
	}

	key, compile := compileBench(t, "SWIM")
	c := New()
	k := key(opt.O3())
	for i := 0; i < 4; i++ {
		if _, _, _, err := c.GetOrCompile(k, compile(opt.O3())); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if got, want := st.HitRate(), 0.75; got != want {
		t.Fatalf("HitRate after 4 lookups / 3 hits = %v, want %v", got, want)
	}
	if !strings.Contains(st.Summary(), "75.0% hit rate") {
		t.Fatalf("Summary missing hit rate: %s", st.Summary())
	}
}
