package workloads

import (
	"math"
	"math/rand"
	"testing"

	"peak/internal/bench"
	"peak/internal/machine"
	"peak/internal/opt"
	"peak/internal/sim"
)

// Each Table-1 kernel is checked against a plain-Go oracle that mirrors its
// HIR definition statement by statement. The oracle runs on a snapshot of
// the pre-invocation memory; the compiled kernel runs in the simulator;
// return values and written arrays must agree. Drivers mutate memory
// between invocations, so several invocations are replayed to cover the
// evolving state.

type oracle func(args []float64, mem map[string][]float64) (ret float64, wrote map[string]bool)

const semTol = 1e-9

func close2(a, b float64) bool {
	if a == b || (math.IsNaN(a) && math.IsNaN(b)) {
		return true
	}
	d := math.Abs(a - b)
	return d <= semTol*(1+math.Abs(a)+math.Abs(b))
}

// runSemantics replays `n` invocations of b's train dataset, comparing the
// simulated kernel against the oracle each time.
func runSemantics(t *testing.T, b *bench.Benchmark, ref oracle, n int) {
	t.Helper()
	m := machine.SPARCII()
	v, err := opt.Compile(b.Prog, b.TS, opt.O0(), m)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	rng := rand.New(rand.NewSource(b.Seed(91)))
	mem := sim.NewMemory(b.Prog)
	if b.Train.Setup != nil {
		b.Train.Setup(mem, rng)
	}
	runner := sim.NewRunner(m, mem, b.Seed(97))

	for i := 0; i < n; i++ {
		args := b.Train.Args(i, mem, rng)

		// Oracle state: a full copy of the pre-invocation memory.
		shadow := map[string][]float64{}
		for _, name := range mem.Names() {
			shadow[name] = append([]float64(nil), mem.Get(name).Data...)
		}
		wantRet, wrote := ref(args, shadow)

		gotRet, _, err := runner.Run(v, args)
		if err != nil {
			t.Fatalf("%s invocation %d: %v", b.Name, i, err)
		}
		if !close2(gotRet, wantRet) && !(math.IsNaN(wantRet) && math.IsNaN(gotRet)) {
			t.Fatalf("%s invocation %d: return %v, oracle %v (args %v)", b.Name, i, gotRet, wantRet, args)
		}
		for name := range wrote {
			got := mem.Get(name).Data
			want := shadow[name]
			for k := range want {
				if !close2(got[k], want[k]) {
					t.Fatalf("%s invocation %d: %s[%d] = %v, oracle %v", b.Name, i, name, k, got[k], want[k])
				}
			}
		}
	}
}

func TestSemanticsSWIM(t *testing.T) {
	refCalc3 := func(args []float64, mm map[string][]float64) (float64, map[string]bool) {
		n, alpha := int(args[0]), args[1]
		smooth := func(old, cur, next []float64, idx int) {
			old[idx] = cur[idx] + alpha*((next[idx]-2*cur[idx])+old[idx])
		}
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j++ {
				idx := i*n + j
				smooth(mm["uo"], mm["u"], mm["un"], idx)
				smooth(mm["vo"], mm["v"], mm["vn"], idx)
				smooth(mm["po"], mm["p"], mm["pn"], idx)
			}
		}
		return math.NaN(), map[string]bool{"uo": true, "vo": true, "po": true}
	}
	runSemantics(t, SWIM(), refCalc3, 5)
}

func TestSemanticsMGRID(t *testing.T) {
	refResid := func(args []float64, mm map[string][]float64) (float64, map[string]bool) {
		n := int(args[0])
		n2 := n * n
		mu, mv, mr := mm["mu"], mm["mv"], mm["mr"]
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j++ {
				for k := 1; k < n-1; k++ {
					idx := i*n2 + j*n + k
					s := (mu[idx+1] + mu[idx-1]) + ((mu[idx+n] + mu[idx-n]) + (mu[idx+n2] + mu[idx-n2]))
					mr[idx] = mv[idx] - (0.8*mu[idx] + -0.25*s)
				}
			}
		}
		return math.NaN(), map[string]bool{"mr": true}
	}
	runSemantics(t, MGRID(), refResid, 8)
}

func TestSemanticsAPPLU(t *testing.T) {
	refBlts := func(args []float64, mm map[string][]float64) (float64, map[string]bool) {
		nx, omega := int(args[0]), args[1]
		n2 := nx * nx
		av, ald := mm["av"], mm["ald"]
		for i := 1; i < nx; i++ {
			for j := 1; j < nx; j++ {
				for k := 1; k < nx; k++ {
					idx := i*n2 + j*nx + k
					av[idx] = av[idx] - omega*(ald[idx]*av[idx-1]+ald[idx-nx]*av[idx-nx])
				}
			}
		}
		return math.NaN(), map[string]bool{"av": true}
	}
	runSemantics(t, APPLU(), refBlts, 4)
}

func TestSemanticsAPSI(t *testing.T) {
	refRadb4 := func(args []float64, mm map[string][]float64) (float64, map[string]bool) {
		ido, l1 := int(args[0]), int(args[1])
		cc, ch := mm["cc"], mm["ch"]
		for k := 0; k < l1; k++ {
			for i := 0; i < ido; i++ {
				b := (k*ido + i) * 4
				t0 := cc[b] + cc[b+2]
				t1 := cc[b] - cc[b+2]
				t2 := cc[b+1] + cc[b+3]
				t3 := cc[b+3] - cc[b+1]
				ch[b] = t0 + t2
				ch[b+1] = t1 + t3
				ch[b+2] = t0 - t2
				ch[b+3] = t1 - t3
			}
		}
		return math.NaN(), map[string]bool{"ch": true}
	}
	runSemantics(t, APSI(), refRadb4, 6)
}

func TestSemanticsEQUAKE(t *testing.T) {
	refSmvp := func(args []float64, mm map[string][]float64) (float64, map[string]bool) {
		n := int(args[0])
		col, idx, val, vin, vout := mm["Acol"], mm["Aidx"], mm["Aval"], mm["vin"], mm["vout"]
		for i := 0; i < n; i++ {
			sum := 1.1 * vin[i]
			for j := int(col[i]); j < int(col[i+1]); j++ {
				sum += val[j] * vin[int(idx[j])]
			}
			vout[i] = sum
		}
		return math.NaN(), map[string]bool{"vout": true}
	}
	runSemantics(t, EQUAKE(), refSmvp, 6)
}

func TestSemanticsART(t *testing.T) {
	refMatch := func(args []float64, mm map[string][]float64) (float64, map[string]bool) {
		numf1s, rho := int(args[0]), args[1]
		fI, fW, fP, fX, fQ, fU := mm["fI"], mm["fW"], mm["fP"], mm["fX"], mm["fQ"], mm["fU"]
		tds, bus, g := mm["tds"], mm["bus"], mm["glob"]
		sum, best := 0.0, -1e30
		resets := 0.0
		for j := 0; j < numf1s; j++ {
			u := (fI[j]*g[0] + fW[j]*g[1]) + (fP[j]*g[2] + (fI[j]-fP[j])*g[8])
			q := (fX[j]*g[3] + fQ[j]*g[4]) + (fX[j]+fQ[j])*g[9]
			r := (u*g[5] + q*g[6]) + ((u-q)*g[10] + (u+q)*g[11])
			if tds[j] > rho {
				r = r * g[7]
			}
			if r > best {
				best = r
			}
			if u < 0 {
				u = 0 - u
			} else {
				resets += 1
			}
			if q > 0.9 {
				q = 0.9
			}
			if bus[j] < u {
				bus[j] = u
			}
			if r > rho {
				sum += r * 0.5
			}
			if fX[j] > fQ[j] {
				q = q * 0.99
			}
			if fW[j] < r*0.3 {
				resets += 2
			}
			if u+q > 1.4 {
				sum -= 0.01
			}
			sum += r + q
			fU[j] = u
		}
		_ = resets
		return sum + best, map[string]bool{"bus": true, "fU": true}
	}
	runSemantics(t, ART(), refMatch, 5)
}

func TestSemanticsMESA(t *testing.T) {
	refSample := func(args []float64, mm map[string][]float64) (float64, map[string]bool) {
		tc, n, mode := args[0], args[1], int(args[2])
		tex, out := mm["tex"], mm["out"]
		u := tc*n - 0.5
		if u < 0 {
			if mode == 0 {
				u = u + n
			} else {
				u = 0
			}
		}
		if u >= n {
			if mode == 0 {
				u = u - n
			} else {
				u = n - 1
			}
		}
		i0 := math.Floor(u)
		a := u - i0
		if i0 < 0 {
			i0 = 0
		}
		i1 := i0 + 1
		if i1 >= n {
			if mode == 0 {
				i1 = 0
			} else {
				i1 = n - 1
			}
		}
		if i0 >= n {
			i0 = n - 1
		}
		out[0] = (1-a)*tex[int(i0)] + a*tex[int(i1)]
		return out[0], map[string]bool{"out": true}
	}
	runSemantics(t, MESA(), refSample, 60)
}

func TestSemanticsWUPWISE(t *testing.T) {
	refZgemm := func(args []float64, mm map[string][]float64) (float64, map[string]bool) {
		m, nn, kk := int(args[0]), int(args[1]), int(args[2])
		zar, zai, zbr, zbi := mm["zar"], mm["zai"], mm["zbr"], mm["zbi"]
		zcr, zci := mm["zcr"], mm["zci"]
		for i := 0; i < m; i++ {
			for j := 0; j < nn; j++ {
				sr, si := 0.0, 0.0
				for k := 0; k < kk; k++ {
					ia := i*kk + k
					ib := k*nn + j
					sr += zar[ia]*zbr[ib] - zai[ia]*zbi[ib]
					si += zar[ia]*zbi[ib] + zai[ia]*zbr[ib]
				}
				zcr[i*nn+j] = sr
				zci[i*nn+j] = si
			}
		}
		return math.NaN(), map[string]bool{"zcr": true, "zci": true}
	}
	runSemantics(t, WUPWISE(), refZgemm, 6)
}

func TestSemanticsBZIP2(t *testing.T) {
	refFullGtU := func(args []float64, mm map[string][]float64) (float64, map[string]bool) {
		i1, i2 := int(args[0]), int(args[1])
		block, quad := mm["block"], mm["quad"]
		res, done := 0, 0
		for k := 0; k < 48 && done == 0; k++ {
			c1, c2 := int(block[i1+k]), int(block[i2+k])
			if c1 > c2 {
				res, done = 1, 1
			}
			if c1 < c2 {
				res, done = 0, 1
			}
			if done == 0 {
				c1, c2 = int(quad[i1+k]), int(quad[i2+k])
				if c1 > c2 {
					res, done = 1, 1
				}
				if c1 < c2 {
					res, done = 0, 1
				}
			}
		}
		return float64(res), map[string]bool{}
	}
	runSemantics(t, BZIP2(), refFullGtU, 40)
}

func TestSemanticsCRAFTY(t *testing.T) {
	refAttacked := func(args []float64, mm map[string][]float64) (float64, map[string]bool) {
		sq, side := int(args[0]), int(args[1])
		board, dirs := mm["board"], mm["dirs"]
		hit := 0
		for d := 0; d < 8; d++ {
			step := int(dirs[d])
			pos := sq + step
			blocked := 0
			for pos >= 0 && pos < 128 && blocked == 0 {
				if int(board[pos]) == 0 {
					pos += step
				} else {
					blocked = 1
				}
			}
			if pos >= 0 && pos < 128 {
				pc := int(board[pos])
				if pc*side == -2 {
					hit++
				}
				if pc*side == -3 && d < 4 {
					hit += 2
				}
				if pc*side == -5 && d >= 4 {
					hit += 4
				}
			}
		}
		return float64(hit), map[string]bool{}
	}
	runSemantics(t, CRAFTY(), refAttacked, 30)
}

func TestSemanticsGZIP(t *testing.T) {
	refLongestMatch := func(args []float64, mm map[string][]float64) (float64, map[string]bool) {
		cur, prevLen := int(args[0]), int(args[1])
		win, chain := mm["win"], mm["chain"]
		const chainN = 1024
		bestLen := prevLen
		match := cur % chainN
		tries, stop := 32, 0
		for tries > 0 && stop == 0 {
			match = int(chain[match%chainN])
			if match >= cur {
				stop = 1
			}
			if stop == 0 {
				if win[match+bestLen] == win[cur+bestLen] {
					l := 0
					for l < 64 && win[match+l] == win[cur+l] {
						l++
					}
					if l > bestLen {
						bestLen = l
					}
					if bestLen >= 64 {
						stop = 1
					}
				}
			}
			tries--
		}
		return float64(bestLen), map[string]bool{}
	}
	runSemantics(t, GZIP(), refLongestMatch, 40)
}

func TestSemanticsMCF(t *testing.T) {
	refPrimal := func(args []float64, mm map[string][]float64) (float64, map[string]bool) {
		start, nArcs := int(args[0]), int(args[1])
		const arcN = 2048
		cost, potT, potH, basket := mm["cost"], mm["potTail"], mm["potHead"], mm["basket"]
		worst := 0.0
		nb := 0
		for k := 0; k < nArcs; k++ {
			a := (start + k) % arcN
			red := (cost[a] + potH[a]) - potT[a]
			if red < 0 {
				if nb < 60 {
					basket[nb] = red
					nb++
				}
				if red < worst {
					worst = red
				}
			}
			if red > 2 {
				cost[a] = cost[a] * 0.999
			}
		}
		return worst + float64(nb), map[string]bool{"cost": true, "basket": true}
	}
	runSemantics(t, MCF(), refPrimal, 12)
}

func TestSemanticsTWOLF(t *testing.T) {
	refDbox := func(args []float64, mm map[string][]float64) (float64, map[string]bool) {
		first, npins := int(args[0]), int(args[1])
		const pinN = 1024
		px, py := mm["px"], mm["py"]
		xmin, ymin := 1<<20, 1<<20
		xmax, ymax := -(1 << 20), -(1 << 20)
		cost := 0
		for k := 0; k < npins; k++ {
			p := (first + k) % pinN
			x, y := int(px[p]), int(py[p])
			if x < xmin {
				xmin = x
			}
			if x > xmax {
				xmax = x
			}
			if y < ymin {
				ymin = y
			}
			if y > ymax {
				ymax = y
			}
			if x+y > 1500 {
				cost += 2
			}
			if x-y < -700 {
				cost++
			}
		}
		return float64((xmax - xmin) + (ymax - ymin) + cost), map[string]bool{}
	}
	runSemantics(t, TWOLF(), refDbox, 15)
}

func TestSemanticsVORTEX(t *testing.T) {
	refChk := func(args []float64, mm map[string][]float64) (float64, map[string]bool) {
		id := int(args[0])
		status, size, link := mm["status"], mm["size"], mm["link"]
		errv, hops := 0, 0
		if int(status[id]) == 0 {
			errv = 1
		}
		if errv == 0 {
			sz := int(size[id])
			if sz < 8 {
				errv = 2
			}
			if sz > 900 {
				errv = 3
			}
		}
		if errv == 0 {
			next := int(link[id])
			hops = 0
			for next > 0 && hops < 6 {
				if int(status[next]) == 0 {
					errv = 4
					next = 0
				} else {
					next = int(link[next])
				}
				hops++
			}
		}
		if hops > 4 {
			errv += 8
		}
		return float64(errv), map[string]bool{}
	}
	runSemantics(t, VORTEX(), refChk, 60)
}
