package workloads

import (
	"math/rand"

	"peak/internal/bench"
	"peak/internal/ir"
	"peak/internal/irbuild"
	"peak/internal/sim"
)

// The integer benchmarks share the paper's §5.1 structure: "the integer
// codes exhibit a large number of conditional statements, leading to highly
// irregular behavior. Because of this, our algorithm applies the
// re-execution-based methods (RBR) to all these codes."
//
// Concretely: control flow branches on array data that the surrounding
// program mutates between invocations (so CBR's context variables are
// non-scalar and not run-time constant), and the many independent
// data-dependent conditional arms blow up the MBR component model.

// BZIP2 models fullGtU: the suffix-comparison predicate of the block sort.
// Two indices walk the block with staged early-exit comparisons (Table 1:
// 24.2M invocations, RBR).
func BZIP2() *bench.Benchmark {
	const blockN = 4096
	prog := ir.NewProgram()
	prog.AddArray("block", ir.I64, blockN+64)
	prog.AddArray("quad", ir.I64, blockN+64)
	b := irbuild.NewFunc("fullGtU")
	b.ScalarParam("i1", ir.I64).ScalarParam("i2", ir.I64).
		Local("k", ir.I64).Local("c1", ir.I64).Local("c2", ir.I64).
		Local("res", ir.I64).Local("done", ir.I64)
	fn := b.Body(
		b.Set(b.V("k"), b.I(0)),
		b.While(b.And(b.Lt(b.V("k"), b.I(48)), b.Eq(b.V("done"), b.I(0))),
			b.Set(b.V("c1"), b.At("block", b.Add(b.V("i1"), b.V("k")))),
			b.Set(b.V("c2"), b.At("block", b.Add(b.V("i2"), b.V("k")))),
			b.If(b.Gt(b.V("c1"), b.V("c2")),
				b.Set(b.V("res"), b.I(1)), b.Set(b.V("done"), b.I(1)),
			),
			b.If(b.Lt(b.V("c1"), b.V("c2")),
				b.Set(b.V("res"), b.I(0)), b.Set(b.V("done"), b.I(1)),
			),
			b.If(b.Eq(b.V("done"), b.I(0)),
				b.Set(b.V("c1"), b.At("quad", b.Add(b.V("i1"), b.V("k")))),
				b.Set(b.V("c2"), b.At("quad", b.Add(b.V("i2"), b.V("k")))),
				b.If(b.Gt(b.V("c1"), b.V("c2")),
					b.Set(b.V("res"), b.I(1)), b.Set(b.V("done"), b.I(1)),
				),
				b.If(b.Lt(b.V("c1"), b.V("c2")),
					b.Set(b.V("res"), b.I(0)), b.Set(b.V("done"), b.I(1)),
				),
			),
			b.If(b.Gt(b.Mod(b.V("k"), b.I(8)), b.I(5)),
				b.Set(b.V("res"), b.Xor(b.V("res"), b.I(0))),
			),
			b.Set(b.V("k"), b.Add(b.V("k"), b.I(1))),
		),
		b.Ret(b.V("res")),
	)
	prog.AddFunc(fn)

	setup := func(mem *sim.Memory, rng *rand.Rand) {
		fillInts(mem, "block", rng, 16)
		fillInts(mem, "quad", rng, 4)
	}
	mkDS := func(name string, inv, span int) *bench.Dataset {
		return &bench.Dataset{
			Name:           name,
			NumInvocations: inv,
			Setup:          setup,
			Args: func(i int, mem *sim.Memory, rng *rand.Rand) []float64 {
				// The sort permutes the block as it proceeds.
				d := mem.Get("block").Data
				d[rng.Intn(span)] = float64(rng.Intn(16))
				return []float64{float64(rng.Intn(span)), float64(rng.Intn(span))}
			},
		}
	}
	return &bench.Benchmark{
		Name: "BZIP2", TSName: "fullGtU", Class: bench.Int,
		Prog: prog, TS: fn,
		Train:            mkDS("train", 6000, 2000),
		Ref:              mkDS("ref", 12000, 4000),
		NonTSCycles:      3_000_000,
		PaperInvocations: "24.2M",
	}
}

// CRAFTY models Attacked: ray scans from a square over a mutating board
// with per-direction blocking tests (Table 1: 12.3M invocations, RBR).
func CRAFTY() *bench.Benchmark {
	const boardN = 128
	prog := ir.NewProgram()
	prog.AddArray("board", ir.I64, boardN)
	prog.AddArray("dirs", ir.I64, 8)
	b := irbuild.NewFunc("Attacked")
	b.ScalarParam("sq", ir.I64).ScalarParam("side", ir.I64).
		Local("hit", ir.I64).Local("pos", ir.I64).Local("step", ir.I64).
		Local("pc", ir.I64).Local("blocked", ir.I64)
	fn := b.Body(
		b.For("d", b.I(0), b.I(8), 1,
			b.Set(b.V("step"), b.At("dirs", b.V("d"))),
			b.Set(b.V("pos"), b.Add(b.V("sq"), b.V("step"))),
			b.Set(b.V("blocked"), b.I(0)),
			b.While(b.And(b.And(b.Ge(b.V("pos"), b.I(0)), b.Lt(b.V("pos"), b.I(boardN))),
				b.Eq(b.V("blocked"), b.I(0))),
				b.Set(b.V("pc"), b.At("board", b.V("pos"))),
				b.IfElse(b.Eq(b.V("pc"), b.I(0)),
					b.Stmts(b.Set(b.V("pos"), b.Add(b.V("pos"), b.V("step")))),
					b.Stmts(b.Set(b.V("blocked"), b.I(1))),
				),
			),
			b.If(b.And(b.Ge(b.V("pos"), b.I(0)), b.Lt(b.V("pos"), b.I(boardN))),
				b.Set(b.V("pc"), b.At("board", b.V("pos"))),
				b.If(b.Eq(b.Mul(b.V("pc"), b.V("side")), b.Neg(b.I(2))),
					b.Set(b.V("hit"), b.Add(b.V("hit"), b.I(1))),
				),
				b.If(b.Eq(b.Mul(b.V("pc"), b.V("side")), b.Neg(b.I(3))),
					b.If(b.Lt(b.V("d"), b.I(4)),
						b.Set(b.V("hit"), b.Add(b.V("hit"), b.I(2))),
					),
				),
				b.If(b.Eq(b.Mul(b.V("pc"), b.V("side")), b.Neg(b.I(5))),
					b.If(b.Ge(b.V("d"), b.I(4)),
						b.Set(b.V("hit"), b.Add(b.V("hit"), b.I(4))),
					),
				),
			),
		),
		b.Ret(b.V("hit")),
	)
	prog.AddFunc(fn)

	setup := func(mem *sim.Memory, rng *rand.Rand) {
		d := mem.Get("board").Data
		for i := range d {
			if rng.Float64() < 0.25 {
				d[i] = float64(rng.Intn(11) - 5)
			}
		}
		dirs := mem.Get("dirs").Data
		for i, v := range []float64{1, -1, 8, -8, 7, -7, 9, -9} {
			dirs[i] = v
		}
	}
	mkDS := func(name string, inv int) *bench.Dataset {
		return &bench.Dataset{
			Name:           name,
			NumInvocations: inv,
			Setup:          setup,
			Args: func(i int, mem *sim.Memory, rng *rand.Rand) []float64 {
				// The search makes and unmakes moves.
				d := mem.Get("board").Data
				d[rng.Intn(len(d))] = float64(rng.Intn(11) - 5)
				side := float64(1)
				if i%2 == 1 {
					side = -1
				}
				return []float64{float64(rng.Intn(boardN)), side}
			},
		}
	}
	return &bench.Benchmark{
		Name: "CRAFTY", TSName: "Attacked", Class: bench.Int,
		Prog: prog, TS: fn,
		Train:            mkDS("train", 5000),
		Ref:              mkDS("ref", 10000),
		NonTSCycles:      3_000_000,
		PaperInvocations: "12.3M",
	}
}

// GZIP models longest_match: hash-chain traversal with nested byte
// comparison and competitive early exits (Table 1: 82.6M invocations, RBR).
func GZIP() *bench.Benchmark {
	const winN = 4096
	const chainN = 1024
	prog := ir.NewProgram()
	prog.AddArray("win", ir.I64, winN+300)
	prog.AddArray("chain", ir.I64, chainN)
	b := irbuild.NewFunc("longest_match")
	b.ScalarParam("cur", ir.I64).ScalarParam("prevLen", ir.I64).
		Local("bestLen", ir.I64).Local("match", ir.I64).Local("len", ir.I64).
		Local("tries", ir.I64).Local("stop", ir.I64)
	fn := b.Body(
		b.Set(b.V("bestLen"), b.V("prevLen")),
		b.Set(b.V("match"), b.Mod(b.V("cur"), b.I(chainN))),
		b.Set(b.V("tries"), b.I(32)),
		b.While(b.And(b.Gt(b.V("tries"), b.I(0)), b.Eq(b.V("stop"), b.I(0))),
			b.Set(b.V("match"), b.At("chain", b.Mod(b.V("match"), b.I(chainN)))),
			b.If(b.Ge(b.V("match"), b.V("cur")),
				b.Set(b.V("stop"), b.I(1)),
			),
			b.If(b.Eq(b.V("stop"), b.I(0)),
				// Quick reject: compare the byte at bestLen first.
				b.If(b.Eq(b.At("win", b.Add(b.V("match"), b.V("bestLen"))),
					b.At("win", b.Add(b.V("cur"), b.V("bestLen")))),
					b.Set(b.V("len"), b.I(0)),
					b.While(b.And(b.Lt(b.V("len"), b.I(64)),
						b.Eq(b.At("win", b.Add(b.V("match"), b.V("len"))),
							b.At("win", b.Add(b.V("cur"), b.V("len"))))),
						b.Set(b.V("len"), b.Add(b.V("len"), b.I(1))),
					),
					b.If(b.Gt(b.V("len"), b.V("bestLen")),
						b.Set(b.V("bestLen"), b.V("len")),
					),
					b.If(b.Ge(b.V("bestLen"), b.I(64)),
						b.Set(b.V("stop"), b.I(1)),
					),
				),
			),
			b.Set(b.V("tries"), b.Sub(b.V("tries"), b.I(1))),
		),
		b.Ret(b.V("bestLen")),
	)
	prog.AddFunc(fn)

	setup := func(mem *sim.Memory, rng *rand.Rand) {
		fillInts(mem, "win", rng, 5) // compressible: repeated symbols
		fillInts(mem, "chain", rng, chainN)
	}
	mkDS := func(name string, inv, span int) *bench.Dataset {
		return &bench.Dataset{
			Name:           name,
			NumInvocations: inv,
			Setup:          setup,
			Args: func(i int, mem *sim.Memory, rng *rand.Rand) []float64 {
				// The deflate loop appends input and updates the chain.
				w := mem.Get("win").Data
				w[rng.Intn(span)] = float64(rng.Intn(5))
				c := mem.Get("chain").Data
				c[rng.Intn(len(c))] = float64(rng.Intn(span))
				return []float64{float64(200 + rng.Intn(span-264)), float64(rng.Intn(8))}
			},
		}
	}
	return &bench.Benchmark{
		Name: "GZIP", TSName: "longest_match", Class: bench.Int,
		Prog: prog, TS: fn,
		Train:            mkDS("train", 8000, 2000),
		Ref:              mkDS("ref", 16000, 4000),
		NonTSCycles:      3_500_000,
		PaperInvocations: "82.6M",
	}
}

// MCF models primal_bea_mpp: the pricing scan over an arc block, keeping
// the most negative reduced costs (Table 1: 105K invocations, RBR).
func MCF() *bench.Benchmark {
	const arcN = 2048
	prog := ir.NewProgram()
	prog.AddArray("cost", ir.F64, arcN)
	prog.AddArray("potTail", ir.F64, arcN)
	prog.AddArray("potHead", ir.F64, arcN)
	prog.AddArray("basket", ir.F64, 64)
	b := irbuild.NewFunc("primal_bea_mpp")
	b.ScalarParam("start", ir.I64).ScalarParam("nArcs", ir.I64).
		Local("red", ir.F64).Local("nb", ir.I64).Local("worst", ir.F64).
		Local("a", ir.I64)
	fn := b.Body(
		b.Set(b.V("worst"), b.F(0)),
		b.For("k", b.I(0), b.V("nArcs"), 1,
			b.Set(b.V("a"), b.Mod(b.Add(b.V("start"), b.V("k")), b.I(arcN))),
			b.Set(b.V("red"), b.FSub(b.FAdd(b.At("cost", b.V("a")), b.At("potHead", b.V("a"))),
				b.At("potTail", b.V("a")))),
			b.If(b.FLt(b.V("red"), b.F(0)),
				b.If(b.Lt(b.V("nb"), b.I(60)),
					b.Set(b.At("basket", b.V("nb")), b.V("red")),
					b.Set(b.V("nb"), b.Add(b.V("nb"), b.I(1))),
				),
				b.If(b.FLt(b.V("red"), b.V("worst")),
					b.Set(b.V("worst"), b.V("red")),
				),
			),
			b.If(b.FGt(b.V("red"), b.F(2)),
				b.Set(b.At("cost", b.V("a")), b.FMul(b.At("cost", b.V("a")), b.F(0.999))),
			),
		),
		b.Ret(b.FAdd(b.V("worst"), b.V("nb"))),
	)
	prog.AddFunc(fn)

	setup := func(mem *sim.Memory, rng *rand.Rand) {
		fillUniform(mem, "cost", rng, -1, 3)
		fillUniform(mem, "potTail", rng, 0, 1)
		fillUniform(mem, "potHead", rng, 0, 1)
	}
	mkDS := func(name string, inv int, nArcs int64) *bench.Dataset {
		return &bench.Dataset{
			Name:           name,
			NumInvocations: inv,
			Setup:          setup,
			Args: func(i int, mem *sim.Memory, rng *rand.Rand) []float64 {
				// Pivots update node potentials between pricing scans.
				p := mem.Get("potTail").Data
				for k := 0; k < 4; k++ {
					p[rng.Intn(len(p))] = rng.Float64()
				}
				return []float64{float64(rng.Intn(arcN)), float64(nArcs)}
			},
		}
	}
	return &bench.Benchmark{
		Name: "MCF", TSName: "primal_bea_mpp", Class: bench.Int,
		Prog: prog, TS: fn,
		Train:            mkDS("train", 2000, 120),
		Ref:              mkDS("ref", 4000, 200),
		NonTSCycles:      2_500_000,
		PaperInvocations: "105K",
	}
}

// TWOLF models new_dbox_a: recomputing net bounding boxes after a move,
// with min/max and penalty conditionals on mutating cell positions
// (Table 1: 3.19M invocations, RBR).
func TWOLF() *bench.Benchmark {
	const pinN = 1024
	prog := ir.NewProgram()
	prog.AddArray("px", ir.I64, pinN)
	prog.AddArray("py", ir.I64, pinN)
	b := irbuild.NewFunc("new_dbox_a")
	b.ScalarParam("first", ir.I64).ScalarParam("npins", ir.I64).
		Local("xmin", ir.I64).Local("xmax", ir.I64).
		Local("ymin", ir.I64).Local("ymax", ir.I64).
		Local("x", ir.I64).Local("y", ir.I64).Local("cost", ir.I64).
		Local("p", ir.I64)
	fn := b.Body(
		b.Set(b.V("xmin"), b.I(1<<20)),
		b.Set(b.V("ymin"), b.I(1<<20)),
		b.Set(b.V("xmax"), b.Neg(b.I(1<<20))),
		b.Set(b.V("ymax"), b.Neg(b.I(1<<20))),
		b.For("k", b.I(0), b.V("npins"), 1,
			b.Set(b.V("p"), b.Mod(b.Add(b.V("first"), b.V("k")), b.I(pinN))),
			b.Set(b.V("x"), b.At("px", b.V("p"))),
			b.Set(b.V("y"), b.At("py", b.V("p"))),
			b.If(b.Lt(b.V("x"), b.V("xmin")), b.Set(b.V("xmin"), b.V("x"))),
			b.If(b.Gt(b.V("x"), b.V("xmax")), b.Set(b.V("xmax"), b.V("x"))),
			b.If(b.Lt(b.V("y"), b.V("ymin")), b.Set(b.V("ymin"), b.V("y"))),
			b.If(b.Gt(b.V("y"), b.V("ymax")), b.Set(b.V("ymax"), b.V("y"))),
			b.If(b.Gt(b.Add(b.V("x"), b.V("y")), b.I(1500)),
				b.Set(b.V("cost"), b.Add(b.V("cost"), b.I(2))),
			),
			b.If(b.Lt(b.Sub(b.V("x"), b.V("y")), b.Neg(b.I(700))),
				b.Set(b.V("cost"), b.Add(b.V("cost"), b.I(1))),
			),
		),
		b.Ret(b.Add(b.Add(b.Sub(b.V("xmax"), b.V("xmin")), b.Sub(b.V("ymax"), b.V("ymin"))),
			b.V("cost"))),
	)
	prog.AddFunc(fn)

	setup := func(mem *sim.Memory, rng *rand.Rand) {
		fillInts(mem, "px", rng, 1000)
		fillInts(mem, "py", rng, 1000)
	}
	mkDS := func(name string, inv int, npins int64) *bench.Dataset {
		return &bench.Dataset{
			Name:           name,
			NumInvocations: inv,
			Setup:          setup,
			Args: func(i int, mem *sim.Memory, rng *rand.Rand) []float64 {
				// Simulated annealing moves cells around.
				mem.Get("px").Data[rng.Intn(pinN)] = float64(rng.Intn(1000))
				mem.Get("py").Data[rng.Intn(pinN)] = float64(rng.Intn(1000))
				return []float64{float64(rng.Intn(pinN)), float64(npins)}
			},
		}
	}
	return &bench.Benchmark{
		Name: "TWOLF", TSName: "new_dbox_a", Class: bench.Int,
		Prog: prog, TS: fn,
		Train:            mkDS("train", 4000, 48),
		Ref:              mkDS("ref", 8000, 64),
		NonTSCycles:      2_500_000,
		PaperInvocations: "3.19M",
	}
}

// VORTEX models ChkGetChunk: a short validation routine with staged
// data-dependent checks over the object-memory tables, invoked extremely
// often (Table 1: 80.4M invocations, RBR).
func VORTEX() *bench.Benchmark {
	const tblN = 1024
	prog := ir.NewProgram()
	prog.AddArray("status", ir.I64, tblN)
	prog.AddArray("size", ir.I64, tblN)
	prog.AddArray("link", ir.I64, tblN)
	b := irbuild.NewFunc("ChkGetChunk")
	b.ScalarParam("id", ir.I64).Local("err", ir.I64).Local("s", ir.I64).
		Local("sz", ir.I64).Local("next", ir.I64).Local("hops", ir.I64)
	fn := b.Body(
		b.Set(b.V("s"), b.At("status", b.V("id"))),
		b.If(b.Eq(b.V("s"), b.I(0)),
			b.Set(b.V("err"), b.I(1)),
		),
		b.If(b.Eq(b.V("err"), b.I(0)),
			b.Set(b.V("sz"), b.At("size", b.V("id"))),
			b.If(b.Lt(b.V("sz"), b.I(8)),
				b.Set(b.V("err"), b.I(2)),
			),
			b.If(b.Gt(b.V("sz"), b.I(900)),
				b.Set(b.V("err"), b.I(3)),
			),
		),
		b.If(b.Eq(b.V("err"), b.I(0)),
			b.Set(b.V("next"), b.At("link", b.V("id"))),
			b.Set(b.V("hops"), b.I(0)),
			b.While(b.And(b.Gt(b.V("next"), b.I(0)), b.Lt(b.V("hops"), b.I(6))),
				b.IfElse(b.Eq(b.At("status", b.V("next")), b.I(0)),
					b.Stmts(
						b.Set(b.V("err"), b.I(4)),
						b.Set(b.V("next"), b.I(0)),
					),
					b.Stmts(
						b.Set(b.V("next"), b.At("link", b.V("next"))),
					),
				),
				b.Set(b.V("hops"), b.Add(b.V("hops"), b.I(1))),
			),
		),
		b.If(b.Gt(b.V("hops"), b.I(4)),
			b.Set(b.V("err"), b.Add(b.V("err"), b.I(8))),
		),
		b.Ret(b.V("err")),
	)
	prog.AddFunc(fn)

	setup := func(mem *sim.Memory, rng *rand.Rand) {
		st := mem.Get("status").Data
		for i := range st {
			if rng.Float64() < 0.9 {
				st[i] = 1
			}
		}
		sz := mem.Get("size").Data
		for i := range sz {
			sz[i] = float64(rng.Intn(1000))
		}
		fillInts(mem, "link", rng, tblN)
	}
	mkDS := func(name string, inv int) *bench.Dataset {
		return &bench.Dataset{
			Name:           name,
			NumInvocations: inv,
			Setup:          setup,
			Args: func(i int, mem *sim.Memory, rng *rand.Rand) []float64 {
				// Object manager allocates and frees chunks.
				mem.Get("status").Data[rng.Intn(tblN)] = float64(rng.Intn(2))
				mem.Get("link").Data[rng.Intn(tblN)] = float64(rng.Intn(tblN))
				return []float64{float64(rng.Intn(tblN))}
			},
		}
	}
	return &bench.Benchmark{
		Name: "VORTEX", TSName: "ChkGetChunk", Class: bench.Int,
		Prog: prog, TS: fn,
		Train:            mkDS("train", 8000),
		Ref:              mkDS("ref", 16000),
		NonTSCycles:      3_000_000,
		PaperInvocations: "80.4M",
	}
}
