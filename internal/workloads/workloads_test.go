package workloads

import (
	"testing"

	"peak/internal/bench"
	"peak/internal/core"
	"peak/internal/machine"
	"peak/internal/opt"
	"peak/internal/profiling"
)

// paperMethods is Table 1's "Rating Approach" column.
var paperMethods = map[string]core.Method{
	"BZIP2":   core.MethodRBR,
	"CRAFTY":  core.MethodRBR,
	"GZIP":    core.MethodRBR,
	"MCF":     core.MethodRBR,
	"TWOLF":   core.MethodRBR,
	"VORTEX":  core.MethodRBR,
	"APPLU":   core.MethodCBR,
	"APSI":    core.MethodCBR,
	"ART":     core.MethodRBR,
	"MGRID":   core.MethodMBR,
	"EQUAKE":  core.MethodCBR,
	"MESA":    core.MethodRBR,
	"SWIM":    core.MethodCBR,
	"WUPWISE": core.MethodCBR,
}

// paperContexts is the number of CBR context rows Table 1 shows.
var paperContexts = map[string]int{
	"APPLU": 1, "APSI": 3, "EQUAKE": 1, "SWIM": 1, "WUPWISE": 2,
}

func TestBenchmarkInventory(t *testing.T) {
	bs := All()
	if len(bs) != 14 {
		t.Fatalf("got %d benchmarks, want 14", len(bs))
	}
	seen := map[string]bool{}
	for _, b := range bs {
		if seen[b.Name] {
			t.Errorf("duplicate benchmark %s", b.Name)
		}
		seen[b.Name] = true
		if b.Prog.Funcs[b.TSName] != b.TS {
			t.Errorf("%s: TS not registered under TSName %q", b.Name, b.TSName)
		}
		if b.Train.NumInvocations <= 0 || b.Ref.NumInvocations <= b.Train.NumInvocations/4 {
			t.Errorf("%s: suspicious dataset sizes train=%d ref=%d",
				b.Name, b.Train.NumInvocations, b.Ref.NumInvocations)
		}
		if _, ok := ByName(b.Name); !ok {
			t.Errorf("ByName(%s) failed", b.Name)
		}
	}
}

func profileOf(t *testing.T, b *bench.Benchmark, m *machine.Machine) *profiling.Profile {
	t.Helper()
	p, err := profiling.Run(b, b.Train, m)
	if err != nil {
		t.Fatalf("%s on %s: profile: %v", b.Name, m.Name, err)
	}
	return p
}

// TestConsultantMatchesTable1 checks that the Rating Approach Consultant
// reproduces the paper's Table-1 method choice for every benchmark on both
// machines, including the per-section context counts.
func TestConsultantMatchesTable1(t *testing.T) {
	cfg := core.DefaultConfig()
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			for _, m := range []*machine.Machine{machine.SPARCII(), machine.PentiumIV()} {
				p := profileOf(t, b, m)
				app := core.Consult(p, &cfg)
				want := paperMethods[b.Name]
				if got := app.Chosen(); got != want {
					t.Errorf("%s on %s: consultant chose %s, want %s (CBR: %q, MBR: %q; contexts=%d dominantShare=%.2f modelComponents=%v modelVar=%.3f)",
						b.Name, m.Name, got, want, app.CBRReason, app.MBRReason,
						p.NumContexts(), p.DominantShare(), components(p), p.ModelVar)
				}
				if want == core.MethodCBR {
					if wantCtx := paperContexts[b.Name]; wantCtx > 0 && p.NumContexts() != wantCtx {
						t.Errorf("%s on %s: %d contexts, want %d", b.Name, m.Name, p.NumContexts(), wantCtx)
					}
				}
				if !app.Has(core.MethodRBR) {
					t.Errorf("%s on %s: RBR must always be applicable", b.Name, m.Name)
				}
			}
		})
	}
}

func components(p *profiling.Profile) int {
	if p.Model == nil {
		return -1
	}
	return len(p.Model.Components)
}

// TestVersionsRunClean compiles every benchmark's TS at -O0 and -O3 on both
// machines and runs the full train dataset, checking for runtime errors.
// On the SPARC-II-like machine (large register file) -O3 must win; on the
// Pentium-IV-like machine -O3 may lose moderately — "potential performance
// degradation from applying the 'highest' optimization level is not
// uncommon" (§1) is the paper's premise and exactly what PEAK tunes away.
func TestVersionsRunClean(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			for _, m := range []*machine.Machine{machine.SPARCII(), machine.PentiumIV()} {
				t0, _, err := core.MeasurePerformance(b, b.Train, m, opt.O0())
				if err != nil {
					t.Fatalf("%s on %s -O0: %v", b.Name, m.Name, err)
				}
				t3, _, err := core.MeasurePerformance(b, b.Train, m, opt.O3())
				if err != nil {
					t.Fatalf("%s on %s -O3: %v", b.Name, m.Name, err)
				}
				if t3 <= 0 || t0 <= 0 {
					t.Fatalf("%s on %s: non-positive cycles (O0=%d O3=%d)", b.Name, m.Name, t0, t3)
				}
				if m.Name == "sparc2" && t3 >= t0 {
					t.Errorf("%s on %s: -O3 (%d cycles) not faster than -O0 (%d cycles)",
						b.Name, m.Name, t3, t0)
				}
				if t3 > 2*t0 {
					t.Errorf("%s on %s: -O3 (%d cycles) more than 2x slower than -O0 (%d cycles)",
						b.Name, m.Name, t3, t0)
				}
			}
		})
	}
}
