// Package workloads defines the 14 benchmark kernels mirroring the tuning
// sections of the paper's Table 1 (SPEC CPU 2000). Each kernel reproduces
// the *shape* that drives rating-method applicability — regular vs
// irregular control flow, context structure, component structure,
// invocation counts — rather than the exact SPEC computation (DESIGN.md §2).
//
// Invocation counts are scaled down from the paper's (column 4 of Table 1,
// recorded in Benchmark.PaperInvocations); relative magnitudes between
// benchmarks are preserved where practical.
package workloads

import (
	"math/rand"
	"sort"

	"peak/internal/bench"
	"peak/internal/sim"
)

// All returns every benchmark, in the paper's Table-1 order (integer codes
// first, then floating point).
func All() []*bench.Benchmark {
	return []*bench.Benchmark{
		BZIP2(), CRAFTY(), GZIP(), MCF(), TWOLF(), VORTEX(),
		APPLU(), APSI(), ART(), MGRID(), EQUAKE(), MESA(), SWIM(), WUPWISE(),
	}
}

// ByName returns the benchmark with the given (case-sensitive) name.
func ByName(name string) (*bench.Benchmark, bool) {
	for _, b := range All() {
		if b.Name == name {
			return b, true
		}
	}
	return nil, false
}

// Names lists all benchmark names in Table-1 order.
func Names() []string {
	bs := All()
	names := make([]string, len(bs))
	for i, b := range bs {
		names[i] = b.Name
	}
	return names
}

// Figure7Set returns the four benchmarks of the paper's Figure-7
// performance experiments: SWIM, MGRID, ART and EQUAKE.
func Figure7Set() []*bench.Benchmark {
	return []*bench.Benchmark{SWIM(), MGRID(), ART(), EQUAKE()}
}

// sortedNames returns map keys in deterministic order (helper for tests).
func sortedNames(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// fillUniform fills the named array with uniform values in [lo, hi).
func fillUniform(mem *sim.Memory, name string, rng *rand.Rand, lo, hi float64) {
	d := mem.Get(name).Data
	for i := range d {
		d[i] = lo + rng.Float64()*(hi-lo)
	}
}

// fillInts fills the named array with integers in [0, n).
func fillInts(mem *sim.Memory, name string, rng *rand.Rand, n int) {
	d := mem.Get(name).Data
	for i := range d {
		d[i] = float64(rng.Intn(n))
	}
}
