package workloads

import (
	"math/rand"

	"peak/internal/bench"
	"peak/internal/ir"
	"peak/internal/irbuild"
	"peak/internal/sim"
)

// SWIM models the calc3 tuning section: a regular two-dimensional
// time-smoothing update over the shallow-water grids. Control flow depends
// only on the grid dimension parameter, so CBR applies with a single
// context (Table 1: 198 invocations, one context, tiny deviation).
func SWIM() *bench.Benchmark {
	const maxN = 40
	prog := ir.NewProgram()
	for _, a := range []string{"u", "un", "uo", "v", "vn", "vo", "p", "pn", "po"} {
		prog.AddArray(a, ir.F64, maxN*maxN)
	}
	b := irbuild.NewFunc("calc3")
	b.ScalarParam("n", ir.I64).ScalarParam("alpha", ir.F64).Local("idx", ir.I64)
	smooth := func(old, cur, next string) ir.Stmt {
		at := func(a string) ir.Expr { return b.At(a, b.V("idx")) }
		return b.Set(b.At(old, b.V("idx")),
			b.FAdd(at(cur),
				b.FMul(b.V("alpha"),
					b.FAdd(b.FSub(at(next), b.FMul(b.F(2), at(cur))), at(old)))))
	}
	fn := b.Body(
		b.For("i", b.I(1), b.Sub(b.V("n"), b.I(1)), 1,
			b.For("j", b.I(1), b.Sub(b.V("n"), b.I(1)), 1,
				b.Set(b.V("idx"), b.Add(b.Mul(b.V("i"), b.V("n")), b.V("j"))),
				smooth("uo", "u", "un"),
				smooth("vo", "v", "vn"),
				smooth("po", "p", "pn"),
			),
		),
	)
	prog.AddFunc(fn)

	setup := func(mem *sim.Memory, rng *rand.Rand) {
		for _, a := range []string{"u", "un", "uo", "v", "vn", "vo", "p", "pn", "po"} {
			fillUniform(mem, a, rng, -1, 1)
		}
	}
	mkDS := func(name string, inv int, n int64) *bench.Dataset {
		return &bench.Dataset{
			Name:           name,
			NumInvocations: inv,
			Setup:          setup,
			Args: func(i int, mem *sim.Memory, rng *rand.Rand) []float64 {
				return []float64{float64(n), 0.001}
			},
		}
	}
	return &bench.Benchmark{
		Name: "SWIM", TSName: "calc3", Class: bench.FP,
		Prog: prog, TS: fn,
		Train:            mkDS("train", 198, 20),
		Ref:              mkDS("ref", 400, 30),
		NonTSCycles:      1_500_000,
		PaperInvocations: "198",
	}
}

// MGRID models the resid tuning section: a 3D 7-point residual stencil
// invoked across many V-cycle levels. The many grid sizes make CBR's
// context count explode ("MGRID_CBR has too many contexts", Figure 7),
// while the loop-nest counters form a small, well-fitting component model,
// so the consultant picks MBR (Table 1).
func MGRID() *bench.Benchmark {
	const maxN = 16
	prog := ir.NewProgram()
	for _, a := range []string{"mu", "mv", "mr"} {
		prog.AddArray(a, ir.F64, maxN*maxN*maxN)
	}
	b := irbuild.NewFunc("resid")
	b.ScalarParam("n", ir.I64).Local("idx", ir.I64).Local("s", ir.F64).Local("n2", ir.I64)
	at := func(a string, off ir.Expr) ir.Expr { return b.At(a, off) }
	idx := func() ir.Expr { return b.V("idx") }
	fn := b.Body(
		b.Set(b.V("n2"), b.Mul(b.V("n"), b.V("n"))),
		b.For("i", b.I(1), b.Sub(b.V("n"), b.I(1)), 1,
			b.For("j", b.I(1), b.Sub(b.V("n"), b.I(1)), 1,
				b.For("k", b.I(1), b.Sub(b.V("n"), b.I(1)), 1,
					b.Set(b.V("idx"), b.Add(b.Add(b.Mul(b.V("i"), b.V("n2")),
						b.Mul(b.V("j"), b.V("n"))), b.V("k"))),
					b.Set(b.V("s"),
						b.FAdd(b.FAdd(at("mu", b.Add(idx(), b.I(1))), at("mu", b.Sub(idx(), b.I(1)))),
							b.FAdd(b.FAdd(at("mu", b.Add(idx(), b.V("n"))), at("mu", b.Sub(idx(), b.V("n")))),
								b.FAdd(at("mu", b.Add(idx(), b.V("n2"))), at("mu", b.Sub(idx(), b.V("n2"))))))),
					b.Set(b.At("mr", idx()),
						b.FSub(at("mv", idx()),
							b.FAdd(b.FMul(b.F(0.8), at("mu", idx())), b.FMul(b.F(-0.25), b.V("s"))))),
				),
			),
		),
	)
	prog.AddFunc(fn)

	setup := func(mem *sim.Memory, rng *rand.Rand) {
		fillUniform(mem, "mu", rng, -1, 1)
		fillUniform(mem, "mv", rng, -1, 1)
	}
	// V-cycle schedule: level sizes descend and ascend through many
	// distinct values (each size is a distinct CBR context).
	sizes := []int64{12, 11, 10, 9, 8, 7, 6, 5, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	mkDS := func(name string, inv int, scale int64) *bench.Dataset {
		return &bench.Dataset{
			Name:           name,
			NumInvocations: inv,
			Setup:          setup,
			Args: func(i int, mem *sim.Memory, rng *rand.Rand) []float64 {
				n := sizes[i%len(sizes)]
				if n+scale <= 16 {
					n += scale
				}
				return []float64{float64(n)}
			},
		}
	}
	return &bench.Benchmark{
		Name: "MGRID", TSName: "resid", Class: bench.FP,
		Prog: prog, TS: fn,
		Train:            mkDS("train", 600, 0),
		Ref:              mkDS("ref", 1200, 2),
		NonTSCycles:      3_000_000,
		PaperInvocations: "2410",
	}
}

// APPLU models the blts tuning section: the regular lower-triangular solve
// sweep of the SSOR solver. One context, 250 invocations (Table 1).
func APPLU() *bench.Benchmark {
	const maxN = 18
	prog := ir.NewProgram()
	prog.AddArray("av", ir.F64, maxN*maxN*maxN)
	prog.AddArray("ald", ir.F64, maxN*maxN*maxN)
	b := irbuild.NewFunc("blts")
	b.ScalarParam("nx", ir.I64).ScalarParam("omega", ir.F64).
		Local("idx", ir.I64).Local("n2", ir.I64)
	fn := b.Body(
		b.Set(b.V("n2"), b.Mul(b.V("nx"), b.V("nx"))),
		b.For("i", b.I(1), b.V("nx"), 1,
			b.For("j", b.I(1), b.V("nx"), 1,
				b.For("k", b.I(1), b.V("nx"), 1,
					b.Set(b.V("idx"), b.Add(b.Add(b.Mul(b.V("i"), b.V("n2")),
						b.Mul(b.V("j"), b.V("nx"))), b.V("k"))),
					b.Set(b.At("av", b.V("idx")),
						b.FSub(b.At("av", b.V("idx")),
							b.FMul(b.V("omega"),
								b.FAdd(b.FMul(b.At("ald", b.V("idx")), b.At("av", b.Sub(b.V("idx"), b.I(1)))),
									b.FMul(b.At("ald", b.Sub(b.V("idx"), b.V("nx"))),
										b.At("av", b.Sub(b.V("idx"), b.V("nx")))))))),
				),
			),
		),
	)
	prog.AddFunc(fn)

	setup := func(mem *sim.Memory, rng *rand.Rand) {
		fillUniform(mem, "av", rng, -1, 1)
		fillUniform(mem, "ald", rng, -0.1, 0.1)
	}
	mkDS := func(name string, inv int, nx int64) *bench.Dataset {
		return &bench.Dataset{
			Name:           name,
			NumInvocations: inv,
			Setup:          setup,
			Args: func(i int, mem *sim.Memory, rng *rand.Rand) []float64 {
				return []float64{float64(nx), 1.2}
			},
		}
	}
	return &bench.Benchmark{
		Name: "APPLU", TSName: "blts", Class: bench.FP,
		Prog: prog, TS: fn,
		Train:            mkDS("train", 250, 10),
		Ref:              mkDS("ref", 500, 14),
		NonTSCycles:      2_000_000,
		PaperInvocations: "250",
	}
}

// APSI models the radb4 tuning section: a radix-4 inverse FFT butterfly
// pass invoked under three (ido, l1) shapes — the paper's three CBR
// contexts with distinct consistency behaviour.
func APSI() *bench.Benchmark {
	const cap = 2048
	prog := ir.NewProgram()
	prog.AddArray("cc", ir.F64, cap)
	prog.AddArray("ch", ir.F64, cap)
	b := irbuild.NewFunc("radb4")
	b.ScalarParam("ido", ir.I64).ScalarParam("l1", ir.I64).
		Local("t0", ir.F64).Local("t1", ir.F64).Local("t2", ir.F64).Local("t3", ir.F64).
		Local("base", ir.I64)
	cc := func(k int64) ir.Expr { return b.At("cc", b.Add(b.V("base"), b.I(k))) }
	fn := b.Body(
		b.For("k", b.I(0), b.V("l1"), 1,
			b.For("i", b.I(0), b.V("ido"), 1,
				b.Set(b.V("base"), b.Mul(b.Add(b.Mul(b.V("k"), b.V("ido")), b.V("i")), b.I(4))),
				b.Set(b.V("t0"), b.FAdd(cc(0), cc(2))),
				b.Set(b.V("t1"), b.FSub(cc(0), cc(2))),
				b.Set(b.V("t2"), b.FAdd(cc(1), cc(3))),
				b.Set(b.V("t3"), b.FSub(cc(3), cc(1))),
				b.Set(b.At("ch", b.Add(b.V("base"), b.I(0))), b.FAdd(b.V("t0"), b.V("t2"))),
				b.Set(b.At("ch", b.Add(b.V("base"), b.I(1))), b.FAdd(b.V("t1"), b.V("t3"))),
				b.Set(b.At("ch", b.Add(b.V("base"), b.I(2))), b.FSub(b.V("t0"), b.V("t2"))),
				b.Set(b.At("ch", b.Add(b.V("base"), b.I(3))), b.FSub(b.V("t1"), b.V("t3"))),
			),
		),
	)
	prog.AddFunc(fn)

	setup := func(mem *sim.Memory, rng *rand.Rand) {
		fillUniform(mem, "cc", rng, -1, 1)
	}
	type shape struct{ ido, l1 int64 }
	mkDS := func(name string, inv int, shapes []shape) *bench.Dataset {
		return &bench.Dataset{
			Name:           name,
			NumInvocations: inv,
			Setup:          setup,
			Args: func(i int, mem *sim.Memory, rng *rand.Rand) []float64 {
				s := shapes[i%len(shapes)]
				return []float64{float64(s.ido), float64(s.l1)}
			},
		}
	}
	trainShapes := []shape{{16, 12}, {16, 12}, {8, 8}, {16, 12}, {4, 6}, {8, 8}}
	refShapes := []shape{{16, 16}, {16, 16}, {8, 12}, {16, 16}, {4, 8}, {8, 12}}
	return &bench.Benchmark{
		Name: "APSI", TSName: "radb4", Class: bench.FP,
		Prog: prog, TS: fn,
		Train:            mkDS("train", 4000, trainShapes),
		Ref:              mkDS("ref", 8000, refShapes),
		NonTSCycles:      2_500_000,
		PaperInvocations: "1.37M",
	}
}

// EQUAKE models the smvp tuning section: a sparse matrix-vector product
// whose inner-loop bounds come from the column-pointer array. That array is
// written only at program setup, so it is a run-time constant and CBR
// applies with a single context — but the irregular memory accesses keep
// the rating deviation comparatively high (Table 1, §5.1).
func EQUAKE() *bench.Benchmark {
	const n = 72
	const maxNNZ = n * 9
	prog := ir.NewProgram()
	prog.AddArray("Acol", ir.I64, n+1)
	prog.AddArray("Aidx", ir.I64, maxNNZ)
	prog.AddArray("Aval", ir.F64, maxNNZ)
	prog.AddArray("vin", ir.F64, n)
	prog.AddArray("vout", ir.F64, n)
	b := irbuild.NewFunc("smvp")
	b.ScalarParam("n", ir.I64).Local("sum", ir.F64)
	fn := b.Body(
		b.For("i", b.I(0), b.V("n"), 1,
			b.Set(b.V("sum"), b.FMul(b.F(1.1), b.At("vin", b.V("i")))),
			b.For("j", b.At("Acol", b.V("i")), b.At("Acol", b.Add(b.V("i"), b.I(1))), 1,
				b.Set(b.V("sum"), b.FAdd(b.V("sum"),
					b.FMul(b.At("Aval", b.V("j")), b.At("vin", b.At("Aidx", b.V("j")))))),
			),
			b.Set(b.At("vout", b.V("i")), b.V("sum")),
		),
	)
	prog.AddFunc(fn)

	setup := func(mem *sim.Memory, rng *rand.Rand) {
		col := mem.Get("Acol").Data
		idx := mem.Get("Aidx").Data
		pos := 0
		for i := 0; i < n; i++ {
			col[i] = float64(pos)
			nnz := 2 + rng.Intn(7)
			for k := 0; k < nnz && pos < maxNNZ; k++ {
				idx[pos] = float64(rng.Intn(n)) // scattered: irregular access
				pos++
			}
		}
		col[n] = float64(pos)
		fillUniform(mem, "Aval", rng, -1, 1)
		fillUniform(mem, "vin", rng, -1, 1)
	}
	mkDS := func(name string, inv int, nn int64) *bench.Dataset {
		return &bench.Dataset{
			Name:           name,
			NumInvocations: inv,
			Setup:          setup,
			Args: func(i int, mem *sim.Memory, rng *rand.Rand) []float64 {
				// The surrounding time-step updates the input vector.
				v := mem.Get("vin").Data
				j := i % len(v)
				v[j] = v[j]*0.9 + 0.1
				return []float64{float64(nn)}
			},
		}
	}
	return &bench.Benchmark{
		Name: "EQUAKE", TSName: "smvp", Class: bench.FP,
		Prog: prog, TS: fn,
		Train:            mkDS("train", 1500, 48),
		Ref:              mkDS("ref", 2709, 72),
		NonTSCycles:      2_000_000,
		PaperInvocations: "2709",
	}
}

// ART models the match tuning section: the F1-layer match scan of the
// adaptive-resonance network. Winner selection and reset tests branch on
// network state that training rewrites between invocations, so CBR is
// inapplicable and the data-dependent conditional structure defeats MBR —
// leaving RBR (Table 1). The kernel keeps several simultaneously live
// floating-point quantities per iteration, so strict-aliasing's longer live
// ranges overflow the Pentium-IV-like register file (the paper's §5.2
// 178%-improvement anecdote) while the SPARC-like machine tolerates them.
func ART() *bench.Benchmark {
	const f1s = 300
	prog := ir.NewProgram()
	for _, a := range []string{"fI", "fW", "fP", "fX", "fQ", "fU", "tds", "bus"} {
		prog.AddArray(a, ir.F64, f1s)
	}
	prog.AddArray("glob", ir.F64, 16)
	b := irbuild.NewFunc("match")
	b.ScalarParam("numf1s", ir.I64).ScalarParam("rho", ir.F64).
		Local("sum", ir.F64).Local("best", ir.F64).Local("u", ir.F64).
		Local("q", ir.F64).Local("r", ir.F64).Local("resets", ir.I64)
	at := func(a string) ir.Expr { return b.At(a, b.V("j")) }
	g := func(k int64) ir.Expr { return b.At("glob", b.I(k)) }
	fn := b.Body(
		b.Set(b.V("best"), b.F(-1e30)),
		b.For("j", b.I(0), b.V("numf1s"), 1,
			// Many invariant gain-control cell loads plus per-element
			// loads: with strict-aliasing the invariants are hoisted and
			// all stay live in registers across the loop — more live
			// values than the Pentium-IV-like register file holds.
			b.Set(b.V("u"), b.FAdd(
				b.FAdd(b.FMul(at("fI"), g(0)), b.FMul(at("fW"), g(1))),
				b.FAdd(b.FMul(at("fP"), g(2)), b.FMul(b.FSub(at("fI"), at("fP")), g(8))))),
			b.Set(b.V("q"), b.FAdd(
				b.FAdd(b.FMul(at("fX"), g(3)), b.FMul(at("fQ"), g(4))),
				b.FMul(b.FAdd(at("fX"), at("fQ")), g(9)))),
			b.Set(b.V("r"), b.FAdd(
				b.FAdd(b.FMul(b.V("u"), g(5)), b.FMul(b.V("q"), g(6))),
				b.FAdd(b.FMul(b.FSub(b.V("u"), b.V("q")), g(10)),
					b.FMul(b.FAdd(b.V("u"), b.V("q")), g(11))))),
			b.If(b.FGt(b.At("tds", b.V("j")), b.V("rho")),
				b.Set(b.V("r"), b.FMul(b.V("r"), b.At("glob", b.I(7)))),
			),
			b.If(b.FGt(b.V("r"), b.V("best")),
				b.Set(b.V("best"), b.V("r")),
			),
			b.If(b.FLt(b.V("u"), b.F(0)),
				b.Set(b.V("u"), b.FSub(b.F(0), b.V("u"))),
				b.Set(b.V("resets"), b.Add(b.V("resets"), b.I(1))),
			),
			b.If(b.FGt(b.V("q"), b.F(0.9)),
				b.Set(b.V("q"), b.F(0.9)),
			),
			b.If(b.FLt(b.At("bus", b.V("j")), b.V("u")),
				b.Set(b.At("bus", b.V("j")), b.V("u")),
			),
			b.If(b.FGt(b.V("r"), b.V("rho")),
				b.Set(b.V("sum"), b.FAdd(b.V("sum"), b.FMul(b.V("r"), b.F(0.5)))),
			),
			b.If(b.FGt(b.At("fX", b.V("j")), b.At("fQ", b.V("j"))),
				b.Set(b.V("q"), b.FMul(b.V("q"), b.F(0.99))),
			),
			b.If(b.FLt(b.At("fW", b.V("j")), b.FMul(b.V("r"), b.F(0.3))),
				b.Set(b.V("resets"), b.Add(b.V("resets"), b.I(2))),
			),
			b.If(b.FGt(b.FAdd(b.V("u"), b.V("q")), b.F(1.4)),
				b.Set(b.V("sum"), b.FSub(b.V("sum"), b.F(0.01))),
			),
			b.Set(b.V("sum"), b.FAdd(b.V("sum"), b.FAdd(b.V("r"), b.V("q")))),
			b.Set(b.At("fU", b.V("j")), b.V("u")),
		),
		b.Ret(b.FAdd(b.V("sum"), b.V("best"))),
	)
	prog.AddFunc(fn)

	setup := func(mem *sim.Memory, rng *rand.Rand) {
		for _, a := range []string{"fI", "fW", "fP", "fX", "fQ", "tds", "bus"} {
			fillUniform(mem, a, rng, -1, 1)
		}
		fillUniform(mem, "glob", rng, 0.2, 1.2)
	}
	mkDS := func(name string, inv int, nf int64) *bench.Dataset {
		return &bench.Dataset{
			Name:           name,
			NumInvocations: inv,
			Setup:          setup,
			Args: func(i int, mem *sim.Memory, rng *rand.Rand) []float64 {
				// Training rewrites top-down weights, F1 activities and
				// gain-control values between scans, so every branch's
				// taken-count shifts from invocation to invocation.
				t := mem.Get("tds").Data
				w := mem.Get("fW").Data
				x := mem.Get("fX").Data
				for k := 0; k < 24; k++ {
					t[rng.Intn(len(t))] = rng.Float64()*2 - 1
					w[rng.Intn(len(w))] = rng.Float64()*2 - 1
					x[rng.Intn(len(x))] = rng.Float64()*2 - 1
				}
				g := mem.Get("glob").Data
				g[rng.Intn(len(g))] = 0.2 + rng.Float64()
				return []float64{float64(nf), 0.2 + 0.1*float64(i%3)}
			},
		}
	}
	return &bench.Benchmark{
		Name: "ART", TSName: "match", Class: bench.FP,
		Prog: prog, TS: fn,
		Train:            mkDS("train", 250, 200),
		Ref:              mkDS("ref", 500, 300),
		NonTSCycles:      1_500_000,
		PaperInvocations: "250",
	}
}

// MESA models the sample_1d_linear tuning section: linear texture sampling
// with wrap-mode branches on the (continuously varying) texture coordinate.
// Every invocation has a fresh context and the many tiny data-dependent
// branches defeat the component model, so RBR applies (Table 1: 193M
// invocations — the most extreme scaling in this reproduction).
func MESA() *bench.Benchmark {
	const texN = 256
	prog := ir.NewProgram()
	prog.AddArray("tex", ir.F64, texN)
	prog.AddArray("out", ir.F64, 8)
	b := irbuild.NewFunc("sample_1d_linear")
	b.ScalarParam("t", ir.F64).ScalarParam("n", ir.I64).ScalarParam("mode", ir.I64).
		Local("u", ir.F64).Local("i0", ir.I64).Local("i1", ir.I64).Local("a", ir.F64)
	fn := b.Body(
		b.Set(b.V("u"), b.FSub(b.FMul(b.V("t"), b.V("n")), b.F(0.5))),
		// Wrap-mode handling: repeat / clamp on each side.
		b.If(b.FLt(b.V("u"), b.F(0)),
			b.IfElse(b.Eq(b.V("mode"), b.I(0)),
				b.Stmts(b.Set(b.V("u"), b.FAdd(b.V("u"), b.V("n")))),
				b.Stmts(b.Set(b.V("u"), b.F(0))),
			),
		),
		b.If(b.FGe(b.V("u"), b.V("n")),
			b.IfElse(b.Eq(b.V("mode"), b.I(0)),
				b.Stmts(b.Set(b.V("u"), b.FSub(b.V("u"), b.V("n")))),
				b.Stmts(b.Set(b.V("u"), b.FSub(b.V("n"), b.F(1)))),
			),
		),
		b.Set(b.V("i0"), b.Call("floor", b.V("u"))),
		b.Set(b.V("a"), b.FSub(b.V("u"), b.V("i0"))),
		b.If(b.Lt(b.V("i0"), b.I(0)), b.Set(b.V("i0"), b.I(0))),
		b.Set(b.V("i1"), b.Add(b.V("i0"), b.I(1))),
		b.If(b.Ge(b.V("i1"), b.V("n")),
			b.IfElse(b.Eq(b.V("mode"), b.I(0)),
				b.Stmts(b.Set(b.V("i1"), b.I(0))),
				b.Stmts(b.Set(b.V("i1"), b.Sub(b.V("n"), b.I(1)))),
			),
		),
		b.If(b.Ge(b.V("i0"), b.V("n")), b.Set(b.V("i0"), b.Sub(b.V("n"), b.I(1)))),
		b.Set(b.At("out", b.I(0)),
			b.FAdd(b.FMul(b.FSub(b.F(1), b.V("a")), b.At("tex", b.V("i0"))),
				b.FMul(b.V("a"), b.At("tex", b.V("i1"))))),
		b.Ret(b.At("out", b.I(0))),
	)
	prog.AddFunc(fn)

	setup := func(mem *sim.Memory, rng *rand.Rand) {
		fillUniform(mem, "tex", rng, 0, 1)
	}
	mkDS := func(name string, inv int, n int64) *bench.Dataset {
		return &bench.Dataset{
			Name:           name,
			NumInvocations: inv,
			Setup:          setup,
			Args: func(i int, mem *sim.Memory, rng *rand.Rand) []float64 {
				t := rng.Float64()*1.4 - 0.2 // outside [0,1] sometimes: wraps
				return []float64{t, float64(n), float64(i % 2)}
			},
		}
	}
	return &bench.Benchmark{
		Name: "MESA", TSName: "sample_1d_linear", Class: bench.FP,
		Prog: prog, TS: fn,
		Train:            mkDS("train", 8000, 128),
		Ref:              mkDS("ref", 16000, 256),
		NonTSCycles:      2_000_000,
		PaperInvocations: "193M",
	}
}

// WUPWISE models the zgemm tuning section: a complex matrix multiply
// invoked under two shapes — the paper's two CBR contexts.
func WUPWISE() *bench.Benchmark {
	const cap = 16 * 16
	prog := ir.NewProgram()
	for _, a := range []string{"zar", "zai", "zbr", "zbi", "zcr", "zci"} {
		prog.AddArray(a, ir.F64, cap)
	}
	b := irbuild.NewFunc("zgemm")
	b.ScalarParam("m", ir.I64).ScalarParam("nn", ir.I64).ScalarParam("kk", ir.I64).
		Local("sr", ir.F64).Local("si", ir.F64).
		Local("ia", ir.I64).Local("ib", ir.I64)
	fn := b.Body(
		b.For("i", b.I(0), b.V("m"), 1,
			b.For("j", b.I(0), b.V("nn"), 1,
				b.Set(b.V("sr"), b.F(0)),
				b.Set(b.V("si"), b.F(0)),
				b.For("k", b.I(0), b.V("kk"), 1,
					b.Set(b.V("ia"), b.Add(b.Mul(b.V("i"), b.V("kk")), b.V("k"))),
					b.Set(b.V("ib"), b.Add(b.Mul(b.V("k"), b.V("nn")), b.V("j"))),
					b.Set(b.V("sr"), b.FAdd(b.V("sr"),
						b.FSub(b.FMul(b.At("zar", b.V("ia")), b.At("zbr", b.V("ib"))),
							b.FMul(b.At("zai", b.V("ia")), b.At("zbi", b.V("ib")))))),
					b.Set(b.V("si"), b.FAdd(b.V("si"),
						b.FAdd(b.FMul(b.At("zar", b.V("ia")), b.At("zbi", b.V("ib"))),
							b.FMul(b.At("zai", b.V("ia")), b.At("zbr", b.V("ib")))))),
				),
				b.Set(b.At("zcr", b.Add(b.Mul(b.V("i"), b.V("nn")), b.V("j"))), b.V("sr")),
				b.Set(b.At("zci", b.Add(b.Mul(b.V("i"), b.V("nn")), b.V("j"))), b.V("si")),
			),
		),
	)
	prog.AddFunc(fn)

	setup := func(mem *sim.Memory, rng *rand.Rand) {
		for _, a := range []string{"zar", "zai", "zbr", "zbi"} {
			fillUniform(mem, a, rng, -1, 1)
		}
	}
	type shape struct{ m, n, k int64 }
	mkDS := func(name string, inv int, shapes []shape) *bench.Dataset {
		return &bench.Dataset{
			Name:           name,
			NumInvocations: inv,
			Setup:          setup,
			Args: func(i int, mem *sim.Memory, rng *rand.Rand) []float64 {
				s := shapes[i%len(shapes)]
				return []float64{float64(s.m), float64(s.n), float64(s.k)}
			},
		}
	}
	trainShapes := []shape{{8, 8, 4}, {8, 8, 4}, {4, 4, 12}}
	refShapes := []shape{{12, 12, 4}, {12, 12, 4}, {4, 4, 16}}
	return &bench.Benchmark{
		Name: "WUPWISE", TSName: "zgemm", Class: bench.FP,
		Prog: prog, TS: fn,
		Train:            mkDS("train", 6000, trainShapes),
		Ref:              mkDS("ref", 12000, refShapes),
		NonTSCycles:      4_000_000,
		PaperInvocations: "22.5M",
	}
}
