package opt

import (
	"testing"

	"peak/internal/ir"
	"peak/internal/irbuild"
)

// countLoads counts array loads of name in the statement list.
func countLoads(list []ir.Stmt, name string) int {
	n := 0
	rewriteStmtExprs(list, func(e ir.Expr) ir.Expr {
		if ar, ok := e.(*ir.ArrayRef); ok && ar.Name == name {
			n++
		}
		return e
	})
	return n
}

func cseKernel() (*ir.Program, *ir.Func) {
	// Two identical loads of a[0] separated by a store to b: reusable
	// only under strict aliasing.
	prog := ir.NewProgram()
	prog.AddArray("a", ir.F64, 8)
	prog.AddArray("b", ir.F64, 8)
	bb := irbuild.NewFunc("f")
	bb.ScalarParam("x", ir.F64).Local("p", ir.F64).Local("q", ir.F64)
	fn := bb.Body(
		bb.Set(bb.V("p"), bb.FMul(bb.At("a", bb.I(0)), bb.FAdd(bb.V("x"), bb.F(1)))),
		bb.Set(bb.At("b", bb.I(1)), bb.V("p")),
		bb.Set(bb.V("q"), bb.FMul(bb.At("a", bb.I(0)), bb.FAdd(bb.V("x"), bb.F(1)))),
		bb.Ret(bb.FAdd(bb.V("p"), bb.V("q"))),
	)
	prog.AddFunc(fn)
	return prog, fn
}

func TestCSELoadReuseNeedsStrictAliasing(t *testing.T) {
	prog, fn := cseKernel()

	strict := fn.Clone()
	eliminateCommonSubexprs(strict, prog,
		cseOpts{global: true, strictAlias: true, loadReuse: true}, newTempNamer(strict))
	if got := countLoads(strict.Body, "a"); got != 1 {
		t.Errorf("strict aliasing: %d loads of a, want 1 (reused across the b-store)", got)
	}

	lax := fn.Clone()
	eliminateCommonSubexprs(lax, prog,
		cseOpts{global: true, strictAlias: false, loadReuse: true}, newTempNamer(lax))
	if got := countLoads(lax.Body, "a"); got != 2 {
		t.Errorf("no strict aliasing: %d loads of a, want 2 (store kills the fact)", got)
	}
}

func TestCSEStoreToSameArrayAlwaysKills(t *testing.T) {
	prog := ir.NewProgram()
	prog.AddArray("a", ir.F64, 8)
	bb := irbuild.NewFunc("f")
	bb.ScalarParam("x", ir.F64).Local("p", ir.F64).Local("q", ir.F64)
	fn := bb.Body(
		bb.Set(bb.V("p"), bb.FAdd(bb.At("a", bb.I(0)), bb.V("x"))),
		bb.Set(bb.At("a", bb.I(0)), bb.F(9)),
		bb.Set(bb.V("q"), bb.FAdd(bb.At("a", bb.I(0)), bb.V("x"))),
		bb.Ret(bb.FAdd(bb.V("p"), bb.V("q"))),
	)
	prog.AddFunc(fn)
	work := fn.Clone()
	eliminateCommonSubexprs(work, prog,
		cseOpts{global: true, strictAlias: true, loadReuse: true}, newTempNamer(work))
	if got := countLoads(work.Body, "a"); got != 2 {
		t.Errorf("%d loads of a, want 2 (same-array store must kill even under strict aliasing)", got)
	}
}

func TestCSEScalarReuseWithinSegment(t *testing.T) {
	prog := ir.NewProgram()
	bb := irbuild.NewFunc("f")
	bb.ScalarParam("x", ir.F64).ScalarParam("y", ir.F64).
		Local("p", ir.F64).Local("q", ir.F64)
	big := func() ir.Expr {
		return bb.FMul(bb.FAdd(bb.V("x"), bb.V("y")), bb.FSub(bb.V("x"), bb.V("y")))
	}
	fn := bb.Body(
		bb.Set(bb.V("p"), big()),
		bb.Set(bb.V("q"), bb.FAdd(big(), bb.F(1))),
		bb.Ret(bb.FAdd(bb.V("p"), bb.V("q"))),
	)
	prog.AddFunc(fn)
	work := fn.Clone()
	eliminateCommonSubexprs(work, prog, cseOpts{}, newTempNamer(work))
	// After CSE the (x+y)*(x-y) tree is computed once: count multiplies.
	muls := 0
	rewriteStmtExprs(work.Body, func(e ir.Expr) ir.Expr {
		if bin, ok := e.(*ir.Binary); ok && bin.Op == ir.OpMul {
			muls++
		}
		return e
	})
	if muls != 1 {
		t.Errorf("multiplies after CSE = %d, want 1", muls)
	}
}

func TestCSEAssignmentKillsFacts(t *testing.T) {
	prog := ir.NewProgram()
	bb := irbuild.NewFunc("f")
	bb.ScalarParam("x", ir.F64).Local("p", ir.F64).Local("q", ir.F64)
	big := func() ir.Expr {
		return bb.FMul(bb.FAdd(bb.V("x"), bb.F(2)), bb.FAdd(bb.V("x"), bb.F(3)))
	}
	fn := bb.Body(
		bb.Set(bb.V("p"), big()),
		bb.Set(bb.V("x"), bb.FAdd(bb.V("x"), bb.F(1))), // kills facts about x
		bb.Set(bb.V("q"), big()),
		bb.Ret(bb.FAdd(bb.V("p"), bb.V("q"))),
	)
	prog.AddFunc(fn)
	work := fn.Clone()
	eliminateCommonSubexprs(work, prog, cseOpts{}, newTempNamer(work))
	muls := 0
	rewriteStmtExprs(work.Body, func(e ir.Expr) ir.Expr {
		if bin, ok := e.(*ir.Binary); ok && bin.Op == ir.OpMul {
			muls++
		}
		return e
	})
	if muls != 2 {
		t.Errorf("multiplies = %d, want 2 (reassignment must kill the fact)", muls)
	}
}

func TestCPropConstantsAndCopies(t *testing.T) {
	prog := ir.NewProgram()
	prog.AddArray("a", ir.F64, 8)
	bb := irbuild.NewFunc("f")
	bb.ScalarParam("x", ir.I64).Local("c", ir.I64).Local("d", ir.I64)
	fn := bb.Body(
		bb.Set(bb.V("c"), bb.I(3)),
		bb.Set(bb.V("d"), bb.V("c")),
		bb.Set(bb.At("a", bb.Add(bb.V("d"), bb.V("c"))), bb.F(1)),
		bb.Ret(bb.V("d")),
	)
	prog.AddFunc(fn)
	work := fn.Clone()
	propagateCopies(work)
	// The index d+c must have folded to 6.
	idxConst := false
	rewriteStmtExprs(work.Body, func(e ir.Expr) ir.Expr { return e })
	for _, s := range work.Body {
		if a, ok := s.(*ir.Assign); ok {
			if ar, ok := a.Lhs.(*ir.ArrayRef); ok {
				if ci, ok := ar.Index.(*ir.ConstInt); ok && ci.V == 6 {
					idxConst = true
				}
			}
		}
	}
	if !idxConst {
		t.Error("copy/constant propagation did not fold the index to 6")
	}
}

func TestCPropStopsAtControlFlow(t *testing.T) {
	prog := ir.NewProgram()
	bb := irbuild.NewFunc("f")
	bb.ScalarParam("x", ir.I64).Local("c", ir.I64)
	fn := bb.Body(
		bb.Set(bb.V("c"), bb.I(3)),
		bb.If(bb.Gt(bb.V("x"), bb.I(0)),
			bb.Set(bb.V("c"), bb.I(7)),
		),
		bb.Ret(bb.V("c")),
	)
	prog.AddFunc(fn)
	work := fn.Clone()
	propagateCopies(work)
	// The return must still read the variable, not a constant.
	ret := work.Body[len(work.Body)-1].(*ir.Return)
	if _, ok := ret.Value.(*ir.VarRef); !ok {
		t.Errorf("return value folded to %v despite the conditional kill", ret.Value)
	}
}
