package opt

import (
	"fmt"
	"strings"

	"peak/internal/ir"
)

// exprKey returns a canonical string for structural expression equality,
// with commutative operands ordered canonically so `a+b` and `b+a` match.
func exprKey(e ir.Expr) string {
	switch ex := e.(type) {
	case *ir.ConstInt:
		return fmt.Sprintf("i%d", ex.V)
	case *ir.ConstFloat:
		return fmt.Sprintf("f%x", ex.V)
	case *ir.VarRef:
		return "v:" + ex.Name
	case *ir.ArrayRef:
		return "m:" + ex.Name + "[" + exprKey(ex.Index) + "]"
	case *ir.Unary:
		return ex.Op.String() + "(" + exprKey(ex.X) + ")"
	case *ir.Binary:
		x, y := exprKey(ex.X), exprKey(ex.Y)
		if ex.Op.Commutative() && y < x {
			x, y = y, x
		}
		return fmt.Sprintf("(%s %s#%d %s)", x, ex.Op, ex.Typ, y)
	case *ir.CallExpr:
		parts := make([]string, len(ex.Args))
		for i, a := range ex.Args {
			parts[i] = exprKey(a)
		}
		return "c:" + ex.Fn + "(" + strings.Join(parts, ",") + ")"
	case *ir.Select:
		return "s:(" + exprKey(ex.Cond) + "?" + exprKey(ex.X) + ":" + exprKey(ex.Y) + ")"
	}
	return fmt.Sprintf("?%T", e)
}

// walkExpr visits e and all subexpressions, pre-order.
func walkExpr(e ir.Expr, visit func(ir.Expr)) {
	if e == nil {
		return
	}
	visit(e)
	switch ex := e.(type) {
	case *ir.ArrayRef:
		walkExpr(ex.Index, visit)
	case *ir.Unary:
		walkExpr(ex.X, visit)
	case *ir.Binary:
		walkExpr(ex.X, visit)
		walkExpr(ex.Y, visit)
	case *ir.CallExpr:
		for _, a := range ex.Args {
			walkExpr(a, visit)
		}
	case *ir.Select:
		walkExpr(ex.Cond, visit)
		walkExpr(ex.X, visit)
		walkExpr(ex.Y, visit)
	}
}

// rewriteExpr rebuilds e bottom-up through f: children are rewritten first,
// then f is applied to the node. f may return a replacement or its argument.
func rewriteExpr(e ir.Expr, f func(ir.Expr) ir.Expr) ir.Expr {
	switch ex := e.(type) {
	case *ir.ArrayRef:
		ex.Index = rewriteExpr(ex.Index, f)
	case *ir.Unary:
		ex.X = rewriteExpr(ex.X, f)
	case *ir.Binary:
		ex.X = rewriteExpr(ex.X, f)
		ex.Y = rewriteExpr(ex.Y, f)
	case *ir.CallExpr:
		for i, a := range ex.Args {
			ex.Args[i] = rewriteExpr(a, f)
		}
	case *ir.Select:
		ex.Cond = rewriteExpr(ex.Cond, f)
		ex.X = rewriteExpr(ex.X, f)
		ex.Y = rewriteExpr(ex.Y, f)
	}
	return f(e)
}

// rewriteStmtExprs applies rw to every expression in the statement list,
// in evaluation order. Assignment targets have only their index expressions
// rewritten (the base VarRef/ArrayRef identity is preserved).
func rewriteStmtExprs(list []ir.Stmt, rw func(ir.Expr) ir.Expr) {
	for _, s := range list {
		switch st := s.(type) {
		case *ir.Assign:
			st.Rhs = rewriteExpr(st.Rhs, rw)
			if ar, ok := st.Lhs.(*ir.ArrayRef); ok {
				ar.Index = rewriteExpr(ar.Index, rw)
			}
		case *ir.If:
			st.Cond = rewriteExpr(st.Cond, rw)
			rewriteStmtExprs(st.Then, rw)
			rewriteStmtExprs(st.Else, rw)
		case *ir.For:
			st.From = rewriteExpr(st.From, rw)
			st.To = rewriteExpr(st.To, rw)
			rewriteStmtExprs(st.Body, rw)
		case *ir.While:
			st.Cond = rewriteExpr(st.Cond, rw)
			rewriteStmtExprs(st.Body, rw)
		case *ir.Return:
			if st.Value != nil {
				st.Value = rewriteExpr(st.Value, rw)
			}
		case *ir.CallStmt:
			for i, a := range st.Args {
				st.Args[i] = rewriteExpr(a, rw)
			}
		}
	}
}

// assignedVars collects names of scalars assigned anywhere in the list
// (including loop variables of nested For statements).
func assignedVars(list []ir.Stmt, out map[string]bool) {
	for _, s := range list {
		switch st := s.(type) {
		case *ir.Assign:
			if v, ok := st.Lhs.(*ir.VarRef); ok {
				out[v.Name] = true
			}
		case *ir.If:
			assignedVars(st.Then, out)
			assignedVars(st.Else, out)
		case *ir.For:
			out[st.Var] = true
			assignedVars(st.Body, out)
		case *ir.While:
			assignedVars(st.Body, out)
		}
	}
}

// storedArrays collects names of arrays stored to anywhere in the list,
// following calls through prog when it is non-nil.
func storedArrays(list []ir.Stmt, prog *ir.Program, out map[string]bool) {
	var visitCall func(fn string)
	seen := map[string]bool{}
	visitCall = func(fn string) {
		if _, ok := ir.IsIntrinsic(fn); ok {
			return
		}
		if prog == nil || seen[fn] {
			return
		}
		seen[fn] = true
		if callee, ok := prog.Funcs[fn]; ok {
			storedArrays(callee.Body, prog, out)
		}
	}
	var walk func(list []ir.Stmt)
	checkCalls := func(e ir.Expr) {
		walkExpr(e, func(x ir.Expr) {
			if c, ok := x.(*ir.CallExpr); ok {
				visitCall(c.Fn)
			}
		})
	}
	walk = func(list []ir.Stmt) {
		for _, s := range list {
			switch st := s.(type) {
			case *ir.Assign:
				if a, ok := st.Lhs.(*ir.ArrayRef); ok {
					out[a.Name] = true
					checkCalls(a.Index)
				}
				checkCalls(st.Rhs)
			case *ir.If:
				checkCalls(st.Cond)
				walk(st.Then)
				walk(st.Else)
			case *ir.For:
				checkCalls(st.From)
				checkCalls(st.To)
				walk(st.Body)
			case *ir.While:
				checkCalls(st.Cond)
				walk(st.Body)
			case *ir.Return:
				if st.Value != nil {
					checkCalls(st.Value)
				}
			case *ir.CallStmt:
				visitCall(st.Fn)
				for _, a := range st.Args {
					checkCalls(a)
				}
			}
		}
	}
	walk(list)
	return
}

// exprProps summarizes an expression for legality checks.
type exprProps struct {
	hasLoad     bool
	hasUserCall bool
	hasCall     bool // any call, including intrinsics
	loads       map[string]bool
	vars        map[string]bool
}

func analyzeExpr(e ir.Expr) exprProps {
	p := exprProps{loads: map[string]bool{}, vars: map[string]bool{}}
	walkExpr(e, func(x ir.Expr) {
		switch ex := x.(type) {
		case *ir.ArrayRef:
			p.hasLoad = true
			p.loads[ex.Name] = true
		case *ir.VarRef:
			p.vars[ex.Name] = true
		case *ir.CallExpr:
			p.hasCall = true
			if _, ok := ir.IsIntrinsic(ex.Fn); !ok {
				p.hasUserCall = true
			}
		}
	})
	return p
}

// exprSize counts operator/reference nodes (a rough cost proxy).
func exprSize(e ir.Expr) int {
	n := 0
	walkExpr(e, func(ir.Expr) { n++ })
	return n
}

// tempNamer hands out fresh local names for compiler temporaries.
type tempNamer struct {
	fn   *ir.Func
	next int
}

func newTempNamer(fn *ir.Func) *tempNamer { return &tempNamer{fn: fn} }

// fresh declares and returns a new temporary local of the given type.
func (t *tempNamer) fresh(typ ir.Type) string {
	for {
		name := fmt.Sprintf(".t%d", t.next)
		t.next++
		if !t.fn.IsLocal(name) && !t.fn.IsParam(name) {
			t.fn.Locals = append(t.fn.Locals, ir.Local{Name: name, Typ: typ})
			return name
		}
	}
}

// exprType infers whether an expression is floating point (best effort,
// for temp typing; wrong guesses only affect cost class, not values).
func exprType(e ir.Expr, fn *ir.Func, prog *ir.Program) ir.Type {
	switch ex := e.(type) {
	case *ir.ConstInt:
		return ir.I64
	case *ir.ConstFloat:
		return ir.F64
	case *ir.VarRef:
		for _, p := range fn.Params {
			if p.Name == ex.Name && !p.IsArray {
				return p.Typ
			}
		}
		for _, l := range fn.Locals {
			if l.Name == ex.Name {
				return l.Typ
			}
		}
		if prog != nil {
			for _, g := range prog.Scalars {
				if g.Name == ex.Name {
					return g.Typ
				}
			}
		}
		return ir.I64
	case *ir.ArrayRef:
		if prog != nil {
			if a, ok := prog.Array(ex.Name); ok {
				return a.Typ
			}
		}
		return ir.F64
	case *ir.Unary:
		return exprType(ex.X, fn, prog)
	case *ir.Binary:
		if ex.Op.IsComparison() {
			return ir.I64
		}
		return ex.Typ
	case *ir.CallExpr:
		return ir.F64
	case *ir.Select:
		return exprType(ex.X, fn, prog)
	}
	return ir.I64
}
