package opt

import (
	"math"
	"math/rand"
	"testing"

	"peak/internal/ir"
	"peak/internal/irbuild"
	"peak/internal/machine"
	"peak/internal/sim"
)

// testKernel bundles a program, its entry function, and an input generator.
type testKernel struct {
	name string
	prog *ir.Program
	fn   *ir.Func
	// args produces scalar arguments for one invocation.
	args func(r *rand.Rand) []float64
	// fill initializes memory before one invocation.
	fill func(r *rand.Rand, mem *sim.Memory)
}

func saxpyKernel() testKernel {
	prog := ir.NewProgram()
	prog.AddArray("x", ir.F64, 256)
	prog.AddArray("y", ir.F64, 256)
	b := irbuild.NewFunc("saxpy")
	b.ScalarParam("n", ir.I64).ScalarParam("a", ir.F64)
	fn := b.Body(
		b.For("i", b.I(0), b.V("n"), 1,
			b.Set(b.At("y", b.V("i")),
				b.FAdd(b.At("y", b.V("i")), b.FMul(b.V("a"), b.At("x", b.V("i"))))),
		),
	)
	prog.AddFunc(fn)
	return testKernel{
		name: "saxpy", prog: prog, fn: fn,
		args: func(r *rand.Rand) []float64 { return []float64{float64(r.Intn(256)), r.Float64() * 3} },
		fill: fillFloats("x", "y"),
	}
}

func dotStrideKernel() testKernel {
	// Strided access with an accumulator cell: exercises strength
	// reduction, store motion, LICM.
	prog := ir.NewProgram()
	prog.AddArray("x", ir.F64, 512)
	prog.AddArray("acc", ir.F64, 4)
	b := irbuild.NewFunc("dot")
	b.ScalarParam("n", ir.I64).ScalarParam("stride", ir.I64)
	fn := b.Body(
		b.Set(b.At("acc", b.I(0)), b.F(0)),
		b.For("i", b.I(0), b.V("n"), 1,
			b.Set(b.At("acc", b.I(0)),
				b.FAdd(b.At("acc", b.I(0)),
					b.FMul(b.At("x", b.Mul(b.V("i"), b.V("stride"))),
						b.At("x", b.Add(b.Mul(b.V("i"), b.V("stride")), b.I(1)))))),
		),
	)
	prog.AddFunc(fn)
	return testKernel{
		name: "dotstride", prog: prog, fn: fn,
		args: func(r *rand.Rand) []float64 {
			stride := float64(1 + r.Intn(3))
			n := float64(r.Intn(int(500/stride)-1) + 1)
			return []float64{n, stride}
		},
		fill: fillFloats("x"),
	}
}

func branchyKernel() testKernel {
	// Data-dependent branches, guards, min/max patterns: exercises
	// if-conversion, branch hints, guard removal.
	prog := ir.NewProgram()
	prog.AddArray("v", ir.F64, 256)
	b := irbuild.NewFunc("branchy")
	b.ScalarParam("n", ir.I64).Local("best", ir.F64).Local("cnt", ir.I64)
	fn := b.Body(
		b.Set(b.V("best"), b.F(-1e18)),
		b.For("i", b.I(0), b.V("n"), 1,
			b.Guard(b.Ge(b.V("i"), b.I(0)),
				b.If(b.FGt(b.At("v", b.V("i")), b.V("best")),
					b.Set(b.V("best"), b.At("v", b.V("i"))),
				),
				b.IfElse(b.Eq(b.Mod(b.V("i"), b.I(3)), b.I(0)),
					b.Stmts(b.Set(b.V("cnt"), b.Add(b.V("cnt"), b.I(2)))),
					b.Stmts(b.Set(b.V("cnt"), b.Add(b.V("cnt"), b.I(1)))),
				),
			),
		),
		b.Ret(b.FAdd(b.V("best"), b.Call("abs", b.V("cnt")))),
	)
	prog.AddFunc(fn)
	return testKernel{
		name: "branchy", prog: prog, fn: fn,
		args: func(r *rand.Rand) []float64 { return []float64{float64(1 + r.Intn(256))} },
		fill: fillFloats("v"),
	}
}

func searchKernel() testKernel {
	// Early-exit while loop (longest_match shape).
	prog := ir.NewProgram()
	prog.AddArray("s", ir.I64, 300)
	b := irbuild.NewFunc("search")
	b.ScalarParam("n", ir.I64).ScalarParam("key", ir.I64).Local("i", ir.I64).Local("hits", ir.I64)
	fn := b.Body(
		b.Set(b.V("i"), b.I(0)),
		b.While(b.Lt(b.V("i"), b.V("n")),
			b.If(b.Eq(b.At("s", b.V("i")), b.V("key")),
				b.Set(b.V("hits"), b.Add(b.V("hits"), b.I(1))),
				b.If(b.Gt(b.V("hits"), b.I(4)), b.Break()),
			),
			b.Set(b.V("i"), b.Add(b.V("i"), b.I(1))),
		),
		b.Ret(b.Add(b.Mul(b.V("hits"), b.I(1000)), b.V("i"))),
	)
	prog.AddFunc(fn)
	return testKernel{
		name: "search", prog: prog, fn: fn,
		args: func(r *rand.Rand) []float64 {
			return []float64{float64(1 + r.Intn(300)), float64(r.Intn(4))}
		},
		fill: func(r *rand.Rand, mem *sim.Memory) {
			d := mem.Get("s").Data
			for i := range d {
				d[i] = float64(r.Intn(4))
			}
		},
	}
}

func callKernel() testKernel {
	// User-function calls: exercises inlining, caller-saves, call costs.
	prog := ir.NewProgram()
	prog.AddArray("a", ir.F64, 128)
	cb := irbuild.NewFunc("blend")
	cb.ScalarParam("x", ir.F64).ScalarParam("y", ir.F64).ScalarParam("w", ir.F64)
	prog.AddFunc(cb.Body(
		cb.Ret(cb.FAdd(cb.FMul(cb.V("x"), cb.V("w")), cb.FMul(cb.V("y"), cb.FSub(cb.F(1), cb.V("w"))))),
	))
	b := irbuild.NewFunc("smooth")
	b.ScalarParam("n", ir.I64).Local("s", ir.F64)
	fn := b.Body(
		b.For("i", b.I(1), b.V("n"), 1,
			b.Set(b.V("s"), b.FAdd(b.V("s"),
				b.Call("blend", b.At("a", b.V("i")), b.At("a", b.Sub(b.V("i"), b.I(1))), b.F(0.75)))),
		),
		b.Ret(b.V("s")),
	)
	prog.AddFunc(fn)
	return testKernel{
		name: "call", prog: prog, fn: fn,
		args: func(r *rand.Rand) []float64 { return []float64{float64(1 + r.Intn(128))} },
		fill: fillFloats("a"),
	}
}

func matmulKernel() testKernel {
	prog := ir.NewProgram()
	prog.AddArray("A", ir.F64, 64)
	prog.AddArray("B", ir.F64, 64)
	prog.AddArray("C", ir.F64, 64)
	b := irbuild.NewFunc("matmul")
	b.ScalarParam("n", ir.I64).Local("s", ir.F64)
	fn := b.Body(
		b.For("i", b.I(0), b.V("n"), 1,
			b.For("j", b.I(0), b.V("n"), 1,
				b.Set(b.V("s"), b.F(0)),
				b.For("k", b.I(0), b.V("n"), 1,
					b.Set(b.V("s"), b.FAdd(b.V("s"),
						b.FMul(b.At("A", b.Add(b.Mul(b.V("i"), b.V("n")), b.V("k"))),
							b.At("B", b.Add(b.Mul(b.V("k"), b.V("n")), b.V("j")))))),
				),
				b.Set(b.At("C", b.Add(b.Mul(b.V("i"), b.V("n")), b.V("j"))), b.V("s")),
			),
		),
	)
	prog.AddFunc(fn)
	return testKernel{
		name: "matmul", prog: prog, fn: fn,
		args: func(r *rand.Rand) []float64 { return []float64{float64(2 + r.Intn(7))} },
		fill: fillFloats("A", "B", "C"),
	}
}

func globalsKernel() testKernel {
	prog := ir.NewProgram()
	prog.AddScalar("acc", ir.F64)
	prog.AddScalar("calls", ir.I64)
	prog.AddArray("w", ir.F64, 64)
	b := irbuild.NewFunc("accum")
	b.ScalarParam("n", ir.I64)
	fn := b.Body(
		b.For("i", b.I(0), b.V("n"), 1,
			b.Set(b.V("acc"), b.FAdd(b.V("acc"), b.At("w", b.V("i")))),
		),
		b.Set(b.V("calls"), b.Add(b.V("calls"), b.I(1))),
		b.Ret(b.V("acc")),
	)
	prog.AddFunc(fn)
	return testKernel{
		name: "globals", prog: prog, fn: fn,
		args: func(r *rand.Rand) []float64 { return []float64{float64(r.Intn(64))} },
		fill: fillFloats("w"),
	}
}

func allKernels() []testKernel {
	return []testKernel{
		saxpyKernel(), dotStrideKernel(), branchyKernel(),
		searchKernel(), callKernel(), matmulKernel(), globalsKernel(),
	}
}

func fillFloats(names ...string) func(r *rand.Rand, mem *sim.Memory) {
	return func(r *rand.Rand, mem *sim.Memory) {
		for _, n := range names {
			d := mem.Get(n).Data
			for i := range d {
				d[i] = r.NormFloat64() * 10
			}
		}
	}
}

// snapshotAll copies every array for comparison.
func snapshotAll(mem *sim.Memory) map[string][]float64 {
	return mem.Snapshot(mem.Names())
}

func equalState(a, b map[string][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || len(av) != len(bv) {
			return false
		}
		for i := range av {
			if av[i] != bv[i] && !(math.IsNaN(av[i]) && math.IsNaN(bv[i])) {
				return false
			}
		}
	}
	return true
}

func equalRet(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

// runOnce executes version v on a fresh runner with deterministic inputs.
func runOnce(t *testing.T, k testKernel, v *sim.Version, m *machine.Machine,
	seed int64) (float64, map[string][]float64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	mem := sim.NewMemory(k.prog)
	if k.fill != nil {
		k.fill(r, mem)
	}
	args := k.args(r)
	runner := sim.NewRunner(m, mem, seed)
	ret, _, err := runner.Run(v, args)
	if err != nil {
		t.Fatalf("%s %s: run failed: %v", k.name, v.Label, err)
	}
	return ret, snapshotAll(mem)
}

// TestFlagSemanticsPreserved is the compiler's main correctness property:
// for every kernel, random flag combinations (plus -O0 and -O3 and every
// single-flag set) must produce bit-identical results and final memory.
func TestFlagSemanticsPreserved(t *testing.T) {
	machines := []*machine.Machine{machine.SPARCII(), machine.PentiumIV()}
	rng := rand.New(rand.NewSource(2004))

	var sets []FlagSet
	sets = append(sets, O0(), O3())
	for f := 0; f < NumFlags; f++ {
		sets = append(sets, O0().With(Flag(f)))
		sets = append(sets, O3().Without(Flag(f)))
	}
	for i := 0; i < 40; i++ {
		sets = append(sets, FlagSet(rng.Uint64())&O3())
	}

	for _, k := range allKernels() {
		k := k
		t.Run(k.name, func(t *testing.T) {
			for mi, m := range machines {
				ref, err := Compile(k.prog, k.fn, O0(), m)
				if err != nil {
					t.Fatalf("compile -O0: %v", err)
				}
				for trial := 0; trial < 3; trial++ {
					seed := int64(100*mi + trial)
					wantRet, wantMem := runOnce(t, k, ref, m, seed)
					for _, fs := range sets {
						v, err := Compile(k.prog, k.fn, fs, m)
						if err != nil {
							t.Fatalf("compile %s: %v", fs, err)
						}
						gotRet, gotMem := runOnce(t, k, v, m, seed)
						if !equalRet(gotRet, wantRet) {
							t.Fatalf("%s on %s, flags %s: return %v, want %v",
								k.name, m.Name, fs, gotRet, wantRet)
						}
						if !equalState(gotMem, wantMem) {
							t.Fatalf("%s on %s, flags %s: memory state differs", k.name, m.Name, fs)
						}
					}
				}
			}
		})
	}
}

// TestO3FasterOnRegularCode sanity-checks the cost model: full optimization
// must beat -O0 on a regular numeric kernel on both machines.
func TestO3FasterOnRegularCode(t *testing.T) {
	for _, m := range []*machine.Machine{machine.SPARCII(), machine.PentiumIV()} {
		k := saxpyKernel()
		v0, err := Compile(k.prog, k.fn, O0(), m)
		if err != nil {
			t.Fatal(err)
		}
		v3, err := Compile(k.prog, k.fn, O3(), m)
		if err != nil {
			t.Fatal(err)
		}
		mem := sim.NewMemory(k.prog)
		runner := sim.NewRunner(m, mem, 9)
		_, s0, err := runner.Run(v0, []float64{200})
		if err != nil {
			t.Fatal(err)
		}
		runner.ResetMicroarch()
		_, s3, err := runner.Run(v3, []float64{200})
		if err != nil {
			t.Fatal(err)
		}
		if s3.Cycles >= s0.Cycles {
			t.Errorf("%s: -O3 (%d cycles) not faster than -O0 (%d cycles)", m.Name, s3.Cycles, s0.Cycles)
		}
	}
}

func TestFlagSetOps(t *testing.T) {
	s := O0().With(FGCSE).With(FUnrollLoops)
	if !s.Has(FGCSE) || !s.Has(FUnrollLoops) || s.Has(FStrictAliasing) {
		t.Error("With/Has broken")
	}
	if s.Without(FGCSE).Has(FGCSE) {
		t.Error("Without broken")
	}
	if O3().Count() != NumFlags {
		t.Errorf("O3 count = %d, want %d", O3().Count(), NumFlags)
	}
	if NumFlags != 38 {
		t.Errorf("NumFlags = %d, want 38 (paper §5.2)", NumFlags)
	}
	parsed, err := ParseFlagSet("-O3")
	if err != nil || parsed != O3() {
		t.Errorf("ParseFlagSet(-O3) = %v, %v", parsed, err)
	}
	parsed, err = ParseFlagSet("gcse strict-aliasing")
	if err != nil || !parsed.Has(FGCSE) || !parsed.Has(FStrictAliasing) || parsed.Count() != 2 {
		t.Errorf("ParseFlagSet list = %v, %v", parsed, err)
	}
	if _, err := ParseFlagSet("no-such-flag"); err == nil {
		t.Error("ParseFlagSet accepted unknown flag")
	}
	for f := 0; f < NumFlags; f++ {
		got, ok := FlagByName(Flag(f).String())
		if !ok || got != Flag(f) {
			t.Errorf("FlagByName(%s) = %v, %v", Flag(f), got, ok)
		}
	}
}

func TestFlagDocsComplete(t *testing.T) {
	for _, f := range AllFlags() {
		if FlagDoc(f) == "" {
			t.Errorf("flag %s has no documentation", f)
		}
	}
}
