package opt

import "peak/internal/ir"

// reduceStrength rewrites multiplications by the loop induction variable
// into additive recurrences (strength-reduce):
//
//	for i = a; i < b; i += s { ... i*c ... }
//	  =>
//	t = a*c
//	for i = a; i < b; i += s { ... t ... ; t = t + c*s }
//
// c must be a constant, or — when expensive-optimizations is on — any
// loop-invariant scalar. Only For loops whose variable is not reassigned in
// the body are rewritten.
func reduceStrength(fn *ir.Func, prog *ir.Program, expensive bool, namer *tempNamer) {
	fn.Body = reduceStrengthList(fn.Body, fn, prog, expensive, namer)
}

func reduceStrengthList(list []ir.Stmt, fn *ir.Func, prog *ir.Program, expensive bool, namer *tempNamer) []ir.Stmt {
	out := make([]ir.Stmt, 0, len(list))
	for _, s := range list {
		switch st := s.(type) {
		case *ir.If:
			st.Then = reduceStrengthList(st.Then, fn, prog, expensive, namer)
			st.Else = reduceStrengthList(st.Else, fn, prog, expensive, namer)
			out = append(out, st)
		case *ir.While:
			st.Body = reduceStrengthList(st.Body, fn, prog, expensive, namer)
			out = append(out, st)
		case *ir.For:
			st.Body = reduceStrengthList(st.Body, fn, prog, expensive, namer)
			out = append(out, reduceStrengthFor(st, fn, prog, expensive, namer)...)
		default:
			out = append(out, s)
		}
	}
	return out
}

func reduceStrengthFor(st *ir.For, fn *ir.Func, prog *ir.Program, expensive bool, namer *tempNamer) []ir.Stmt {
	info := summarizeLoop(st.Body, st.Var, prog)
	// The loop variable must only be advanced by the loop itself, and
	// From must be pure (it is evaluated a second time in the preheader).
	bodyAssigned := map[string]bool{}
	assignedVars(st.Body, bodyAssigned)
	if bodyAssigned[st.Var] || analyzeExpr(st.From).hasUserCall {
		return []ir.Stmt{st}
	}

	type reduction struct {
		temp   string
		factor ir.Expr // c (constant or invariant var)
	}
	found := map[string]*reduction{} // exprKey(i*c) -> reduction
	var order []*reduction           // creation order (deterministic)

	acceptFactor := func(e ir.Expr) bool {
		switch f := e.(type) {
		case *ir.ConstInt:
			return true
		case *ir.VarRef:
			return expensive && !info.killed[f.Name]
		}
		return false
	}

	rw := func(e ir.Expr) ir.Expr {
		bin, ok := e.(*ir.Binary)
		if !ok || bin.Op != ir.OpMul || bin.Typ != ir.I64 {
			return e
		}
		var factor ir.Expr
		if v, ok := bin.X.(*ir.VarRef); ok && v.Name == st.Var && acceptFactor(bin.Y) {
			factor = bin.Y
		} else if v, ok := bin.Y.(*ir.VarRef); ok && v.Name == st.Var && acceptFactor(bin.X) {
			factor = bin.X
		}
		if factor == nil {
			return e
		}
		key := exprKey(e)
		red, ok := found[key]
		if !ok {
			red = &reduction{temp: namer.fresh(ir.I64), factor: factor.Clone()}
			found[key] = red
			order = append(order, red)
		}
		return &ir.VarRef{Name: red.temp}
	}
	rewriteStmtExprs(st.Body, rw)
	if len(found) == 0 {
		return []ir.Stmt{st}
	}

	// Preheader: t = From * c. Body tail: t = t + c*step.
	pre := make([]ir.Stmt, 0, len(found))
	tail := make([]ir.Stmt, 0, len(found))
	for _, red := range order {
		pre = append(pre, &ir.Assign{
			Lhs: &ir.VarRef{Name: red.temp},
			Rhs: foldExpr(&ir.Binary{Op: ir.OpMul, Typ: ir.I64, X: st.From.Clone(), Y: red.factor.Clone()}),
		})
		incr := foldExpr(&ir.Binary{Op: ir.OpMul, Typ: ir.I64,
			X: red.factor.Clone(), Y: &ir.ConstInt{V: st.Step}})
		tail = append(tail, &ir.Assign{
			Lhs: &ir.VarRef{Name: red.temp},
			Rhs: &ir.Binary{Op: ir.OpAdd, Typ: ir.I64, X: &ir.VarRef{Name: red.temp}, Y: incr},
		})
	}
	st.Body = append(st.Body, tail...)
	return append(pre, st)
}
