package opt

import "peak/internal/ir"

// ifConvOpts selects the if-conversion tiers.
type ifConvOpts struct {
	// basic converts conditionals whose arms are scalar assignments with
	// fault-free right-hand sides (if-conversion).
	basic bool
	// aggressive additionally speculates memory loads that provably
	// execute anyway (their exact expression appears in the condition),
	// covering the classic `if (A[i] > m) m = A[i]` reduction pattern
	// (if-conversion2).
	aggressive bool
}

// convertIfs rewrites eligible conditionals into branch-free selects:
//
//	if c { x = e1 } else { x = e2 }   =>   t = c; x = select(t, e1, e2)
//	if c { x = e1 }                   =>   t = c; x = select(t, e1, x)
//
// Both arms execute, so right-hand sides must be pure and fault-free
// (no user calls, no integer division, and loads only under the
// `aggressive` dominating-load rule). Arms containing MBR counters are
// never converted (counters carry control-dependence semantics).
func convertIfs(fn *ir.Func, prog *ir.Program, opts ifConvOpts, namer *tempNamer) {
	fn.Body = convertIfList(fn.Body, fn, prog, opts, namer)
}

func convertIfList(list []ir.Stmt, fn *ir.Func, prog *ir.Program, opts ifConvOpts, namer *tempNamer) []ir.Stmt {
	out := make([]ir.Stmt, 0, len(list))
	for _, s := range list {
		switch st := s.(type) {
		case *ir.If:
			st.Then = convertIfList(st.Then, fn, prog, opts, namer)
			st.Else = convertIfList(st.Else, fn, prog, opts, namer)
			if converted, ok := tryConvert(st, fn, prog, opts, namer); ok {
				out = append(out, converted...)
				continue
			}
			out = append(out, st)
		case *ir.For:
			st.Body = convertIfList(st.Body, fn, prog, opts, namer)
			out = append(out, st)
		case *ir.While:
			st.Body = convertIfList(st.Body, fn, prog, opts, namer)
			out = append(out, st)
		default:
			out = append(out, s)
		}
	}
	return out
}

// maxConvertedAssigns bounds how much work if-conversion is willing to
// execute unconditionally.
const maxConvertedAssigns = 3

func tryConvert(st *ir.If, fn *ir.Func, prog *ir.Program, opts ifConvOpts, namer *tempNamer) ([]ir.Stmt, bool) {
	if !opts.basic || st.Guard {
		return nil, false
	}
	if analyzeExpr(st.Cond).hasUserCall {
		return nil, false
	}
	thenAssigns, ok := scalarAssigns(st.Then)
	if !ok {
		return nil, false
	}
	elseAssigns, ok := scalarAssigns(st.Else)
	if !ok {
		return nil, false
	}
	if len(thenAssigns)+len(elseAssigns) == 0 ||
		len(thenAssigns) > maxConvertedAssigns || len(elseAssigns) > maxConvertedAssigns {
		return nil, false
	}

	// Loads that are safe to speculate: those whose exact expression is
	// already evaluated unconditionally by the condition itself.
	safeLoads := map[string]bool{}
	if opts.aggressive {
		walkExpr(st.Cond, func(e ir.Expr) {
			if _, isRef := e.(*ir.ArrayRef); isRef {
				safeLoads[exprKey(e)] = true
			}
		})
	}

	// Each variable must be assigned at most once per arm, arms must not
	// read variables previously assigned in the same arm, and RHSs must be
	// speculation-safe.
	thenVals, ok := armValues(thenAssigns, safeLoads)
	if !ok {
		return nil, false
	}
	elseVals, ok := armValues(elseAssigns, safeLoads)
	if !ok {
		return nil, false
	}

	// Build: t = cond; for each assigned var v:
	//   v = select(t, thenVal_or_v, elseVal_or_v)
	// Arm RHSs are pre-evaluated into temps so that a variable assigned by
	// one select cannot corrupt the inputs of the next.
	condTemp := namer.fresh(ir.I64)
	out := []ir.Stmt{&ir.Assign{Lhs: &ir.VarRef{Name: condTemp}, Rhs: st.Cond}}

	var vars []string
	seen := map[string]bool{}
	for _, a := range thenAssigns {
		n := a.Lhs.(*ir.VarRef).Name
		if !seen[n] {
			seen[n] = true
			vars = append(vars, n)
		}
	}
	for _, a := range elseAssigns {
		n := a.Lhs.(*ir.VarRef).Name
		if !seen[n] {
			seen[n] = true
			vars = append(vars, n)
		}
	}

	pick := func(vals map[string]ir.Expr, v string) ir.Expr {
		if e, ok := vals[v]; ok {
			// Pre-evaluate into a temp.
			t := namer.fresh(exprType(e, fn, prog))
			out = append(out, &ir.Assign{Lhs: &ir.VarRef{Name: t}, Rhs: e.Clone()})
			return &ir.VarRef{Name: t}
		}
		return &ir.VarRef{Name: v}
	}
	type sel struct {
		v    string
		x, y ir.Expr
	}
	var sels []sel
	for _, v := range vars {
		sels = append(sels, sel{v: v, x: pick(thenVals, v), y: pick(elseVals, v)})
	}
	for _, sl := range sels {
		out = append(out, &ir.Assign{
			Lhs: &ir.VarRef{Name: sl.v},
			Rhs: &ir.Select{Cond: &ir.VarRef{Name: condTemp}, X: sl.x, Y: sl.y},
		})
	}
	return out, true
}

// scalarAssigns returns the arm's statements as scalar assignments, or
// ok=false when the arm contains anything else.
func scalarAssigns(arm []ir.Stmt) ([]*ir.Assign, bool) {
	out := make([]*ir.Assign, 0, len(arm))
	for _, s := range arm {
		a, ok := s.(*ir.Assign)
		if !ok {
			return nil, false
		}
		if _, ok := a.Lhs.(*ir.VarRef); !ok {
			return nil, false
		}
		out = append(out, a)
	}
	return out, true
}

// armValues validates an arm for speculation and returns var -> RHS.
// Speculation-unsafe RHSs: user calls, integer division/modulo (may fault),
// and loads not in safeLoads (may fault out of bounds).
func armValues(assigns []*ir.Assign, safeLoads map[string]bool) (map[string]ir.Expr, bool) {
	vals := map[string]ir.Expr{}
	for _, a := range assigns {
		name := a.Lhs.(*ir.VarRef).Name
		if _, dup := vals[name]; dup {
			return nil, false
		}
		// Reading a variable assigned earlier in this arm would need
		// substitution; keep it simple and bail out.
		p := analyzeExpr(a.Rhs)
		for prev := range vals {
			if p.vars[prev] {
				return nil, false
			}
		}
		if !speculationSafe(a.Rhs, safeLoads) {
			return nil, false
		}
		vals[name] = a.Rhs
	}
	return vals, true
}

func speculationSafe(e ir.Expr, safeLoads map[string]bool) bool {
	safe := true
	var check func(x ir.Expr)
	check = func(x ir.Expr) {
		if !safe {
			return
		}
		switch ex := x.(type) {
		case *ir.ArrayRef:
			if !safeLoads[exprKey(ex)] {
				safe = false
				return
			}
			check(ex.Index)
		case *ir.Binary:
			if ex.Typ == ir.I64 && (ex.Op == ir.OpDiv || ex.Op == ir.OpMod) {
				if _, _, isConst := constValue(ex.Y); !isConst || isZero(ex.Y) {
					safe = false
					return
				}
			}
			check(ex.X)
			check(ex.Y)
		case *ir.Unary:
			check(ex.X)
		case *ir.CallExpr:
			if _, ok := ir.IsIntrinsic(ex.Fn); !ok {
				safe = false
				return
			}
			for _, a := range ex.Args {
				check(a)
			}
		case *ir.Select:
			check(ex.Cond)
			check(ex.X)
			check(ex.Y)
		}
	}
	check(e)
	return safe
}
