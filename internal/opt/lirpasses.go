package opt

import "peak/internal/ir"

// threadJumps simplifies the CFG (thread-jumps): empty forwarding blocks are
// bypassed, and single-predecessor blocks are merged into that predecessor.
// Fewer control transfers means fewer taken-branch redirects at run time.
func threadJumps(f *ir.LFunc) {
	bypassEmptyBlocks(f)
	mergeLinearChains(f)
}

func bypassEmptyBlocks(f *ir.LFunc) {
	// target(b) follows chains of empty jump-only blocks.
	resolve := func(id int) int {
		seen := map[int]bool{}
		for {
			b := f.BlockByID(id)
			if b == nil || len(b.Instrs) > 0 || b.Term.Kind != ir.TermJump || seen[id] {
				return id
			}
			seen[id] = true
			id = b.Term.Then
		}
	}
	for _, b := range f.Blocks {
		switch b.Term.Kind {
		case ir.TermJump:
			b.Term.Then = resolve(b.Term.Then)
		case ir.TermBranch:
			b.Term.Then = resolve(b.Term.Then)
			b.Term.Else = resolve(b.Term.Else)
		}
	}
	removeUnreachable(f)
}

func mergeLinearChains(f *ir.LFunc) {
	for {
		preds := map[int]int{}
		for _, b := range f.Blocks {
			for _, s := range b.Succs() {
				preds[s]++
			}
		}
		merged := false
		for _, b := range f.Blocks {
			if b.Term.Kind != ir.TermJump {
				continue
			}
			c := f.BlockByID(b.Term.Then)
			if c == nil || c == b || preds[c.ID] != 1 || c.ID == f.Blocks[0].ID {
				continue
			}
			b.Instrs = append(b.Instrs, c.Instrs...)
			b.Term = c.Term
			c.Instrs = nil
			c.Term = ir.Terminator{Kind: ir.TermJump, Then: b.ID} // orphan
			removeBlock(f, c.ID)
			merged = true
			break
		}
		if !merged {
			return
		}
	}
}

func removeBlock(f *ir.LFunc, id int) {
	out := f.Blocks[:0]
	for _, b := range f.Blocks {
		if b.ID != id {
			out = append(out, b)
		}
	}
	f.Blocks = out
}

func removeUnreachable(f *ir.LFunc) {
	reach := map[int]bool{}
	var visit func(id int)
	visit = func(id int) {
		if reach[id] {
			return
		}
		reach[id] = true
		if b := f.BlockByID(id); b != nil {
			for _, s := range b.Succs() {
				visit(s)
			}
		}
	}
	visit(f.Blocks[0].ID)
	out := f.Blocks[:0]
	for _, b := range f.Blocks {
		if reach[b.ID] {
			out = append(out, b)
		}
	}
	f.Blocks = out
}

// useCounts returns, per register, the number of reading references
// (including terminators).
func useCounts(f *ir.LFunc) []int {
	counts := make([]int, f.NumRegs)
	var uses []ir.Reg
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			uses = b.Instrs[i].Uses(uses[:0])
			for _, u := range uses {
				counts[u]++
			}
		}
		if b.Term.Kind == ir.TermBranch && b.Term.Cond != ir.NoReg {
			counts[b.Term.Cond]++
		}
		if b.Term.Kind == ir.TermReturn && b.Term.Val != ir.NoReg {
			counts[b.Term.Val]++
		}
	}
	return counts
}

// pureOp reports whether an opcode has no side effect besides its result.
func pureOp(op ir.Opcode) bool {
	switch op {
	case ir.LStore, ir.LCall, ir.LCount, ir.LNop:
		return false
	case ir.LLoad:
		// Loads can fault on a bad index; they are removed only when dead
		// code elimination proves the index register is itself unused...
		// keep them to stay conservative.
		return false
	}
	return true
}

// deadInstrElim removes pure instructions whose destinations are never
// read. Runs to a fixpoint; part of the peephole2 cleanup.
func deadInstrElim(f *ir.LFunc) {
	for {
		counts := useCounts(f)
		removed := false
		for _, b := range f.Blocks {
			out := b.Instrs[:0]
			for _, in := range b.Instrs {
				d := in.Def()
				if d != ir.NoReg && counts[d] == 0 && pureOp(in.Op) && !paramReg(f, d) {
					removed = true
					continue
				}
				out = append(out, in)
			}
			b.Instrs = out
		}
		if !removed {
			return
		}
	}
}

func paramReg(f *ir.LFunc, r ir.Reg) bool {
	for _, p := range f.ParamRegs {
		if p == r {
			return true
		}
	}
	return false
}

// peephole runs local pattern simplifications (peephole2):
//   - mov r, r is dropped;
//   - not t applied to a comparison defined immediately before (with t
//     otherwise unused) becomes the inverted comparison;
//   - dead pure instructions are pruned.
func peephole(f *ir.LFunc) {
	counts := useCounts(f)
	invert := map[ir.Opcode]ir.Opcode{
		ir.LCmpEq: ir.LCmpNe, ir.LCmpNe: ir.LCmpEq,
		ir.LCmpLt: ir.LCmpGe, ir.LCmpGe: ir.LCmpLt,
		ir.LCmpLe: ir.LCmpGt, ir.LCmpGt: ir.LCmpLe,
		ir.LFCmpEq: ir.LFCmpNe, ir.LFCmpNe: ir.LFCmpEq,
		ir.LFCmpLt: ir.LFCmpGe, ir.LFCmpGe: ir.LFCmpLt,
		ir.LFCmpLe: ir.LFCmpGt, ir.LFCmpGt: ir.LFCmpLe,
	}
	for _, b := range f.Blocks {
		out := b.Instrs[:0]
		for i := 0; i < len(b.Instrs); i++ {
			in := b.Instrs[i]
			if in.Op == ir.LMov && in.Dst == in.A {
				continue
			}
			if in.Op == ir.LNot && len(out) > 0 {
				prev := &out[len(out)-1]
				if inv, ok := invert[prev.Op]; ok && prev.Dst == in.A && counts[in.A] == 1 {
					// Rewrite `t = cmp; d = not t` as `d = inverted-cmp`.
					*prev = ir.Instr{Op: inv, Dst: in.Dst, A: prev.A, B: prev.B, Src: ir.NoReg}
					continue
				}
			}
			out = append(out, in)
		}
		b.Instrs = out
	}
	deadInstrElim(f)
}

// coalesceMoves (regmove) eliminates `mov home, tmp` where tmp was computed
// in the same block solely for this move, by retargeting the computation at
// home directly. Legal when home is neither read nor written between the
// computation and the move.
func coalesceMoves(f *ir.LFunc) {
	counts := useCounts(f)
	for _, b := range f.Blocks {
		for i := 0; i < len(b.Instrs); i++ {
			in := &b.Instrs[i]
			if in.Op != ir.LMov || in.A == ir.NoReg || counts[in.A] != 1 {
				continue
			}
			tmp, home := in.A, in.Dst
			if tmp == home {
				continue
			}
			// Find tmp's definition earlier in this block.
			defIdx := -1
			for j := i - 1; j >= 0; j-- {
				if b.Instrs[j].Def() == tmp {
					defIdx = j
					break
				}
				if b.Instrs[j].Def() == home {
					defIdx = -1
					break
				}
				used := false
				for _, u := range b.Instrs[j].Uses(nil) {
					if u == home {
						used = true
					}
				}
				if used {
					defIdx = -1
					break
				}
			}
			if defIdx < 0 {
				continue
			}
			// Defs of tmp must be unique (safe for expression temps, which
			// are single-def by construction): verify globally.
			if defCount(f, tmp) != 1 {
				continue
			}
			b.Instrs[defIdx].Dst = home
			// Turn the mov into a self-move; peephole/dead-code drops it.
			in.Op = ir.LMov
			in.A = home
			in.Dst = home
		}
	}
	// Clean up the self-moves.
	for _, b := range f.Blocks {
		out := b.Instrs[:0]
		for _, in := range b.Instrs {
			if in.Op == ir.LMov && in.Dst == in.A {
				continue
			}
			out = append(out, in)
		}
		b.Instrs = out
	}
}

func defCount(f *ir.LFunc, r ir.Reg) int {
	n := 0
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Def() == r {
				n++
			}
		}
	}
	return n
}

// applyBranchHints sets static Likely hints (guess-branch-probability):
// a branch whose taken side stays at deeper loop nesting than the other is
// predicted taken, and vice versa.
func applyBranchHints(f *ir.LFunc) {
	depth := map[int]int{}
	for _, b := range f.Blocks {
		depth[b.ID] = b.LoopDepth
	}
	for _, b := range f.Blocks {
		if b.Term.Kind != ir.TermBranch {
			continue
		}
		dt, de := depth[b.Term.Then], depth[b.Term.Else]
		switch {
		case dt > de:
			b.Term.Likely = 1
		case dt < de:
			b.Term.Likely = -1
		default:
			b.Term.Likely = 0
		}
	}
}

// reorderBlockLayout lays blocks out in greedy fallthrough chains
// (reorder-blocks): after a block, place its most likely unplaced successor
// next, so the hot path runs straight and taken-branch redirects hit cold
// paths only.
func reorderBlockLayout(f *ir.LFunc, useHints bool) {
	placed := map[int]bool{}
	var order []*ir.Block
	place := func(b *ir.Block) {
		placed[b.ID] = true
		order = append(order, b)
	}
	next := func(b *ir.Block) *ir.Block {
		switch b.Term.Kind {
		case ir.TermJump:
			return f.BlockByID(b.Term.Then)
		case ir.TermBranch:
			thenB, elseB := f.BlockByID(b.Term.Then), f.BlockByID(b.Term.Else)
			unplaced := func(x *ir.Block) bool { return x != nil && !placed[x.ID] }
			// Place the likelier successor next: it becomes the
			// fallthrough and avoids the taken-branch redirect.
			if useHints && b.Term.Likely > 0 && unplaced(thenB) {
				return thenB
			}
			if useHints && b.Term.Likely < 0 && unplaced(elseB) {
				return elseB
			}
			// Without a hint, preserve the lowering's locality: prefer the
			// successor that immediately followed this block originally.
			if unplaced(thenB) && thenB.ID == b.ID+1 {
				return thenB
			}
			if unplaced(elseB) && elseB.ID == b.ID+1 {
				return elseB
			}
			if unplaced(thenB) {
				return thenB
			}
			if unplaced(elseB) {
				return elseB
			}
		}
		return nil
	}
	for _, start := range f.Blocks {
		if placed[start.ID] {
			continue
		}
		for b := start; b != nil && !placed[b.ID]; b = next(b) {
			place(b)
		}
	}
	f.Blocks = order
}

// crossjumpSavings estimates the instruction-count savings available from
// merging identical block tails (crossjumping). The blocks are not rewritten
// (block identity feeds profiling); the savings reduce the version's
// instruction-cache footprint.
func crossjumpSavings(f *ir.LFunc) int {
	byTerm := map[string][]*ir.Block{}
	for _, b := range f.Blocks {
		k := b.Term.String()
		byTerm[k] = append(byTerm[k], b)
	}
	saved := 0
	for _, group := range byTerm {
		if len(group) < 2 {
			continue
		}
		base := group[0]
		for _, other := range group[1:] {
			n := commonSuffix(base.Instrs, other.Instrs)
			saved += n
		}
	}
	return saved
}

func commonSuffix(a, b []ir.Instr) int {
	n := 0
	for n < len(a) && n < len(b) {
		x, y := a[len(a)-1-n], b[len(b)-1-n]
		if x.String() != y.String() {
			break
		}
		n++
	}
	return n
}
