package opt

import (
	"math"

	"peak/internal/ir"
)

// foldConstants performs constant folding and algebraic simplification over
// the whole function. It always runs (a "-O" baseline cleanup, not one of
// the 38 tunable options).
func foldConstants(fn *ir.Func) {
	rewriteStmtExprs(fn.Body, foldExpr)
}

func constValue(e ir.Expr) (float64, ir.Type, bool) {
	switch ex := e.(type) {
	case *ir.ConstInt:
		return float64(ex.V), ir.I64, true
	case *ir.ConstFloat:
		return ex.V, ir.F64, true
	}
	return 0, ir.I64, false
}

func makeConst(v float64, typ ir.Type) ir.Expr {
	// The execution engine computes all arithmetic on float64; the type
	// tag only selects the cost class. A constant may therefore be
	// fractional even under an integer-class operator (mixed-literal
	// expressions), and must not be truncated.
	if typ == ir.F64 || v != math.Trunc(v) || math.Abs(v) > 1<<53 {
		return &ir.ConstFloat{V: v}
	}
	return &ir.ConstInt{V: int64(v)}
}

func isZero(e ir.Expr) bool {
	v, _, ok := constValue(e)
	return ok && v == 0
}

func isOne(e ir.Expr) bool {
	v, _, ok := constValue(e)
	return ok && v == 1
}

// foldExpr folds one node whose children are already folded.
func foldExpr(e ir.Expr) ir.Expr {
	switch ex := e.(type) {
	case *ir.Unary:
		if v, typ, ok := constValue(ex.X); ok {
			switch ex.Op {
			case ir.OpNeg:
				return makeConst(-v, typ)
			case ir.OpNot:
				if v == 0 {
					return &ir.ConstInt{V: 1}
				}
				return &ir.ConstInt{V: 0}
			}
		}
	case *ir.Binary:
		xv, _, xok := constValue(ex.X)
		yv, _, yok := constValue(ex.Y)
		if xok && yok {
			if out, ok := evalBinary(ex.Op, ex.Typ, xv, yv); ok {
				if ex.Op.IsComparison() {
					return makeConst(out, ir.I64)
				}
				return makeConst(out, ex.Typ)
			}
			return e
		}
		// Algebraic identities.
		switch ex.Op {
		case ir.OpAdd:
			if isZero(ex.X) {
				return ex.Y
			}
			if isZero(ex.Y) {
				return ex.X
			}
		case ir.OpSub:
			if isZero(ex.Y) {
				return ex.X
			}
		case ir.OpMul:
			if isOne(ex.X) {
				return ex.Y
			}
			if isOne(ex.Y) {
				return ex.X
			}
			// x*0 is folded only for integers (0*NaN != 0 in floats), and
			// only when the discarded operand has no side effects and
			// cannot fault.
			if ex.Typ == ir.I64 && !exprHasCall(ex) && !exprMayFault(ex) {
				if isZero(ex.X) || isZero(ex.Y) {
					return &ir.ConstInt{V: 0}
				}
			}
		case ir.OpDiv:
			// Integer division truncates its operands in the engine, so
			// x/1 is only an identity for float division.
			if ex.Typ == ir.F64 && isOne(ex.Y) {
				return ex.X
			}
		}
		// x|0, x^0, x<<0, x>>0 are NOT identities here: the engine
		// coerces bitwise/shift operands through int64, which truncates
		// fractional values; folding them away would skip the coercion.
	case *ir.Select:
		// A select evaluates both arms (it lowers to LSelect), so folding
		// away an arm must not delete its faults or calls.
		if v, _, ok := constValue(ex.Cond); ok {
			if v != 0 && !exprMayFault(ex.Y) && !exprHasCall(ex.Y) {
				return ex.X
			}
			if v == 0 && !exprMayFault(ex.X) && !exprHasCall(ex.X) {
				return ex.Y
			}
		}
	case *ir.CallExpr:
		// Fold pure unary intrinsics of constants.
		if len(ex.Args) == 1 {
			if v, _, ok := constValue(ex.Args[0]); ok {
				switch ex.Fn {
				case "sqrt":
					return &ir.ConstFloat{V: math.Sqrt(v)}
				case "abs":
					return &ir.ConstFloat{V: math.Abs(v)}
				case "floor":
					return &ir.ConstFloat{V: math.Floor(v)}
				}
			}
		}
	}
	return e
}

func exprHasCall(e ir.Expr) bool {
	has := false
	walkExpr(e, func(x ir.Expr) {
		if _, ok := x.(*ir.CallExpr); ok {
			has = true
		}
	})
	return has
}

// exprMayFault reports whether evaluating e can raise a simulated runtime
// error: integer division/modulo with a possibly-zero divisor, a memory
// access (bounds), or a user call. Folds that discard a subexpression
// (x*0, constant selects) must not delete a fault the engine would raise.
func exprMayFault(e ir.Expr) bool {
	fault := false
	walkExpr(e, func(x ir.Expr) {
		switch ex := x.(type) {
		case *ir.ArrayRef:
			fault = true
		case *ir.CallExpr:
			if _, ok := ir.IsIntrinsic(ex.Fn); !ok {
				fault = true
			}
		case *ir.Binary:
			if ex.Typ == ir.I64 && (ex.Op == ir.OpDiv || ex.Op == ir.OpMod) {
				if v, _, ok := constValue(ex.Y); !ok || v == 0 {
					fault = true
				}
			}
		}
	})
	return fault
}

// evalBinary mirrors the execution engine's semantics exactly.
func evalBinary(op ir.BinOp, typ ir.Type, x, y float64) (float64, bool) {
	b2f := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	switch op {
	case ir.OpAdd:
		return x + y, true
	case ir.OpSub:
		return x - y, true
	case ir.OpMul:
		return x * y, true
	case ir.OpDiv:
		if typ == ir.F64 {
			return x / y, true
		}
		if int64(y) == 0 {
			return 0, false // preserve the runtime error
		}
		return float64(int64(x) / int64(y)), true
	case ir.OpMod:
		if int64(y) == 0 {
			return 0, false
		}
		return float64(int64(x) % int64(y)), true
	case ir.OpAnd:
		return float64(int64(x) & int64(y)), true
	case ir.OpOr:
		return float64(int64(x) | int64(y)), true
	case ir.OpXor:
		return float64(int64(x) ^ int64(y)), true
	case ir.OpShl:
		return float64(int64(x) << (uint64(int64(y)) & 63)), true
	case ir.OpShr:
		return float64(int64(x) >> (uint64(int64(y)) & 63)), true
	case ir.OpEq:
		return b2f(x == y), true
	case ir.OpNe:
		return b2f(x != y), true
	case ir.OpLt:
		return b2f(x < y), true
	case ir.OpLe:
		return b2f(x <= y), true
	case ir.OpGt:
		return b2f(x > y), true
	case ir.OpGe:
		return b2f(x >= y), true
	}
	return 0, false
}

// propagateCopies performs copy and constant propagation (cprop-registers)
// within straight-line statement segments: after `x = const` or `x = y`,
// subsequent reads of x become the constant or y until either side is
// reassigned. Propagation state is dropped at control-flow statements.
func propagateCopies(fn *ir.Func) {
	propagateSegment(fn.Body)
}

func propagateSegment(list []ir.Stmt) {
	vals := map[string]ir.Expr{} // var -> ConstInt/ConstFloat/VarRef
	invalidate := func(name string) {
		delete(vals, name)
		for k, v := range vals {
			if vr, ok := v.(*ir.VarRef); ok && vr.Name == name {
				delete(vals, k)
			}
		}
	}
	substitute := func(e ir.Expr) ir.Expr {
		return rewriteExpr(e, func(x ir.Expr) ir.Expr {
			if vr, ok := x.(*ir.VarRef); ok {
				if rep, ok := vals[vr.Name]; ok {
					return rep.Clone()
				}
			}
			return foldExpr(x)
		})
	}
	for _, s := range list {
		switch st := s.(type) {
		case *ir.Assign:
			st.Rhs = substitute(st.Rhs)
			// User calls may write global scalars; drop every fact (we
			// cannot distinguish locals from globals here).
			hadCall := analyzeExpr(st.Rhs).hasUserCall
			if hadCall {
				vals = map[string]ir.Expr{}
			}
			switch lhs := st.Lhs.(type) {
			case *ir.ArrayRef:
				lhs.Index = substitute(lhs.Index)
			case *ir.VarRef:
				invalidate(lhs.Name)
				switch rhs := st.Rhs.(type) {
				case *ir.ConstInt, *ir.ConstFloat:
					vals[lhs.Name] = rhs
				case *ir.VarRef:
					if rhs.Name != lhs.Name && !hadCall {
						vals[lhs.Name] = rhs
					}
				}
			}
		case *ir.If:
			st.Cond = substitute(st.Cond)
			propagateSegment(st.Then)
			propagateSegment(st.Else)
			// Assignments in either arm invalidate facts.
			killed := map[string]bool{}
			assignedVars(st.Then, killed)
			assignedVars(st.Else, killed)
			for k := range killed {
				invalidate(k)
			}
		case *ir.For:
			st.From = substitute(st.From)
			// To is re-evaluated each iteration; only propagate values not
			// killed by the body.
			killed := map[string]bool{st.Var: true}
			assignedVars(st.Body, killed)
			for k := range killed {
				invalidate(k)
			}
			st.To = substitute(st.To)
			propagateSegment(st.Body)
		case *ir.While:
			killed := map[string]bool{}
			assignedVars(st.Body, killed)
			for k := range killed {
				invalidate(k)
			}
			st.Cond = substitute(st.Cond)
			propagateSegment(st.Body)
		case *ir.Return:
			if st.Value != nil {
				st.Value = substitute(st.Value)
			}
		case *ir.CallStmt:
			for i, a := range st.Args {
				st.Args[i] = substitute(a)
			}
			// Calls may write global scalars; drop every fact.
			vals = map[string]ir.Expr{}
		}
	}
}
