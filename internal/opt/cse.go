package opt

import "peak/internal/ir"

// cseOpts selects the scope and memory model of common-subexpression
// elimination. Plain local CSE (within straight-line segments, table cleared
// at control flow) always runs as baseline behaviour; the tunable flags
// extend it:
//
//   - cse-follow-jumps keeps the table alive across two-armed conditionals
//     (killing only facts the arms invalidate);
//   - cse-skip-blocks does the same for one-armed conditionals;
//   - gcse seeds nested regions (loop bodies, conditional arms) with the
//     surviving outer table and enables reuse of memory loads;
//   - strict-aliasing lets a store kill only loads of the stored array
//     instead of all loads;
//   - force-mem also enables load reuse (its historical effect of forcing
//     memory operands into registers).
type cseOpts struct {
	followJumps bool
	skipBlocks  bool
	global      bool
	strictAlias bool
	loadReuse   bool
}

type cseEntry struct {
	temp  string
	vars  map[string]bool
	loads map[string]bool
}

type cseState struct {
	fn     *ir.Func
	prog   *ir.Program
	opts   cseOpts
	namer  *tempNamer
	table  map[string]*cseEntry
	worthy map[string]bool
	counts map[string]int
}

// eliminateCommonSubexprs runs CSE over the function body.
func eliminateCommonSubexprs(fn *ir.Func, prog *ir.Program, opts cseOpts, namer *tempNamer) {
	c := &cseState{
		fn: fn, prog: prog, opts: opts, namer: namer,
		table:  map[string]*cseEntry{},
		worthy: map[string]bool{},
		counts: map[string]int{},
	}
	// Pass 1: find expressions that occur at least twice while available.
	c.countStmts(fn.Body)
	// Pass 2: materialize temps and replace occurrences.
	c.table = map[string]*cseEntry{}
	fn.Body = c.rewriteStmts(fn.Body)
}

func (c *cseState) eligible(e ir.Expr) bool {
	switch e.(type) {
	case *ir.Binary, *ir.Unary:
	case *ir.ArrayRef:
		if !c.opts.loadReuse {
			return false
		}
	case *ir.CallExpr:
	default:
		return false
	}
	p := analyzeExpr(e)
	if p.hasUserCall {
		return false
	}
	if p.hasLoad && !c.opts.loadReuse {
		return false
	}
	// Cheap scalar expressions are not worth a temporary: recomputing
	// an add is as fast as the move, and the temp raises pressure.
	if !p.hasLoad && !p.hasCall && exprSize(e) < 4 {
		return false
	}
	return true
}

// --- kill operations (shared semantics between the two passes) -----------

func (c *cseState) killVar(name string) {
	for k, e := range c.table {
		if e.vars[name] {
			delete(c.table, k)
		}
	}
	for k := range c.counts {
		// counts are keyed identically; recompute lazily by clearing.
		_ = k
	}
}

func (c *cseState) killStore(arr string) {
	for k, e := range c.table {
		if len(e.loads) == 0 {
			continue
		}
		if !c.opts.strictAlias || e.loads[arr] {
			delete(c.table, k)
		}
	}
}

func (c *cseState) killCalls() {
	c.table = map[string]*cseEntry{}
}

// --- pass 1: occurrence counting ------------------------------------------

// countStmts approximates availability: it counts eligible expression keys,
// resetting nothing on kills (over-approximation; a "worthy" expression that
// is in fact killed merely yields an extra single-use temporary).
func (c *cseState) countStmts(list []ir.Stmt) {
	countExpr := func(e ir.Expr) {
		walkExpr(e, func(x ir.Expr) {
			if c.eligible(x) {
				k := exprKey(x)
				c.counts[k]++
				if c.counts[k] >= 2 {
					c.worthy[k] = true
				}
			}
		})
	}
	for _, s := range list {
		switch st := s.(type) {
		case *ir.Assign:
			countExpr(st.Rhs)
			if ar, ok := st.Lhs.(*ir.ArrayRef); ok {
				countExpr(ar.Index)
			}
		case *ir.If:
			countExpr(st.Cond)
			c.countStmts(st.Then)
			c.countStmts(st.Else)
		case *ir.For:
			countExpr(st.From)
			c.countStmts(st.Body)
		case *ir.While:
			c.countStmts(st.Body)
		case *ir.Return:
			if st.Value != nil {
				countExpr(st.Value)
			}
		case *ir.CallStmt:
			for _, a := range st.Args {
				countExpr(a)
			}
		}
	}
}

// --- pass 2: rewriting ------------------------------------------------------

func (c *cseState) rewriteStmts(list []ir.Stmt) []ir.Stmt {
	out := make([]ir.Stmt, 0, len(list))
	insert := func(s ir.Stmt) { out = append(out, s) }

	for _, s := range list {
		switch st := s.(type) {
		case *ir.Assign:
			st.Rhs = c.replace(st.Rhs, insert)
			switch lhs := st.Lhs.(type) {
			case *ir.ArrayRef:
				lhs.Index = c.replace(lhs.Index, insert)
				if analyzeExpr(st.Rhs).hasUserCall || analyzeExpr(lhs.Index).hasUserCall {
					c.killCalls()
				}
				c.killStore(lhs.Name)
			case *ir.VarRef:
				if analyzeExpr(st.Rhs).hasUserCall {
					c.killCalls()
				}
				c.killVar(lhs.Name)
			}
			out = append(out, st)
		case *ir.If:
			st.Cond = c.replace(st.Cond, insert)
			if analyzeExpr(st.Cond).hasUserCall {
				c.killCalls()
			}
			st.Then = c.rewriteNested(st.Then)
			st.Else = c.rewriteNested(st.Else)
			c.applyRegionKills(st.Then, st.Else)
			keep := (len(st.Else) > 0 && c.opts.followJumps) ||
				(len(st.Else) == 0 && c.opts.skipBlocks) || c.opts.global
			if !keep {
				c.table = map[string]*cseEntry{}
			}
			out = append(out, st)
		case *ir.For:
			st.From = c.replace(st.From, insert)
			c.killVar(st.Var)
			c.applyRegionKills(st.Body, nil)
			st.Body = c.rewriteNested(st.Body)
			c.applyRegionKills(st.Body, nil)
			c.killVar(st.Var)
			if !c.opts.global {
				c.table = map[string]*cseEntry{}
			}
			out = append(out, st)
		case *ir.While:
			c.applyRegionKills(st.Body, nil)
			st.Body = c.rewriteNested(st.Body)
			c.applyRegionKills(st.Body, nil)
			if !c.opts.global {
				c.table = map[string]*cseEntry{}
			}
			out = append(out, st)
		case *ir.Return:
			if st.Value != nil {
				st.Value = c.replace(st.Value, insert)
			}
			out = append(out, st)
		case *ir.CallStmt:
			for i, a := range st.Args {
				st.Args[i] = c.replace(a, insert)
			}
			c.killCalls()
			out = append(out, st)
		default:
			out = append(out, s)
		}
	}
	return out
}

// rewriteNested processes a nested region. Under gcse the current table
// (already purged of facts the region kills) seeds the region; otherwise the
// region starts empty. Entries created inside never escape.
func (c *cseState) rewriteNested(body []ir.Stmt) []ir.Stmt {
	if body == nil {
		return nil
	}
	saved := c.table
	seed := map[string]*cseEntry{}
	if c.opts.global {
		for k, v := range saved {
			seed[k] = v
		}
	}
	c.table = seed
	outBody := c.rewriteStmts(body)
	c.table = saved
	return outBody
}

// applyRegionKills removes table entries invalidated by assignments or
// stores within the given regions.
func (c *cseState) applyRegionKills(a, b []ir.Stmt) {
	vars := map[string]bool{}
	assignedVars(a, vars)
	assignedVars(b, vars)
	for v := range vars {
		c.killVar(v)
	}
	arrs := map[string]bool{}
	storedArrays(a, c.prog, arrs)
	storedArrays(b, c.prog, arrs)
	for arr := range arrs {
		c.killStore(arr)
	}
	if regionHasUserCall(a) || regionHasUserCall(b) {
		c.killCalls()
	}
}

func regionHasUserCall(list []ir.Stmt) bool {
	found := false
	var walk func(list []ir.Stmt)
	check := func(e ir.Expr) {
		if e != nil && analyzeExpr(e).hasUserCall {
			found = true
		}
	}
	walk = func(list []ir.Stmt) {
		for _, s := range list {
			switch st := s.(type) {
			case *ir.Assign:
				check(st.Rhs)
				check(st.Lhs)
			case *ir.If:
				check(st.Cond)
				walk(st.Then)
				walk(st.Else)
			case *ir.For:
				check(st.From)
				check(st.To)
				walk(st.Body)
			case *ir.While:
				check(st.Cond)
				walk(st.Body)
			case *ir.Return:
				check(st.Value)
			case *ir.CallStmt:
				if _, ok := ir.IsIntrinsic(st.Fn); !ok {
					found = true
				}
				for _, a := range st.Args {
					check(a)
				}
			}
		}
	}
	walk(list)
	return found
}

// replace rewrites e top-down: a whole-node table hit becomes a temp
// reference; the first occurrence of a worthy expression is materialized
// into a fresh temp (inserted via insert) and recorded.
func (c *cseState) replace(e ir.Expr, insert func(ir.Stmt)) ir.Expr {
	key := exprKey(e)
	if ent, ok := c.table[key]; ok {
		return &ir.VarRef{Name: ent.temp}
	}
	if c.worthy[key] && c.eligible(e) {
		// Analyze before rewriting children: the kill sets must name the
		// original variables and arrays, not the temps substituted below.
		p := analyzeExpr(e)
		typ := exprType(e, c.fn, c.prog)
		inner := c.replaceChildren(e, insert)
		t := c.namer.fresh(typ)
		insert(&ir.Assign{Lhs: &ir.VarRef{Name: t}, Rhs: inner})
		c.table[key] = &cseEntry{temp: t, vars: p.vars, loads: p.loads}
		return &ir.VarRef{Name: t}
	}
	return c.replaceChildren(e, insert)
}

func (c *cseState) replaceChildren(e ir.Expr, insert func(ir.Stmt)) ir.Expr {
	switch ex := e.(type) {
	case *ir.ArrayRef:
		ex.Index = c.replace(ex.Index, insert)
	case *ir.Unary:
		ex.X = c.replace(ex.X, insert)
	case *ir.Binary:
		ex.X = c.replace(ex.X, insert)
		ex.Y = c.replace(ex.Y, insert)
	case *ir.CallExpr:
		for i, a := range ex.Args {
			ex.Args[i] = c.replace(a, insert)
		}
	case *ir.Select:
		ex.Cond = c.replace(ex.Cond, insert)
		ex.X = c.replace(ex.X, insert)
		ex.Y = c.replace(ex.Y, insert)
	}
	return e
}
