// Package opt implements the optimizing compiler whose option space PEAK
// tunes: 38 named flags modeled after the GCC 3.3 "-O3" option set the paper
// explores (§5.2), each either a genuine HIR/LIR transformation or a
// code-generation policy with a principled cost-model effect.
//
// Compile applies the enabled flags to a function and produces a runnable
// sim.Version for a specific machine. Baseline cleanups that GCC does not
// expose as -O3 toggles (constant folding, dead-code elimination) always
// run, mirroring "-O" base behaviour.
package opt

import (
	"fmt"
	"sort"
	"strings"
)

// Flag identifies one optimization option.
type Flag int

// The 38 tunable optimization flags (names follow GCC 3.3).
const (
	FDeferPop Flag = iota
	FThreadJumps
	FBranchProbabilities
	FCSEFollowJumps
	FCSESkipBlocks
	FDeleteNullPointerChecks
	FExpensiveOptimizations
	FGCSE
	FGCSELoadMotion
	FGCSEStoreMotion
	FStrengthReduce
	FRerunCSEAfterLoop
	FRerunLoopOpt
	FCallerSaves
	FForceMem
	FPeephole2
	FScheduleInsns
	FScheduleInsns2
	FRegmove
	FStrictAliasing
	FDelayedBranch
	FReorderBlocks
	FAlignFunctions
	FAlignJumps
	FAlignLoops
	FAlignLabels
	FCrossjumping
	FIfConversion
	FIfConversion2
	FInlineFunctions
	FRenameRegisters
	FOptimizeSiblingCalls
	FOmitFramePointer
	FGuessBranchProbability
	FCPropRegisters
	FLoopOptimize
	FUnrollLoops
	FSchedInterblock

	// NumFlags is the size of the option space (n = 38, paper §5.2).
	NumFlags int = iota
)

var flagNames = [NumFlags]string{
	FDeferPop:                "defer-pop",
	FThreadJumps:             "thread-jumps",
	FBranchProbabilities:     "branch-probabilities",
	FCSEFollowJumps:          "cse-follow-jumps",
	FCSESkipBlocks:           "cse-skip-blocks",
	FDeleteNullPointerChecks: "delete-null-pointer-checks",
	FExpensiveOptimizations:  "expensive-optimizations",
	FGCSE:                    "gcse",
	FGCSELoadMotion:          "gcse-lm",
	FGCSEStoreMotion:         "gcse-sm",
	FStrengthReduce:          "strength-reduce",
	FRerunCSEAfterLoop:       "rerun-cse-after-loop",
	FRerunLoopOpt:            "rerun-loop-opt",
	FCallerSaves:             "caller-saves",
	FForceMem:                "force-mem",
	FPeephole2:               "peephole2",
	FScheduleInsns:           "schedule-insns",
	FScheduleInsns2:          "schedule-insns2",
	FRegmove:                 "regmove",
	FStrictAliasing:          "strict-aliasing",
	FDelayedBranch:           "delayed-branch",
	FReorderBlocks:           "reorder-blocks",
	FAlignFunctions:          "align-functions",
	FAlignJumps:              "align-jumps",
	FAlignLoops:              "align-loops",
	FAlignLabels:             "align-labels",
	FCrossjumping:            "crossjumping",
	FIfConversion:            "if-conversion",
	FIfConversion2:           "if-conversion2",
	FInlineFunctions:         "inline-functions",
	FRenameRegisters:         "rename-registers",
	FOptimizeSiblingCalls:    "optimize-sibling-calls",
	FOmitFramePointer:        "omit-frame-pointer",
	FGuessBranchProbability:  "guess-branch-probability",
	FCPropRegisters:          "cprop-registers",
	FLoopOptimize:            "loop-optimize",
	FUnrollLoops:             "unroll-loops",
	FSchedInterblock:         "sched-interblock",
}

func (f Flag) String() string {
	if f >= 0 && int(f) < NumFlags {
		return flagNames[f]
	}
	return fmt.Sprintf("flag(%d)", int(f))
}

// FlagByName returns the flag with the given GCC-style name.
func FlagByName(name string) (Flag, bool) {
	name = strings.TrimPrefix(name, "-f")
	for i, n := range flagNames {
		if n == name {
			return Flag(i), true
		}
	}
	return 0, false
}

// AllFlags returns all flags in declaration order.
func AllFlags() []Flag {
	out := make([]Flag, NumFlags)
	for i := range out {
		out[i] = Flag(i)
	}
	return out
}

// FlagSet is a set of enabled optimization flags.
type FlagSet uint64

// O3 returns the full option set ("-O3" enables all 38 options).
func O3() FlagSet {
	return FlagSet(1<<uint(NumFlags)) - 1
}

// O0 returns the empty option set.
func O0() FlagSet { return 0 }

// Has reports whether f is enabled.
func (s FlagSet) Has(f Flag) bool { return s&(1<<uint(f)) != 0 }

// With returns s with f enabled.
func (s FlagSet) With(f Flag) FlagSet { return s | (1 << uint(f)) }

// Without returns s with f disabled.
func (s FlagSet) Without(f Flag) FlagSet { return s &^ (1 << uint(f)) }

// Count returns the number of enabled flags.
func (s FlagSet) Count() int {
	n := 0
	for s != 0 {
		s &= s - 1
		n++
	}
	return n
}

// Enabled returns the enabled flags in declaration order.
func (s FlagSet) Enabled() []Flag {
	var out []Flag
	for i := 0; i < NumFlags; i++ {
		if s.Has(Flag(i)) {
			out = append(out, Flag(i))
		}
	}
	return out
}

// String renders the set as "-fa -fb ..." in sorted-name order, or "-O0".
func (s FlagSet) String() string {
	if s == 0 {
		return "-O0"
	}
	if s == O3() {
		return "-O3"
	}
	names := make([]string, 0, s.Count())
	for _, f := range s.Enabled() {
		names = append(names, "-f"+f.String())
	}
	sort.Strings(names)
	return strings.Join(names, " ")
}

// ParseFlagSet parses "-O3", "-O0", or a space-separated list of
// "-f<name>" / "<name>" tokens.
func ParseFlagSet(s string) (FlagSet, error) {
	s = strings.TrimSpace(s)
	switch s {
	case "-O3", "O3":
		return O3(), nil
	case "-O0", "O0", "":
		return O0(), nil
	}
	var set FlagSet
	for _, tok := range strings.Fields(s) {
		f, ok := FlagByName(tok)
		if !ok {
			return 0, fmt.Errorf("opt: unknown flag %q", tok)
		}
		set = set.With(f)
	}
	return set, nil
}
