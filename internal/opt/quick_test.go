package opt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"peak/internal/ir"
)

// randExpr builds a random pure scalar expression over variables a,b,c.
func randExpr(rng *rand.Rand, depth int) ir.Expr {
	if depth <= 0 || rng.Intn(3) == 0 {
		switch rng.Intn(4) {
		case 0:
			return &ir.ConstInt{V: int64(rng.Intn(21) - 10)}
		case 1:
			return &ir.ConstFloat{V: float64(rng.Intn(9))/2 - 2}
		default:
			return &ir.VarRef{Name: string(rune('a' + rng.Intn(3)))}
		}
	}
	ops := []ir.BinOp{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor,
		ir.OpShl, ir.OpShr, ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe}
	op := ops[rng.Intn(len(ops))]
	typ := ir.I64
	if rng.Intn(4) == 0 && op <= ir.OpMul {
		typ = ir.F64
	}
	return &ir.Binary{Op: op, Typ: typ,
		X: randExpr(rng, depth-1), Y: randExpr(rng, depth-1)}
}

// evalRef interprets an expression directly (the semantic oracle).
func evalRef(e ir.Expr, env map[string]float64) (float64, bool) {
	switch ex := e.(type) {
	case *ir.ConstInt:
		return float64(ex.V), true
	case *ir.ConstFloat:
		return ex.V, true
	case *ir.VarRef:
		return env[ex.Name], true
	case *ir.Unary:
		v, ok := evalRef(ex.X, env)
		if !ok {
			return 0, false
		}
		if ex.Op == ir.OpNeg {
			return -v, true
		}
		if v == 0 {
			return 1, true
		}
		return 0, true
	case *ir.Binary:
		x, ok1 := evalRef(ex.X, env)
		y, ok2 := evalRef(ex.Y, env)
		if !ok1 || !ok2 {
			return 0, false
		}
		return evalBinary(ex.Op, ex.Typ, x, y)
	case *ir.Select:
		c, ok := evalRef(ex.Cond, env)
		if !ok {
			return 0, false
		}
		if c != 0 {
			return evalRef(ex.X, env)
		}
		return evalRef(ex.Y, env)
	}
	return 0, false
}

// TestQuickFoldPreservesSemantics: constant folding and algebraic
// simplification must never change an expression's value.
func TestQuickFoldPreservesSemantics(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		env := map[string]float64{
			"a": float64(rng.Intn(40) - 20),
			"b": float64(rng.Intn(40) - 20),
			"c": float64(rng.Intn(7)) / 2,
		}
		e := randExpr(rng, 4)
		before, okB := evalRef(e, env)
		folded := rewriteExpr(e.Clone(), foldExpr)
		after, okA := evalRef(folded, env)
		if okB != okA {
			// Folding must not introduce or remove faults (div-by-zero is
			// deliberately left unfolded).
			return false
		}
		if !okB {
			return true
		}
		return before == after || (before != before && after != after) // NaN==NaN
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickExprKeyCanonical: structurally equal expressions share a key;
// commutative operand order does not matter; different constants differ.
func TestQuickExprKeyCanonical(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := randExpr(rng, 4)
		if exprKey(e) != exprKey(e.Clone()) {
			return false
		}
		// Swap operands of a commutative top-level op.
		if bin, ok := e.(*ir.Binary); ok && bin.Op.Commutative() {
			swapped := &ir.Binary{Op: bin.Op, Typ: bin.Typ, X: bin.Y.Clone(), Y: bin.X.Clone()}
			if exprKey(bin) != exprKey(swapped) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	if exprKey(&ir.ConstInt{V: 3}) == exprKey(&ir.ConstInt{V: 4}) {
		t.Error("distinct constants share a key")
	}
	// Non-commutative operands must not be canonicalized.
	a, b := &ir.VarRef{Name: "a"}, &ir.VarRef{Name: "b"}
	sub1 := &ir.Binary{Op: ir.OpSub, Typ: ir.I64, X: a, Y: b}
	sub2 := &ir.Binary{Op: ir.OpSub, Typ: ir.I64, X: b, Y: a}
	if exprKey(sub1) == exprKey(sub2) {
		t.Error("a-b and b-a share a key")
	}
	// Integer and float ops of the same shape must differ (division!).
	di := &ir.Binary{Op: ir.OpDiv, Typ: ir.I64, X: a, Y: b}
	df := &ir.Binary{Op: ir.OpDiv, Typ: ir.F64, X: a, Y: b}
	if exprKey(di) == exprKey(df) {
		t.Error("int and float division share a key")
	}
}

// TestQuickEvalBinaryMatchesEngine: the compile-time folder must agree with
// the execution engine's semantics on every operator (the engine's switch
// lives in sim; both were written against the same spec — this pins the
// folder half).
func TestQuickEvalBinaryTotalOnSafeInputs(t *testing.T) {
	f := func(xi, yi int16, opIdx uint8) bool {
		ops := []ir.BinOp{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr,
			ir.OpXor, ir.OpShl, ir.OpShr, ir.OpEq, ir.OpNe, ir.OpLt,
			ir.OpLe, ir.OpGt, ir.OpGe}
		op := ops[int(opIdx)%len(ops)]
		x, y := float64(xi), float64(yi)
		v, ok := evalBinary(op, ir.I64, x, y)
		if !ok {
			return false // these ops never fault
		}
		// Comparisons yield 0/1.
		if op.IsComparison() && v != 0 && v != 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	// Division faults exactly on a zero divisor.
	if _, ok := evalBinary(ir.OpDiv, ir.I64, 5, 0); ok {
		t.Error("integer division by zero folded")
	}
	if _, ok := evalBinary(ir.OpMod, ir.I64, 5, 0); ok {
		t.Error("integer modulo by zero folded")
	}
	if v, ok := evalBinary(ir.OpDiv, ir.F64, 5, 0); !ok || !math.IsInf(v, 1) {
		t.Error("float division by zero must fold to +Inf")
	}
}
