package opt

import "peak/internal/ir"

// schedOpts configures the list scheduler.
type schedOpts struct {
	// interblock lets loads migrate into a unique jump-predecessor
	// (sched-interblock).
	interblock bool
	// strictAlias relaxes memory ordering to same-array dependences.
	strictAlias bool
	// spillAware weights latencies of spilled registers (schedule-insns2
	// runs post-allocation with this enabled).
	spillAware []bool // Spilled[] from a prior allocation, or nil
	// mach-dependent latencies
	latency func(ir.Opcode) int64
	// extraSpillLat is added per spilled operand when spillAware is set.
	extraSpillLat int64
}

// remapUses rewrites the source registers of an instruction through f
// (destination registers are untouched).
func remapUses(in *ir.Instr, f func(ir.Reg) ir.Reg) {
	r := func(x ir.Reg) ir.Reg {
		if x == ir.NoReg {
			return x
		}
		return f(x)
	}
	switch in.Op {
	case ir.LMovI, ir.LMovF, ir.LNop, ir.LCount:
	case ir.LCall:
		for i := range in.CallArgs {
			in.CallArgs[i] = r(in.CallArgs[i])
		}
	case ir.LStore:
		in.A = r(in.A)
		in.Src = r(in.Src)
	case ir.LSelect:
		in.A = r(in.A)
		in.B = r(in.B)
		in.Src = r(in.Src)
	default:
		in.A = r(in.A)
		in.B = r(in.B)
	}
}

// renameRegisters performs local register renaming (rename-registers):
// within each block, a definition of register R that is followed by a later
// redefinition of R in the same block gets a fresh register, with the
// intervening uses patched. This removes anti- and output-dependences that
// would otherwise constrain the scheduler, at the cost of longer live-range
// pressure.
func renameRegisters(f *ir.LFunc) {
	for _, b := range f.Blocks {
		// For each register, find def positions in this block.
		defsAt := map[ir.Reg][]int{}
		for i := range b.Instrs {
			if d := b.Instrs[i].Def(); d != ir.NoReg {
				defsAt[d] = append(defsAt[d], i)
			}
		}
		for reg, positions := range defsAt {
			// Every def except the last can be renamed.
			for pi := 0; pi < len(positions)-1; pi++ {
				i, j := positions[pi], positions[pi+1]
				fresh := ir.Reg(f.NumRegs)
				f.NumRegs++
				f.FloatReg = append(f.FloatReg, f.FloatReg[reg])
				b.Instrs[i].Dst = fresh
				for k := i + 1; k <= j; k++ {
					// Instruction j itself may read the old value.
					remapUses(&b.Instrs[k], func(x ir.Reg) ir.Reg {
						if x == reg {
							return fresh
						}
						return x
					})
					if k < j {
						if d := b.Instrs[k].Def(); d == reg {
							break // should not happen (positions are ordered)
						}
					}
				}
			}
		}
	}
}

// depKind classifies why instruction j must follow instruction i.
type depEdge struct {
	from, to int
}

// scheduleBlocks runs list scheduling within every block, ordering
// instructions to hide result latencies (the execution engine stalls when a
// result is consumed before its latency elapses).
func scheduleBlocks(f *ir.LFunc, opts schedOpts) {
	for _, b := range f.Blocks {
		scheduleBlock(f, b, opts)
	}
	if opts.interblock {
		hoistLoadsInterblock(f, opts)
	}
}

func isMem(op ir.Opcode) bool { return op == ir.LLoad || op == ir.LStore }

func memConflict(a, b *ir.Instr, strict bool) bool {
	if a.Op == ir.LCall || b.Op == ir.LCall {
		return isMem(a.Op) || isMem(b.Op) || a.Op == ir.LCall && b.Op == ir.LCall
	}
	if !isMem(a.Op) || !isMem(b.Op) {
		return false
	}
	if a.Op == ir.LLoad && b.Op == ir.LLoad {
		return false
	}
	if strict {
		return a.Arr == b.Arr
	}
	return true
}

func scheduleBlock(f *ir.LFunc, b *ir.Block, opts schedOpts) {
	n := len(b.Instrs)
	if n < 3 {
		return
	}
	ins := b.Instrs

	// Build dependence edges.
	succ := make([][]int, n)
	npred := make([]int, n)
	addEdge := func(i, j int) {
		succ[i] = append(succ[i], j)
		npred[j]++
	}
	lastDef := map[ir.Reg]int{}
	lastUses := map[ir.Reg][]int{}
	var uses []ir.Reg
	var memOps []int
	var lastCall = -1
	for j := 0; j < n; j++ {
		in := &ins[j]
		uses = in.Uses(uses[:0])
		for _, u := range uses {
			if i, ok := lastDef[u]; ok {
				addEdge(i, j) // RAW
			}
		}
		if d := in.Def(); d != ir.NoReg {
			for _, i := range lastUses[d] {
				if i != j {
					addEdge(i, j) // WAR
				}
			}
			if i, ok := lastDef[d]; ok {
				addEdge(i, j) // WAW
			}
			lastDef[d] = j
			lastUses[d] = nil
		}
		for _, u := range uses {
			lastUses[u] = append(lastUses[u], j)
		}
		if isMem(in.Op) || in.Op == ir.LCall {
			for _, i := range memOps {
				if memConflict(&ins[i], in, opts.strictAlias) {
					addEdge(i, j)
				}
			}
			memOps = append(memOps, j)
		}
		if in.Op == ir.LCall {
			// Calls are barriers against other calls (and memory, above).
			if lastCall >= 0 {
				addEdge(lastCall, j)
			}
			lastCall = j
		}
	}

	// Priorities: critical-path height with latencies.
	lat := func(j int) int64 {
		l := int64(1)
		if opts.latency != nil {
			l += opts.latency(ins[j].Op)
		}
		if opts.spillAware != nil {
			uses := ins[j].Uses(nil)
			for _, u := range uses {
				if int(u) < len(opts.spillAware) && opts.spillAware[u] {
					l += opts.extraSpillLat
				}
			}
		}
		return l
	}
	height := make([]int64, n)
	for j := n - 1; j >= 0; j-- {
		h := lat(j)
		for _, s := range succ[j] {
			if height[s]+lat(j) > h {
				h = height[s] + lat(j)
			}
		}
		height[j] = h
	}

	// Cycle-aware list scheduling: among dependence-ready instructions,
	// prefer the one that can issue earliest (filling stall slots with
	// independent work, which also lets cache misses overlap); break ties
	// by critical-path height, then original order for determinism.
	ready := make([]int, 0, n)
	npredLeft := append([]int(nil), npred...)
	for j := 0; j < n; j++ {
		if npredLeft[j] == 0 {
			ready = append(ready, j)
		}
	}
	regReady := map[ir.Reg]int64{}
	var curTime int64
	var opBuf []ir.Reg
	estIssue := func(j int) int64 {
		t := curTime
		opBuf = ins[j].Uses(opBuf[:0])
		for _, u := range opBuf {
			if r := regReady[u]; r > t {
				t = r
			}
		}
		return t
	}
	order := make([]int, 0, n)
	for len(ready) > 0 {
		best := 0
		bestIssue := estIssue(ready[0])
		for k := 1; k < len(ready); k++ {
			a := ready[k]
			ia := estIssue(a)
			b := ready[best]
			if ia < bestIssue ||
				(ia == bestIssue && (height[a] > height[b] ||
					(height[a] == height[b] && a < b))) {
				best, bestIssue = k, ia
			}
		}
		j := ready[best]
		ready = append(ready[:best], ready[best+1:]...)
		order = append(order, j)
		curTime = bestIssue + 1
		if d := ins[j].Def(); d != ir.NoReg {
			l := int64(0)
			if opts.latency != nil {
				l = opts.latency(ins[j].Op)
			}
			regReady[d] = bestIssue + 1 + l
		}
		for _, s := range succ[j] {
			npredLeft[s]--
			if npredLeft[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	if len(order) != n {
		return // cycle (impossible); keep original order
	}
	scheduled := make([]ir.Instr, n)
	for k, j := range order {
		scheduled[k] = ins[j]
	}
	b.Instrs = scheduled
}

// hoistLoadsInterblock moves loads whose operands are available at the end
// of a unique jump-predecessor into that predecessor, so their latency
// overlaps the control transfer. Only loads with no prior memory conflict
// and no operand defined earlier in their own block are moved.
func hoistLoadsInterblock(f *ir.LFunc, opts schedOpts) {
	// predecessors
	preds := map[int][]*ir.Block{}
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			preds[s] = append(preds[s], b)
		}
	}
	for _, b := range f.Blocks {
		ps := preds[b.ID]
		if len(ps) != 1 || ps[0].Term.Kind != ir.TermJump || ps[0] == b {
			continue
		}
		pred := ps[0]
		moved := true
		for moved {
			moved = false
			for i := 0; i < len(b.Instrs); i++ {
				in := b.Instrs[i]
				if in.Op != ir.LLoad {
					continue
				}
				safe := true
				for k := 0; k < i; k++ {
					prev := &b.Instrs[k]
					if prev.Def() == in.A || prev.Def() == in.Dst ||
						isMem(prev.Op) || prev.Op == ir.LCall {
						safe = false
						break
					}
					// WAR on the load's destination.
					for _, u := range prev.Uses(nil) {
						if u == in.Dst {
							safe = false
							break
						}
					}
					if !safe {
						break
					}
				}
				if !safe {
					continue
				}
				// The predecessor must not redefine the index register
				// after... it cannot: moving to the end of pred keeps all
				// pred defs before the load. Memory conflicts in pred are
				// irrelevant (the load executed after them before, too).
				pred.Instrs = append(pred.Instrs, in)
				b.Instrs = append(b.Instrs[:i], b.Instrs[i+1:]...)
				moved = true
				break
			}
		}
	}
}
