package opt

import "peak/internal/ir"

// maxInlineSize bounds the body size (statement + expression nodes) of
// inlinable callees.
const maxInlineSize = 48

// inlineCalls replaces calls to small, straight-line program functions with
// their bodies (inline-functions). Only calls in "statement position" are
// inlined — the full right-hand side of an assignment, a return value, or a
// call statement — so expression evaluation order is preserved. Eligible
// callees consist of scalar assignments followed by a single Return, contain
// no loops, conditionals, stores, or further user calls, and are not
// recursive.
func inlineCalls(fn *ir.Func, prog *ir.Program, namer *tempNamer) {
	fn.Body = inlineList(fn.Body, fn, prog, namer)
}

func inlineList(list []ir.Stmt, fn *ir.Func, prog *ir.Program, namer *tempNamer) []ir.Stmt {
	out := make([]ir.Stmt, 0, len(list))
	for _, s := range list {
		switch st := s.(type) {
		case *ir.Assign:
			if call, ok := st.Rhs.(*ir.CallExpr); ok {
				if body, result, ok := expandCall(call, fn, prog, namer); ok {
					out = append(out, body...)
					st.Rhs = result
				}
			}
			out = append(out, st)
		case *ir.Return:
			if call, ok := st.Value.(*ir.CallExpr); ok && st.Value != nil {
				if body, result, ok := expandCall(call, fn, prog, namer); ok {
					out = append(out, body...)
					st.Value = result
				}
			}
			out = append(out, st)
		case *ir.CallStmt:
			call := &ir.CallExpr{Fn: st.Fn, Args: st.Args}
			if body, _, ok := expandCall(call, fn, prog, namer); ok {
				out = append(out, body...)
				continue
			}
			out = append(out, st)
		case *ir.If:
			st.Then = inlineList(st.Then, fn, prog, namer)
			st.Else = inlineList(st.Else, fn, prog, namer)
			out = append(out, st)
		case *ir.For:
			st.Body = inlineList(st.Body, fn, prog, namer)
			out = append(out, st)
		case *ir.While:
			st.Body = inlineList(st.Body, fn, prog, namer)
			out = append(out, st)
		default:
			out = append(out, s)
		}
	}
	return out
}

// expandCall inlines one call. It returns the statements computing the body
// and the expression holding the result value.
func expandCall(call *ir.CallExpr, fn *ir.Func, prog *ir.Program, namer *tempNamer) ([]ir.Stmt, ir.Expr, bool) {
	if _, intrinsic := ir.IsIntrinsic(call.Fn); intrinsic {
		return nil, nil, false
	}
	callee, ok := prog.Funcs[call.Fn]
	if !ok || !inlinable(callee) {
		return nil, nil, false
	}
	// Count scalar params.
	var scalarParams []ir.Param
	for _, p := range callee.Params {
		if p.IsArray {
			return nil, nil, false // array params would need name remapping
		}
		scalarParams = append(scalarParams, p)
	}
	if len(scalarParams) != len(call.Args) {
		return nil, nil, false
	}

	// Bind arguments to fresh temps (evaluated in order at the call site).
	rename := map[string]string{}
	var out []ir.Stmt
	for i, p := range scalarParams {
		t := namer.fresh(p.Typ)
		rename[p.Name] = t
		out = append(out, &ir.Assign{Lhs: &ir.VarRef{Name: t}, Rhs: call.Args[i].Clone()})
	}
	for _, l := range callee.Locals {
		t := namer.fresh(l.Typ)
		rename[l.Name] = t
		// Locals start at zero in the callee.
		out = append(out, &ir.Assign{Lhs: &ir.VarRef{Name: t}, Rhs: &ir.ConstInt{V: 0}})
	}

	var result ir.Expr = &ir.ConstInt{V: 0}
	for _, s := range callee.Body {
		switch st := s.(type) {
		case *ir.Assign:
			cp := st.Clone().(*ir.Assign)
			renameInAssign(cp, rename)
			out = append(out, cp)
		case *ir.Return:
			if st.Value != nil {
				result = renameInExpr(st.Value.Clone(), rename)
			}
			return out, result, true
		}
	}
	return out, result, true
}

// inlinable reports whether callee is straight-line scalar code ending in a
// single optional Return.
func inlinable(callee *ir.Func) bool {
	size := 0
	for i, s := range callee.Body {
		switch st := s.(type) {
		case *ir.Assign:
			if _, ok := st.Lhs.(*ir.VarRef); !ok {
				return false // stores would need alias bookkeeping
			}
			if analyzeExpr(st.Rhs).hasUserCall {
				return false
			}
			size += 1 + exprSize(st.Rhs)
		case *ir.Return:
			if i != len(callee.Body)-1 {
				return false
			}
			if st.Value != nil {
				if analyzeExpr(st.Value).hasUserCall {
					return false
				}
				size += exprSize(st.Value)
			}
		default:
			return false
		}
	}
	return size <= maxInlineSize
}

func renameInExpr(e ir.Expr, rename map[string]string) ir.Expr {
	return rewriteExpr(e, func(x ir.Expr) ir.Expr {
		if vr, ok := x.(*ir.VarRef); ok {
			if t, ok := rename[vr.Name]; ok {
				return &ir.VarRef{Name: t}
			}
		}
		return x
	})
}

func renameInAssign(a *ir.Assign, rename map[string]string) {
	a.Rhs = renameInExpr(a.Rhs, rename)
	switch lhs := a.Lhs.(type) {
	case *ir.VarRef:
		if t, ok := rename[lhs.Name]; ok {
			a.Lhs = &ir.VarRef{Name: t}
		}
	case *ir.ArrayRef:
		lhs.Index = renameInExpr(lhs.Index, rename)
	}
}
