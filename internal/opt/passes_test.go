package opt

import (
	"testing"

	"peak/internal/ir"
	"peak/internal/irbuild"
	"peak/internal/lower"
)

func countHIR[T ir.Stmt](list []ir.Stmt) int {
	n := 0
	var walk func([]ir.Stmt)
	walk = func(list []ir.Stmt) {
		for _, s := range list {
			if _, ok := s.(T); ok {
				n++
			}
			switch st := s.(type) {
			case *ir.If:
				walk(st.Then)
				walk(st.Else)
			case *ir.For:
				walk(st.Body)
			case *ir.While:
				walk(st.Body)
			}
		}
	}
	walk(list)
	return n
}

func countExprNodes(list []ir.Stmt, pred func(ir.Expr) bool) int {
	n := 0
	rewriteStmtExprs(list, func(e ir.Expr) ir.Expr {
		if pred(e) {
			n++
		}
		return e
	})
	return n
}

func TestUnrollStructure(t *testing.T) {
	prog := ir.NewProgram()
	prog.AddArray("u", ir.F64, 64)
	b := irbuild.NewFunc("f")
	b.ScalarParam("n", ir.I64)
	fn := b.Body(
		b.For("i", b.I(0), b.V("n"), 1,
			b.Set(b.At("u", b.V("i")), b.F(1)),
		),
	)
	prog.AddFunc(fn)
	work := fn.Clone()
	unrollLoops(work, prog, newTempNamer(work))
	if countHIR[*ir.For](work.Body) != 0 {
		t.Error("For loop not unrolled")
	}
	if got := countHIR[*ir.While](work.Body); got != 2 {
		t.Errorf("unrolled shape has %d While loops, want 2 (main + remainder)", got)
	}
	// Four body copies in the main loop + one in the remainder.
	stores := 0
	var walk func([]ir.Stmt)
	walk = func(list []ir.Stmt) {
		for _, s := range list {
			switch st := s.(type) {
			case *ir.Assign:
				if ar, ok := st.Lhs.(*ir.ArrayRef); ok && ar.Name == "u" {
					stores++
				}
			case *ir.If:
				walk(st.Then)
				walk(st.Else)
			case *ir.While:
				walk(st.Body)
			case *ir.For:
				walk(st.Body)
			}
		}
	}
	walk(work.Body)
	if stores != unrollFactor+1 {
		t.Errorf("store copies = %d, want %d", stores, unrollFactor+1)
	}
}

func TestUnrollSkipsIllegalLoops(t *testing.T) {
	prog := ir.NewProgram()
	b := irbuild.NewFunc("f")
	b.ScalarParam("n", ir.I64).Local("s", ir.I64)
	fn := b.Body(
		b.For("i", b.I(0), b.V("n"), 1,
			b.If(b.Gt(b.V("s"), b.I(10)), b.Break()),
			b.Set(b.V("s"), b.Add(b.V("s"), b.V("i"))),
		),
		b.Ret(b.V("s")),
	)
	prog.AddFunc(fn)
	work := fn.Clone()
	unrollLoops(work, prog, newTempNamer(work))
	if countHIR[*ir.For](work.Body) != 1 {
		t.Error("loop with Break must not be unrolled")
	}
}

func TestIfConversionProducesSelect(t *testing.T) {
	prog := ir.NewProgram()
	b := irbuild.NewFunc("f")
	b.ScalarParam("x", ir.F64).Local("m", ir.F64)
	fn := b.Body(
		b.If(b.FGt(b.V("x"), b.V("m")),
			b.Set(b.V("m"), b.V("x")),
		),
		b.Ret(b.V("m")),
	)
	prog.AddFunc(fn)
	work := fn.Clone()
	convertIfs(work, prog, ifConvOpts{basic: true}, newTempNamer(work))
	if countHIR[*ir.If](work.Body) != 0 {
		t.Error("max pattern not converted")
	}
	selects := 0
	rewriteStmtExprs(work.Body, func(e ir.Expr) ir.Expr {
		if _, ok := e.(*ir.Select); ok {
			selects++
		}
		return e
	})
	if selects != 1 {
		t.Errorf("selects = %d, want 1", selects)
	}
}

func TestIfConversionRefusesFaultingSpeculation(t *testing.T) {
	prog := ir.NewProgram()
	prog.AddArray("a", ir.F64, 8)
	b := irbuild.NewFunc("f")
	b.ScalarParam("i", ir.I64).Local("m", ir.F64)
	fn := b.Body(
		// The load a[i] is only reachable when i < 8; converting would
		// speculate a possibly out-of-bounds load.
		b.If(b.Lt(b.V("i"), b.I(8)),
			b.Set(b.V("m"), b.At("a", b.V("i"))),
		),
		b.Ret(b.V("m")),
	)
	prog.AddFunc(fn)
	work := fn.Clone()
	convertIfs(work, prog, ifConvOpts{basic: true, aggressive: true}, newTempNamer(work))
	if countHIR[*ir.If](work.Body) != 1 {
		t.Error("unsafe load speculation was allowed")
	}
}

func TestIfConversion2DominatingLoad(t *testing.T) {
	prog := ir.NewProgram()
	prog.AddArray("a", ir.F64, 8)
	b := irbuild.NewFunc("f")
	b.ScalarParam("i", ir.I64).Local("m", ir.F64)
	fn := b.Body(
		// a[i] appears in the condition, so speculating the identical
		// load in the arm is safe (the classic max-reduction pattern).
		b.If(b.FGt(b.At("a", b.V("i")), b.V("m")),
			b.Set(b.V("m"), b.At("a", b.V("i"))),
		),
		b.Ret(b.V("m")),
	)
	prog.AddFunc(fn)

	basic := fn.Clone()
	convertIfs(basic, prog, ifConvOpts{basic: true}, newTempNamer(basic))
	if countHIR[*ir.If](basic.Body) != 1 {
		t.Error("plain if-conversion must not speculate loads")
	}

	aggr := fn.Clone()
	convertIfs(aggr, prog, ifConvOpts{basic: true, aggressive: true}, newTempNamer(aggr))
	if countHIR[*ir.If](aggr.Body) != 0 {
		t.Error("if-conversion2 should convert the dominated-load pattern")
	}
}

func TestLICMHoistsWithGuard(t *testing.T) {
	prog := ir.NewProgram()
	prog.AddArray("c", ir.F64, 8)
	prog.AddArray("o", ir.F64, 64)
	b := irbuild.NewFunc("f")
	b.ScalarParam("n", ir.I64).ScalarParam("k", ir.F64)
	fn := b.Body(
		b.For("i", b.I(0), b.V("n"), 1,
			b.Set(b.At("o", b.V("i")),
				b.FMul(b.At("c", b.I(3)), b.FMul(b.V("k"), b.V("k")))),
		),
	)
	prog.AddFunc(fn)
	work := fn.Clone()
	hoistInvariants(work, prog, licmOpts{loads: true, strictAlias: true}, newTempNamer(work))
	// The loop must now sit inside a zero-trip guard with preheader
	// assignments in front.
	guard, ok := work.Body[0].(*ir.If)
	if !ok {
		t.Fatalf("no guard; body[0] = %T", work.Body[0])
	}
	if countHIR[*ir.For](guard.Then) != 1 {
		t.Error("loop not inside the guard")
	}
	if len(guard.Then) < 2 {
		t.Error("no hoisted preheader assignments")
	}
}

func TestLICMRespectsStores(t *testing.T) {
	prog := ir.NewProgram()
	prog.AddArray("c", ir.F64, 8)
	b := irbuild.NewFunc("f")
	b.ScalarParam("n", ir.I64).Local("s", ir.F64)
	fn := b.Body(
		b.For("i", b.I(0), b.V("n"), 1,
			b.Set(b.V("s"), b.FAdd(b.V("s"), b.At("c", b.I(0)))),
			b.Set(b.At("c", b.I(0)), b.V("s")),
		),
		b.Ret(b.V("s")),
	)
	prog.AddFunc(fn)
	work := fn.Clone()
	// Without store motion, the load of the stored array must not move.
	hoistInvariants(work, prog, licmOpts{loads: true, strictAlias: true}, newTempNamer(work))
	if _, isIf := work.Body[0].(*ir.If); isIf {
		guard := work.Body[0].(*ir.If)
		for _, s := range guard.Then {
			if a, ok := s.(*ir.Assign); ok {
				if p := analyzeExpr(a.Rhs); p.loads["c"] {
					t.Error("load of a stored array was hoisted")
				}
			}
		}
	}
}

func TestStoreMotionPromotesAccumulator(t *testing.T) {
	prog := ir.NewProgram()
	prog.AddArray("acc", ir.F64, 4)
	prog.AddArray("x", ir.F64, 64)
	b := irbuild.NewFunc("f")
	b.ScalarParam("n", ir.I64)
	fn := b.Body(
		b.For("i", b.I(0), b.V("n"), 1,
			b.Set(b.At("acc", b.I(0)),
				b.FAdd(b.At("acc", b.I(0)), b.At("x", b.V("i")))),
		),
	)
	prog.AddFunc(fn)
	work := fn.Clone()
	hoistInvariants(work, prog, licmOpts{loads: true, stores: true, strictAlias: true}, newTempNamer(work))
	guard, ok := work.Body[0].(*ir.If)
	if !ok {
		t.Fatal("no guard produced")
	}
	// Inside the guarded region the loop body must no longer store acc;
	// a post-loop store writes the promoted scalar back.
	loop := guard.Then[1].(*ir.For)
	stored := map[string]bool{}
	storedArrays(loop.Body, prog, stored)
	if stored["acc"] {
		t.Error("accumulator store not promoted out of the loop")
	}
	last, ok := guard.Then[len(guard.Then)-1].(*ir.Assign)
	if !ok {
		t.Fatal("no post-loop store")
	}
	if ar, ok := last.Lhs.(*ir.ArrayRef); !ok || ar.Name != "acc" {
		t.Error("post-loop store does not target acc")
	}
}

func TestStrengthReduction(t *testing.T) {
	prog := ir.NewProgram()
	prog.AddArray("a", ir.F64, 256)
	b := irbuild.NewFunc("f")
	b.ScalarParam("n", ir.I64).Local("s", ir.F64)
	fn := b.Body(
		b.For("i", b.I(0), b.V("n"), 1,
			b.Set(b.V("s"), b.FAdd(b.V("s"), b.At("a", b.Mul(b.V("i"), b.I(4))))),
		),
		b.Ret(b.V("s")),
	)
	prog.AddFunc(fn)
	work := fn.Clone()
	reduceStrength(work, prog, false, newTempNamer(work))
	intMuls := func(list []ir.Stmt) int {
		return countExprNodes(list, func(e ir.Expr) bool {
			bin, ok := e.(*ir.Binary)
			return ok && bin.Op == ir.OpMul && bin.Typ == ir.I64
		})
	}
	// The body multiply became an additive recurrence; the preheader
	// product 0*4 folds away entirely.
	if got := intMuls(work.Body); got != 0 {
		t.Errorf("integer multiplies after strength reduction = %d, want 0", got)
	}
	loop := findFor(work.Body)
	if loop == nil {
		t.Fatal("loop vanished")
	}
	if len(loop.Body) != 2 {
		t.Errorf("loop body has %d statements, want 2 (use + recurrence update)", len(loop.Body))
	}
}

func findFor(list []ir.Stmt) *ir.For {
	for _, s := range list {
		switch st := s.(type) {
		case *ir.For:
			return st
		case *ir.If:
			if f := findFor(st.Then); f != nil {
				return f
			}
			if f := findFor(st.Else); f != nil {
				return f
			}
		}
	}
	return nil
}

func TestDCERemovesDeadChains(t *testing.T) {
	prog := ir.NewProgram()
	b := irbuild.NewFunc("f")
	b.ScalarParam("x", ir.I64).Local("dead1", ir.I64).Local("dead2", ir.I64).Local("live", ir.I64)
	fn := b.Body(
		b.Set(b.V("dead1"), b.Add(b.V("x"), b.I(1))),
		b.Set(b.V("dead2"), b.Add(b.V("dead1"), b.I(2))), // only feeds dead1 chain
		b.Set(b.V("live"), b.Mul(b.V("x"), b.I(3))),
		b.Ret(b.V("live")),
	)
	prog.AddFunc(fn)
	work := fn.Clone()
	eliminateDeadCode(work, prog)
	if got := countHIR[*ir.Assign](work.Body); got != 1 {
		t.Errorf("assignments after DCE = %d, want 1", got)
	}
}

func TestGuardRemoval(t *testing.T) {
	prog := ir.NewProgram()
	b := irbuild.NewFunc("f")
	b.ScalarParam("x", ir.I64).Local("y", ir.I64)
	fn := b.Body(
		b.Guard(b.Ge(b.V("x"), b.I(0)),
			b.Set(b.V("y"), b.V("x")),
		),
		b.Ret(b.V("y")),
	)
	prog.AddFunc(fn)
	work := fn.Clone()
	removeGuards(work)
	if countHIR[*ir.If](work.Body) != 0 {
		t.Error("guard not removed")
	}
	if countHIR[*ir.Assign](work.Body) != 1 {
		t.Error("guarded body lost")
	}
}

func TestInlineSmallCallee(t *testing.T) {
	prog := ir.NewProgram()
	cb := irbuild.NewFunc("sq")
	cb.ScalarParam("v", ir.F64)
	prog.AddFunc(cb.Body(cb.Ret(cb.FMul(cb.V("v"), cb.V("v")))))
	b := irbuild.NewFunc("f")
	b.ScalarParam("x", ir.F64)
	fn := b.Body(b.Ret(b.Call("sq", b.FAdd(b.V("x"), b.F(1)))))
	prog.AddFunc(fn)
	work := fn.Clone()
	inlineCalls(work, prog, newTempNamer(work))
	calls := countExprNodes(work.Body, func(e ir.Expr) bool {
		c, ok := e.(*ir.CallExpr)
		return ok && c.Fn == "sq"
	})
	if calls != 0 {
		t.Error("small callee not inlined")
	}
}

func TestThreadJumpsMergesChains(t *testing.T) {
	// Nested conditionals create empty forwarding joins that thread-jumps
	// bypasses, plus single-predecessor chains it merges.
	prog := ir.NewProgram()
	b := irbuild.NewFunc("f")
	b.ScalarParam("x", ir.I64).Local("y", ir.I64)
	fn := b.Body(
		b.If(b.Gt(b.V("x"), b.I(0)),
			b.If(b.Gt(b.V("x"), b.I(10)),
				b.Set(b.V("y"), b.I(1)),
			),
		),
		b.Set(b.V("y"), b.Add(b.V("y"), b.I(1))),
		b.Ret(b.V("y")),
	)
	prog.AddFunc(fn)
	lf, err := lower.Lower(prog, fn)
	if err != nil {
		t.Fatal(err)
	}
	before := len(lf.Blocks)
	threadJumps(lf)
	if len(lf.Blocks) >= before {
		t.Errorf("blocks %d -> %d, expected a reduction", before, len(lf.Blocks))
	}
	if lf.Blocks[0] != f0(lf) {
		t.Error("entry block must stay first")
	}
}

func f0(lf *ir.LFunc) *ir.Block { return lf.Blocks[0] }

func TestPeepholeInvertsNotOfCompare(t *testing.T) {
	f := &ir.LFunc{
		Name:     "f",
		NumRegs:  4,
		FloatReg: make([]bool, 4),
		Blocks: []*ir.Block{{
			ID: 0,
			Instrs: []ir.Instr{
				{Op: ir.LCmpLt, Dst: 2, A: 0, B: 1},
				{Op: ir.LNot, Dst: 3, A: 2, B: ir.NoReg},
			},
			Term: ir.Terminator{Kind: ir.TermReturn, Val: 3},
		}},
	}
	peephole(f)
	if len(f.Blocks[0].Instrs) != 1 {
		t.Fatalf("instrs = %d, want 1", len(f.Blocks[0].Instrs))
	}
	in := f.Blocks[0].Instrs[0]
	if in.Op != ir.LCmpGe || in.Dst != 3 {
		t.Errorf("fused instr = %v, want cmpge -> r3", in.String())
	}
}

func TestRenameRegistersRemovesReuse(t *testing.T) {
	// r1 is defined twice in one block; renaming must split the first
	// def (and its use) onto a fresh register.
	f := &ir.LFunc{
		Name:     "f",
		NumRegs:  3,
		FloatReg: make([]bool, 3),
		Blocks: []*ir.Block{{
			ID: 0,
			Instrs: []ir.Instr{
				{Op: ir.LMovI, Dst: 1, A: ir.NoReg, B: ir.NoReg, Imm: 5},
				{Op: ir.LAdd, Dst: 2, A: 1, B: 1},
				{Op: ir.LMovI, Dst: 1, A: ir.NoReg, B: ir.NoReg, Imm: 9},
			},
			Term: ir.Terminator{Kind: ir.TermReturn, Val: 1},
		}},
	}
	renameRegisters(f)
	if f.NumRegs != 4 {
		t.Fatalf("NumRegs = %d, want 4", f.NumRegs)
	}
	ins := f.Blocks[0].Instrs
	if ins[0].Dst == 1 {
		t.Error("first def not renamed")
	}
	if ins[1].A != ins[0].Dst || ins[1].B != ins[0].Dst {
		t.Error("uses not repointed to the renamed register")
	}
	if ins[2].Dst != 1 {
		t.Error("final def must keep the original register (live-out)")
	}
}

func TestCrossjumpSavings(t *testing.T) {
	mk := func() []ir.Instr {
		return []ir.Instr{
			{Op: ir.LMovI, Dst: 1, A: ir.NoReg, B: ir.NoReg, Imm: 1},
			{Op: ir.LAdd, Dst: 2, A: 0, B: 1},
		}
	}
	f := &ir.LFunc{
		Name: "f", NumRegs: 3, FloatReg: make([]bool, 3),
		Blocks: []*ir.Block{
			{ID: 0, Instrs: mk(), Term: ir.Terminator{Kind: ir.TermJump, Then: 2}},
			{ID: 1, Instrs: mk(), Term: ir.Terminator{Kind: ir.TermJump, Then: 2}},
			{ID: 2, Term: ir.Terminator{Kind: ir.TermReturn, Val: 2}},
		},
	}
	if got := crossjumpSavings(f); got != 2 {
		t.Errorf("savings = %d, want 2 (one duplicated tail)", got)
	}
}

func TestReorderKeepsEntryFirstAndAllBlocks(t *testing.T) {
	prog := ir.NewProgram()
	prog.AddArray("a", ir.F64, 16)
	b := irbuild.NewFunc("f")
	b.ScalarParam("n", ir.I64)
	fn := b.Body(
		b.For("i", b.I(0), b.V("n"), 1,
			b.If(b.Gt(b.V("i"), b.I(4)),
				b.Set(b.At("a", b.I(0)), b.F(1)),
			),
		),
	)
	prog.AddFunc(fn)
	lf, err := lower.Lower(prog, fn)
	if err != nil {
		t.Fatal(err)
	}
	applyBranchHints(lf)
	before := len(lf.Blocks)
	entry := lf.Blocks[0].ID
	reorderBlockLayout(lf, true)
	if len(lf.Blocks) != before {
		t.Errorf("blocks %d -> %d after reorder", before, len(lf.Blocks))
	}
	if lf.Blocks[0].ID != entry {
		t.Error("entry block moved")
	}
}
