package opt

import "peak/internal/ir"

// licmOpts configures loop-invariant code motion (loop-optimize) and its
// memory extensions.
type licmOpts struct {
	// loads permits hoisting loop-invariant memory loads (gcse-lm).
	loads bool
	// stores enables store motion / scalar promotion of loop-carried array
	// accumulators (gcse-sm, gated on expensive-optimizations by Compile).
	stores bool
	// strictAlias lets memory legality reason per array; without it any
	// store in the loop blocks all memory motion.
	strictAlias bool
}

// hoistInvariants walks all loops (innermost first) and hoists invariant
// computation into a guarded preheader:
//
//	for i = a; i < b; i++ { use(inv) }
//	  =>
//	if a < b { t = inv; for i = a; i < b; i++ { use(t) } }
//
// The guard keeps hoisted loads and divisions from executing when the loop
// would not run (so no new faults are introduced).
func hoistInvariants(fn *ir.Func, prog *ir.Program, opts licmOpts, namer *tempNamer) {
	fn.Body = hoistInList(fn.Body, fn, prog, opts, namer)
}

func hoistInList(list []ir.Stmt, fn *ir.Func, prog *ir.Program, opts licmOpts, namer *tempNamer) []ir.Stmt {
	out := make([]ir.Stmt, 0, len(list))
	for _, s := range list {
		switch st := s.(type) {
		case *ir.If:
			st.Then = hoistInList(st.Then, fn, prog, opts, namer)
			st.Else = hoistInList(st.Else, fn, prog, opts, namer)
			out = append(out, st)
		case *ir.For:
			st.Body = hoistInList(st.Body, fn, prog, opts, namer)
			out = append(out, hoistLoop(st, fn, prog, opts, namer))
		case *ir.While:
			st.Body = hoistInList(st.Body, fn, prog, opts, namer)
			out = append(out, hoistLoop(st, fn, prog, opts, namer))
		default:
			out = append(out, s)
		}
	}
	return out
}

// loopInfo captures legality facts about one loop.
type loopInfo struct {
	killed    map[string]bool // scalars assigned in the body (and loop var)
	stored    map[string]bool // arrays stored in the body (through calls too)
	hasCall   bool            // body contains user calls
	hasReturn bool
}

func summarizeLoop(body []ir.Stmt, loopVar string, prog *ir.Program) *loopInfo {
	info := &loopInfo{killed: map[string]bool{}, stored: map[string]bool{}}
	assignedVars(body, info.killed)
	if loopVar != "" {
		info.killed[loopVar] = true
	}
	storedArrays(body, prog, info.stored)
	info.hasCall = regionHasUserCall(body)
	var walk func(list []ir.Stmt)
	walk = func(list []ir.Stmt) {
		for _, s := range list {
			switch st := s.(type) {
			case *ir.Return:
				info.hasReturn = true
			case *ir.If:
				walk(st.Then)
				walk(st.Else)
			case *ir.For:
				walk(st.Body)
			case *ir.While:
				walk(st.Body)
			}
		}
	}
	walk(body)
	return info
}

// invariant reports whether e is loop-invariant and legal to hoist under
// opts: pure, reading only scalars the body does not assign, and (for
// loads) only arrays the loop provably does not store to.
func invariant(e ir.Expr, info *loopInfo, opts licmOpts) bool {
	p := analyzeExpr(e)
	if p.hasUserCall {
		return false
	}
	if info.hasCall && p.hasLoad {
		// Calls may store to arrays we cannot see from here.
		return false
	}
	for v := range p.vars {
		if info.killed[v] {
			return false
		}
	}
	if p.hasLoad {
		if !opts.loads {
			return false
		}
		if opts.strictAlias {
			for a := range p.loads {
				if info.stored[a] {
					return false
				}
			}
		} else if len(info.stored) > 0 {
			return false
		}
	}
	return true
}

// hoistLoop hoists invariant subtrees out of one loop (For or While) and
// returns the replacement statement (the guarded preheader, or the loop
// unchanged).
func hoistLoop(loop ir.Stmt, fn *ir.Func, prog *ir.Program, opts licmOpts, namer *tempNamer) ir.Stmt {
	var body []ir.Stmt
	var loopVar string
	var guardCond ir.Expr
	switch l := loop.(type) {
	case *ir.For:
		body = l.Body
		loopVar = l.Var
		guardCond = &ir.Binary{Op: ir.OpLt, Typ: ir.I64, X: l.From.Clone(), Y: l.To.Clone()}
		if analyzeExpr(l.From).hasUserCall || analyzeExpr(l.To).hasUserCall {
			return loop
		}
	case *ir.While:
		body = l.Body
		guardCond = l.Cond.Clone()
		if analyzeExpr(l.Cond).hasUserCall {
			return loop
		}
	default:
		return loop
	}

	info := summarizeLoop(body, loopVar, prog)

	var hoisted []ir.Stmt
	temps := map[string]string{} // exprKey -> temp name

	hoistExpr := func(e ir.Expr) ir.Expr {
		return hoistRewrite(e, info, opts, fn, prog, namer, temps, &hoisted)
	}
	rewriteStmtExprsShallowLoop(body, hoistExpr, info, opts, fn, prog, namer, temps, &hoisted)

	// Store motion (scalar promotion of loop-carried array cells).
	var postStores []ir.Stmt
	if opts.stores && !info.hasCall && !info.hasReturn {
		hoisted, postStores = promoteStores(body, info, opts, fn, prog, namer, hoisted)
	}

	if len(hoisted) == 0 && len(postStores) == 0 {
		return loop
	}
	then := make([]ir.Stmt, 0, len(hoisted)+1+len(postStores))
	then = append(then, hoisted...)
	then = append(then, loop)
	then = append(then, postStores...)
	return &ir.If{Cond: guardCond, Then: then}
}

// hoistRewrite replaces maximal invariant subtrees (of size ≥ 2) in e with
// preheader temps, top-down.
func hoistRewrite(e ir.Expr, info *loopInfo, opts licmOpts, fn *ir.Func, prog *ir.Program,
	namer *tempNamer, temps map[string]string, hoisted *[]ir.Stmt) ir.Expr {
	if exprSize(e) >= 2 && invariant(e, info, opts) {
		key := exprKey(e)
		if t, ok := temps[key]; ok {
			return &ir.VarRef{Name: t}
		}
		t := namer.fresh(exprType(e, fn, prog))
		temps[key] = t
		*hoisted = append(*hoisted, &ir.Assign{Lhs: &ir.VarRef{Name: t}, Rhs: e.Clone()})
		return &ir.VarRef{Name: t}
	}
	switch ex := e.(type) {
	case *ir.ArrayRef:
		ex.Index = hoistRewrite(ex.Index, info, opts, fn, prog, namer, temps, hoisted)
	case *ir.Unary:
		ex.X = hoistRewrite(ex.X, info, opts, fn, prog, namer, temps, hoisted)
	case *ir.Binary:
		ex.X = hoistRewrite(ex.X, info, opts, fn, prog, namer, temps, hoisted)
		ex.Y = hoistRewrite(ex.Y, info, opts, fn, prog, namer, temps, hoisted)
	case *ir.CallExpr:
		for i, a := range ex.Args {
			ex.Args[i] = hoistRewrite(a, info, opts, fn, prog, namer, temps, hoisted)
		}
	case *ir.Select:
		ex.Cond = hoistRewrite(ex.Cond, info, opts, fn, prog, namer, temps, hoisted)
		ex.X = hoistRewrite(ex.X, info, opts, fn, prog, namer, temps, hoisted)
		ex.Y = hoistRewrite(ex.Y, info, opts, fn, prog, namer, temps, hoisted)
	}
	return e
}

// rewriteStmtExprsShallowLoop applies the hoist rewriter to every expression
// evaluated inside the loop body, including nested control conditions (those
// are still per-iteration evaluations of this loop).
func rewriteStmtExprsShallowLoop(list []ir.Stmt, rw func(ir.Expr) ir.Expr, info *loopInfo,
	opts licmOpts, fn *ir.Func, prog *ir.Program, namer *tempNamer,
	temps map[string]string, hoisted *[]ir.Stmt) {
	for _, s := range list {
		switch st := s.(type) {
		case *ir.Assign:
			st.Rhs = rw(st.Rhs)
			if ar, ok := st.Lhs.(*ir.ArrayRef); ok {
				ar.Index = rw(ar.Index)
			}
		case *ir.If:
			st.Cond = rw(st.Cond)
			rewriteStmtExprsShallowLoop(st.Then, rw, info, opts, fn, prog, namer, temps, hoisted)
			rewriteStmtExprsShallowLoop(st.Else, rw, info, opts, fn, prog, namer, temps, hoisted)
		case *ir.For:
			st.From = rw(st.From)
			st.To = rw(st.To)
			rewriteStmtExprsShallowLoop(st.Body, rw, info, opts, fn, prog, namer, temps, hoisted)
		case *ir.While:
			st.Cond = rw(st.Cond)
			rewriteStmtExprsShallowLoop(st.Body, rw, info, opts, fn, prog, namer, temps, hoisted)
		case *ir.Return:
			if st.Value != nil {
				st.Value = rw(st.Value)
			}
		case *ir.CallStmt:
			for i, a := range st.Args {
				st.Args[i] = rw(a)
			}
		}
	}
}

// promoteStores finds arrays referenced in the loop exclusively through one
// invariant index expression and promotes that cell to a scalar:
//
//	for ... { A[k] = A[k] + x }
//	  =>
//	t = A[k]; for ... { t = t + x }; A[k] = t
//
// Legal when the index is invariant, every reference to the array inside the
// loop uses the identical index expression, and either strict-aliasing holds
// or the loop touches no other memory.
func promoteStores(body []ir.Stmt, info *loopInfo, opts licmOpts, fn *ir.Func, prog *ir.Program,
	namer *tempNamer, hoisted []ir.Stmt) (pre []ir.Stmt, post []ir.Stmt) {
	pre = hoisted

	// Collect per-array reference keys.
	refs := map[string]map[string]*ir.ArrayRef{} // array -> index key -> sample ref
	collect := func(e ir.Expr) {
		walkExpr(e, func(x ir.Expr) {
			if ar, ok := x.(*ir.ArrayRef); ok {
				if refs[ar.Name] == nil {
					refs[ar.Name] = map[string]*ir.ArrayRef{}
				}
				refs[ar.Name][exprKey(ar.Index)] = ar
			}
		})
	}
	var walk func(list []ir.Stmt)
	walk = func(list []ir.Stmt) {
		for _, s := range list {
			switch st := s.(type) {
			case *ir.Assign:
				collect(st.Rhs)
				collect(st.Lhs)
			case *ir.If:
				collect(st.Cond)
				walk(st.Then)
				walk(st.Else)
			case *ir.For:
				collect(st.From)
				collect(st.To)
				walk(st.Body)
			case *ir.While:
				collect(st.Cond)
				walk(st.Body)
			case *ir.Return:
				if st.Value != nil {
					collect(st.Value)
				}
			case *ir.CallStmt:
				for _, a := range st.Args {
					collect(a)
				}
			}
		}
	}
	walk(body)

	for arr, byKey := range refs {
		if !info.stored[arr] {
			continue // no store: plain load hoisting already handles it
		}
		if len(byKey) != 1 {
			continue // multiple distinct index expressions
		}
		if !opts.strictAlias && len(refs) > 1 {
			continue // cannot disambiguate against other arrays
		}
		var sample *ir.ArrayRef
		for _, r := range byKey {
			sample = r
		}
		if !invariant(sample.Index, info, licmOpts{loads: opts.loads, strictAlias: opts.strictAlias}) {
			continue
		}
		// Promote.
		t := namer.fresh(arrayElemType(arr, prog))
		idx := sample.Index.Clone()
		pre = append(pre, &ir.Assign{
			Lhs: &ir.VarRef{Name: t},
			Rhs: &ir.ArrayRef{Name: arr, Index: idx.Clone()},
		})
		replaceArrayCell(body, arr, t)
		post = append(post, &ir.Assign{
			Lhs: &ir.ArrayRef{Name: arr, Index: idx},
			Rhs: &ir.VarRef{Name: t},
		})
	}
	return pre, post
}

func arrayElemType(name string, prog *ir.Program) ir.Type {
	if prog != nil {
		if a, ok := prog.Array(name); ok {
			return a.Typ
		}
	}
	return ir.F64
}

// replaceArrayCell rewrites every reference to array arr (loads and stores)
// in the body with the scalar temp t. All references are known to use the
// same index.
func replaceArrayCell(list []ir.Stmt, arr, t string) {
	rw := func(e ir.Expr) ir.Expr {
		if ar, ok := e.(*ir.ArrayRef); ok && ar.Name == arr {
			return &ir.VarRef{Name: t}
		}
		return e
	}
	for _, s := range list {
		switch st := s.(type) {
		case *ir.Assign:
			st.Rhs = rewriteExpr(st.Rhs, rw)
			if ar, ok := st.Lhs.(*ir.ArrayRef); ok {
				if ar.Name == arr {
					st.Lhs = &ir.VarRef{Name: t}
				} else {
					ar.Index = rewriteExpr(ar.Index, rw)
				}
			}
		case *ir.If:
			st.Cond = rewriteExpr(st.Cond, rw)
			replaceArrayCell(st.Then, arr, t)
			replaceArrayCell(st.Else, arr, t)
		case *ir.For:
			st.From = rewriteExpr(st.From, rw)
			st.To = rewriteExpr(st.To, rw)
			replaceArrayCell(st.Body, arr, t)
		case *ir.While:
			st.Cond = rewriteExpr(st.Cond, rw)
			replaceArrayCell(st.Body, arr, t)
		case *ir.Return:
			if st.Value != nil {
				st.Value = rewriteExpr(st.Value, rw)
			}
		case *ir.CallStmt:
			for i, a := range st.Args {
				st.Args[i] = rewriteExpr(a, rw)
			}
		}
	}
}
