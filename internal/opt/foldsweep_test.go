package opt

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestFoldExhaustiveSeeds sweeps a fixed seed range of random expressions,
// checking that folding preserves both values and faultability against the
// reference evaluator (this search found the mixed-literal truncation and
// the bitwise-identity-coercion bugs).
func TestFoldExhaustiveSeeds(t *testing.T) {
	for seed := int64(0); seed < 30000; seed++ {
		rng := rand.New(rand.NewSource(seed))
		env := map[string]float64{
			"a": float64(rng.Intn(40) - 20),
			"b": float64(rng.Intn(40) - 20),
			"c": float64(rng.Intn(7)) / 2,
		}
		e := randExpr(rng, 4)
		before, okB := evalRef(e, env)
		folded := rewriteExpr(e.Clone(), foldExpr)
		after, okA := evalRef(folded, env)
		bad := false
		if okB != okA {
			bad = true
		} else if okB && before != after && !(before != before && after != after) {
			bad = true
		}
		if bad {
			fmt.Printf("seed=%d env=%v\n  orig=%s (%v,%v)\n  fold=%s (%v,%v)\n",
				seed, env, e, before, okB, folded, after, okA)
			t.Fatal("counterexample")
		}
	}
}
