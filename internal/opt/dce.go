package opt

import (
	"peak/internal/ir"
	"peak/internal/lower"
)

// eliminateDeadCode removes assignments to local scalars that are never
// read anywhere in the function (write-only temporaries left behind by
// other passes), iterating to a fixpoint. It is a baseline cleanup that
// always runs. Assignments with user calls in the right-hand side are kept
// (the call may have effects); array stores and global-scalar writes are
// always kept.
func eliminateDeadCode(fn *ir.Func, prog *ir.Program) {
	for {
		reads := map[string]int{}
		countReads(fn.Body, reads)
		removed := false
		fn.Body = removeDead(fn.Body, fn, prog, reads, &removed)
		if !removed {
			return
		}
	}
}

func countReads(list []ir.Stmt, reads map[string]int) {
	count := func(e ir.Expr) {
		walkExpr(e, func(x ir.Expr) {
			if vr, ok := x.(*ir.VarRef); ok {
				reads[vr.Name]++
			}
		})
	}
	for _, s := range list {
		switch st := s.(type) {
		case *ir.Assign:
			count(st.Rhs)
			if ar, ok := st.Lhs.(*ir.ArrayRef); ok {
				count(ar.Index)
			}
		case *ir.If:
			count(st.Cond)
			countReads(st.Then, reads)
			countReads(st.Else, reads)
		case *ir.For:
			count(st.From)
			count(st.To)
			countReads(st.Body, reads)
		case *ir.While:
			count(st.Cond)
			countReads(st.Body, reads)
		case *ir.Return:
			if st.Value != nil {
				count(st.Value)
			}
		case *ir.CallStmt:
			for _, a := range st.Args {
				count(a)
			}
		}
	}
}

func removeDead(list []ir.Stmt, fn *ir.Func, prog *ir.Program, reads map[string]int, removed *bool) []ir.Stmt {
	out := make([]ir.Stmt, 0, len(list))
	for _, s := range list {
		switch st := s.(type) {
		case *ir.Assign:
			if vr, ok := st.Lhs.(*ir.VarRef); ok {
				isLocalScalar := fn.IsLocal(vr.Name) ||
					(fn.IsParam(vr.Name)) // params are by-value: writes are local too
				notGlobal := lower.GlobalIndex(prog, vr.Name) < 0 || fn.IsLocal(vr.Name) || fn.IsParam(vr.Name)
				if isLocalScalar && notGlobal && reads[vr.Name] == 0 &&
					!analyzeExpr(st.Rhs).hasUserCall {
					*removed = true
					continue
				}
			}
			out = append(out, st)
		case *ir.If:
			st.Then = removeDead(st.Then, fn, prog, reads, removed)
			st.Else = removeDead(st.Else, fn, prog, reads, removed)
			out = append(out, st)
		case *ir.For:
			st.Body = removeDead(st.Body, fn, prog, reads, removed)
			out = append(out, st)
		case *ir.While:
			st.Body = removeDead(st.Body, fn, prog, reads, removed)
			out = append(out, st)
		default:
			out = append(out, s)
		}
	}
	return out
}

// removeGuards splices away compiler-inserted safety checks marked with
// If.Guard (delete-null-pointer-checks). Workloads only mark checks whose
// condition is dynamically always true, mirroring GCC's language-level
// guarantee that the removed null checks cannot fire.
func removeGuards(fn *ir.Func) {
	fn.Body = removeGuardList(fn.Body)
}

func removeGuardList(list []ir.Stmt) []ir.Stmt {
	out := make([]ir.Stmt, 0, len(list))
	for _, s := range list {
		switch st := s.(type) {
		case *ir.If:
			st.Then = removeGuardList(st.Then)
			st.Else = removeGuardList(st.Else)
			if st.Guard && len(st.Else) == 0 {
				out = append(out, st.Then...)
				continue
			}
			out = append(out, st)
		case *ir.For:
			st.Body = removeGuardList(st.Body)
			out = append(out, st)
		case *ir.While:
			st.Body = removeGuardList(st.Body)
			out = append(out, st)
		default:
			out = append(out, s)
		}
	}
	return out
}
