package opt

import "peak/internal/ir"

// unrollFactor is the unroll width (GCC 3.3 used small fixed factors).
const unrollFactor = 4

// unrollLoops unrolls innermost For loops by unrollFactor:
//
//	for i = a; i < b; i += s { B(i) }
//	  =>
//	i = a
//	while i + (U-1)*s < b { B(i); B(i+s); ...; B(i+(U-1)*s); i += U*s }
//	while i < b           { B(i); i += s }
//
// Legality: the body must not contain Break, Return, nested loops, or
// assignments to the loop variable, and the bound must be invariant (it is
// re-evaluated once per unrolled group instead of once per iteration).
// Counter statements are duplicated with the body, which keeps their totals
// exact (one increment per original iteration).
func unrollLoops(fn *ir.Func, prog *ir.Program, namer *tempNamer) {
	fn.Body = unrollList(fn.Body, fn, prog, namer)
}

func unrollList(list []ir.Stmt, fn *ir.Func, prog *ir.Program, namer *tempNamer) []ir.Stmt {
	out := make([]ir.Stmt, 0, len(list))
	for _, s := range list {
		switch st := s.(type) {
		case *ir.If:
			st.Then = unrollList(st.Then, fn, prog, namer)
			st.Else = unrollList(st.Else, fn, prog, namer)
			out = append(out, st)
		case *ir.While:
			st.Body = unrollList(st.Body, fn, prog, namer)
			out = append(out, st)
		case *ir.For:
			st.Body = unrollList(st.Body, fn, prog, namer)
			out = append(out, unrollFor(st, fn, prog, namer)...)
		default:
			out = append(out, s)
		}
	}
	return out
}

func unrollFor(st *ir.For, fn *ir.Func, prog *ir.Program, namer *tempNamer) []ir.Stmt {
	if !unrollable(st, prog) {
		return []ir.Stmt{st}
	}

	ensureLocal(fn, st.Var, ir.I64)

	v := func() ir.Expr { return &ir.VarRef{Name: st.Var} }
	ci := func(n int64) ir.Expr { return &ir.ConstInt{V: n} }
	add := func(x, y ir.Expr) ir.Expr {
		return foldExpr(&ir.Binary{Op: ir.OpAdd, Typ: ir.I64, X: x, Y: y})
	}

	// i = From
	init := &ir.Assign{Lhs: v(), Rhs: st.From.Clone()}

	// Main loop: while i + (U-1)*step < To
	mainCond := &ir.Binary{Op: ir.OpLt, Typ: ir.I64,
		X: add(v(), ci(int64(unrollFactor-1)*st.Step)), Y: st.To.Clone()}
	var mainBody []ir.Stmt
	for k := 0; k < unrollFactor; k++ {
		iterVar := st.Var
		if k > 0 {
			iterVar = namer.fresh(ir.I64)
			mainBody = append(mainBody, &ir.Assign{
				Lhs: &ir.VarRef{Name: iterVar},
				Rhs: add(v(), ci(int64(k)*st.Step)),
			})
		}
		copyBody := ir.CloneStmts(st.Body)
		if k > 0 {
			renameVarInStmts(copyBody, st.Var, iterVar)
		}
		mainBody = append(mainBody, copyBody...)
	}
	mainBody = append(mainBody, &ir.Assign{Lhs: v(), Rhs: add(v(), ci(int64(unrollFactor)*st.Step))})
	main := &ir.While{Cond: mainCond, Body: mainBody}

	// Remainder loop: while i < To
	remCond := &ir.Binary{Op: ir.OpLt, Typ: ir.I64, X: v(), Y: st.To.Clone()}
	remBody := append(ir.CloneStmts(st.Body), &ir.Assign{Lhs: v(), Rhs: add(v(), ci(st.Step))})
	rem := &ir.While{Cond: remCond, Body: remBody}

	return []ir.Stmt{init, main, rem}
}

// unrollable checks the legality conditions for unrollFor.
func unrollable(st *ir.For, prog *ir.Program) bool {
	// Bound and start must be pure; the bound must also be invariant,
	// because the unrolled loop tests it once per group of iterations.
	if analyzeExpr(st.From).hasUserCall || analyzeExpr(st.To).hasUserCall {
		return false
	}
	info := summarizeLoop(st.Body, st.Var, prog)
	toProps := analyzeExpr(st.To)
	for vname := range toProps.vars {
		if vname != st.Var && info.killed[vname] {
			return false
		}
	}
	if toProps.hasLoad {
		for a := range toProps.loads {
			if info.stored[a] {
				return false
			}
		}
		if info.hasCall {
			return false
		}
	}
	bodyAssigned := map[string]bool{}
	assignedVars(st.Body, bodyAssigned)
	if bodyAssigned[st.Var] {
		return false
	}
	// No Break/Return/nested loops in the body.
	ok := true
	var walk func(list []ir.Stmt)
	walk = func(list []ir.Stmt) {
		for _, s := range list {
			switch sx := s.(type) {
			case *ir.Break, *ir.Return, *ir.For, *ir.While:
				ok = false
			case *ir.If:
				walk(sx.Then)
				walk(sx.Else)
			}
		}
	}
	walk(st.Body)
	// Size limit: unrolling huge bodies only thrashes the icache.
	if bodySize(st.Body) > 60 {
		return false
	}
	return ok
}

func bodySize(list []ir.Stmt) int {
	n := 0
	var walk func(list []ir.Stmt)
	walk = func(list []ir.Stmt) {
		for _, s := range list {
			n++
			switch sx := s.(type) {
			case *ir.Assign:
				n += exprSize(sx.Rhs)
			case *ir.If:
				n += exprSize(sx.Cond)
				walk(sx.Then)
				walk(sx.Else)
			case *ir.For:
				walk(sx.Body)
			case *ir.While:
				walk(sx.Body)
			}
		}
	}
	walk(list)
	return n
}

func ensureLocal(fn *ir.Func, name string, typ ir.Type) {
	if fn.IsLocal(name) || fn.IsParam(name) {
		return
	}
	fn.Locals = append(fn.Locals, ir.Local{Name: name, Typ: typ})
}

// renameVarInStmts replaces every reference to (and assignment of) scalar
// `from` with `to` in the statement list.
func renameVarInStmts(list []ir.Stmt, from, to string) {
	rw := func(e ir.Expr) ir.Expr {
		if vr, ok := e.(*ir.VarRef); ok && vr.Name == from {
			return &ir.VarRef{Name: to}
		}
		return e
	}
	for _, s := range list {
		switch st := s.(type) {
		case *ir.Assign:
			st.Rhs = rewriteExpr(st.Rhs, rw)
			switch lhs := st.Lhs.(type) {
			case *ir.VarRef:
				if lhs.Name == from {
					st.Lhs = &ir.VarRef{Name: to}
				}
			case *ir.ArrayRef:
				lhs.Index = rewriteExpr(lhs.Index, rw)
			}
		case *ir.If:
			st.Cond = rewriteExpr(st.Cond, rw)
			renameVarInStmts(st.Then, from, to)
			renameVarInStmts(st.Else, from, to)
		case *ir.For:
			st.From = rewriteExpr(st.From, rw)
			st.To = rewriteExpr(st.To, rw)
			renameVarInStmts(st.Body, from, to)
		case *ir.While:
			st.Cond = rewriteExpr(st.Cond, rw)
			renameVarInStmts(st.Body, from, to)
		case *ir.Return:
			if st.Value != nil {
				st.Value = rewriteExpr(st.Value, rw)
			}
		case *ir.CallStmt:
			for i, a := range st.Args {
				st.Args[i] = rewriteExpr(a, rw)
			}
		}
	}
}
