package opt

import (
	"testing"

	"peak/internal/ir"
	"peak/internal/irbuild"
	"peak/internal/machine"
	"peak/internal/sim"
)

func TestInlineRejectsComplexCallees(t *testing.T) {
	prog := ir.NewProgram()
	prog.AddArray("ia", ir.F64, 8)

	// Callee with a loop: not inlinable.
	loopy := irbuild.NewFunc("loopy")
	loopy.ScalarParam("n", ir.I64).Local("s", ir.F64)
	prog.AddFunc(loopy.Body(
		loopy.For("i", loopy.I(0), loopy.V("n"), 1,
			loopy.Set(loopy.V("s"), loopy.FAdd(loopy.V("s"), loopy.F(1)))),
		loopy.Ret(loopy.V("s")),
	))
	// Callee with a store: not inlinable (alias bookkeeping).
	storer := irbuild.NewFunc("storer")
	storer.ScalarParam("x", ir.F64)
	prog.AddFunc(storer.Body(
		storer.Set(storer.At("ia", storer.I(0)), storer.V("x")),
		storer.Ret(storer.V("x")),
	))

	b := irbuild.NewFunc("f")
	b.ScalarParam("n", ir.I64).Local("r", ir.F64)
	fn := b.Body(
		b.Set(b.V("r"), b.Call("loopy", b.V("n"))),
		b.Set(b.V("r"), b.FAdd(b.V("r"), b.Call("storer", b.V("r")))),
		b.Ret(b.V("r")),
	)
	prog.AddFunc(fn)

	work := fn.Clone()
	inlineCalls(work, prog, newTempNamer(work))
	calls := 0
	rewriteStmtExprs(work.Body, func(e ir.Expr) ir.Expr {
		if c, ok := e.(*ir.CallExpr); ok {
			if _, intrinsic := ir.IsIntrinsic(c.Fn); !intrinsic {
				calls++
			}
		}
		return e
	})
	if calls != 2 {
		t.Errorf("calls after inlining = %d, want 2 (neither callee is inlinable)", calls)
	}
}

func TestInlineLocalsStartAtZeroPerCall(t *testing.T) {
	// An inlined callee's locals must be re-zeroed at every call site —
	// the inlined assignments run inside the caller's loop.
	prog := ir.NewProgram()
	acc := irbuild.NewFunc("acc")
	acc.ScalarParam("x", ir.F64).Local("t", ir.F64)
	prog.AddFunc(acc.Body(
		acc.Set(acc.V("t"), acc.FAdd(acc.V("t"), acc.V("x"))), // t starts 0
		acc.Ret(acc.V("t")),
	))
	b := irbuild.NewFunc("f")
	b.ScalarParam("n", ir.I64).Local("s", ir.F64)
	fn := b.Body(
		b.For("i", b.I(0), b.V("n"), 1,
			b.Set(b.V("s"), b.FAdd(b.V("s"), b.Call("acc", b.F(2)))),
		),
		b.Ret(b.V("s")),
	)
	prog.AddFunc(fn)

	// Differential check: inlined vs not, executed.
	checkSemanticsEquiv(t, prog, fn, []float64{5})
}

// checkSemanticsEquiv compiles fn at O0 and with inlining only, runs both,
// and compares results.
func checkSemanticsEquiv(t *testing.T, prog *ir.Program, fn *ir.Func, args []float64) {
	t.Helper()
	runWith := func(fs FlagSet) float64 {
		m := testMachine()
		v, err := Compile(prog, fn, fs, m)
		if err != nil {
			t.Fatalf("compile %s: %v", fs, err)
		}
		mem := newTestMemory(prog)
		r := newTestRunner(m, mem)
		got, _, err := r.Run(v, args)
		if err != nil {
			t.Fatalf("run %s: %v", fs, err)
		}
		return got
	}
	plain := runWith(O0())
	inlined := runWith(O0().With(FInlineFunctions))
	if plain != inlined {
		t.Errorf("inlining changed the result: %v vs %v", inlined, plain)
	}
}

// Small helpers bridging to machine/sim without repeating imports at every
// call site.
func testMachine() *machine.Machine { return machine.SPARCII() }

func newTestMemory(prog *ir.Program) *sim.Memory { return sim.NewMemory(prog) }

func newTestRunner(m *machine.Machine, mem *sim.Memory) *sim.Runner {
	return sim.NewRunner(m, mem, 1)
}
