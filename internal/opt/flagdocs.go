package opt

// FlagDoc describes how this compiler implements one tunable flag: which
// transformation or code-generation policy it controls and why it can hurt.
func FlagDoc(f Flag) string {
	return flagDocs[f]
}

var flagDocs = [NumFlags]string{
	FDeferPop:                "cheaper call linkage: scales call overhead by 0.9",
	FThreadJumps:             "CFG simplification: bypass empty forwarding blocks, merge single-predecessor chains (fewer taken-branch redirects)",
	FBranchProbabilities:     "profile-style static branch hints; presets predictor state and guides block layout",
	FCSEFollowJumps:          "keep the CSE table alive across two-armed conditionals (kill only invalidated facts)",
	FCSESkipBlocks:           "keep the CSE table alive across one-armed conditionals",
	FDeleteNullPointerChecks: "remove compiler-inserted always-true safety guards (If.Guard)",
	FExpensiveOptimizations:  "gate for second-order passes: store motion, variable-factor strength reduction",
	FGCSE:                    "global CSE: seed nested regions with the outer table; enables memory-load reuse",
	FGCSELoadMotion:          "hoist loop-invariant memory loads into a guarded preheader (needs loop-optimize)",
	FGCSEStoreMotion:         "promote loop-carried array cells to scalars with a post-loop writeback (needs expensive-optimizations)",
	FStrengthReduce:          "turn induction-variable multiplies into additive recurrences",
	FRerunCSEAfterLoop:       "second CSE pass after the loop optimizations expose new redundancy",
	FRerunLoopOpt:            "second LICM pass after strength reduction",
	FCallerSaves:             "allocate call-crossing values to caller-saved registers (+2 allocatable regs around calls, +10% call cost)",
	FForceMem:                "force memory operands into registers, enabling load reuse in CSE",
	FPeephole2:               "local patterns: drop self-moves, fuse not-of-compare into inverted compares, prune dead instructions",
	FScheduleInsns:           "cycle-aware list scheduling within blocks: hide result latencies, overlap cache misses",
	FScheduleInsns2:          "post-allocation rescheduling pass weighted by spill costs",
	FRegmove:                 "coalesce computation-into-temp-then-move chains onto the final register",
	FStrictAliasing:          "assume distinct arrays never alias: unlocks load CSE/motion across stores, but longer live ranges raise register pressure (the paper's ART story)",
	FDelayedBranch:           "fill branch delay slots: taken-branch cost x0.7 on the SPARC-like machine only",
	FReorderBlocks:           "greedy fallthrough chain layout so the hot path runs straight",
	FAlignFunctions:          "function entry alignment: +8 instruction footprint",
	FAlignJumps:              "jump target alignment: taken-branch cost x0.93, +size/24 footprint",
	FAlignLoops:              "loop header alignment: taken-branch cost x0.88, +size/16 footprint",
	FAlignLabels:             "label alignment: taken-branch cost x0.95, +size/32 footprint",
	FCrossjumping:            "merge identical block tails (instruction-cache footprint reduction)",
	FIfConversion:            "convert scalar-assignment conditionals to branch-free selects (fault-free right-hand sides only)",
	FIfConversion2:           "additionally speculate loads whose expression the condition already evaluates (max-reduction pattern)",
	FInlineFunctions:         "inline small straight-line callees at statement positions",
	FRenameRegisters:         "local register renaming: removes anti/output dependences for the scheduler at the cost of more live ranges",
	FOptimizeSiblingCalls:    "tail-call linkage: scales call overhead by 0.95 when calls are present",
	FOmitFramePointer:        "one extra allocatable integer register",
	FGuessBranchProbability:  "static prediction heuristics (loop branches taken); predictor starts warm",
	FCPropRegisters:          "copy and constant propagation within straight-line segments",
	FLoopOptimize:            "loop-invariant code motion into guarded preheaders",
	FUnrollLoops:             "4x unrolling of innermost counted loops with a remainder loop",
	FSchedInterblock:         "let the scheduler migrate loads into a unique jump-predecessor",
}
