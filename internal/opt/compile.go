package opt

import (
	"fmt"

	"peak/internal/ir"
	"peak/internal/lower"
	"peak/internal/machine"
	"peak/internal/regalloc"
	"peak/internal/sim"
)

// Compile translates fn (within prog) into a runnable version for machine m
// under the given optimization flags. The paper's tuning system calls this
// once per explored flag combination per tuning section ("the Remote
// Optimizer can be any compiler", §4.2).
//
// Pass pipeline (HIR → LIR → allocation → cost modifiers):
//
//	inline-functions → delete-null-pointer-checks → fold (always) →
//	cprop-registers → loop-optimize/gcse-lm/gcse-sm → strength-reduce →
//	rerun-loop-opt → unroll-loops → CSE family → rerun-cse-after-loop →
//	if-conversion(2) → fold/dce (always) → lower →
//	regmove → peephole2 → rename-registers → schedule-insns(+interblock) →
//	thread-jumps → guess-branch-probability → reorder-blocks →
//	register allocation (omit-frame-pointer, caller-saves) →
//	schedule-insns2 → crossjumping/alignment/call-linkage cost modifiers.
func Compile(prog *ir.Program, fn *ir.Func, flags FlagSet, m *machine.Machine) (*sim.Version, error) {
	return compileInner(prog, fn, flags, m, 0)
}

const maxCalleeDepth = 8

func compileInner(prog *ir.Program, fn *ir.Func, flags FlagSet, m *machine.Machine, depth int) (*sim.Version, error) {
	if depth > maxCalleeDepth {
		return nil, fmt.Errorf("opt: callee nesting exceeds %d in %s", maxCalleeDepth, fn.Name)
	}
	work := fn.Clone()
	namer := newTempNamer(work)

	// --- HIR passes -------------------------------------------------------
	if flags.Has(FInlineFunctions) {
		inlineCalls(work, prog, namer)
	}
	if flags.Has(FDeleteNullPointerChecks) {
		removeGuards(work)
	}
	foldConstants(work)
	if flags.Has(FCPropRegisters) {
		propagateCopies(work)
	}

	licm := licmOpts{
		loads:       flags.Has(FGCSELoadMotion) && flags.Has(FLoopOptimize),
		stores:      flags.Has(FGCSEStoreMotion) && flags.Has(FExpensiveOptimizations),
		strictAlias: flags.Has(FStrictAliasing),
	}
	if flags.Has(FLoopOptimize) {
		hoistInvariants(work, prog, licm, namer)
	}
	if flags.Has(FStrengthReduce) {
		reduceStrength(work, prog, flags.Has(FExpensiveOptimizations), namer)
	}
	if flags.Has(FRerunLoopOpt) && flags.Has(FLoopOptimize) {
		hoistInvariants(work, prog, licm, namer)
	}
	if flags.Has(FUnrollLoops) {
		unrollLoops(work, prog, namer)
	}

	cse := cseOpts{
		followJumps: flags.Has(FCSEFollowJumps),
		skipBlocks:  flags.Has(FCSESkipBlocks),
		global:      flags.Has(FGCSE),
		strictAlias: flags.Has(FStrictAliasing),
		loadReuse: (flags.Has(FGCSE) || flags.Has(FForceMem)) &&
			flags.Has(FStrictAliasing),
	}
	eliminateCommonSubexprs(work, prog, cse, namer)
	if flags.Has(FRerunCSEAfterLoop) {
		eliminateCommonSubexprs(work, prog, cse, namer)
	}

	if flags.Has(FIfConversion) {
		convertIfs(work, prog, ifConvOpts{
			basic:      true,
			aggressive: flags.Has(FIfConversion2),
		}, namer)
	}
	foldConstants(work)
	if flags.Has(FCPropRegisters) {
		propagateCopies(work)
	}
	eliminateDeadCode(work, prog)

	// --- Lowering and LIR passes -----------------------------------------
	lf, err := lower.Lower(prog, work)
	if err != nil {
		return nil, err
	}
	if flags.Has(FRegmove) {
		coalesceMoves(lf)
	}
	if flags.Has(FPeephole2) {
		peephole(lf)
	}
	if flags.Has(FRenameRegisters) {
		renameRegisters(lf)
	}
	sched := schedOpts{
		interblock:  flags.Has(FSchedInterblock),
		strictAlias: flags.Has(FStrictAliasing),
		latency:     func(op ir.Opcode) int64 { return m.OpLatency[op] },
	}
	if flags.Has(FScheduleInsns) {
		scheduleBlocks(lf, sched)
	}
	if flags.Has(FThreadJumps) {
		threadJumps(lf)
	}
	if flags.Has(FGuessBranchProbability) || flags.Has(FBranchProbabilities) {
		applyBranchHints(lf)
	}
	if flags.Has(FReorderBlocks) {
		reorderBlockLayout(lf, flags.Has(FGuessBranchProbability) || flags.Has(FBranchProbabilities))
	}

	// --- Register allocation ----------------------------------------------
	intRegs, floatRegs := m.IntRegs, m.FloatRegs
	if flags.Has(FOmitFramePointer) {
		intRegs++
	}
	hasCalls := lfHasCalls(lf)
	if hasCalls && !flags.Has(FCallerSaves) {
		// Without caller-saves, values live across calls are confined to
		// the callee-saved subset.
		intRegs -= 2
		floatRegs -= 2
		if intRegs < 2 {
			intRegs = 2
		}
		if floatRegs < 2 {
			floatRegs = 2
		}
	}
	alloc := regalloc.Allocate(lf, intRegs, floatRegs)

	if flags.Has(FScheduleInsns2) && flags.Has(FScheduleInsns) {
		spillSched := sched
		spillSched.spillAware = alloc.Spilled
		spillSched.extraSpillLat = m.SpillLoadCost
		scheduleBlocks(lf, spillSched)
		alloc = regalloc.Allocate(lf, intRegs, floatRegs)
	}

	if err := ir.VerifyLFunc(lf); err != nil {
		return nil, fmt.Errorf("opt: post-pipeline verification failed for %s under %s: %w",
			fn.Name, flags, err)
	}

	// --- Cost modifiers -----------------------------------------------------
	mods := sim.DefaultCostMods()
	codeSize := lf.InstrCount()
	if flags.Has(FCrossjumping) {
		codeSize -= crossjumpSavings(lf)
	}
	if flags.Has(FAlignFunctions) {
		mods.CodeSizeExtra += 8
	}
	if flags.Has(FAlignJumps) {
		mods.TakenBranchFactor *= 0.93
		mods.CodeSizeExtra += codeSize / 24
	}
	if flags.Has(FAlignLabels) {
		mods.TakenBranchFactor *= 0.95
		mods.CodeSizeExtra += codeSize / 32
	}
	if flags.Has(FAlignLoops) {
		mods.TakenBranchFactor *= 0.88
		mods.CodeSizeExtra += codeSize / 16
	}
	if flags.Has(FDelayedBranch) && m.Name == "sparc2" {
		mods.TakenBranchFactor *= 0.70
	}
	if flags.Has(FDeferPop) {
		mods.CallOverheadFactor *= 0.90
	}
	if flags.Has(FOptimizeSiblingCalls) && hasCalls {
		mods.CallOverheadFactor *= 0.95
	}
	if hasCalls && flags.Has(FCallerSaves) {
		// Saving caller-saved registers around calls is not free.
		mods.CallOverheadFactor *= 1.10
	}
	mods.StaticPredict = flags.Has(FGuessBranchProbability) || flags.Has(FBranchProbabilities)

	v := &sim.Version{
		LF:         lf,
		Alloc:      alloc,
		Mods:       mods,
		CodeSize:   codeSize,
		NumOrigins: numOrigins(lf),
		Label:      flags.String(),
	}

	// --- Callees ------------------------------------------------------------
	callees := map[string]bool{}
	collectCallees(lf, callees)
	if len(callees) > 0 {
		v.Callees = make(map[string]*sim.Version, len(callees))
		for name := range callees {
			calleeFn, ok := prog.Funcs[name]
			if !ok {
				return nil, fmt.Errorf("opt: %s calls undefined function %q", fn.Name, name)
			}
			cv, err := compileInner(prog, calleeFn, flags, m, depth+1)
			if err != nil {
				return nil, err
			}
			v.Callees[name] = cv
			v.CodeSize += cv.CodeSize
		}
	}
	return v, nil
}

func lfHasCalls(f *ir.LFunc) bool {
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.LCall {
				return true
			}
		}
	}
	return false
}

func collectCallees(f *ir.LFunc, out map[string]bool) {
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.LCall {
				if _, intrinsic := ir.IsIntrinsic(in.Fn); !intrinsic {
					out[in.Fn] = true
				}
			}
		}
	}
}

func numOrigins(f *ir.LFunc) int {
	max := 0
	for _, b := range f.Blocks {
		if b.Origin >= max {
			max = b.Origin + 1
		}
	}
	return max
}
