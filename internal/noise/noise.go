// Package noise provides composable, deterministic measurement-noise
// models for the simulated timing clock.
//
// The paper's rating machinery (§3: windows, variance thresholds, outlier
// elimination) exists because real measurements are perturbed — timer
// jitter, interrupts, thermal throttling, co-scheduled load. This package
// makes those perturbation regimes explicit and injectable so the rating
// methods can be stress-tested under conditions far harsher than the
// machine defaults:
//
//   - Gaussian jitter: multiplicative timer noise (Jitter).
//   - Heavy-tailed spikes: rare large outliers from system perturbations
//     such as interrupts (SpikeProb × SpikeScale) — the paper's explicit
//     motivation for outlier elimination.
//   - Thermal drift: a slow sinusoidal swing of the effective clock
//     (DriftAmp over DriftPeriod measurements), the classic
//     frequency-scaling / thermal-throttle pattern.
//   - Correlated bursts: stretches of consecutive measurements sharing one
//     elevated level (BurstProb, BurstLen, BurstScale), modelling a noisy
//     neighbour or daemon waking up.
//
// A Model is a plain value; regimes compose by setting several field
// groups at once. A Stream instantiates a model with a private random
// stream, normally seeded via sched.DeriveSeed so that perturbations are a
// pure function of the job identity — the package never reads global
// randomness and two streams with the same model and seed produce
// identical perturbation sequences.
package noise

import (
	"math"
	"math/rand"
)

// Model describes one measurement-noise regime. The zero value is
// noiseless. Field groups are independent and compose: a model may carry
// jitter, spikes, drift and bursts at once.
type Model struct {
	// Jitter is the relative standard deviation of multiplicative Gaussian
	// timer noise applied to every measurement.
	Jitter float64

	// SpikeProb is the per-measurement probability of a heavy-tailed
	// outlier spike; SpikeScale its magnitude: an affected measurement is
	// multiplied by 1 + SpikeScale·(0.5 + U) with U uniform in [0,1).
	SpikeProb  float64
	SpikeScale float64

	// DriftAmp is the amplitude of a slow sinusoidal multiplicative drift
	// (thermal throttling / frequency scaling); DriftPeriod is the number
	// of measurements per full cycle (0 selects DefaultDriftPeriod). The
	// drift phase is drawn once per stream from the stream's seed.
	DriftAmp    float64
	DriftPeriod int

	// BurstProb is the per-measurement probability of entering a burst
	// when none is active; BurstLen the burst duration in measurements
	// (0 selects DefaultBurstLen); BurstScale its magnitude. Every
	// measurement inside one burst is multiplied by the same factor
	// 1 + BurstScale·(0.5 + U), drawn at burst start — consecutive
	// perturbations are therefore positively correlated.
	BurstProb  float64
	BurstLen   int
	BurstScale float64
}

// Defaults for the optional period/length fields.
const (
	DefaultDriftPeriod = 1000
	DefaultBurstLen    = 10
)

// Gaussian returns a pure timer-jitter regime.
func Gaussian(jitter float64) Model { return Model{Jitter: jitter} }

// HeavySpikes returns a jitter regime contaminated by heavy-tailed
// outlier spikes.
func HeavySpikes(jitter, prob, scale float64) Model {
	return Model{Jitter: jitter, SpikeProb: prob, SpikeScale: scale}
}

// ThermalDrift returns a jitter regime riding on a slow sinusoidal drift.
func ThermalDrift(jitter, amp float64, period int) Model {
	return Model{Jitter: jitter, DriftAmp: amp, DriftPeriod: period}
}

// Bursts returns a jitter regime with correlated burst perturbations.
func Bursts(jitter, prob float64, length int, scale float64) Model {
	return Model{Jitter: jitter, BurstProb: prob, BurstLen: length, BurstScale: scale}
}

// IsZero reports whether the model injects no noise at all.
func (m Model) IsZero() bool { return m == Model{} }

// Stream is a Model instantiated with a private random stream. It is the
// stateful generator behind sim.Clock: drift advances with the
// measurement index and bursts persist across calls. A Stream must stay
// confined to one goroutine (rating jobs derive one stream each).
type Stream struct {
	m   Model
	rng *rand.Rand

	n          int     // measurement index (drives the drift phase)
	driftPhase float64 // random initial drift phase in [0,1)
	burstLeft  int     // measurements remaining in the active burst
	burstGain  float64 // multiplicative factor of the active burst
}

// NewStream instantiates the model with a deterministic random stream
// derived from seed (callers typically pass sched.DeriveSeed output).
func (m Model) NewStream(seed int64) *Stream {
	s := &Stream{m: m, rng: rand.New(rand.NewSource(seed))}
	if m.DriftAmp != 0 {
		// Drawn only when drift is active so that drift-free models keep
		// the exact draw sequence of the historical clock implementation.
		s.driftPhase = s.rng.Float64()
	}
	return s
}

// Model returns the stream's model.
func (s *Stream) Model() Model { return s.m }

// Perturb applies one measurement's worth of noise to the true value t
// and advances the stream. The jitter and spike draws happen in the
// historical sim.Clock order, so a model carrying only those fields
// reproduces the old clock bit for bit.
func (s *Stream) Perturb(t float64) float64 {
	m := s.m
	if m.Jitter > 0 {
		t *= 1 + s.rng.NormFloat64()*m.Jitter
	}
	if m.SpikeProb > 0 {
		if s.rng.Float64() < m.SpikeProb {
			t *= 1 + m.SpikeScale*(0.5+s.rng.Float64())
		}
	}
	if m.DriftAmp != 0 {
		period := m.DriftPeriod
		if period <= 0 {
			period = DefaultDriftPeriod
		}
		t *= 1 + m.DriftAmp*math.Sin(2*math.Pi*(float64(s.n)/float64(period)+s.driftPhase))
	}
	if m.BurstProb > 0 {
		if s.burstLeft == 0 && s.rng.Float64() < m.BurstProb {
			length := m.BurstLen
			if length <= 0 {
				length = DefaultBurstLen
			}
			s.burstLeft = length
			s.burstGain = 1 + m.BurstScale*(0.5+s.rng.Float64())
		}
		if s.burstLeft > 0 {
			t *= s.burstGain
			s.burstLeft--
		}
	}
	s.n++
	return t
}
