package noise

import (
	"math"
	"math/rand"
	"testing"
)

func sequence(m Model, seed int64, n int) []float64 {
	s := m.NewStream(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = s.Perturb(1000)
	}
	return out
}

func TestStreamDeterministic(t *testing.T) {
	m := Model{Jitter: 0.02, SpikeProb: 0.05, SpikeScale: 3,
		DriftAmp: 0.03, DriftPeriod: 200, BurstProb: 0.02, BurstLen: 8, BurstScale: 0.1}
	a := sequence(m, 77, 500)
	b := sequence(m, 77, 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sequence diverges at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := sequence(m, 78, 500)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same > len(a)/2 {
		t.Errorf("different seeds produced %d/%d identical perturbations", same, len(a))
	}
}

// TestJitterSpikeOrderMatchesLegacyClock pins the draw order that keeps
// machine-default models bit-identical to the historical sim.Clock
// implementation: one NormFloat64 for jitter, then one Float64 for the
// spike check, then one more Float64 only when a spike fires.
func TestJitterSpikeOrderMatchesLegacyClock(t *testing.T) {
	const seed, jitter, prob, scale = 42, 0.012, 0.004, 0.6
	got := sequence(Model{Jitter: jitter, SpikeProb: prob, SpikeScale: scale}, seed, 2000)
	rng := rand.New(rand.NewSource(seed))
	for i, g := range got {
		want := 1000 * (1 + rng.NormFloat64()*jitter)
		if rng.Float64() < prob {
			want *= 1 + scale*(0.5+rng.Float64())
		}
		if g != want {
			t.Fatalf("measurement %d: got %v, want legacy %v", i, g, want)
		}
	}
}

func TestZeroModelIsIdentity(t *testing.T) {
	if !(Model{}).IsZero() {
		t.Error("zero model must report IsZero")
	}
	if (Model{Jitter: 0.1}).IsZero() {
		t.Error("non-zero model must not report IsZero")
	}
	for i, v := range sequence(Model{}, 5, 50) {
		if v != 1000 {
			t.Fatalf("zero model perturbed measurement %d to %v", i, v)
		}
	}
}

func TestSpikesAreHeavyTailed(t *testing.T) {
	base := sequence(Gaussian(0.01), 9, 4000)
	spiky := sequence(HeavySpikes(0.01, 0.05, 4), 9, 4000)
	maxB, maxS := 0.0, 0.0
	for i := range base {
		maxB = math.Max(maxB, base[i])
		maxS = math.Max(maxS, spiky[i])
	}
	if maxS < 1000*2.5 {
		t.Errorf("spiky max %v, want clear outliers above 2.5x", maxS)
	}
	if maxB > 1000*1.1 {
		t.Errorf("pure jitter max %v, spikes leaked into Gaussian regime", maxB)
	}
}

func TestDriftIsSlowBoundedAndCentred(t *testing.T) {
	const amp, period = 0.05, 400
	vals := sequence(ThermalDrift(0, amp, period), 3, 2*period)
	sum, maxDev, maxStep := 0.0, 0.0, 0.0
	for i, v := range vals {
		f := v / 1000
		sum += f
		maxDev = math.Max(maxDev, math.Abs(f-1))
		if i > 0 {
			maxStep = math.Max(maxStep, math.Abs(f-vals[i-1]/1000))
		}
	}
	if mean := sum / float64(len(vals)); math.Abs(mean-1) > 1e-3 {
		t.Errorf("drift mean %v over full cycles, want ~1", mean)
	}
	if maxDev > amp+1e-9 || maxDev < amp*0.95 {
		t.Errorf("drift max deviation %v, want ~%v", maxDev, amp)
	}
	// "Slow": per-measurement movement is far below the amplitude.
	if maxStep > 2*math.Pi*amp/period*1.5 {
		t.Errorf("drift step %v too fast for period %d", maxStep, period)
	}
}

// TestBurstsAreCorrelated: inside the bursty regime, consecutive
// perturbation factors are positively correlated (shared burst gain);
// under pure jitter they are not.
func TestBurstsAreCorrelated(t *testing.T) {
	autocorr := func(vals []float64) float64 {
		n := len(vals) - 1
		mean := 0.0
		for _, v := range vals {
			mean += v
		}
		mean /= float64(len(vals))
		var num, den float64
		for i := 0; i < n; i++ {
			num += (vals[i] - mean) * (vals[i+1] - mean)
		}
		for _, v := range vals {
			den += (v - mean) * (v - mean)
		}
		return num / den
	}
	bursty := autocorr(sequence(Bursts(0.01, 0.03, 12, 0.2), 11, 6000))
	plain := autocorr(sequence(Gaussian(0.01), 11, 6000))
	if bursty < 0.3 {
		t.Errorf("bursty autocorrelation %v, want strong positive", bursty)
	}
	if math.Abs(plain) > 0.1 {
		t.Errorf("gaussian autocorrelation %v, want ~0", plain)
	}
}

func TestBurstLength(t *testing.T) {
	s := Bursts(0, 1, 5, 10).NewStream(1) // burst starts immediately
	first := s.Perturb(1)
	if first <= 1 {
		t.Fatal("burst did not start")
	}
	for i := 1; i < 5; i++ {
		if v := s.Perturb(1); v != first {
			t.Fatalf("measurement %d inside burst = %v, want shared gain %v", i, v, first)
		}
	}
	// With BurstProb=1 a new burst starts right away — but with a fresh gain.
	if v := s.Perturb(1); v == first {
		t.Error("new burst reused the previous gain draw sequence exactly — suspicious")
	}
}
