// Differential tests proving the fused superblock engine (exec.go)
// bit-identical to the reference interpreter (ref.go) in every observable:
// return value, Cycles, Instrs, Counters, BlockCounts, WriteLog, memory
// contents, and every error path — including the exact step at which a fault
// or ErrStepLimit fires, observable through Instrs and Cycles at the error.
//
// Two batteries: every benchmark/machine pair at two optimization levels
// (real code shapes, cache and predictor evolution across invocations), and
// randomized LIR programs built directly as CFGs (adversarial shapes the
// compiler never emits: irreducible loops, dead registers, faulting
// memory ops, unknown callees, step-limit runaways).
package sim_test

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"peak/internal/ir"
	"peak/internal/irbuild"
	"peak/internal/lower"
	"peak/internal/machine"
	"peak/internal/opt"
	"peak/internal/regalloc"
	"peak/internal/sim"
	"peak/internal/workloads"
)

// writeBits is a WriteRec with the old value as raw bits, so NaN-carrying
// logs compare exactly.
type writeBits struct {
	Arr     string
	Idx     int64
	OldBits uint64
}

// observation captures every observable of one invocation. Float values are
// held as bits so NaNs compare exactly and reflect.DeepEqual means
// bit-identical.
type observation struct {
	RetBits     uint64
	ErrText     string
	Cycles      int64
	Instrs      int64
	Counters    []int64
	BlockCounts []int64
	Writes      []writeBits
	Mem         map[string][]uint64
}

// observe runs one invocation of v and snapshots all of its observables,
// including the full post-run memory image.
func observe(r *sim.Runner, mem *sim.Memory, v *sim.Version, args []float64) observation {
	r.WriteLog = r.WriteLog[:0]
	ret, st, err := r.Run(v, args)
	o := observation{
		RetBits:     math.Float64bits(ret),
		Cycles:      st.Cycles,
		Instrs:      st.Instrs,
		Counters:    append([]int64(nil), st.Counters...),
		BlockCounts: append([]int64(nil), st.BlockCounts...),
		Mem:         make(map[string][]uint64),
	}
	if err != nil {
		o.ErrText = err.Error()
	}
	for _, w := range r.WriteLog {
		o.Writes = append(o.Writes, writeBits{Arr: w.Arr, Idx: w.Idx, OldBits: math.Float64bits(w.Old)})
	}
	names := mem.Names()
	sort.Strings(names)
	for _, n := range names {
		data := mem.Get(n).Data
		bits := make([]uint64, len(data))
		for i, f := range data {
			bits[i] = math.Float64bits(f)
		}
		o.Mem[n] = bits
	}
	return o
}

// compareObs fails the test when the fused and reference observations differ,
// reporting the first differing field.
func compareObs(t *testing.T, label string, fused, ref observation, dump func() string) bool {
	t.Helper()
	if reflect.DeepEqual(fused, ref) {
		return true
	}
	detail := ""
	switch {
	case fused.RetBits != ref.RetBits:
		detail = fmt.Sprintf("return: fused %x (%v) ref %x (%v)",
			fused.RetBits, math.Float64frombits(fused.RetBits),
			ref.RetBits, math.Float64frombits(ref.RetBits))
	case fused.ErrText != ref.ErrText:
		detail = fmt.Sprintf("error: fused %q ref %q", fused.ErrText, ref.ErrText)
	case fused.Cycles != ref.Cycles:
		detail = fmt.Sprintf("cycles: fused %d ref %d", fused.Cycles, ref.Cycles)
	case fused.Instrs != ref.Instrs:
		detail = fmt.Sprintf("instrs: fused %d ref %d", fused.Instrs, ref.Instrs)
	case !reflect.DeepEqual(fused.Counters, ref.Counters):
		detail = fmt.Sprintf("counters: fused %v ref %v", fused.Counters, ref.Counters)
	case !reflect.DeepEqual(fused.BlockCounts, ref.BlockCounts):
		detail = fmt.Sprintf("block counts: fused %v ref %v", fused.BlockCounts, ref.BlockCounts)
	case !reflect.DeepEqual(fused.Writes, ref.Writes):
		detail = fmt.Sprintf("write log: fused %d recs ref %d recs", len(fused.Writes), len(ref.Writes))
	default:
		detail = "memory contents differ"
	}
	msg := label + ": " + detail
	if dump != nil {
		msg += "\n" + dump()
	}
	t.Error(msg)
	return false
}

// TestDifferentialBenchmarks runs every benchmark on both machines at -O3 and
// -O0, several invocations each so cache and predictor state evolves, and
// asserts the two engines observe exactly the same execution.
func TestDifferentialBenchmarks(t *testing.T) {
	for _, m := range []*machine.Machine{machine.SPARCII(), machine.PentiumIV()} {
		for _, b := range workloads.All() {
			for _, fs := range []opt.FlagSet{opt.O3(), opt.O0()} {
				v, err := opt.Compile(b.Prog, b.TS, fs, m)
				if err != nil {
					t.Fatalf("%s/%s %s: compile: %v", m.Name, b.Name, fs, err)
				}
				label := fmt.Sprintf("%s/%s/%s", m.Name, b.Name, fs)

				memF, memR := sim.NewMemory(b.Prog), sim.NewMemory(b.Prog)
				rngF := rand.New(rand.NewSource(b.Seed(17)))
				rngR := rand.New(rand.NewSource(b.Seed(17)))
				if b.Train.Setup != nil {
					b.Train.Setup(memF, rngF)
					b.Train.Setup(memR, rngR)
				}
				rF := sim.NewRunner(m, memF, 11)
				rR := sim.NewRunner(m, memR, 11)
				rR.Engine = sim.EngineRef
				rF.CollectBlockCounts, rR.CollectBlockCounts = true, true
				rF.RecordWrites, rR.RecordWrites = true, true

				invs := 3
				if b.Train.NumInvocations < invs {
					invs = b.Train.NumInvocations
				}
				for i := 0; i < invs; i++ {
					argsF := b.Train.Args(i, memF, rngF)
					argsR := b.Train.Args(i, memR, rngR)
					oF := observe(rF, memF, v, argsF)
					oR := observe(rR, memR, v, argsR)
					if !compareObs(t, fmt.Sprintf("%s inv %d", label, i), oF, oR, nil) {
						return
					}
				}
			}
		}
	}
}

// arrNames weights the memory targets of random loads/stores: mostly the two
// real arrays, occasionally a name the program never declared (the
// unknown-array fault path).
var arrNames = []string{"a", "b", "a", "b", "a", "b", "a", "ghost"}

// intr1 and intr2 are the one- and two-argument intrinsics random calls use.
var (
	intr1 = []string{"sqrt", "abs", "floor", "sin", "cos", "exp", "log"}
	intr2 = []string{"min", "max", "imin", "imax"}
)

// binaryOps is the opcode pool for random three-address instructions,
// weighted toward the fusible ALU set so superblock traces actually form;
// LDiv/LMod appear but rarely, so most programs survive past their first
// faultable op.
var binaryOps = []ir.Opcode{
	ir.LAdd, ir.LAdd, ir.LSub, ir.LSub, ir.LMul, ir.LMul,
	ir.LFAdd, ir.LFAdd, ir.LFSub, ir.LFMul, ir.LFMul, ir.LFDiv,
	ir.LAnd, ir.LOr, ir.LXor, ir.LShl, ir.LShr,
	ir.LCmpEq, ir.LCmpNe, ir.LCmpLt, ir.LCmpLe, ir.LCmpGt, ir.LCmpGe,
	ir.LFCmpEq, ir.LFCmpNe, ir.LFCmpLt, ir.LFCmpLe, ir.LFCmpGt, ir.LFCmpGe,
	ir.LDiv, ir.LMod,
}

// randomInstr emits one random instruction over nregs virtual registers.
// Unused operand fields are ir.NoReg, the invariant lowered LIR maintains
// ("NoReg if unused") and the engines' decode relies on.
func randomInstr(rng *rand.Rand, nregs int) ir.Instr {
	r := func() ir.Reg { return ir.Reg(rng.Intn(nregs)) }
	no := ir.NoReg
	switch rng.Intn(20) {
	case 0:
		return ir.Instr{Op: ir.LMovI, Dst: r(), A: no, B: no, Src: no, Imm: int64(rng.Intn(41) - 10)}
	case 1:
		return ir.Instr{Op: ir.LMovF, Dst: r(), A: no, B: no, Src: no, FImm: rng.NormFloat64() * 8}
	case 2:
		return ir.Instr{Op: ir.LMov, Dst: r(), A: r(), B: no, Src: no}
	case 3:
		ops := []ir.Opcode{ir.LNeg, ir.LFNeg, ir.LNot}
		return ir.Instr{Op: ops[rng.Intn(len(ops))], Dst: r(), A: r(), B: no, Src: no}
	case 4:
		return ir.Instr{Op: ir.LSelect, Dst: r(), A: r(), B: r(), Src: r()}
	case 5, 6:
		return ir.Instr{Op: ir.LLoad, Dst: r(), A: r(), B: no, Src: no, Arr: arrNames[rng.Intn(len(arrNames))]}
	case 7, 8:
		return ir.Instr{Op: ir.LStore, Dst: no, A: r(), B: no, Src: r(), Arr: arrNames[rng.Intn(len(arrNames))]}
	case 9:
		call := ir.Instr{Op: ir.LCall, Dst: r(), A: no, B: no, Src: no}
		switch rng.Intn(12) {
		case 0, 1, 2, 3, 4:
			call.Fn, call.CallArgs = intr1[rng.Intn(len(intr1))], []ir.Reg{r()}
		case 5, 6, 7, 8:
			call.Fn, call.CallArgs = intr2[rng.Intn(len(intr2))], []ir.Reg{r(), r()}
		case 9, 10:
			call.Fn, call.CallArgs = "leaf", []ir.Reg{r(), r()}
		default:
			// A name that is neither intrinsic nor callee: the
			// unresolved-call fault path.
			call.Fn, call.CallArgs = "phantom", []ir.Reg{r()}
		}
		return call
	case 10:
		// Counter 4 is out of range for NumCounters=4: both engines must
		// drop the bump.
		return ir.Instr{Op: ir.LCount, Dst: no, A: no, B: no, Src: no, Imm: int64(rng.Intn(5))}
	case 11:
		return ir.Instr{Op: ir.LNop, Dst: no, A: no, B: no, Src: no}
	default:
		return ir.Instr{Op: binaryOps[rng.Intn(len(binaryOps))], Dst: r(), A: r(), B: r(), Src: no}
	}
}

// randomLFunc builds a random LIR CFG directly — no lowering, no verifier —
// so shapes the compiler would never emit (irreducible loops, self-loops,
// blocks whose registers are never initialized) are all fair game. The
// entry block is seeded with constant moves so arithmetic has nonzero
// operands to chew on; termination is not guaranteed, which is the point:
// runaway programs must hit ErrStepLimit at the same step on both engines.
func randomLFunc(rng *rand.Rand, name string) *ir.LFunc {
	nregs := 6 + rng.Intn(8)
	f := &ir.LFunc{Name: name, NumRegs: nregs, NumCounters: 4}
	nparams := rng.Intn(3)
	for p := 0; p < nparams; p++ {
		f.Params = append(f.Params, ir.Param{Name: fmt.Sprintf("p%d", p)})
		f.ParamRegs = append(f.ParamRegs, ir.Reg(p))
	}
	f.FloatReg = make([]bool, nregs)
	for i := range f.FloatReg {
		f.FloatReg[i] = rng.Intn(2) == 0
	}

	nblocks := 1 + rng.Intn(5)
	for bi := 0; bi < nblocks; bi++ {
		blk := &ir.Block{ID: bi, Origin: bi, LoopDepth: rng.Intn(3)}
		if bi == 0 {
			for k := 0; k < nregs/2; k++ {
				blk.Instrs = append(blk.Instrs, ir.Instr{
					Op: ir.LMovI, Dst: ir.Reg(rng.Intn(nregs)),
					A:  ir.NoReg, B: ir.NoReg, Src: ir.NoReg,
					Imm: int64(rng.Intn(15) + 1)})
			}
		}
		n := 1 + rng.Intn(10)
		for k := 0; k < n; k++ {
			blk.Instrs = append(blk.Instrs, randomInstr(rng, nregs))
		}
		switch rng.Intn(4) {
		case 0:
			val := ir.NoReg
			if rng.Intn(4) > 0 {
				val = ir.Reg(rng.Intn(nregs))
			}
			blk.Term = ir.Terminator{Kind: ir.TermReturn, Val: val}
		case 1:
			blk.Term = ir.Terminator{Kind: ir.TermJump, Then: rng.Intn(nblocks)}
		default:
			blk.Term = ir.Terminator{Kind: ir.TermBranch, Cond: ir.Reg(rng.Intn(nregs)),
				Then: rng.Intn(nblocks), Else: rng.Intn(nblocks), Likely: rng.Intn(3) - 1}
		}
		f.Blocks = append(f.Blocks, blk)
	}
	return f
}

// randomVersion wraps a random LFunc with randomized spill decisions and cost
// modifiers — every knob that changes the cycle accounting.
func randomVersion(rng *rand.Rand, lf *ir.LFunc, m *machine.Machine, leaf *sim.Version, label string) *sim.Version {
	alloc := regalloc.Result{Spilled: make([]bool, lf.NumRegs)}
	for i := range alloc.Spilled {
		if rng.Intn(4) == 0 {
			alloc.Spilled[i] = true
			alloc.NumSpilled++
		}
	}
	mods := sim.DefaultCostMods()
	if rng.Intn(2) == 0 {
		mods.TakenBranchFactor = 0.85 + rng.Float64()
	}
	if rng.Intn(2) == 0 {
		mods.CallOverheadFactor = 0.9 + rng.Float64()
	}
	mods.StaticPredict = rng.Intn(2) == 0
	codeSize := lf.InstrCount()
	if rng.Intn(4) == 0 {
		// Overflow the icache so the per-block fetch penalty is exercised.
		codeSize += m.ICacheInstrs
	}
	return &sim.Version{
		LF:         lf,
		Alloc:      alloc,
		Mods:       mods,
		CodeSize:   codeSize,
		NumOrigins: len(lf.Blocks),
		Callees:    map[string]*sim.Version{"leaf": leaf},
		Label:      label,
	}
}

// compileLeaf builds the fixed user-callee random programs may call.
func compileLeaf(t *testing.T, prog *ir.Program, m *machine.Machine) *sim.Version {
	t.Helper()
	b := irbuild.NewFunc("leaf")
	b.ScalarParam("u", ir.F64).ScalarParam("w", ir.F64)
	fn := b.Body(b.Ret(b.FAdd(b.FMul(b.V("u"), b.V("w")), b.F(1))))
	lf, err := lower.Lower(prog, fn)
	if err != nil {
		t.Fatalf("lower leaf: %v", err)
	}
	return &sim.Version{
		LF:         lf,
		Alloc:      regalloc.Allocate(lf, m.IntRegs, m.FloatRegs),
		Mods:       sim.DefaultCostMods(),
		CodeSize:   lf.InstrCount(),
		NumOrigins: len(lf.Blocks),
		Label:      "leaf",
	}
}

// TestDifferentialRandomLIR feeds both engines 1200 randomized LIR programs
// (two invocations each, so predictor and cache state carries over) under a
// tight step limit, asserting bit-identical observations — including faults
// and ErrStepLimit at the exact same dynamic instruction.
func TestDifferentialRandomLIR(t *testing.T) {
	numProgs := 1200
	if testing.Short() {
		numProgs = 150
	}

	prog := ir.NewProgram()
	prog.AddArray("a", ir.F64, 19)
	prog.AddArray("b", ir.F64, 8)
	machines := []*machine.Machine{machine.SPARCII(), machine.PentiumIV()}
	leaves := []*sim.Version{
		compileLeaf(t, prog, machines[0]),
		compileLeaf(t, prog, machines[1]),
	}

	errored, limited := 0, 0
	for seed := 0; seed < numProgs; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)*7919 + 3))
		m := machines[seed%len(machines)]
		lf := randomLFunc(rng, fmt.Sprintf("rand%d", seed))
		v := randomVersion(rng, lf, m, leaves[seed%len(machines)], lf.Name)

		memF, memR := sim.NewMemory(prog), sim.NewMemory(prog)
		for _, name := range []string{"a", "b"} {
			dst, src := memF.Get(name).Data, memR.Get(name).Data
			for i := range dst {
				dst[i] = rng.NormFloat64() * 4
				src[i] = dst[i]
			}
		}
		rF := sim.NewRunner(m, memF, 7)
		rR := sim.NewRunner(m, memR, 7)
		rR.Engine = sim.EngineRef
		rF.MaxSteps, rR.MaxSteps = 2000, 2000
		rF.CollectBlockCounts, rR.CollectBlockCounts = true, true
		rF.RecordWrites, rR.RecordWrites = true, true

		for inv := 0; inv < 2; inv++ {
			args := make([]float64, len(lf.ParamRegs))
			for i := range args {
				args[i] = rng.NormFloat64() * 10
			}
			if rng.Intn(8) == 0 {
				args = args[:0] // fewer args than params: params stay zero
			}
			oF := observe(rF, memF, v, args)
			oR := observe(rR, memR, v, args)
			ok := compareObs(t, fmt.Sprintf("seed %d inv %d (%s)", seed, inv, m.Name),
				oF, oR, lf.String)
			if !ok {
				return
			}
			if oF.ErrText != "" {
				errored++
				if oF.Instrs > 0 && oF.Instrs >= 2000 {
					limited++
				}
				break
			}
		}
	}
	// The battery is only meaningful if it actually exercises the error and
	// step-limit paths; the generator is tuned so a healthy fraction does.
	if errored < numProgs/20 {
		t.Errorf("only %d/%d random programs hit an error path; generator too tame", errored, numProgs)
	}
	if limited == 0 {
		t.Error("no random program hit ErrStepLimit; generator too tame")
	}
	t.Logf("random programs: %d total, %d errored (%d at the step limit)", numProgs, errored, limited)
}
