package sim

import (
	"testing"

	"peak/internal/ir"
	"peak/internal/irbuild"
	"peak/internal/lower"
	"peak/internal/machine"
	"peak/internal/regalloc"
)

// These tests lock in the microarchitectural cost-model behaviours the
// paper's effects depend on: branch misprediction, spill traffic,
// scheduling stalls, icache overflow, and cost modifiers.

// branchyVersion builds a loop whose branch outcome stream is given by the
// gate array contents.
func branchyVersion(t *testing.T, m *machine.Machine) (*Version, *ir.Program) {
	t.Helper()
	prog := ir.NewProgram()
	prog.AddArray("gate", ir.I64, 512)
	b := irbuild.NewFunc("f")
	b.ScalarParam("n", ir.I64).Local("s", ir.I64)
	fn := b.Body(
		b.For("i", b.I(0), b.V("n"), 1,
			b.IfElse(b.Gt(b.At("gate", b.V("i")), b.I(0)),
				b.Stmts(b.Set(b.V("s"), b.Add(b.V("s"), b.I(1)))),
				b.Stmts(b.Set(b.V("s"), b.Add(b.V("s"), b.I(2)))),
			),
		),
		b.Ret(b.V("s")),
	)
	prog.AddFunc(fn)
	lf, err := lower.Lower(prog, fn)
	if err != nil {
		t.Fatal(err)
	}
	return &Version{
		LF:         lf,
		Alloc:      regalloc.Allocate(lf, m.IntRegs, m.FloatRegs),
		Mods:       DefaultCostMods(),
		CodeSize:   lf.InstrCount(),
		NumOrigins: len(lf.Blocks),
	}, prog
}

func TestMispredictPenaltyObservable(t *testing.T) {
	m := machine.PentiumIV()
	v, prog := branchyVersion(t, m)

	run := func(pattern func(i int) float64) int64 {
		mem := NewMemory(prog)
		d := mem.Get("gate").Data
		for i := range d {
			d[i] = pattern(i)
		}
		r := NewRunner(m, mem, 1)
		// Warm the cache so only predictor effects differ.
		if _, _, err := r.Run(v, []float64{512}); err != nil {
			t.Fatal(err)
		}
		_, st, err := r.Run(v, []float64{512})
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles
	}
	predictable := run(func(i int) float64 { return 1 })
	alternating := run(func(i int) float64 { return float64(i % 2) }) // worst case for 2-bit counters
	if alternating <= predictable {
		t.Fatalf("alternating branches (%d cycles) not slower than predictable (%d)",
			alternating, predictable)
	}
	// The 2-bit counter mispredicts about every other iteration on the
	// alternating stream.
	if delta := alternating - predictable; delta < 512*int64(m.MispredictPenalty)/3 {
		t.Errorf("mispredict delta %d too small for penalty %d", delta, m.MispredictPenalty)
	}
}

// TestResetMicroarchResetsPredictorInPlace: ResetMicroarch must restore the
// cold microarchitectural state — a re-run after it is cycle-identical to
// the first run — while reusing the decoded plan and its predictor slice
// (re-initialized in place via the epoch scheme, not reallocated).
func TestResetMicroarchResetsPredictorInPlace(t *testing.T) {
	m := machine.PentiumIV()
	v, prog := branchyVersion(t, m)
	mem := NewMemory(prog)
	d := mem.Get("gate").Data
	for i := range d {
		d[i] = float64(i % 3) // branchy enough to train the predictor
	}
	r := NewRunner(m, mem, 1)
	_, cold, err := r.Run(v, []float64{512})
	if err != nil {
		t.Fatal(err)
	}
	p := r.plans[v]
	if p == nil {
		t.Fatal("no decoded plan cached for the version")
	}
	pred := &p.pred[0]

	// Warm state must be observably different, or the reset check below
	// would be vacuous.
	_, warm, err := r.Run(v, []float64{512})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cycles == cold.Cycles {
		t.Fatal("warm run indistinguishable from cold run; test needs a state-sensitive kernel")
	}

	r.ResetMicroarch()
	_, again, err := r.Run(v, []float64{512})
	if err != nil {
		t.Fatal(err)
	}
	if again.Cycles != cold.Cycles {
		t.Errorf("run after ResetMicroarch = %d cycles, want cold %d", again.Cycles, cold.Cycles)
	}
	if r.plans[v] != p {
		t.Error("ResetMicroarch dropped the decoded plan")
	}
	if &p.pred[0] != pred {
		t.Error("predictor slice was reallocated instead of re-initialized in place")
	}
}

func TestSpillCostObservable(t *testing.T) {
	m := machine.PentiumIV()
	prog := ir.NewProgram()
	prog.AddArray("w", ir.F64, 64)
	b := irbuild.NewFunc("f")
	b.ScalarParam("n", ir.I64).Local("s", ir.F64)
	fn := b.Body(
		b.For("i", b.I(0), b.V("n"), 1,
			b.Set(b.V("s"), b.FAdd(b.V("s"), b.At("w", b.V("i")))),
		),
		b.Ret(b.V("s")),
	)
	prog.AddFunc(fn)
	lf, err := lower.Lower(prog, fn)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(alloc regalloc.Result) *Version {
		return &Version{LF: lf, Alloc: alloc, Mods: DefaultCostMods(),
			CodeSize: lf.InstrCount(), NumOrigins: len(lf.Blocks)}
	}
	noSpill := mk(regalloc.Allocate(lf, 32, 32))
	allSpill := regalloc.Allocate(lf, 32, 32)
	for i := range allSpill.Spilled {
		allSpill.Spilled[i] = true
	}
	spilled := mk(allSpill)

	mem := NewMemory(prog)
	r := NewRunner(m, mem, 1)
	_, fast, err := r.Run(noSpill, []float64{64})
	if err != nil {
		t.Fatal(err)
	}
	r.ResetMicroarch()
	_, slow, err := r.Run(spilled, []float64{64})
	if err != nil {
		t.Fatal(err)
	}
	if slow.Cycles <= fast.Cycles {
		t.Errorf("spilled version (%d) not slower than allocated (%d)", slow.Cycles, fast.Cycles)
	}
}

func TestICacheOverflowPenalty(t *testing.T) {
	m := machine.SPARCII()
	prog := ir.NewProgram()
	b := irbuild.NewFunc("f")
	b.ScalarParam("n", ir.I64).Local("s", ir.I64)
	fn := b.Body(
		b.For("i", b.I(0), b.V("n"), 1,
			b.Set(b.V("s"), b.Add(b.V("s"), b.V("i"))),
		),
		b.Ret(b.V("s")),
	)
	prog.AddFunc(fn)
	lf, err := lower.Lower(prog, fn)
	if err != nil {
		t.Fatal(err)
	}
	alloc := regalloc.Allocate(lf, m.IntRegs, m.FloatRegs)
	small := &Version{LF: lf, Alloc: alloc, Mods: DefaultCostMods(),
		CodeSize: lf.InstrCount(), NumOrigins: len(lf.Blocks)}
	huge := &Version{LF: lf, Alloc: alloc, Mods: DefaultCostMods(),
		CodeSize: m.ICacheInstrs * 3, NumOrigins: len(lf.Blocks)}

	mem := NewMemory(prog)
	r := NewRunner(m, mem, 1)
	_, a, err := r.Run(small, []float64{200})
	if err != nil {
		t.Fatal(err)
	}
	_, bb, err := r.Run(huge, []float64{200})
	if err != nil {
		t.Fatal(err)
	}
	if bb.Cycles <= a.Cycles {
		t.Errorf("icache-overflowing version (%d) not slower than small (%d)", bb.Cycles, a.Cycles)
	}
}

func TestSchedulingStallsObservable(t *testing.T) {
	// Two orders of the same computation: dependent chain back-to-back vs
	// interleaved independent work. In-order issue must charge stalls for
	// the former.
	m := machine.PentiumIV()
	mkVersion := func(instrs []ir.Instr) *Version {
		lf := &ir.LFunc{
			Name:     "f",
			NumRegs:  8,
			FloatReg: []bool{false, true, true, true, true, true, true, true},
			Blocks: []*ir.Block{{
				ID: 0, Instrs: instrs,
				Term: ir.Terminator{Kind: ir.TermReturn, Val: 7},
			}},
		}
		return &Version{LF: lf, Alloc: regalloc.Allocate(lf, 16, 16),
			Mods: DefaultCostMods(), CodeSize: len(instrs), NumOrigins: 1}
	}
	movf := func(dst ir.Reg, v float64) ir.Instr {
		return ir.Instr{Op: ir.LMovF, Dst: dst, A: ir.NoReg, B: ir.NoReg, Src: ir.NoReg, FImm: v}
	}
	fmul := func(dst, a, b ir.Reg) ir.Instr {
		return ir.Instr{Op: ir.LFMul, Dst: dst, A: a, B: b, Src: ir.NoReg}
	}
	// Chained: each fmul consumes the previous result immediately.
	chained := mkVersion([]ir.Instr{
		movf(1, 1.01), movf(2, 1.02),
		fmul(3, 1, 2), fmul(4, 3, 2), fmul(5, 4, 2), fmul(6, 5, 2), fmul(7, 6, 2),
	})
	// Independent: products of fresh inputs, then a final combine.
	independent := mkVersion([]ir.Instr{
		movf(1, 1.01), movf(2, 1.02), movf(3, 1.03), movf(4, 1.04),
		fmul(5, 1, 2), fmul(6, 3, 4), fmul(3, 1, 4), fmul(4, 2, 2),
		fmul(7, 5, 6),
	})
	prog := ir.NewProgram()
	mem := NewMemory(prog)
	r := NewRunner(m, mem, 1)
	_, c, err := r.Run(chained, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, ind, err := r.Run(independent, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The independent version executes MORE instructions yet should not
	// be proportionally slower, because the chain stalls on latency.
	perInstrChained := float64(c.Cycles) / float64(c.Instrs)
	perInstrIndep := float64(ind.Cycles) / float64(ind.Instrs)
	if perInstrIndep >= perInstrChained {
		t.Errorf("independent work %.2f cyc/instr not cheaper than chained %.2f",
			perInstrIndep, perInstrChained)
	}
}

func TestCostModsApplied(t *testing.T) {
	m := machine.SPARCII()
	prog := ir.NewProgram()
	b := irbuild.NewFunc("f")
	b.ScalarParam("n", ir.I64).Local("s", ir.F64)
	fn := b.Body(
		b.For("i", b.I(0), b.V("n"), 1,
			b.Set(b.V("s"), b.Call("sqrt", b.FAdd(b.V("s"), b.F(1)))),
		),
		b.Ret(b.V("s")),
	)
	prog.AddFunc(fn)
	lf, err := lower.Lower(prog, fn)
	if err != nil {
		t.Fatal(err)
	}
	alloc := regalloc.Allocate(lf, m.IntRegs, m.FloatRegs)
	mk := func(mods CostMods) *Version {
		return &Version{LF: lf, Alloc: alloc, Mods: mods,
			CodeSize: lf.InstrCount(), NumOrigins: len(lf.Blocks)}
	}
	mem := NewMemory(prog)
	r := NewRunner(m, mem, 1)
	base := mk(DefaultCostMods())
	cheapCalls := DefaultCostMods()
	cheapCalls.CallOverheadFactor = 0.5
	cheap := mk(cheapCalls)
	_, sBase, err := r.Run(base, []float64{100})
	if err != nil {
		t.Fatal(err)
	}
	_, sCheap, err := r.Run(cheap, []float64{100})
	if err != nil {
		t.Fatal(err)
	}
	if sCheap.Cycles >= sBase.Cycles {
		t.Errorf("CallOverheadFactor 0.5 (%d cycles) not cheaper than 1.0 (%d)",
			sCheap.Cycles, sBase.Cycles)
	}
}

func TestRunDeterminism(t *testing.T) {
	m := machine.PentiumIV()
	v, prog := branchyVersion(t, m)
	cycles := func() int64 {
		mem := NewMemory(prog)
		d := mem.Get("gate").Data
		for i := range d {
			d[i] = float64(i % 3)
		}
		r := NewRunner(m, mem, 99)
		_, st, err := r.Run(v, []float64{300})
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles
	}
	a, b := cycles(), cycles()
	if a != b {
		t.Errorf("non-deterministic execution: %d vs %d", a, b)
	}
}
