package sim

import (
	"math"
	"testing"

	"peak/internal/ir"
	"peak/internal/irbuild"
	"peak/internal/lower"
	"peak/internal/machine"
	"peak/internal/regalloc"
)

// compile lowers fn in prog and wraps it into a runnable Version with a
// full register allocation on the given machine.
func compile(t *testing.T, prog *ir.Program, fn *ir.Func, m *machine.Machine) *Version {
	t.Helper()
	lf, err := lower.Lower(prog, fn)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return &Version{
		LF:         lf,
		Alloc:      regalloc.Allocate(lf, m.IntRegs, m.FloatRegs),
		Mods:       DefaultCostMods(),
		CodeSize:   lf.InstrCount(),
		NumOrigins: len(lf.Blocks),
		Label:      "test",
	}
}

func TestSumLoop(t *testing.T) {
	prog := ir.NewProgram()
	prog.AddArray("x", ir.F64, 64)
	b := irbuild.NewFunc("sum")
	b.ScalarParam("n", ir.I64).ArrayParam("x").Local("s", ir.F64)
	fn := b.Body(
		b.For("i", b.I(0), b.V("n"), 1,
			b.Set(b.V("s"), b.FAdd(b.V("s"), b.At("x", b.V("i")))),
		),
		b.Ret(b.V("s")),
	)
	prog.AddFunc(fn)

	m := machine.SPARCII()
	mem := NewMemory(prog)
	arr := mem.Get("x")
	want := 0.0
	for i := range arr.Data {
		arr.Data[i] = float64(i) * 0.5
		if i < 10 {
			want += arr.Data[i]
		}
	}

	r := NewRunner(m, mem, 1)
	v := compile(t, prog, fn, m)
	got, stats, err := r.Run(v, []float64{10})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got != want {
		t.Errorf("sum = %v, want %v", got, want)
	}
	if stats.Cycles <= 0 {
		t.Errorf("cycles = %d, want > 0", stats.Cycles)
	}
	if stats.Instrs <= 0 {
		t.Errorf("instrs = %d, want > 0", stats.Instrs)
	}
}

func TestIfElseAndIntOps(t *testing.T) {
	prog := ir.NewProgram()
	b := irbuild.NewFunc("f")
	b.ScalarParam("a", ir.I64).ScalarParam("c", ir.I64).Local("r", ir.I64)
	fn := b.Body(
		b.IfElse(b.Gt(b.V("a"), b.I(5)),
			b.Stmts(b.Set(b.V("r"), b.Mod(b.V("a"), b.I(3)))),
			b.Stmts(b.Set(b.V("r"), b.Shl(b.V("a"), b.I(2)))),
		),
		b.Set(b.V("r"), b.Xor(b.V("r"), b.And(b.V("c"), b.I(12)))),
		b.Ret(b.V("r")),
	)
	prog.AddFunc(fn)
	m := machine.PentiumIV()
	r := NewRunner(m, NewMemory(prog), 2)
	v := compile(t, prog, fn, m)

	cases := []struct{ a, c, want float64 }{
		{9, 15, float64((9 % 3) ^ (15 & 12))},
		{2, 7, float64((2 << 2) ^ (7 & 12))},
	}
	for _, tc := range cases {
		got, _, err := r.Run(v, []float64{tc.a, tc.c})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		if got != tc.want {
			t.Errorf("f(%v,%v) = %v, want %v", tc.a, tc.c, got, tc.want)
		}
	}
}

func TestWhileBreak(t *testing.T) {
	prog := ir.NewProgram()
	prog.AddArray("v", ir.I64, 32)
	b := irbuild.NewFunc("find")
	b.ScalarParam("n", ir.I64).ScalarParam("key", ir.I64).Local("i", ir.I64).Local("found", ir.I64)
	fn := b.Body(
		b.Set(b.V("found"), b.I(-1)),
		b.Set(b.V("i"), b.I(0)),
		b.While(b.Lt(b.V("i"), b.V("n")),
			b.If(b.Eq(b.At("v", b.V("i")), b.V("key")),
				b.Set(b.V("found"), b.V("i")),
				b.Break(),
			),
			b.Set(b.V("i"), b.Add(b.V("i"), b.I(1))),
		),
		b.Ret(b.V("found")),
	)
	prog.AddFunc(fn)
	m := machine.SPARCII()
	mem := NewMemory(prog)
	for i := range mem.Get("v").Data {
		mem.Get("v").Data[i] = float64(i * 7)
	}
	r := NewRunner(m, mem, 3)
	v := compile(t, prog, fn, m)

	got, _, err := r.Run(v, []float64{20, 21})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got != 3 {
		t.Errorf("find(21) = %v, want 3", got)
	}
	got, _, err = r.Run(v, []float64{20, 22})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got != -1 {
		t.Errorf("find(22) = %v, want -1", got)
	}
}

func TestGlobalScalars(t *testing.T) {
	prog := ir.NewProgram()
	prog.AddScalar("g", ir.I64)
	b := irbuild.NewFunc("bump")
	b.ScalarParam("d", ir.I64)
	fn := b.Body(
		b.Set(b.V("g"), b.Add(b.V("g"), b.V("d"))),
		b.Ret(b.V("g")),
	)
	prog.AddFunc(fn)
	m := machine.SPARCII()
	mem := NewMemory(prog)
	r := NewRunner(m, mem, 4)
	v := compile(t, prog, fn, m)

	for i := 1; i <= 3; i++ {
		got, _, err := r.Run(v, []float64{2})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		if want := float64(2 * i); got != want {
			t.Errorf("bump #%d = %v, want %v", i, got, want)
		}
	}
	if g := mem.Get(lower.GlobalsArray).Data[0]; g != 6 {
		t.Errorf("global g = %v, want 6", g)
	}
}

func TestUserCallAndIntrinsics(t *testing.T) {
	prog := ir.NewProgram()
	cb := irbuild.NewFunc("hyp")
	cb.ScalarParam("a", ir.F64).ScalarParam("b", ir.F64)
	callee := cb.Body(
		cb.Ret(cb.Call("sqrt", cb.FAdd(cb.FMul(cb.V("a"), cb.V("a")), cb.FMul(cb.V("b"), cb.V("b"))))),
	)
	prog.AddFunc(callee)

	b := irbuild.NewFunc("main")
	b.ScalarParam("x", ir.F64)
	fn := b.Body(b.Ret(b.Call("hyp", b.V("x"), b.F(4))))
	prog.AddFunc(fn)

	m := machine.PentiumIV()
	r := NewRunner(m, NewMemory(prog), 5)
	v := compile(t, prog, fn, m)
	cv := compile(t, prog, callee, m)
	v.Callees = map[string]*Version{"hyp": cv}

	got, _, err := r.Run(v, []float64{3})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got != 5 {
		t.Errorf("hyp(3,4) = %v, want 5", got)
	}
}

func TestRuntimeErrors(t *testing.T) {
	prog := ir.NewProgram()
	prog.AddArray("x", ir.F64, 4)
	b := irbuild.NewFunc("oob")
	b.ScalarParam("i", ir.I64)
	fn := b.Body(b.Ret(b.At("x", b.V("i"))))
	prog.AddFunc(fn)
	m := machine.SPARCII()
	r := NewRunner(m, NewMemory(prog), 6)
	v := compile(t, prog, fn, m)

	if _, _, err := r.Run(v, []float64{9}); err == nil {
		t.Error("out-of-bounds read did not fail")
	}
	if _, _, err := r.Run(v, []float64{-1}); err == nil {
		t.Error("negative index did not fail")
	}
	if _, _, err := r.Run(v, []float64{2}); err != nil {
		t.Errorf("in-bounds read failed: %v", err)
	}

	db := irbuild.NewFunc("divz")
	db.ScalarParam("d", ir.I64)
	dfn := db.Body(db.Ret(db.Div(db.I(10), db.V("d"))))
	prog.AddFunc(dfn)
	dv := compile(t, prog, dfn, m)
	if _, _, err := r.Run(dv, []float64{0}); err == nil {
		t.Error("division by zero did not fail")
	}
}

func TestCachePersistsAcrossRuns(t *testing.T) {
	prog := ir.NewProgram()
	prog.AddArray("big", ir.F64, 8192)
	b := irbuild.NewFunc("scan")
	b.ScalarParam("n", ir.I64).Local("s", ir.F64)
	fn := b.Body(
		b.For("i", b.I(0), b.V("n"), 1,
			b.Set(b.V("s"), b.FAdd(b.V("s"), b.At("big", b.V("i"))))),
		b.Ret(b.V("s")),
	)
	prog.AddFunc(fn)
	m := machine.PentiumIV()
	r := NewRunner(m, NewMemory(prog), 7)
	v := compile(t, prog, fn, m)

	_, cold, err := r.Run(v, []float64{512})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	_, warm, err := r.Run(v, []float64{512})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if warm.Cycles >= cold.Cycles {
		t.Errorf("warm run (%d cycles) not faster than cold run (%d cycles)", warm.Cycles, cold.Cycles)
	}
	r.ResetMicroarch()
	_, cold2, err := r.Run(v, []float64{512})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if cold2.Cycles <= warm.Cycles {
		t.Errorf("post-reset run (%d) not slower than warm run (%d)", cold2.Cycles, warm.Cycles)
	}
}

func TestClockNoise(t *testing.T) {
	m := machine.SPARCII()
	c := NewClock(m, 42)
	const cycles = 1_000_000
	var sum, sumSq float64
	const n = 2000
	for i := 0; i < n; i++ {
		v := c.Measure(cycles)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	if math.Abs(mean/cycles-1) > 0.02 {
		t.Errorf("noisy mean %v deviates from %d by more than 2%%", mean, cycles)
	}
	variance := sumSq/n - mean*mean
	if variance <= 0 {
		t.Error("noise has no variance")
	}
	c.NoiseOff = true
	if got := c.Measure(cycles); got != cycles {
		t.Errorf("NoiseOff Measure = %v, want %d", got, cycles)
	}
}

func TestBlockCountsReported(t *testing.T) {
	prog := ir.NewProgram()
	b := irbuild.NewFunc("loop")
	b.ScalarParam("n", ir.I64).Local("s", ir.I64)
	fn := b.Body(
		b.For("i", b.I(0), b.V("n"), 1,
			b.Set(b.V("s"), b.Add(b.V("s"), b.V("i")))),
		b.Ret(b.V("s")),
	)
	prog.AddFunc(fn)
	m := machine.SPARCII()
	r := NewRunner(m, NewMemory(prog), 8)
	r.CollectBlockCounts = true
	v := compile(t, prog, fn, m)

	_, stats, err := r.Run(v, []float64{7})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var bodyCount int64
	for id, b := range v.LF.Blocks {
		_ = id
		if b.LoopDepth == 1 && b.Term.Kind == ir.TermJump {
			bodyCount = stats.BlockCounts[b.Origin]
		}
	}
	if bodyCount != 7 {
		t.Errorf("loop body executed %d times, want 7", bodyCount)
	}
}
