package sim

import (
	"errors"
	"strings"
	"testing"

	"peak/internal/ir"
	"peak/internal/irbuild"
	"peak/internal/machine"
)

// TestUnknownIntrinsicHelper pins the evaluator's contract: known intrinsics
// compute, unknown names are a hard ErrRuntime rather than a silent NaN that
// would surface later as a quarantinable numeric diff.
func TestUnknownIntrinsicHelper(t *testing.T) {
	if v, err := intrinsic("sqrt", []float64{9}); err != nil || v != 3 {
		t.Fatalf(`intrinsic("sqrt", 9) = %v, %v; want 3, nil`, v, err)
	}
	_, err := intrinsic("frobnicate", nil)
	if !errors.Is(err, ErrRuntime) {
		t.Fatalf("unknown intrinsic error = %v, want ErrRuntime", err)
	}
	if want := `unknown intrinsic "frobnicate"`; !strings.Contains(err.Error(), want) {
		t.Errorf("unknown intrinsic error = %q, want it to contain %q", err, want)
	}
}

// TestUnknownIntrinsicBothEngines simulates an ir/sim intrinsic-table drift
// (decode recognized a name the evaluator does not know) and checks that both
// execution engines surface it as the unknown-intrinsic ErrRuntime instead of
// producing a value.
func TestUnknownIntrinsicBothEngines(t *testing.T) {
	prog := ir.NewProgram()
	b := irbuild.NewFunc("f")
	b.ScalarParam("x", ir.F64)
	fn := b.Body(b.Ret(b.Call("sqrt", b.V("x"))))
	prog.AddFunc(fn)
	m := machine.SPARCII()
	v := compile(t, prog, fn, m)
	r := NewRunner(m, NewMemory(prog), 1)

	// Rewrite the decoded call bindings of both engines to a name the
	// evaluator does not implement, keeping the intrinsic marking.
	p := r.plan(v)
	for bi := range p.blocks {
		for ii := range p.blocks[bi].instrs {
			if d := &p.blocks[bi].instrs[ii]; d.intr {
				d.fn = "sqrtish"
			}
		}
	}
	for ci := range p.calls {
		p.calls[ci].fn = "sqrtish"
	}

	for _, eng := range []Engine{EngineFused, EngineRef} {
		r.Engine = eng
		_, _, err := r.Run(v, []float64{4})
		if !errors.Is(err, ErrRuntime) {
			t.Errorf("engine %d: err = %v, want ErrRuntime", eng, err)
			continue
		}
		if want := `unknown intrinsic "sqrtish"`; !strings.Contains(err.Error(), want) {
			t.Errorf("engine %d: err = %q, want it to contain %q", eng, err, want)
		}
	}
}
