package sim

import (
	"fmt"

	"peak/internal/ir"
)

// Array is a named simulated memory region. Base is its simulated byte
// address (elements are 8 bytes), used by the cache model.
type Array struct {
	Name string
	Base uint64
	Data []float64
}

// Memory holds all named arrays of a program instance.
type Memory struct {
	arrays map[string]*Array
	next   uint64
	// gen counts Alloc calls; execution plans that resolved array pointers
	// re-resolve them when it moves (see vplan.sync).
	gen uint64
}

// NewMemory lays out the program's declared arrays in a fresh address space.
func NewMemory(p *ir.Program) *Memory {
	m := &Memory{arrays: make(map[string]*Array), next: 0x1000}
	for _, a := range p.Arrays {
		m.Alloc(a.Name, a.Len)
	}
	if len(p.Scalars) > 0 {
		m.Alloc("$g", len(p.Scalars))
	}
	return m
}

// Alloc creates (or replaces) a named array of n elements, zero-filled,
// at a fresh simulated address, and returns it.
func (m *Memory) Alloc(name string, n int) *Array {
	a := &Array{Name: name, Base: m.next, Data: make([]float64, n)}
	// Pad between arrays to a cache-line-ish boundary plus a skew so that
	// distinct arrays do not systematically collide in direct-mapped sets.
	m.next += uint64(n)*8 + 256 + uint64(len(m.arrays)+1)*64
	m.arrays[name] = a
	m.gen++
	return a
}

// Get returns the named array, or nil.
func (m *Memory) Get(name string) *Array { return m.arrays[name] }

func (m *Memory) array(name string) (*Array, error) {
	if a := m.arrays[name]; a != nil {
		return a, nil
	}
	return nil, fmt.Errorf("%w: unknown array %q", ErrRuntime, name)
}

// Names returns all array names (unordered).
func (m *Memory) Names() []string {
	out := make([]string, 0, len(m.arrays))
	for n := range m.arrays {
		out = append(out, n)
	}
	return out
}

// Snapshot copies the contents of the named arrays. It is the substrate for
// RBR's "save the Modified_Input(TS)" step; the rating engine charges
// save/restore cycles proportional to the elements copied.
func (m *Memory) Snapshot(names []string) map[string][]float64 {
	snap := make(map[string][]float64, len(names))
	for _, n := range names {
		if a := m.arrays[n]; a != nil {
			cp := make([]float64, len(a.Data))
			copy(cp, a.Data)
			snap[n] = cp
		}
	}
	return snap
}

// Restore writes a snapshot back into memory.
func (m *Memory) Restore(snap map[string][]float64) {
	for n, data := range snap {
		if a := m.arrays[n]; a != nil {
			copy(a.Data, data)
		}
	}
}

// SnapshotSize returns the total number of elements in a snapshot.
func SnapshotSize(snap map[string][]float64) int {
	n := 0
	for _, d := range snap {
		n += len(d)
	}
	return n
}

// WriteRec is one entry of the runner's write log: the value that lived at
// Arr[Idx] before a store overwrote it.
type WriteRec struct {
	Arr string
	Idx int64
	Old float64
}

// UndoWrites restores the overwritten values of a write log, newest first
// (so repeated writes to one cell end at the original value).
func (m *Memory) UndoWrites(log []WriteRec) {
	for i := len(log) - 1; i >= 0; i-- {
		rec := log[i]
		if a := m.arrays[rec.Arr]; a != nil && rec.Idx >= 0 && rec.Idx < int64(len(a.Data)) {
			a.Data[rec.Idx] = rec.Old
		}
	}
}
