package sim

import (
	"testing"

	"peak/internal/ir"
)

func TestMemoryLayout(t *testing.T) {
	p := ir.NewProgram()
	p.AddArray("a", ir.F64, 10)
	p.AddArray("b", ir.I64, 20)
	p.AddScalar("g", ir.F64)
	m := NewMemory(p)

	a, b, g := m.Get("a"), m.Get("b"), m.Get("$g")
	if a == nil || b == nil || g == nil {
		t.Fatal("arrays not allocated")
	}
	if len(a.Data) != 10 || len(b.Data) != 20 || len(g.Data) != 1 {
		t.Errorf("lengths: %d/%d/%d", len(a.Data), len(b.Data), len(g.Data))
	}
	// Distinct, non-overlapping simulated addresses.
	if a.Base == b.Base || b.Base == g.Base {
		t.Error("arrays share base addresses")
	}
	if b.Base < a.Base+uint64(len(a.Data))*8 {
		t.Error("array address ranges overlap")
	}
	if m.Get("ghost") != nil {
		t.Error("ghost array found")
	}
	if len(m.Names()) != 3 {
		t.Errorf("names = %v", m.Names())
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	p := ir.NewProgram()
	p.AddArray("a", ir.F64, 4)
	p.AddArray("b", ir.F64, 4)
	m := NewMemory(p)
	for i := range m.Get("a").Data {
		m.Get("a").Data[i] = float64(i)
		m.Get("b").Data[i] = float64(10 + i)
	}
	snap := m.Snapshot([]string{"a"})
	if SnapshotSize(snap) != 4 {
		t.Errorf("snapshot size = %d, want 4", SnapshotSize(snap))
	}
	m.Get("a").Data[2] = 99
	m.Get("b").Data[2] = 99
	m.Restore(snap)
	if m.Get("a").Data[2] != 2 {
		t.Error("a not restored")
	}
	if m.Get("b").Data[2] != 99 {
		t.Error("b restored although not snapshotted")
	}
	// Snapshot of unknown names is silently empty (conservative callers
	// pass static sets that may include unused arrays).
	if got := m.Snapshot([]string{"nope"}); len(got) != 0 {
		t.Errorf("snapshot of unknown array: %v", got)
	}
}

func TestUndoWritesOrdering(t *testing.T) {
	p := ir.NewProgram()
	p.AddArray("a", ir.F64, 2)
	m := NewMemory(p)
	m.Get("a").Data[0] = 1
	// Two writes to the same cell: undo must land on the ORIGINAL value.
	log := []WriteRec{
		{Arr: "a", Idx: 0, Old: 1}, // first write observed old=1
		{Arr: "a", Idx: 0, Old: 5}, // second write observed old=5
	}
	m.Get("a").Data[0] = 7
	m.UndoWrites(log)
	if got := m.Get("a").Data[0]; got != 1 {
		t.Errorf("undo landed on %v, want the original 1", got)
	}
	// Undo tolerates stale entries.
	m.UndoWrites([]WriteRec{{Arr: "ghost", Idx: 0, Old: 0}, {Arr: "a", Idx: 99, Old: 0}})
}
