package sim

import (
	"peak/internal/ir"
)

// This file implements the execution fast path: a per-(Runner, Version)
// decoded plan that folds everything static about an instruction — operand
// stall lists, machine issue costs, spill-load/spill-store traffic, call
// linkage overhead, resolved memory arrays, resolved branch targets — into
// flat dispatch tables built once, so the per-invocation interpreter loop
// performs no map lookups and no operand re-decoding.
//
// A plan is private to its Runner (Runners are single-goroutine), so it may
// also hold the Runner's mutable per-version state: the 2-bit
// branch-predictor counters, which are re-initialized in place (zero +
// static hints) when ResetMicroarch bumps the runner's epoch instead of
// being reallocated for every program run.
//
// Exactness contract: executing a plan is bit-identical to the reference
// interpreter it replaced. All cost folding is integer addition of values
// the old loop summed dynamically, and the two float64 quantities involved
// (taken-branch scaling, call-overhead scaling) are rounded to int64 by
// exactly the original expressions, once, at decode time.

// dInstr is one decoded instruction.
type dInstr struct {
	op  ir.Opcode
	a   ir.Reg
	b   ir.Reg
	src ir.Reg
	// def is the register written (ir.NoReg if none), as in ir.Instr.Def.
	def ir.Reg

	imm  int64
	fimm float64

	// uses lists the registers whose ready-times gate issue. For calls it
	// aliases callArgs; for moves with immediates it is empty.
	uses []ir.Reg

	// cost is the static issue cost: machine OpCost plus spill-load cost
	// per spilled use, plus (for calls) linkage overhead and intrinsic
	// cost. Dynamic parts (callee cycles, cache latency) are added at run
	// time exactly as the reference loop did.
	cost int64
	// lat is the machine's result latency for the opcode.
	lat int64
	// storeCost is the spill-store cost charged after the def's ready time
	// is published (0 when the def is not spilled or absent).
	storeCost int64

	// arr is the resolved memory array for LLoad/LStore (nil if the name
	// is unknown — reported at execution time, like the interpreter did).
	arr     *Array
	arrName string

	// callee is the resolved user-function plan for LCall (nil for
	// intrinsics and unresolved names).
	callee   *vplan
	intr     bool
	fn       string
	callArgs []ir.Reg
}

// dBlock is one decoded basic block.
type dBlock struct {
	instrs []dInstr
	origin int

	termKind ir.TermKind
	cond     ir.Reg
	condCost int64 // spill-load cost when the condition register is spilled
	thenIdx  int   // slice index of the Then target
	elseIdx  int   // slice index of the Else target
	val      ir.Reg
}

// vplan is the decoded form of one Version for one Runner.
type vplan struct {
	v      *Version
	name   string
	blocks []dBlock

	// predInit is the cold predictor image (static hints applied); pred is
	// the live state, re-initialized from predInit when predEpoch falls
	// behind the runner's epoch.
	predInit  []uint8
	pred      []uint8
	predEpoch uint64

	// perBlockFetch and takenCost are the version's icache-overflow and
	// taken-branch charges, folded with the version's cost modifiers.
	perBlockFetch float64
	takenCost     int64
	mispredict    int64

	numCounters int
	// memGen is the Memory generation the arr pointers were resolved
	// against; Alloc-ing a new array re-resolves them.
	memGen uint64
}

// plan returns the decoded plan for v, building it on first use. A
// one-entry fast path covers the common case of the same version being
// executed invocation after invocation.
func (r *Runner) plan(v *Version) *vplan {
	if r.lastV == v {
		return r.lastPlan
	}
	p, ok := r.plans[v]
	if !ok {
		p = r.decode(v)
	}
	r.lastV, r.lastPlan = v, p
	return p
}

func spillAt(spilled []bool, reg ir.Reg) bool {
	return reg >= 0 && int(reg) < len(spilled) && spilled[reg]
}

// decode builds the plan for v (and, recursively, its callees).
func (r *Runner) decode(v *Version) *vplan {
	m := r.Mach
	lf := v.LF
	p := &vplan{
		v:           v,
		name:        lf.Name,
		numCounters: lf.NumCounters,
		takenCost:   int64(float64(m.TakenBranchCost) * v.Mods.TakenBranchFactor),
		mispredict:  m.MispredictPenalty,
		memGen:      r.Mem.gen,
	}
	// Register the plan before decoding so (hypothetical) call cycles
	// terminate; versions form a DAG, but memoization costs nothing.
	r.plans[v] = p

	if total := v.CodeSize + v.Mods.CodeSizeExtra; total > m.ICacheInstrs {
		overflow := total - m.ICacheInstrs
		p.perBlockFetch = m.FetchPenalty * float64(overflow) / float64(m.ICacheInstrs)
	}

	idx := v.index()
	spilled := v.Alloc.Spilled
	callOverhead := int64(float64(m.CallOverhead) * v.Mods.CallOverheadFactor)

	p.blocks = make([]dBlock, len(lf.Blocks))
	for bi, b := range lf.Blocks {
		db := &p.blocks[bi]
		db.origin = b.Origin
		db.termKind = b.Term.Kind
		switch b.Term.Kind {
		case ir.TermJump:
			db.thenIdx = idx[b.Term.Then]
		case ir.TermBranch:
			db.thenIdx = idx[b.Term.Then]
			db.elseIdx = idx[b.Term.Else]
			db.cond = b.Term.Cond
			if spillAt(spilled, b.Term.Cond) {
				db.condCost = m.SpillLoadCost
			}
		case ir.TermReturn:
			db.val = b.Term.Val
		}

		db.instrs = make([]dInstr, 0, len(b.Instrs))
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.LNop {
				// Nops cost nothing and count nothing; drop them here.
				continue
			}
			d := dInstr{
				op: in.Op, a: in.A, b: in.B, src: in.Src, def: in.Def(),
				imm: in.Imm, fimm: in.FImm,
				cost: m.OpCost[in.Op], lat: m.OpLatency[in.Op],
			}
			switch in.Op {
			case ir.LCount:
				// Zero-cost instrumentation: only the counter ID matters.
				d.cost, d.lat = 0, 0
			case ir.LMovI, ir.LMovF:
				// No operand stalls.
			case ir.LCall:
				d.fn = in.Fn
				d.callArgs = in.CallArgs
				d.uses = in.CallArgs
				for _, u := range in.CallArgs {
					if spillAt(spilled, u) {
						d.cost += m.SpillLoadCost
					}
				}
				d.cost += callOverhead
				if _, ok := ir.IsIntrinsic(in.Fn); ok {
					d.intr = true
					d.cost += m.IntrinsicCost
				} else if cv, ok := v.Callees[in.Fn]; ok {
					if cp, seen := r.plans[cv]; seen {
						d.callee = cp
					} else {
						d.callee = r.decode(cv)
					}
				}
			default:
				for _, u := range [...]ir.Reg{in.A, in.B, in.Src} {
					if u == ir.NoReg {
						continue
					}
					d.uses = append(d.uses, u)
					if spillAt(spilled, u) {
						d.cost += m.SpillLoadCost
					}
				}
				if in.Op == ir.LLoad || in.Op == ir.LStore {
					d.arrName = in.Arr
					d.arr = r.Mem.Get(in.Arr)
				}
			}
			if spillAt(spilled, d.def) {
				d.storeCost = m.SpillStoreCost
			}
			db.instrs = append(db.instrs, d)
		}
	}

	p.predInit = predictorImage(v)
	p.pred = make([]uint8, len(p.predInit))
	// predEpoch 0 is always behind the runner's epoch (which starts at 1),
	// so the first execution initializes pred from predInit.
	return p
}

// predictorImage builds the cold 2-bit predictor state for v: weakly
// not-taken everywhere, or the static-hint image when the version was built
// with guess-branch-probability.
func predictorImage(v *Version) []uint8 {
	p := make([]uint8, len(v.LF.Blocks))
	if v.Mods.StaticPredict {
		for i, b := range v.LF.Blocks {
			if b.Term.Kind == ir.TermBranch {
				switch {
				case b.Term.Likely > 0:
					p[i] = 3
				case b.Term.Likely < 0:
					p[i] = 0
				default:
					p[i] = 1
				}
			}
		}
	}
	return p
}

// sync brings the plan's mutable bindings up to date with the runner: the
// predictor state (per program run) and the resolved array pointers (only
// when the Memory allocated or replaced arrays since decode).
func (p *vplan) sync(r *Runner) {
	if p.predEpoch != r.epoch {
		copy(p.pred, p.predInit)
		p.predEpoch = r.epoch
	}
	if p.memGen != r.Mem.gen {
		for bi := range p.blocks {
			instrs := p.blocks[bi].instrs
			for i := range instrs {
				if instrs[i].arrName != "" {
					instrs[i].arr = r.Mem.Get(instrs[i].arrName)
				}
			}
		}
		p.memGen = r.Mem.gen
	}
}
