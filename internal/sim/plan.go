package sim

import (
	"math"

	"peak/internal/cache"
	"peak/internal/ir"
)

// This file implements the execution fast path: a per-(Runner, Version)
// decoded plan that folds everything static about an instruction — operand
// stall lists, machine issue costs, spill-load/spill-store traffic, call
// linkage overhead, resolved memory arrays, resolved branch targets — into
// flat dispatch tables built once, so the per-invocation interpreter loop
// performs no map lookups and no operand re-decoding.
//
// A plan is private to its Runner (Runners are single-goroutine), so it may
// also hold the Runner's mutable per-version state: the 2-bit
// branch-predictor counters, which are re-initialized in place (zero +
// static hints) when ResetMicroarch bumps the runner's epoch instead of
// being reallocated for every program run.
//
// Exactness contract: executing a plan is bit-identical to the reference
// interpreter it replaced. All cost folding is integer addition of values
// the old loop summed dynamically, and the two float64 quantities involved
// (taken-branch scaling, call-overhead scaling) are rounded to int64 by
// exactly the original expressions, once, at decode time.

// dInstr is one decoded instruction.
type dInstr struct {
	op  ir.Opcode
	a   ir.Reg
	b   ir.Reg
	src ir.Reg
	// def is the register written (ir.NoReg if none), as in ir.Instr.Def.
	def ir.Reg

	imm  int64
	fimm float64

	// uses lists the registers whose ready-times gate issue. For calls it
	// aliases callArgs; for moves with immediates it is empty.
	uses []ir.Reg

	// cost is the static issue cost: machine OpCost plus spill-load cost
	// per spilled use, plus (for calls) linkage overhead and intrinsic
	// cost. Dynamic parts (callee cycles, cache latency) are added at run
	// time exactly as the reference loop did.
	cost int64
	// lat is the machine's result latency for the opcode.
	lat int64
	// storeCost is the spill-store cost charged after the def's ready time
	// is published (0 when the def is not spilled or absent).
	storeCost int64

	// arr is the resolved memory array for LLoad/LStore (nil if the name
	// is unknown — reported at execution time, like the interpreter did).
	arr     *Array
	arrName string

	// callee is the resolved user-function plan for LCall (nil for
	// intrinsics and unresolved names).
	callee   *vplan
	intr     bool
	fn       string
	callArgs []ir.Reg
}

// dBlock is one decoded basic block.
type dBlock struct {
	instrs []dInstr
	origin int

	termKind ir.TermKind
	cond     ir.Reg
	condCost int64 // spill-load cost when the condition register is spilled
	thenIdx  int   // slice index of the Then target
	elseIdx  int   // slice index of the Else target
	val      ir.Reg
}

// vplan is the decoded form of one Version for one Runner. It carries two
// parallel decodings: the dInstr tables the reference engine walks, and the
// fused micro-op tables (fblocks/mems/calls/traces) the default superblock
// engine executes (exec.go).
type vplan struct {
	v      *Version
	name   string
	blocks []dBlock

	// Fused-engine tables (built by buildFused from the dInstr decode).
	fblocks []fBlock
	consts  []float64
	mems    []memInfo
	calls   []callInfo
	traces  []traceInfo
	// nregs is the fused register-file size: LF.NumRegs plus the read- and
	// write-dummy registers backing absent operand slots.
	nregs int

	// predInit is the cold predictor image (static hints applied); pred is
	// the live state, re-initialized from predInit when predEpoch falls
	// behind the runner's epoch.
	predInit  []uint8
	pred      []uint8
	predEpoch uint64

	// perBlockFetch and takenCost are the version's icache-overflow and
	// taken-branch charges, folded with the version's cost modifiers.
	perBlockFetch float64
	takenCost     int64
	mispredict    int64

	numCounters int
	// memGen is the Memory generation the arr pointers were resolved
	// against; Alloc-ing a new array re-resolves them.
	memGen uint64
}

// plan returns the decoded plan for v, building it on first use. A
// one-entry fast path covers the common case of the same version being
// executed invocation after invocation.
func (r *Runner) plan(v *Version) *vplan {
	if r.lastV == v {
		return r.lastPlan
	}
	p, ok := r.plans[v]
	if !ok {
		p = r.decode(v)
	}
	r.lastV, r.lastPlan = v, p
	return p
}

func spillAt(spilled []bool, reg ir.Reg) bool {
	return reg >= 0 && int(reg) < len(spilled) && spilled[reg]
}

// decode builds the plan for v (and, recursively, its callees).
func (r *Runner) decode(v *Version) *vplan {
	m := r.Mach
	lf := v.LF
	p := &vplan{
		v:           v,
		name:        lf.Name,
		numCounters: lf.NumCounters,
		takenCost:   int64(float64(m.TakenBranchCost) * v.Mods.TakenBranchFactor),
		mispredict:  m.MispredictPenalty,
		memGen:      r.Mem.gen,
	}
	// Register the plan before decoding so (hypothetical) call cycles
	// terminate; versions form a DAG, but memoization costs nothing.
	r.plans[v] = p

	if total := v.CodeSize + v.Mods.CodeSizeExtra; total > m.ICacheInstrs {
		overflow := total - m.ICacheInstrs
		p.perBlockFetch = m.FetchPenalty * float64(overflow) / float64(m.ICacheInstrs)
	}

	idx := v.index()
	spilled := v.Alloc.Spilled
	callOverhead := int64(float64(m.CallOverhead) * v.Mods.CallOverheadFactor)

	p.blocks = make([]dBlock, len(lf.Blocks))
	for bi, b := range lf.Blocks {
		db := &p.blocks[bi]
		db.origin = b.Origin
		db.termKind = b.Term.Kind
		switch b.Term.Kind {
		case ir.TermJump:
			db.thenIdx = idx[b.Term.Then]
		case ir.TermBranch:
			db.thenIdx = idx[b.Term.Then]
			db.elseIdx = idx[b.Term.Else]
			db.cond = b.Term.Cond
			if spillAt(spilled, b.Term.Cond) {
				db.condCost = m.SpillLoadCost
			}
		case ir.TermReturn:
			db.val = b.Term.Val
		}

		db.instrs = make([]dInstr, 0, len(b.Instrs))
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.LNop {
				// Nops cost nothing and count nothing; drop them here.
				continue
			}
			d := dInstr{
				op: in.Op, a: in.A, b: in.B, src: in.Src, def: in.Def(),
				imm: in.Imm, fimm: in.FImm,
				cost: m.OpCost[in.Op], lat: m.OpLatency[in.Op],
			}
			switch in.Op {
			case ir.LCount:
				// Zero-cost instrumentation: only the counter ID matters.
				d.cost, d.lat = 0, 0
			case ir.LMovI, ir.LMovF:
				// No operand stalls.
			case ir.LCall:
				d.fn = in.Fn
				d.callArgs = in.CallArgs
				d.uses = in.CallArgs
				for _, u := range in.CallArgs {
					if spillAt(spilled, u) {
						d.cost += m.SpillLoadCost
					}
				}
				d.cost += callOverhead
				if _, ok := ir.IsIntrinsic(in.Fn); ok {
					d.intr = true
					d.cost += m.IntrinsicCost
				} else if cv, ok := v.Callees[in.Fn]; ok {
					if cp, seen := r.plans[cv]; seen {
						d.callee = cp
					} else {
						d.callee = r.decode(cv)
					}
				}
			default:
				for _, u := range [...]ir.Reg{in.A, in.B, in.Src} {
					if u == ir.NoReg {
						continue
					}
					d.uses = append(d.uses, u)
					if spillAt(spilled, u) {
						d.cost += m.SpillLoadCost
					}
				}
				if in.Op == ir.LLoad || in.Op == ir.LStore {
					d.arrName = in.Arr
					d.arr = r.Mem.Get(in.Arr)
				}
			}
			if spillAt(spilled, d.def) {
				d.storeCost = m.SpillStoreCost
			}
			db.instrs = append(db.instrs, d)
		}
	}

	p.predInit = predictorImage(v)
	p.pred = make([]uint8, len(p.predInit))
	p.buildFused()
	// predEpoch 0 is always behind the runner's epoch (which starts at 1),
	// so the first execution initializes pred from predInit.
	return p
}

// buildFused lowers the dInstr decode into the fused engine's micro-op
// tables: fixed-shape uops (absent operands aliased to the read dummy,
// absent destinations to the write dummy), pre-resolved memory and call
// bindings, folded costs, and fused superblock traces over pure-ALU runs.
func (p *vplan) buildFused() {
	lf := p.v.LF
	readDummy := int32(lf.NumRegs)
	writeDummy := readDummy + 1
	p.nregs = lf.NumRegs + 2

	// use maps a register operand slot; absent slots read the dummy.
	use := func(r ir.Reg) int32 {
		if r == ir.NoReg {
			return readDummy
		}
		return int32(r)
	}
	def := func(r ir.Reg) int32 {
		if r == ir.NoReg {
			return writeDummy
		}
		return int32(r)
	}

	p.fblocks = make([]fBlock, len(p.blocks))
	for bi := range p.blocks {
		db := &p.blocks[bi]
		fb := &p.fblocks[bi]
		fb.origin = db.origin
		fb.termKind = db.termKind
		fb.cond = int32(db.cond)
		fb.condCost = db.condCost
		fb.thenIdx = db.thenIdx
		fb.elseIdx = db.elseIdx
		fb.val = int32(db.val)

		uops := make([]uop, 0, len(db.instrs))
		for ii := range db.instrs {
			d := &db.instrs[ii]
			u := uop{
				dst:       def(d.def),
				a:         readDummy,
				b:         readDummy,
				c:         readDummy,
				readyCost: int32(d.cost + d.lat),
				cycleCost: int32(d.cost + d.storeCost),
			}
			switch d.op {
			case ir.LMovI:
				u.kind, u.aux = uConst, int32(len(p.consts))
				p.consts = append(p.consts, float64(d.imm))
			case ir.LMovF:
				u.kind, u.aux = uConst, int32(len(p.consts))
				p.consts = append(p.consts, d.fimm)
			case ir.LMov:
				u.kind, u.a = uMov, use(d.a)
			case ir.LAdd, ir.LFAdd:
				u.kind, u.a, u.b = uAdd, use(d.a), use(d.b)
			case ir.LSub, ir.LFSub:
				u.kind, u.a, u.b = uSub, use(d.a), use(d.b)
			case ir.LMul, ir.LFMul:
				u.kind, u.a, u.b = uMul, use(d.a), use(d.b)
			case ir.LFDiv:
				u.kind, u.a, u.b = uFDiv, use(d.a), use(d.b)
			case ir.LDiv:
				u.kind, u.a, u.b = uDiv, use(d.a), use(d.b)
			case ir.LMod:
				u.kind, u.a, u.b = uMod, use(d.a), use(d.b)
			case ir.LAnd:
				u.kind, u.a, u.b = uAnd, use(d.a), use(d.b)
			case ir.LOr:
				u.kind, u.a, u.b = uOr, use(d.a), use(d.b)
			case ir.LXor:
				u.kind, u.a, u.b = uXor, use(d.a), use(d.b)
			case ir.LShl:
				u.kind, u.a, u.b = uShl, use(d.a), use(d.b)
			case ir.LShr:
				u.kind, u.a, u.b = uShr, use(d.a), use(d.b)
			case ir.LNeg, ir.LFNeg:
				u.kind, u.a = uNeg, use(d.a)
			case ir.LNot:
				u.kind, u.a = uNot, use(d.a)
			case ir.LCmpEq, ir.LFCmpEq:
				u.kind, u.a, u.b = uCmpEq, use(d.a), use(d.b)
			case ir.LCmpNe, ir.LFCmpNe:
				u.kind, u.a, u.b = uCmpNe, use(d.a), use(d.b)
			case ir.LCmpLt, ir.LFCmpLt:
				u.kind, u.a, u.b = uCmpLt, use(d.a), use(d.b)
			case ir.LCmpLe, ir.LFCmpLe:
				u.kind, u.a, u.b = uCmpLe, use(d.a), use(d.b)
			case ir.LCmpGt, ir.LFCmpGt:
				u.kind, u.a, u.b = uCmpGt, use(d.a), use(d.b)
			case ir.LCmpGe, ir.LFCmpGe:
				u.kind, u.a, u.b = uCmpGe, use(d.a), use(d.b)
			case ir.LSelect:
				u.kind, u.a, u.b, u.c = uSelect, use(d.a), use(d.b), use(d.src)
			case ir.LLoad:
				u.kind, u.a = uLoad, use(d.a)
				u.aux = int32(len(p.mems))
				p.mems = append(p.mems, memInfo{arr: d.arr, hint: cache.NoLine, name: d.arrName})
			case ir.LStore:
				u.kind, u.a, u.c = uStore, use(d.a), use(d.src)
				u.aux = int32(len(p.mems))
				p.mems = append(p.mems, memInfo{arr: d.arr, hint: cache.NoLine, name: d.arrName})
			case ir.LCall:
				ci := callInfo{fn: d.fn, callee: d.callee}
				ci.args = make([]int32, len(d.callArgs))
				for j, ar := range d.callArgs {
					ci.args[j] = int32(ar)
				}
				// The first three arguments gate issue through the operand
				// slots; the call cases extend over any remainder.
				for j, ar := range ci.args {
					switch j {
					case 0:
						u.a = ar
					case 1:
						u.b = ar
					case 2:
						u.c = ar
					}
				}
				switch {
				case d.intr:
					u.kind = uCallIntr
				case d.callee != nil:
					u.kind = uCallUser
				default:
					u.kind = uCallBad
				}
				u.aux = int32(len(p.calls))
				p.calls = append(p.calls, ci)
			case ir.LCount:
				u.kind = uCount
				// Pre-resolve the reference's bounds check; -1 drops the
				// bump exactly as an out-of-range ID does there.
				if d.imm >= 0 && d.imm < int64(p.numCounters) {
					u.aux = int32(d.imm)
				} else {
					u.aux = -1
				}
			}
			uops = append(uops, u)
		}
		fb.uops = uops
	}

	// Ready-liveness: a register's ready time is observable only where the
	// engine actually reads it — operand gating in the generic loop, call
	// argument gating, and branch-condition gating. The flow-sensitive
	// backward dataflow over the raw micro-ops tells buildTraces exactly
	// which definitions are live past each fused run, so a trace carries
	// only the outs something later can observe. Scratch register state is
	// invisible to the reference contract, so this cannot change any
	// observable.
	liveOut := p.readyLiveness()
	for bi := range p.fblocks {
		fb := &p.fblocks[bi]
		liveEnd := append(regSet(nil), liveOut[bi]...)
		if fb.termKind == ir.TermBranch {
			liveEnd.set(fb.cond)
		}
		fb.uops = p.buildTraces(fb.uops, readDummy, liveEnd)
		for i := range fb.uops {
			if k := fb.uops[i].kind; k != uCount && k != uTrace {
				fb.steps++
			}
		}
	}
	p.compactTraces()

	// Pad mems and consts to power-of-two lengths so the interpreter can
	// index them as table[aux&(len(table)-1)] with the bounds check elided;
	// real aux values are all below the unpadded length, so the mask never
	// changes them and the padding entries are never touched.
	memLen := 1
	for memLen < len(p.mems) {
		memLen <<= 1
	}
	for len(p.mems) < memLen {
		p.mems = append(p.mems, memInfo{hint: cache.NoLine})
	}
	constLen := 1
	for constLen < len(p.consts) {
		constLen <<= 1
	}
	for len(p.consts) < constLen {
		p.consts = append(p.consts, 0)
	}
}

// regSet is a register bitset for the ready-liveness dataflow.
type regSet []uint64

func newRegSet(n int) regSet { return make(regSet, (n+63)/64) }

func (s regSet) has(r int32) bool { return s[r>>6]&(1<<(uint32(r)&63)) != 0 }
func (s regSet) set(r int32)      { s[r>>6] |= 1 << (uint32(r) & 63) }
func (s regSet) clear(r int32)    { s[r>>6] &^= 1 << (uint32(r) & 63) }

// uopDefsReady reports whether executing a micro-op of kind k on the generic
// path writes its destination's ready time (i.e. kills the prior one).
// Stores and counters define nothing, uTrace is a pseudo-op, and uCallBad
// errors out before writing.
func uopDefsReady(k ukind) bool {
	switch k {
	case uStore, uCount, uTrace, uCallBad:
		return false
	}
	return true
}

// uopReadyUses calls f for every register whose ready time gates the issue
// of micro-op u on the generic path. Dummy operand slots alias the
// read-dummy register, whose ready is pinned at zero — including it is
// harmless (it is never defined, so it never becomes an out).
func (p *vplan) uopReadyUses(u *uop, f func(int32)) {
	switch u.kind {
	case uConst, uCount, uTrace, uCallBad:
	case uCallIntr, uCallUser:
		for _, ar := range p.calls[u.aux].args {
			f(ar)
		}
	default:
		f(u.a)
		f(u.b)
		f(u.c)
	}
}

// readyLiveness runs a backward may-liveness dataflow over the raw micro-op
// CFG for ready times: a register is ready-live at a point if some path from
// there reads its ready (operand gating, call-argument gating, or
// branch-condition gating) before redefining it. buildTraces uses the result
// to keep only the trace outs something can actually observe.
func (p *vplan) readyLiveness() []regSet {
	n := len(p.fblocks)
	use := make([]regSet, n)
	kill := make([]regSet, n)
	liveIn := make([]regSet, n)
	liveOut := make([]regSet, n)
	for bi := range p.fblocks {
		fb := &p.fblocks[bi]
		u := newRegSet(p.nregs)
		k := newRegSet(p.nregs)
		addUse := func(r int32) {
			if !k.has(r) {
				u.set(r)
			}
		}
		for i := range fb.uops {
			op := &fb.uops[i]
			p.uopReadyUses(op, addUse)
			if uopDefsReady(op.kind) {
				k.set(op.dst)
			}
		}
		if fb.termKind == ir.TermBranch {
			addUse(fb.cond)
		}
		use[bi], kill[bi] = u, k
		liveIn[bi] = newRegSet(p.nregs)
		liveOut[bi] = newRegSet(p.nregs)
	}
	for changed := true; changed; {
		changed = false
		for bi := n - 1; bi >= 0; bi-- {
			fb := &p.fblocks[bi]
			lo := liveOut[bi]
			switch fb.termKind {
			case ir.TermJump:
				for w, v := range liveIn[fb.thenIdx] {
					lo[w] |= v
				}
			case ir.TermBranch:
				for w, v := range liveIn[fb.thenIdx] {
					lo[w] |= v
				}
				for w, v := range liveIn[fb.elseIdx] {
					lo[w] |= v
				}
			}
			li := liveIn[bi]
			for w := range li {
				nv := use[bi][w] | (lo[w] &^ kill[bi][w])
				if nv != li[w] {
					li[w] = nv
					changed = true
				}
			}
		}
	}
	return liveOut
}

// compactTraces re-packs every trace's metadata slices into two plan-wide
// flat arrays (one int32, one int16) and re-points the traces at sub-slices,
// so the entry path walks a handful of contiguous cache lines instead of the
// scattered per-trace allocations decode produced.
func (p *vplan) compactTraces() {
	var n32, n16 int
	for ti := range p.traces {
		tr := &p.traces[ti]
		n32 += len(tr.liveIn) + len(tr.outDst)
		n16 += len(tr.wCycle) + len(tr.outW0) + len(tr.outW)
	}
	flat32 := make([]int32, 0, n32)
	flat16 := make([]int16, 0, n16)
	sub32 := func(s []int32) []int32 {
		at := len(flat32)
		flat32 = append(flat32, s...)
		return flat32[at:len(flat32):len(flat32)]
	}
	sub16 := func(s []int16) []int16 {
		at := len(flat16)
		flat16 = append(flat16, s...)
		return flat16[at:len(flat16):len(flat16)]
	}
	for ti := range p.traces {
		tr := &p.traces[ti]
		tr.liveIn = sub32(tr.liveIn)
		tr.outDst = sub32(tr.outDst)
		tr.wCycle = sub16(tr.wCycle)
		tr.outW0 = sub16(tr.outW0)
		tr.outW = sub16(tr.outW)
	}
}

// Trace fusion bounds. A trace's entry cost is proportional to its
// interface — the live-in scan plus the out-ready writes — while its payoff
// is proportional to its body (per-op work the values-only replay avoids),
// so fusion is gated on the interface/body economics: a run is fused only
// when traceGainPerOp per dynamic instruction covers the fixed entry
// overhead plus the per-live-in scan and per-out fold costs (all in the same
// arbitrary cost unit). maxTraceLiveIn additionally bounds the pending
// buffers in execState.
const (
	minTraceLen    = 3
	maxTraceLiveIn = 12

	traceGainPerOp = 3
	traceFixedCost = 8
	traceScanCost  = 2
	traceOutCost   = 3
)

// fusible reports whether k may be included in a superblock trace: every
// cycle it contributes to the schedule is static. Pure ALU ops qualify.
// So do integer div/mod (static latency; the divide-by-zero path re-derives
// the exact reference accounting), stores (they define no register and
// charge no latency, so their cache side effects are order-only and the
// shift argument is untouched), and counter bumps (no schedule contribution
// at all). Loads stay out: their latency is dynamic.
func fusible(k ukind) bool {
	return k <= uSelect || k == uDiv || k == uMod || k == uStore || k == uCount
}

// buildTraces finds maximal runs of fusible micro-ops, resolves their
// schedule once, and splices uTrace heads in front of them.
//
// Exactness: within a fusible run every issue time is max(cycle, ready of
// operands) and every cost is static — no cache latencies, no callee
// cycles. Replaying the run symbolically from cycle 0 with all live-in
// readies at 0 yields offsets o such that, entering at cycle C with no
// live-in ready past C, the real value is exactly C + o, because max and +
// shift uniformly: max(C+x, C+y) = C + max(x, y). The uTrace guard extends
// this one step further: if pending live-ins exist but each one gates the
// run's first op, that op's issue absorbs the largest delay D and the whole
// schedule shifts by D (the cycle chain passes through every op, so the
// shift propagates uniformly; every other live-in ready is ≤ C + D by the
// same max). Entries not matching either condition fall back to the generic
// per-op loop, so fused execution is bit-identical in every case. Faulting
// ops inside a trace (store bounds, div by zero) recompute the exact
// reference step and cycle on the cold path (traceFaultAt).
func (p *vplan) buildTraces(uops []uop, readDummy int32, liveEnd regSet) []uop {
	out := make([]uop, 0, len(uops))
	readySim := make([]int64, p.nregs)

	// liveAfter[k] is the set of registers whose ready time some path reads
	// after uops[k] executes, from the flow-sensitive dataflow seeded with
	// the block's live-out set (plus its branch condition). A fused run's
	// outs are exactly its last definitions in liveAfter at the run's end.
	liveAfter := make([]regSet, len(uops))
	cur := append(regSet(nil), liveEnd...)
	for k := len(uops) - 1; k >= 0; k-- {
		liveAfter[k] = append(regSet(nil), cur...)
		op := &uops[k]
		if uopDefsReady(op.kind) {
			cur.clear(op.dst)
		}
		p.uopReadyUses(op, func(r int32) { cur.set(r) })
	}

	for i := 0; i < len(uops); {
		if !fusible(uops[i].kind) {
			out = append(out, uops[i])
			i++
			continue
		}
		j := i
		for j < len(uops) && fusible(uops[j].kind) {
			j++
		}
		run := uops[i:j]
		stepN := int32(0)
		for k := range run {
			if run[k].kind != uCount {
				stepN++
			}
		}
		if stepN < minTraceLen {
			out = append(out, run...)
			i = j
			continue
		}

		// Live-ins: registers read before they are defined in the run.
		var liveIn []int32
		seen := make(map[int32]bool, len(run))
		defd := make(map[int32]bool, len(run))
		for k := range run {
			u := &run[k]
			for _, op := range [3]int32{u.a, u.b, u.c} {
				if op != readDummy && !defd[op] && !seen[op] {
					seen[op] = true
					liveIn = append(liveIn, op)
				}
			}
			defd[u.dst] = true
		}
		if len(liveIn) > maxTraceLiveIn {
			out = append(out, run...)
			i = j
			continue
		}

		// Outs: only a register's last in-trace definition is observable
		// after the trace (earlier defs of the same register are shadowed),
		// and only if its ready is still live past the run's end.
		defAt := make(map[int32]int, len(run))
		for k := range run {
			u := &run[k]
			if u.kind != uCount && u.kind != uStore {
				defAt[u.dst] = k
			}
		}
		lastDef := make([]int, 0, len(defAt))
		for k := range run {
			if da, ok := defAt[run[k].dst]; ok && da == k && liveAfter[j-1].has(run[k].dst) {
				lastDef = append(lastDef, k)
			}
		}

		// Interface economics: fuse only when the replay gain over the run's
		// body covers the entry cost of scanning the live-ins and writing
		// the out readies.
		if int(stepN)*traceGainPerOp < traceFixedCost+len(liveIn)*traceScanCost+len(lastDef)*traceOutCost {
			out = append(out, run...)
			i = j
			continue
		}

		// Resolve the schedule once: symbolic replay from cycle 0 with all
		// live-in readies at 0 (a live-in ready ≤ the entry cycle can gate
		// nothing — the cycle chain threads the entry cycle through every
		// op — and pinning it at exactly 0 models that inactive gate). The
		// weights are int16, so refuse to fuse a run whose offsets overflow
		// (costs are per-op pipeline latencies, so this needs a ~32k-cycle
		// straight-line run — not seen in practice, but cost mods make it
		// reachable).
		for k := range readySim {
			readySim[k] = 0
		}
		staticRdy := make([]int64, len(run))
		var cycle int64
		overflow := false
		for k := range run {
			u := &run[k]
			if u.kind == uCount {
				continue
			}
			issue := cycle
			if t := readySim[u.a]; t > issue {
				issue = t
			}
			if t := readySim[u.b]; t > issue {
				issue = t
			}
			if t := readySim[u.c]; t > issue {
				issue = t
			}
			if u.kind == uStore {
				// Stores define nothing and charge no latency.
				cycle = issue + int64(u.cycleCost)
				continue
			}
			rdy := issue + int64(u.readyCost)
			readySim[u.dst] = rdy
			if rdy > math.MaxInt16 {
				overflow = true
				break
			}
			staticRdy[k] = rdy
			cycle = issue + int64(u.cycleCost)
		}
		// Path weights: the schedule is (max,+)-linear in its inputs (it is
		// built from max and + alone), so one more symbolic replay per
		// live-in — that live-in's ready pinned at 0, every other input at
		// -inf — yields the longest dependence path from it to each op's
		// ready and to the final cycle. At run time a live-in pending with
		// delay d contributes max-terms d + weight; no path means the
		// sentinel noPath and no term.
		const negInf = int64(-1) << 40
		wRows := make([][]int16, len(liveIn))
		wCycle := make([]int16, len(liveIn))
		for li := 0; li < len(liveIn) && !overflow; li++ {
			wr := make([]int16, len(run))
			c := negInf
			for k := range readySim {
				readySim[k] = negInf
			}
			readySim[liveIn[li]] = 0
			for k := range run {
				u := &run[k]
				wr[k] = noPath
				if u.kind == uCount {
					continue
				}
				issue := c
				if t := readySim[u.a]; t > issue {
					issue = t
				}
				if t := readySim[u.b]; t > issue {
					issue = t
				}
				if t := readySim[u.c]; t > issue {
					issue = t
				}
				if u.kind == uStore {
					c = issue + int64(u.cycleCost)
					continue
				}
				rdy := issue + int64(u.readyCost)
				readySim[u.dst] = rdy
				if rdy > math.MaxInt16 {
					overflow = true
					break
				}
				if rdy > negInf/2 {
					wr[k] = int16(rdy)
				}
				c = issue + int64(u.cycleCost)
			}
			if c > math.MaxInt16 {
				overflow = true
			}
			wCycle[li] = noPath
			if !overflow && c > negInf/2 {
				wCycle[li] = int16(c)
			}
			wRows[li] = wr
		}
		for k := range readySim {
			readySim[k] = 0
		}
		if overflow {
			out = append(out, run...)
			i = j
			continue
		}

		// Fold the per-op rows into the outs: one entry per live last
		// definition, its static ready offset plus its per-live-in path
		// weights (row-major).
		outDst := make([]int32, len(lastDef))
		outW0 := make([]int16, len(lastDef))
		outW := make([]int16, 0, len(lastDef)*len(liveIn))
		for o, k := range lastDef {
			outDst[o] = run[k].dst
			outW0[o] = int16(staticRdy[k])
			for li := range liveIn {
				outW = append(outW, wRows[li][k])
			}
		}

		out = append(out, uop{kind: uTrace, aux: int32(len(p.traces)),
			dst: readDummy, a: readDummy, b: readDummy, c: readDummy})
		p.traces = append(p.traces, traceInfo{
			n: int32(len(run)), stepN: stepN,
			liveIn: liveIn, wCycle: wCycle, cycleDelta: cycle,
			outDst: outDst, outW0: outW0, outW: outW,
		})
		out = append(out, run...)
		i = j
	}
	return out
}

// predictorImage builds the cold 2-bit predictor state for v: weakly
// not-taken everywhere, or the static-hint image when the version was built
// with guess-branch-probability.
func predictorImage(v *Version) []uint8 {
	p := make([]uint8, len(v.LF.Blocks))
	if v.Mods.StaticPredict {
		for i, b := range v.LF.Blocks {
			if b.Term.Kind == ir.TermBranch {
				switch {
				case b.Term.Likely > 0:
					p[i] = 3
				case b.Term.Likely < 0:
					p[i] = 0
				default:
					p[i] = 1
				}
			}
		}
	}
	return p
}

// sync brings the plan's mutable bindings up to date with the runner: the
// predictor state (per program run) and the resolved array pointers (only
// when the Memory allocated or replaced arrays since decode).
func (p *vplan) sync(r *Runner) {
	if p.predEpoch != r.epoch {
		copy(p.pred, p.predInit)
		p.predEpoch = r.epoch
	}
	if p.memGen != r.Mem.gen {
		for bi := range p.blocks {
			instrs := p.blocks[bi].instrs
			for i := range instrs {
				if instrs[i].arrName != "" {
					instrs[i].arr = r.Mem.Get(instrs[i].arrName)
				}
			}
		}
		for i := range p.mems {
			p.mems[i].arr = r.Mem.Get(p.mems[i].name)
		}
		p.memGen = r.Mem.gen
	}
}
