package sim

import (
	"fmt"
	"math"

	"peak/internal/cache"
	"peak/internal/ir"
)

// This file is the fused superblock execution engine, the Runner's default.
// It executes the compact pre-decoded micro-op tables built by plan.go:
//
//   - Every LIR instruction is decoded to one fixed-shape micro-op (uop):
//     operand-shape branching (use lists, def presence, immediate kinds,
//     int/FP cost classes) is folded away at decode time, so the inner loop
//     dispatches on one dense kind byte and each case gates issue on exactly
//     the operand slots its shape uses. Absent operands point at a
//     read-dummy register whose ready time is always zero; absent
//     destinations point at a write-dummy register nothing reads.
//
//   - Straight-line runs of statically-scheduled micro-ops (ALU ops,
//     stores, integer div/mod, counter bumps — everything but loads and
//     calls, whose latency is dynamic) are fused into superblock traces.
//     Their issue/ready dataflow is resolved once, at decode time: the
//     schedule is built from max and + alone, so it is (max,+)-linear in
//     the entry cycle and the live-in ready times, and its only observable
//     outputs — the final cycle and the live-out ready times — are each a
//     max of "input + precomputed longest-path weight" terms evaluated at
//     trace entry. The replay loop then computes values only. Faults inside
//     a trace (store bounds, div by zero) re-derive the exact reference
//     step and cycle on a cold path, preserving bit-identical behaviour.
//
//   - Step/instruction accounting is hoisted out of the inner loop: blocks
//     pre-check the step limit and count steps in bulk, switching to a
//     per-op checked mode only within striking distance of Runner.MaxSteps
//     so ErrStepLimit still fires at the exact same step as the reference.
//
// The reference interpreter (ref.go) defines the semantics; this engine is
// bit-identical to it in every observable output, enforced by the
// differential tests in diff_test.go.

// ukind is a dense micro-op kind: the LIR opcode space folded down by
// operand shape. Integer and FP arithmetic compute identically on float64
// and differ only in pre-folded costs, so they share a micro-op kind.
type ukind uint8

const (
	// Pure-ALU kinds (traceable: no faults, fully static latency). Keep
	// uConst..uSelect contiguous — traceable() tests the range.
	uConst ukind = iota // dst = consts[aux] (LMovI pre-converted to float64, LMovF)
	uMov                // dst = a
	uAdd                // LAdd, LFAdd
	uSub                // LSub, LFSub
	uMul                // LMul, LFMul
	uFDiv               // LFDiv (IEEE: cannot fault)
	uAnd
	uOr
	uXor
	uShl
	uShr
	uNeg // LNeg, LFNeg
	uNot
	uCmpEq // LCmpEq, LFCmpEq
	uCmpNe
	uCmpLt
	uCmpLe
	uCmpGt
	uCmpGe
	uSelect // dst = a != 0 ? b : c

	// Faulting / dynamic-latency kinds.
	uDiv  // LDiv (divide-by-zero fault splits traces)
	uMod  // LMod
	uLoad // aux indexes vplan.mems
	uStore
	uCallIntr // aux indexes vplan.calls
	uCallUser
	uCallBad // unresolved callee: runtime error on execution

	// Pseudo-ops: no step accounting, no issue machinery.
	uCount // counter bump
	uTrace // fused-trace head
)

// traceable reports whether k may be fused into a superblock trace.
func traceable(k ukind) bool { return k <= uSelect }

// uop is one decoded micro-op. Fixed 3-slot operand shape: unused operand
// slots alias the plan's read-dummy register (ready pinned at 0), absent
// destinations alias the write-dummy register (never read).
type uop struct {
	dst int32
	a   int32
	b   int32
	c   int32

	// aux indexes the plan's side tables by kind: consts for uConst,
	// mems for uLoad/uStore, calls for the call kinds, traces for uTrace,
	// and the counter index for uCount (-1: out of range, drop).
	aux int32

	// readyCost = static issue cost + result latency; cycleCost = static
	// issue cost + spill-store cost. Dynamic parts (cache latency, callee
	// cycles) are added at run time exactly as the reference engine does.
	readyCost int32
	cycleCost int32

	kind ukind
}

// memInfo is the memory fast path of one load/store site: the array pointer
// is pre-resolved at decode (re-resolved by vplan.sync when Memory moves),
// so the hot loop performs no name lookups, and hint caches the L1 line the
// site touched last (self-validating; see cache.AccessLine).
type memInfo struct {
	arr  *Array // nil if the name is unknown (reported at execution time)
	hint *cache.Line
	name string
}

// callInfo is the pre-decoded callee binding of one call micro-op.
type callInfo struct {
	args   []int32
	callee *vplan // nil for intrinsics and unresolved names
	fn     string
}

// traceInfo is one fused superblock trace: tr.n micro-ops following the
// uTrace head whose schedule was resolved at decode time.
//
// The schedule is (max,+)-linear in its inputs — the entry cycle C and the
// live-in ready times — so every observable it produces is a max of
// "input + precomputed longest-path weight" terms. Only two kinds of
// observables exist: the trace's final cycle, and the post-trace ready
// times of the registers whose ready anything later actually reads (the
// outs; the liveness pass in buildFused filters dead ones). Both are
// resolved at entry, before replay: the replay loop itself computes values
// only and carries no issue/ready machinery at all.
type traceInfo struct {
	n     int32 // micro-op count (the replay span)
	stepN int32 // dynamic instruction count (counter bumps excluded)
	// liveIn lists the registers read before definition inside the trace.
	// A live-in whose ready is ≤ C at entry cannot gate anything (the cycle
	// chain threads C through every op), so only live-ins pending at entry
	// contribute max-terms: their absolute ready plus the weights below.
	liveIn []int32
	// wCycle[q] is the longest dependence path from live-in q to the final
	// cycle; noPath marks absent paths.
	wCycle []int16
	// cycleDelta is the final-cycle offset from C with no pending live-ins.
	cycleDelta int64
	// The outs: for each live-out definition o, outDst[o] is its register,
	// outW0[o] its static ready offset from C, and outW[o*len(liveIn)+q]
	// the longest dependence path from live-in q to its ready (noPath if
	// none; row-major). All five slices are sub-slices of plan-wide flat
	// arrays (see compactTraces) so one entry touches contiguous memory.
	outDst []int32
	outW0  []int16
	outW   []int16
}

// noPath marks a (live-in, op) pair with no dependence path in a trace's
// weight tables.
const noPath = int16(-1) << 15

// fBlock is one basic block in fused form.
type fBlock struct {
	uops []uop
	// steps is the block's dynamic-instruction count (uCount and uTrace
	// pseudo-ops excluded), used for bulk step accounting.
	steps  int64
	origin int

	termKind ir.TermKind
	cond     int32
	condCost int64
	thenIdx  int
	elseIdx  int
	val      int32 // return register (-1 when absent)
}

// traceFaultAt recomputes the exact reference accounting for a fault at
// uops[j] inside the trace headed at uops[head]: the number of dynamic
// instructions from the trace start through the faulting op inclusive, and
// the absolute cycle at the fault, re-derived by symbolic replay from the
// entry cycle and the pending live-in readies (the reference reports the
// cycle before the faulting op advances it). Cold path: faults inside
// traces are exceptional, so clarity beats speed here.
func traceFaultAt(uops []uop, head, j int, base int64, pendReg []int32, pendReady []int64) (int64, int64) {
	rel := make(map[int32]int64)
	for q, reg := range pendReg {
		rel[reg] = pendReady[q] - base
	}
	var c, n int64
	for k := head + 1; k <= j; k++ {
		v := &uops[k]
		if v.kind == uCount {
			continue
		}
		n++
		if k == j {
			break
		}
		issue := c
		if t := rel[v.a]; t > issue {
			issue = t
		}
		if t := rel[v.b]; t > issue {
			issue = t
		}
		if t := rel[v.c]; t > issue {
			issue = t
		}
		if v.kind != uStore {
			rel[v.dst] = issue + int64(v.readyCost)
		}
		c = issue + int64(v.cycleCost)
	}
	return n, base + c
}

// execFused executes plan p on the fused engine. It mirrors execRef's
// observable behaviour exactly; see the file comment for the contract.
func (ex *execState) execFused(p *vplan, args []float64, depth int) (float64, int64, error) {
	if depth > maxCallDepth {
		return 0, 0, fmt.Errorf("%w: call depth exceeded", ErrRuntime)
	}
	r := ex.r
	p.sync(r)
	lf := p.v.LF
	rf := r.frameFused(depth, p.nregs)
	// mask is a no-op for the register indices decode emits (all < nregs ≤
	// len(rf), a power of two); its sole purpose is bounds-check elision.
	mask := len(rf) - 1
	ai := 0
	for i, prm := range lf.Params {
		if prm.IsArray {
			continue
		}
		if ai < len(args) && lf.ParamRegs[i] != ir.NoReg {
			rf[lf.ParamRegs[i]].val = args[ai]
		}
		ai++
	}

	var (
		fblocks       = p.fblocks
		mems          = p.mems
		memMask       = len(p.mems) - 1 // mems is power-of-two padded
		consts        = p.consts
		constMask     = len(p.consts) - 1 // consts is power-of-two padded
		pred          = p.pred
		perBlockFetch = p.perBlockFetch
		stats         = ex.stats
		counters      = stats.Counters
		hier          = r.Cache
		recordWrites  = r.RecordWrites
		countBlocks   = depth == 0 && len(stats.BlockCounts) > 0
		steps         = ex.steps
		maxSteps      = ex.maxSteps

		cycle        int64
		fetchPenalty float64
	)

	cur := 0 // slice index of current block
	for {
		bl := &fblocks[cur]
		if countBlocks && bl.origin >= 0 && bl.origin < len(stats.BlockCounts) {
			stats.BlockCounts[bl.origin]++
		}
		fetchPenalty += perBlockFetch

		// Bulk step accounting: when the whole block fits under the step
		// limit, the inner loop runs unchecked (blockLimit is never hit);
		// otherwise per-op checks trip at the exact reference step.
		blockLimit := int64(math.MaxInt64)
		if steps+bl.steps > maxSteps {
			blockLimit = maxSteps
		}

		uops := bl.uops
		i := 0
		for i < len(uops) {
			u := &uops[i]
			// Issue: stall until the operands are ready. Gating lives inside
			// each case so an op only loads the ready slots it actually uses,
			// and each real op opens with its step-limit check (pseudo-ops
			// take no step).
			issue := cycle
			var val float64
			switch u.kind {
			case uCount:
				if u.aux >= 0 {
					counters[u.aux]++
				}
				i++
				continue
			case uTrace:
				// Guarded entry to a fused superblock trace.
				tr := &p.traces[u.aux]
				if blockLimit != math.MaxInt64 {
					// Near the step limit: per-op checked path instead.
					i++
					continue
				}
				// Resolve the whole schedule at entry. Scan the live-ins
				// for any still in flight; each pending one contributes
				// its delay as max-terms over the precomputed path weights
				// ((max,+)-linearity, see buildTraces). The only schedule
				// outputs anything can observe — the final cycle and the
				// live-out ready times — are written here, so the replay
				// loop below computes values only.
				base := cycle
				np := 0
				for idx, li := range tr.liveIn {
					if t := rf[int(li)&mask].ready; t > base {
						ex.pIdx[np] = int32(idx)
						ex.pReg[np] = li
						ex.pReady[np] = t
						np++
					}
				}
				fin := base + tr.cycleDelta
				if np == 0 {
					for o, dst := range tr.outDst {
						rf[int(dst)&mask].ready = base + int64(tr.outW0[o])
					}
				} else {
					nli := len(tr.liveIn)
					for o, dst := range tr.outDst {
						rdy := base + int64(tr.outW0[o])
						row := tr.outW[o*nli:]
						for q := 0; q < np; q++ {
							if w := row[ex.pIdx[q]]; w != noPath {
								if c := ex.pReady[q] + int64(w); c > rdy {
									rdy = c
								}
							}
						}
						rf[int(dst)&mask].ready = rdy
					}
					for q := 0; q < np; q++ {
						if w := tr.wCycle[ex.pIdx[q]]; w != noPath {
							if c := ex.pReady[q] + int64(w); c > fin {
								fin = c
							}
						}
					}
				}
				end := i + 1 + int(tr.n)
				for j := i + 1; j < end; j++ {
					v := &uops[j]
					var val float64
					switch v.kind {
					case uCount:
						if v.aux >= 0 {
							counters[v.aux]++
						}
						continue
					case uStore:
						mi := &mems[int(v.aux)&memMask]
						arr := mi.arr
						if arr == nil {
							n, c := traceFaultAt(uops, i, j, base, ex.pReg[:np], ex.pReady[:np])
							ex.steps = steps + n
							return 0, c, fmt.Errorf("%w: unknown array %q", ErrRuntime, mi.name)
						}
						i64 := int64(rf[int(v.a)&mask].val)
						if uint64(i64) >= uint64(len(arr.Data)) {
							n, c := traceFaultAt(uops, i, j, base, ex.pReg[:np], ex.pReady[:np])
							ex.steps = steps + n
							return 0, c, fmt.Errorf("%w: %s[%d] out of range [0,%d) in %s",
								ErrRuntime, mi.name, i64, len(arr.Data), p.name)
						}
						if recordWrites {
							r.WriteLog = append(r.WriteLog, WriteRec{Arr: mi.name, Idx: i64, Old: arr.Data[i64]})
						}
						arr.Data[i64] = rf[int(v.c)&mask].val
						addr := arr.Base + uint64(i64)*8
						if hier.AccessLine(mi.hint, addr) < 0 {
							_, mi.hint = hier.AccessMiss(addr)
						}
						continue
					case uDiv:
						d := int64(rf[int(v.b)&mask].val)
						if d == 0 {
							n, c := traceFaultAt(uops, i, j, base, ex.pReg[:np], ex.pReady[:np])
							ex.steps = steps + n
							return 0, c, fmt.Errorf("%w: integer division by zero in %s", ErrRuntime, p.name)
						}
						val = float64(int64(rf[int(v.a)&mask].val) / d)
					case uMod:
						d := int64(rf[int(v.b)&mask].val)
						if d == 0 {
							n, c := traceFaultAt(uops, i, j, base, ex.pReg[:np], ex.pReady[:np])
							ex.steps = steps + n
							return 0, c, fmt.Errorf("%w: integer modulo by zero in %s", ErrRuntime, p.name)
						}
						val = float64(int64(rf[int(v.a)&mask].val) % d)
					case uConst:
						val = consts[int(v.aux)&constMask]
					case uMov:
						val = rf[int(v.a)&mask].val
					case uAdd:
						val = rf[int(v.a)&mask].val + rf[int(v.b)&mask].val
					case uSub:
						val = rf[int(v.a)&mask].val - rf[int(v.b)&mask].val
					case uMul:
						val = rf[int(v.a)&mask].val * rf[int(v.b)&mask].val
					case uFDiv:
						val = rf[int(v.a)&mask].val / rf[int(v.b)&mask].val
					case uAnd:
						val = float64(int64(rf[int(v.a)&mask].val) & int64(rf[int(v.b)&mask].val))
					case uOr:
						val = float64(int64(rf[int(v.a)&mask].val) | int64(rf[int(v.b)&mask].val))
					case uXor:
						val = float64(int64(rf[int(v.a)&mask].val) ^ int64(rf[int(v.b)&mask].val))
					case uShl:
						val = float64(int64(rf[int(v.a)&mask].val) << (uint64(int64(rf[int(v.b)&mask].val)) & 63))
					case uShr:
						val = float64(int64(rf[int(v.a)&mask].val) >> (uint64(int64(rf[int(v.b)&mask].val)) & 63))
					case uNeg:
						val = -rf[int(v.a)&mask].val
					case uNot:
						if rf[int(v.a)&mask].val == 0 {
							val = 1
						}
					case uCmpEq:
						val = b2f(rf[int(v.a)&mask].val == rf[int(v.b)&mask].val)
					case uCmpNe:
						val = b2f(rf[int(v.a)&mask].val != rf[int(v.b)&mask].val)
					case uCmpLt:
						val = b2f(rf[int(v.a)&mask].val < rf[int(v.b)&mask].val)
					case uCmpLe:
						val = b2f(rf[int(v.a)&mask].val <= rf[int(v.b)&mask].val)
					case uCmpGt:
						val = b2f(rf[int(v.a)&mask].val > rf[int(v.b)&mask].val)
					case uCmpGe:
						val = b2f(rf[int(v.a)&mask].val >= rf[int(v.b)&mask].val)
					case uSelect:
						if rf[int(v.a)&mask].val != 0 {
							val = rf[int(v.b)&mask].val
						} else {
							val = rf[int(v.c)&mask].val
						}
					}
					rf[int(v.dst)&mask].val = val
				}
				steps += int64(tr.stepN)
				cycle = fin
				i = end
				continue
			case uConst:
				if steps++; steps > blockLimit {
					goto stepLimit
				}
				val = consts[int(u.aux)&constMask]
			case uMov:
				if steps++; steps > blockLimit {
					goto stepLimit
				}
				if t := rf[int(u.a)&mask].ready; t > issue {
					issue = t
				}
				val = rf[int(u.a)&mask].val
			case uAdd:
				if steps++; steps > blockLimit {
					goto stepLimit
				}
				if t := rf[int(u.a)&mask].ready; t > issue {
					issue = t
				}
				if t := rf[int(u.b)&mask].ready; t > issue {
					issue = t
				}
				val = rf[int(u.a)&mask].val + rf[int(u.b)&mask].val
			case uSub:
				if steps++; steps > blockLimit {
					goto stepLimit
				}
				if t := rf[int(u.a)&mask].ready; t > issue {
					issue = t
				}
				if t := rf[int(u.b)&mask].ready; t > issue {
					issue = t
				}
				val = rf[int(u.a)&mask].val - rf[int(u.b)&mask].val
			case uMul:
				if steps++; steps > blockLimit {
					goto stepLimit
				}
				if t := rf[int(u.a)&mask].ready; t > issue {
					issue = t
				}
				if t := rf[int(u.b)&mask].ready; t > issue {
					issue = t
				}
				val = rf[int(u.a)&mask].val * rf[int(u.b)&mask].val
			case uFDiv:
				if steps++; steps > blockLimit {
					goto stepLimit
				}
				if t := rf[int(u.a)&mask].ready; t > issue {
					issue = t
				}
				if t := rf[int(u.b)&mask].ready; t > issue {
					issue = t
				}
				val = rf[int(u.a)&mask].val / rf[int(u.b)&mask].val
			case uAnd:
				if steps++; steps > blockLimit {
					goto stepLimit
				}
				if t := rf[int(u.a)&mask].ready; t > issue {
					issue = t
				}
				if t := rf[int(u.b)&mask].ready; t > issue {
					issue = t
				}
				val = float64(int64(rf[int(u.a)&mask].val) & int64(rf[int(u.b)&mask].val))
			case uOr:
				if steps++; steps > blockLimit {
					goto stepLimit
				}
				if t := rf[int(u.a)&mask].ready; t > issue {
					issue = t
				}
				if t := rf[int(u.b)&mask].ready; t > issue {
					issue = t
				}
				val = float64(int64(rf[int(u.a)&mask].val) | int64(rf[int(u.b)&mask].val))
			case uXor:
				if steps++; steps > blockLimit {
					goto stepLimit
				}
				if t := rf[int(u.a)&mask].ready; t > issue {
					issue = t
				}
				if t := rf[int(u.b)&mask].ready; t > issue {
					issue = t
				}
				val = float64(int64(rf[int(u.a)&mask].val) ^ int64(rf[int(u.b)&mask].val))
			case uShl:
				if steps++; steps > blockLimit {
					goto stepLimit
				}
				if t := rf[int(u.a)&mask].ready; t > issue {
					issue = t
				}
				if t := rf[int(u.b)&mask].ready; t > issue {
					issue = t
				}
				val = float64(int64(rf[int(u.a)&mask].val) << (uint64(int64(rf[int(u.b)&mask].val)) & 63))
			case uShr:
				if steps++; steps > blockLimit {
					goto stepLimit
				}
				if t := rf[int(u.a)&mask].ready; t > issue {
					issue = t
				}
				if t := rf[int(u.b)&mask].ready; t > issue {
					issue = t
				}
				val = float64(int64(rf[int(u.a)&mask].val) >> (uint64(int64(rf[int(u.b)&mask].val)) & 63))
			case uNeg:
				if steps++; steps > blockLimit {
					goto stepLimit
				}
				if t := rf[int(u.a)&mask].ready; t > issue {
					issue = t
				}
				val = -rf[int(u.a)&mask].val
			case uNot:
				if steps++; steps > blockLimit {
					goto stepLimit
				}
				if t := rf[int(u.a)&mask].ready; t > issue {
					issue = t
				}
				if rf[int(u.a)&mask].val == 0 {
					val = 1
				}
			case uCmpEq:
				if steps++; steps > blockLimit {
					goto stepLimit
				}
				if t := rf[int(u.a)&mask].ready; t > issue {
					issue = t
				}
				if t := rf[int(u.b)&mask].ready; t > issue {
					issue = t
				}
				val = b2f(rf[int(u.a)&mask].val == rf[int(u.b)&mask].val)
			case uCmpNe:
				if steps++; steps > blockLimit {
					goto stepLimit
				}
				if t := rf[int(u.a)&mask].ready; t > issue {
					issue = t
				}
				if t := rf[int(u.b)&mask].ready; t > issue {
					issue = t
				}
				val = b2f(rf[int(u.a)&mask].val != rf[int(u.b)&mask].val)
			case uCmpLt:
				if steps++; steps > blockLimit {
					goto stepLimit
				}
				if t := rf[int(u.a)&mask].ready; t > issue {
					issue = t
				}
				if t := rf[int(u.b)&mask].ready; t > issue {
					issue = t
				}
				val = b2f(rf[int(u.a)&mask].val < rf[int(u.b)&mask].val)
			case uCmpLe:
				if steps++; steps > blockLimit {
					goto stepLimit
				}
				if t := rf[int(u.a)&mask].ready; t > issue {
					issue = t
				}
				if t := rf[int(u.b)&mask].ready; t > issue {
					issue = t
				}
				val = b2f(rf[int(u.a)&mask].val <= rf[int(u.b)&mask].val)
			case uCmpGt:
				if steps++; steps > blockLimit {
					goto stepLimit
				}
				if t := rf[int(u.a)&mask].ready; t > issue {
					issue = t
				}
				if t := rf[int(u.b)&mask].ready; t > issue {
					issue = t
				}
				val = b2f(rf[int(u.a)&mask].val > rf[int(u.b)&mask].val)
			case uCmpGe:
				if steps++; steps > blockLimit {
					goto stepLimit
				}
				if t := rf[int(u.a)&mask].ready; t > issue {
					issue = t
				}
				if t := rf[int(u.b)&mask].ready; t > issue {
					issue = t
				}
				val = b2f(rf[int(u.a)&mask].val >= rf[int(u.b)&mask].val)
			case uSelect:
				if steps++; steps > blockLimit {
					goto stepLimit
				}
				if t := rf[int(u.a)&mask].ready; t > issue {
					issue = t
				}
				if t := rf[int(u.b)&mask].ready; t > issue {
					issue = t
				}
				if t := rf[int(u.c)&mask].ready; t > issue {
					issue = t
				}
				if rf[int(u.a)&mask].val != 0 {
					val = rf[int(u.b)&mask].val
				} else {
					val = rf[int(u.c)&mask].val
				}
			case uDiv:
				if steps++; steps > blockLimit {
					goto stepLimit
				}
				if t := rf[int(u.a)&mask].ready; t > issue {
					issue = t
				}
				if t := rf[int(u.b)&mask].ready; t > issue {
					issue = t
				}
				d := int64(rf[int(u.b)&mask].val)
				if d == 0 {
					ex.steps = steps
					return 0, cycle, fmt.Errorf("%w: integer division by zero in %s", ErrRuntime, p.name)
				}
				val = float64(int64(rf[int(u.a)&mask].val) / d)
			case uMod:
				if steps++; steps > blockLimit {
					goto stepLimit
				}
				if t := rf[int(u.a)&mask].ready; t > issue {
					issue = t
				}
				if t := rf[int(u.b)&mask].ready; t > issue {
					issue = t
				}
				d := int64(rf[int(u.b)&mask].val)
				if d == 0 {
					ex.steps = steps
					return 0, cycle, fmt.Errorf("%w: integer modulo by zero in %s", ErrRuntime, p.name)
				}
				val = float64(int64(rf[int(u.a)&mask].val) % d)
			case uLoad:
				if steps++; steps > blockLimit {
					goto stepLimit
				}
				if t := rf[int(u.a)&mask].ready; t > issue {
					issue = t
				}
				mi := &mems[int(u.aux)&memMask]
				arr := mi.arr
				if arr == nil {
					ex.steps = steps
					return 0, cycle, fmt.Errorf("%w: unknown array %q", ErrRuntime, mi.name)
				}
				i64 := int64(rf[int(u.a)&mask].val)
				if uint64(i64) >= uint64(len(arr.Data)) {
					ex.steps = steps
					return 0, cycle, fmt.Errorf("%w: %s[%d] out of range [0,%d) in %s",
						ErrRuntime, mi.name, i64, len(arr.Data), p.name)
				}
				rf[int(u.dst)&mask].val = arr.Data[i64]
				addr := arr.Base + uint64(i64)*8
				lat := hier.AccessLine(mi.hint, addr)
				if lat < 0 {
					lat, mi.hint = hier.AccessMiss(addr)
				}
				rf[int(u.dst)&mask].ready = issue + int64(u.readyCost) + lat
				cycle = issue + int64(u.cycleCost)
				i++
				continue
			case uStore:
				if steps++; steps > blockLimit {
					goto stepLimit
				}
				if t := rf[int(u.a)&mask].ready; t > issue {
					issue = t
				}
				if t := rf[int(u.c)&mask].ready; t > issue {
					issue = t
				}
				mi := &mems[int(u.aux)&memMask]
				arr := mi.arr
				if arr == nil {
					ex.steps = steps
					return 0, cycle, fmt.Errorf("%w: unknown array %q", ErrRuntime, mi.name)
				}
				i64 := int64(rf[int(u.a)&mask].val)
				if uint64(i64) >= uint64(len(arr.Data)) {
					ex.steps = steps
					return 0, cycle, fmt.Errorf("%w: %s[%d] out of range [0,%d) in %s",
						ErrRuntime, mi.name, i64, len(arr.Data), p.name)
				}
				if recordWrites {
					r.WriteLog = append(r.WriteLog, WriteRec{Arr: mi.name, Idx: i64, Old: arr.Data[i64]})
				}
				arr.Data[i64] = rf[int(u.c)&mask].val
				// Store completion can overlap with later work: the access
				// updates cache state but charges no latency here.
				addr := arr.Base + uint64(i64)*8
				if hier.AccessLine(mi.hint, addr) < 0 {
					_, mi.hint = hier.AccessMiss(addr)
				}
				cycle = issue + int64(u.cycleCost)
				i++
				continue
			case uCallIntr:
				if steps++; steps > blockLimit {
					goto stepLimit
				}
				ci := &p.calls[u.aux]
				cargs := ci.args
				callArgs := r.callBuf(depth, len(cargs))
				for j, ar := range cargs {
					if t := rf[int(ar)&mask].ready; t > issue {
						issue = t
					}
					callArgs[j] = rf[int(ar)&mask].val
				}
				iv, err := intrinsic(ci.fn, callArgs)
				if err != nil {
					ex.steps = steps
					return 0, cycle, err
				}
				val = iv
			case uCallUser:
				if steps++; steps > blockLimit {
					goto stepLimit
				}
				ci := &p.calls[u.aux]
				cargs := ci.args
				callArgs := r.callBuf(depth, len(cargs))
				for j, ar := range cargs {
					if t := rf[int(ar)&mask].ready; t > issue {
						issue = t
					}
					callArgs[j] = rf[int(ar)&mask].val
				}
				ex.steps = steps
				rv, ccycles, err := ex.execFused(ci.callee, callArgs, depth+1)
				steps = ex.steps
				if err != nil {
					return 0, cycle, err
				}
				// The callee consumed step budget: re-arm per-op checking
				// if the rest of the block could now cross the limit.
				if blockLimit == math.MaxInt64 && steps+bl.steps > maxSteps {
					blockLimit = maxSteps
				}
				rf[int(u.dst)&mask].val = rv
				rf[int(u.dst)&mask].ready = issue + int64(u.readyCost) + ccycles
				cycle = issue + int64(u.cycleCost) + ccycles
				i++
				continue
			case uCallBad:
				if steps++; steps > blockLimit {
					goto stepLimit
				}
				ex.steps = steps
				return 0, cycle, fmt.Errorf("%w: unresolved call to %q", ErrRuntime, p.calls[u.aux].fn)
			}

			rf[int(u.dst)&mask].val = val
			rf[int(u.dst)&mask].ready = issue + int64(u.readyCost)
			cycle = issue + int64(u.cycleCost)
			i++
		}

		// Terminator — identical to the reference engine.
		switch bl.termKind {
		case ir.TermReturn:
			ex.steps = steps
			total := cycle + int64(fetchPenalty)
			if bl.val >= 0 {
				return rf[int(bl.val)&mask].val, total, nil
			}
			return math.NaN(), total, nil
		case ir.TermJump:
			next := bl.thenIdx
			if next != cur+1 {
				cycle += p.takenCost
			}
			cur = next
		case ir.TermBranch:
			if t := rf[int(bl.cond)&mask].ready; t > cycle {
				cycle = t
			}
			cycle += bl.condCost
			taken := rf[int(bl.cond)&mask].val != 0
			state := pred[cur]
			predTaken := state >= 2
			if predTaken != taken {
				cycle += p.mispredict
			}
			if taken && state < 3 {
				state++
			} else if !taken && state > 0 {
				state--
			}
			pred[cur] = state

			var next int
			if taken {
				next = bl.thenIdx
			} else {
				next = bl.elseIdx
			}
			if next != cur+1 {
				cycle += p.takenCost
			}
			cur = next
		}
	}

	// Reached only by goto from a per-op step check: the checked path is
	// armed (blockLimit == maxSteps) and this op crossed the limit.
stepLimit:
	ex.steps = steps
	return 0, cycle, fmt.Errorf("%w in %s", ErrStepLimit, p.name)
}
