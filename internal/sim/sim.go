// Package sim executes compiled LIR versions on a simulated machine and
// reports cycle-accurate costs.
//
// The engine models, per dynamic instruction: issue cost, result latency
// (exposed as stalls unless hidden by instruction scheduling), data-cache
// latency for loads/stores, spill traffic for virtual registers the
// allocator could not keep in the register file, a 2-bit branch predictor
// with a machine-specific mispredict penalty, taken-branch fetch redirects,
// and an instruction-cache overflow penalty for oversized versions.
//
// Raw cycle counts are deterministic. Measurement noise (timer jitter and
// rare outlier spikes from simulated system perturbations) is added by
// Clock, mirroring the measurement conditions the paper's window/variance
// machinery is designed for (paper §3).
package sim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"peak/internal/cache"
	"peak/internal/ir"
	"peak/internal/machine"
	"peak/internal/noise"
	"peak/internal/regalloc"
)

// CostMods carries code-generation quality factors that optimization flags
// set without changing the instruction stream (block layout, alignment,
// call linkage).
type CostMods struct {
	// TakenBranchFactor scales the taken-branch redirect cost
	// (reorder-blocks, align-jumps/loops/labels lower it).
	TakenBranchFactor float64
	// CallOverheadFactor scales call linkage cost (defer-pop,
	// optimize-sibling-calls, caller-saves).
	CallOverheadFactor float64
	// CodeSizeExtra is alignment padding added to the version's footprint.
	CodeSizeExtra int
	// StaticPredict biases the predictor's cold state when
	// guess-branch-probability is on.
	StaticPredict bool
}

// DefaultCostMods returns neutral modifiers.
func DefaultCostMods() CostMods {
	return CostMods{TakenBranchFactor: 1, CallOverheadFactor: 1}
}

// Version is a compiled, runnable code version of one function under one
// optimization flag combination.
type Version struct {
	LF    *ir.LFunc
	Alloc regalloc.Result
	Mods  CostMods
	// CodeSize is the version's instruction footprint including callees.
	CodeSize int
	// NumOrigins is the number of blocks in the reference lowering; block
	// execution counts are reported per origin block.
	NumOrigins int
	// Callees maps user function names to their compiled versions.
	Callees map[string]*Version
	// Label identifies the flag combination (diagnostics).
	Label string

	blockIndex []int // block ID -> slice index (built lazily)
}

// Freeze eagerly builds the lazily-constructed block index of v and of
// every callee, transitively. A frozen version is immutable and may be
// executed by concurrent Runners; an unfrozen one must stay confined to a
// single goroutine because the first execution builds the index in place.
// The tuning engine freezes each version once, under its compile lock,
// before publishing it to parallel rating jobs.
func (v *Version) Freeze() {
	v.index()
	for _, c := range v.Callees {
		c.Freeze()
	}
}

func (v *Version) index() []int {
	if v.blockIndex == nil {
		maxID := 0
		for _, b := range v.LF.Blocks {
			if b.ID > maxID {
				maxID = b.ID
			}
		}
		v.blockIndex = make([]int, maxID+1)
		for i, b := range v.LF.Blocks {
			v.blockIndex[b.ID] = i
		}
	}
	return v.blockIndex
}

// RunStats reports the dynamic behaviour of one execution.
type RunStats struct {
	// Cycles is the deterministic simulated cost.
	Cycles int64
	// BlockCounts[origin] is the number of entries of each reference basic
	// block (MBR component counting; paper §2.3). Indexed by origin ID.
	BlockCounts []int64
	// Counters are the per-run deltas of MBR instrumentation counters.
	Counters []int64
	// Instrs is the number of dynamic instructions executed.
	Instrs int64
}

// Engine selects the execution engine of a Runner.
type Engine int

// Execution engines. Both are decoded from the same plan and are
// bit-identical in every observable output (return value, RunStats, errors,
// predictor and cache evolution); the differential tests in diff_test.go
// enforce the equivalence.
const (
	// EngineFused is the superblock micro-op engine (exec.go): compact
	// pre-decoded micro-ops with fused straight-line ALU traces. The
	// default.
	EngineFused Engine = iota
	// EngineRef is the original per-instruction reference interpreter
	// (ref.go), kept as semantic ground truth for differential testing.
	EngineRef
)

// Runner holds machine state that persists across executions: the data
// cache, the branch predictor, and the noise source.
type Runner struct {
	Mach  *machine.Machine
	Mem   *Memory
	Cache *cache.Hierarchy

	// Engine selects the execution engine (default EngineFused).
	Engine Engine

	// plans holds the per-version decoded dispatch tables (see plan.go),
	// including the 2-bit branch-predictor counters; predictor state
	// persists across invocations within a program run (ResetMicroarch
	// bumps epoch, which re-initializes it in place on next use).
	plans    map[*Version]*vplan
	lastV    *Version
	lastPlan *vplan
	epoch    uint64
	rng      *rand.Rand

	// MaxSteps bounds dynamic instructions per Run (guards against
	// miscompiled infinite loops). Zero means the default of 100M.
	MaxSteps int64

	// CollectBlockCounts enables per-origin block execution counting
	// (needed by profiling; off by default to keep the hot path lean).
	CollectBlockCounts bool

	// RecordWrites enables the write log: every store appends the
	// overwritten (array, index, old value) triple to WriteLog. This is
	// the paper's RBR "inspector code that records the addresses and
	// values of the write references" (§2.4.2), enabling element-accurate
	// undo instead of whole-array save/restore.
	RecordWrites bool
	// WriteLog holds the recorded writes (oldest first). Callers clear it
	// between executions with WriteLog = WriteLog[:0].
	WriteLog []WriteRec

	// scratch buffers reused across invocations, one per call depth.
	scratchRegs  [][]float64
	scratchReady [][]int64
	scratchRF    [][]regState
	scratchArgs  [][]float64

	ex execState
}

// frame returns zeroed register/ready buffers for a call depth.
func (r *Runner) frame(depth, n int) ([]float64, []int64) {
	for len(r.scratchRegs) <= depth {
		r.scratchRegs = append(r.scratchRegs, nil)
		r.scratchReady = append(r.scratchReady, nil)
	}
	if cap(r.scratchRegs[depth]) < n {
		r.scratchRegs[depth] = make([]float64, n)
		r.scratchReady[depth] = make([]int64, n)
	}
	regs := r.scratchRegs[depth][:n]
	ready := r.scratchReady[depth][:n]
	for i := range regs {
		regs[i] = 0
		ready[i] = 0
	}
	return regs, ready
}

// regState is one fused-engine register slot: the value and its ready time
// interleaved, so touching an operand's value and readiness costs one cache
// line instead of two.
type regState struct {
	val   float64
	ready int64
}

// frameFused returns a zeroed register frame for the fused engine at a call
// depth. The frame is padded to a power-of-two length so the interpreter
// can index it as rf[i&(len(rf)-1)] — the mask is a no-op for the valid
// indices decode produces (all < n) and lets the compiler elide every
// bounds check in the hot loop.
func (r *Runner) frameFused(depth, n int) []regState {
	for len(r.scratchRF) <= depth {
		r.scratchRF = append(r.scratchRF, nil)
	}
	n2 := 1
	for n2 < n {
		n2 <<= 1
	}
	if cap(r.scratchRF[depth]) < n2 {
		r.scratchRF[depth] = make([]regState, n2)
	}
	rf := r.scratchRF[depth][:n2]
	for i := range rf {
		rf[i] = regState{}
	}
	return rf
}

// callBuf returns an argument buffer for a call made at the given depth.
// At most one call per depth is in flight at a time, and callees copy the
// arguments into their own registers on entry, so the buffer is free for
// reuse as soon as the next call at the same depth begins.
func (r *Runner) callBuf(depth, n int) []float64 {
	for len(r.scratchArgs) <= depth {
		r.scratchArgs = append(r.scratchArgs, nil)
	}
	if cap(r.scratchArgs[depth]) < n {
		r.scratchArgs[depth] = make([]float64, n)
	}
	return r.scratchArgs[depth][:n]
}

// NewRunner creates a runner for machine m over memory mem, with a
// deterministic noise source derived from seed.
func NewRunner(m *machine.Machine, mem *Memory, seed int64) *Runner {
	return &Runner{
		Mach:  m,
		Mem:   mem,
		Cache: cache.NewHierarchy(m),
		plans: make(map[*Version]*vplan),
		epoch: 1,
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// ResetMicroarch clears cache and predictor state (start of a program run).
// Predictor slices are not reallocated: bumping the epoch makes each plan
// re-initialize its counters in place (zero + static hints) on next use.
func (r *Runner) ResetMicroarch() {
	r.Cache.Reset()
	r.epoch++
}

// ErrRuntime wraps simulated program errors (bounds, division by zero).
var ErrRuntime = errors.New("simulated runtime error")

// ErrStepLimit (a kind of ErrRuntime) reports that a run exceeded
// Runner.MaxSteps. The golden-output verifier runs candidate versions under
// a step bound derived from the reference run, so a miscompiled version
// whose loop runs away is killed and quarantined instead of hanging the
// tuner; errors.Is(err, ErrStepLimit) distinguishes that case.
var ErrStepLimit = fmt.Errorf("%w: step limit exceeded", ErrRuntime)

// Run executes version v with the given scalar arguments and returns its
// return value (NaN if none) and execution statistics.
//
// The first Run of a version on this runner decodes it into a dispatch
// plan (plan.go): flat micro-op tables with fused superblock traces for the
// default engine, plus the dInstr tables the reference engine walks.
// Subsequent Runs reuse the plan, so the execution loop performs no map
// lookups or operand re-decoding per invocation.
func (r *Runner) Run(v *Version, args []float64) (float64, RunStats, error) {
	p := r.plan(v)
	stats := RunStats{}
	if r.CollectBlockCounts {
		stats.BlockCounts = make([]int64, v.NumOrigins)
	}
	if p.numCounters > 0 {
		// Freshly allocated per run: callers retain Counters across runs.
		stats.Counters = make([]int64, p.numCounters)
	}
	maxSteps := r.MaxSteps
	if maxSteps == 0 {
		maxSteps = 100_000_000
	}
	ex := &r.ex
	ex.r, ex.stats, ex.steps, ex.maxSteps = r, &stats, 0, maxSteps
	var (
		ret    float64
		cycles int64
		err    error
	)
	if r.Engine == EngineRef {
		// The reference engine counts stats.Instrs incrementally.
		ret, cycles, err = ex.execRef(p, args, 0)
	} else {
		// The fused engine counts steps in bulk; steps and Instrs are
		// incremented in lockstep by the reference, so the final step
		// count IS the dynamic instruction count.
		ret, cycles, err = ex.execFused(p, args, 0)
		stats.Instrs = ex.steps
	}
	ex.stats = nil
	stats.Cycles = cycles
	return ret, stats, err
}

type execState struct {
	r        *Runner
	stats    *RunStats
	steps    int64
	maxSteps int64

	// Pending live-ins at the current trace entry: their index in the
	// trace's liveIn list, register number, and absolute ready time, kept
	// here so the hot entry path writes into persistent storage instead of
	// freshly zeroed stack arrays. Traces never nest, so one set per
	// execState suffices. pReg feeds only the cold in-trace fault path
	// (exec.go traceFaultAt).
	pIdx   [maxTraceLiveIn]int32
	pReg   [maxTraceLiveIn]int32
	pReady [maxTraceLiveIn]int64
}

const maxCallDepth = 16

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// intrinsic evaluates a built-in math intrinsic. An unrecognized name is a
// hard ErrRuntime: silently returning NaN (the pre-PR-8 behaviour) could
// mask an ir/sim intrinsic-table drift as a quarantinable numeric diff
// instead of surfacing it as the miscompile it is.
func intrinsic(name string, args []float64) (float64, error) {
	switch name {
	case "sqrt":
		return math.Sqrt(args[0]), nil
	case "abs":
		return math.Abs(args[0]), nil
	case "floor":
		return math.Floor(args[0]), nil
	case "sin":
		return math.Sin(args[0]), nil
	case "cos":
		return math.Cos(args[0]), nil
	case "exp":
		return math.Exp(args[0]), nil
	case "log":
		return math.Log(args[0]), nil
	case "min":
		return math.Min(args[0], args[1]), nil
	case "max":
		return math.Max(args[0], args[1]), nil
	case "imin":
		if args[0] < args[1] {
			return args[0], nil
		}
		return args[1], nil
	case "imax":
		if args[0] > args[1] {
			return args[0], nil
		}
		return args[1], nil
	}
	return 0, fmt.Errorf("%w: unknown intrinsic %q", ErrRuntime, name)
}

// Clock converts deterministic cycle counts into noisy "measured" times.
// The noise regime is a pluggable noise.Model (injected perturbations for
// robustness experiments); NewClock uses the machine's default regime,
// which mirrors the paper's measurement conditions.
type Clock struct {
	stream *noise.Stream
	// NoiseOff disables noise injection (ablation experiments).
	NoiseOff bool
}

// DefaultNoise returns the machine's baseline measurement-noise model:
// Gaussian timer jitter plus rare outlier spikes from simulated system
// perturbations (paper §3).
func DefaultNoise(m *machine.Machine) noise.Model {
	return noise.Model{
		Jitter:     m.NoiseStdDev,
		SpikeProb:  m.OutlierProb,
		SpikeScale: m.OutlierScale,
	}
}

// NewClock returns a measurement clock with the machine's default noise
// regime, deterministic from seed.
func NewClock(m *machine.Machine, seed int64) *Clock {
	return NewClockWith(DefaultNoise(m), seed)
}

// NewClockWith returns a measurement clock driven by an explicit noise
// model, deterministic from seed (noise-injection experiments).
func NewClockWith(model noise.Model, seed int64) *Clock {
	return &Clock{stream: model.NewStream(seed)}
}

// Noise returns the clock's noise model.
func (c *Clock) Noise() noise.Model { return c.stream.Model() }

// Measure returns the noisy measured time for a run of the given cycle
// count, perturbed by the clock's noise model.
func (c *Clock) Measure(cycles int64) float64 {
	t := float64(cycles)
	if c.NoiseOff {
		return t
	}
	t = c.stream.Perturb(t)
	if t < 1 {
		t = 1
	}
	return t
}
