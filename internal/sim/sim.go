// Package sim executes compiled LIR versions on a simulated machine and
// reports cycle-accurate costs.
//
// The engine models, per dynamic instruction: issue cost, result latency
// (exposed as stalls unless hidden by instruction scheduling), data-cache
// latency for loads/stores, spill traffic for virtual registers the
// allocator could not keep in the register file, a 2-bit branch predictor
// with a machine-specific mispredict penalty, taken-branch fetch redirects,
// and an instruction-cache overflow penalty for oversized versions.
//
// Raw cycle counts are deterministic. Measurement noise (timer jitter and
// rare outlier spikes from simulated system perturbations) is added by
// Clock, mirroring the measurement conditions the paper's window/variance
// machinery is designed for (paper §3).
package sim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"peak/internal/cache"
	"peak/internal/ir"
	"peak/internal/machine"
	"peak/internal/noise"
	"peak/internal/regalloc"
)

// CostMods carries code-generation quality factors that optimization flags
// set without changing the instruction stream (block layout, alignment,
// call linkage).
type CostMods struct {
	// TakenBranchFactor scales the taken-branch redirect cost
	// (reorder-blocks, align-jumps/loops/labels lower it).
	TakenBranchFactor float64
	// CallOverheadFactor scales call linkage cost (defer-pop,
	// optimize-sibling-calls, caller-saves).
	CallOverheadFactor float64
	// CodeSizeExtra is alignment padding added to the version's footprint.
	CodeSizeExtra int
	// StaticPredict biases the predictor's cold state when
	// guess-branch-probability is on.
	StaticPredict bool
}

// DefaultCostMods returns neutral modifiers.
func DefaultCostMods() CostMods {
	return CostMods{TakenBranchFactor: 1, CallOverheadFactor: 1}
}

// Version is a compiled, runnable code version of one function under one
// optimization flag combination.
type Version struct {
	LF    *ir.LFunc
	Alloc regalloc.Result
	Mods  CostMods
	// CodeSize is the version's instruction footprint including callees.
	CodeSize int
	// NumOrigins is the number of blocks in the reference lowering; block
	// execution counts are reported per origin block.
	NumOrigins int
	// Callees maps user function names to their compiled versions.
	Callees map[string]*Version
	// Label identifies the flag combination (diagnostics).
	Label string

	blockIndex []int // block ID -> slice index (built lazily)
}

// Freeze eagerly builds the lazily-constructed block index of v and of
// every callee, transitively. A frozen version is immutable and may be
// executed by concurrent Runners; an unfrozen one must stay confined to a
// single goroutine because the first execution builds the index in place.
// The tuning engine freezes each version once, under its compile lock,
// before publishing it to parallel rating jobs.
func (v *Version) Freeze() {
	v.index()
	for _, c := range v.Callees {
		c.Freeze()
	}
}

func (v *Version) index() []int {
	if v.blockIndex == nil {
		maxID := 0
		for _, b := range v.LF.Blocks {
			if b.ID > maxID {
				maxID = b.ID
			}
		}
		v.blockIndex = make([]int, maxID+1)
		for i, b := range v.LF.Blocks {
			v.blockIndex[b.ID] = i
		}
	}
	return v.blockIndex
}

// RunStats reports the dynamic behaviour of one execution.
type RunStats struct {
	// Cycles is the deterministic simulated cost.
	Cycles int64
	// BlockCounts[origin] is the number of entries of each reference basic
	// block (MBR component counting; paper §2.3). Indexed by origin ID.
	BlockCounts []int64
	// Counters are the per-run deltas of MBR instrumentation counters.
	Counters []int64
	// Instrs is the number of dynamic instructions executed.
	Instrs int64
}

// Runner holds machine state that persists across executions: the data
// cache, the branch predictor, and the noise source.
type Runner struct {
	Mach  *machine.Machine
	Mem   *Memory
	Cache *cache.Hierarchy

	// pred holds 2-bit branch-predictor counters per version, indexed by
	// block slice position; state persists across invocations within a
	// program run (ResetMicroarch clears it).
	pred map[*Version][]uint8
	rng  *rand.Rand

	// MaxSteps bounds dynamic instructions per Run (guards against
	// miscompiled infinite loops). Zero means the default of 100M.
	MaxSteps int64

	// CollectBlockCounts enables per-origin block execution counting
	// (needed by profiling; off by default to keep the hot path lean).
	CollectBlockCounts bool

	// RecordWrites enables the write log: every store appends the
	// overwritten (array, index, old value) triple to WriteLog. This is
	// the paper's RBR "inspector code that records the addresses and
	// values of the write references" (§2.4.2), enabling element-accurate
	// undo instead of whole-array save/restore.
	RecordWrites bool
	// WriteLog holds the recorded writes (oldest first). Callers clear it
	// between executions with WriteLog = WriteLog[:0].
	WriteLog []WriteRec

	// scratch buffers reused across invocations, one pair per call depth.
	scratchRegs  [][]float64
	scratchReady [][]int64
}

// frame returns zeroed register/ready buffers for a call depth.
func (r *Runner) frame(depth, n int) ([]float64, []int64) {
	for len(r.scratchRegs) <= depth {
		r.scratchRegs = append(r.scratchRegs, nil)
		r.scratchReady = append(r.scratchReady, nil)
	}
	if cap(r.scratchRegs[depth]) < n {
		r.scratchRegs[depth] = make([]float64, n)
		r.scratchReady[depth] = make([]int64, n)
	}
	regs := r.scratchRegs[depth][:n]
	ready := r.scratchReady[depth][:n]
	for i := range regs {
		regs[i] = 0
		ready[i] = 0
	}
	return regs, ready
}

// NewRunner creates a runner for machine m over memory mem, with a
// deterministic noise source derived from seed.
func NewRunner(m *machine.Machine, mem *Memory, seed int64) *Runner {
	return &Runner{
		Mach:  m,
		Mem:   mem,
		Cache: cache.NewHierarchy(m),
		pred:  make(map[*Version][]uint8),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// ResetMicroarch clears cache and predictor state (start of a program run).
func (r *Runner) ResetMicroarch() {
	r.Cache.Reset()
	r.pred = make(map[*Version][]uint8)
}

// predictor returns the branch-counter slice for v, creating it cold with
// static hints applied when the version was built with StaticPredict.
func (r *Runner) predictor(v *Version) []uint8 {
	if p, ok := r.pred[v]; ok {
		return p
	}
	p := make([]uint8, len(v.LF.Blocks))
	if v.Mods.StaticPredict {
		for i, b := range v.LF.Blocks {
			if b.Term.Kind == ir.TermBranch {
				switch {
				case b.Term.Likely > 0:
					p[i] = 3
				case b.Term.Likely < 0:
					p[i] = 0
				default:
					p[i] = 1
				}
			}
		}
	}
	r.pred[v] = p
	return p
}

// ErrRuntime wraps simulated program errors (bounds, division by zero).
var ErrRuntime = errors.New("simulated runtime error")

// Run executes version v with the given scalar arguments and returns its
// return value (NaN if none) and execution statistics.
func (r *Runner) Run(v *Version, args []float64) (float64, RunStats, error) {
	stats := RunStats{}
	if r.CollectBlockCounts {
		stats.BlockCounts = make([]int64, v.NumOrigins)
	}
	if v.LF.NumCounters > 0 {
		stats.Counters = make([]int64, v.LF.NumCounters)
	}
	maxSteps := r.MaxSteps
	if maxSteps == 0 {
		maxSteps = 100_000_000
	}
	ex := &execState{r: r, stats: &stats, maxSteps: maxSteps}
	ret, cycles, err := ex.exec(v, args, 0)
	stats.Cycles = cycles
	return ret, stats, err
}

type execState struct {
	r        *Runner
	stats    *RunStats
	steps    int64
	maxSteps int64
}

const maxCallDepth = 16

func (ex *execState) exec(v *Version, args []float64, depth int) (float64, int64, error) {
	if depth > maxCallDepth {
		return 0, 0, fmt.Errorf("%w: call depth exceeded", ErrRuntime)
	}
	r := ex.r
	m := r.Mach
	lf := v.LF
	regs, ready := r.frame(depth, lf.NumRegs)
	ai := 0
	for i, p := range lf.Params {
		if p.IsArray {
			continue
		}
		if ai < len(args) && lf.ParamRegs[i] != ir.NoReg {
			regs[lf.ParamRegs[i]] = args[ai]
		}
		ai++
	}

	idx := v.index()
	pred := r.predictor(v)
	spilled := v.Alloc.Spilled
	var cycle int64
	var fetchPenalty float64
	overflow := 0
	if total := v.CodeSize + v.Mods.CodeSizeExtra; total > m.ICacheInstrs {
		overflow = total - m.ICacheInstrs
	}
	perBlockFetch := 0.0
	if overflow > 0 {
		perBlockFetch = m.FetchPenalty * float64(overflow) / float64(m.ICacheInstrs)
	}

	cur := 0 // slice index of current block
	for {
		b := lf.Blocks[cur]
		if depth == 0 && b.Origin >= 0 && b.Origin < len(ex.stats.BlockCounts) {
			ex.stats.BlockCounts[b.Origin]++
		}
		fetchPenalty += perBlockFetch

		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.LNop {
				continue
			}
			if in.Op == ir.LCount {
				if c := int(in.Imm); c >= 0 && c < len(ex.stats.Counters) {
					ex.stats.Counters[c]++
				}
				continue
			}
			ex.steps++
			ex.stats.Instrs++
			if ex.steps > ex.maxSteps {
				return 0, cycle, fmt.Errorf("%w: step limit exceeded in %s", ErrRuntime, lf.Name)
			}

			// Issue: stall until operands are ready; add spill loads.
			issue := cycle
			cost := m.OpCost[in.Op]
			var extraLat int64
			switch in.Op {
			case ir.LMovI, ir.LMovF:
			case ir.LCall:
				for _, u := range in.CallArgs {
					if ready[u] > issue {
						issue = ready[u]
					}
					if spilled[u] {
						cost += m.SpillLoadCost
					}
				}
			default:
				if in.A != ir.NoReg {
					if ready[in.A] > issue {
						issue = ready[in.A]
					}
					if spilled[in.A] {
						cost += m.SpillLoadCost
					}
				}
				if in.B != ir.NoReg {
					if ready[in.B] > issue {
						issue = ready[in.B]
					}
					if spilled[in.B] {
						cost += m.SpillLoadCost
					}
				}
				if in.Src != ir.NoReg {
					if ready[in.Src] > issue {
						issue = ready[in.Src]
					}
					if spilled[in.Src] {
						cost += m.SpillLoadCost
					}
				}
			}

			var val float64
			switch in.Op {
			case ir.LMovI:
				val = float64(in.Imm)
			case ir.LMovF:
				val = in.FImm
			case ir.LMov:
				val = regs[in.A]
			case ir.LAdd, ir.LFAdd:
				val = regs[in.A] + regs[in.B]
			case ir.LSub, ir.LFSub:
				val = regs[in.A] - regs[in.B]
			case ir.LMul, ir.LFMul:
				val = regs[in.A] * regs[in.B]
			case ir.LFDiv:
				val = regs[in.A] / regs[in.B]
			case ir.LDiv:
				d := int64(regs[in.B])
				if d == 0 {
					return 0, cycle, fmt.Errorf("%w: integer division by zero in %s", ErrRuntime, lf.Name)
				}
				val = float64(int64(regs[in.A]) / d)
			case ir.LMod:
				d := int64(regs[in.B])
				if d == 0 {
					return 0, cycle, fmt.Errorf("%w: integer modulo by zero in %s", ErrRuntime, lf.Name)
				}
				val = float64(int64(regs[in.A]) % d)
			case ir.LAnd:
				val = float64(int64(regs[in.A]) & int64(regs[in.B]))
			case ir.LOr:
				val = float64(int64(regs[in.A]) | int64(regs[in.B]))
			case ir.LXor:
				val = float64(int64(regs[in.A]) ^ int64(regs[in.B]))
			case ir.LShl:
				val = float64(int64(regs[in.A]) << (uint64(int64(regs[in.B])) & 63))
			case ir.LShr:
				val = float64(int64(regs[in.A]) >> (uint64(int64(regs[in.B])) & 63))
			case ir.LNeg, ir.LFNeg:
				val = -regs[in.A]
			case ir.LNot:
				if regs[in.A] == 0 {
					val = 1
				}
			case ir.LCmpEq, ir.LFCmpEq:
				val = b2f(regs[in.A] == regs[in.B])
			case ir.LCmpNe, ir.LFCmpNe:
				val = b2f(regs[in.A] != regs[in.B])
			case ir.LCmpLt, ir.LFCmpLt:
				val = b2f(regs[in.A] < regs[in.B])
			case ir.LCmpLe, ir.LFCmpLe:
				val = b2f(regs[in.A] <= regs[in.B])
			case ir.LCmpGt, ir.LFCmpGt:
				val = b2f(regs[in.A] > regs[in.B])
			case ir.LCmpGe, ir.LFCmpGe:
				val = b2f(regs[in.A] >= regs[in.B])
			case ir.LSelect:
				if regs[in.A] != 0 {
					val = regs[in.B]
				} else {
					val = regs[in.Src]
				}
			case ir.LLoad:
				arr, err := r.Mem.array(in.Arr)
				if err != nil {
					return 0, cycle, err
				}
				i64 := int64(regs[in.A])
				if i64 < 0 || i64 >= int64(len(arr.Data)) {
					return 0, cycle, fmt.Errorf("%w: %s[%d] out of range [0,%d) in %s",
						ErrRuntime, in.Arr, i64, len(arr.Data), lf.Name)
				}
				val = arr.Data[i64]
				extraLat += r.Cache.Access(arr.Base + uint64(i64)*8)
			case ir.LStore:
				arr, err := r.Mem.array(in.Arr)
				if err != nil {
					return 0, cycle, err
				}
				i64 := int64(regs[in.A])
				if i64 < 0 || i64 >= int64(len(arr.Data)) {
					return 0, cycle, fmt.Errorf("%w: %s[%d] out of range [0,%d) in %s",
						ErrRuntime, in.Arr, i64, len(arr.Data), lf.Name)
				}
				if r.RecordWrites {
					r.WriteLog = append(r.WriteLog, WriteRec{Arr: in.Arr, Idx: i64, Old: arr.Data[i64]})
				}
				arr.Data[i64] = regs[in.Src]
				extraLat += r.Cache.Access(arr.Base + uint64(i64)*8)
			case ir.LCall:
				callArgs := make([]float64, len(in.CallArgs))
				for k, ar := range in.CallArgs {
					callArgs[k] = regs[ar]
				}
				cost += int64(float64(m.CallOverhead) * v.Mods.CallOverheadFactor)
				if _, ok := ir.IsIntrinsic(in.Fn); ok {
					val = intrinsic(in.Fn, callArgs)
					cost += m.IntrinsicCost
				} else {
					callee, ok := v.Callees[in.Fn]
					if !ok {
						return 0, cycle, fmt.Errorf("%w: unresolved call to %q", ErrRuntime, in.Fn)
					}
					rv, ccycles, err := ex.exec(callee, callArgs, depth+1)
					if err != nil {
						return 0, cycle, err
					}
					val = rv
					cost += ccycles
				}
			}

			if d := in.Def(); d != ir.NoReg {
				regs[d] = val
				ready[d] = issue + cost + m.OpLatency[in.Op] + extraLat
				if spilled[d] {
					cost += m.SpillStoreCost
				}
			} else if in.Op == ir.LStore {
				// Store completion can overlap; charge only issue cost.
				_ = extraLat
			}
			cycle = issue + cost
		}

		// Terminator.
		t := &b.Term
		switch t.Kind {
		case ir.TermReturn:
			total := cycle + int64(fetchPenalty)
			if t.Val != ir.NoReg {
				return regs[t.Val], total, nil
			}
			return math.NaN(), total, nil
		case ir.TermJump:
			next := idx[t.Then]
			if next != cur+1 {
				cycle += int64(float64(m.TakenBranchCost) * v.Mods.TakenBranchFactor)
			}
			cur = next
		case ir.TermBranch:
			if ready[t.Cond] > cycle {
				cycle = ready[t.Cond]
			}
			if spilled[t.Cond] {
				cycle += m.SpillLoadCost
			}
			taken := regs[t.Cond] != 0
			state := pred[cur]
			predTaken := state >= 2
			if predTaken != taken {
				cycle += m.MispredictPenalty
			}
			if taken && state < 3 {
				state++
			} else if !taken && state > 0 {
				state--
			}
			pred[cur] = state

			var next int
			if taken {
				next = idx[t.Then]
			} else {
				next = idx[t.Else]
			}
			if next != cur+1 {
				cycle += int64(float64(m.TakenBranchCost) * v.Mods.TakenBranchFactor)
			}
			cur = next
		}
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func intrinsic(name string, args []float64) float64 {
	switch name {
	case "sqrt":
		return math.Sqrt(args[0])
	case "abs":
		return math.Abs(args[0])
	case "floor":
		return math.Floor(args[0])
	case "sin":
		return math.Sin(args[0])
	case "cos":
		return math.Cos(args[0])
	case "exp":
		return math.Exp(args[0])
	case "log":
		return math.Log(args[0])
	case "min":
		return math.Min(args[0], args[1])
	case "max":
		return math.Max(args[0], args[1])
	case "imin":
		if args[0] < args[1] {
			return args[0]
		}
		return args[1]
	case "imax":
		if args[0] > args[1] {
			return args[0]
		}
		return args[1]
	}
	return math.NaN()
}

// Clock converts deterministic cycle counts into noisy "measured" times.
// The noise regime is a pluggable noise.Model (injected perturbations for
// robustness experiments); NewClock uses the machine's default regime,
// which mirrors the paper's measurement conditions.
type Clock struct {
	stream *noise.Stream
	// NoiseOff disables noise injection (ablation experiments).
	NoiseOff bool
}

// DefaultNoise returns the machine's baseline measurement-noise model:
// Gaussian timer jitter plus rare outlier spikes from simulated system
// perturbations (paper §3).
func DefaultNoise(m *machine.Machine) noise.Model {
	return noise.Model{
		Jitter:     m.NoiseStdDev,
		SpikeProb:  m.OutlierProb,
		SpikeScale: m.OutlierScale,
	}
}

// NewClock returns a measurement clock with the machine's default noise
// regime, deterministic from seed.
func NewClock(m *machine.Machine, seed int64) *Clock {
	return NewClockWith(DefaultNoise(m), seed)
}

// NewClockWith returns a measurement clock driven by an explicit noise
// model, deterministic from seed (noise-injection experiments).
func NewClockWith(model noise.Model, seed int64) *Clock {
	return &Clock{stream: model.NewStream(seed)}
}

// Noise returns the clock's noise model.
func (c *Clock) Noise() noise.Model { return c.stream.Model() }

// Measure returns the noisy measured time for a run of the given cycle
// count, perturbed by the clock's noise model.
func (c *Clock) Measure(cycles int64) float64 {
	t := float64(cycles)
	if c.NoiseOff {
		return t
	}
	t = c.stream.Perturb(t)
	if t < 1 {
		t = 1
	}
	return t
}
