package sim

import (
	"fmt"
	"math"

	"peak/internal/ir"
)

// This file is the reference execution engine: the original per-instruction
// interpreter, preserved verbatim as the semantic ground truth for the fused
// superblock engine (exec.go). It walks the decoded dInstr tables (plan.go)
// and dynamically resolves operand stalls, cycle charges, cache latencies
// and predictor updates per instruction.
//
// The fused engine must be bit-identical to this one — return value,
// Cycles, Instrs, Counters, BlockCounts, predictor evolution, WriteLog, and
// every error path including the exact step at which ErrStepLimit fires.
// TestDifferentialBenchmarks and TestDifferentialRandomLIR enforce that
// contract; the reference engine itself is selected with Runner.Engine =
// EngineRef and is not performance-tuned.

func (ex *execState) execRef(p *vplan, args []float64, depth int) (float64, int64, error) {
	if depth > maxCallDepth {
		return 0, 0, fmt.Errorf("%w: call depth exceeded", ErrRuntime)
	}
	r := ex.r
	p.sync(r)
	lf := p.v.LF
	regs, ready := r.frame(depth, lf.NumRegs)
	ai := 0
	for i, prm := range lf.Params {
		if prm.IsArray {
			continue
		}
		if ai < len(args) && lf.ParamRegs[i] != ir.NoReg {
			regs[lf.ParamRegs[i]] = args[ai]
		}
		ai++
	}

	blocks := p.blocks
	pred := p.pred
	perBlockFetch := p.perBlockFetch
	var cycle int64
	var fetchPenalty float64

	cur := 0 // slice index of current block
	for {
		b := &blocks[cur]
		if depth == 0 && b.origin >= 0 && b.origin < len(ex.stats.BlockCounts) {
			ex.stats.BlockCounts[b.origin]++
		}
		fetchPenalty += perBlockFetch

		for i := range b.instrs {
			in := &b.instrs[i]
			if in.op == ir.LCount {
				if c := int(in.imm); c >= 0 && c < len(ex.stats.Counters) {
					ex.stats.Counters[c]++
				}
				continue
			}
			ex.steps++
			ex.stats.Instrs++
			if ex.steps > ex.maxSteps {
				return 0, cycle, fmt.Errorf("%w in %s", ErrStepLimit, p.name)
			}

			// Issue: stall until operands are ready. Spill loads, call
			// linkage and intrinsic costs are folded into in.cost.
			issue := cycle
			cost := in.cost
			var extraLat int64
			for _, u := range in.uses {
				if ready[u] > issue {
					issue = ready[u]
				}
			}

			var val float64
			switch in.op {
			case ir.LMovI:
				val = float64(in.imm)
			case ir.LMovF:
				val = in.fimm
			case ir.LMov:
				val = regs[in.a]
			case ir.LAdd, ir.LFAdd:
				val = regs[in.a] + regs[in.b]
			case ir.LSub, ir.LFSub:
				val = regs[in.a] - regs[in.b]
			case ir.LMul, ir.LFMul:
				val = regs[in.a] * regs[in.b]
			case ir.LFDiv:
				val = regs[in.a] / regs[in.b]
			case ir.LDiv:
				d := int64(regs[in.b])
				if d == 0 {
					return 0, cycle, fmt.Errorf("%w: integer division by zero in %s", ErrRuntime, p.name)
				}
				val = float64(int64(regs[in.a]) / d)
			case ir.LMod:
				d := int64(regs[in.b])
				if d == 0 {
					return 0, cycle, fmt.Errorf("%w: integer modulo by zero in %s", ErrRuntime, p.name)
				}
				val = float64(int64(regs[in.a]) % d)
			case ir.LAnd:
				val = float64(int64(regs[in.a]) & int64(regs[in.b]))
			case ir.LOr:
				val = float64(int64(regs[in.a]) | int64(regs[in.b]))
			case ir.LXor:
				val = float64(int64(regs[in.a]) ^ int64(regs[in.b]))
			case ir.LShl:
				val = float64(int64(regs[in.a]) << (uint64(int64(regs[in.b])) & 63))
			case ir.LShr:
				val = float64(int64(regs[in.a]) >> (uint64(int64(regs[in.b])) & 63))
			case ir.LNeg, ir.LFNeg:
				val = -regs[in.a]
			case ir.LNot:
				if regs[in.a] == 0 {
					val = 1
				}
			case ir.LCmpEq, ir.LFCmpEq:
				val = b2f(regs[in.a] == regs[in.b])
			case ir.LCmpNe, ir.LFCmpNe:
				val = b2f(regs[in.a] != regs[in.b])
			case ir.LCmpLt, ir.LFCmpLt:
				val = b2f(regs[in.a] < regs[in.b])
			case ir.LCmpLe, ir.LFCmpLe:
				val = b2f(regs[in.a] <= regs[in.b])
			case ir.LCmpGt, ir.LFCmpGt:
				val = b2f(regs[in.a] > regs[in.b])
			case ir.LCmpGe, ir.LFCmpGe:
				val = b2f(regs[in.a] >= regs[in.b])
			case ir.LSelect:
				if regs[in.a] != 0 {
					val = regs[in.b]
				} else {
					val = regs[in.src]
				}
			case ir.LLoad:
				arr := in.arr
				if arr == nil {
					return 0, cycle, fmt.Errorf("%w: unknown array %q", ErrRuntime, in.arrName)
				}
				i64 := int64(regs[in.a])
				if i64 < 0 || i64 >= int64(len(arr.Data)) {
					return 0, cycle, fmt.Errorf("%w: %s[%d] out of range [0,%d) in %s",
						ErrRuntime, in.arrName, i64, len(arr.Data), p.name)
				}
				val = arr.Data[i64]
				extraLat += r.Cache.Access(arr.Base + uint64(i64)*8)
			case ir.LStore:
				arr := in.arr
				if arr == nil {
					return 0, cycle, fmt.Errorf("%w: unknown array %q", ErrRuntime, in.arrName)
				}
				i64 := int64(regs[in.a])
				if i64 < 0 || i64 >= int64(len(arr.Data)) {
					return 0, cycle, fmt.Errorf("%w: %s[%d] out of range [0,%d) in %s",
						ErrRuntime, in.arrName, i64, len(arr.Data), p.name)
				}
				if r.RecordWrites {
					r.WriteLog = append(r.WriteLog, WriteRec{Arr: in.arrName, Idx: i64, Old: arr.Data[i64]})
				}
				arr.Data[i64] = regs[in.src]
				// Store completion can overlap with later work: the access
				// updates cache state but charges no latency here.
				r.Cache.Access(arr.Base + uint64(i64)*8)
			case ir.LCall:
				callArgs := r.callBuf(depth, len(in.callArgs))
				for k, ar := range in.callArgs {
					callArgs[k] = regs[ar]
				}
				if in.intr {
					iv, err := intrinsic(in.fn, callArgs)
					if err != nil {
						return 0, cycle, err
					}
					val = iv
				} else if in.callee == nil {
					return 0, cycle, fmt.Errorf("%w: unresolved call to %q", ErrRuntime, in.fn)
				} else {
					rv, ccycles, err := ex.execRef(in.callee, callArgs, depth+1)
					if err != nil {
						return 0, cycle, err
					}
					val = rv
					cost += ccycles
				}
			}

			if d := in.def; d != ir.NoReg {
				regs[d] = val
				ready[d] = issue + cost + in.lat + extraLat
				cost += in.storeCost
			}
			cycle = issue + cost
		}

		// Terminator.
		switch b.termKind {
		case ir.TermReturn:
			total := cycle + int64(fetchPenalty)
			if b.val != ir.NoReg {
				return regs[b.val], total, nil
			}
			return math.NaN(), total, nil
		case ir.TermJump:
			next := b.thenIdx
			if next != cur+1 {
				cycle += p.takenCost
			}
			cur = next
		case ir.TermBranch:
			if ready[b.cond] > cycle {
				cycle = ready[b.cond]
			}
			cycle += b.condCost
			taken := regs[b.cond] != 0
			state := pred[cur]
			predTaken := state >= 2
			if predTaken != taken {
				cycle += p.mispredict
			}
			if taken && state < 3 {
				state++
			} else if !taken && state > 0 {
				state--
			}
			pred[cur] = state

			var next int
			if taken {
				next = b.thenIdx
			} else {
				next = b.elseIdx
			}
			if next != cur+1 {
				cycle += p.takenCost
			}
			cur = next
		}
	}
}
