package machine

import (
	"testing"

	"peak/internal/ir"
)

func TestMachineTablesComplete(t *testing.T) {
	for _, m := range []*Machine{SPARCII(), PentiumIV()} {
		for op := ir.Opcode(0); op < ir.NumOpcodes; op++ {
			switch op {
			case ir.LNop, ir.LCount:
				if m.OpCost[op] != 0 {
					t.Errorf("%s: %s must be free", m.Name, op)
				}
			default:
				if m.OpCost[op] <= 0 {
					t.Errorf("%s: missing cost for %s", m.Name, op)
				}
			}
			if m.OpLatency[op] < 0 {
				t.Errorf("%s: negative latency for %s", m.Name, op)
			}
		}
		if m.IntRegs <= 0 || m.FloatRegs <= 0 {
			t.Errorf("%s: register counts %d/%d", m.Name, m.IntRegs, m.FloatRegs)
		}
		if m.L1.SizeBytes <= 0 || m.L2.SizeBytes < m.L1.SizeBytes {
			t.Errorf("%s: cache geometry broken", m.Name)
		}
		if m.NoiseStdDev <= 0 || m.OutlierProb <= 0 {
			t.Errorf("%s: noise model missing", m.Name)
		}
	}
}

func TestMachineContrast(t *testing.T) {
	s, p := SPARCII(), PentiumIV()
	// The paper's §5.2 contrast: "the SPARC II machine has more general
	// purpose registers than the Pentium IV machine".
	if s.IntRegs <= p.IntRegs || s.FloatRegs <= p.FloatRegs {
		t.Error("SPARC II must have the larger register file")
	}
	// Deep NetBurst pipeline: high mispredict penalty and spill cost.
	if p.MispredictPenalty <= s.MispredictPenalty {
		t.Error("Pentium IV must pay more per mispredict")
	}
	if p.SpillLoadCost <= s.SpillLoadCost {
		t.Error("Pentium IV spill traffic must be the more expensive")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"sparc2", "sparcII", "sparc"} {
		if m, ok := ByName(name); !ok || m.Name != "sparc2" {
			t.Errorf("ByName(%q) failed", name)
		}
	}
	for _, name := range []string{"p4", "pentium4", "pentiumIV"} {
		if m, ok := ByName(name); !ok || m.Name != "p4" {
			t.Errorf("ByName(%q) failed", name)
		}
	}
	if _, ok := ByName("vax"); ok {
		t.Error("ByName accepted junk")
	}
}
