// Package machine describes the simulated target machines.
//
// The paper evaluates on a SPARC II and a Pentium IV. The rating problem
// depends on machines only through (a) measurement timing behaviour and
// (b) machine-dependent optimization payoffs. Both are captured by a cost
// model: per-opcode issue costs and result latencies, a branch predictor
// penalty, a two-level data cache, the number of allocatable registers, and
// spill costs. The register-file difference (SPARC: large windowed file,
// P4: 8 architectural integer registers) is what flips the sign of
// strict-aliasing on ART in the paper's Figure 7(b).
package machine

import "peak/internal/ir"

// CacheGeometry configures one cache level.
type CacheGeometry struct {
	SizeBytes int
	LineBytes int
	Assoc     int
	// HitLatency is charged on a hit at this level.
	HitLatency int64
}

// Machine is a simulated target description. All costs are in cycles.
type Machine struct {
	Name string

	// IntRegs and FloatRegs are the numbers of allocatable registers.
	// omit-frame-pointer adds one integer register.
	IntRegs   int
	FloatRegs int

	// OpCost is the issue cost per opcode; OpLatency is the extra delay
	// until the result may be consumed (exposed unless hidden by
	// instruction scheduling). Dense tables indexed by opcode.
	OpCost    [ir.NumOpcodes]int64
	OpLatency [ir.NumOpcodes]int64

	// MispredictPenalty is charged on a branch mispredict (deep pipelines
	// pay more).
	MispredictPenalty int64
	// TakenBranchCost is charged for every taken branch/jump (fetch
	// redirect); reorder-blocks and alignment flags reduce exposure to it.
	TakenBranchCost int64

	L1, L2 CacheGeometry
	// MemLatency is charged on an access missing both cache levels.
	MemLatency int64

	// SpillLoadCost / SpillStoreCost are charged per access to a spilled
	// virtual register (stack traffic, assumed L1-resident).
	SpillLoadCost  int64
	SpillStoreCost int64

	// CallOverhead is the fixed cost of a call (save/restore, linkage).
	CallOverhead int64
	// IntrinsicCost is the execution cost of a math intrinsic body.
	IntrinsicCost int64

	// ICacheInstrs is the instruction-cache capacity in instructions;
	// versions larger than this pay a per-block-entry fetch penalty
	// proportional to the overflow (how unrolling/inlining/alignment hurt).
	ICacheInstrs int
	// FetchPenalty scales the icache overflow cost.
	FetchPenalty float64

	// NoiseStdDev is the relative standard deviation of measurement noise
	// (timer jitter); OutlierProb and OutlierScale model rare system
	// perturbations such as interrupts (paper §3).
	NoiseStdDev  float64
	OutlierProb  float64
	OutlierScale float64
}

func baseCosts(intCost, fpCost, mulCost, divCost, fdivCost int64) (cost, lat [ir.NumOpcodes]int64) {
	intOps := []ir.Opcode{
		ir.LMovI, ir.LMov, ir.LAdd, ir.LSub, ir.LAnd, ir.LOr, ir.LXor,
		ir.LShl, ir.LShr, ir.LNeg, ir.LNot,
		ir.LCmpEq, ir.LCmpNe, ir.LCmpLt, ir.LCmpLe, ir.LCmpGt, ir.LCmpGe,
		ir.LSelect,
	}
	for _, op := range intOps {
		cost[op] = intCost
		lat[op] = 0
	}
	fpOps := []ir.Opcode{
		ir.LMovF, ir.LFAdd, ir.LFSub, ir.LFNeg,
		ir.LFCmpEq, ir.LFCmpNe, ir.LFCmpLt, ir.LFCmpLe, ir.LFCmpGt, ir.LFCmpGe,
	}
	for _, op := range fpOps {
		cost[op] = fpCost
		lat[op] = 2
	}
	cost[ir.LMul] = mulCost
	lat[ir.LMul] = 2
	cost[ir.LFMul] = fpCost
	lat[ir.LFMul] = 3
	cost[ir.LDiv] = divCost
	lat[ir.LDiv] = divCost / 2
	cost[ir.LMod] = divCost
	lat[ir.LMod] = divCost / 2
	cost[ir.LFDiv] = fdivCost
	lat[ir.LFDiv] = fdivCost / 2
	cost[ir.LLoad] = 1 // plus cache latency
	lat[ir.LLoad] = 1
	cost[ir.LStore] = 1
	lat[ir.LStore] = 0
	cost[ir.LCall] = 1
	lat[ir.LCall] = 1
	cost[ir.LNop] = 0
	cost[ir.LCount] = 0 // instrumentation counters are free (paper §2.3)
	return cost, lat
}

// SPARCII returns a SPARC-II-like machine: in-order, shallow pipeline, a
// large register file (register windows), modest clock so memory is
// relatively close.
func SPARCII() *Machine {
	cost, lat := baseCosts(1, 2, 4, 24, 28)
	return &Machine{
		Name:              "sparc2",
		IntRegs:           20,
		FloatRegs:         24,
		OpCost:            cost,
		OpLatency:         lat,
		MispredictPenalty: 4,
		TakenBranchCost:   1,
		L1:                CacheGeometry{SizeBytes: 16 << 10, LineBytes: 32, Assoc: 1, HitLatency: 1},
		L2:                CacheGeometry{SizeBytes: 512 << 10, LineBytes: 64, Assoc: 4, HitLatency: 8},
		MemLatency:        40,
		SpillLoadCost:     2,
		SpillStoreCost:    2,
		CallOverhead:      6,
		IntrinsicCost:     18,
		ICacheInstrs:      1400,
		FetchPenalty:      2.0,
		NoiseStdDev:       0.012,
		OutlierProb:       0.004,
		OutlierScale:      0.6,
	}
}

// PentiumIV returns a Pentium-4-like machine: deep pipeline (large
// mispredict penalty), few architectural registers, memory far away in
// cycles, strong FP throughput.
func PentiumIV() *Machine {
	cost, lat := baseCosts(1, 2, 3, 30, 32)
	// Deep pipeline: results take longer to become consumable.
	lat[ir.LMul] = 4
	lat[ir.LFMul] = 5
	lat[ir.LFAdd] = 4
	lat[ir.LFSub] = 4
	lat[ir.LLoad] = 2
	return &Machine{
		Name:              "p4",
		IntRegs:           7,
		FloatRegs:         8,
		OpCost:            cost,
		OpLatency:         lat,
		MispredictPenalty: 20,
		TakenBranchCost:   1,
		L1:                CacheGeometry{SizeBytes: 8 << 10, LineBytes: 64, Assoc: 4, HitLatency: 2},
		L2:                CacheGeometry{SizeBytes: 256 << 10, LineBytes: 64, Assoc: 8, HitLatency: 14},
		MemLatency:        120,
		// The NetBurst store-to-load-forwarding stall makes stack spill
		// traffic disproportionately expensive — the mechanism behind the
		// paper's ART strict-aliasing anecdote (§5.2).
		SpillLoadCost:  9,
		SpillStoreCost: 9,
		CallOverhead:   8,
		IntrinsicCost:  22,
		ICacheInstrs:   1100,
		FetchPenalty:   2.5,
		NoiseStdDev:    0.015,
		OutlierProb:    0.005,
		OutlierScale:   0.8,
	}
}

// ByName returns the machine with the given name ("sparc2" or "p4").
func ByName(name string) (*Machine, bool) {
	switch name {
	case "sparc2", "sparcII", "sparc":
		return SPARCII(), true
	case "p4", "pentium4", "pentiumIV":
		return PentiumIV(), true
	}
	return nil, false
}
