package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// ReadEvents parses a JSONL trace stream back into events, preserving
// file order. Blank lines are skipped. A malformed *final* non-blank line
// is tolerated and dropped — a crashed or interrupted writer tears the
// tail of the file, and the events before it are still a valid partial
// trace (the fault.Journal reader makes the same call). A malformed line
// with well-formed lines after it is real corruption and aborts with an
// error naming its line number.
func ReadEvents(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	var pendingErr error // parse error that is forgiven only if it stays last
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if pendingErr != nil {
			return nil, pendingErr
		}
		var ev Event
		if err := json.Unmarshal([]byte(text), &ev); err != nil {
			pendingErr = fmt.Errorf("trace line %d: %w", line, err)
			continue
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Breakdown is the time decomposition of one tuning process, in
// simulated cycles. Rating + Retry + Verify + Overhead = Total; the
// compile columns are counts because compilation costs no simulated time
// (cache resolutions are charged only their injected-fault backoff and
// verification runs).
type Breakdown struct {
	// Tune is the process identity ("bench/machine/method/dataset").
	Tune string
	// Total is the tune's final TuningCycles ledger.
	Total int64
	// Rating is time spent in rating invocations net of fault recovery.
	Rating int64
	// Retry is fault-recovery time: hang timeouts and backoff inside
	// rating jobs plus compile-failure backoff during resolutions.
	Retry int64
	// Verify is golden-output verification time across resolutions.
	Verify int64
	// Overhead is the residual ledger time: profiling runs, baseline and
	// winner measurements, and any other non-rating charges.
	Overhead int64
	// Invocations is total TS invocations; Rounds the elimination rounds
	// run; Ratings the rate events observed (incl. method-switch retries).
	Invocations int64
	Rounds      int
	Ratings     int
	// Misses, Hits and Shared count cache resolutions by outcome; Dedups
	// the candidate ratings skipped by fingerprint dedup; Quarantines the
	// candidates dropped as miscompiled; Escalations the RBR escalations.
	Misses      int
	Hits        int
	Shared      int
	Dedups      int
	Quarantines int
	Escalations int
}

// RoundEvent is one row of a tune's elimination timeline.
type RoundEvent struct {
	// Round is the 1-based round number; Candidates the flags entering it.
	Round      int
	Candidates int
	// Outcome is "removed" or "stopped"; Flag and Improvement describe the
	// removal when there was one.
	Outcome     string
	Flag        string
	Improvement float64
	// Cycles is the cumulative tune ledger after the round; Ratings the
	// rate events the round consumed (including method-switch re-rates);
	// Dedups the ratings it skipped.
	Cycles  int64
	Ratings int
	Dedups  int
}

// Timeline is the per-round elimination history of one tuning process.
type Timeline struct {
	// Tune is the process identity; Winner its final flag set.
	Tune   string
	Winner string
	// Rounds lists the rounds in order.
	Rounds []RoundEvent
}

// Analysis is the digest of a trace file: one Breakdown and one Timeline
// per tuning process, in trace order.
type Analysis struct {
	// Breakdowns holds one time decomposition per tune.
	Breakdowns []Breakdown
	// Timelines holds one elimination history per tune.
	Timelines []Timeline
}

// Analyze digests events (as read by ReadEvents) into per-tune
// breakdowns and timelines. Events outside any tune (cells, trials,
// bench phases) are ignored.
func Analyze(events []Event) Analysis {
	var a Analysis
	idx := map[string]int{} // tune -> index in Breakdowns/Timelines
	cur := func(tune string) int {
		i, ok := idx[tune]
		if !ok {
			i = len(a.Breakdowns)
			idx[tune] = i
			a.Breakdowns = append(a.Breakdowns, Breakdown{Tune: tune})
			a.Timelines = append(a.Timelines, Timeline{Tune: tune})
		}
		return i
	}
	for _, ev := range events {
		if ev.Tune == "" {
			continue
		}
		i := cur(ev.Tune)
		b := &a.Breakdowns[i]
		tl := &a.Timelines[i]
		switch ev.Kind {
		case KindRoundStart:
			tl.Rounds = append(tl.Rounds, RoundEvent{Round: ev.Round, Candidates: int(ev.Count)})
			b.Rounds++
		case KindRoundEnd:
			if n := len(tl.Rounds); n > 0 {
				r := &tl.Rounds[n-1]
				r.Outcome = ev.Outcome
				r.Flag = ev.Flag
				r.Improvement = ev.Improvement
				r.Cycles = ev.Cycles
			}
		case KindRate:
			b.Rating += ev.JobCycles - ev.RetryCycles
			b.Retry += ev.RetryCycles
			b.Ratings++
			if n := len(tl.Rounds); n > 0 {
				tl.Rounds[n-1].Ratings++
			}
		case KindCache:
			b.Retry += ev.RetryCycles
			b.Verify += ev.VerifyCycles
			switch ev.Outcome {
			case "hit":
				b.Hits++
			case "miss":
				b.Misses++
			case "shared":
				b.Shared++
			}
		case KindDedup:
			b.Dedups++
			if n := len(tl.Rounds); n > 0 {
				tl.Rounds[n-1].Dedups++
			}
		case KindQuarantine:
			b.Quarantines++
		case KindEscalate:
			b.Escalations++
		case KindTuneEnd:
			b.Total = ev.Cycles
			b.Invocations = ev.Invocations
			tl.Winner = ev.Detail
		}
	}
	for i := range a.Breakdowns {
		b := &a.Breakdowns[i]
		b.Overhead = b.Total - b.Rating - b.Retry - b.Verify
	}
	return a
}

// FormatBreakdown renders the breakdowns as the peak-trace time table:
// one row per tune, cycle columns with percent-of-total, then compile
// and search counts.
func FormatBreakdown(bs []Breakdown) string {
	var sb strings.Builder
	sb.WriteString("Where tuning time goes (simulated cycles)\n")
	sb.WriteString(fmt.Sprintf("%-38s %14s %22s %18s %18s %18s %8s\n",
		"tune", "total", "rating", "retry", "verify", "overhead", "invoc"))
	for _, b := range bs {
		pct := func(v int64) string {
			if b.Total <= 0 {
				return fmt.Sprintf("%d", v)
			}
			return fmt.Sprintf("%d (%4.1f%%)", v, 100*float64(v)/float64(b.Total))
		}
		sb.WriteString(fmt.Sprintf("%-38s %14d %22s %18s %18s %18s %8d\n",
			b.Tune, b.Total, pct(b.Rating), pct(b.Retry), pct(b.Verify), pct(b.Overhead), b.Invocations))
		sb.WriteString(fmt.Sprintf("%-38s compiles: %d miss / %d hit / %d shared · %d dedup-skips · %d ratings over %d rounds · %d quarantined · %d escalations\n",
			"", b.Misses, b.Hits, b.Shared, b.Dedups, b.Ratings, b.Rounds, b.Quarantines, b.Escalations))
	}
	return sb.String()
}

// FormatTimeline renders the elimination timelines: one block per tune,
// one row per round showing candidates in, ratings spent, and the
// removal decision.
func FormatTimeline(ts []Timeline) string {
	var sb strings.Builder
	for _, t := range ts {
		sb.WriteString(fmt.Sprintf("Elimination timeline: %s\n", t.Tune))
		sb.WriteString(fmt.Sprintf("  %5s %10s %8s %8s %-10s %-22s %12s %14s\n",
			"round", "candidates", "ratings", "dedups", "outcome", "flag", "improve", "cycles"))
		for _, r := range t.Rounds {
			flag := r.Flag
			if flag == "" {
				flag = "-"
			}
			sb.WriteString(fmt.Sprintf("  %5d %10d %8d %8d %-10s %-22s %11.2f%% %14d\n",
				r.Round, r.Candidates, r.Ratings, r.Dedups, r.Outcome, flag, 100*r.Improvement, r.Cycles))
		}
		if t.Winner != "" {
			sb.WriteString(fmt.Sprintf("  winner: %s\n", t.Winner))
		}
	}
	return sb.String()
}
