// Package trace is the deterministic observability layer of the tuning
// engine: structured events describing what a tuning process did (rounds,
// ratings, cache resolutions, dedup skips, fault recovery, checkpoints)
// and a registry of named metrics aggregating the same story as counters.
//
// # Determinism contract
//
// Traces obey the repository-wide bit-identity rule (ARCHITECTURE.md §3):
// the serialized trace of a run is byte-identical at any worker count and
// with the compile cache on or off. Three properties make that hold:
//
//  1. Events are keyed by *simulated* cycles and job ordinals — never by
//     wall clock, goroutine identity or completion order. Every timestamp
//     in a trace is the tune's deterministic cycle ledger.
//  2. Events are emitted into per-unit Buffers by the code that owns the
//     unit (one tune, one experiment cell) and only ever on that unit's
//     reduction path, in index order. Parallel workers never write to a
//     Buffer directly.
//  3. Buffers are flushed to the Tracer in the work DAG's input order
//     (candidate order within a round, benchmark order within an
//     experiment), after the parallel phase completes — exactly the
//     index-ordered reduction rule the result ledgers already follow.
//
// The one deliberate exception is cmd/peak-bench, whose trace records
// wall-clock benchmark phases and is documented as outside the contract
// (OBSERVABILITY.md "Determinism contract").
//
// # Overhead
//
// A nil *Buffer is the disabled tracer: every emit method returns
// immediately, so the tuning hot path pays one pointer test when tracing
// is off. The engine additionally guards event *construction* behind the
// nil check, so no field formatting happens either.
package trace

// Kind names an event type. The set of kinds, their fields and their
// ordering guarantees are documented in OBSERVABILITY.md ("Event schema
// reference"); adding a kind requires a schema entry there.
type Kind string

// Event kinds emitted by the tuning engine (internal/core).
const (
	// KindTuneStart opens one tuning process: Tune identifies it as
	// "bench/machine/method/dataset", Method is the starting rating
	// method, Detail the tuning dataset.
	KindTuneStart Kind = "tune_start"
	// KindTuneEnd closes a tuning process: Cycles is the final tuning-time
	// ledger, Invocations the TS invocations consumed, Detail the winning
	// flag set, and Counts the full TuneResult counter block.
	KindTuneEnd Kind = "tune_end"
	// KindRoundStart opens one Iterative Elimination round: Round (1-based),
	// Count the number of candidate flags entering the round.
	KindRoundStart Kind = "round_start"
	// KindRoundEnd closes a round: Outcome is "removed" or "stopped", Flag
	// the removed flag (when removed), Improvement its gated improvement,
	// Cycles the cumulative ledger after the round.
	KindRoundEnd Kind = "round_end"
	// KindCache is one compile-cache resolution in the engine's
	// deterministic precompile walk: Flag names the requested candidate
	// ("(base)" for the round's base set), Outcome is "hit" (flag set
	// already resolved by this tune), "miss" (fresh compilation) or
	// "shared" (fresh resolution whose generated code fingerprinted
	// identically to an earlier resolution, Leader naming it). Retries and
	// RetryCycles carry injected transient compile failures absorbed for
	// the flag set; VerifyCycles the golden-output verification time.
	KindCache Kind = "cache"
	// KindDedup is one candidate rating skipped by code-fingerprint dedup:
	// Flag inherits the rating of Leader ("(base)" when the candidate's
	// code is identical to the round base and its improvement is zero).
	KindDedup Kind = "dedup"
	// KindRate is one completed rating job, emitted in candidate order
	// during the round reduction: Flag ("(base)" for the base rating),
	// Ordinal the 1-based candidate index, Method the rating method,
	// Eval/CIHalf the rating (CIHalf -1 when undefined), Outcome
	// "converged" or "budget", JobCycles/Invocations the job's private
	// ledger, RetryCycles the hang-recovery share of JobCycles, Retries
	// the hung measurements killed, Count the injected job panics
	// survived, Cycles the cumulative tune ledger after accounting.
	KindRate Kind = "rate"
	// KindEscalate marks a candidate whose CBR/AVG rating stayed wide past
	// the escalation budget and was re-rated with RBR inside its job.
	KindEscalate Kind = "escalate"
	// KindMethodSwitch marks a round-level rating-method switch: Method is
	// the method the next attempt uses, Detail the abandoned one.
	KindMethodSwitch Kind = "method_switch"
	// KindQuarantine marks a candidate removed from the search because its
	// compilation failed golden-output verification (miscompile).
	KindQuarantine Kind = "quarantine"
	// KindCheckpoint is one checkpoint journal append: Round the completed
	// round, Count the serialized state size in bytes, Outcome "stopped"
	// on the final record of a tune.
	KindCheckpoint Kind = "checkpoint"
)

// Event kinds emitted by the experiment drivers and cmd/peak-bench.
const (
	// KindCell is one cell of a grid experiment (a Table-1 row, a noise
	// report cell): Detail identifies the cell, Method the rating method,
	// Mu/Sigma the cell's rating-error statistics.
	KindCell Kind = "cell"
	// KindTrials is one winner-picking trial block of the noise report:
	// Detail the regime, Counts the wrong-adopt/miss/invocation totals.
	KindTrials Kind = "trials"
	// KindBenchPhase is one wall-clock phase of cmd/peak-bench. It is the
	// only kind exempt from the determinism contract: Count carries
	// nanoseconds of real time.
	KindBenchPhase Kind = "bench_phase"
)

// Event is one structured trace record. Field presence depends on Kind
// (see the constants above and OBSERVABILITY.md); absent numeric fields
// mean zero. Round and Ordinal are 1-based so that "absent" is
// distinguishable from a real value. Events marshal to one JSON object
// per line with a fixed field order, which is what makes trace files
// byte-comparable.
type Event struct {
	// Seq is the event's position in the trace file, assigned by the
	// Tracer at flush time. It is deterministic because flush order is.
	Seq int64 `json:"seq"`
	// Kind selects the event type and the meaning of the other fields.
	Kind Kind `json:"kind"`
	// Tune identifies the tuning process ("bench/machine/method/dataset").
	Tune string `json:"tune,omitempty"`
	// Round is the 1-based Iterative Elimination round.
	Round int `json:"round,omitempty"`
	// Ordinal is the 1-based candidate index of a rating job within its
	// round — the job's position in the work DAG, never its scheduling
	// order.
	Ordinal int `json:"ordinal,omitempty"`
	// Cycles is the tune's cumulative simulated-cycle ledger at emission.
	Cycles int64 `json:"cycles,omitempty"`
	// Flag names the candidate flag concerned ("(base)" for the base set).
	Flag string `json:"flag,omitempty"`
	// Leader names the earlier flag a dedup/shared event aliases to.
	Leader string `json:"leader,omitempty"`
	// Method is the rating method in effect.
	Method string `json:"method,omitempty"`
	// Outcome is the kind-specific verdict ("hit", "removed", ...).
	Outcome string `json:"outcome,omitempty"`
	// Eval is the rating value (time estimate, or relative ratio for RBR).
	Eval float64 `json:"eval,omitempty"`
	// CIHalf is the rating's confidence-interval half-width; -1 means
	// undefined (fewer than two samples — JSON has no +Inf).
	CIHalf float64 `json:"ci_half,omitempty"`
	// Improvement is the gated relative improvement of a removal.
	Improvement float64 `json:"improvement,omitempty"`
	// JobCycles is one rating job's private simulated-cycle total.
	JobCycles int64 `json:"job_cycles,omitempty"`
	// RetryCycles is the fault-recovery share of the event's cycles
	// (hang timeouts + backoff for rate events, compile backoff for cache
	// events).
	RetryCycles int64 `json:"retry_cycles,omitempty"`
	// VerifyCycles is the golden-output verification time of a resolution.
	VerifyCycles int64 `json:"verify_cycles,omitempty"`
	// Invocations counts TS invocations consumed by the event's unit.
	Invocations int64 `json:"invocations,omitempty"`
	// Retries counts fault retries absorbed (compile or measurement).
	Retries int `json:"retries,omitempty"`
	// Count is a kind-specific count (candidates entering a round,
	// checkpoint bytes, bench-phase nanoseconds, job panics survived).
	Count int64 `json:"count,omitempty"`
	// Mu and Sigma are a cell's rating-error statistics.
	Mu float64 `json:"mu,omitempty"`
	// Sigma is the standard deviation paired with Mu.
	Sigma float64 `json:"sigma,omitempty"`
	// Detail is kind-specific free text (dataset, regime, winner flags).
	Detail string `json:"detail,omitempty"`
	// Tier is the serving tier of a cache or rate event when a persistent
	// store is attached: "memory" (resolved by this process), "disk"
	// (preloaded from the store's snapshot) or "memo" (rating restored
	// from the store's memo table, no simulation run). Empty — and absent
	// from the JSON — whenever no store is attached, so trace bytes are
	// unchanged with the store disabled.
	Tier string `json:"tier,omitempty"`
	// Counts is a kind-specific named-counter block. encoding/json sorts
	// map keys, so Counts marshals deterministically.
	Counts map[string]int64 `json:"counts,omitempty"`
}

// Buffer is an ordered, single-goroutine event buffer: the unit of
// deterministic trace assembly. Code that owns a unit of work (one tune,
// one experiment cell) emits into its own Buffer on its reduction path
// and the driver flushes buffers in input order. A nil *Buffer is the
// disabled tracer — every method is a nil-safe no-op — so call sites need
// no feature flag beyond carrying a nil.
type Buffer struct {
	events []Event
}

// NewBuffer returns an empty event buffer.
func NewBuffer() *Buffer { return &Buffer{} }

// Enabled reports whether events emitted into b are recorded. It is the
// cheap guard for call sites that would otherwise pay to construct an
// Event nobody keeps.
func (b *Buffer) Enabled() bool { return b != nil }

// Emit appends one event. No-op on a nil buffer.
func (b *Buffer) Emit(ev Event) {
	if b == nil {
		return
	}
	b.events = append(b.events, ev)
}

// Append moves every event of child into b, preserving order. It is how
// a driver folds per-unit buffers into the run's trace in deterministic
// input order. Nil-safe on both sides.
func (b *Buffer) Append(child *Buffer) {
	if b == nil || child == nil {
		return
	}
	b.events = append(b.events, child.events...)
}

// Len returns the number of buffered events (0 for nil).
func (b *Buffer) Len() int {
	if b == nil {
		return 0
	}
	return len(b.events)
}

// Events returns the buffered events in emission order (nil for nil).
// The slice is the buffer's backing store; callers must not mutate it.
func (b *Buffer) Events() []Event {
	if b == nil {
		return nil
	}
	return b.events
}
