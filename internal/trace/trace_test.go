package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestNilBufferIsNoOp(t *testing.T) {
	var b *Buffer
	if b.Enabled() {
		t.Fatal("nil buffer reports enabled")
	}
	b.Emit(Event{Kind: KindRate})
	b.Append(NewBuffer())
	if b.Len() != 0 || b.Events() != nil {
		t.Fatal("nil buffer recorded events")
	}
	// Nil tracer accepts everything silently too.
	var tr *Tracer
	tr.Flush(NewBuffer())
	tr.Emit(Event{})
	if tr.Seq() != 0 || tr.Err() != nil || tr.Close() != nil {
		t.Fatal("nil tracer not inert")
	}
}

func TestBufferAppendPreservesOrder(t *testing.T) {
	parent := NewBuffer()
	parent.Emit(Event{Kind: KindTuneStart, Tune: "a"})
	child := NewBuffer()
	child.Emit(Event{Kind: KindRate, Flag: "x"})
	child.Emit(Event{Kind: KindRate, Flag: "y"})
	parent.Append(child)
	parent.Emit(Event{Kind: KindTuneEnd, Tune: "a"})
	got := parent.Events()
	want := []Kind{KindTuneStart, KindRate, KindRate, KindTuneEnd}
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d", len(got), len(want))
	}
	for i, k := range want {
		if got[i].Kind != k {
			t.Fatalf("event %d: kind %q, want %q", i, got[i].Kind, k)
		}
	}
	if got[1].Flag != "x" || got[2].Flag != "y" {
		t.Fatal("child order not preserved")
	}
}

func TestTracerAssignsSequentialSeq(t *testing.T) {
	var out bytes.Buffer
	tr := NewTracer(&out)
	b := NewBuffer()
	b.Emit(Event{Kind: KindRoundStart, Round: 1})
	b.Emit(Event{Kind: KindRoundEnd, Round: 1})
	tr.Flush(b)
	if b.Len() != 0 {
		t.Fatal("flush did not drain buffer")
	}
	tr.Emit(Event{Kind: KindTuneEnd})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadEvents(&out)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	for i, ev := range events {
		if ev.Seq != int64(i+1) {
			t.Fatalf("event %d: seq %d, want %d", i, ev.Seq, i+1)
		}
	}
	if tr.Seq() != 3 {
		t.Fatalf("tracer seq %d, want 3", tr.Seq())
	}
}

func TestTracerOutputIsDeterministic(t *testing.T) {
	run := func() string {
		var out bytes.Buffer
		tr := NewTracer(&out)
		b := NewBuffer()
		b.Emit(Event{Kind: KindRate, Tune: "bench/sparc2/CBR/train", Flag: "gcse",
			Eval: 1.25, CIHalf: 0.01, JobCycles: 1000, Counts: map[string]int64{"b": 2, "a": 1}})
		tr.Flush(b)
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	first := run()
	for i := 0; i < 3; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d differs:\n%s\nvs\n%s", i, got, first)
		}
	}
	// Map extras must serialize key-sorted for byte-comparability.
	if !strings.Contains(first, `"counts":{"a":1,"b":2}`) {
		t.Fatalf("counts not key-sorted: %s", first)
	}
}

func TestMetricsRegistry(t *testing.T) {
	var nilM *Metrics
	nilM.Add("x", 1)
	nilM.Gauge("y", 2)
	nilM.Merge(NewMetrics())
	if nilM.Enabled() || nilM.Get("x") != 0 || nilM.Snapshot() != nil {
		t.Fatal("nil metrics not inert")
	}

	m := NewMetrics()
	m.Add("core.rounds", 3)
	m.Add("core.rounds", 2)
	m.Gauge("vcache.entries", 10)

	other := NewMetrics()
	other.Add("core.rounds", 1)
	other.Gauge("vcache.entries", 12)
	m.Merge(other)

	if got := m.Get("core.rounds"); got != 6 {
		t.Fatalf("counter merged to %d, want 6", got)
	}
	if got := m.Get("vcache.entries"); got != 12 {
		t.Fatalf("gauge merged to %d, want 12", got)
	}
	snap := m.Snapshot()
	if len(snap) != 2 || snap[0].Name != "core.rounds" || snap[1].Name != "vcache.entries" {
		t.Fatalf("snapshot not name-sorted: %+v", snap)
	}
	if snap[0].Kind != Counter || snap[1].Kind != Gauge {
		t.Fatalf("kinds wrong: %+v", snap)
	}
	text := m.Format()
	if !strings.Contains(text, "core.rounds") || !strings.Contains(text, "6") {
		t.Fatalf("format missing data:\n%s", text)
	}
	if NewMetrics().Format() != "(no metrics recorded)\n" {
		t.Fatal("empty format wrong")
	}
}
