package trace

import (
	"bytes"
	"strings"
	"testing"
)

// synthTrace builds a small but complete tune trace exercising every
// field the analyzer folds.
func synthTrace() []Event {
	const tune = "bench/sparc2/CBR/train"
	return []Event{
		{Kind: KindTuneStart, Tune: tune, Method: "CBR"},
		{Kind: KindRoundStart, Tune: tune, Round: 1, Count: 3},
		{Kind: KindCache, Tune: tune, Round: 1, Flag: "(base)", Outcome: "miss", VerifyCycles: 50},
		{Kind: KindCache, Tune: tune, Round: 1, Flag: "gcse", Outcome: "miss", Retries: 1, RetryCycles: 30, VerifyCycles: 50},
		{Kind: KindCache, Tune: tune, Round: 1, Flag: "ivopts", Outcome: "shared", Leader: "gcse", VerifyCycles: 50},
		{Kind: KindCache, Tune: tune, Round: 1, Flag: "sched", Outcome: "hit"},
		{Kind: KindDedup, Tune: tune, Round: 1, Flag: "ivopts", Leader: "gcse"},
		{Kind: KindRate, Tune: tune, Round: 1, Ordinal: 1, Flag: "(base)", JobCycles: 1000, Invocations: 10},
		{Kind: KindRate, Tune: tune, Round: 1, Ordinal: 2, Flag: "gcse", JobCycles: 900, RetryCycles: 100, Retries: 2, Invocations: 9},
		{Kind: KindRate, Tune: tune, Round: 1, Ordinal: 3, Flag: "sched", JobCycles: 800, Invocations: 8},
		{Kind: KindEscalate, Tune: tune, Round: 1, Flag: "sched", Method: "RBR"},
		{Kind: KindRoundEnd, Tune: tune, Round: 1, Outcome: "removed", Flag: "gcse", Improvement: 0.05, Cycles: 2700},
		{Kind: KindRoundStart, Tune: tune, Round: 2, Count: 2},
		{Kind: KindQuarantine, Tune: tune, Round: 2, Flag: "ivopts"},
		{Kind: KindRoundEnd, Tune: tune, Round: 2, Outcome: "stopped", Cycles: 3000},
		{Kind: KindTuneEnd, Tune: tune, Cycles: 3200, Invocations: 27, Detail: "-O3 -fno-gcse"},
	}
}

func TestAnalyzeBreakdown(t *testing.T) {
	a := Analyze(synthTrace())
	if len(a.Breakdowns) != 1 {
		t.Fatalf("got %d breakdowns, want 1", len(a.Breakdowns))
	}
	b := a.Breakdowns[0]
	if b.Total != 3200 || b.Invocations != 27 {
		t.Fatalf("totals wrong: %+v", b)
	}
	// rating = (1000-0)+(900-100)+(800-0) = 2600
	if b.Rating != 2600 {
		t.Fatalf("rating %d, want 2600", b.Rating)
	}
	// retry = 100 (hangs) + 30 (compile backoff) = 130
	if b.Retry != 130 {
		t.Fatalf("retry %d, want 130", b.Retry)
	}
	if b.Verify != 150 {
		t.Fatalf("verify %d, want 150", b.Verify)
	}
	if b.Overhead != 3200-2600-130-150 {
		t.Fatalf("overhead %d", b.Overhead)
	}
	if b.Misses != 2 || b.Hits != 1 || b.Shared != 1 || b.Dedups != 1 {
		t.Fatalf("compile counts wrong: %+v", b)
	}
	if b.Rounds != 2 || b.Ratings != 3 || b.Quarantines != 1 || b.Escalations != 1 {
		t.Fatalf("search counts wrong: %+v", b)
	}
}

func TestAnalyzeTimeline(t *testing.T) {
	a := Analyze(synthTrace())
	if len(a.Timelines) != 1 {
		t.Fatalf("got %d timelines, want 1", len(a.Timelines))
	}
	tl := a.Timelines[0]
	if tl.Winner != "-O3 -fno-gcse" {
		t.Fatalf("winner %q", tl.Winner)
	}
	if len(tl.Rounds) != 2 {
		t.Fatalf("got %d rounds, want 2", len(tl.Rounds))
	}
	r1 := tl.Rounds[0]
	if r1.Round != 1 || r1.Candidates != 3 || r1.Outcome != "removed" || r1.Flag != "gcse" ||
		r1.Improvement != 0.05 || r1.Cycles != 2700 || r1.Ratings != 3 || r1.Dedups != 1 {
		t.Fatalf("round 1 wrong: %+v", r1)
	}
	r2 := tl.Rounds[1]
	if r2.Round != 2 || r2.Outcome != "stopped" || r2.Cycles != 3000 {
		t.Fatalf("round 2 wrong: %+v", r2)
	}
}

func TestReadEventsRoundTrip(t *testing.T) {
	var out bytes.Buffer
	tr := NewTracer(&out)
	b := NewBuffer()
	for _, ev := range synthTrace() {
		b.Emit(ev)
	}
	tr.Flush(b)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEvents(&out)
	if err != nil {
		t.Fatal(err)
	}
	want := synthTrace()
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d", len(got), len(want))
	}
	for i := range got {
		w := want[i]
		w.Seq = int64(i + 1)
		g := got[i]
		if g.Kind != w.Kind || g.Flag != w.Flag || g.Cycles != w.Cycles ||
			g.JobCycles != w.JobCycles || g.Seq != w.Seq {
			t.Fatalf("event %d: got %+v, want %+v", i, g, w)
		}
	}
}

// TestReadEventsRejectsMidFileGarbage: a malformed line with well-formed
// lines after it is corruption, not a torn tail, and must still error.
func TestReadEventsRejectsMidFileGarbage(t *testing.T) {
	_, err := ReadEvents(strings.NewReader("{\"kind\":\"rate\"}\nnot json\n{\"kind\":\"rate\"}\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("expected line-2 error, got %v", err)
	}
}

// TestReadEventsTornTail covers the crash/interrupt fixtures: an empty
// file, a file that is nothing but a partial line, and a valid trace whose
// final line was torn mid-write all parse cleanly, keeping every complete
// event, and Analyze on the result returns an empty (or partial) analysis
// rather than an error or panic. Trailing blank lines after the torn line
// must not promote it to a mid-file error.
func TestReadEventsTornTail(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  int // complete events expected
	}{
		{"empty file", "", 0},
		{"blank lines only", "\n\n  \n", 0},
		{"only a partial line", `{"kind":"ra`, 0},
		{"torn final line", "{\"kind\":\"rate\",\"tune\":\"t\"}\n{\"kind\":\"rate\",\"tu", 1},
		{"torn line then blanks", "{\"kind\":\"rate\",\"tune\":\"t\"}\n{\"kind\":\"ro\n\n", 1},
	}
	for _, tc := range cases {
		evs, err := ReadEvents(strings.NewReader(tc.input))
		if err != nil {
			t.Errorf("%s: ReadEvents error: %v", tc.name, err)
			continue
		}
		if len(evs) != tc.want {
			t.Errorf("%s: got %d events, want %d", tc.name, len(evs), tc.want)
			continue
		}
		a := Analyze(evs)
		if tc.want == 0 && (len(a.Breakdowns) != 0 || len(a.Timelines) != 0) {
			t.Errorf("%s: Analyze of empty trace not empty: %+v", tc.name, a)
		}
	}
}

// TestAnalyzeUnknownKind: events of a kind this version doesn't know
// (traces from a newer writer) are skipped, not a panic — known events
// around them still fold normally.
func TestAnalyzeUnknownKind(t *testing.T) {
	input := "{\"kind\":\"tune_start\",\"tune\":\"t\"}\n" +
		"{\"kind\":\"wormhole\",\"tune\":\"t\",\"cycles\":12}\n" +
		"{\"kind\":\"tune_end\",\"tune\":\"t\",\"cycles\":99,\"invocations\":3}\n"
	evs, err := ReadEvents(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	a := Analyze(evs)
	if len(a.Breakdowns) != 1 || a.Breakdowns[0].Total != 99 || a.Breakdowns[0].Invocations != 3 {
		t.Fatalf("unknown kind disturbed the analysis: %+v", a.Breakdowns)
	}
}

func TestFormatters(t *testing.T) {
	a := Analyze(synthTrace())
	bd := FormatBreakdown(a.Breakdowns)
	for _, want := range []string{"Where tuning time goes", "bench/sparc2/CBR/train", "2 miss / 1 hit / 1 shared"} {
		if !strings.Contains(bd, want) {
			t.Fatalf("breakdown missing %q:\n%s", want, bd)
		}
	}
	tl := FormatTimeline(a.Timelines)
	for _, want := range []string{"Elimination timeline", "removed", "gcse", "winner: -O3 -fno-gcse"} {
		if !strings.Contains(tl, want) {
			t.Fatalf("timeline missing %q:\n%s", want, tl)
		}
	}
}
