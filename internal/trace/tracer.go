package trace

import (
	"bufio"
	"encoding/json"
	"io"
)

// Tracer serializes events to a JSONL stream: one Event object per line,
// sequence numbers assigned in flush order. Because callers flush Buffers
// in deterministic input order (see the package comment), the byte stream
// a Tracer produces for a run is identical at any worker count.
//
// Tracer is not concurrency-safe by design: it is owned by the driver
// goroutine that performs the deterministic reduction, which is the only
// code allowed to flush.
type Tracer struct {
	w   *bufio.Writer
	enc *json.Encoder
	seq int64
	err error
}

// NewTracer returns a Tracer writing JSONL to w. Call Close to flush
// buffered output.
func NewTracer(w io.Writer) *Tracer {
	bw := bufio.NewWriter(w)
	return &Tracer{w: bw, enc: json.NewEncoder(bw)}
}

// Flush drains b into the stream, assigning each event the next sequence
// number. The buffer is emptied so it can be reused. Nil-safe on both
// receiver and argument; after a write error Flush keeps consuming
// buffers but writes nothing (check Err).
func (t *Tracer) Flush(b *Buffer) {
	if t == nil || b == nil {
		return
	}
	for i := range b.events {
		t.seq++
		b.events[i].Seq = t.seq
		if t.err == nil {
			t.err = t.enc.Encode(&b.events[i])
		}
	}
	b.events = b.events[:0]
}

// Emit writes a single event directly, assigning the next sequence
// number. It is a convenience for strictly serial emitters (cmd drivers,
// peak-bench phases) that have no buffering to do.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.seq++
	ev.Seq = t.seq
	if t.err == nil {
		t.err = t.enc.Encode(&ev)
	}
}

// Seq returns the number of events written so far.
func (t *Tracer) Seq() int64 {
	if t == nil {
		return 0
	}
	return t.seq
}

// Err returns the first write or encode error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	return t.err
}

// Close flushes buffered bytes to the underlying writer and returns the
// first error seen (write, encode, or final flush). It does not close
// the underlying writer. Nil-safe.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	if ferr := t.w.Flush(); t.err == nil {
		t.err = ferr
	}
	return t.err
}
