package trace

import (
	"fmt"
	"sort"
	"strings"
)

// MetricKind distinguishes accumulating counters from point-in-time
// gauges when metric sets are merged: counters add, gauges overwrite.
type MetricKind int

// Metric kinds.
const (
	// Counter metrics accumulate across tunes and merges.
	Counter MetricKind = iota
	// Gauge metrics are last-write-wins snapshots (pool size, cache
	// residency).
	Gauge
)

// Metric is one named value in a snapshot: Name is the dotted metric
// name ("core.tuning_cycles"), Kind its merge semantics, Value the
// current total.
type Metric struct {
	Name  string
	Kind  MetricKind
	Value int64
}

// Metrics is a registry of named counters and gauges. The registry is
// not concurrency-safe: like Buffers, it is owned by the reduction path,
// which folds per-unit totals in deterministic order. A nil *Metrics is
// the disabled registry — every method is a no-op — so instrumented code
// carries a nil when -metrics is off.
type Metrics struct {
	vals  map[string]int64
	kinds map[string]MetricKind
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{vals: map[string]int64{}, kinds: map[string]MetricKind{}}
}

// Enabled reports whether values recorded into m are kept.
func (m *Metrics) Enabled() bool { return m != nil }

// Add increments the named counter by delta. No-op on nil.
func (m *Metrics) Add(name string, delta int64) {
	if m == nil {
		return
	}
	m.vals[name] += delta
	m.kinds[name] = Counter
}

// Gauge sets the named gauge to value. No-op on nil.
func (m *Metrics) Gauge(name string, value int64) {
	if m == nil {
		return
	}
	m.vals[name] = value
	m.kinds[name] = Gauge
}

// Get returns the current value of the named metric (0 if absent or nil
// registry).
func (m *Metrics) Get(name string) int64 {
	if m == nil {
		return 0
	}
	return m.vals[name]
}

// Merge folds other into m: counters add, gauges overwrite. Nil-safe on
// both sides.
func (m *Metrics) Merge(other *Metrics) {
	if m == nil || other == nil {
		return
	}
	for _, name := range other.names() {
		if other.kinds[name] == Gauge {
			m.Gauge(name, other.vals[name])
		} else {
			m.Add(name, other.vals[name])
		}
	}
}

// Snapshot returns the metrics sorted by name — the deterministic
// presentation order. Nil registries snapshot empty.
func (m *Metrics) Snapshot() []Metric {
	if m == nil {
		return nil
	}
	out := make([]Metric, 0, len(m.vals))
	for _, name := range m.names() {
		out = append(out, Metric{Name: name, Kind: m.kinds[name], Value: m.vals[name]})
	}
	return out
}

func (m *Metrics) names() []string {
	names := make([]string, 0, len(m.vals))
	for name := range m.vals {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Format renders the snapshot as an aligned name/value table, one metric
// per line, sorted by name. The layout is documented in OBSERVABILITY.md
// ("Metric catalog").
func (m *Metrics) Format() string {
	snap := m.Snapshot()
	if len(snap) == 0 {
		return "(no metrics recorded)\n"
	}
	width := 0
	for _, mt := range snap {
		if len(mt.Name) > width {
			width = len(mt.Name)
		}
	}
	var sb strings.Builder
	for _, mt := range snap {
		fmt.Fprintf(&sb, "%-*s %d\n", width, mt.Name, mt.Value)
	}
	return sb.String()
}
