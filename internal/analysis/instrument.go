package analysis

import "peak/internal/ir"

// Instrument returns a copy of fn with an MBR counter inserted at the
// function entry and at the head of every loop body and conditional arm —
// the "relevant blocks" of paper §2.3. Counter 0 is the entry counter,
// which executes exactly once per invocation and therefore serves as the
// paper's constant component (C_n = 1).
//
// Counters carry no data or control dependences; optimization passes
// preserve them (unrolling duplicates them, which keeps totals exact), and
// the execution engine charges no cycles for them.
func Instrument(fn *ir.Func) *ir.Func {
	nf := fn.Clone()
	next := 0
	alloc := func() *ir.Counter {
		c := &ir.Counter{ID: next}
		next++
		return c
	}
	var instr func(list []ir.Stmt) []ir.Stmt
	instr = func(list []ir.Stmt) []ir.Stmt {
		out := make([]ir.Stmt, 0, len(list))
		for _, s := range list {
			switch st := s.(type) {
			case *ir.If:
				st.Then = append([]ir.Stmt{alloc()}, instr(st.Then)...)
				if len(st.Else) > 0 {
					st.Else = append([]ir.Stmt{alloc()}, instr(st.Else)...)
				}
			case *ir.For:
				st.Body = append([]ir.Stmt{alloc()}, instr(st.Body)...)
			case *ir.While:
				st.Body = append([]ir.Stmt{alloc()}, instr(st.Body)...)
			}
			out = append(out, s)
		}
		return out
	}
	entry := alloc() // ID 0
	nf.Body = append([]ir.Stmt{entry}, instr(nf.Body)...)
	nf.NumCounters = next
	return nf
}

// StripCounters returns a copy of fn with counters removed, except those
// whose IDs appear in keep (nil keeps none). Counter IDs are preserved, so
// execution still reports kept counters under their original IDs. The final
// tuned code uses StripCounters(fn, nil) — "absent of any instrumentation
// code" (paper §4.2).
func StripCounters(fn *ir.Func, keep map[int]bool) *ir.Func {
	nf := fn.Clone()
	var strip func(list []ir.Stmt) []ir.Stmt
	strip = func(list []ir.Stmt) []ir.Stmt {
		out := make([]ir.Stmt, 0, len(list))
		for _, s := range list {
			switch st := s.(type) {
			case *ir.Counter:
				if keep[st.ID] {
					out = append(out, st)
				}
				continue
			case *ir.If:
				st.Then = strip(st.Then)
				st.Else = strip(st.Else)
			case *ir.For:
				st.Body = strip(st.Body)
			case *ir.While:
				st.Body = strip(st.Body)
			}
			out = append(out, s)
		}
		return out
	}
	nf.Body = strip(nf.Body)
	if len(keep) == 0 {
		nf.NumCounters = 0
	}
	return nf
}
