package analysis

import (
	"math/rand"
	"testing"
	"testing/quick"

	"peak/internal/ir"
	"peak/internal/irbuild"
)

// --- context-variable analysis (paper Figure 1) ------------------------------

func TestContextScalarParams(t *testing.T) {
	prog := ir.NewProgram()
	prog.AddArray("a", ir.F64, 64)
	b := irbuild.NewFunc("f")
	b.ScalarParam("n", ir.I64).ScalarParam("m", ir.I64).ScalarParam("w", ir.F64)
	fn := b.Body(
		b.For("i", b.I(0), b.V("n"), 1,
			b.If(b.Lt(b.V("i"), b.V("m")),
				b.Set(b.At("a", b.V("i")), b.V("w")),
			),
		),
	)
	prog.AddFunc(fn)
	cs, err := GetContextSet(fn, prog)
	if err != nil {
		t.Fatal(err)
	}
	if !cs.Applicable {
		t.Fatalf("CBR inapplicable: %s", cs.Reason)
	}
	got := map[string]bool{}
	for _, v := range cs.Vars {
		got[v.String()] = true
	}
	// w influences only data, not control: it must NOT be a context var.
	if !got["n"] || !got["m"] || got["w"] {
		t.Errorf("context vars = %v, want {n, m}", cs.Vars)
	}
	if len(cs.NeedConstArrays) != 0 {
		t.Errorf("NeedConstArrays = %v, want none", cs.NeedConstArrays)
	}
}

func TestContextConstantSubscriptIsScalar(t *testing.T) {
	// Paper §2.2: "array references with constant subscripts" are scalars.
	prog := ir.NewProgram()
	prog.AddArray("cfg", ir.I64, 8)
	prog.AddArray("data", ir.F64, 64)
	b := irbuild.NewFunc("f")
	b.ScalarParam("x", ir.F64)
	fn := b.Body(
		b.For("i", b.I(0), b.At("cfg", b.I(2)), 1,
			b.Set(b.At("data", b.V("i")), b.V("x")),
		),
	)
	prog.AddFunc(fn)
	cs, err := GetContextSet(fn, prog)
	if err != nil {
		t.Fatal(err)
	}
	if !cs.Applicable {
		t.Fatalf("CBR inapplicable: %s", cs.Reason)
	}
	found := false
	for _, v := range cs.Vars {
		if v.Kind == CtxArrayElem && v.Name == "cfg" && v.Index == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("cfg[2] missing from context vars %v", cs.Vars)
	}
}

func TestContextNonConstSubscriptNeedsConstArray(t *testing.T) {
	// Control flow through a[i] with varying i: CBR applicability hinges
	// on the array being a run-time constant (the EQUAKE/smvp case).
	prog := ir.NewProgram()
	prog.AddArray("bound", ir.I64, 16)
	prog.AddArray("out", ir.F64, 64)
	b := irbuild.NewFunc("f")
	b.ScalarParam("n", ir.I64)
	fn := b.Body(
		b.For("i", b.I(0), b.V("n"), 1,
			b.For("j", b.I(0), b.At("bound", b.V("i")), 1,
				b.Set(b.At("out", b.V("j")), b.F(1)),
			),
		),
	)
	prog.AddFunc(fn)
	cs, err := GetContextSet(fn, prog)
	if err != nil {
		t.Fatal(err)
	}
	if !cs.Applicable {
		t.Fatalf("expected conditionally applicable, got: %s", cs.Reason)
	}
	if len(cs.NeedConstArrays) != 1 || cs.NeedConstArrays[0] != "bound" {
		t.Errorf("NeedConstArrays = %v, want [bound]", cs.NeedConstArrays)
	}
}

func TestContextUserCallFails(t *testing.T) {
	prog := ir.NewProgram()
	cb := irbuild.NewFunc("helper")
	cb.ScalarParam("x", ir.I64)
	prog.AddFunc(cb.Body(cb.Ret(cb.Add(cb.V("x"), cb.I(1)))))
	b := irbuild.NewFunc("f")
	b.ScalarParam("n", ir.I64).Local("lim", ir.I64)
	fn := b.Body(
		b.Set(b.V("lim"), b.Call("helper", b.V("n"))),
		b.For("i", b.I(0), b.V("lim"), 1,
			b.Set(b.V("lim"), b.V("lim")),
		),
	)
	prog.AddFunc(fn)
	cs, err := GetContextSet(fn, prog)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Applicable {
		t.Error("control flow through a user call must defeat CBR")
	}
}

func TestContextIntrinsicTracesThrough(t *testing.T) {
	prog := ir.NewProgram()
	b := irbuild.NewFunc("f")
	b.ScalarParam("n", ir.I64).Local("s", ir.I64)
	fn := b.Body(
		b.For("i", b.I(0), b.Call("imin", b.V("n"), b.I(64)), 1,
			b.Set(b.V("s"), b.Add(b.V("s"), b.V("i"))),
		),
		b.Ret(b.V("s")),
	)
	prog.AddFunc(fn)
	cs, err := GetContextSet(fn, prog)
	if err != nil {
		t.Fatal(err)
	}
	if !cs.Applicable {
		t.Fatalf("intrinsics must trace through: %s", cs.Reason)
	}
	if len(cs.Vars) != 1 || cs.Vars[0].Name != "n" {
		t.Errorf("context vars = %v, want [n]", cs.Vars)
	}
}

// --- memory effects -----------------------------------------------------------

func TestEffectsAndModifiedInput(t *testing.T) {
	prog := ir.NewProgram()
	prog.AddArray("in", ir.F64, 8)
	prog.AddArray("out", ir.F64, 8)
	prog.AddArray("acc", ir.F64, 8)
	b := irbuild.NewFunc("f")
	b.ScalarParam("n", ir.I64)
	fn := b.Body(
		b.For("i", b.I(0), b.V("n"), 1,
			b.Set(b.At("out", b.V("i")), b.At("in", b.V("i"))),
			b.Set(b.At("acc", b.V("i")), b.FAdd(b.At("acc", b.V("i")), b.F(1))),
		),
	)
	prog.AddFunc(fn)
	e := Effects(fn, prog)
	if !e.Reads["in"] || !e.Reads["acc"] || e.Reads["out"] {
		t.Errorf("reads = %v", e.Reads)
	}
	if !e.Writes["out"] || !e.Writes["acc"] || e.Writes["in"] {
		t.Errorf("writes = %v", e.Writes)
	}
	// Modified_Input = Input ∩ Def (paper Eq. 6): only acc is read AND
	// written, so RBR needs to save/restore just acc, not out.
	mi := e.ModifiedInput()
	if len(mi) != 1 || mi[0] != "acc" {
		t.Errorf("ModifiedInput = %v, want [acc]", mi)
	}
}

func TestEffectsThroughCalls(t *testing.T) {
	prog := ir.NewProgram()
	prog.AddArray("buf", ir.F64, 8)
	cb := irbuild.NewFunc("writer")
	cb.ScalarParam("i", ir.I64)
	prog.AddFunc(cb.Body(cb.Set(cb.At("buf", cb.V("i")), cb.F(1))))
	b := irbuild.NewFunc("f")
	b.ScalarParam("n", ir.I64)
	fn := b.Body(
		b.For("i", b.I(0), b.V("n"), 1, &ir.CallStmt{Fn: "writer", Args: []ir.Expr{b.V("i")}}),
	)
	prog.AddFunc(fn)
	e := Effects(fn, prog)
	if !e.Writes["buf"] {
		t.Error("writes through calls not tracked")
	}
}

// --- instrumentation -----------------------------------------------------------

func TestInstrumentPlacesCounters(t *testing.T) {
	b := irbuild.NewFunc("f")
	b.ScalarParam("n", ir.I64).Local("s", ir.I64)
	fn := b.Body(
		b.For("i", b.I(0), b.V("n"), 1,
			b.IfElse(b.Lt(b.V("i"), b.I(5)),
				b.Stmts(b.Set(b.V("s"), b.Add(b.V("s"), b.I(1)))),
				b.Stmts(b.Set(b.V("s"), b.Add(b.V("s"), b.I(2)))),
			),
		),
	)
	instr := Instrument(fn)
	// Counters: entry + loop body + then-arm + else-arm = 4.
	if instr.NumCounters != 4 {
		t.Errorf("NumCounters = %d, want 4", instr.NumCounters)
	}
	if _, ok := instr.Body[0].(*ir.Counter); !ok {
		t.Error("entry counter missing")
	}
	if fn.NumCounters != 0 {
		t.Error("Instrument mutated its input")
	}

	stripped := StripCounters(instr, map[int]bool{0: true})
	n := countCounters(stripped.Body)
	if n != 1 {
		t.Errorf("StripCounters kept %d counters, want 1", n)
	}
	bare := StripCounters(instr, nil)
	if countCounters(bare.Body) != 0 || bare.NumCounters != 0 {
		t.Error("StripCounters(nil) must remove all instrumentation")
	}
}

func countCounters(list []ir.Stmt) int {
	n := 0
	var walk func([]ir.Stmt)
	walk = func(list []ir.Stmt) {
		for _, s := range list {
			switch st := s.(type) {
			case *ir.Counter:
				n++
			case *ir.If:
				walk(st.Then)
				walk(st.Else)
			case *ir.For:
				walk(st.Body)
			case *ir.While:
				walk(st.Body)
			}
		}
	}
	walk(list)
	return n
}

// --- component merging -----------------------------------------------------------

func TestMergeComponentsAffine(t *testing.T) {
	// counter1 = trip, counter2 = 2*trip + 1 (affine), counter0 = 1
	// (entry, constant): two components — one varying, one constant.
	var counts [][]float64
	for _, trip := range []float64{10, 20, 15, 40, 25} {
		counts = append(counts, []float64{1, trip, 2*trip + 1})
	}
	model, err := MergeComponents(counts)
	if err != nil {
		t.Fatal(err)
	}
	if len(model.Components) != 2 {
		t.Fatalf("components = %d, want 2", len(model.Components))
	}
	if model.Components[len(model.Components)-1].Constant != true {
		t.Error("constant component must come last")
	}
	varying := model.Components[0]
	if len(varying.Members) != 2 {
		t.Errorf("affine counters not merged: %+v", varying.Members)
	}
	for _, m := range varying.Members {
		if m.Counter == 2 && (m.Alpha != 2 || m.Beta != 1) {
			t.Errorf("affine coefficients = %+v, want 2x+1", m)
		}
	}
	// CountsFor uses the representative and the constant 1.
	row := model.CountsFor([]int64{1, 7, 15})
	if row[0] != 7 || row[1] != 1 {
		t.Errorf("CountsFor = %v, want [7 1]", row)
	}
}

func TestMergeComponentsIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var counts [][]float64
	for i := 0; i < 40; i++ {
		counts = append(counts, []float64{1, float64(rng.Intn(100)), float64(rng.Intn(100))})
	}
	model, err := MergeComponents(counts)
	if err != nil {
		t.Fatal(err)
	}
	if len(model.Components) != 3 {
		t.Errorf("components = %d, want 3 (two independent + constant)", len(model.Components))
	}
}

func TestMergeComponentsErrors(t *testing.T) {
	if _, err := MergeComponents(nil); err == nil {
		t.Error("empty profile must fail")
	}
	if _, err := MergeComponents([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("ragged matrix must fail")
	}
}

// Property: affine merging is sound — every member's counts are exactly
// Alpha*rep + Beta across the whole profile.
func TestQuickMergeSoundness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nInv := 8 + rng.Intn(40)
		nCtr := 2 + rng.Intn(6)
		counts := make([][]float64, nInv)
		for i := range counts {
			row := make([]float64, nCtr)
			row[0] = 1
			for j := 1; j < nCtr; j++ {
				switch j % 3 {
				case 0:
					row[j] = 3*row[j-1] + 2 // affine on previous
				case 1:
					row[j] = float64(rng.Intn(50))
				case 2:
					row[j] = 5 // constant
				}
			}
			counts[i] = row
		}
		model, err := MergeComponents(counts)
		if err != nil {
			return false
		}
		for _, comp := range model.Components {
			if comp.Constant {
				continue
			}
			for _, m := range comp.Members {
				for _, row := range counts {
					want := m.Alpha*row[comp.Rep] + m.Beta
					if diff := row[m.Counter] - want; diff > 1e-6 || diff < -1e-6 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
