// Package analysis implements the compile-time program analyses the paper's
// rating methods depend on:
//
//   - context-variable analysis (paper Figure 1) deciding CBR applicability
//     and producing the context-variable set;
//   - memory effect sets (Input/Def at array granularity) for RBR's
//     save/restore of Modified_Input(TS) (paper §2.4);
//   - MBR counter instrumentation and affine component merging
//     (paper §2.3).
package analysis

import (
	"fmt"
	"sort"

	"peak/internal/ir"
	"peak/internal/lower"
)

// ContextVarKind classifies a context variable.
type ContextVarKind int

// Context variable kinds. All are "scalars" in the paper's sense: plain
// scalar parameters, array references with constant subscripts, and global
// scalars (which lower to constant-subscript references into the reserved
// globals array).
const (
	CtxParam ContextVarKind = iota
	CtxArrayElem
)

// ContextVar identifies one context variable of a tuning section.
type ContextVar struct {
	Kind ContextVarKind
	// Name is the parameter name (CtxParam) or array name (CtxArrayElem).
	Name string
	// Index is the constant element index for CtxArrayElem.
	Index int64
}

func (v ContextVar) String() string {
	if v.Kind == CtxParam {
		return v.Name
	}
	return fmt.Sprintf("%s[%d]", v.Name, v.Index)
}

// ContextSet is the result of context-variable analysis.
type ContextSet struct {
	// Applicable reports whether CBR may be applied: every variable that
	// influences control flow traces back to scalar inputs only —
	// possibly conditional on the NeedConstArrays being run-time constant.
	Applicable bool
	// Vars is the deduplicated, deterministic-ordered context variable set.
	Vars []ContextVar
	// NeedConstArrays lists arrays whose elements feed control flow
	// through non-constant subscripts. Such references are non-scalar
	// under the paper's Figure-1 rules, but if profiling shows the array
	// is a run-time constant (never modified between TS invocations, like
	// EQUAKE's sparse-matrix index structure), the dependence is
	// eliminated the same way constant context variables are (§2.2).
	// CBR's final applicability requires every listed array to be
	// run-time constant.
	NeedConstArrays []string
	// Reason explains inapplicability (diagnostics).
	Reason string
}

// instrRef locates an instruction within an LFunc.
type instrRef struct {
	block int // slice index
	idx   int
}

// GetContextSet runs the paper's Figure-1 analysis on the lowered tuning
// section: for every control statement (conditional branch), it follows
// UD-chains from the variables used in the condition back to the section's
// inputs. If every chain ends in scalar inputs (parameters or
// constant-subscript memory references), CBR is applicable and the set of
// those inputs is the context-variable set.
//
// The UD-chains are over-approximated by "all definitions of the register
// anywhere in the section", which is sound here: it can only add context
// variables or declare CBR inapplicable more often, never miss a context
// variable.
func GetContextSet(fn *ir.Func, prog *ir.Program) (*ContextSet, error) {
	lf, err := lower.Lower(prog, fn)
	if err != nil {
		return nil, err
	}
	return getContextSetLIR(lf, fn), nil
}

func getContextSetLIR(lf *ir.LFunc, fn *ir.Func) *ContextSet {
	// defs[r] lists all instructions defining register r.
	defs := make([][]instrRef, lf.NumRegs)
	for bi, b := range lf.Blocks {
		for ii := range b.Instrs {
			if d := b.Instrs[ii].Def(); d != ir.NoReg {
				defs[d] = append(defs[d], instrRef{bi, ii})
			}
		}
	}
	paramOf := make(map[ir.Reg]string)
	for i, p := range lf.Params {
		if !p.IsArray && lf.ParamRegs[i] != ir.NoReg {
			paramOf[lf.ParamRegs[i]] = p.Name
		}
	}

	cs := &ContextSet{Applicable: true}
	seen := make(map[string]bool)
	addVar := func(v ContextVar) {
		k := v.String()
		if !seen[k] {
			seen[k] = true
			cs.Vars = append(cs.Vars, v)
		}
	}

	visited := make(map[ir.Reg]bool)
	var trace func(r ir.Reg) bool
	constOf := func(r ir.Reg) (int64, bool) {
		// A register is a known constant if it has exactly one def and
		// that def is LMovI.
		if len(defs[r]) == 1 {
			in := &lf.Blocks[defs[r][0].block].Instrs[defs[r][0].idx]
			if in.Op == ir.LMovI {
				return in.Imm, true
			}
		}
		return 0, false
	}
	trace = func(r ir.Reg) bool {
		if r == ir.NoReg || visited[r] {
			return true
		}
		visited[r] = true
		if name, ok := paramOf[r]; ok && len(defs[r]) == 0 {
			addVar(ContextVar{Kind: CtxParam, Name: name})
			return true
		}
		if len(defs[r]) == 0 {
			// Parameter register that is also redefined is handled below;
			// a def-less non-param register is an uninitialized local
			// (value is the constant zero).
			if name, ok := paramOf[r]; ok {
				addVar(ContextVar{Kind: CtxParam, Name: name})
			}
			return true
		}
		if name, ok := paramOf[r]; ok {
			// The parameter's incoming value may flow into any use.
			addVar(ContextVar{Kind: CtxParam, Name: name})
		}
		for _, ref := range defs[r] {
			in := &lf.Blocks[ref.block].Instrs[ref.idx]
			switch in.Op {
			case ir.LMovI, ir.LMovF:
				// constants contribute nothing
			case ir.LLoad:
				if idx, ok := constOf(in.A); ok {
					// Array reference with constant subscript: scalar
					// (paper §2.2 case 2/3).
					addVar(ContextVar{Kind: CtxArrayElem, Name: in.Arr, Index: idx})
				} else {
					// Non-scalar: acceptable only if the whole array turns
					// out to be a run-time constant (decided by the
					// profiler); the subscript chain must still be traced.
					cs.NeedConstArrays = appendUnique(cs.NeedConstArrays, in.Arr)
					if !trace(in.A) {
						return false
					}
				}
			case ir.LCall:
				if _, ok := ir.IsIntrinsic(in.Fn); !ok {
					cs.Applicable = false
					cs.Reason = fmt.Sprintf("control flow depends on call to %s", in.Fn)
					return false
				}
				for _, a := range in.CallArgs {
					if !trace(a) {
						return false
					}
				}
			default:
				if !trace(in.A) || !trace(in.B) || !trace(in.Src) {
					return false
				}
			}
		}
		return true
	}

	for _, b := range lf.Blocks {
		if b.Term.Kind == ir.TermBranch {
			if !trace(b.Term.Cond) {
				break
			}
		}
	}
	if !cs.Applicable {
		cs.Vars = nil
		cs.NeedConstArrays = nil
		return cs
	}
	sort.Slice(cs.Vars, func(i, j int) bool { return cs.Vars[i].String() < cs.Vars[j].String() })
	sort.Strings(cs.NeedConstArrays)
	return cs
}

func appendUnique(list []string, s string) []string {
	for _, x := range list {
		if x == s {
			return list
		}
	}
	return append(list, s)
}

// ContextKey computes the context of one invocation: the values of the
// context variables, given the invocation's scalar arguments and the
// pre-invocation memory state. Contexts compare equal iff their keys do
// (paper §2.2: "the context of one TS invocation is the set of values of
// all context variables").
func ContextKey(vars []ContextVar, fn *ir.Func, args []float64, mem MemoryReader) string {
	key := make([]byte, 0, 16*len(vars))
	for _, v := range vars {
		var val float64
		switch v.Kind {
		case CtxParam:
			ai := scalarArgIndex(fn, v.Name)
			if ai >= 0 && ai < len(args) {
				val = args[ai]
			}
		case CtxArrayElem:
			val = mem.ReadElem(v.Name, v.Index)
		}
		key = appendKey(key, val)
	}
	return string(key)
}

func scalarArgIndex(fn *ir.Func, name string) int {
	ai := 0
	for _, p := range fn.Params {
		if p.IsArray {
			continue
		}
		if p.Name == name {
			return ai
		}
		ai++
	}
	return -1
}

func appendKey(b []byte, v float64) []byte {
	return append(b, fmt.Sprintf("%x|", v)...)
}

// MemoryReader exposes memory element reads for context keying.
type MemoryReader interface {
	ReadElem(arr string, idx int64) float64
}
