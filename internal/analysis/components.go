package analysis

import (
	"fmt"
	"math"
	"sort"
)

// Component is one term of the MBR execution-time model
// T_TS = Σ T_i · C_i (paper Eq. 2): a set of counters whose per-invocation
// values are affinely related, represented by one of them.
type Component struct {
	// Rep is the representative counter ID whose per-invocation value is
	// used as C_i during tuning.
	Rep int
	// Members are all counter IDs merged into this component, with the
	// affine coefficients relating them to the representative:
	// member = Alpha·rep + Beta.
	Members []AffineMember
	// Constant marks the constant component (C_i identical in every
	// invocation; paper assumes one such component with C_n = 1).
	Constant bool
	// AvgCount is the average per-invocation count over the profile run
	// (C_avg in paper Eq. 4).
	AvgCount float64
}

// AffineMember records counter = Alpha·rep + Beta.
type AffineMember struct {
	Counter     int
	Alpha, Beta float64
}

// ComponentModel is the outcome of component merging for one tuning section.
type ComponentModel struct {
	Components []Component
	// KeepCounters is the set of representative counter IDs whose
	// instrumentation must remain in the code during tuning; all other
	// counters can be stripped (paper §2.3: "the unnecessary
	// instrumentation code for the merged blocks is removed").
	KeepCounters map[int]bool
}

// NumComponents returns the number of model components, counting all
// constant counters as the single constant component.
func (m *ComponentModel) NumComponents() int { return len(m.Components) }

// ConstantOnly reports whether the model consists solely of the constant
// component — every counter fired the same number of times in every
// invocation. The MBR estimate then degenerates to the invocation-time
// mean (the paper's "MBR is equivalent to CBR" single-context case, §5.2).
func (m *ComponentModel) ConstantOnly() bool {
	return len(m.Components) == 1 && m.Components[0].Constant
}

const affineTol = 1e-9

// MergeComponents analyzes a profile matrix counts[invocation][counterID]
// and merges counters into components: counters constant across all
// invocations form the constant component; counters affinely dependent on
// each other (C_a = α·C_b + β for every invocation) merge into one
// component (paper §2.3).
func MergeComponents(counts [][]float64) (*ComponentModel, error) {
	if len(counts) == 0 {
		return nil, fmt.Errorf("components: empty profile")
	}
	nc := len(counts[0])
	for _, row := range counts {
		if len(row) != nc {
			return nil, fmt.Errorf("components: ragged profile matrix")
		}
	}
	ninv := len(counts)

	col := func(j int) []float64 {
		v := make([]float64, ninv)
		for i := range counts {
			v[i] = counts[i][j]
		}
		return v
	}

	model := &ComponentModel{KeepCounters: map[int]bool{}}
	assigned := make([]bool, nc)

	// Constant component: every counter with identical value across
	// invocations. Counter 0 (entry) is constant by construction.
	constComp := Component{Rep: -1, Constant: true, AvgCount: 1}
	for j := 0; j < nc; j++ {
		v := col(j)
		if isConstant(v) {
			assigned[j] = true
			if constComp.Rep < 0 {
				constComp.Rep = j
			}
			constComp.Members = append(constComp.Members, AffineMember{Counter: j, Alpha: 0, Beta: v[0]})
		}
	}

	// Affine grouping of the rest.
	for j := 0; j < nc; j++ {
		if assigned[j] {
			continue
		}
		assigned[j] = true
		rep := col(j)
		comp := Component{
			Rep:      j,
			Members:  []AffineMember{{Counter: j, Alpha: 1, Beta: 0}},
			AvgCount: mean(rep),
		}
		for k := j + 1; k < nc; k++ {
			if assigned[k] {
				continue
			}
			if alpha, beta, ok := affineFit(rep, col(k)); ok {
				assigned[k] = true
				comp.Members = append(comp.Members, AffineMember{Counter: k, Alpha: alpha, Beta: beta})
			}
		}
		model.Components = append(model.Components, comp)
		model.KeepCounters[j] = true
	}

	// The constant component goes last (paper: "there is always a constant
	// component T_n with C_n = 1").
	if constComp.Rep >= 0 {
		model.Components = append(model.Components, constComp)
		model.KeepCounters[constComp.Rep] = true
	}

	sort.Slice(model.Components, func(a, b int) bool {
		ca, cb := model.Components[a], model.Components[b]
		if ca.Constant != cb.Constant {
			return !ca.Constant // constant last
		}
		return ca.Rep < cb.Rep
	})
	return model, nil
}

// CountsFor converts one invocation's raw counter vector into the model's
// component-count vector (C column of paper Eq. 3). The constant component
// contributes 1.
func (m *ComponentModel) CountsFor(counters []int64) []float64 {
	out := make([]float64, len(m.Components))
	for i, c := range m.Components {
		if c.Constant {
			out[i] = 1
			continue
		}
		if c.Rep >= 0 && c.Rep < len(counters) {
			out[i] = float64(counters[c.Rep])
		}
	}
	return out
}

func isConstant(v []float64) bool {
	for _, x := range v[1:] {
		if math.Abs(x-v[0]) > affineTol {
			return false
		}
	}
	return true
}

func mean(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// affineFit checks whether y = α·x + β exactly (within tolerance) for all
// samples, with x non-constant. It derives α, β from two samples with
// distinct x and verifies the rest (paper §2.3's linear dependence test).
func affineFit(x, y []float64) (alpha, beta float64, ok bool) {
	i0 := 0
	i1 := -1
	for i := 1; i < len(x); i++ {
		if math.Abs(x[i]-x[i0]) > affineTol {
			i1 = i
			break
		}
	}
	if i1 < 0 {
		return 0, 0, false // x constant; handled by constant component
	}
	alpha = (y[i1] - y[i0]) / (x[i1] - x[i0])
	beta = y[i0] - alpha*x[i0]
	for i := range x {
		want := alpha*x[i] + beta
		tol := affineTol * math.Max(1, math.Abs(want))
		if math.Abs(y[i]-want) > tol {
			return 0, 0, false
		}
	}
	return alpha, beta, true
}
