package analysis

import (
	"sort"

	"peak/internal/ir"
	"peak/internal/lower"
)

// MemEffects summarizes the memory behaviour of a tuning section at array
// granularity (including the reserved globals array).
type MemEffects struct {
	// Reads are arrays with at least one load.
	Reads map[string]bool
	// Writes are arrays with at least one store (the Def set of the TS).
	Writes map[string]bool
	// CallsUnknown reports calls to functions outside the program
	// (impossible by construction) — retained for interface completeness.
	CallsUnknown bool
}

// ModifiedInput returns Input(TS) ∩ Def(TS): the arrays that must be saved
// and restored by RBR (paper Eq. 6). At array granularity the input set of
// memory is the read set, so this is Reads ∩ Writes, sorted for determinism.
func (e *MemEffects) ModifiedInput() []string {
	var out []string
	for a := range e.Writes {
		if e.Reads[a] {
			out = append(out, a)
		}
	}
	sort.Strings(out)
	return out
}

// WrittenArrays returns the Def set sorted.
func (e *MemEffects) WrittenArrays() []string {
	out := make([]string, 0, len(e.Writes))
	for a := range e.Writes {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Effects computes MemEffects for fn, following user-function calls
// transitively through prog.
func Effects(fn *ir.Func, prog *ir.Program) *MemEffects {
	e := &MemEffects{Reads: map[string]bool{}, Writes: map[string]bool{}}
	visited := map[string]bool{}
	var walkFn func(f *ir.Func)
	var walkStmts func(list []ir.Stmt)
	var walkExpr func(x ir.Expr)

	walkExpr = func(x ir.Expr) {
		switch ex := x.(type) {
		case *ir.ArrayRef:
			e.Reads[ex.Name] = true
			walkExpr(ex.Index)
		case *ir.VarRef:
			// Global scalars lower to reads of the globals array.
			if isGlobal(prog, ex.Name) {
				e.Reads[lower.GlobalsArray] = true
			}
		case *ir.Unary:
			walkExpr(ex.X)
		case *ir.Binary:
			walkExpr(ex.X)
			walkExpr(ex.Y)
		case *ir.CallExpr:
			for _, a := range ex.Args {
				walkExpr(a)
			}
			if _, ok := ir.IsIntrinsic(ex.Fn); !ok {
				if callee, ok := prog.Funcs[ex.Fn]; ok && !visited[ex.Fn] {
					visited[ex.Fn] = true
					walkFn(callee)
				}
			}
		}
	}
	walkStmts = func(list []ir.Stmt) {
		for _, s := range list {
			switch st := s.(type) {
			case *ir.Assign:
				walkExpr(st.Rhs)
				switch lhs := st.Lhs.(type) {
				case *ir.ArrayRef:
					e.Writes[lhs.Name] = true
					walkExpr(lhs.Index)
				case *ir.VarRef:
					if isGlobal(prog, lhs.Name) {
						e.Writes[lower.GlobalsArray] = true
					}
				}
			case *ir.If:
				walkExpr(st.Cond)
				walkStmts(st.Then)
				walkStmts(st.Else)
			case *ir.For:
				walkExpr(st.From)
				walkExpr(st.To)
				walkStmts(st.Body)
			case *ir.While:
				walkExpr(st.Cond)
				walkStmts(st.Body)
			case *ir.Return:
				if st.Value != nil {
					walkExpr(st.Value)
				}
			case *ir.CallStmt:
				walkExpr(&ir.CallExpr{Fn: st.Fn, Args: st.Args})
			}
		}
	}
	walkFn = func(f *ir.Func) { walkStmts(f.Body) }
	walkFn(fn)
	return e
}

// isGlobal reports whether name is a global scalar of prog and not shadowed
// by a local or parameter (callers pass the function being walked; shadowing
// by locals of *other* functions is irrelevant because the walk follows
// names per function — conservatively we only check the program here, which
// can only enlarge the effect sets).
func isGlobal(prog *ir.Program, name string) bool {
	return lower.GlobalIndex(prog, name) >= 0
}
