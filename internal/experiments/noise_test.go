package experiments

import (
	"fmt"
	"strings"
	"testing"

	"peak/internal/bench"
	"peak/internal/core"
	"peak/internal/machine"
	"peak/internal/sched"
	"peak/internal/store"
	"peak/internal/trace"
)

func TestNoiseRegimes(t *testing.T) {
	m := machine.SPARCII()
	regimes := RegimesFor(m)
	want := []string{"baseline", "gauss4x", "spikes", "drift", "bursts"}
	if len(regimes) != len(want) {
		t.Fatalf("regimes = %d, want %d", len(regimes), len(want))
	}
	for i, name := range want {
		if regimes[i].Name != name {
			t.Errorf("regime %d = %s, want %s", i, regimes[i].Name, name)
		}
	}
	if regimes[0].Model != (RegimesFor(m)[0].Model) {
		t.Error("RegimesFor is not stable")
	}
	// The baseline regime must be exactly the machine default: tuning
	// with -noise baseline must reproduce tuning without the flag.
	if d := regimes[0].Model; d.Jitter != m.NoiseStdDev || d.SpikeProb != m.OutlierProb {
		t.Errorf("baseline regime %+v does not match machine noise", d)
	}

	if _, ok := RegimeByName(m, "spikes"); !ok {
		t.Error("RegimeByName missed spikes")
	}
	if _, ok := RegimeByName(m, "hurricane"); ok {
		t.Error("RegimeByName accepted junk")
	}
	if names := RegimeNames(m); len(names) != len(want) || names[2] != "spikes" {
		t.Errorf("RegimeNames = %v", names)
	}
}

// TestNoiseReportDeterministic: the report is byte-identical at any worker
// count (the full-workload equivalent is checked by the tier-1 recipe via
// cmd/peak-experiments -noise).
func TestNoiseReportDeterministic(t *testing.T) {
	benches := []*bench.Benchmark{quickBenchmark()}
	m := machine.SPARCII()
	cfg := core.DefaultConfig()
	serial, err := noiseReportFor(benches, m, &cfg, nil, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := noiseReportFor(benches, m, &cfg, sched.New(8), nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if serial != parallel {
		t.Error("noise report differs between 1 and 8 workers")
	}

	for _, want := range []string{"QUICK", "baseline", "bursts", "wrong adopts", "Welch-gated"} {
		if !strings.Contains(serial, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

// TestNoiseReportWarmStartByteIdentical pins the experiments half of the
// warm-start contract: the noise report (text and trace) is byte-identical
// with the cell memo off, cold (empty store) and warm (reopened after a
// flush), at 1 and 8 workers — and the warm runs answer every grid cell
// from the memo table (zero misses, no live profiling). Runs under -race
// in the tier-1 recipe.
func TestNoiseReportWarmStartByteIdentical(t *testing.T) {
	benches := []*bench.Benchmark{quickBenchmark()}
	m := machine.SPARCII()
	cfg := core.DefaultConfig()
	dir := t.TempDir()

	run := func(ps *store.Store, workers int) (string, string) {
		tb := trace.NewBuffer()
		report, err := noiseReportFor(benches, m, &cfg, sched.New(workers), tb, nil, ps)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, ev := range tb.Events() {
			fmt.Fprintf(&sb, "%+v\n", ev)
		}
		return report, sb.String()
	}

	wantReport, wantTrace := run(nil, 4)

	cold, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	coldReport, coldTrace := run(cold, 4)
	if coldReport != wantReport || coldTrace != wantTrace {
		t.Fatal("attaching an empty store changed the noise report or trace")
	}
	if st := cold.Stats(); st.Pending == 0 {
		t.Fatalf("cold run recorded no cell memos: %+v", st)
	}
	if err := cold.Flush(); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 8} {
		warm, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		report, traceStr := run(warm, workers)
		if report != wantReport {
			t.Errorf("warm report (%d workers) differs from cold", workers)
		}
		if traceStr != wantTrace {
			t.Errorf("warm trace (%d workers) differs from cold", workers)
		}
		st := warm.Stats()
		if st.MemoHits == 0 || st.MemoMisses != 0 {
			t.Errorf("warm run (%d workers) stats = %+v, want all-hit cell lookups", workers, st)
		}
	}
}
