package experiments

import (
	"strings"
	"testing"

	"peak/internal/bench"
	"peak/internal/core"
	"peak/internal/machine"
	"peak/internal/sched"
)

func TestNoiseRegimes(t *testing.T) {
	m := machine.SPARCII()
	regimes := RegimesFor(m)
	want := []string{"baseline", "gauss4x", "spikes", "drift", "bursts"}
	if len(regimes) != len(want) {
		t.Fatalf("regimes = %d, want %d", len(regimes), len(want))
	}
	for i, name := range want {
		if regimes[i].Name != name {
			t.Errorf("regime %d = %s, want %s", i, regimes[i].Name, name)
		}
	}
	if regimes[0].Model != (RegimesFor(m)[0].Model) {
		t.Error("RegimesFor is not stable")
	}
	// The baseline regime must be exactly the machine default: tuning
	// with -noise baseline must reproduce tuning without the flag.
	if d := regimes[0].Model; d.Jitter != m.NoiseStdDev || d.SpikeProb != m.OutlierProb {
		t.Errorf("baseline regime %+v does not match machine noise", d)
	}

	if _, ok := RegimeByName(m, "spikes"); !ok {
		t.Error("RegimeByName missed spikes")
	}
	if _, ok := RegimeByName(m, "hurricane"); ok {
		t.Error("RegimeByName accepted junk")
	}
	if names := RegimeNames(m); len(names) != len(want) || names[2] != "spikes" {
		t.Errorf("RegimeNames = %v", names)
	}
}

// TestNoiseReportDeterministic: the report is byte-identical at any worker
// count (the full-workload equivalent is checked by the tier-1 recipe via
// cmd/peak-experiments -noise).
func TestNoiseReportDeterministic(t *testing.T) {
	benches := []*bench.Benchmark{quickBenchmark()}
	m := machine.SPARCII()
	cfg := core.DefaultConfig()
	serial, err := noiseReportFor(benches, m, &cfg, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := noiseReportFor(benches, m, &cfg, sched.New(8), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if serial != parallel {
		t.Error("noise report differs between 1 and 8 workers")
	}

	for _, want := range []string{"QUICK", "baseline", "bursts", "wrong adopts", "Welch-gated"} {
		if !strings.Contains(serial, want) {
			t.Errorf("report missing %q", want)
		}
	}
}
