package experiments

import (
	"bytes"
	"testing"

	"peak/internal/bench"
	"peak/internal/core"
	"peak/internal/machine"
	"peak/internal/sched"
	"peak/internal/trace"
	"peak/internal/vcache"
)

// serializeTrace renders a buffer the way the cmds do, so byte equality
// here is byte equality of the -trace files.
func serializeTrace(t *testing.T, tb *trace.Buffer) []byte {
	t.Helper()
	var out bytes.Buffer
	tr := trace.NewTracer(&out)
	tr.Flush(tb)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

// TestFigure7TraceDeterministic: the Figure-7 driver's trace (multiple
// tunes, coarse benchmark jobs nested over the same pool) is
// byte-identical at any worker count and with the compile cache on or
// off — the acceptance contract of the trace layer.
func TestFigure7TraceDeterministic(t *testing.T) {
	m := machine.SPARCII()
	benches := []*bench.Benchmark{quickBenchmark()}
	run := func(workers int, noCache bool) ([]byte, []Fig7Entry, *trace.Metrics) {
		cfg := core.DefaultConfig()
		cfg.NoCompileCache = noCache
		var cache *vcache.Cache
		if !noCache {
			cache = vcache.New()
		}
		tb := trace.NewBuffer()
		mx := trace.NewMetrics()
		entries, err := Figure7Traced(benches, m, &cfg, sched.New(workers), cache, nil, tb, mx)
		if err != nil {
			t.Fatal(err)
		}
		return serializeTrace(t, tb), entries, mx
	}
	ref, refEntries, refMx := run(1, false)
	if len(ref) == 0 {
		t.Fatal("trace is empty")
	}
	if refMx.Get("core.tunes") != 2*int64(len(refEntries)) {
		t.Errorf("core.tunes = %d, want %d (train+ref per entry)",
			refMx.Get("core.tunes"), 2*len(refEntries))
	}
	for _, tc := range []struct {
		name    string
		workers int
		noCache bool
	}{
		{"workers=8/cache", 8, false},
		{"workers=1/nocache", 1, true},
		{"workers=8/nocache", 8, true},
	} {
		got, _, gotMx := run(tc.workers, tc.noCache)
		if !bytes.Equal(got, ref) {
			t.Errorf("%s: trace differs from workers=1/cache reference", tc.name)
		}
		if gotMx.Format() != refMx.Format() {
			t.Errorf("%s: metrics differ:\n%s\nvs\n%s", tc.name, gotMx.Format(), refMx.Format())
		}
	}
	// One tune_start per (method, dataset) tune, in input order.
	events, err := trace.ReadEvents(bytes.NewReader(ref))
	if err != nil {
		t.Fatal(err)
	}
	var starts int
	for _, ev := range events {
		if ev.Kind == trace.KindTuneStart {
			starts++
		}
	}
	if starts != 2*len(refEntries) {
		t.Errorf("%d tune_start events, want %d", starts, 2*len(refEntries))
	}
}

// TestNoiseReportTraceDeterministic: the noise grid's cell and trials
// events are byte-identical at any worker count.
func TestNoiseReportTraceDeterministic(t *testing.T) {
	m := machine.SPARCII()
	benches := []*bench.Benchmark{quickBenchmark()}
	run := func(workers int) ([]byte, string) {
		cfg := core.DefaultConfig()
		tb := trace.NewBuffer()
		mx := trace.NewMetrics()
		report, err := noiseReportFor(benches, m, &cfg, sched.New(workers), tb, mx, nil)
		if err != nil {
			t.Fatal(err)
		}
		if want := int64(len(benches) * len(RegimesFor(m))); mx.Get("experiments.noise_cells") != want {
			t.Errorf("noise_cells = %d, want %d", mx.Get("experiments.noise_cells"), want)
		}
		return serializeTrace(t, tb), report
	}
	refTrace, refReport := run(1)
	gotTrace, gotReport := run(8)
	if !bytes.Equal(gotTrace, refTrace) {
		t.Error("noise trace differs between workers=1 and workers=8")
	}
	if gotReport != refReport {
		t.Error("noise report text differs between worker counts")
	}
	events, err := trace.ReadEvents(bytes.NewReader(refTrace))
	if err != nil {
		t.Fatal(err)
	}
	cells, trials := 0, 0
	for _, ev := range events {
		switch ev.Kind {
		case trace.KindCell:
			cells++
		case trace.KindTrials:
			trials++
		}
	}
	if cells != len(benches)*len(RegimesFor(m)) {
		t.Errorf("%d cell events, want %d", cells, len(benches)*len(RegimesFor(m)))
	}
	if trials != 2*len(RegimesFor(m)) {
		t.Errorf("%d trials events, want %d", trials, 2*len(RegimesFor(m)))
	}
}
