package experiments

import "peak/internal/fault"

// This file names the fault-injection regimes a tuning request can ask for
// by label (serve Request.Faults, mirroring the noise regimes). A regime's
// plan is part of the job's identity — faults deterministically change the
// tune's result — so two requests naming different regimes are different
// jobs and never share checkpoint state or cached compilations (the engine
// salts its cache key with the plan fingerprint).

// FaultRegime pairs a stable label with a fault-injection plan.
type FaultRegime struct {
	Name string
	Plan *fault.Plan
}

// faultRegimeSeed fixes every named regime's fault streams: a regime label
// must mean the same injected faults everywhere, or the per-job
// determinism contract breaks across servers.
const faultRegimeSeed = 2023

// FaultRegimes returns the named fault regimes in report order: three
// uniform rates matching cmd/peak's -faultrate scale, plus two extreme
// regimes built for exercising the serve layer's failure handling.
// "poison" makes compile failures certain and unretried — every tune under
// it fails immediately and deterministically; the chaos harness uses
// poison jobs to trip the circuit breaker on demand. "storm" miscompiles
// half of all candidate compilations, so golden-output verification
// quarantines several flags per tune — the deterministic trigger for the
// breaker's quarantine-storm signal.
func FaultRegimes() []FaultRegime {
	return []FaultRegime{
		{Name: "f2", Plan: fault.Uniform(0.02, faultRegimeSeed)},
		{Name: "f5", Plan: fault.Uniform(0.05, faultRegimeSeed)},
		{Name: "f10", Plan: fault.Uniform(0.10, faultRegimeSeed)},
		{Name: "poison", Plan: &fault.Plan{
			Seed:              faultRegimeSeed,
			CompileFailRate:   1,
			MaxCompileRetries: -1, // no retries: the first compile is fatal
		}},
		{Name: "storm", Plan: &fault.Plan{
			Seed:           faultRegimeSeed,
			MiscompileRate: 0.5,
		}},
	}
}

// FaultRegimeByName resolves a fault-regime label.
func FaultRegimeByName(name string) (FaultRegime, bool) {
	for _, r := range FaultRegimes() {
		if r.Name == name {
			return r, true
		}
	}
	return FaultRegime{}, false
}

// FaultRegimeNames lists the regime labels in report order.
func FaultRegimeNames() []string {
	regimes := FaultRegimes()
	names := make([]string, len(regimes))
	for i, r := range regimes {
		names[i] = r.Name
	}
	return names
}
