// Package experiments regenerates the paper's evaluation artifacts:
// Table 1 (rating consistency) and Figure 7 (performance improvement and
// normalized tuning time on both machines). The cmd/peak-consistency and
// cmd/peak-experiments binaries, the repository benchmarks, and
// EXPERIMENTS.md all drive these entry points.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"peak/internal/bench"
	"peak/internal/core"
	"peak/internal/fault"
	"peak/internal/machine"
	"peak/internal/opt"
	"peak/internal/profiling"
	"peak/internal/sched"
	"peak/internal/trace"
	"peak/internal/vcache"
	"peak/internal/workloads"
)

// PaperWindows are Table 1's window sizes.
var PaperWindows = []int{10, 20, 40, 80, 160}

// Table1 reproduces the consistency experiment for every benchmark on the
// given machine: the consultant-chosen rating method's error statistics per
// window size (§5.1). It runs serially; Table1On shards it over a pool.
func Table1(m *machine.Machine, windows []int, cfg *core.Config) ([]core.ConsistencyRow, error) {
	return Table1On(m, windows, cfg, nil)
}

// Table1On runs the Table-1 regenerator with each benchmark's profiling and
// consistency measurement as one coarse job on the pool (nil means serial).
// Each job is self-contained — its random streams are seeded from the
// benchmark and the config, never shared — and the rows are reduced in
// workloads.All() order, so the output is identical at any worker count.
// On error the rows computed so far (in order, up to the first failed
// benchmark) are still returned with the first error, so callers can flush
// partial results; a panicking benchmark job is recovered into an error.
func Table1On(m *machine.Machine, windows []int, cfg *core.Config, pool sched.Pool) ([]core.ConsistencyRow, error) {
	return Table1Traced(m, windows, cfg, pool, nil, nil)
}

// Table1Traced is Table1On with observability: a non-nil trace buffer
// receives one "cell" event per (consistency row, window size), flushed
// in benchmark order after the parallel grid completes, and a non-nil
// metrics registry accumulates the grid totals. Both follow the
// determinism contract: each job emits into its own buffer and the
// reduction folds them in input order, so the trace bytes are identical
// at any worker count.
func Table1Traced(m *machine.Machine, windows []int, cfg *core.Config, pool sched.Pool, tb *trace.Buffer, mx *trace.Metrics) ([]core.ConsistencyRow, error) {
	if pool == nil {
		pool = sched.NewSerial()
	}
	benches := workloads.All()
	type result struct {
		rows []core.ConsistencyRow
		tb   *trace.Buffer
		err  error
	}
	results := make([]result, len(benches))
	pool.Map(len(benches), func(i int) {
		b := benches[i]
		defer func() {
			if r := recover(); r != nil {
				results[i] = result{err: fmt.Errorf("table 1 %s: panic: %v", b.Name, r)}
			}
		}()
		p, err := profiling.Run(b, b.Train, m)
		if err != nil {
			results[i] = result{err: err}
			return
		}
		method := core.Consult(p, cfg).Chosen()
		rs, err := core.Consistency(b, m, p, method, windows, cfg)
		var jtb *trace.Buffer
		if tb != nil && err == nil {
			jtb = trace.NewBuffer()
			for _, row := range rs {
				section := row.Section
				if row.Context != "" {
					section += "(" + row.Context + ")"
				}
				for _, w := range windows {
					ws := row.Windows[w]
					jtb.Emit(trace.Event{Kind: trace.KindCell,
						Detail: fmt.Sprintf("table1/%s/%s/%s", b.Name, m.Name, section),
						Method: row.Method.String(), Count: int64(w),
						Mu: ws.Mu, Sigma: ws.Sigma})
				}
			}
		}
		results[i] = result{rows: rs, tb: jtb, err: err}
	})
	var rows []core.ConsistencyRow
	for _, r := range results {
		if r.err != nil {
			return rows, r.err
		}
		rows = append(rows, r.rows...)
		tb.Append(r.tb)
		if mx != nil {
			mx.Add("experiments.table1_rows", int64(len(r.rows)))
		}
	}
	return rows, nil
}

// FormatTable1 renders rows in the paper's layout: mean (standard
// deviation) multiplied by 100 per window size.
func FormatTable1(rows []core.ConsistencyRow, windows []int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-9s %-18s %-10s %-8s", "Benchmark", "Tuning Section", "Approach", "#invoc")
	for _, w := range windows {
		fmt.Fprintf(&sb, " %14s", fmt.Sprintf("w=%d", w))
	}
	sb.WriteByte('\n')
	for _, r := range rows {
		section := r.Section
		if r.Context != "" {
			section += "(" + r.Context + ")"
		}
		fmt.Fprintf(&sb, "%-9s %-18s %-10s %-8d", r.Benchmark, section, r.Method, r.Invocations)
		for _, w := range windows {
			ws := r.Windows[w]
			fmt.Fprintf(&sb, " %14s", fmt.Sprintf("%.2f(%.2f)", ws.Mu*100, ws.Sigma*100))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Fig7Entry is one bar group of Figure 7: a benchmark rated with one method
// variant, tuned separately on the train and ref datasets, always measured
// on ref.
type Fig7Entry struct {
	Benchmark string
	Method    core.Method
	// Chosen marks the method the PEAK consultant picked for the
	// benchmark ("The PEAK compiler chooses MBR for MGRID, CBR for SWIM,
	// CBR for EQUAKE, and RBR for ART", §5.2).
	Chosen bool

	// TrainImprovement / RefImprovement are the relative performance
	// improvements over "-O3" measured with the ref dataset, tuning with
	// the train or ref dataset respectively (left and right bars of
	// Figure 7 a–b).
	TrainImprovement float64
	RefImprovement   float64

	// TrainTuningCycles / RefTuningCycles are the simulated tuning times;
	// TrainNormTime / RefNormTime normalize them to the WHL entry of the
	// same benchmark (Figure 7 c–d).
	TrainTuningCycles int64
	RefTuningCycles   int64
	TrainNormTime     float64
	RefNormTime       float64

	// Flags records the train-tuned winner (diagnostics).
	Flags opt.FlagSet
}

// Figure7 reproduces the Figure-7 experiment on machine m for the paper's
// four benchmarks (SWIM, MGRID, ART, EQUAKE): every forceable rating method
// plus the WHL and AVG baselines, tuned on train and on ref, measured on
// ref.
func Figure7(m *machine.Machine, cfg *core.Config) ([]Fig7Entry, error) {
	return Figure7On(workloads.Figure7Set(), m, cfg, nil)
}

// Figure7For runs the Figure-7 protocol serially for an arbitrary
// benchmark list; Figure7On shards it over a pool.
func Figure7For(benches []*bench.Benchmark, m *machine.Machine, cfg *core.Config) ([]Fig7Entry, error) {
	return Figure7On(benches, m, cfg, nil)
}

// Figure7On runs the Figure-7 protocol with two grains of parallelism on
// the pool (nil means serial): each benchmark is one coarse job, and each
// tuning process inside it shards its candidate ratings through the same
// pool (sched.Pool.Map nests without deadlock). Entries are reduced in
// input order and every tuning engine derives its random streams per job,
// so the result is identical at any worker count.
func Figure7On(benches []*bench.Benchmark, m *machine.Machine, cfg *core.Config, pool sched.Pool) ([]Fig7Entry, error) {
	var cache *vcache.Cache
	if !cfg.NoCompileCache {
		cache = vcache.New()
	}
	return Figure7OnCached(benches, m, cfg, pool, cache)
}

// Figure7OnCached is Figure7On with a caller-supplied compile cache, shared
// by every tuning process and performance measurement of the run (each
// (benchmark, flags, machine, dataset-independent) compilation happens
// once). Callers pass their own cache to aggregate stats across machines or
// print them (-cachestats); nil disables caching. Entries are bit-identical
// for any cache value — see the determinism notes on core.Tuner.Cache.
func Figure7OnCached(benches []*bench.Benchmark, m *machine.Machine, cfg *core.Config, pool sched.Pool, cache *vcache.Cache) ([]Fig7Entry, error) {
	return Figure7Journaled(benches, m, cfg, pool, cache, nil)
}

// Figure7Journaled is Figure7OnCached with checkpoint/resume: a non-nil
// journal makes every tuning process append a checkpoint after each
// Iterative Elimination round (keyed "bench/machine/method/dataset") and
// resume from any state the journal already holds, reproducing the
// uninterrupted entries byte-for-byte. On error the entries computed so far
// are still returned (in input order up to the first failed benchmark)
// together with the first error, so callers can flush partial results; a
// panicking benchmark job is recovered into such an error rather than
// taking down the whole run.
func Figure7Journaled(benches []*bench.Benchmark, m *machine.Machine, cfg *core.Config, pool sched.Pool, cache *vcache.Cache, j *fault.Journal) ([]Fig7Entry, error) {
	return Figure7Traced(benches, m, cfg, pool, cache, j, nil, nil)
}

// Figure7Traced is Figure7Journaled with observability: a non-nil trace
// buffer receives every tuning process's event stream (internal/trace)
// and a non-nil metrics registry accumulates the per-tune counters. Each
// coarse benchmark job emits into its own buffer and registry; the
// reduction folds them in input order after the parallel phase, so the
// trace bytes — like the entries — are identical at any worker count and
// with the cache on or off. On error, the buffers of the benchmarks
// completed before the failure are still flushed (matching the partial
// entries).
func Figure7Traced(benches []*bench.Benchmark, m *machine.Machine, cfg *core.Config, pool sched.Pool, cache *vcache.Cache, j *fault.Journal, tb *trace.Buffer, mx *trace.Metrics) ([]Fig7Entry, error) {
	if pool == nil {
		pool = sched.NewSerial()
	}
	type result struct {
		entries []Fig7Entry
		tb      *trace.Buffer
		mx      *trace.Metrics
		err     error
	}
	results := make([]result, len(benches))
	pool.Map(len(benches), func(i int) {
		defer func() {
			if r := recover(); r != nil {
				results[i] = result{err: fmt.Errorf("figure 7 %s: panic: %v", benches[i].Name, r)}
			}
		}()
		var jtb *trace.Buffer
		if tb != nil {
			jtb = trace.NewBuffer()
		}
		var jmx *trace.Metrics
		if mx != nil {
			jmx = trace.NewMetrics()
		}
		entries, err := figure7One(benches[i], m, cfg, pool, cache, j, jtb, jmx)
		results[i] = result{entries, jtb, jmx, err}
	})
	var out []Fig7Entry
	for _, r := range results {
		if r.err != nil {
			return out, r.err
		}
		out = append(out, r.entries...)
		tb.Append(r.tb)
		mx.Merge(r.mx)
	}
	return out, nil
}

func figure7One(b *bench.Benchmark, m *machine.Machine, cfg *core.Config, pool sched.Pool, cache *vcache.Cache, j *fault.Journal, tb *trace.Buffer, mx *trace.Metrics) ([]Fig7Entry, error) {
	var out []Fig7Entry
	{
		pTrain, err := profiling.Run(b, b.Train, m)
		if err != nil {
			return nil, err
		}
		pRef, err := profiling.Run(b, b.Ref, m)
		if err != nil {
			return nil, err
		}
		chosen := core.Consult(pTrain, cfg).Chosen()

		baseRef, _, err := core.MeasurePerformanceCached(b, b.Ref, m, opt.O3(), cache)
		if err != nil {
			return nil, err
		}

		methods := forceable(pTrain, cfg)
		entries := make([]Fig7Entry, 0, len(methods))
		for _, method := range methods {
			method := method
			e := Fig7Entry{Benchmark: b.Name, Method: method, Chosen: method == chosen}

			trainRes, err := tuneTraced(b, b.Train, m, pTrain, method, cfg, pool, cache, j, tb, mx)
			if err != nil {
				return nil, fmt.Errorf("%s %s train: %w", b.Name, method, err)
			}
			refRes, err := tuneTraced(b, b.Ref, m, pRef, method, cfg, pool, cache, j, tb, mx)
			if err != nil {
				return nil, fmt.Errorf("%s %s ref: %w", b.Name, method, err)
			}
			tunedTrain, _, err := core.MeasurePerformanceCached(b, b.Ref, m, trainRes.Best, cache)
			if err != nil {
				return nil, err
			}
			tunedRef, _, err := core.MeasurePerformanceCached(b, b.Ref, m, refRes.Best, cache)
			if err != nil {
				return nil, err
			}
			e.TrainImprovement = core.Improvement(baseRef, tunedTrain)
			e.RefImprovement = core.Improvement(baseRef, tunedRef)
			e.TrainTuningCycles = trainRes.TuningCycles
			e.RefTuningCycles = refRes.TuningCycles
			e.Flags = trainRes.Best
			entries = append(entries, e)
		}

		// Normalize tuning times to WHL.
		var whl *Fig7Entry
		for i := range entries {
			if entries[i].Method == core.MethodWHL {
				whl = &entries[i]
			}
		}
		for i := range entries {
			if whl != nil && whl.TrainTuningCycles > 0 {
				entries[i].TrainNormTime = float64(entries[i].TrainTuningCycles) / float64(whl.TrainTuningCycles)
			}
			if whl != nil && whl.RefTuningCycles > 0 {
				entries[i].RefNormTime = float64(entries[i].RefTuningCycles) / float64(whl.RefTuningCycles)
			}
		}
		out = append(out, entries...)
	}
	return out, nil
}

// forceable lists the method bars Figure 7 shows for a benchmark: every
// rating method that can be *executed*, plus the WHL and AVG baselines.
// CBR needs scalar context variables and constant control arrays but may
// still have too many contexts (the MGRID_CBR bar exists to show that
// cost); MBR appears only where the consultant finds the component model
// usable — the paper's figure has no art_MBR bar.
func forceable(p *profiling.Profile, cfg *core.Config) []core.Method {
	var out []core.Method
	if p.ContextSet.Applicable && p.ContextArraysConst && p.NumContexts() > 0 {
		out = append(out, core.MethodCBR)
	}
	if core.Consult(p, cfg).Has(core.MethodMBR) {
		out = append(out, core.MethodMBR)
	}
	out = append(out, core.MethodRBR, core.MethodWHL, core.MethodAVG)
	return out
}

func tuneForced(b *bench.Benchmark, ds *bench.Dataset, m *machine.Machine,
	p *profiling.Profile, method core.Method, cfg *core.Config, pool sched.Pool,
	cache *vcache.Cache) (*core.TuneResult, error) {
	return tuneTraced(b, ds, m, p, method, cfg, pool, cache, nil, nil, nil)
}

// tuneTraced runs one forced-method tune with the full option set: an
// optional checkpoint journal (the engine derives the checkpoint ID
// "bench/machine/method/dataset", unique per tune of a Figure-7 run), an
// optional trace buffer — owned by the calling coarse job, which is also
// the tune's reduction goroutine, so emission stays single-threaded —
// and an optional metrics registry receiving the tune's counters.
func tuneTraced(b *bench.Benchmark, ds *bench.Dataset, m *machine.Machine,
	p *profiling.Profile, method core.Method, cfg *core.Config, pool sched.Pool,
	cache *vcache.Cache, j *fault.Journal, tb *trace.Buffer, mx *trace.Metrics) (*core.TuneResult, error) {
	forced := method
	tu := &core.Tuner{
		Bench: b, Mach: m, Dataset: ds, Cfg: *cfg, Profile: p, Force: &forced,
		Pool: pool, Cache: cache, Journal: j, Trace: tb,
	}
	res, err := tu.Tune()
	if err == nil {
		res.FillMetrics(mx)
	}
	return res, err
}

// FormatFigure7 renders the entries as the two panels of Figure 7 for one
// machine: percentage improvements and normalized tuning times.
func FormatFigure7(entries []Fig7Entry, machineName string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Performance improvement over -O3 on %s (measured on ref):\n", machineName)
	fmt.Fprintf(&sb, "%-22s %7s %7s   %s\n", "bar", "train", "ref", "(tuning data set used)")
	for _, e := range entries {
		mark := " "
		if e.Chosen {
			mark = "*"
		}
		fmt.Fprintf(&sb, "%-22s %6.1f%% %6.1f%%  %s\n",
			strings.ToLower(e.Benchmark)+"_"+e.Method.String(), 100*e.TrainImprovement,
			100*e.RefImprovement, mark)
	}
	fmt.Fprintf(&sb, "\nTuning time normalized to WHL on %s:\n", machineName)
	fmt.Fprintf(&sb, "%-22s %7s %7s\n", "bar", "train", "ref")
	for _, e := range entries {
		fmt.Fprintf(&sb, "%-22s %7.3f %7.3f\n",
			strings.ToLower(e.Benchmark)+"_"+e.Method.String(), e.TrainNormTime, e.RefNormTime)
	}
	sb.WriteString("(* = method chosen by the PEAK consultant)\n")
	return sb.String()
}

// Headline summarizes the paper's abstract-level claims over a set of
// Figure-7 entries from both machines: maximum and average improvement
// using the PEAK-chosen methods, and maximum and average tuning-time
// reduction versus WHL.
type Headline struct {
	MaxImprovement float64
	AvgImprovement float64
	MaxReduction   float64
	AvgReduction   float64
}

// Summarize computes the headline numbers from the chosen-method entries.
func Summarize(entries []Fig7Entry) Headline {
	var h Headline
	var imps, reds []float64
	for _, e := range entries {
		if !e.Chosen {
			continue
		}
		imps = append(imps, e.TrainImprovement)
		if e.TrainNormTime > 0 {
			reds = append(reds, 1-e.TrainNormTime)
		}
	}
	sort.Float64s(imps)
	sort.Float64s(reds)
	for _, v := range imps {
		h.AvgImprovement += v
		if v > h.MaxImprovement {
			h.MaxImprovement = v
		}
	}
	if len(imps) > 0 {
		h.AvgImprovement /= float64(len(imps))
	}
	for _, v := range reds {
		h.AvgReduction += v
		if v > h.MaxReduction {
			h.MaxReduction = v
		}
	}
	if len(reds) > 0 {
		h.AvgReduction /= float64(len(reds))
	}
	return h
}
