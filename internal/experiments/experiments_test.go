package experiments

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"peak/internal/bench"
	"peak/internal/core"
	"peak/internal/ir"
	"peak/internal/irbuild"
	"peak/internal/machine"
	"peak/internal/profiling"
	"peak/internal/sched"
	"peak/internal/sim"
	"peak/internal/vcache"
	"peak/internal/workloads"
)

// quickBenchmark is a fast single-context workload so the full Figure-7
// protocol (all methods including WHL, train and ref) runs in seconds.
func quickBenchmark() *bench.Benchmark {
	prog := ir.NewProgram()
	prog.AddArray("q", ir.F64, 96)
	b := irbuild.NewFunc("quick")
	b.ScalarParam("n", ir.I64).Local("s", ir.F64)
	fn := b.Body(
		b.For("i", b.I(0), b.V("n"), 1,
			b.Set(b.V("s"), b.FAdd(b.V("s"),
				b.FMul(b.At("q", b.V("i")), b.At("q", b.V("i"))))),
		),
		b.Ret(b.V("s")),
	)
	prog.AddFunc(fn)
	mkDS := func(name string, inv int) *bench.Dataset {
		return &bench.Dataset{
			Name: name, NumInvocations: inv,
			Setup: func(mem *sim.Memory, rng *rand.Rand) {
				d := mem.Get("q").Data
				for i := range d {
					d[i] = rng.Float64()
				}
			},
			Args: func(i int, mem *sim.Memory, rng *rand.Rand) []float64 {
				return []float64{64}
			},
		}
	}
	return &bench.Benchmark{
		Name: "QUICK", TSName: "quick", Class: bench.FP,
		Prog: prog, TS: fn,
		Train: mkDS("train", 250), Ref: mkDS("ref", 500),
		NonTSCycles: 50_000, PaperInvocations: "(test)",
	}
}

func TestFigure7Protocol(t *testing.T) {
	cfg := core.DefaultConfig()
	m := machine.SPARCII()
	entries, err := Figure7For([]*bench.Benchmark{quickBenchmark()}, m, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	// CBR, MBR (constant-only), RBR, WHL, AVG.
	if len(entries) != 5 {
		t.Fatalf("entries = %d, want 5", len(entries))
	}
	var whl, chosen *Fig7Entry
	for i := range entries {
		e := &entries[i]
		if e.Method == core.MethodWHL {
			whl = e
		}
		if e.Chosen {
			chosen = e
		}
		if e.TrainTuningCycles <= 0 || e.RefTuningCycles <= 0 {
			t.Errorf("%s: missing tuning cycles", e.Method)
		}
	}
	if whl == nil {
		t.Fatal("WHL entry missing")
	}
	if whl.TrainNormTime != 1 || whl.RefNormTime != 1 {
		t.Errorf("WHL must normalize to 1.0, got %v/%v", whl.TrainNormTime, whl.RefNormTime)
	}
	if chosen == nil || chosen.Method != core.MethodCBR {
		t.Errorf("chosen method = %v, want CBR", chosen)
	}
	// The fair methods must be far cheaper than WHL on this workload.
	for _, e := range entries {
		if e.Method == core.MethodWHL {
			continue
		}
		if e.TrainNormTime >= 1 {
			t.Errorf("%s: normalized tuning time %.3f not below WHL", e.Method, e.TrainNormTime)
		}
	}
	out := FormatFigure7(entries, m.Name)
	for _, want := range []string{"quick_CBR", "quick_WHL", "normalized to WHL"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatFigure7 missing %q", want)
		}
	}
}

func TestForceableBars(t *testing.T) {
	cfg := core.DefaultConfig()
	m := machine.SPARCII()

	// ART: no CBR bar (mutated control arrays), no MBR bar (bad model) —
	// exactly the paper's art_RBR/art_WHL/art_AVG set.
	art, _ := workloads.ByName("ART")
	p, err := profileOf(art, m)
	if err != nil {
		t.Fatal(err)
	}
	ms := forceable(p, &cfg)
	if len(ms) != 3 || ms[0] != core.MethodRBR {
		t.Errorf("ART bars = %v, want [RBR WHL AVG]", ms)
	}

	// MGRID: CBR bar exists despite too many contexts (the mgrid_CBR
	// bar), plus MBR.
	mgrid, _ := workloads.ByName("MGRID")
	p, err = profileOf(mgrid, m)
	if err != nil {
		t.Fatal(err)
	}
	ms = forceable(p, &cfg)
	found := map[core.Method]bool{}
	for _, mm := range ms {
		found[mm] = true
	}
	if !found[core.MethodCBR] || !found[core.MethodMBR] {
		t.Errorf("MGRID bars = %v, want CBR and MBR present", ms)
	}
}

func TestTable1Structure(t *testing.T) {
	cfg := core.DefaultConfig()
	rows, err := Table1(machine.SPARCII(), []int{10, 40}, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 14 benchmarks; APSI contributes 3 rows and WUPWISE 2: 17 total.
	if len(rows) != 17 {
		t.Fatalf("rows = %d, want 17", len(rows))
	}
	perBench := map[string]int{}
	grew := 0
	for _, r := range rows {
		perBench[r.Benchmark]++
		w10, w40 := r.Windows[10], r.Windows[40]
		if w10.N == 0 || w40.N == 0 {
			t.Errorf("%s: empty windows", r.Benchmark)
		}
		if w40.Sigma > w10.Sigma {
			grew++
		}
	}
	if perBench["APSI"] != 3 || perBench["WUPWISE"] != 2 || perBench["SWIM"] != 1 {
		t.Errorf("context rows: %v", perBench)
	}
	// σ must shrink with the window for nearly all rows (noise can flip
	// one or two).
	if grew > 2 {
		t.Errorf("%d rows grew sigma from w=10 to w=40", grew)
	}
	out := FormatTable1(rows, []int{10, 40})
	for _, want := range []string{"BZIP2", "radb4(Context 3)", "w=40"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatTable1 missing %q", want)
		}
	}
}

func TestSummarize(t *testing.T) {
	entries := []Fig7Entry{
		{Chosen: true, TrainImprovement: 0.5, TrainNormTime: 0.2},
		{Chosen: true, TrainImprovement: 0.1, TrainNormTime: 0.1},
		{Chosen: false, TrainImprovement: 9.9, TrainNormTime: 9.9}, // ignored
	}
	h := Summarize(entries)
	if h.MaxImprovement != 0.5 || h.AvgImprovement != 0.3 {
		t.Errorf("improvement summary: %+v", h)
	}
	if h.MaxReduction != 0.9 || math.Abs(h.AvgReduction-0.85) > 1e-12 {
		t.Errorf("reduction summary: %+v", h)
	}
}

func profileOf(b *bench.Benchmark, m *machine.Machine) (*profiling.Profile, error) {
	return profiling.Run(b, b.Train, m)
}

// TestVersionCacheDeterminism is the compile-cache half of the determinism
// contract (ARCHITECTURE.md §3): the formatted experiment outputs — the
// Figure-7 panels, a Table-1 consistency row, and the noise-sensitivity
// report — must be byte-identical with the cache enabled or disabled and at
// 1 or 8 workers. The full-workload equivalent is spot-checked by the
// tier-1 recipe against the recorded results files.
func TestVersionCacheDeterminism(t *testing.T) {
	benches := []*bench.Benchmark{quickBenchmark()}
	m := machine.SPARCII()

	render := func(noCache bool, pool sched.Pool) string {
		cfg := core.DefaultConfig()
		cfg.NoCompileCache = noCache
		var cache *vcache.Cache
		if !noCache {
			cache = vcache.New()
		}
		entries, err := Figure7OnCached(benches, m, &cfg, pool, cache)
		if err != nil {
			t.Fatalf("figure7 (nocache=%v): %v", noCache, err)
		}
		fig := FormatFigure7(entries, m.Name)

		// Table 1: the consistency experiment deliberately bypasses the
		// cache (it measures two independently compiled -O3 copies), so its
		// rows must be untouched by the config switch.
		p, err := profileOf(benches[0], m)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := core.Consistency(benches[0], m, p, core.Consult(p, &cfg).Chosen(),
			[]int{10, 20}, &cfg)
		if err != nil {
			t.Fatalf("consistency (nocache=%v): %v", noCache, err)
		}
		tab := FormatTable1(rows, []int{10, 20})

		noise, err := noiseReportFor(benches, m, &cfg, pool, nil, nil, nil)
		if err != nil {
			t.Fatalf("noise report (nocache=%v): %v", noCache, err)
		}
		return fig + "\n" + tab + "\n" + noise
	}

	ref := render(false, nil) // cache on, serial: the recorded-results path
	for _, c := range []struct {
		name    string
		noCache bool
		pool    sched.Pool
	}{
		{"cache on, workers=8", false, sched.New(8)},
		{"cache off, workers=1", true, nil},
		{"cache off, workers=8", true, sched.New(8)},
	} {
		if got := render(c.noCache, c.pool); got != ref {
			t.Errorf("%s: output diverged from cache on, workers=1", c.name)
		}
	}
}
