package experiments

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"peak/internal/bench"
	"peak/internal/core"
	"peak/internal/fault"
	"peak/internal/machine"
	"peak/internal/sched"
)

func TestFaultReportStructureAndDeterminism(t *testing.T) {
	m := machine.SPARCII()
	cfg := core.DefaultConfig()
	plan := fault.Uniform(0.05, 2004)
	benches := []*bench.Benchmark{quickBenchmark()}

	bars, err := FaultReportFor(benches, m, &cfg, plan, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(bars) == 0 {
		t.Fatal("no bars")
	}
	injected := 0
	for _, b := range bars {
		if b.Overhead <= 0 {
			t.Errorf("%s_%s: overhead = %v", b.Benchmark, b.Method, b.Overhead)
		}
		if b.Same != (b.CleanBest == b.FaultedBest) {
			t.Errorf("%s_%s: Same flag inconsistent", b.Benchmark, b.Method)
		}
		injected += b.CompileRetries + b.MeasureRetries + b.JobRetries + len(b.Quarantined)
	}
	if injected == 0 {
		t.Error("5% fault rate injected nothing across all bars")
	}

	again, err := FaultReportFor(benches, m, &cfg, plan, sched.New(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, bars) {
		t.Errorf("fault report differs between serial and 4 workers:\n got %+v\nwant %+v", again, bars)
	}

	out := FormatFaultReport(bars, m.Name, plan)
	for _, want := range []string{"quar", "retries(c/m/j)", "picked the fault-free winner", "quarantined as miscompiled"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestFigure7JournaledResumes: a Figure-7 run with a journal must (a) leave
// resumable state behind and (b) reproduce the journal-free entries exactly
// when resumed from that state.
func TestFigure7JournaledResumes(t *testing.T) {
	m := machine.SPARCII()
	cfg := core.DefaultConfig()
	benches := []*bench.Benchmark{quickBenchmark()}

	ref, err := Figure7For(benches, m, &cfg)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "fig7.jsonl")
	j, err := fault.NewJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Figure7Journaled(benches, m, &cfg, nil, nil, j)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() == 0 {
		t.Error("journal recorded no checkpoints")
	}
	j.Close()
	if !reflect.DeepEqual(got, ref) {
		t.Errorf("journaled run differs:\n got %+v\nwant %+v", got, ref)
	}

	// Resume from the completed journal: every tune restores its final
	// (stopped) checkpoint instead of re-searching.
	j2, err := fault.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	resumed, err := Figure7Journaled(benches, m, &cfg, nil, nil, j2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed, ref) {
		t.Errorf("resumed run differs:\n got %+v\nwant %+v", resumed, ref)
	}
}
