package experiments

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"

	"peak/internal/bench"
	"peak/internal/core"
	"peak/internal/machine"
	"peak/internal/noise"
	"peak/internal/profiling"
	"peak/internal/sched"
	"peak/internal/sim"
	"peak/internal/store"
	"peak/internal/trace"
	"peak/internal/workloads"
)

// This file adds the noise-sensitivity experiment: how do the rating
// methods' Table-1 error statistics — and the winner-picking reliability of
// Iterative Elimination's core comparison — degrade when the measurement
// noise departs from the machine's default jitter-plus-spikes model? The
// paper attributes its outliers to "system perturbations, such as
// interrupts" (§3); the regimes below stress that assumption with heavier
// tails, slow thermal-style drift and correlated bursts.

// NoiseRegime pairs a stable label with a noise model.
type NoiseRegime struct {
	Name  string
	Model noise.Model
}

// NoiseWindow is the fixed rating-window size the noise report uses.
const NoiseWindow = 40

// noiseTrialCount and noiseTrialMargin parameterize the winner-picking
// section: paired trials where the experimental version is truly worse /
// better than the base by the margin.
const (
	noiseTrialCount  = 40
	noiseTrialMargin = 0.002
	noiseTrialCycles = 1_000_000
)

// RegimesFor returns the noise regimes the report sweeps on machine m: the
// machine's calibrated default, then four stress regimes derived from it.
func RegimesFor(m *machine.Machine) []NoiseRegime {
	d := sim.DefaultNoise(m)
	return []NoiseRegime{
		{Name: "baseline", Model: d},
		{Name: "gauss4x", Model: noise.Gaussian(4 * d.Jitter)},
		{Name: "spikes", Model: noise.HeavySpikes(d.Jitter, 0.05, 4)},
		{Name: "drift", Model: noise.ThermalDrift(d.Jitter, 0.04, 400)},
		{Name: "bursts", Model: noise.Bursts(d.Jitter, 0.02, 12, 0.08)},
	}
}

// RegimeByName resolves a regime label for machine m.
func RegimeByName(m *machine.Machine, name string) (NoiseRegime, bool) {
	for _, r := range RegimesFor(m) {
		if r.Name == name {
			return r, true
		}
	}
	return NoiseRegime{}, false
}

// RegimeNames lists the regime labels in report order.
func RegimeNames(m *machine.Machine) []string {
	regimes := RegimesFor(m)
	names := make([]string, len(regimes))
	for i, r := range regimes {
		names[i] = r.Name
	}
	return names
}

// NoiseReport runs the noise-sensitivity experiment serially on machine m.
func NoiseReport(m *machine.Machine, cfg *core.Config) (string, error) {
	return NoiseReportOn(m, cfg, nil)
}

// NoiseReportOn regenerates the noise-sensitivity report for machine m,
// sharding the (benchmark × regime) consistency grid over pool (nil means
// serial). Each cell is one self-contained job — its profile and
// measurement streams are seeded from the benchmark and the config alone —
// and cells are reduced in (benchmark, regime) order, so the report is
// byte-identical at any worker count.
func NoiseReportOn(m *machine.Machine, cfg *core.Config, pool sched.Pool) (string, error) {
	return NoiseReportTraced(m, cfg, pool, nil, nil)
}

// NoiseReportTraced is NoiseReportOn with observability: a non-nil trace
// buffer receives one "cell" event per (benchmark, regime) grid cell and
// one "trials" event per (regime, decision rule) of the winner-picking
// section; a non-nil metrics registry accumulates the grid totals. Cell
// jobs emit into per-cell buffers flushed in grid order after the
// parallel phase, so the trace bytes are byte-identical at any worker
// count (the grid touches no compile cache, so -nocache trivially
// matches too).
func NoiseReportTraced(m *machine.Machine, cfg *core.Config, pool sched.Pool, tb *trace.Buffer, mx *trace.Metrics) (string, error) {
	return noiseReportFor(workloads.All(), m, cfg, pool, tb, mx, nil)
}

// NoiseReportStored is NoiseReportTraced with a persistent warm-start
// store: each (benchmark, regime) grid cell's result is memoized under a
// key covering the benchmark, machine, regime noise model and full rating
// configuration, so a warm rerun answers the cells without profiling or
// simulating. The report (and the trace) are byte-identical with the store
// nil, cold or warm — a memo hit restores exactly the values a cold cell
// computes. The winner-trial section is cheap and always runs live.
func NoiseReportStored(m *machine.Machine, cfg *core.Config, pool sched.Pool, tb *trace.Buffer, mx *trace.Metrics, st *store.Store) (string, error) {
	return noiseReportFor(workloads.All(), m, cfg, pool, tb, mx, st)
}

// cellMemoKey names one noise-grid cell in the store's memo table. The
// config digest covers the regime's noise model (cfg.Noise is resolved by
// MemoDigest), so two regimes never share a record.
func cellMemoKey(b *bench.Benchmark, m *machine.Machine, regime string, c *core.Config) string {
	return fmt.Sprintf("v1/noise/%s/%s/%s/w=%d/cfg=%s", b.Name, m.Name, regime, NoiseWindow, c.MemoDigest(m))
}

// encodeCellMemo packs a cell's outcome (chosen method + headline window
// statistic) into a deterministic 32-byte payload; decodeCellMemo is its
// inverse, returning false on any size or range mismatch so a stale or
// foreign record falls back to computing the cell live.
func encodeCellMemo(method core.Method, st core.WindowStat) []byte {
	buf := make([]byte, 0, 32)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(method))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(st.Mu))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(st.Sigma))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(st.N))
	return buf
}

// decodeCellMemo unpacks encodeCellMemo's payload.
func decodeCellMemo(payload []byte) (core.Method, core.WindowStat, bool) {
	if len(payload) != 32 {
		return 0, core.WindowStat{}, false
	}
	method := core.Method(binary.LittleEndian.Uint64(payload))
	st := core.WindowStat{
		Mu:    math.Float64frombits(binary.LittleEndian.Uint64(payload[8:])),
		Sigma: math.Float64frombits(binary.LittleEndian.Uint64(payload[16:])),
		N:     int(binary.LittleEndian.Uint64(payload[24:])),
	}
	return method, st, true
}

// noiseReportFor is NoiseReportStored over an explicit benchmark list.
func noiseReportFor(benches []*bench.Benchmark, m *machine.Machine, cfg *core.Config, pool sched.Pool, tb *trace.Buffer, mx *trace.Metrics, ps *store.Store) (string, error) {
	if pool == nil {
		pool = sched.NewSerial()
	}
	regimes := RegimesFor(m)

	type cell struct {
		method core.Method
		stat   core.WindowStat
		tb     *trace.Buffer
		err    error
	}
	cells := make([]cell, len(benches)*len(regimes))
	pool.Map(len(cells), func(i int) {
		b := benches[i/len(regimes)]
		regime := regimes[i%len(regimes)]
		c := *cfg
		c.Noise = &regime.Model
		// emit builds the cell's trace event — identical whether the values
		// were computed live or restored from the memo table, so the trace
		// bytes never depend on the store's temperature.
		emit := func(method core.Method, st core.WindowStat) *trace.Buffer {
			if tb == nil {
				return nil
			}
			ctb := trace.NewBuffer()
			ctb.Emit(trace.Event{Kind: trace.KindCell,
				Detail: fmt.Sprintf("noise/%s/%s/%s", b.Name, m.Name, regime.Name),
				Method: method.String(), Count: NoiseWindow,
				Mu: st.Mu, Sigma: st.Sigma})
			return ctb
		}
		var memoK string
		if ps != nil {
			memoK = cellMemoKey(b, m, regime.Name, &c)
			if payload, ok := ps.LookupMemo(core.MemoKindCell, memoK); ok {
				if method, st, valid := decodeCellMemo(payload); valid {
					cells[i] = cell{method: method, stat: st, tb: emit(method, st)}
					return
				}
			}
		}
		p, err := profiling.Run(b, b.Train, m)
		if err != nil {
			cells[i] = cell{err: err}
			return
		}
		method := core.Consult(p, &c).Chosen()
		rows, err := core.Consistency(b, m, p, method, []int{NoiseWindow}, &c)
		if err != nil {
			cells[i] = cell{err: err}
			return
		}
		// The dominant-context row carries the headline statistic.
		st := rows[0].Windows[NoiseWindow]
		if ps != nil {
			ps.RecordMemo(core.MemoKindCell, memoK, encodeCellMemo(method, st))
		}
		cells[i] = cell{method: method, stat: st, tb: emit(method, st)}
	})
	for i := range cells {
		if cells[i].err != nil {
			return "", cells[i].err
		}
		tb.Append(cells[i].tb)
		if mx != nil {
			mx.Add("experiments.noise_cells", 1)
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "Rating consistency under noise on %s (w=%d, Mean(StdDev) of rating error x100,\nconsultant-chosen method, dominant context):\n",
		m.Name, NoiseWindow)
	fmt.Fprintf(&sb, "%-9s %-8s", "Benchmark", "Approach")
	for _, r := range regimes {
		fmt.Fprintf(&sb, " %14s", r.Name)
	}
	sb.WriteByte('\n')
	for bi, b := range benches {
		fmt.Fprintf(&sb, "%-9s %-8s", b.Name, cells[bi*len(regimes)].method)
		for ri := range regimes {
			ws := cells[bi*len(regimes)+ri].stat
			fmt.Fprintf(&sb, " %14s", fmt.Sprintf("%.2f(%.2f)", ws.Mu*100, ws.Sigma*100))
		}
		sb.WriteByte('\n')
	}

	// Winner-picking reliability: the CI-gated decision rule against the
	// legacy raw-mean rule on identical measurement streams. Cheap and
	// deterministic, so it runs serially.
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "Winner picking under noise (%d paired trials per regime, experimental version\ntruly %.1f%% worse / better; stderr = raw-mean comparison, CI = Welch-gated):\n",
		noiseTrialCount, 100*noiseTrialMargin)
	fmt.Fprintf(&sb, "%-10s %21s %21s %23s\n", "", "wrong adopts", "missed wins", "invocations/trial")
	fmt.Fprintf(&sb, "%-10s %10s %10s %10s %10s %11s %11s\n",
		"regime", "stderr", "CI", "stderr", "CI", "stderr", "CI")
	for _, r := range regimes {
		cfgCI, cfgSE := *cfg, *cfg
		cfgCI.Convergence = core.ConvergeCI
		cfgSE.Convergence = core.ConvergeStdErr
		cfgCI.ImprovementThreshold = 0
		cfgSE.ImprovementThreshold = 0
		seed := sched.DeriveSeed(cfg.Seed, "noise-trials/"+r.Name)
		ci := core.RunWinnerTrials(&cfgCI, r.Model, seed, noiseTrialCount, noiseTrialCycles, noiseTrialMargin)
		se := core.RunWinnerTrials(&cfgSE, r.Model, seed, noiseTrialCount, noiseTrialCycles, noiseTrialMargin)
		if tb != nil {
			// The trial section runs serially on the reduction goroutine, so
			// it emits straight into the report's buffer, stderr rule first
			// (matching the printed column order).
			tb.Emit(trace.Event{Kind: trace.KindTrials,
				Detail: fmt.Sprintf("noise/%s/%s/stderr", m.Name, r.Name),
				Counts: map[string]int64{"wrong_adopts": int64(se.WrongAdopts),
					"misses": int64(se.Misses), "trials": int64(se.Trials),
					"invocations": int64(se.Invocations)}})
			tb.Emit(trace.Event{Kind: trace.KindTrials,
				Detail: fmt.Sprintf("noise/%s/%s/CI", m.Name, r.Name),
				Counts: map[string]int64{"wrong_adopts": int64(ci.WrongAdopts),
					"misses": int64(ci.Misses), "trials": int64(ci.Trials),
					"invocations": int64(ci.Invocations)}})
		}
		if mx != nil {
			mx.Add("experiments.trial_invocations", int64(se.Invocations+ci.Invocations))
		}
		fmt.Fprintf(&sb, "%-10s %7d/%2d %7d/%2d %7d/%2d %7d/%2d %11.0f %11.0f\n",
			r.Name,
			se.WrongAdopts, se.Trials, ci.WrongAdopts, ci.Trials,
			se.Misses, se.Trials, ci.Misses, ci.Trials,
			float64(se.Invocations)/float64(2*se.Trials),
			float64(ci.Invocations)/float64(2*ci.Trials))
	}
	return sb.String(), nil
}
