package experiments

import (
	"fmt"
	"strings"

	"peak/internal/bench"
	"peak/internal/core"
	"peak/internal/fault"
	"peak/internal/machine"
	"peak/internal/opt"
	"peak/internal/profiling"
	"peak/internal/sched"
	"peak/internal/trace"
	"peak/internal/vcache"
	"peak/internal/workloads"
)

// This file adds the robustness experiment: the Figure-7 tuning protocol is
// re-run under deterministic fault injection — transient compile failures,
// silent miscompiles, measurement hangs and rating-job panics — and each
// bar's winning flag set is compared against its fault-free twin. The
// engine's recovery machinery (retry with backoff, golden-output
// verification with quarantine, panic isolation) has one success criterion:
// the faulted tuning process completes and still picks the same winners.

// FaultBar is one (benchmark, method) comparison of the fault report.
type FaultBar struct {
	Benchmark string
	Method    core.Method

	// CleanBest / FaultedBest are the winning flag sets tuned on the train
	// dataset without and with fault injection; Same is their equality.
	CleanBest   opt.FlagSet
	FaultedBest opt.FlagSet
	Same        bool

	// Recovery ledger of the faulted tune.
	Quarantined       []opt.Flag
	CompileRetries    int
	MeasureRetries    int
	JobRetries        int
	VerifyInvocations int64
	// Overhead is the faulted tune's simulated tuning time relative to the
	// fault-free tune's (1 = no overhead).
	Overhead float64
}

// FaultReport runs the robustness experiment on machine m over the paper's
// Figure-7 benchmarks and renders it. A non-nil journal makes the faulted
// tunes checkpoint after every round (and resume from any prior state it
// already holds — see core.Tuner.Journal).
func FaultReport(m *machine.Machine, cfg *core.Config, plan *fault.Plan, pool sched.Pool, j *fault.Journal) (string, error) {
	bars, err := FaultReportFor(workloads.Figure7Set(), m, cfg, plan, pool, j)
	if err != nil {
		return "", err
	}
	return FormatFaultReport(bars, m.Name, plan), nil
}

// FaultReportFor computes the fault-report bars for an explicit benchmark
// list: per benchmark and forceable rating method, one fault-free and one
// faulted tune on the train dataset. Each benchmark is one coarse job on
// the pool (nil means serial) and bars are reduced in input order, so the
// report is byte-identical at any worker count. On error the bars computed
// so far are still returned (partial results, in input order up to the
// first failed benchmark) together with the first error.
func FaultReportFor(benches []*bench.Benchmark, m *machine.Machine, cfg *core.Config, plan *fault.Plan, pool sched.Pool, j *fault.Journal) ([]FaultBar, error) {
	return FaultReportTraced(benches, m, cfg, plan, pool, j, nil, nil)
}

// FaultReportTraced is FaultReportFor with observability: a non-nil
// trace buffer receives the event streams of the *faulted* tunes (the
// fault-free twins stay untraced — they would collide with the faulted
// tunes' identities and tell a story the Figure-7 trace already tells);
// a non-nil metrics registry accumulates both tunes' counters. Per-
// benchmark buffers are folded in input order, so the trace bytes are
// identical at any worker count.
func FaultReportTraced(benches []*bench.Benchmark, m *machine.Machine, cfg *core.Config, plan *fault.Plan, pool sched.Pool, j *fault.Journal, tb *trace.Buffer, mx *trace.Metrics) ([]FaultBar, error) {
	if pool == nil {
		pool = sched.NewSerial()
	}
	var cache *vcache.Cache
	if !cfg.NoCompileCache {
		cache = vcache.New()
	}
	type result struct {
		bars []FaultBar
		tb   *trace.Buffer
		mx   *trace.Metrics
		err  error
	}
	results := make([]result, len(benches))
	pool.Map(len(benches), func(i int) {
		defer func() {
			if r := recover(); r != nil {
				results[i] = result{err: fmt.Errorf("fault report %s: panic: %v", benches[i].Name, r)}
			}
		}()
		var jtb *trace.Buffer
		if tb != nil {
			jtb = trace.NewBuffer()
		}
		var jmx *trace.Metrics
		if mx != nil {
			jmx = trace.NewMetrics()
		}
		bars, err := faultReportOne(benches[i], m, cfg, plan, pool, cache, j, jtb, jmx)
		results[i] = result{bars, jtb, jmx, err}
	})
	var out []FaultBar
	for _, r := range results {
		if r.err != nil {
			return out, r.err
		}
		out = append(out, r.bars...)
		tb.Append(r.tb)
		mx.Merge(r.mx)
	}
	return out, nil
}

func faultReportOne(b *bench.Benchmark, m *machine.Machine, cfg *core.Config, plan *fault.Plan, pool sched.Pool, cache *vcache.Cache, j *fault.Journal, tb *trace.Buffer, mx *trace.Metrics) ([]FaultBar, error) {
	p, err := profiling.Run(b, b.Train, m)
	if err != nil {
		return nil, err
	}
	var bars []FaultBar
	for _, method := range forceable(p, cfg) {
		cleanCfg := *cfg
		cleanCfg.Faults = nil
		clean, err := tuneTraced(b, b.Train, m, p, method, &cleanCfg, pool, cache, nil, nil, mx)
		if err != nil {
			return bars, fmt.Errorf("%s %s fault-free: %w", b.Name, method, err)
		}
		faultCfg := *cfg
		faultCfg.Faults = plan
		faulted, err := tuneTraced(b, b.Train, m, p, method, &faultCfg, pool, cache, j, tb, mx)
		if err != nil {
			return bars, fmt.Errorf("%s %s faulted: %w", b.Name, method, err)
		}
		bar := FaultBar{
			Benchmark: b.Name, Method: method,
			CleanBest: clean.Best, FaultedBest: faulted.Best,
			Same:              clean.Best == faulted.Best,
			Quarantined:       faulted.Quarantined,
			CompileRetries:    faulted.CompileRetries,
			MeasureRetries:    faulted.MeasureRetries,
			JobRetries:        faulted.JobRetries,
			VerifyInvocations: faulted.VerifyInvocations,
		}
		if clean.TuningCycles > 0 {
			bar.Overhead = float64(faulted.TuningCycles) / float64(clean.TuningCycles)
		}
		bars = append(bars, bar)
	}
	return bars, nil
}

// FormatFaultReport renders the bars plus the recovery footer.
func FormatFaultReport(bars []FaultBar, machineName string, plan *fault.Plan) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Tuning under injected faults on %s (train dataset, fault seed %d,\nrates: compile-fail %.1f%%, miscompile %.2f%%, hang %.1f%%, job-panic %.1f%%):\n",
		machineName, plan.Seed, 100*plan.CompileFailRate, 100*plan.MiscompileRate,
		100*plan.HangRate, 100*plan.PanicRate)
	fmt.Fprintf(&sb, "%-22s %-6s %5s %14s %9s\n", "bar", "winner", "quar", "retries(c/m/j)", "overhead")
	same, quar, cRetry, mRetry, jRetry := 0, 0, 0, 0, 0
	var verifyInv int64
	for _, b := range bars {
		verdict := "DIFF"
		if b.Same {
			verdict = "SAME"
			same++
		}
		fmt.Fprintf(&sb, "%-22s %-6s %5d %14s %8.3fx\n",
			strings.ToLower(b.Benchmark)+"_"+b.Method.String(), verdict,
			len(b.Quarantined),
			fmt.Sprintf("%d/%d/%d", b.CompileRetries, b.MeasureRetries, b.JobRetries),
			b.Overhead)
		quar += len(b.Quarantined)
		cRetry += b.CompileRetries
		mRetry += b.MeasureRetries
		jRetry += b.JobRetries
		verifyInv += b.VerifyInvocations
	}
	fmt.Fprintf(&sb, "\n%d/%d bars picked the fault-free winner.\n", same, len(bars))
	fmt.Fprintf(&sb, "Recovery totals: %d flag(s) quarantined as miscompiled, %d compile retries,\n", quar, cRetry)
	fmt.Fprintf(&sb, "%d hung measurements killed and retried, %d panicked jobs re-run,\n", mRetry, jRetry)
	fmt.Fprintf(&sb, "%d verification invocations spent on golden-output checks.\n", verifyInv)
	return sb.String()
}
