// Package profiling implements the paper's offline profile run (§3):
// it executes the instrumented tuning section over the tuning dataset and
// gathers everything the Rating Approach Consultant and the rating methods
// need — contexts and their frequencies, run-time-constant context
// variables, MBR components with their profile-run fit, and baseline timing.
package profiling

import (
	"fmt"
	"math"
	"math/rand"

	"peak/internal/analysis"
	"peak/internal/bench"
	"peak/internal/machine"
	"peak/internal/opt"
	"peak/internal/regress"
	"peak/internal/sim"
)

// ContextStat aggregates one observed context.
type ContextStat struct {
	Key         string
	Count       int
	TotalCycles int64
}

// Profile is the outcome of one profile run.
type Profile struct {
	Benchmark string
	Machine   string
	Dataset   string

	// Invocations is the number of TS invocations observed.
	Invocations int
	// TotalTSCycles is the reference version's total TS time; MeanCycles
	// the per-invocation mean.
	TotalTSCycles int64
	MeanCycles    float64
	// CoeffVar is the coefficient of variation of per-invocation times —
	// the irregularity signal.
	CoeffVar float64

	// ContextSet is the static analysis result; ContextArraysConst tells
	// whether every NeedConstArrays member stayed unchanged across the
	// run; Vars is the context-variable set after run-time-constant
	// elimination.
	ContextSet         *analysis.ContextSet
	ContextArraysConst bool
	Vars               []analysis.ContextVar
	// Contexts maps context key to stats (only when CBR is applicable).
	Contexts map[string]*ContextStat
	// DominantContext is the key with the largest total time.
	DominantContext string

	// Model is the merged component model; ModelVar its SSR/SST over the
	// whole profile run (MBR's accuracy signal); CAvg the average
	// component counts (paper Eq. 4).
	Model    *analysis.ComponentModel
	ModelVar float64
	CAvg     []float64

	// Effects is the TS's memory footprint for RBR save/restore.
	Effects *analysis.MemEffects
	// ModifiedInputElems is the number of elements RBR must save/restore.
	ModifiedInputElems int
}

// Run profiles b's tuning section on dataset ds and machine m.
func Run(b *bench.Benchmark, ds *bench.Dataset, m *machine.Machine) (*Profile, error) {
	p := &Profile{
		Benchmark: b.Name,
		Machine:   m.Name,
		Dataset:   ds.Name,
		Contexts:  map[string]*ContextStat{},
	}

	cs, err := analysis.GetContextSet(b.TS, b.Prog)
	if err != nil {
		return nil, fmt.Errorf("profiling %s: %w", b.Name, err)
	}
	p.ContextSet = cs
	p.Effects = analysis.Effects(b.TS, b.Prog)

	instr := analysis.Instrument(b.TS)
	prog := b.Prog.Clone()
	prog.AddFunc(instr)
	version, err := opt.Compile(prog, instr, opt.O3(), m)
	if err != nil {
		return nil, fmt.Errorf("profiling %s: compile: %w", b.Name, err)
	}

	rng := rand.New(rand.NewSource(b.Seed(17)))
	mem := sim.NewMemory(prog)
	if ds.Setup != nil {
		ds.Setup(mem, rng)
	}
	for _, arr := range p.Effects.ModifiedInput() {
		if a := mem.Get(arr); a != nil {
			p.ModifiedInputElems += len(a.Data)
		}
	}
	runner := sim.NewRunner(m, mem, b.Seed(23))

	// Checksum sampling for the run-time-constant array test.
	p.ContextArraysConst = true
	checksums := map[string]float64{}
	checkArrays := func() {
		for _, name := range cs.NeedConstArrays {
			a := mem.Get(name)
			if a == nil {
				continue
			}
			var sum float64
			for i, v := range a.Data {
				sum += v * float64(i+1)
			}
			if prev, ok := checksums[name]; ok && prev != sum {
				p.ContextArraysConst = false
			}
			checksums[name] = sum
		}
	}
	checkEvery := ds.NumInvocations / 32
	if checkEvery < 1 {
		checkEvery = 1
	}

	// Per-variable run-time-constant detection.
	firstVals := make(map[string]float64, len(cs.Vars))
	varying := make(map[string]bool, len(cs.Vars))

	times := make([]float64, 0, ds.NumInvocations)
	counters := make([][]float64, 0, ds.NumInvocations)
	keys := make([]string, 0, ds.NumInvocations)

	for i := 0; i < ds.NumInvocations; i++ {
		args := ds.Args(i, mem, rng)
		if cs.Applicable && i%checkEvery == 0 {
			checkArrays()
		}
		// Record raw context-variable values (pre-invocation state).
		if cs.Applicable {
			for _, v := range cs.Vars {
				val := contextVarValue(v, b, args, mem)
				name := v.String()
				if fv, ok := firstVals[name]; ok {
					if fv != val {
						varying[name] = true
					}
				} else {
					firstVals[name] = val
				}
			}
		}
		_, stats, err := runner.Run(version, args)
		if err != nil {
			return nil, fmt.Errorf("profiling %s: invocation %d: %w", b.Name, i, err)
		}
		times = append(times, float64(stats.Cycles))
		p.TotalTSCycles += stats.Cycles
		row := make([]float64, len(stats.Counters))
		for c, v := range stats.Counters {
			row[c] = float64(v)
		}
		counters = append(counters, row)
		if cs.Applicable {
			keys = append(keys, rawKey(cs.Vars, b, args, mem))
		}
	}
	p.Invocations = ds.NumInvocations
	p.MeanCycles = mean(times)
	p.CoeffVar = coeffVar(times)

	// Run-time-constant elimination (paper §2.2): context variables whose
	// values never changed are dropped; remaining ones define the context.
	if cs.Applicable && p.ContextArraysConst {
		for _, v := range cs.Vars {
			if varying[v.String()] {
				p.Vars = append(p.Vars, v)
			}
		}
		// Rebuild context keys over the reduced variable set.
		reduced := rebuildKeys(cs.Vars, p.Vars, keys)
		for i, k := range reduced {
			st := p.Contexts[k]
			if st == nil {
				st = &ContextStat{Key: k}
				p.Contexts[k] = st
			}
			st.Count++
			st.TotalCycles += int64(times[i])
		}
		var best *ContextStat
		for _, st := range p.Contexts {
			if best == nil || st.TotalCycles > best.TotalCycles ||
				(st.TotalCycles == best.TotalCycles && st.Key < best.Key) {
				best = st
			}
		}
		if best != nil {
			p.DominantContext = best.Key
		}
	}

	// MBR components and model fit.
	if len(counters) > 0 && len(counters[0]) > 0 {
		model, err := analysis.MergeComponents(counters)
		if err == nil {
			p.Model = model
			x := make([][]float64, len(counters))
			for i, row := range counters {
				intRow := make([]int64, len(row))
				for c, v := range row {
					intRow[c] = int64(v)
				}
				x[i] = model.CountsFor(intRow)
			}
			if res, err := regress.Solve(x, times); err == nil {
				p.ModelVar = res.VarRatio()
			} else {
				p.ModelVar = math.Inf(1)
			}
			p.CAvg = make([]float64, len(model.Components))
			for _, row := range x {
				for c, v := range row {
					p.CAvg[c] += v
				}
			}
			for c := range p.CAvg {
				p.CAvg[c] /= float64(len(x))
			}
		}
	}
	return p, nil
}

// contextVarValue reads one context variable's value for an invocation.
func contextVarValue(v analysis.ContextVar, b *bench.Benchmark, args []float64, mem *sim.Memory) float64 {
	switch v.Kind {
	case analysis.CtxParam:
		ai := 0
		for _, prm := range b.TS.Params {
			if prm.IsArray {
				continue
			}
			if prm.Name == v.Name {
				if ai < len(args) {
					return args[ai]
				}
				return 0
			}
			ai++
		}
	case analysis.CtxArrayElem:
		if a := mem.Get(v.Name); a != nil && v.Index >= 0 && v.Index < int64(len(a.Data)) {
			return a.Data[v.Index]
		}
	}
	return 0
}

// rawKey builds the full-variable context key for an invocation.
func rawKey(vars []analysis.ContextVar, b *bench.Benchmark, args []float64, mem *sim.Memory) string {
	key := ""
	for _, v := range vars {
		key += fmt.Sprintf("%x|", contextVarValue(v, b, args, mem))
	}
	return key
}

// rebuildKeys projects full-variable keys onto the reduced variable set.
func rebuildKeys(all, kept []analysis.ContextVar, keys []string) []string {
	keepIdx := make([]bool, len(all))
	for i, v := range all {
		for _, k := range kept {
			if v == k {
				keepIdx[i] = true
			}
		}
	}
	out := make([]string, len(keys))
	for i, k := range keys {
		parts := splitKey(k)
		red := ""
		for j, part := range parts {
			if j < len(keepIdx) && keepIdx[j] {
				red += part + "|"
			}
		}
		out[i] = red
	}
	return out
}

func splitKey(k string) []string {
	var parts []string
	start := 0
	for i := 0; i < len(k); i++ {
		if k[i] == '|' {
			parts = append(parts, k[start:i])
			start = i + 1
		}
	}
	return parts
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func coeffVar(xs []float64) float64 {
	m := mean(xs)
	if m == 0 || len(xs) < 2 {
		return 0
	}
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(xs)-1)) / m
}

// CBRKeyFor computes the runtime context key of an invocation over the
// profile's reduced variable set (used by the CBR rater during tuning).
func (p *Profile) CBRKeyFor(b *bench.Benchmark, args []float64, mem *sim.Memory) string {
	return rawKey(p.Vars, b, args, mem)
}

// StaticKeyFor computes the context key over the full static context
// variable set, before run-time-constant elimination. Online/adaptive
// tuning uses it: a variable that never changed during the profile run may
// well vary in production, and collapsing it would merge genuinely
// different contexts.
func (p *Profile) StaticKeyFor(b *bench.Benchmark, args []float64, mem *sim.Memory) string {
	return rawKey(p.ContextSet.Vars, b, args, mem)
}

// NumContexts returns the number of distinct contexts observed.
func (p *Profile) NumContexts() int { return len(p.Contexts) }

// DominantShare returns the fraction of invocations belonging to the
// dominant context (CBR's usable-sample rate).
func (p *Profile) DominantShare() float64 {
	st := p.Contexts[p.DominantContext]
	if st == nil || p.Invocations == 0 {
		return 0
	}
	return float64(st.Count) / float64(p.Invocations)
}
