package profiling

import (
	"math/rand"
	"testing"

	"peak/internal/bench"
	"peak/internal/ir"
	"peak/internal/irbuild"
	"peak/internal/machine"
	"peak/internal/sim"
)

// twoContextBenchmark: control flow depends on params n (varying between
// two values) and lim (a run-time constant), and data arrays do not feed
// control flow.
func twoContextBenchmark() *bench.Benchmark {
	prog := ir.NewProgram()
	prog.AddArray("pa", ir.F64, 64)
	b := irbuild.NewFunc("ts")
	b.ScalarParam("n", ir.I64).ScalarParam("lim", ir.I64).Local("s", ir.F64)
	fn := b.Body(
		b.For("i", b.I(0), b.V("n"), 1,
			b.If(b.Lt(b.V("i"), b.V("lim")),
				b.Set(b.V("s"), b.FAdd(b.V("s"), b.At("pa", b.V("i")))),
			),
		),
		b.Ret(b.V("s")),
	)
	prog.AddFunc(fn)
	mkDS := func(name string, inv int) *bench.Dataset {
		return &bench.Dataset{
			Name: name, NumInvocations: inv,
			Setup: func(mem *sim.Memory, rng *rand.Rand) {
				d := mem.Get("pa").Data
				for i := range d {
					d[i] = rng.Float64()
				}
			},
			Args: func(i int, mem *sim.Memory, rng *rand.Rand) []float64 {
				n := 16
				if i%4 == 0 {
					n = 48
				}
				return []float64{float64(n), 60} // lim never changes
			},
		}
	}
	return &bench.Benchmark{
		Name: "TWOCTX", TSName: "ts", Class: bench.FP,
		Prog: prog, TS: fn,
		Train: mkDS("train", 400), Ref: mkDS("ref", 800),
		NonTSCycles: 10_000, PaperInvocations: "(test)",
	}
}

func TestProfileContexts(t *testing.T) {
	b := twoContextBenchmark()
	p, err := Run(b, b.Train, machine.SPARCII())
	if err != nil {
		t.Fatal(err)
	}
	if p.Invocations != 400 {
		t.Errorf("invocations = %d, want 400", p.Invocations)
	}
	if !p.ContextSet.Applicable || !p.ContextArraysConst {
		t.Fatalf("CBR should be applicable: %s", p.ContextSet.Reason)
	}
	// lim never varies: run-time-constant elimination must drop it,
	// leaving n as the single context variable with two values.
	if len(p.Vars) != 1 || p.Vars[0].Name != "n" {
		t.Errorf("context vars after constant elimination = %v, want [n]", p.Vars)
	}
	if p.NumContexts() != 2 {
		t.Errorf("contexts = %d, want 2", p.NumContexts())
	}
	// Dominant context by total time: n=16 has 300 invocations but n=48
	// is 3x the work per invocation with 100 invocations — close; just
	// check share consistency.
	if p.DominantShare() <= 0 || p.DominantShare() > 1 {
		t.Errorf("dominant share = %v", p.DominantShare())
	}
	if p.TotalTSCycles <= 0 || p.MeanCycles <= 0 {
		t.Error("timing not collected")
	}
	if p.Model == nil {
		t.Fatal("no component model")
	}
	if p.Effects == nil || p.ModifiedInputElems != 0 {
		// ts reads pa but never writes it: nothing to save for RBR.
		t.Errorf("ModifiedInputElems = %d, want 0", p.ModifiedInputElems)
	}
}

func TestProfileDetectsMutatedControlArrays(t *testing.T) {
	prog := ir.NewProgram()
	prog.AddArray("tab", ir.I64, 32)
	b := irbuild.NewFunc("ts")
	b.ScalarParam("k", ir.I64).Local("s", ir.I64)
	fn := b.Body(
		b.If(b.Gt(b.At("tab", b.V("k")), b.I(0)),
			b.Set(b.V("s"), b.I(1)),
		),
		b.Ret(b.V("s")),
	)
	prog.AddFunc(fn)
	ds := &bench.Dataset{
		Name: "train", NumInvocations: 200,
		Setup: func(mem *sim.Memory, rng *rand.Rand) {},
		Args: func(i int, mem *sim.Memory, rng *rand.Rand) []float64 {
			mem.Get("tab").Data[rng.Intn(32)] = float64(rng.Intn(3) - 1)
			return []float64{float64(rng.Intn(32))}
		},
	}
	bm := &bench.Benchmark{
		Name: "MUT", TSName: "ts", Class: bench.Int,
		Prog: prog, TS: fn, Train: ds, Ref: ds,
		NonTSCycles: 1000,
	}
	p, err := Run(bm, ds, machine.SPARCII())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.ContextSet.NeedConstArrays) == 0 {
		t.Fatal("tab should be a needed-constant array")
	}
	if p.ContextArraysConst {
		t.Error("mutated control array not detected")
	}
}

func TestCBRKeyMatchesProfileKeys(t *testing.T) {
	b := twoContextBenchmark()
	m := machine.SPARCII()
	p, err := Run(b, b.Train, m)
	if err != nil {
		t.Fatal(err)
	}
	mem := sim.NewMemory(b.Prog)
	key16 := p.CBRKeyFor(b, []float64{16, 60}, mem)
	key48 := p.CBRKeyFor(b, []float64{48, 60}, mem)
	if key16 == key48 {
		t.Error("distinct contexts produced identical keys")
	}
	if _, ok := p.Contexts[key16]; !ok {
		t.Errorf("runtime key %q not among profiled contexts %v", key16, keysOf(p))
	}
	if _, ok := p.Contexts[key48]; !ok {
		t.Errorf("runtime key %q not among profiled contexts", key48)
	}
}

func keysOf(p *Profile) []string {
	var out []string
	for k := range p.Contexts {
		out = append(out, k)
	}
	return out
}
