package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// --- RejectOutliers properties ----------------------------------------------

// Property: RejectOutliers never mutates its input slice.
func TestPropRejectOutliersDoesNotMutateInput(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(80)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
			if rng.Float64() < 0.15 {
				xs[i] *= 40
			}
		}
		orig := append([]float64(nil), xs...)
		RejectOutliers(xs, 2+rng.Float64()*4)
		for i := range xs {
			if xs[i] != orig[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the kept multiset is permutation-invariant — shuffling the
// input changes at most the order of what survives, never the contents,
// the rejection count, or the abandoned signal.
func TestPropRejectOutliersPermutationInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(60)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
			if rng.Float64() < 0.1 {
				xs[i] *= 60
			}
		}
		k := 2 + rng.Float64()*4
		kept1, rej1, ab1 := RejectOutliers(xs, k)

		perm := append([]float64(nil), xs...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		kept2, rej2, ab2 := RejectOutliers(perm, k)

		if rej1 != rej2 || ab1 != ab2 || len(kept1) != len(kept2) {
			return false
		}
		s1 := append([]float64(nil), kept1...)
		s2 := append([]float64(nil), kept2...)
		sort.Float64s(s1)
		sort.Float64s(s2)
		for i := range s1 {
			if s1[i] != s2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRejectOutliersAbandonedSignal(t *testing.T) {
	// Evenly spread samples with a vanishing k: every point is farther than
	// k·σ from the median, so fewer than 2 would survive — the filter must
	// give up and say so rather than claim a clean window.
	xs := []float64{0, 100, 200, 300}
	kept, rejected, abandoned := RejectOutliers(xs, 0.0001)
	if !abandoned {
		t.Fatalf("kept=%d rejected=%d: filter did not report abandonment", len(kept), rejected)
	}
	if rejected != 0 || len(kept) != len(xs) {
		t.Errorf("abandoned filter must return the input unchanged (kept=%d rejected=%d)",
			len(kept), rejected)
	}
	// A clean rejection is not abandoned.
	if _, _, ab := RejectOutliers([]float64{10, 10.1, 9.9, 10.05, 500}, 4); ab {
		t.Error("normal rejection reported abandoned")
	}
}

// --- Welford vs batch property ----------------------------------------------

// Property: Welford's running mean/variance agree with the batch formulas
// to 1e-9 over random streams (satellite requirement).
func TestPropWelfordMatchesBatch(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(500)
		scale := math.Exp(rng.Float64()*8 - 4)
		shift := rng.NormFloat64() * 100
		xs := make([]float64, n)
		var w Welford
		for i := range xs {
			xs[i] = rng.NormFloat64()*scale + shift
			w.Add(xs[i])
		}
		mRef, vRef := Mean(xs), Variance(xs)
		tol := 1e-9 * (1 + math.Abs(mRef))
		vTol := 1e-9 * (1 + vRef)
		return math.Abs(w.Mean()-mRef) < tol && math.Abs(w.Variance()-vRef) < vTol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// --- Student-t / Welch machinery --------------------------------------------

func TestTCriticalAgainstTables(t *testing.T) {
	cases := []struct {
		df   float64
		conf float64
		want float64
	}{
		{1, 0.95, 12.7062},
		{2, 0.95, 4.3027},
		{5, 0.95, 2.5706},
		{10, 0.95, 2.2281},
		{30, 0.95, 2.0423},
		{100, 0.95, 1.9840},
		{10, 0.99, 3.1693},
		{30, 0.99, 2.7500},
		{39, 0.95, 2.0227},
	}
	for _, c := range cases {
		got := TCritical(c.df, c.conf)
		if math.Abs(got-c.want) > 2e-4 {
			t.Errorf("TCritical(%v, %v) = %v, want %v", c.df, c.conf, got, c.want)
		}
	}
	// Monotone in df toward the normal quantile.
	if TCritical(5, 0.95) <= TCritical(50, 0.95) {
		t.Error("t critical must shrink as df grows")
	}
	if z := TCritical(1e7, 0.95); math.Abs(z-1.95996) > 1e-3 {
		t.Errorf("TCritical(1e7, .95) = %v, want ~1.96", z)
	}
}

func TestWelchTKnownCase(t *testing.T) {
	// Worked example with unequal variances; reference values computed
	// independently from the textbook formulas.
	a := []float64{27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1, 21.9, 22.6, 23.1, 19.6, 19.0, 21.7, 21.4}
	b := []float64{27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0, 24.8, 20.2, 21.9, 22.1, 22.9, 30.5, 24.1}
	tStat, df := WelchT(Mean(a), Variance(a), len(a), Mean(b), Variance(b), len(b))
	if math.Abs(tStat-(-2.8353)) > 0.001 {
		t.Errorf("Welch t = %v, want ≈ -2.8353", tStat)
	}
	if math.Abs(df-27.8806) > 0.01 {
		t.Errorf("Welch df = %v, want ≈ 27.8806", df)
	}
	if !WelchSignificant(Mean(a), Variance(a), len(a), Mean(b), Variance(b), len(b), 0.95) {
		t.Error("|t|=2.84 at df≈27.9 must be significant at 95%")
	}
	if WelchSignificant(Mean(a), Variance(a), len(a), Mean(b), Variance(b), len(b), 0.999) {
		t.Error("|t|=2.84 at df≈27.9 must not be significant at 99.9%")
	}

	// Exact analytic case from summary statistics: a = v1/n1 = 0.25,
	// b = v2/n2 = 0.25 ⇒ t = 1/√0.5 = √2 and df = 0.25·168 = 42 exactly.
	tStat, df = WelchT(10, 4, 16, 9, 9, 36)
	if math.Abs(tStat-math.Sqrt2) > 1e-12 {
		t.Errorf("analytic case t = %v, want √2", tStat)
	}
	if math.Abs(df-42) > 1e-9 {
		t.Errorf("analytic case df = %v, want 42", df)
	}
}

func TestWelchTDegenerateInputs(t *testing.T) {
	if tStat, df := WelchT(1, 0, 1, 2, 0, 1); tStat != 0 || df != 1 {
		t.Errorf("tiny samples: t=%v df=%v, want 0/1", tStat, df)
	}
	if tStat, _ := WelchT(5, 0, 10, 5, 0, 10); tStat != 0 {
		t.Errorf("identical zero-variance means: t=%v, want 0", tStat)
	}
	if tStat, _ := WelchT(6, 0, 10, 5, 0, 10); !math.IsInf(tStat, 1) {
		t.Errorf("distinct zero-variance means: t=%v, want +Inf", tStat)
	}
	if WelchSignificant(1, 1, 1, 2, 1, 1, 0.95) {
		t.Error("single-point samples can never be significant")
	}
}

// Welch-CI coverage on synthetic known-mean data (satellite requirement):
// the conf-level Student-t interval must contain the true mean in ≈ conf
// of repeated experiments.
func TestMeanCICoverage(t *testing.T) {
	const (
		trueMean = 5.0
		sd       = 2.0
		n        = 20
		reps     = 2000
		conf     = 0.95
	)
	rng := rand.New(rand.NewSource(7))
	covered := 0
	for r := 0; r < reps; r++ {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = trueMean + rng.NormFloat64()*sd
		}
		half := MeanCIHalf(Variance(xs), n, conf)
		if math.Abs(Mean(xs)-trueMean) <= half {
			covered++
		}
	}
	cov := float64(covered) / reps
	if cov < 0.93 || cov > 0.975 {
		t.Errorf("95%% CI covered the true mean in %.1f%% of %d experiments", 100*cov, reps)
	}
}

func TestMeanCIHalfEdge(t *testing.T) {
	if !math.IsInf(MeanCIHalf(1, 1, 0.95), 1) {
		t.Error("n<2 must yield an infinite interval")
	}
	// Wider confidence ⇒ wider interval; more samples ⇒ narrower.
	if MeanCIHalf(1, 10, 0.99) <= MeanCIHalf(1, 10, 0.95) {
		t.Error("99% interval must be wider than 95%")
	}
	if MeanCIHalf(1, 100, 0.95) >= MeanCIHalf(1, 10, 0.95) {
		t.Error("interval must shrink with sample count")
	}
}
