package stats

import (
	"math"
	"testing"
	"testing/quick"
)

// Property: RatingError's relative form is scale-invariant — multiplying
// every rating by a constant leaves (μ, σ) unchanged — which is exactly why
// the paper can compare consistency across tuning sections of wildly
// different absolute speeds.
func TestQuickRatingErrorScaleInvariant(t *testing.T) {
	f := func(seed int64) bool {
		xs := make([]float64, 12)
		s := uint64(seed)
		for i := range xs {
			s = s*6364136223846793005 + 1442695040888963407
			xs[i] = 100 + float64(s%1000)/10
		}
		mu1, sd1 := RatingError(xs, true)
		scaled := make([]float64, len(xs))
		for i, x := range xs {
			scaled[i] = x * 37.5
		}
		mu2, sd2 := RatingError(scaled, true)
		return math.Abs(mu1-mu2) < 1e-12 && math.Abs(sd1-sd2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the absolute (RBR) form is translation-sensitive in exactly the
// Eq.-8 way: shifting all ratings by d shifts μ by d and leaves σ alone.
func TestQuickRatingErrorRBRShift(t *testing.T) {
	f := func(seed int64) bool {
		xs := make([]float64, 10)
		s := uint64(seed)
		for i := range xs {
			s = s*2862933555777941757 + 3037000493
			xs[i] = 1 + float64(int64(s%200)-100)/10000
		}
		mu1, sd1 := RatingError(xs, false)
		shifted := make([]float64, len(xs))
		for i, x := range xs {
			shifted[i] = x + 0.05
		}
		mu2, sd2 := RatingError(shifted, false)
		return math.Abs((mu2-mu1)-0.05) < 1e-12 && math.Abs(sd1-sd2) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Welford must match the batch computation under adversarial magnitudes
// (catastrophic-cancellation check).
func TestWelfordNumericalStability(t *testing.T) {
	var w Welford
	base := 1e9
	vals := []float64{base + 1, base + 2, base + 3, base + 4}
	for _, v := range vals {
		w.Add(v)
	}
	if math.Abs(w.Mean()-(base+2.5)) > 1e-6 {
		t.Errorf("mean = %v", w.Mean())
	}
	// Exact variance of {1,2,3,4} is 5/3.
	if math.Abs(w.Variance()-5.0/3.0) > 1e-6 {
		t.Errorf("variance = %v, want %v", w.Variance(), 5.0/3.0)
	}
}
