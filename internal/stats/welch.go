package stats

import "math"

// This file implements the confidence-interval side of the rating
// machinery, following Touati's critique of mean-based speedup comparison
// ("Towards a Statistical Methodology to Evaluate Program Speedups"):
// two noisy sample sets should be compared with Welch's unequal-variance
// t-statistic and Student-t confidence intervals, not by raw means.

// WelchT returns Welch's t-statistic and the Welch–Satterthwaite degrees
// of freedom for the difference of means of two independent samples given
// their summary statistics (mean, unbiased variance, size). Either sample
// smaller than 2 yields t = 0, df = 1 (no evidence). Identical means with
// zero pooled standard error yield t = 0; distinct means with zero pooled
// standard error yield t = ±Inf.
func WelchT(m1, v1 float64, n1 int, m2, v2 float64, n2 int) (t, df float64) {
	if n1 < 2 || n2 < 2 {
		return 0, 1
	}
	a := v1 / float64(n1)
	b := v2 / float64(n2)
	se2 := a + b
	if se2 <= 0 {
		if m1 == m2 {
			return 0, 1
		}
		return math.Inf(1) * sign(m1-m2), 1
	}
	t = (m1 - m2) / math.Sqrt(se2)
	df = se2 * se2 / (a*a/float64(n1-1) + b*b/float64(n2-1))
	if df < 1 {
		df = 1
	}
	return t, df
}

// WelchSignificant reports whether the two summarized samples' means
// differ at two-sided confidence level conf (e.g. 0.95).
func WelchSignificant(m1, v1 float64, n1 int, m2, v2 float64, n2 int, conf float64) bool {
	if n1 < 2 || n2 < 2 {
		return false
	}
	t, df := WelchT(m1, v1, n1, m2, v2, n2)
	return math.Abs(t) >= TCritical(df, conf)
}

// MeanCIHalf returns the half-width of the two-sided Student-t confidence
// interval (level conf) for the mean of a sample with unbiased variance v
// and n points. Fewer than 2 points yield +Inf (no interval).
func MeanCIHalf(v float64, n int, conf float64) float64 {
	if n < 2 {
		return math.Inf(1)
	}
	return TCritical(float64(n-1), conf) * math.Sqrt(v/float64(n))
}

// TCritical returns the two-sided Student-t critical value t* with
// P(|T_df| <= t*) = conf. df may be fractional (Welch–Satterthwaite).
// Computed by bisection on the exact t CDF (regularized incomplete beta),
// accurate to ~1e-10 across the df range the raters use.
func TCritical(df, conf float64) float64 {
	if df < 1 {
		df = 1
	}
	if conf <= 0 {
		return 0
	}
	if conf >= 1 {
		return math.Inf(1)
	}
	target := 0.5 + conf/2 // one-sided upper-tail CDF target
	lo, hi := 0.0, 2.0
	for tCDF(hi, df) < target {
		hi *= 2
		if hi > 1e9 {
			return hi
		}
	}
	for i := 0; i < 200 && hi-lo > 1e-12*(1+hi); i++ {
		mid := (lo + hi) / 2
		if tCDF(mid, df) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// tCDF returns P(T_df <= t) for Student's t-distribution.
func tCDF(t, df float64) float64 {
	if t == 0 {
		return 0.5
	}
	x := df / (df + t*t)
	p := regIncBeta(df/2, 0.5, x) / 2
	if t > 0 {
		return 1 - p
	}
	return p
}

// regIncBeta is the regularized incomplete beta function I_x(a, b),
// evaluated with the continued-fraction expansion (Lentz's method).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lga, _ := math.Lgamma(a)
	lgb, _ := math.Lgamma(b)
	lgab, _ := math.Lgamma(a + b)
	front := math.Exp(lgab - lga - lgb + a*math.Log(x) + b*math.Log1p(-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta
// function by the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-15
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}
