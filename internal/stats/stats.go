// Package stats provides the statistics machinery of the paper's rating
// process (§3): windowed mean/variance accumulation, outlier elimination,
// and the rating-error metrics of Table 1 (Eqs. 7–10).
package stats

import (
	"math"
	"sort"
)

// Welford accumulates mean and variance incrementally.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one sample.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of samples.
func (w *Welford) N() int { return w.n }

// Mean returns the sample mean (0 for no samples).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 for fewer than 2 samples).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// RelStdDev returns StdDev/|Mean| (coefficient of variation), or +Inf when
// the mean is zero.
func (w *Welford) RelStdDev() float64 {
	if w.mean == 0 {
		return math.Inf(1)
	}
	return w.StdDev() / math.Abs(w.mean)
}

// Reset clears the accumulator.
func (w *Welford) Reset() { *w = Welford{} }

// Mean returns the mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the median of xs (0 for empty input). xs is not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// RejectOutliers removes measurements "far away from the average", which
// "may result from system perturbations, such as interrupts" (paper §3).
// It uses a robust median-based filter: samples farther than k times the
// median absolute deviation (scaled to σ) from the median are dropped.
// It returns the surviving samples (order preserved, xs never modified)
// and the number rejected. With fewer than 4 samples it returns the input
// unchanged.
//
// When the filter would leave fewer than 2 survivors it gives up and
// returns the full input with rejected = 0 and abandoned = true: the
// window is so contaminated that "outlier" has no meaning, and callers
// (Rating.Abandoned) must not mistake the give-up for a clean window.
func RejectOutliers(xs []float64, k float64) (kept []float64, rejected int, abandoned bool) {
	if len(xs) < 4 {
		return xs, 0, false
	}
	med := Median(xs)
	devs := make([]float64, len(xs))
	for i, x := range xs {
		devs[i] = math.Abs(x - med)
	}
	mad := Median(devs)
	if mad == 0 {
		// Fall back to a relative threshold for near-identical samples.
		mad = math.Abs(med) * 1e-6
		if mad == 0 {
			return xs, 0, false
		}
	}
	sigma := 1.4826 * mad // MAD→σ for a normal distribution
	kept = make([]float64, 0, len(xs))
	for _, x := range xs {
		if math.Abs(x-med) <= k*sigma {
			kept = append(kept, x)
		} else {
			rejected++
		}
	}
	if len(kept) < 2 { // never reject almost everything
		return xs, 0, true
	}
	return kept, rejected, false
}

// RatingError computes the paper's rating-error statistics (Eqs. 8–10) for
// a vector of sampled ratings V_i. For CBR/MBR the error is X_i = V_i/mean−1
// (ideal = the grand mean); for RBR the error is X_i = V_i − 1 (ideal = 1,
// since the experimental version equals the base). relative selects the
// former.
func RatingError(ratings []float64, relative bool) (mu, sigma float64) {
	if len(ratings) == 0 {
		return 0, 0
	}
	xs := make([]float64, len(ratings))
	if relative {
		vbar := Mean(ratings)
		if vbar == 0 {
			return 0, 0
		}
		for i, v := range ratings {
			xs[i] = v/vbar - 1
		}
	} else {
		for i, v := range ratings {
			xs[i] = v - 1
		}
	}
	return Mean(xs), StdDev(xs)
}
