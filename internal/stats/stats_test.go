package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWelfordMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 500)
	var w Welford
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
		w.Add(xs[i])
	}
	if math.Abs(w.Mean()-Mean(xs)) > 1e-9 {
		t.Errorf("Welford mean %v != batch mean %v", w.Mean(), Mean(xs))
	}
	if math.Abs(w.Variance()-Variance(xs)) > 1e-9 {
		t.Errorf("Welford variance %v != batch variance %v", w.Variance(), Variance(xs))
	}
	if w.N() != len(xs) {
		t.Errorf("N = %d, want %d", w.N(), len(xs))
	}
	w.Reset()
	if w.N() != 0 || w.Mean() != 0 || w.Variance() != 0 {
		t.Error("Reset did not clear the accumulator")
	}
}

func TestWelfordEdgeCases(t *testing.T) {
	var w Welford
	if w.Variance() != 0 || w.StdDev() != 0 {
		t.Error("empty accumulator must have zero variance")
	}
	w.Add(5)
	if w.Mean() != 5 || w.Variance() != 0 {
		t.Errorf("single sample: mean=%v var=%v", w.Mean(), w.Variance())
	}
	if !math.IsInf(new(Welford).RelStdDev(), 1) {
		t.Error("RelStdDev of zero mean must be +Inf")
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{3}, 3},
		{[]float64{3, 1}, 2},
		{[]float64{5, 1, 3}, 3},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	// Median must not mutate its input.
	in := []float64{9, 1, 5}
	Median(in)
	if in[0] != 9 || in[1] != 1 || in[2] != 5 {
		t.Error("Median mutated its input")
	}
}

func TestRejectOutliers(t *testing.T) {
	// A clear outlier among tight samples is rejected (paper §3:
	// "measurement outliers ... may result from system perturbations").
	xs := []float64{100, 101, 99, 100.5, 99.5, 100.2, 400}
	kept, rejected, _ := RejectOutliers(xs, 4)
	if rejected != 1 || len(kept) != 6 {
		t.Fatalf("rejected=%d kept=%d, want 1/6", rejected, len(kept))
	}
	for _, x := range kept {
		if x == 400 {
			t.Error("outlier survived")
		}
	}
}

func TestRejectOutliersSmallAndUniform(t *testing.T) {
	xs := []float64{1, 2, 3}
	kept, rejected, _ := RejectOutliers(xs, 3)
	if rejected != 0 || len(kept) != 3 {
		t.Error("fewer than 4 samples must pass through unchanged")
	}
	same := []float64{7, 7, 7, 7, 7}
	kept, rejected, _ = RejectOutliers(same, 3)
	if rejected != 0 || len(kept) != 5 {
		t.Error("identical samples must pass through unchanged")
	}
	zeros := []float64{0, 0, 0, 0}
	kept, rejected, _ = RejectOutliers(zeros, 3)
	if rejected != 0 || len(kept) != 4 {
		t.Error("all-zero samples must pass through unchanged")
	}
}

func TestRatingError(t *testing.T) {
	// RBR form (Eq. 8, bottom): X_i = V_i - 1.
	mu, sigma := RatingError([]float64{1.0, 1.02, 0.98}, false)
	if math.Abs(mu) > 1e-9 {
		t.Errorf("RBR mu = %v, want 0", mu)
	}
	if math.Abs(sigma-0.02) > 1e-9 {
		t.Errorf("RBR sigma = %v, want 0.02", sigma)
	}
	// CBR/MBR form (Eq. 8, top): X_i = V_i/mean - 1, so mu is exactly 0.
	mu, sigma = RatingError([]float64{100, 104, 96}, true)
	if math.Abs(mu) > 1e-12 {
		t.Errorf("relative mu = %v, want 0", mu)
	}
	if sigma <= 0 {
		t.Errorf("relative sigma = %v, want > 0", sigma)
	}
	if mu, sigma = RatingError(nil, true); mu != 0 || sigma != 0 {
		t.Error("empty rating vector must give zeros")
	}
}

// Property: outlier rejection never increases the spread and never removes
// more than it keeps.
func TestQuickRejectOutliersInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(60)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
			if rng.Float64() < 0.1 {
				xs[i] *= 50 // inject outliers
			}
		}
		kept, rejected, _ := RejectOutliers(xs, 3.5)
		if len(kept)+rejected != n && rejected != 0 {
			return false
		}
		if len(kept) < 2 {
			return false
		}
		return StdDev(kept) <= StdDev(xs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: variance is translation invariant and scales quadratically.
func TestQuickVarianceProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		xs := make([]float64, n)
		shifted := make([]float64, n)
		scaled := make([]float64, n)
		shift := rng.Float64()*100 - 50
		scale := rng.Float64()*4 + 0.5
		for i := range xs {
			xs[i] = rng.NormFloat64() * 5
			shifted[i] = xs[i] + shift
			scaled[i] = xs[i] * scale
		}
		v := Variance(xs)
		tol := 1e-7 * (1 + v)
		return math.Abs(Variance(shifted)-v) < tol &&
			math.Abs(Variance(scaled)-v*scale*scale) < tol*scale*scale*10+1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
