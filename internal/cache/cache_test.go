package cache

import (
	"math"
	"testing"
	"testing/quick"

	"peak/internal/machine"
)

func newTestHierarchy() *Hierarchy {
	m := machine.SPARCII()
	return NewHierarchy(m)
}

func TestColdMissWarmHit(t *testing.T) {
	h := newTestHierarchy()
	m := machine.SPARCII()
	miss := h.Access(0x1000)
	if miss != m.L1.HitLatency+m.L2.HitLatency+m.MemLatency {
		t.Errorf("cold access latency = %d, want full miss %d",
			miss, m.L1.HitLatency+m.L2.HitLatency+m.MemLatency)
	}
	hit := h.Access(0x1000)
	if hit != m.L1.HitLatency {
		t.Errorf("warm access latency = %d, want L1 hit %d", hit, m.L1.HitLatency)
	}
	// Same line, different word.
	hit2 := h.Access(0x1008)
	if hit2 != m.L1.HitLatency {
		t.Errorf("same-line access latency = %d, want L1 hit", hit2)
	}
}

func TestL2BackstopAfterL1Eviction(t *testing.T) {
	h := newTestHierarchy()
	m := machine.SPARCII()
	// SPARC L1 is 16KB direct-mapped with 32B lines: two addresses 16KB
	// apart conflict in L1 but coexist in the 4-way 512KB L2.
	a, b := uint64(0x10000), uint64(0x10000+16<<10)
	h.Access(a)
	h.Access(b) // evicts a from L1
	lat := h.Access(a)
	if lat != m.L1.HitLatency+m.L2.HitLatency {
		t.Errorf("L1-conflict access latency = %d, want L2 hit %d",
			lat, m.L1.HitLatency+m.L2.HitLatency)
	}
}

func TestResetClearsState(t *testing.T) {
	h := newTestHierarchy()
	h.Access(0x40)
	if hits, misses, _, _ := h.Stats(); hits != 0 || misses != 1 {
		t.Fatalf("stats after one access: %d/%d", hits, misses)
	}
	h.Reset()
	if hits, misses, _, _ := h.Stats(); hits != 0 || misses != 0 {
		t.Error("Reset did not clear stats")
	}
	m := machine.SPARCII()
	if lat := h.Access(0x40); lat != m.L1.HitLatency+m.L2.HitLatency+m.MemLatency {
		t.Error("Reset did not invalidate lines")
	}
}

func TestLRUWithinSet(t *testing.T) {
	// Build a tiny 2-way cache and exercise LRU: A, B, C (same set) — C
	// evicts A (least recently used), so B must still hit.
	g := machine.CacheGeometry{SizeBytes: 4 * 64, LineBytes: 64, Assoc: 2, HitLatency: 1}
	l := newLevel(g)
	setStride := uint64(g.LineBytes * l.numSets)
	a, b, c := uint64(0), setStride, 2*setStride
	l.access(a)
	l.access(b)
	l.access(a) // refresh a
	l.access(c) // evicts b (LRU)
	if !l.access(a) {
		t.Error("a should still be resident")
	}
	if l.access(b) {
		t.Error("b should have been evicted")
	}
}

// Regression test for the LRU tick width: with a uint32 tick, crossing
// 2^32 accesses wrapped the counter to 0, so every *newer* access stamped a
// smaller lru value than the resident lines and the most-recently-used line
// became the eviction victim. The tick is uint64 now; this test pins the
// counter just below the old 32-bit boundary on a tiny 2-way cache and
// checks that recency ordering survives crossing it.
func TestLRUTickWraparound(t *testing.T) {
	g := machine.CacheGeometry{SizeBytes: 4 * 64, LineBytes: 64, Assoc: 2, HitLatency: 1}
	l := newLevel(g)
	setStride := uint64(g.LineBytes * l.numSets)
	a, b, c := uint64(0), setStride, 2*setStride

	l.tick = math.MaxUint32 - 1
	l.access(a) // tick = MaxUint32
	l.access(b) // tick = MaxUint32 + 1: wrapped to 0 under uint32
	if l.tick != uint64(math.MaxUint32)+1 {
		t.Fatalf("tick = %d, want %d (no wrap)", l.tick, uint64(math.MaxUint32)+1)
	}
	// a is the least recently used line, so c must evict a — under the
	// wrapped 32-bit tick, b (lru stamp 0) was the false victim.
	l.access(c)
	if !l.access(b) {
		t.Error("b should still be resident after crossing the 32-bit boundary")
	}
	if l.access(a) {
		t.Error("a should have been evicted as the true LRU line")
	}
}

// Property: hit/miss accounting is consistent and repeated access to a
// bounded working set eventually always hits.
func TestQuickAccountingConsistent(t *testing.T) {
	f := func(seed int64) bool {
		h := newTestHierarchy()
		addrs := make([]uint64, 16)
		s := uint64(seed)
		for i := range addrs {
			s = s*6364136223846793005 + 1442695040888963407
			addrs[i] = s % (8 << 10)
		}
		var accesses int64
		for round := 0; round < 4; round++ {
			for _, a := range addrs {
				h.Access(a)
				accesses++
			}
		}
		h1, m1, _, _ := h.Stats()
		if h1+m1 != accesses {
			return false
		}
		// Final round over a 8KB working set must be all L1 hits.
		for _, a := range addrs {
			m := machine.SPARCII()
			if h.Access(a) != m.L1.HitLatency {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
