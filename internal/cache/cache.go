// Package cache implements a two-level set-associative data-cache simulator
// with LRU replacement.
//
// Cache state persists across executions within one tuning-section
// invocation: the first timed execution of a version warms the cache for the
// second, which is exactly the bias the paper's improved RBR method corrects
// with a preconditioning run (paper §2.4.2).
package cache

import "peak/internal/machine"

// line's lru stamp and level's tick are 64-bit on purpose: long tuning runs
// reuse one Hierarchy across billions of accesses, and a 32-bit tick wraps
// after ~4.3e9 — after which fresh lines would stamp *small* values and be
// evicted as if least-recently used, silently degrading LRU to near-random
// replacement. See TestLRUTickWraparound.
type line struct {
	tag   uint64
	valid bool
	lru   uint64
}

type level struct {
	geom     machine.CacheGeometry
	sets     [][]line
	numSets  int
	lineBits uint
	tick     uint64

	hits, misses int64
}

func newLevel(g machine.CacheGeometry) *level {
	if g.Assoc < 1 {
		g.Assoc = 1
	}
	numSets := g.SizeBytes / (g.LineBytes * g.Assoc)
	if numSets < 1 {
		numSets = 1
	}
	lineBits := uint(0)
	for 1<<lineBits < g.LineBytes {
		lineBits++
	}
	sets := make([][]line, numSets)
	backing := make([]line, numSets*g.Assoc)
	for i := range sets {
		sets[i] = backing[i*g.Assoc : (i+1)*g.Assoc]
	}
	return &level{geom: g, sets: sets, numSets: numSets, lineBits: lineBits}
}

// access returns true on hit, installing the line otherwise.
func (l *level) access(addr uint64) bool {
	l.tick++
	lineAddr := addr >> l.lineBits
	set := l.sets[lineAddr%uint64(l.numSets)]
	tag := lineAddr / uint64(l.numSets)
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = l.tick
			l.hits++
			return true
		}
		if !set[i].valid {
			victim = i
		} else if set[victim].valid && set[i].lru < set[victim].lru {
			victim = i
		}
	}
	l.misses++
	set[victim] = line{tag: tag, valid: true, lru: l.tick}
	return false
}

func (l *level) reset() {
	for i := range l.sets {
		for j := range l.sets[i] {
			l.sets[i][j] = line{}
		}
	}
	l.tick, l.hits, l.misses = 0, 0, 0
}

// Hierarchy is an L1+L2 data cache hierarchy in front of main memory.
type Hierarchy struct {
	l1, l2     *level
	memLatency int64
}

// NewHierarchy builds the hierarchy described by m.
func NewHierarchy(m *machine.Machine) *Hierarchy {
	return &Hierarchy{
		l1:         newLevel(m.L1),
		l2:         newLevel(m.L2),
		memLatency: m.MemLatency,
	}
}

// Access simulates a data access to addr (byte address) and returns its
// latency in cycles. Writes are modeled write-allocate, same latency.
func (h *Hierarchy) Access(addr uint64) int64 {
	if h.l1.access(addr) {
		return h.l1.geom.HitLatency
	}
	if h.l2.access(addr) {
		return h.l1.geom.HitLatency + h.l2.geom.HitLatency
	}
	return h.l1.geom.HitLatency + h.l2.geom.HitLatency + h.memLatency
}

// Reset invalidates all lines and clears statistics.
func (h *Hierarchy) Reset() {
	h.l1.reset()
	h.l2.reset()
}

// Stats reports (hits, misses) per level.
func (h *Hierarchy) Stats() (l1Hits, l1Misses, l2Hits, l2Misses int64) {
	return h.l1.hits, h.l1.misses, h.l2.hits, h.l2.misses
}
