// Package cache implements a two-level set-associative data-cache simulator
// with LRU replacement.
//
// Cache state persists across executions within one tuning-section
// invocation: the first timed execution of a version warms the cache for the
// second, which is exactly the bias the paper's improved RBR method corrects
// with a preconditioning run (paper §2.4.2).
package cache

import "peak/internal/machine"

// A Line is one cache line slot. It stores the full line address plus one
// (so key 0 means "invalid") rather than a tag/valid pair: two line
// addresses that map to the same set have equal tags iff they are equal, so
// comparing whole keys is equivalent to comparing tags — and it removes the
// tag division from the hot path. The type is exported only as an opaque
// MRU hint token for AccessLine/AccessMiss; its fields are not.
//
// The lru stamp and the level's tick are 64-bit on purpose: long tuning
// runs reuse one Hierarchy across billions of accesses, and a 32-bit tick
// wraps after ~4.3e9 — after which fresh lines would stamp *small* values
// and be evicted as if least-recently used, silently degrading LRU to
// near-random replacement. See TestLRUTickWraparound.
type Line struct {
	key uint64 // lineAddr+1; 0 = invalid
	lru uint64
}

type level struct {
	geom     machine.CacheGeometry
	sets     [][]Line
	backing  []Line // the sets' shared storage, set i at [i*Assoc, (i+1)*Assoc)
	last     *Line  // most recently touched line; self-validating fast path
	numSets  int
	setMask  uint64 // numSets-1 when numSets is a power of two, else 0
	lineBits uint
	tick     uint64
	// dm marks a direct-mapped level with a power-of-two set count, where
	// the set walk collapses to one compare (walk1).
	dm bool

	hits, misses int64
}

func newLevel(g machine.CacheGeometry) *level {
	if g.Assoc < 1 {
		g.Assoc = 1
	}
	numSets := g.SizeBytes / (g.LineBytes * g.Assoc)
	if numSets < 1 {
		numSets = 1
	}
	lineBits := uint(0)
	for 1<<lineBits < g.LineBytes {
		lineBits++
	}
	var setMask uint64
	if numSets&(numSets-1) == 0 {
		setMask = uint64(numSets - 1)
	}
	sets := make([][]Line, numSets)
	backing := make([]Line, numSets*g.Assoc)
	for i := range sets {
		sets[i] = backing[i*g.Assoc : (i+1)*g.Assoc]
	}
	return &level{geom: g, sets: sets, backing: backing, last: &invalidLine,
		numSets: numSets, setMask: setMask, lineBits: lineBits,
		dm: g.Assoc == 1 && (setMask != 0 || numSets == 1)}
}

// invalidLine is a shared sentinel for levels with no MRU line yet: key 0
// matches no address (keys are lineAddr+1 ≥ 1), and since the MRU path only
// writes to a line it matched, the sentinel is never written.
var invalidLine = Line{}

// access returns true on hit, installing the line otherwise.
func (l *level) access(addr uint64) bool {
	l.tick++
	// MRU fast path: repeated hits to the last-touched line skip the set
	// walk. The pointer self-validates — if the line was since evicted its
	// key changed, so a stale pointer can never produce a false hit, and a
	// true hit here touches exactly the line the set walk would have.
	if last := l.last; last.key == (addr>>l.lineBits)+1 {
		last.lru = l.tick
		l.hits++
		return true
	}
	if l.dm {
		return l.walk1(addr)
	}
	return l.walk(addr)
}

// walk1 is walk specialized for direct-mapped power-of-two levels: addr's
// set holds exactly one line, so the scan and victim selection collapse to
// a single compare. backing[i*1] is set i, and len(backing) == numSets is a
// power of two, so the masked index needs no bounds check.
func (l *level) walk1(addr uint64) bool {
	lineAddr := addr >> l.lineBits
	key := lineAddr + 1
	b := l.backing
	ln := &b[lineAddr&uint64(len(b)-1)]
	l.last = ln
	if ln.key == key {
		ln.lru = l.tick
		l.hits++
		return true
	}
	l.misses++
	*ln = Line{key: key, lru: l.tick}
	return false
}

// walk scans addr's set, installing the line on miss. The caller has already
// advanced l.tick and missed the MRU fast path.
func (l *level) walk(addr uint64) bool {
	lineAddr := addr >> l.lineBits
	key := lineAddr + 1
	var set []Line
	if l.setMask != 0 || l.numSets == 1 {
		set = l.sets[lineAddr&l.setMask]
	} else {
		set = l.sets[lineAddr%uint64(l.numSets)]
	}
	victim := 0
	for i := range set {
		if set[i].key == key {
			set[i].lru = l.tick
			l.hits++
			l.last = &set[i]
			return true
		}
		if set[i].key == 0 {
			victim = i
		} else if set[victim].key != 0 && set[i].lru < set[victim].lru {
			victim = i
		}
	}
	l.misses++
	set[victim] = Line{key: key, lru: l.tick}
	l.last = &set[victim]
	return false
}

func (l *level) reset() {
	for i := range l.sets {
		for j := range l.sets[i] {
			l.sets[i][j] = Line{}
		}
	}
	l.last = &invalidLine
	l.tick, l.hits, l.misses = 0, 0, 0
}

// Hierarchy is an L1+L2 data cache hierarchy in front of main memory.
type Hierarchy struct {
	l1, l2     *level
	memLatency int64

	// Precomputed access latencies: L1 hit, L1 miss + L2 hit, full miss.
	l1Lat, l2Lat, missLat int64
}

// NewHierarchy builds the hierarchy described by m.
func NewHierarchy(m *machine.Machine) *Hierarchy {
	h := &Hierarchy{
		l1:         newLevel(m.L1),
		l2:         newLevel(m.L2),
		memLatency: m.MemLatency,
	}
	h.l1Lat = h.l1.geom.HitLatency
	h.l2Lat = h.l1.geom.HitLatency + h.l2.geom.HitLatency
	h.missLat = h.l1.geom.HitLatency + h.l2.geom.HitLatency + h.memLatency
	return h
}

// Access simulates a data access to addr (byte address) and returns its
// latency in cycles. Writes are modeled write-allocate, same latency.
func (h *Hierarchy) Access(addr uint64) int64 {
	if lat := h.AccessFast(addr); lat >= 0 {
		return lat
	}
	return h.AccessSlow(addr)
}

// AccessFast is the inline-friendly half of Access: it advances the L1
// clock and resolves a hit on the most-recently-touched L1 line, returning
// -1 when that fast path does not apply. A -1 return MUST be followed by an
// AccessSlow call with the same address — the pair performs exactly one
// access. Hot interpreter loops call the pair directly so the dominant case
// (consecutive hits to one line) inlines.
func (h *Hierarchy) AccessFast(addr uint64) int64 {
	l1 := h.l1
	l1.tick++
	if last := l1.last; last.key == (addr>>l1.lineBits)+1 {
		last.lru = l1.tick
		l1.hits++
		return h.l1Lat
	}
	return -1
}

// AccessSlow completes an access whose AccessFast returned -1: walk the L1
// set (the tick was already advanced), then L2 on an L1 miss.
func (h *Hierarchy) AccessSlow(addr uint64) int64 {
	l1 := h.l1
	var hit bool
	if l1.dm {
		hit = l1.walk1(addr)
	} else {
		hit = l1.walk(addr)
	}
	if hit {
		return h.l1Lat
	}
	if h.l2.access(addr) {
		return h.l2Lat
	}
	return h.missLat
}

// NoLine seeds stream-local MRU hints: it matches no address and, because
// AccessLine only writes to a line it matched, is never written.
var NoLine = &invalidLine

// AccessLine resolves an access against a caller-held candidate L1 line —
// typically a per-load-site MRU hint, which survives level-wide hint
// thrashing when a loop interleaves several array streams. It returns the
// L1 hit latency when ln currently holds addr's line and -1 otherwise; the
// hint self-validates exactly like the level MRU pointer (an evicted slot's
// key changed, a reset zeroed it). A -1 return MUST be followed by an
// AccessMiss call with the same address — the pair is exactly one access.
func (h *Hierarchy) AccessLine(ln *Line, addr uint64) int64 {
	l1 := h.l1
	l1.tick++
	if ln.key == (addr>>l1.lineBits)+1 {
		ln.lru = l1.tick
		l1.hits++
		return h.l1Lat
	}
	return -1
}

// AccessMiss completes an access whose AccessLine hint missed. It returns
// the access latency and the L1 line now holding addr — the caller's next
// hint. The L1 tick was already advanced by AccessLine.
func (h *Hierarchy) AccessMiss(addr uint64) (int64, *Line) {
	l1 := h.l1
	var hit bool
	if l1.dm {
		hit = l1.walk1(addr)
	} else {
		hit = l1.walk(addr)
	}
	if hit {
		return h.l1Lat, h.l1.last
	}
	ln := h.l1.last // the walk installed addr's line on its miss path
	if h.l2.access(addr) {
		return h.l2Lat, ln
	}
	return h.missLat, ln
}

// Reset invalidates all lines and clears statistics.
func (h *Hierarchy) Reset() {
	h.l1.reset()
	h.l2.reset()
}

// Stats reports (hits, misses) per level.
func (h *Hierarchy) Stats() (l1Hits, l1Misses, l2Hits, l2Misses int64) {
	return h.l1.hits, h.l1.misses, h.l2.hits, h.l2.misses
}
