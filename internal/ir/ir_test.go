package ir

import (
	"strings"
	"testing"
)

func TestBinOpProperties(t *testing.T) {
	comparisons := []BinOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
	for _, op := range comparisons {
		if !op.IsComparison() {
			t.Errorf("%s must be a comparison", op)
		}
	}
	for _, op := range []BinOp{OpAdd, OpMul, OpShl, OpDiv} {
		if op.IsComparison() {
			t.Errorf("%s must not be a comparison", op)
		}
	}
	for _, op := range []BinOp{OpAdd, OpMul, OpAnd, OpOr, OpXor, OpEq, OpNe} {
		if !op.Commutative() {
			t.Errorf("%s must be commutative", op)
		}
	}
	for _, op := range []BinOp{OpSub, OpDiv, OpMod, OpShl, OpLt} {
		if op.Commutative() {
			t.Errorf("%s must not be commutative", op)
		}
	}
}

func TestExprCloneIsDeep(t *testing.T) {
	orig := &Binary{
		Op: OpAdd, Typ: F64,
		X: &ArrayRef{Name: "a", Index: &VarRef{Name: "i"}},
		Y: &CallExpr{Fn: "sqrt", Args: []Expr{&ConstFloat{V: 2}}},
	}
	cp := orig.Clone().(*Binary)
	cp.X.(*ArrayRef).Index.(*VarRef).Name = "j"
	cp.Y.(*CallExpr).Args[0] = &ConstFloat{V: 9}
	if orig.X.(*ArrayRef).Index.(*VarRef).Name != "i" {
		t.Error("Clone shared the array index")
	}
	if orig.Y.(*CallExpr).Args[0].(*ConstFloat).V != 2 {
		t.Error("Clone shared call args")
	}
}

func TestStmtCloneIsDeep(t *testing.T) {
	loop := &For{
		Var: "i", From: &ConstInt{V: 0}, To: &VarRef{Name: "n"}, Step: 1,
		Body: []Stmt{
			&If{Cond: &VarRef{Name: "c"}, Then: []Stmt{
				&Assign{Lhs: &VarRef{Name: "x"}, Rhs: &ConstInt{V: 1}},
			}},
			&Counter{ID: 3},
		},
	}
	cp := loop.Clone().(*For)
	cp.Body[0].(*If).Then[0].(*Assign).Rhs = &ConstInt{V: 99}
	cp.Body[1].(*Counter).ID = 7
	if loop.Body[0].(*If).Then[0].(*Assign).Rhs.(*ConstInt).V != 1 {
		t.Error("For.Clone shared nested statements")
	}
	if loop.Body[1].(*Counter).ID != 3 {
		t.Error("For.Clone shared counters")
	}
}

func TestFuncCloneIndependence(t *testing.T) {
	fn := &Func{
		Name:   "f",
		Params: []Param{{Name: "n", Typ: I64}},
		Locals: []Local{{Name: "s", Typ: F64}},
		Body:   []Stmt{&Return{Value: &VarRef{Name: "s"}}},
	}
	cp := fn.Clone()
	cp.Locals = append(cp.Locals, Local{Name: "t", Typ: I64})
	cp.Body[0].(*Return).Value = nil
	if len(fn.Locals) != 1 || fn.Body[0].(*Return).Value == nil {
		t.Error("Func.Clone leaked mutations")
	}
	if fn.ParamIndex("n") != 0 || fn.ParamIndex("zz") != -1 {
		t.Error("ParamIndex broken")
	}
	if !fn.IsParam("n") || fn.IsParam("s") || !fn.IsLocal("s") || fn.IsLocal("n") {
		t.Error("IsParam/IsLocal broken")
	}
}

func TestProgramHelpers(t *testing.T) {
	p := NewProgram()
	p.AddArray("a", F64, 10)
	p.AddScalar("g", I64)
	if a, ok := p.Array("a"); !ok || a.Len != 10 || a.Typ != F64 {
		t.Error("Array lookup broken")
	}
	if _, ok := p.Array("zz"); ok {
		t.Error("Array lookup found a ghost")
	}
	cp := p.Clone()
	cp.AddArray("b", I64, 5)
	if _, ok := p.Array("b"); ok {
		t.Error("Program.Clone shared arrays")
	}
}

func TestIntrinsics(t *testing.T) {
	if a, ok := IsIntrinsic("sqrt"); !ok || a != 1 {
		t.Error("sqrt must be a unary intrinsic")
	}
	if a, ok := IsIntrinsic("min"); !ok || a != 2 {
		t.Error("min must be binary")
	}
	if _, ok := IsIntrinsic("frobnicate"); ok {
		t.Error("unknown intrinsic accepted")
	}
}

func TestInstrUsesAndDef(t *testing.T) {
	cases := []struct {
		in   Instr
		uses int
		def  bool
	}{
		{Instr{Op: LAdd, Dst: 2, A: 0, B: 1}, 2, true},
		{Instr{Op: LMovI, Dst: 1, A: NoReg, B: NoReg, Imm: 7}, 0, true},
		{Instr{Op: LStore, Dst: NoReg, A: 0, B: NoReg, Src: 1, Arr: "a"}, 2, false},
		{Instr{Op: LSelect, Dst: 3, A: 0, B: 1, Src: 2}, 3, true},
		{Instr{Op: LCall, Dst: 2, A: NoReg, B: NoReg, CallArgs: []Reg{0, 1}}, 2, true},
		{Instr{Op: LCount, Dst: NoReg, A: NoReg, B: NoReg, Imm: 0}, 0, false},
		{Instr{Op: LLoad, Dst: 1, A: 0, B: NoReg, Arr: "a"}, 1, true},
	}
	for _, c := range cases {
		uses := c.in.Uses(nil)
		if len(uses) != c.uses {
			t.Errorf("%s: uses = %v, want %d", c.in.Op, uses, c.uses)
		}
		if (c.in.Def() != NoReg) != c.def {
			t.Errorf("%s: def = %v, want def=%v", c.in.Op, c.in.Def(), c.def)
		}
	}
}

func TestOpcodeClasses(t *testing.T) {
	for _, op := range []Opcode{LFAdd, LFMul, LFDiv, LMovF, LFCmpLt} {
		if !op.IsFloat() {
			t.Errorf("%s must be float class", op)
		}
	}
	for _, op := range []Opcode{LAdd, LMovI, LLoad, LCmpEq} {
		if op.IsFloat() {
			t.Errorf("%s must be integer class", op)
		}
	}
	if !LCmpLt.IsCmp() || !LFCmpGe.IsCmp() || LAdd.IsCmp() {
		t.Error("IsCmp misclassifies")
	}
}

func TestLFuncCloneAndString(t *testing.T) {
	f := &LFunc{
		Name:      "f",
		Params:    []Param{{Name: "n", Typ: I64}},
		ParamRegs: []Reg{0},
		NumRegs:   3,
		FloatReg:  []bool{false, false, true},
		Blocks: []*Block{
			{ID: 0, Instrs: []Instr{
				{Op: LMovI, Dst: 1, A: NoReg, B: NoReg, Imm: 5},
				{Op: LCall, Dst: 2, A: NoReg, B: NoReg, Fn: "sqrt", CallArgs: []Reg{1}},
			}, Term: Terminator{Kind: TermReturn, Val: 2}},
		},
	}
	cp := f.Clone()
	cp.Blocks[0].Instrs[0].Imm = 99
	cp.Blocks[0].Instrs[1].CallArgs[0] = 0
	if f.Blocks[0].Instrs[0].Imm != 5 {
		t.Error("Clone shared instruction storage")
	}
	if f.Blocks[0].Instrs[1].CallArgs[0] != 1 {
		t.Error("Clone shared call args")
	}
	s := f.String()
	for _, want := range []string{"func f", "movi 5", "call sqrt", "ret r2"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
	if f.InstrCount() != 2 {
		t.Errorf("InstrCount = %d, want 2", f.InstrCount())
	}
	if f.BlockByID(0) != f.Blocks[0] || f.BlockByID(9) != nil {
		t.Error("BlockByID broken")
	}
}

func TestSuccs(t *testing.T) {
	j := &Block{Term: Terminator{Kind: TermJump, Then: 4}}
	br := &Block{Term: Terminator{Kind: TermBranch, Cond: 0, Then: 1, Else: 2}}
	ret := &Block{Term: Terminator{Kind: TermReturn, Val: NoReg}}
	if got := j.Succs(); len(got) != 1 || got[0] != 4 {
		t.Errorf("jump succs = %v", got)
	}
	if got := br.Succs(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("branch succs = %v", got)
	}
	if got := ret.Succs(); got != nil {
		t.Errorf("return succs = %v", got)
	}
}
