// Package ir defines the two-level intermediate representation used by the
// PEAK reproduction.
//
// The high-level IR (HIR) is a structured AST: functions contain statements
// (assignments, if, for, while), statements contain expressions. Workload
// kernels are written in HIR, and most optimization passes transform HIR.
//
// The low-level IR (LIR) is a control-flow graph of basic blocks holding
// three-address instructions over virtual registers. Lowering (package
// lower), register allocation (package regalloc) and execution (package sim)
// operate on LIR.
package ir

import (
	"fmt"
	"strings"
)

// Type is the static type of a value. The execution engine represents all
// values as float64 (exact for integers below 2^53); Type only selects the
// cost class of operations (integer vs floating point).
type Type int

const (
	// I64 is the 64-bit integer type.
	I64 Type = iota
	// F64 is the 64-bit floating point type.
	F64
)

func (t Type) String() string {
	if t == F64 {
		return "f64"
	}
	return "i64"
}

// BinOp enumerates binary operators.
type BinOp int

// Binary operators. Comparison operators yield 0 or 1 (I64).
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

var binOpNames = [...]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpAnd: "&", OpOr: "|", OpXor: "^", OpShl: "<<", OpShr: ">>",
	OpEq: "==", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
}

func (op BinOp) String() string { return binOpNames[op] }

// IsComparison reports whether op is one of the six comparison operators.
func (op BinOp) IsComparison() bool { return op >= OpEq }

// Commutative reports whether op is commutative (used by CSE to canonicalize
// expressions).
func (op BinOp) Commutative() bool {
	switch op {
	case OpAdd, OpMul, OpAnd, OpOr, OpXor, OpEq, OpNe:
		return true
	}
	return false
}

// UnOp enumerates unary operators.
type UnOp int

// Unary operators.
const (
	OpNeg UnOp = iota // arithmetic negation
	OpNot             // logical not: 0 -> 1, nonzero -> 0
)

func (op UnOp) String() string {
	if op == OpNot {
		return "!"
	}
	return "-"
}

// Expr is an expression node in the HIR.
type Expr interface {
	exprNode()
	// Clone returns a deep copy of the expression.
	Clone() Expr
	String() string
}

// ConstInt is an integer literal.
type ConstInt struct{ V int64 }

// ConstFloat is a floating point literal.
type ConstFloat struct{ V float64 }

// VarRef names a scalar variable: a parameter, local, or global scalar.
type VarRef struct{ Name string }

// ArrayRef reads (as an expression) or addresses (as an assignment target)
// element Index of the named array.
type ArrayRef struct {
	Name  string
	Index Expr
}

// Unary applies a unary operator.
type Unary struct {
	Op UnOp
	X  Expr
}

// Binary applies a binary operator. Typ selects integer or floating-point
// cost class.
type Binary struct {
	Op   BinOp
	Typ  Type
	X, Y Expr
}

// CallExpr calls a named function and yields its return value. Intrinsics
// (sqrt, abs, min, max, floor, sin, cos, exp) are recognized by name; other
// names must resolve to Program functions (candidates for inlining).
type CallExpr struct {
	Fn   string
	Args []Expr
}

// Select is a branch-free conditional: Cond != 0 ? X : Y. Both arms are
// evaluated (it lowers to LSelect). Produced by if-conversion.
type Select struct {
	Cond, X, Y Expr
}

func (*ConstInt) exprNode()   {}
func (*ConstFloat) exprNode() {}
func (*VarRef) exprNode()     {}
func (*ArrayRef) exprNode()   {}
func (*Unary) exprNode()      {}
func (*Binary) exprNode()     {}
func (*CallExpr) exprNode()   {}
func (*Select) exprNode()     {}

// Clone implements Expr.
func (e *ConstInt) Clone() Expr { c := *e; return &c }

// Clone implements Expr.
func (e *ConstFloat) Clone() Expr { c := *e; return &c }

// Clone implements Expr.
func (e *VarRef) Clone() Expr { c := *e; return &c }

// Clone implements Expr.
func (e *ArrayRef) Clone() Expr { return &ArrayRef{Name: e.Name, Index: e.Index.Clone()} }

// Clone implements Expr.
func (e *Unary) Clone() Expr { return &Unary{Op: e.Op, X: e.X.Clone()} }

// Clone implements Expr.
func (e *Binary) Clone() Expr {
	return &Binary{Op: e.Op, Typ: e.Typ, X: e.X.Clone(), Y: e.Y.Clone()}
}

// Clone implements Expr.
func (e *CallExpr) Clone() Expr {
	args := make([]Expr, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.Clone()
	}
	return &CallExpr{Fn: e.Fn, Args: args}
}

// Clone implements Expr.
func (e *Select) Clone() Expr {
	return &Select{Cond: e.Cond.Clone(), X: e.X.Clone(), Y: e.Y.Clone()}
}

func (e *ConstInt) String() string   { return fmt.Sprintf("%d", e.V) }
func (e *ConstFloat) String() string { return fmt.Sprintf("%g", e.V) }
func (e *VarRef) String() string     { return e.Name }
func (e *ArrayRef) String() string   { return fmt.Sprintf("%s[%s]", e.Name, e.Index) }
func (e *Unary) String() string      { return fmt.Sprintf("%s(%s)", e.Op, e.X) }
func (e *Binary) String() string     { return fmt.Sprintf("(%s %s %s)", e.X, e.Op, e.Y) }
func (e *CallExpr) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", e.Fn, strings.Join(parts, ", "))
}
func (e *Select) String() string {
	return fmt.Sprintf("(%s ? %s : %s)", e.Cond, e.X, e.Y)
}

// Stmt is a statement node in the HIR.
type Stmt interface {
	stmtNode()
	// Clone returns a deep copy of the statement.
	Clone() Stmt
}

// Assign stores Rhs into Lhs. Lhs must be *VarRef or *ArrayRef.
type Assign struct {
	Lhs Expr
	Rhs Expr
}

// If is a two-armed conditional. Else may be nil.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	// Guard marks compiler-inserted null/bounds checks that the
	// delete-null-pointer-checks flag may remove.
	Guard bool
}

// For is a counted loop: for Var = From; Var < To; Var += Step { Body }.
// Step must be a positive constant for unrolling to apply.
type For struct {
	Var  string
	From Expr
	To   Expr
	Step int64
	Body []Stmt
}

// While is a general pre-test loop.
type While struct {
	Cond Expr
	Body []Stmt
}

// Break exits the innermost enclosing loop.
type Break struct{}

// Return exits the function, optionally with a value (nil for none).
type Return struct{ Value Expr }

// CallStmt calls a function for effect, discarding any result.
type CallStmt struct {
	Fn   string
	Args []Expr
}

// Counter is an MBR instrumentation pseudo-statement: executing it
// increments counter ID. Counters have no data or control dependences;
// optimization passes preserve them and the execution engine charges no
// cycles for them (paper §2.3).
type Counter struct{ ID int }

func (*Assign) stmtNode()   {}
func (*If) stmtNode()       {}
func (*For) stmtNode()      {}
func (*While) stmtNode()    {}
func (*Break) stmtNode()    {}
func (*Return) stmtNode()   {}
func (*CallStmt) stmtNode() {}
func (*Counter) stmtNode()  {}

// CloneStmts deep-copies a statement list.
func CloneStmts(list []Stmt) []Stmt {
	if list == nil {
		return nil
	}
	out := make([]Stmt, len(list))
	for i, s := range list {
		out[i] = s.Clone()
	}
	return out
}

// Clone implements Stmt.
func (s *Assign) Clone() Stmt { return &Assign{Lhs: s.Lhs.Clone(), Rhs: s.Rhs.Clone()} }

// Clone implements Stmt.
func (s *If) Clone() Stmt {
	return &If{Cond: s.Cond.Clone(), Then: CloneStmts(s.Then), Else: CloneStmts(s.Else), Guard: s.Guard}
}

// Clone implements Stmt.
func (s *For) Clone() Stmt {
	return &For{Var: s.Var, From: s.From.Clone(), To: s.To.Clone(), Step: s.Step, Body: CloneStmts(s.Body)}
}

// Clone implements Stmt.
func (s *While) Clone() Stmt { return &While{Cond: s.Cond.Clone(), Body: CloneStmts(s.Body)} }

// Clone implements Stmt.
func (s *Break) Clone() Stmt { return &Break{} }

// Clone implements Stmt.
func (s *Return) Clone() Stmt {
	r := &Return{}
	if s.Value != nil {
		r.Value = s.Value.Clone()
	}
	return r
}

// Clone implements Stmt.
func (s *CallStmt) Clone() Stmt {
	args := make([]Expr, len(s.Args))
	for i, a := range s.Args {
		args[i] = a.Clone()
	}
	return &CallStmt{Fn: s.Fn, Args: args}
}

// Clone implements Stmt.
func (s *Counter) Clone() Stmt { return &Counter{ID: s.ID} }

// Param declares a function parameter. Scalars are passed by value; arrays
// are passed by reference (the argument names a memory array).
type Param struct {
	Name    string
	Typ     Type
	IsArray bool
}

// Local declares a function-local scalar.
type Local struct {
	Name string
	Typ  Type
}

// Func is an HIR function. A tuning section is a Func plus the Program
// context it runs in.
type Func struct {
	Name   string
	Params []Param
	Locals []Local
	Body   []Stmt
	// NumCounters is the number of MBR instrumentation counters inserted
	// into Body (counter IDs are 0..NumCounters-1).
	NumCounters int
}

// Clone deep-copies the function.
func (f *Func) Clone() *Func {
	nf := &Func{
		Name:        f.Name,
		Params:      append([]Param(nil), f.Params...),
		Locals:      append([]Local(nil), f.Locals...),
		Body:        CloneStmts(f.Body),
		NumCounters: f.NumCounters,
	}
	return nf
}

// ParamIndex returns the index of the named parameter, or -1.
func (f *Func) ParamIndex(name string) int {
	for i, p := range f.Params {
		if p.Name == name {
			return i
		}
	}
	return -1
}

// IsParam reports whether name is a parameter of f.
func (f *Func) IsParam(name string) bool { return f.ParamIndex(name) >= 0 }

// IsLocal reports whether name is declared as a local of f.
func (f *Func) IsLocal(name string) bool {
	for _, l := range f.Locals {
		if l.Name == name {
			return true
		}
	}
	return false
}

// ArrayDecl declares a named memory array in a Program.
type ArrayDecl struct {
	Name string
	Typ  Type
	Len  int
}

// Program is a compilation unit: functions plus global memory arrays and
// global scalars. Workloads build one Program per benchmark.
type Program struct {
	Funcs   map[string]*Func
	Arrays  []ArrayDecl
	Scalars []Local
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{Funcs: make(map[string]*Func)}
}

// AddFunc registers fn, replacing any previous function of the same name.
func (p *Program) AddFunc(fn *Func) { p.Funcs[fn.Name] = fn }

// AddArray declares a global array.
func (p *Program) AddArray(name string, typ Type, n int) {
	p.Arrays = append(p.Arrays, ArrayDecl{Name: name, Typ: typ, Len: n})
}

// AddScalar declares a global scalar.
func (p *Program) AddScalar(name string, typ Type) {
	p.Scalars = append(p.Scalars, Local{Name: name, Typ: typ})
}

// Array returns the declaration of the named array and whether it exists.
func (p *Program) Array(name string) (ArrayDecl, bool) {
	for _, a := range p.Arrays {
		if a.Name == name {
			return a, true
		}
	}
	return ArrayDecl{}, false
}

// Clone deep-copies the program (functions, arrays, scalars).
func (p *Program) Clone() *Program {
	np := NewProgram()
	for name, fn := range p.Funcs {
		np.Funcs[name] = fn.Clone()
	}
	np.Arrays = append([]ArrayDecl(nil), p.Arrays...)
	np.Scalars = append([]Local(nil), p.Scalars...)
	return np
}

// Intrinsics recognized by CallExpr/CallStmt without a Program definition.
var intrinsics = map[string]int{
	"sqrt": 1, "abs": 1, "floor": 1, "sin": 1, "cos": 1, "exp": 1, "log": 1,
	"min": 2, "max": 2, "imin": 2, "imax": 2,
}

// IsIntrinsic reports whether name is a built-in math intrinsic and, if so,
// its arity.
func IsIntrinsic(name string) (arity int, ok bool) {
	a, ok := intrinsics[name]
	return a, ok
}
