package ir

import "fmt"

// VerifyLFunc checks LIR well-formedness invariants that every lowering and
// optimization pass must preserve:
//
//   - at least one block, with no duplicate block IDs;
//   - every terminator target refers to an existing block;
//   - every register operand (sources, destinations, call arguments,
//     terminator conditions/values) lies in [0, NumRegs);
//   - FloatReg has exactly NumRegs entries;
//   - every block is terminated sensibly (TermKind in range).
//
// The compiler runs it after its pass pipeline; tests run it on every
// workload × flag combination.
func VerifyLFunc(f *LFunc) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("verify %s: no blocks", f.Name)
	}
	if len(f.FloatReg) != f.NumRegs {
		return fmt.Errorf("verify %s: FloatReg has %d entries for %d regs",
			f.Name, len(f.FloatReg), f.NumRegs)
	}
	ids := make(map[int]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		if ids[b.ID] {
			return fmt.Errorf("verify %s: duplicate block id %d", f.Name, b.ID)
		}
		ids[b.ID] = true
	}
	checkReg := func(where string, r Reg, allowNone bool) error {
		if r == NoReg {
			if allowNone {
				return nil
			}
			return fmt.Errorf("verify %s: missing register in %s", f.Name, where)
		}
		if r < 0 || int(r) >= f.NumRegs {
			return fmt.Errorf("verify %s: register r%d out of range [0,%d) in %s",
				f.Name, r, f.NumRegs, where)
		}
		return nil
	}
	for _, r := range f.ParamRegs {
		if err := checkReg("param", r, true); err != nil {
			return err
		}
	}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			where := fmt.Sprintf("b%d: %s", b.ID, in.String())
			for _, u := range in.Uses(nil) {
				if err := checkReg(where, u, false); err != nil {
					return err
				}
			}
			if d := in.Def(); d != NoReg {
				if err := checkReg(where, d, false); err != nil {
					return err
				}
			}
			switch in.Op {
			case LLoad, LStore:
				if in.Arr == "" {
					return fmt.Errorf("verify %s: memory op without array in %s", f.Name, where)
				}
			case LCall:
				if in.Fn == "" {
					return fmt.Errorf("verify %s: call without callee in %s", f.Name, where)
				}
			case LCount:
				if in.Imm < 0 || int(in.Imm) >= f.NumCounters {
					return fmt.Errorf("verify %s: counter #%d out of range [0,%d) in %s",
						f.Name, in.Imm, f.NumCounters, where)
				}
			}
		}
		t := &b.Term
		switch t.Kind {
		case TermJump:
			if !ids[t.Then] {
				return fmt.Errorf("verify %s: b%d jumps to missing b%d", f.Name, b.ID, t.Then)
			}
		case TermBranch:
			if err := checkReg(fmt.Sprintf("b%d branch cond", b.ID), t.Cond, false); err != nil {
				return err
			}
			if !ids[t.Then] || !ids[t.Else] {
				return fmt.Errorf("verify %s: b%d branches to missing block (%d/%d)",
					f.Name, b.ID, t.Then, t.Else)
			}
		case TermReturn:
			if err := checkReg(fmt.Sprintf("b%d return", b.ID), t.Val, true); err != nil {
				return err
			}
		default:
			return fmt.Errorf("verify %s: b%d has invalid terminator kind %d", f.Name, b.ID, t.Kind)
		}
	}
	return nil
}
