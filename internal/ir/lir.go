package ir

import (
	"fmt"
	"strings"
)

// Reg is a virtual register index within an LFunc. Register allocation maps
// virtual registers to physical registers or marks them spilled.
type Reg int

// NoReg marks an absent register operand.
const NoReg Reg = -1

// Opcode enumerates LIR instruction opcodes.
type Opcode int

// LIR opcodes. Integer and floating point arithmetic are distinguished only
// for cost accounting; the execution engine computes both on float64.
const (
	LNop  Opcode = iota
	LMovI        // Dst = Imm
	LMovF        // Dst = FImm
	LMov         // Dst = A
	LAdd         // Dst = A + B (integer cost class)
	LSub
	LMul
	LDiv
	LMod
	LAnd
	LOr
	LXor
	LShl
	LShr
	LFAdd // floating point cost class
	LFSub
	LFMul
	LFDiv
	LNeg
	LFNeg
	LNot
	LCmpEq // Dst = (A == B)
	LCmpNe
	LCmpLt
	LCmpLe
	LCmpGt
	LCmpGe
	LFCmpEq
	LFCmpNe
	LFCmpLt
	LFCmpLe
	LFCmpGt
	LFCmpGe
	LSelect // Dst = A != 0 ? B : C  (if-conversion; C in Src)
	LLoad   // Dst = Arr[A]
	LStore  // Arr[A] = Src
	LCall   // Dst = Fn(args in CallArgs)
	LCount  // increment MBR counter Imm; zero cost, no dependences

	// NumOpcodes is the opcode count (for dense per-opcode tables).
	NumOpcodes
)

var opcodeNames = map[Opcode]string{
	LNop: "nop", LMovI: "movi", LMovF: "movf", LMov: "mov",
	LAdd: "add", LSub: "sub", LMul: "mul", LDiv: "div", LMod: "mod",
	LAnd: "and", LOr: "or", LXor: "xor", LShl: "shl", LShr: "shr",
	LFAdd: "fadd", LFSub: "fsub", LFMul: "fmul", LFDiv: "fdiv",
	LNeg: "neg", LFNeg: "fneg", LNot: "not",
	LCmpEq: "cmpeq", LCmpNe: "cmpne", LCmpLt: "cmplt", LCmpLe: "cmple",
	LCmpGt: "cmpgt", LCmpGe: "cmpge",
	LFCmpEq: "fcmpeq", LFCmpNe: "fcmpne", LFCmpLt: "fcmplt", LFCmpLe: "fcmple",
	LFCmpGt: "fcmpgt", LFCmpGe: "fcmpge",
	LSelect: "select", LLoad: "load", LStore: "store", LCall: "call", LCount: "count",
}

func (op Opcode) String() string { return opcodeNames[op] }

// IsFloat reports whether op belongs to the floating-point cost class.
func (op Opcode) IsFloat() bool {
	switch op {
	case LFAdd, LFSub, LFMul, LFDiv, LFNeg, LMovF,
		LFCmpEq, LFCmpNe, LFCmpLt, LFCmpLe, LFCmpGt, LFCmpGe:
		return true
	}
	return false
}

// IsCmp reports whether op is a comparison (integer or float).
func (op Opcode) IsCmp() bool {
	return (op >= LCmpEq && op <= LCmpGe) || (op >= LFCmpEq && op <= LFCmpGe)
}

// Instr is a three-address LIR instruction.
type Instr struct {
	Op  Opcode
	Dst Reg // destination register (NoReg if none)
	A   Reg // first source (NoReg if unused)
	B   Reg // second source (NoReg if unused)
	Src Reg // value source for LStore, third operand for LSelect

	Imm  int64   // immediate for LMovI, counter ID for LCount
	FImm float64 // immediate for LMovF

	Arr string // array name for LLoad/LStore

	Fn       string // callee for LCall
	CallArgs []Reg  // argument registers for LCall
}

// Uses appends the registers read by the instruction to dst and returns it.
func (in *Instr) Uses(dst []Reg) []Reg {
	add := func(r Reg) {
		if r != NoReg {
			dst = append(dst, r)
		}
	}
	switch in.Op {
	case LMovI, LMovF, LNop, LCount:
	case LCall:
		for _, r := range in.CallArgs {
			add(r)
		}
	case LStore:
		add(in.A)
		add(in.Src)
	case LSelect:
		add(in.A)
		add(in.B)
		add(in.Src)
	default:
		add(in.A)
		add(in.B)
	}
	return dst
}

// Def returns the register written by the instruction, or NoReg.
func (in *Instr) Def() Reg {
	switch in.Op {
	case LStore, LNop, LCount:
		return NoReg
	}
	return in.Dst
}

func regStr(r Reg) string {
	if r == NoReg {
		return "_"
	}
	return fmt.Sprintf("r%d", r)
}

func (in *Instr) String() string {
	switch in.Op {
	case LMovI:
		return fmt.Sprintf("%s = movi %d", regStr(in.Dst), in.Imm)
	case LMovF:
		return fmt.Sprintf("%s = movf %g", regStr(in.Dst), in.FImm)
	case LLoad:
		return fmt.Sprintf("%s = load %s[%s]", regStr(in.Dst), in.Arr, regStr(in.A))
	case LStore:
		return fmt.Sprintf("store %s[%s] = %s", in.Arr, regStr(in.A), regStr(in.Src))
	case LSelect:
		return fmt.Sprintf("%s = select %s ? %s : %s", regStr(in.Dst), regStr(in.A), regStr(in.B), regStr(in.Src))
	case LCall:
		args := make([]string, len(in.CallArgs))
		for i, r := range in.CallArgs {
			args[i] = regStr(r)
		}
		return fmt.Sprintf("%s = call %s(%s)", regStr(in.Dst), in.Fn, strings.Join(args, ", "))
	case LCount:
		return fmt.Sprintf("count #%d", in.Imm)
	case LNop:
		return "nop"
	case LMov, LNeg, LFNeg, LNot:
		return fmt.Sprintf("%s = %s %s", regStr(in.Dst), in.Op, regStr(in.A))
	default:
		return fmt.Sprintf("%s = %s %s, %s", regStr(in.Dst), in.Op, regStr(in.A), regStr(in.B))
	}
}

// TermKind enumerates block terminators.
type TermKind int

// Terminator kinds.
const (
	TermJump   TermKind = iota // unconditional jump to Then
	TermBranch                 // if Cond != 0 goto Then else Else
	TermReturn                 // return Val (NoReg for none)
)

// Terminator ends a basic block.
type Terminator struct {
	Kind TermKind
	Cond Reg // condition register for TermBranch
	Then int // target block ID (TermJump, TermBranch)
	Else int // fall-through block ID (TermBranch)
	Val  Reg // return value register (TermReturn), NoReg if none
	// Likely is a static branch hint: +1 taken-likely, -1 not-taken-likely,
	// 0 unknown. Set by the guess-branch-probability flag.
	Likely int
}

func (t *Terminator) String() string {
	switch t.Kind {
	case TermJump:
		return fmt.Sprintf("jmp b%d", t.Then)
	case TermBranch:
		return fmt.Sprintf("br %s ? b%d : b%d", regStr(t.Cond), t.Then, t.Else)
	default:
		if t.Val == NoReg {
			return "ret"
		}
		return fmt.Sprintf("ret %s", regStr(t.Val))
	}
}

// Block is an LIR basic block.
type Block struct {
	ID     int
	Instrs []Instr
	Term   Terminator
	// LoopDepth is the static loop nesting depth (filled by analysis;
	// used by spill-cost heuristics and alignment flags).
	LoopDepth int
	// Origin is the block ID this block was derived from in the reference
	// (unoptimized) lowering, or -1 when the block was synthesized by an
	// optimization. Used to relate block counts across versions.
	Origin int
}

// LFunc is a lowered function: CFG of blocks, virtual register count, and
// the mapping from parameter names to registers.
type LFunc struct {
	Name      string
	Params    []Param
	ParamRegs []Reg // register holding each scalar param (NoReg for arrays)
	Blocks    []*Block
	NumRegs   int
	// FloatReg marks virtual registers carrying floating-point values
	// (integer and FP register files are allocated separately).
	FloatReg []bool
	// NumCounters is the number of MBR counters referenced by LCount.
	NumCounters int
}

// Entry returns the entry block (ID 0 by convention).
func (f *LFunc) Entry() *Block { return f.Blocks[0] }

// BlockByID returns the block with the given ID, or nil.
func (f *LFunc) BlockByID(id int) *Block {
	for _, b := range f.Blocks {
		if b.ID == id {
			return b
		}
	}
	return nil
}

// Succs returns the successor block IDs of b.
func (b *Block) Succs() []int {
	switch b.Term.Kind {
	case TermJump:
		return []int{b.Term.Then}
	case TermBranch:
		return []int{b.Term.Then, b.Term.Else}
	}
	return nil
}

// String renders the function as readable LIR assembly.
func (f *LFunc) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s (%d regs)\n", f.Name, f.NumRegs)
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "b%d: (depth %d)\n", b.ID, b.LoopDepth)
		for i := range b.Instrs {
			fmt.Fprintf(&sb, "\t%s\n", b.Instrs[i].String())
		}
		fmt.Fprintf(&sb, "\t%s\n", b.Term.String())
	}
	return sb.String()
}

// InstrCount returns the total number of instructions across all blocks.
func (f *LFunc) InstrCount() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// Clone deep-copies the LFunc.
func (f *LFunc) Clone() *LFunc {
	nf := &LFunc{
		Name:        f.Name,
		Params:      append([]Param(nil), f.Params...),
		ParamRegs:   append([]Reg(nil), f.ParamRegs...),
		NumRegs:     f.NumRegs,
		FloatReg:    append([]bool(nil), f.FloatReg...),
		NumCounters: f.NumCounters,
	}
	nf.Blocks = make([]*Block, len(f.Blocks))
	for i, b := range f.Blocks {
		nb := &Block{ID: b.ID, Term: b.Term, LoopDepth: b.LoopDepth, Origin: b.Origin}
		nb.Instrs = make([]Instr, len(b.Instrs))
		copy(nb.Instrs, b.Instrs)
		for j := range nb.Instrs {
			if b.Instrs[j].CallArgs != nil {
				nb.Instrs[j].CallArgs = append([]Reg(nil), b.Instrs[j].CallArgs...)
			}
		}
		nf.Blocks[i] = nb
	}
	return nf
}
