package ir

import (
	"strings"
	"testing"
)

func validFunc() *LFunc {
	return &LFunc{
		Name:      "f",
		Params:    []Param{{Name: "n", Typ: I64}},
		ParamRegs: []Reg{0},
		NumRegs:   3,
		FloatReg:  []bool{false, false, false},
		Blocks: []*Block{
			{ID: 0, Instrs: []Instr{
				{Op: LMovI, Dst: 1, A: NoReg, B: NoReg, Imm: 1},
				{Op: LAdd, Dst: 2, A: 0, B: 1},
			}, Term: Terminator{Kind: TermBranch, Cond: 2, Then: 1, Else: 1}},
			{ID: 1, Term: Terminator{Kind: TermReturn, Val: 2}},
		},
	}
}

func TestVerifyAcceptsValid(t *testing.T) {
	if err := VerifyLFunc(validFunc()); err != nil {
		t.Fatalf("valid function rejected: %v", err)
	}
}

func TestVerifyRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(f *LFunc)
		want   string
	}{
		{"no blocks", func(f *LFunc) { f.Blocks = nil }, "no blocks"},
		{"floatreg mismatch", func(f *LFunc) { f.FloatReg = f.FloatReg[:1] }, "FloatReg"},
		{"duplicate ids", func(f *LFunc) { f.Blocks[1].ID = 0 }, "duplicate"},
		{"reg out of range", func(f *LFunc) { f.Blocks[0].Instrs[1].A = 77 }, "out of range"},
		{"negative reg", func(f *LFunc) { f.Blocks[0].Instrs[1].B = -5 }, "out of range"},
		{"missing jump target", func(f *LFunc) {
			f.Blocks[0].Term = Terminator{Kind: TermJump, Then: 42}
		}, "missing"},
		{"missing branch target", func(f *LFunc) { f.Blocks[0].Term.Else = 9 }, "missing"},
		{"branch without cond", func(f *LFunc) { f.Blocks[0].Term.Cond = NoReg }, "missing register"},
		{"load without array", func(f *LFunc) {
			f.Blocks[0].Instrs[0] = Instr{Op: LLoad, Dst: 1, A: 0, B: NoReg}
		}, "without array"},
		{"call without callee", func(f *LFunc) {
			f.Blocks[0].Instrs[0] = Instr{Op: LCall, Dst: 1, A: NoReg, B: NoReg}
		}, "without callee"},
		{"counter out of range", func(f *LFunc) {
			f.Blocks[0].Instrs[0] = Instr{Op: LCount, Dst: NoReg, A: NoReg, B: NoReg, Imm: 3}
		}, "counter"},
		{"bad terminator kind", func(f *LFunc) { f.Blocks[1].Term.Kind = TermKind(9) }, "invalid terminator"},
	}
	for _, c := range cases {
		f := validFunc()
		c.mutate(f)
		err := VerifyLFunc(f)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestVerifyReturnWithoutValueOK(t *testing.T) {
	f := validFunc()
	f.Blocks[1].Term.Val = NoReg
	if err := VerifyLFunc(f); err != nil {
		t.Errorf("void return rejected: %v", err)
	}
}
