package irbuild

import (
	"testing"

	"peak/internal/ir"
)

func TestBuilderShapes(t *testing.T) {
	b := NewFunc("k")
	b.ScalarParam("n", ir.I64).ArrayParam("x").Local("s", ir.F64)
	fn := b.Body(
		b.For("i", b.I(0), b.V("n"), 1,
			b.Set(b.V("s"), b.FAdd(b.V("s"), b.At("x", b.V("i")))),
		),
		b.Ret(b.V("s")),
	)
	if fn.Name != "k" || len(fn.Params) != 2 || len(fn.Locals) != 1 {
		t.Fatalf("shape: %+v", fn)
	}
	if !fn.Params[1].IsArray {
		t.Error("array param not marked")
	}
	loop, ok := fn.Body[0].(*ir.For)
	if !ok || loop.Var != "i" || loop.Step != 1 {
		t.Fatalf("loop shape: %+v", fn.Body[0])
	}
	if _, ok := fn.Body[1].(*ir.Return); !ok {
		t.Error("return missing")
	}
}

func TestBuilderOperators(t *testing.T) {
	b := NewFunc("ops")
	cases := []struct {
		e    ir.Expr
		op   ir.BinOp
		typ  ir.Type
		desc string
	}{
		{b.Add(b.I(1), b.I(2)), ir.OpAdd, ir.I64, "Add"},
		{b.FAdd(b.F(1), b.F(2)), ir.OpAdd, ir.F64, "FAdd"},
		{b.Mod(b.I(5), b.I(3)), ir.OpMod, ir.I64, "Mod"},
		{b.Shl(b.I(1), b.I(3)), ir.OpShl, ir.I64, "Shl"},
		{b.FLt(b.F(1), b.F(2)), ir.OpLt, ir.F64, "FLt"},
		{b.Ge(b.I(1), b.I(2)), ir.OpGe, ir.I64, "Ge"},
		{b.Xor(b.I(1), b.I(2)), ir.OpXor, ir.I64, "Xor"},
	}
	for _, c := range cases {
		bin, ok := c.e.(*ir.Binary)
		if !ok || bin.Op != c.op || bin.Typ != c.typ {
			t.Errorf("%s: got %v", c.desc, c.e)
		}
	}
	if u, ok := b.Neg(b.I(1)).(*ir.Unary); !ok || u.Op != ir.OpNeg {
		t.Error("Neg broken")
	}
	if u, ok := b.Not(b.I(1)).(*ir.Unary); !ok || u.Op != ir.OpNot {
		t.Error("Not broken")
	}
}

func TestBuilderPanics(t *testing.T) {
	b := NewFunc("p")
	expectPanic(t, "Set with non-lvalue", func() { b.Set(b.I(1), b.I(2)) })
	expectPanic(t, "non-positive For step", func() { b.For("i", b.I(0), b.I(10), 0) })
}

func expectPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	f()
}

func TestGuardMarksIf(t *testing.T) {
	b := NewFunc("g")
	b.ScalarParam("x", ir.I64)
	g := b.Guard(b.Ge(b.V("x"), b.I(0)), b.Ret(b.V("x")))
	ifs, ok := g.(*ir.If)
	if !ok || !ifs.Guard {
		t.Error("Guard must build a marked If")
	}
	plain := b.If(b.Ge(b.V("x"), b.I(0)), b.Ret(b.V("x")))
	if plain.(*ir.If).Guard {
		t.Error("If must not be marked as guard")
	}
}
