// Package irbuild provides a small fluent builder for constructing HIR
// kernels. Workload definitions and tests use it to keep kernel sources
// readable:
//
//	b := irbuild.NewFunc("saxpy")
//	b.ScalarParam("n", ir.I64).ArrayParam("x").ArrayParam("y").ScalarParam("a", ir.F64)
//	b.For("i", b.I(0), b.V("n"), 1,
//	    b.Set(b.At("y", b.V("i")),
//	        b.FAdd(b.At("y", b.V("i")), b.FMul(b.V("a"), b.At("x", b.V("i"))))),
//	)
package irbuild

import (
	"fmt"

	"peak/internal/ir"
)

// FuncBuilder accumulates an ir.Func.
type FuncBuilder struct {
	fn *ir.Func
}

// NewFunc starts building a function with the given name.
func NewFunc(name string) *FuncBuilder {
	return &FuncBuilder{fn: &ir.Func{Name: name}}
}

// ScalarParam appends a scalar parameter.
func (b *FuncBuilder) ScalarParam(name string, typ ir.Type) *FuncBuilder {
	b.fn.Params = append(b.fn.Params, ir.Param{Name: name, Typ: typ})
	return b
}

// ArrayParam appends an array (by-reference) parameter.
func (b *FuncBuilder) ArrayParam(name string) *FuncBuilder {
	b.fn.Params = append(b.fn.Params, ir.Param{Name: name, IsArray: true})
	return b
}

// Local declares a function-local scalar.
func (b *FuncBuilder) Local(name string, typ ir.Type) *FuncBuilder {
	b.fn.Locals = append(b.fn.Locals, ir.Local{Name: name, Typ: typ})
	return b
}

// Body sets the function body and returns the finished function.
func (b *FuncBuilder) Body(stmts ...ir.Stmt) *ir.Func {
	b.fn.Body = stmts
	return b.fn
}

// Fn returns the function under construction.
func (b *FuncBuilder) Fn() *ir.Func { return b.fn }

// --- Expressions -----------------------------------------------------------

// I builds an integer constant.
func (b *FuncBuilder) I(v int64) ir.Expr { return &ir.ConstInt{V: v} }

// F builds a floating point constant.
func (b *FuncBuilder) F(v float64) ir.Expr { return &ir.ConstFloat{V: v} }

// V references a scalar variable.
func (b *FuncBuilder) V(name string) ir.Expr { return &ir.VarRef{Name: name} }

// At references element idx of array arr.
func (b *FuncBuilder) At(arr string, idx ir.Expr) ir.Expr {
	return &ir.ArrayRef{Name: arr, Index: idx}
}

func bin(op ir.BinOp, typ ir.Type, x, y ir.Expr) ir.Expr {
	return &ir.Binary{Op: op, Typ: typ, X: x, Y: y}
}

// Add builds integer x+y.
func (b *FuncBuilder) Add(x, y ir.Expr) ir.Expr { return bin(ir.OpAdd, ir.I64, x, y) }

// Sub builds integer x-y.
func (b *FuncBuilder) Sub(x, y ir.Expr) ir.Expr { return bin(ir.OpSub, ir.I64, x, y) }

// Mul builds integer x*y.
func (b *FuncBuilder) Mul(x, y ir.Expr) ir.Expr { return bin(ir.OpMul, ir.I64, x, y) }

// Div builds integer x/y (truncating).
func (b *FuncBuilder) Div(x, y ir.Expr) ir.Expr { return bin(ir.OpDiv, ir.I64, x, y) }

// Mod builds integer x%y.
func (b *FuncBuilder) Mod(x, y ir.Expr) ir.Expr { return bin(ir.OpMod, ir.I64, x, y) }

// And builds bitwise x&y.
func (b *FuncBuilder) And(x, y ir.Expr) ir.Expr { return bin(ir.OpAnd, ir.I64, x, y) }

// Or builds bitwise x|y.
func (b *FuncBuilder) Or(x, y ir.Expr) ir.Expr { return bin(ir.OpOr, ir.I64, x, y) }

// Xor builds bitwise x^y.
func (b *FuncBuilder) Xor(x, y ir.Expr) ir.Expr { return bin(ir.OpXor, ir.I64, x, y) }

// Shl builds x<<y.
func (b *FuncBuilder) Shl(x, y ir.Expr) ir.Expr { return bin(ir.OpShl, ir.I64, x, y) }

// Shr builds x>>y.
func (b *FuncBuilder) Shr(x, y ir.Expr) ir.Expr { return bin(ir.OpShr, ir.I64, x, y) }

// FAdd builds floating x+y.
func (b *FuncBuilder) FAdd(x, y ir.Expr) ir.Expr { return bin(ir.OpAdd, ir.F64, x, y) }

// FSub builds floating x-y.
func (b *FuncBuilder) FSub(x, y ir.Expr) ir.Expr { return bin(ir.OpSub, ir.F64, x, y) }

// FMul builds floating x*y.
func (b *FuncBuilder) FMul(x, y ir.Expr) ir.Expr { return bin(ir.OpMul, ir.F64, x, y) }

// FDiv builds floating x/y.
func (b *FuncBuilder) FDiv(x, y ir.Expr) ir.Expr { return bin(ir.OpDiv, ir.F64, x, y) }

// Eq builds x==y.
func (b *FuncBuilder) Eq(x, y ir.Expr) ir.Expr { return bin(ir.OpEq, ir.I64, x, y) }

// Ne builds x!=y.
func (b *FuncBuilder) Ne(x, y ir.Expr) ir.Expr { return bin(ir.OpNe, ir.I64, x, y) }

// Lt builds x<y.
func (b *FuncBuilder) Lt(x, y ir.Expr) ir.Expr { return bin(ir.OpLt, ir.I64, x, y) }

// Le builds x<=y.
func (b *FuncBuilder) Le(x, y ir.Expr) ir.Expr { return bin(ir.OpLe, ir.I64, x, y) }

// Gt builds x>y.
func (b *FuncBuilder) Gt(x, y ir.Expr) ir.Expr { return bin(ir.OpGt, ir.I64, x, y) }

// Ge builds x>=y.
func (b *FuncBuilder) Ge(x, y ir.Expr) ir.Expr { return bin(ir.OpGe, ir.I64, x, y) }

// FLt builds floating x<y.
func (b *FuncBuilder) FLt(x, y ir.Expr) ir.Expr { return bin(ir.OpLt, ir.F64, x, y) }

// FGt builds floating x>y.
func (b *FuncBuilder) FGt(x, y ir.Expr) ir.Expr { return bin(ir.OpGt, ir.F64, x, y) }

// FLe builds floating x<=y.
func (b *FuncBuilder) FLe(x, y ir.Expr) ir.Expr { return bin(ir.OpLe, ir.F64, x, y) }

// FGe builds floating x>=y.
func (b *FuncBuilder) FGe(x, y ir.Expr) ir.Expr { return bin(ir.OpGe, ir.F64, x, y) }

// Neg builds -x.
func (b *FuncBuilder) Neg(x ir.Expr) ir.Expr { return &ir.Unary{Op: ir.OpNeg, X: x} }

// Not builds !x.
func (b *FuncBuilder) Not(x ir.Expr) ir.Expr { return &ir.Unary{Op: ir.OpNot, X: x} }

// Call builds a call expression.
func (b *FuncBuilder) Call(fn string, args ...ir.Expr) ir.Expr {
	return &ir.CallExpr{Fn: fn, Args: args}
}

// --- Statements -------------------------------------------------------------

// Set builds an assignment. lhs must be V(...) or At(...).
func (b *FuncBuilder) Set(lhs, rhs ir.Expr) ir.Stmt {
	switch lhs.(type) {
	case *ir.VarRef, *ir.ArrayRef:
	default:
		panic(fmt.Sprintf("irbuild: invalid assignment target %T", lhs))
	}
	return &ir.Assign{Lhs: lhs, Rhs: rhs}
}

// If builds a one-armed conditional.
func (b *FuncBuilder) If(cond ir.Expr, then ...ir.Stmt) ir.Stmt {
	return &ir.If{Cond: cond, Then: then}
}

// IfElse builds a two-armed conditional.
func (b *FuncBuilder) IfElse(cond ir.Expr, then, els []ir.Stmt) ir.Stmt {
	return &ir.If{Cond: cond, Then: then, Else: els}
}

// Guard builds a compiler-inserted check removable by
// delete-null-pointer-checks.
func (b *FuncBuilder) Guard(cond ir.Expr, then ...ir.Stmt) ir.Stmt {
	return &ir.If{Cond: cond, Then: then, Guard: true}
}

// For builds a counted loop with positive constant step.
func (b *FuncBuilder) For(v string, from, to ir.Expr, step int64, body ...ir.Stmt) ir.Stmt {
	if step <= 0 {
		panic("irbuild: For step must be positive")
	}
	return &ir.For{Var: v, From: from, To: to, Step: step, Body: body}
}

// While builds a pre-test loop.
func (b *FuncBuilder) While(cond ir.Expr, body ...ir.Stmt) ir.Stmt {
	return &ir.While{Cond: cond, Body: body}
}

// Break exits the innermost loop.
func (b *FuncBuilder) Break() ir.Stmt { return &ir.Break{} }

// Ret builds a return statement (value may be nil).
func (b *FuncBuilder) Ret(v ir.Expr) ir.Stmt { return &ir.Return{Value: v} }

// Stmts groups statements into a slice (convenience for IfElse arms).
func (b *FuncBuilder) Stmts(list ...ir.Stmt) []ir.Stmt { return list }
