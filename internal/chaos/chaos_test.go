package chaos

import (
	"math/rand"
	"path/filepath"
	"testing"

	"peak/internal/fault"
	"peak/internal/serve"
)

// TestGenSpecsDistinct: the pool generator must never hand the server two
// requests with the same canonical spec — a collision would silently halve
// the pool through job dedup and break the exactly-once ledger.
func TestGenSpecsDistinct(t *testing.T) {
	specs := genSpecs(88)
	seen := map[string]string{}
	for _, sc := range specs {
		s := serve.New(serve.Options{})
		res, code, err := s.Submit(sc.req)
		if err != nil {
			t.Fatalf("spec %s invalid: %v", sc.key, err)
		}
		if code != 202 {
			t.Fatalf("spec %s: code %d", sc.key, code)
		}
		if prev, dup := seen[res.Spec]; dup {
			t.Fatalf("pool keys %s and %s share canonical spec %s", prev, sc.key, res.Spec)
		}
		seen[res.Spec] = sc.key
	}
}

// TestTearJournalDamagesTail: both tear modes leave a file whose reopen
// reports dropped bytes and whose surviving records still load.
func TestTearJournalDamagesTail(t *testing.T) {
	for _, mode := range []string{"truncate", "flip"} {
		path := filepath.Join(t.TempDir(), "j.jsonl")
		j, err := fault.NewJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if err := j.Append(fault.Record{ID: "id", Round: i + 1,
				State: []byte(`{"x":1}`)}); err != nil {
				t.Fatal(err)
			}
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		// tearJournal draws its mode from the rng; pin it per case.
		var rng *rand.Rand
		for seed := int64(0); ; seed++ {
			rng = rand.New(rand.NewSource(seed))
			want := 0
			if mode == "flip" {
				want = 1
			}
			if rng.Intn(2) == want {
				rng = rand.New(rand.NewSource(seed))
				break
			}
		}
		torn, err := tearJournal(path, rng)
		if err != nil || !torn {
			t.Fatalf("%s: tearJournal = %v, %v", mode, torn, err)
		}
		j2, err := fault.OpenJournal(path)
		if err != nil {
			t.Fatalf("%s: reopen: %v", mode, err)
		}
		rec := j2.Recovery()
		if rec.DroppedBytes == 0 {
			t.Errorf("%s: tear went undetected: %+v", mode, rec)
		}
		if rec.Records != 2 {
			t.Errorf("%s: %d records survived, want 2", mode, rec.Records)
		}
		latest, ok := j2.Latest("id")
		if !ok || latest.Round != 2 {
			t.Errorf("%s: latest surviving round = %+v, want round 2", mode, latest)
		}
		j2.Close()
	}
}

// TestChaosRunSmoke is the tier-1 chaos check: a small seeded schedule
// must finish with an empty violation list — no lost, duplicated or
// divergent jobs, every injected tear detected.
func TestChaosRunSmoke(t *testing.T) {
	rep, err := Run(Config{
		Jobs: 6, Seed: 1, Epochs: 2, Dir: t.TempDir(),
		Log: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rep.Format())
	if len(rep.Violations) != 0 {
		t.Fatalf("chaos violations:\n%s", rep.Format())
	}
	if rep.Completed != rep.Specs {
		t.Fatalf("completed %d of %d specs", rep.Completed, rep.Specs)
	}
	if rep.BreakerOpens == 0 || rep.BreakerShed503 == 0 {
		t.Errorf("breaker phase did not exercise shedding: %+v", rep)
	}
}
