// Package chaos is the serve layer's resilience proof: it drives a real
// in-process serve.Server (submitting through its actual HTTP handler)
// through a randomized-but-seeded schedule of injected engine faults,
// deadline expiries, graceful drains, circuit-breaker trips and hard
// restarts from a torn checkpoint journal — and asserts that none of it is
// observable in the results. Every spec's terminal job body must be
// byte-identical to its chaos-free baseline run, no spec may be lost or
// completed twice, and every injected journal tear must be detected and
// repaired on reopen.
//
// The schedule is a pure function of the seed: which specs get tiny
// deadlines, how much of an epoch is allowed to finish before the drain,
// and where the journal is torn are all drawn from one seeded stream. The
// *outcomes* (which jobs happened to finish before the drain, whether a
// deadline beat its tune) legitimately vary with machine speed — the
// harness's assertions are invariants that must hold on every
// interleaving, which is the point.
package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"time"

	"peak/internal/fault"
	"peak/internal/opt"
	"peak/internal/serve"
)

// Config parameterizes a chaos run.
type Config struct {
	// Jobs is the size of the spec pool (distinct canonical specs, max 88).
	Jobs int
	// Seed fixes the chaos schedule.
	Seed int64
	// Epochs is the number of chaos epochs (submit → partial progress →
	// drain → maybe tear the journal → restart) before the final cleanup
	// epoch that runs everything still pending to completion. <= 0 means 4.
	Epochs int
	// Dir is the scratch directory for the journal file ("" = a fresh
	// temp directory).
	Dir string
	// Log, when non-nil, receives progress lines.
	Log func(format string, args ...any)
}

// Report is the outcome of a chaos run. Violations is the contract
// scorecard: an empty list means every assertion held.
type Report struct {
	Seed   int64
	Specs  int
	Epochs int

	// Completed counts specs that reached a terminal verdict (done or
	// failed — both are deterministic outcomes with baselines); Resumed
	// counts resubmissions of not-yet-settled jobs across restarts;
	// TimedOut counts deadline/watchdog cancellations observed.
	Completed int
	Resumed   int
	TimedOut  int

	// TearsInjected counts journal files deliberately damaged between
	// epochs; RecoveredRecords / DroppedBytes aggregate what the reopens
	// reported. BreakerOpens and BreakerShed503 come from the breaker
	// phase.
	TearsInjected    int
	RecoveredRecords int
	DroppedBytes     int64
	BreakerOpens     int64
	BreakerShed503   int

	Violations []string
}

// Format renders the report as a human-readable summary.
func (r *Report) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "chaos: seed=%d specs=%d epochs=%d\n", r.Seed, r.Specs, r.Epochs)
	fmt.Fprintf(&sb, "  completed %d/%d spec(s), %d resume(s), %d deadline/watchdog timeout(s)\n",
		r.Completed, r.Specs, r.Resumed, r.TimedOut)
	fmt.Fprintf(&sb, "  journal: %d tear(s) injected, %d record(s) recovered, %d byte(s) dropped\n",
		r.TearsInjected, r.RecoveredRecords, r.DroppedBytes)
	fmt.Fprintf(&sb, "  breaker: %d open(s), %d request(s) shed with 503\n", r.BreakerOpens, r.BreakerShed503)
	if len(r.Violations) == 0 {
		fmt.Fprintf(&sb, "  PASS: no lost, duplicated or divergent jobs\n")
	} else {
		fmt.Fprintf(&sb, "  FAIL: %d violation(s)\n", len(r.Violations))
		for _, v := range r.Violations {
			fmt.Fprintf(&sb, "    - %s\n", v)
		}
	}
	return sb.String()
}

func (r *Report) violate(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// specCase is one pool entry: the canonical request and its baseline
// terminal body from a chaos-free run.
type specCase struct {
	req      serve.Request
	key      string // stable pool key (not the server's job ID)
	baseline []byte
	state    string // baseline terminal state (done or failed)
}

// genSpecs builds the deterministic spec pool: CBR tunes over rolling
// 3-flag windows of rotating benchmarks, with noise and fault regimes
// cycling through (including fault-free). The cycle lengths are coprime
// enough that the first 88 entries are distinct.
func genSpecs(n int) []*specCase {
	benches := []string{"BZIP2", "MGRID", "SWIM", "ART", "MCF", "TWOLF", "EQUAKE", "MESA"}
	noises := []string{"", "gauss4x", "spikes"}
	regimes := []string{"", "", "f2", "f5"} // half the pool tunes fault-free
	all := opt.AllFlags()
	specs := make([]*specCase, n)
	for i := range specs {
		start := (i * 3) % 33
		flags := all[start : start+3]
		names := make([]string, len(flags))
		for k, f := range flags {
			names[k] = f.String()
		}
		req := serve.Request{
			Bench:   benches[i%len(benches)],
			Machine: "sparc2",
			Method:  "CBR",
			Flags:   names,
			Noise:   noises[i%len(noises)],
			Faults:  regimes[i%len(regimes)],
		}
		specs[i] = &specCase{req: req, key: fmt.Sprintf("%s/%d/%s/%s", req.Bench, start, req.Noise, req.Faults)}
	}
	return specs
}

// harness wraps one server generation (a "process lifetime" between
// restarts) behind its real HTTP handler.
type harness struct {
	srv *serve.Server
	ts  *httptest.Server
}

func startHarness(opts serve.Options) *harness {
	s := serve.New(opts)
	s.Start()
	return &harness{srv: s, ts: httptest.NewServer(s.Handler())}
}

// stop drains the server and closes the listener (the graceful half of a
// restart; the journal tear afterwards is the crash half).
func (h *harness) stop() {
	h.ts.Close()
	h.srv.Drain()
}

// post submits a request through the HTTP handler and returns the decoded
// body and status code.
func (h *harness) post(req serve.Request) (serve.Result, int, error) {
	body, _ := json.Marshal(req)
	resp, err := http.Post(h.ts.URL+"/tune", "application/json", bytes.NewReader(body))
	if err != nil {
		return serve.Result{}, 0, err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	var res serve.Result
	json.Unmarshal(data, &res)
	return res, resp.StatusCode, nil
}

// bodyOf is the byte-identity unit: the job snapshot serialized exactly as
// the HTTP layer serves it (indented JSON + newline), but readable after
// the listener is gone.
func bodyOf(res serve.Result) ([]byte, error) {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// settled reports whether the spec reached a deterministic terminal
// verdict (done or failed); resumable terminals (interrupted, timed_out)
// are not settled — they go back in the pool.
func settled(state string) bool {
	return state == serve.StateDone || state == serve.StateFailed
}

func terminal(state string) bool {
	return settled(state) || state == serve.StateInterrupted || state == serve.StateTimedOut
}

// tearJournal damages the journal file the way a SIGKILL mid-write would:
// either truncating the final record's tail (torn write, no newline) or
// flipping one byte inside it (media corruption the CRC must catch).
// Returns false when the file holds no complete record to damage.
func tearJournal(path string, rng *rand.Rand) (bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	trimmed := bytes.TrimRight(data, "\n")
	if len(trimmed) == 0 {
		return false, nil
	}
	lastStart := bytes.LastIndexByte(trimmed, '\n') + 1
	lineLen := len(trimmed) - lastStart
	if lineLen < 2 {
		return false, nil
	}
	if rng.Intn(2) == 0 {
		// Torn write: keep a strict prefix of the last line, no newline.
		cut := lastStart + 1 + rng.Intn(lineLen-1)
		data = data[:cut]
	} else {
		// Bit rot: flip one byte inside the last record's line.
		pos := lastStart + rng.Intn(lineLen)
		data = append([]byte(nil), data...)
		data[pos] ^= 0x20
	}
	return true, os.WriteFile(path, data, 0o644)
}

// Run executes the chaos schedule and returns its report. An error means
// the harness itself could not run (I/O, setup); contract breaches are
// reported as Violations, not errors.
func Run(cfg Config) (*Report, error) {
	if cfg.Jobs <= 0 {
		cfg.Jobs = 20
	}
	if cfg.Jobs > 88 {
		cfg.Jobs = 88
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 4
	}
	logf := cfg.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	dir := cfg.Dir
	if dir == "" {
		d, err := os.MkdirTemp("", "peak-chaos-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(d)
		dir = d
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	specs := genSpecs(cfg.Jobs)
	rep := &Report{Seed: cfg.Seed, Specs: len(specs)}

	// Baseline pass: every spec on a clean, undisturbed server. These
	// bodies are the byte-identity references for the whole run.
	logf("chaos: baseline pass over %d spec(s)", len(specs))
	if err := runBaseline(specs); err != nil {
		return nil, err
	}

	// Chaos epochs: each is one server "process lifetime" over the shared
	// journal file. Specs keep being resubmitted until they settle.
	journalPath := filepath.Join(dir, "chaos-journal.jsonl")
	j, err := fault.NewJournal(journalPath)
	if err != nil {
		return nil, err
	}
	completed := map[string][]byte{} // pool key -> terminal body
	submittedBefore := map[string]bool{}
	for epoch := 1; epoch <= cfg.Epochs+1; epoch++ {
		var pending []*specCase
		for _, sc := range specs {
			if _, ok := completed[sc.key]; !ok {
				pending = append(pending, sc)
			}
		}
		if len(pending) == 0 {
			break
		}
		rep.Epochs = epoch
		cleanup := epoch == cfg.Epochs+1
		logf("chaos: epoch %d (%d pending, cleanup=%v)", epoch, len(pending), cleanup)

		h := startHarness(serve.Options{
			Workers: 4, Jobs: 2, Queue: len(specs) + 4,
			Journal: j, JournalPath: journalPath,
			WatchdogStall: 10 * time.Second,
		})
		ids := make(map[string]string, len(pending))
		for _, sc := range pending {
			req := sc.req
			// A third of chaos-epoch submissions carry a tiny deadline —
			// some of those tunes get canceled at a round boundary and must
			// resume cleanly later. The cleanup epoch runs undisturbed.
			if !cleanup && rng.Intn(3) == 0 {
				req.DeadlineMS = int64(1 + rng.Intn(3))
			}
			res, code, err := h.post(req)
			if err != nil {
				h.stop()
				return nil, err
			}
			if code != http.StatusAccepted && code != http.StatusOK {
				rep.violate("epoch %d: spec %s refused with %d (%s)", epoch, sc.key, code, res.Error)
				continue
			}
			ids[sc.key] = res.ID
			if submittedBefore[sc.key] {
				rep.Resumed++
			}
			submittedBefore[sc.key] = true
		}

		// Let a seeded fraction of the epoch finish (everything, for the
		// cleanup epoch), then pull the rug.
		target := len(ids)
		if !cleanup && target > 1 {
			target = 1 + rng.Intn(target)
		}
		waitUntil := time.Now().Add(120 * time.Second)
		for {
			terminalNow := 0
			for _, id := range ids {
				if res, ok := h.srv.Job(id); ok && terminal(res.State) {
					terminalNow++
				}
			}
			if terminalNow >= target || time.Now().After(waitUntil) {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}

		// Harvest settled verdicts, drain (which settles or interrupts the
		// rest), then harvest what the drain finished. Exactly-once: a key
		// already in completed is never overwritten — a second settle for
		// the same spec would be a duplicated job.
		harvest := func() error {
			for key, id := range ids {
				res, found := h.srv.Job(id)
				if !found {
					continue
				}
				if res.State == serve.StateTimedOut {
					rep.TimedOut++
				}
				if !settled(res.State) {
					continue
				}
				if _, ok := completed[key]; ok {
					continue
				}
				body, err := bodyOf(res)
				if err != nil {
					return err
				}
				completed[key] = body
				rep.Completed++
			}
			return nil
		}
		if err := harvest(); err != nil {
			return nil, err
		}
		h.stop()
		if err := harvest(); err != nil {
			return nil, err
		}

		if err := j.Close(); err != nil {
			return nil, err
		}
		// Crash half of the restart: between epochs, sometimes damage the
		// journal the way a kill mid-write would. Reopen must detect the
		// damage, drop only the broken tail, and resume from the previous
		// checkpoint to identical bytes.
		torn := false
		if !cleanup && rng.Intn(2) == 0 {
			torn, err = tearJournal(journalPath, rng)
			if err != nil {
				return nil, err
			}
			if torn {
				rep.TearsInjected++
				logf("chaos: epoch %d tore the journal", epoch)
			}
		}
		j, err = fault.OpenJournal(journalPath)
		if err != nil {
			return nil, err
		}
		rec := j.Recovery()
		rep.RecoveredRecords += rec.Records
		rep.DroppedBytes += rec.DroppedBytes
		if torn && rec.DroppedBytes == 0 {
			rep.violate("epoch %d: journal was torn but recovery dropped nothing (%s)", epoch, rec.String())
		}
		logf("chaos: %s", rec.String())
	}
	j.Close()

	// The scorecard: nothing lost, nothing divergent.
	for _, sc := range specs {
		body, ok := completed[sc.key]
		if !ok {
			rep.violate("spec %s lost: never reached a terminal verdict", sc.key)
			continue
		}
		if !bytes.Equal(body, sc.baseline) {
			rep.violate("spec %s diverged from its chaos-free baseline:\n--- baseline\n%s\n--- chaos\n%s",
				sc.key, sc.baseline, body)
		}
	}

	// Breaker phase: deterministic failure storms must shed load without
	// touching finished results.
	logf("chaos: breaker phase")
	if err := runBreakerPhase(specs, rep, logf); err != nil {
		return nil, err
	}
	return rep, nil
}

// runBaseline runs every spec to a terminal verdict on an undisturbed
// server and records the reference bodies.
func runBaseline(specs []*specCase) error {
	h := startHarness(serve.Options{Workers: 4, Jobs: 2, Queue: len(specs) + 4})
	defer h.stop()
	ids := make([]string, len(specs))
	for i, sc := range specs {
		res, code, err := h.post(sc.req)
		if err != nil {
			return err
		}
		if code != http.StatusAccepted && code != http.StatusOK {
			return fmt.Errorf("baseline: spec %s refused with %d (%s)", sc.key, code, res.Error)
		}
		ids[i] = res.ID
	}
	deadline := time.Now().Add(300 * time.Second)
	for i, sc := range specs {
		for {
			res, ok := h.srv.Job(ids[i])
			if !ok {
				return fmt.Errorf("baseline: job %s disappeared", ids[i])
			}
			if settled(res.State) {
				body, err := bodyOf(res)
				if err != nil {
					return err
				}
				sc.baseline, sc.state = body, res.State
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("baseline: spec %s stuck in %s", sc.key, res.State)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	return nil
}

// runBreakerPhase trips the breaker with poison jobs and asserts the
// degraded-mode contract: 503 for fresh work, 200 for known specs, and a
// probe that closes the breaker after the cooldown.
func runBreakerPhase(specs []*specCase, rep *Report, logf func(string, ...any)) error {
	h := startHarness(serve.Options{
		Workers: 2, Jobs: 1, Queue: 16,
		BreakerFailures: 2, BreakerCooldown: 300 * time.Millisecond,
	})
	defer h.stop()

	// A healthy job first: its finished result must survive the storm.
	var doneSpec *specCase
	for _, sc := range specs {
		if sc.state == serve.StateDone {
			doneSpec = sc
			break
		}
	}
	if doneSpec == nil {
		rep.violate("breaker phase: no baseline spec completed as done")
		return nil
	}
	res, code, err := h.post(doneSpec.req)
	if err != nil {
		return err
	}
	if code != http.StatusAccepted && code != http.StatusOK {
		rep.violate("breaker phase: healthy job refused with %d", code)
		return nil
	}
	healthyID := res.ID
	if err := waitSettled(h, healthyID); err != nil {
		return err
	}

	// Two poison jobs fail deterministically and trip the breaker.
	all := opt.AllFlags()
	for i := 0; i < 2; i++ {
		req := serve.Request{Bench: "BZIP2", Machine: "sparc2", Method: "CBR",
			Faults: "poison", Flags: []string{all[33+i].String()}}
		res, code, err := h.post(req)
		if err != nil {
			return err
		}
		if code != http.StatusAccepted {
			rep.violate("breaker phase: poison job %d refused with %d (%s)", i, code, res.Error)
			return nil
		}
		if err := waitSettled(h, res.ID); err != nil {
			return err
		}
	}
	st := h.srv.Stats()
	if st.Breaker == nil || st.Breaker.State != serve.BreakerOpen {
		rep.violate("breaker phase: breaker not open after 2 consecutive failures (%+v)", st.Breaker)
		return nil
	}
	rep.BreakerOpens = st.Breaker.Opens

	// Fresh work is shed with 503 + Retry-After; the finished job's spec
	// still answers 200 with unchanged bytes.
	fresh := serve.Request{Bench: "BZIP2", Machine: "sparc2", Method: "CBR",
		Flags: []string{all[36].String()}}
	body, _ := json.Marshal(fresh)
	resp, err := http.Post(h.ts.URL+"/tune", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		rep.violate("breaker phase: fresh spec while open got %d, want 503", resp.StatusCode)
	} else {
		rep.BreakerShed503++
		if resp.Header.Get("Retry-After") == "" {
			rep.violate("breaker phase: 503 carried no Retry-After")
		}
	}
	if _, code, err := h.post(doneSpec.req); err != nil {
		return err
	} else if code != http.StatusOK {
		rep.violate("breaker phase: duplicate of a done spec got %d while open, want 200", code)
	}
	snap, ok := h.srv.Job(healthyID)
	if !ok {
		return fmt.Errorf("breaker phase: job %s disappeared", healthyID)
	}
	chk, err := bodyOf(snap)
	if err != nil {
		return err
	}
	if !bytes.Equal(chk, doneSpec.baseline) {
		rep.violate("breaker phase: done job's body changed while the breaker was open")
	}

	// After the cooldown one healthy probe closes the breaker again.
	time.Sleep(400 * time.Millisecond)
	probe := serve.Request{Bench: "BZIP2", Machine: "sparc2", Method: "CBR",
		Flags: []string{all[37].String()}}
	res, code, err = h.post(probe)
	if err != nil {
		return err
	}
	if code != http.StatusAccepted {
		rep.violate("breaker phase: probe after cooldown refused with %d (%s)", code, res.Error)
		return nil
	}
	if err := waitSettled(h, res.ID); err != nil {
		return err
	}
	if st := h.srv.Stats(); st.Breaker.State != serve.BreakerClosed {
		rep.violate("breaker phase: breaker still %s after a successful probe", st.Breaker.State)
	}
	logf("chaos: breaker phase done (opens=%d)", rep.BreakerOpens)
	return nil
}

func waitSettled(h *harness, id string) error {
	deadline := time.Now().Add(120 * time.Second)
	for {
		res, ok := h.srv.Job(id)
		if !ok {
			return fmt.Errorf("job %s disappeared", id)
		}
		if settled(res.State) {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s stuck in %s", id, res.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
