package regress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPaperFigure2Example(t *testing.T) {
	// The worked MBR example of paper Figure 2: Y and C collected over five
	// invocations yield T = [110.05, 3.75].
	y := []float64{11015, 5508, 6626, 6044, 8793}
	x := [][]float64{
		{100, 1},
		{50, 1},
		{60, 1},
		{55, 1},
		{80, 1},
	}
	res, err := Solve(x, y)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !almostEqual(res.Coef[0], 110.05, 0.01) || !almostEqual(res.Coef[1], 3.75, 0.5) {
		t.Errorf("T = [%.2f, %.2f], want [110.05, 3.75]", res.Coef[0], res.Coef[1])
	}
	if res.VarRatio() > 0.001 {
		t.Errorf("VAR = %v, want near 0 for the paper's example", res.VarRatio())
	}
}

func TestExactFitRecovered(t *testing.T) {
	// y = 3x1 - 2x2 + 7 exactly.
	rng := rand.New(rand.NewSource(1))
	var x [][]float64
	var y []float64
	for i := 0; i < 30; i++ {
		a, b := rng.Float64()*10, rng.Float64()*10
		x = append(x, []float64{a, b, 1})
		y = append(y, 3*a-2*b+7)
	}
	res, err := Solve(x, y)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	want := []float64{3, -2, 7}
	for i, w := range want {
		if !almostEqual(res.Coef[i], w, 1e-8) {
			t.Errorf("coef[%d] = %v, want %v", i, res.Coef[i], w)
		}
	}
	if r2 := res.R2(); !almostEqual(r2, 1, 1e-9) {
		t.Errorf("R2 = %v, want 1", r2)
	}
}

func TestNoisyFitReasonable(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var x [][]float64
	var y []float64
	for i := 0; i < 400; i++ {
		a := rng.Float64() * 100
		x = append(x, []float64{a, 1})
		y = append(y, 5*a+100+rng.NormFloat64()*10)
	}
	res, err := Solve(x, y)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !almostEqual(res.Coef[0], 5, 0.1) {
		t.Errorf("slope = %v, want ~5", res.Coef[0])
	}
	if res.VarRatio() > 0.05 {
		t.Errorf("VAR = %v, want small for mostly-linear data", res.VarRatio())
	}
}

func TestSingularSystems(t *testing.T) {
	// Fewer observations than coefficients.
	if _, err := Solve([][]float64{{1, 2, 3}}, []float64{1}); err == nil {
		t.Error("underdetermined system did not fail")
	}
	// Perfectly collinear predictors.
	x := [][]float64{{1, 2}, {2, 4}, {3, 6}, {4, 8}}
	y := []float64{1, 2, 3, 4}
	if _, err := Solve(x, y); err == nil {
		t.Error("collinear system did not fail")
	}
}

func TestInputValidation(t *testing.T) {
	if _, err := Solve(nil, nil); err == nil {
		t.Error("empty input did not fail")
	}
	if _, err := Solve([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths did not fail")
	}
	if _, err := Solve([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("ragged matrix did not fail")
	}
	if _, err := Solve([][]float64{{}, {}}, []float64{1, 2}); err == nil {
		t.Error("zero predictors did not fail")
	}
}

// TestQuickExactRecovery is a property test: for random well-conditioned
// linear systems, Solve recovers the generating coefficients.
func TestQuickExactRecovery(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(4)
		n := p + 5 + rng.Intn(20)
		coef := make([]float64, p)
		for i := range coef {
			coef[i] = rng.Float64()*20 - 10
		}
		x := make([][]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			row := make([]float64, p)
			dot := 0.0
			for j := 0; j < p; j++ {
				row[j] = rng.Float64()*10 + float64(j) // well-spread
				dot += row[j] * coef[j]
			}
			x[i] = row
			y[i] = dot
		}
		res, err := Solve(x, y)
		if err != nil {
			return false
		}
		for j := 0; j < p; j++ {
			if !almostEqual(res.Coef[j], coef[j], 1e-6*(1+math.Abs(coef[j]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickResidualInvariants: SSR >= 0, SST >= 0, and for a model with an
// intercept-like column the fit's SSR never exceeds SST by more than
// rounding.
func TestQuickResidualInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(30)
		x := make([][]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			x[i] = []float64{rng.Float64() * 10, 1}
			y[i] = rng.Float64() * 100
		}
		res, err := Solve(x, y)
		if err != nil {
			return true // singular by chance: fine
		}
		if res.SSR < -1e-9 || res.SST < -1e-9 {
			return false
		}
		return res.SSR <= res.SST*(1+1e-9)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
