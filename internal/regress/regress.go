// Package regress implements the least-squares linear regression that MBR
// uses to solve Y = T·C for the component-time vector T (paper Eq. 3), via
// the normal equations and Gaussian elimination with partial pivoting.
package regress

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when the normal equations are (numerically)
// singular — e.g. fewer distinct invocations than components.
var ErrSingular = errors.New("regress: singular system")

// Result holds a fitted model.
type Result struct {
	// Coef is the fitted coefficient vector (T in the paper).
	Coef []float64
	// SSR is the sum of squared residuals; SST the total sum of squares of
	// the observations. Their ratio is MBR's rating variance VAR (paper §3).
	SSR, SST float64
}

// VarRatio returns SSR/SST, the paper's VAR for MBR (0 when SST is 0).
func (r *Result) VarRatio() float64 {
	if r.SST == 0 {
		return 0
	}
	return r.SSR / r.SST
}

// R2 returns the coefficient of determination 1 − SSR/SST.
func (r *Result) R2() float64 { return 1 - r.VarRatio() }

// Solve fits y ≈ X·coef by least squares. X is row-major: X[i] is the
// predictor vector of observation i (the component counts C(·,i)); y[i] is
// the observed TS invocation time. It requires len(X) ≥ len(X[0]) ≥ 1.
func Solve(x [][]float64, y []float64) (*Result, error) {
	n := len(x)
	if n == 0 || n != len(y) {
		return nil, fmt.Errorf("regress: need matching non-empty X (%d rows) and y (%d)", n, len(y))
	}
	p := len(x[0])
	if p == 0 {
		return nil, errors.New("regress: zero predictors")
	}
	for i, row := range x {
		if len(row) != p {
			return nil, fmt.Errorf("regress: ragged X at row %d", i)
		}
	}
	if n < p {
		return nil, fmt.Errorf("%w: %d observations for %d coefficients", ErrSingular, n, p)
	}

	// Normal equations: (XᵀX) coef = Xᵀy.
	xtx := make([][]float64, p)
	for i := range xtx {
		xtx[i] = make([]float64, p)
	}
	xty := make([]float64, p)
	for k := 0; k < n; k++ {
		row := x[k]
		for i := 0; i < p; i++ {
			xty[i] += row[i] * y[k]
			for j := i; j < p; j++ {
				xtx[i][j] += row[i] * row[j]
			}
		}
	}
	for i := 0; i < p; i++ {
		for j := 0; j < i; j++ {
			xtx[i][j] = xtx[j][i]
		}
	}

	coef, err := gauss(xtx, xty)
	if err != nil {
		return nil, err
	}

	res := &Result{Coef: coef}
	ybar := 0.0
	for _, v := range y {
		ybar += v
	}
	ybar /= float64(n)
	for k := 0; k < n; k++ {
		pred := 0.0
		for i := 0; i < p; i++ {
			pred += x[k][i] * coef[i]
		}
		r := y[k] - pred
		res.SSR += r * r
		d := y[k] - ybar
		res.SST += d * d
	}
	return res, nil
}

// gauss solves a·x = b in place with partial pivoting.
func gauss(a [][]float64, b []float64) ([]float64, error) {
	n := len(b)
	for col := 0; col < n; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-12 {
			return nil, fmt.Errorf("%w: pivot %d", ErrSingular, col)
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= a[i][j] * x[j]
		}
		x[i] = s / a[i][i]
	}
	return x, nil
}
