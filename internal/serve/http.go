package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"peak/internal/fault"
	"peak/internal/store"
)

// Stats is the GET /stats payload. Every figure is finite by
// construction: the pool utilization is clamped to [0, 1]
// (sched.Stats.Utilization) and the cache hit rate is 0 when no lookup
// has happened yet (vcache.Stats.HitRate) — json.Marshal rejects NaN, so
// a fresh server's /stats depends on those clamps.
type Stats struct {
	Draining bool `json:"draining"`
	// Jobs counts jobs by state.
	Jobs map[string]int `json:"jobs"`
	// QueueDepth/QueueCapacity describe the admission queue; JobSlots the
	// concurrent-job limit.
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
	JobSlots      int `json:"job_slots"`
	// Pool is the shared scheduler pool's instrumentation.
	Pool PoolStats `json:"pool"`
	// Cache is the process-wide shared compile cache (absent when the
	// server runs with private per-job caches).
	Cache *CacheStats `json:"cache,omitempty"`
	// JournalIDs is the number of checkpoint IDs holding resumable state
	// (absent without a journal).
	JournalIDs *int `json:"journal_ids,omitempty"`
	// JournalRecovery summarizes what OpenJournal found on disk (absent
	// without a journal): torn tails truncated, corrupt records dropped.
	JournalRecovery *fault.RecoveryReport `json:"journal_recovery,omitempty"`
	// Store is the persistent warm-start store's snapshot/flush side
	// (absent without -cache-dir).
	Store *StoreStats `json:"store,omitempty"`
	// Memo is the store's memo table: rating/measurement/job records loaded,
	// queued and consulted (absent without -cache-dir).
	Memo *MemoStats `json:"memo,omitempty"`
	// Breaker is the circuit breaker's state (absent when disabled).
	Breaker *BreakerStats `json:"breaker,omitempty"`
	// WatchdogStalls counts jobs the watchdog canceled for making no round
	// progress.
	WatchdogStalls int64 `json:"watchdog_stalls"`
	// RetryAfterSeconds is the current 429 hint: the estimated wait behind
	// the queued work, from the recent mean job duration.
	RetryAfterSeconds int `json:"retry_after_seconds"`
}

// PoolStats mirrors sched.Stats for the shared pool.
type PoolStats struct {
	Workers     int     `json:"workers"`
	JobsQueued  int64   `json:"jobs_queued"`
	JobsRunning int64   `json:"jobs_running"`
	JobsDone    int64   `json:"jobs_done"`
	Cycles      int64   `json:"cycles"`
	Utilization float64 `json:"utilization"`
}

// CacheStats mirrors vcache.Stats for the shared compile cache. The two
// disk-tier figures (Preloaded, DiskHits) are omitted when zero, so the
// /stats bytes are unchanged for servers running without a store.
type CacheStats struct {
	Lookups  int64   `json:"lookups"`
	Hits     int64   `json:"hits"`
	Misses   int64   `json:"misses"`
	Shared   int64   `json:"shared"`
	HitRate  float64 `json:"hit_rate"`
	Entries  int64   `json:"entries"`
	Versions int64   `json:"versions"`
	Bytes    int64   `json:"bytes"`
	// Preloaded counts entries installed from the store's snapshot at boot;
	// DiskHits the lookups those preloaded entries answered.
	Preloaded int64 `json:"preloaded,omitempty"`
	DiskHits  int64 `json:"disk_hits,omitempty"`
}

// StoreStats is the /stats "store" block: the persistent warm-start
// store's load/flush counters plus the server's own restoration tally.
type StoreStats struct {
	// Versions and Entries count the compile-cache bodies and alias keys
	// loaded from disk at Open; Preloaded the alias keys installed into the
	// shared cache at boot.
	Versions  int64 `json:"versions"`
	Entries   int64 `json:"entries"`
	Preloaded int64 `json:"preloaded"`
	// RestoredJobs counts finished jobs rebuilt from job artifacts at boot;
	// each answers duplicate submissions with zero simulator invocations.
	RestoredJobs int64 `json:"restored_jobs"`
	// Flushes and FlushedBytes describe Flush rewrites this process;
	// FlushError is the last drain-time flush failure (absent when none).
	Flushes      int64  `json:"flushes"`
	FlushedBytes int64  `json:"flushed_bytes"`
	FlushError   string `json:"flush_error,omitempty"`
	// Recovery reports what Open found on disk (torn tails, corrupt or
	// fingerprint-mismatched records dropped).
	Recovery store.RecoveryReport `json:"recovery"`
}

// MemoStats is the /stats "memo" block: the store's memo table of
// finished rating, measurement and job records.
type MemoStats struct {
	// Records is the frozen read set loaded at Open; Pending the new
	// records queued for the next flush.
	Records int64 `json:"records"`
	Pending int64 `json:"pending"`
	// Hits and Misses count lookups against the frozen read set — a hit is
	// a simulation that never ran.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// Stats assembles the current server statistics.
func (s *Server) Stats() Stats {
	st := Stats{
		Draining:      s.draining.Load(),
		Jobs:          map[string]int{},
		QueueDepth:    len(s.queue),
		QueueCapacity: cap(s.queue),
		JobSlots:      s.opts.Jobs,
	}
	s.mu.Lock()
	for _, j := range s.jobs {
		j.mu.Lock()
		st.Jobs[j.state]++
		j.mu.Unlock()
	}
	s.mu.Unlock()
	ps := s.pool.Stats()
	st.Pool = PoolStats{
		Workers:     s.pool.Workers(),
		JobsQueued:  ps.JobsQueued.Load(),
		JobsRunning: ps.JobsRunning.Load(),
		JobsDone:    ps.JobsDone.Load(),
		Cycles:      ps.Cycles.Load(),
		Utilization: ps.Utilization(s.pool.Workers()),
	}
	if s.cache != nil {
		cs := s.cache.Stats()
		st.Cache = &CacheStats{
			Lookups: cs.Lookups, Hits: cs.Hits, Misses: cs.Misses,
			Shared: cs.Shared, HitRate: cs.HitRate(),
			Entries: cs.Entries, Versions: cs.Versions, Bytes: cs.Bytes,
			Preloaded: cs.Preloaded, DiskHits: cs.DiskHits,
		}
	}
	if s.store != nil {
		ss := s.store.Stats()
		s.mu.Lock()
		flushErr := s.storeFlushErr
		s.mu.Unlock()
		st.Store = &StoreStats{
			Versions:     ss.Versions,
			Entries:      ss.Entries,
			Preloaded:    ss.Preloaded,
			RestoredJobs: s.restoredJobs.Load(),
			Flushes:      ss.Flushes,
			FlushedBytes: ss.FlushedBytes,
			FlushError:   flushErr,
			Recovery:     s.store.Recovery(),
		}
		st.Memo = &MemoStats{
			Records: ss.Memos,
			Pending: ss.Pending,
			Hits:    ss.MemoHits,
			Misses:  ss.MemoMisses,
		}
	}
	if s.journal != nil {
		n := s.journal.Len()
		st.JournalIDs = &n
		rr := s.journal.Recovery()
		st.JournalRecovery = &rr
	}
	st.Breaker = s.breaker.snapshot()
	st.WatchdogStalls = s.watchdogStalls.Load()
	st.RetryAfterSeconds = s.RetryAfterSeconds()
	return st
}

// Handler returns the service's HTTP routes (Go 1.22 method+pattern mux):
//
//	POST /tune              submit a job (idempotent per canonical spec)
//	GET  /jobs              list all jobs, sorted by spec
//	GET  /jobs/{id}         one job's snapshot
//	GET  /jobs/{id}/trace   the job's JSONL event trace (once terminal)
//	GET  /jobs/{id}/report  the job's text report (byte-for-byte cmd/peak)
//	GET  /healthz           liveness + draining flag
//	GET  /stats             pool, cache, queue and job statistics
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /tune", s.handleTune)
	mux.HandleFunc("GET /jobs", s.handleJobs)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("GET /jobs/{id}/report", s.handleJobReport)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, fmt.Sprintf("encode response: %v", err), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(data, '\n'))
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) handleTune(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	res, code, err := s.Submit(req)
	if err != nil {
		switch code {
		case http.StatusTooManyRequests:
			// The queue is full of multi-second tuning jobs: tell the
			// client how long the queued work ahead of it should take.
			w.Header().Set("Retry-After", strconv.Itoa(s.RetryAfterSeconds()))
		case http.StatusServiceUnavailable:
			// An open breaker knows its remaining cooldown; a draining
			// server is going away and sets no hint.
			if secs := s.breaker.retryAfterSeconds(); secs > 0 {
				w.Header().Set("Retry-After", strconv.Itoa(secs))
			}
		}
		writeError(w, code, err)
		return
	}
	writeJSON(w, code, res)
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	res, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	data, done, ok := s.JobTrace(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	if !done {
		writeError(w, http.StatusConflict, fmt.Errorf("job %q has not finished; its trace is flushed at completion", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Write(data)
}

func (s *Server) handleJobReport(w http.ResponseWriter, r *http.Request) {
	res, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	if res.State != StateDone {
		writeError(w, http.StatusConflict, fmt.Errorf("job %q is %s; the report exists once it is done", res.ID, res.State))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, res.Report)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Degraded (breaker shedding or probing) is still 200: the server is
	// alive and serving cached results; load balancers that should stop
	// routing fresh work read the status field.
	body := map[string]any{"status": "ok", "draining": s.draining.Load()}
	if s.breaker.degraded() {
		body["status"] = "degraded"
		body["breaker"] = s.breaker.snapshot().State
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
