// Package serve implements the peak-serve tuning daemon: a long-running
// HTTP/JSON service that accepts tuning jobs (POST /tune), runs them
// concurrently on a shared scheduler pool through core.Tuner, and exposes
// results, per-job traces and reports, health, and server statistics.
//
// The service extends the repository's determinism contract across
// concurrency: a job's terminal Result, report and trace are byte-identical
// whether it ran alone or interleaved with any number of other jobs, with
// the shared compile cache on or off. Three mechanisms carry that:
//
//   - Jobs are content-addressed. A job's ID is a hash of its canonical
//     spec, so identical requests share one job (idempotent POST) and a
//     job's identity — which seeds every random stream in the tune via
//     sched.DeriveSeed — never depends on arrival order.
//   - Observability is per-job. Each job gets its own trace.Buffer,
//     trace.Tracer (seq restarts at 1) and trace.Metrics registry; the
//     shared cache's global counters never leak into a job's ledger
//     (TuneResult's cache counters are the tune's own memo table).
//   - Sharing is semantics-free. The compile cache stores frozen,
//     deterministically compiled versions, so sharing it across jobs
//     changes wall time, never results.
//
// Draining (SIGINT/SIGTERM in cmd/peak-serve, or Server.Drain) is
// graceful: running jobs stop at the next Iterative Elimination round
// boundary via Tuner.Interrupt, their completed rounds already checkpointed
// in the shared journal; queued jobs are marked interrupted untouched.
// Re-POSTing an interrupted job's request to a server holding the same
// journal resumes it byte-identically.
package serve

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"

	"peak/internal/cli"
	"peak/internal/core"
	"peak/internal/fault"
	"peak/internal/opt"
	"peak/internal/profiling"
	"peak/internal/sched"
	"peak/internal/trace"
	"peak/internal/vcache"
)

// Options configures a Server.
type Options struct {
	// Workers is the shared scheduler pool's width (0 = GOMAXPROCS); all
	// jobs' candidate ratings shard across this one pool.
	Workers int
	// Jobs is the number of jobs allowed to run concurrently (job slots);
	// <= 0 means 1.
	Jobs int
	// Queue is the bounded job queue's capacity; a POST arriving with the
	// queue full is refused with 429 + Retry-After. <= 0 means 8.
	Queue int
	// NoSharedCache gives every job a private compile cache instead of
	// the process-wide shared one. Results are byte-identical either way;
	// only wall time and the /stats cache totals change.
	NoSharedCache bool
	// Journal, when non-nil, checkpoints every job after each completed
	// tuning round, keyed by "serve/" + canonical spec, and resumes jobs
	// whose spec already has journaled state. JournalPath is echoed in
	// drain messages ("" for an in-memory journal).
	Journal     *fault.Journal
	JournalPath string
}

// Server is the tuning service. Create with New, attach Handler to an
// http.Server, and call Start; stop with Drain.
type Server struct {
	opts    Options
	pool    sched.Pool
	cache   *vcache.Cache // nil when NoSharedCache
	journal *fault.Journal

	queue    chan *job
	draining atomic.Bool
	drainCh  chan struct{}
	wg       sync.WaitGroup

	mu   sync.Mutex
	jobs map[string]*job // job ID -> job

	// gate, when non-nil, is received from before each job runs — test
	// instrumentation for pinning admission-control and drain timing.
	gate chan struct{}
}

// New builds a Server from opts. Call Start before serving requests.
func New(opts Options) *Server {
	if opts.Jobs <= 0 {
		opts.Jobs = 1
	}
	if opts.Queue <= 0 {
		opts.Queue = 8
	}
	s := &Server{
		opts:    opts,
		pool:    sched.New(opts.Workers),
		journal: opts.Journal,
		queue:   make(chan *job, opts.Queue),
		drainCh: make(chan struct{}),
		jobs:    make(map[string]*job),
	}
	if !opts.NoSharedCache {
		s.cache = vcache.New()
	}
	return s
}

// Start launches the job slots. It returns immediately.
func (s *Server) Start() {
	for i := 0; i < s.opts.Jobs; i++ {
		s.wg.Add(1)
		go s.slot()
	}
}

// slot is one job-runner goroutine: it drains the queue until Drain is
// signalled and the queue is empty. Jobs dequeued after the drain signal
// are marked interrupted without running (nothing is checkpointed for
// them, so resubmission simply starts them fresh).
func (s *Server) slot() {
	defer s.wg.Done()
	for {
		select {
		case j := <-s.queue:
			s.dispatch(j)
		case <-s.drainCh:
			// Drain signalled: flush what is still queued, then exit.
			for {
				select {
				case j := <-s.queue:
					s.dispatch(j)
				default:
					return
				}
			}
		}
	}
}

func (s *Server) dispatch(j *job) {
	if s.gate != nil {
		<-s.gate
	}
	if s.draining.Load() {
		j.mu.Lock()
		j.state = StateInterrupted
		j.errMsg = "server draining before the job started; resubmit to resume"
		j.mu.Unlock()
		return
	}
	s.runJob(j)
}

// Submit validates, canonicalizes and enqueues a request. The returned
// code is the HTTP status the job's admission maps to: 202 accepted, 200
// already known (idempotent resubmission — also how an interrupted job is
// resumed after a restart), 400 invalid, 429 queue full, 503 draining.
func (s *Server) Submit(req Request) (Result, int, error) {
	sp, err := parseSpec(req)
	if err != nil {
		return Result{}, 400, err
	}
	if s.draining.Load() {
		return Result{}, 503, errors.New("server is draining")
	}
	j := newJob(sp)
	s.mu.Lock()
	if existing, ok := s.jobs[j.id]; ok {
		// Same canonical spec: the job already exists (possibly finished).
		// An interrupted job is re-queued so a restarted server resumes it
		// from the journal; any other state is simply reported.
		requeue := false
		existing.mu.Lock()
		if existing.state == StateInterrupted {
			existing.state = StateQueued
			existing.errMsg = ""
			requeue = true
		}
		existing.mu.Unlock()
		s.mu.Unlock()
		if requeue {
			select {
			case s.queue <- existing:
			default:
				existing.mu.Lock()
				existing.state = StateInterrupted
				existing.errMsg = "job queue full before resume could start; resubmit to resume"
				existing.mu.Unlock()
				return existing.snapshot(), 429, errors.New("job queue is full")
			}
		}
		return existing.snapshot(), 200, nil
	}
	s.jobs[j.id] = j
	s.mu.Unlock()

	select {
	case s.queue <- j:
		return j.snapshot(), 202, nil
	default:
		s.mu.Lock()
		delete(s.jobs, j.id)
		s.mu.Unlock()
		return Result{}, 429, errors.New("job queue is full")
	}
}

// Job returns the snapshot of a job by ID.
func (s *Server) Job(id string) (Result, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return Result{}, false
	}
	return j.snapshot(), true
}

// JobTrace returns a job's flushed JSONL trace and whether the job has
// reached a terminal state (the trace is only written then).
func (s *Server) JobTrace(id string) (data []byte, done, ok bool) {
	s.mu.Lock()
	j, found := s.jobs[id]
	s.mu.Unlock()
	if !found {
		return nil, false, false
	}
	data, done = j.trace()
	return data, done, true
}

// Jobs lists every job's snapshot, sorted by canonical spec (stable
// regardless of submission order).
func (s *Server) Jobs() []Result {
	s.mu.Lock()
	js := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		js = append(js, j)
	}
	s.mu.Unlock()
	out := make([]Result, len(js))
	for i, j := range js {
		out[i] = j.snapshot()
	}
	// Sort after snapshotting so we hold no job locks while comparing.
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && out[k].Spec < out[k-1].Spec; k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	return out
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain gracefully stops the server's job slots: no new submissions are
// admitted, running jobs stop at their next round boundary (state
// "interrupted", completed rounds checkpointed when a journal is
// attached), queued jobs are marked interrupted unrun. It blocks until
// every slot has exited, syncs the journal, and returns the interrupted
// jobs' snapshots — cmd/peak-serve prints a resume command for each.
func (s *Server) Drain() []Result {
	if !s.draining.CompareAndSwap(false, true) {
		s.wg.Wait()
	} else {
		close(s.drainCh)
		s.wg.Wait()
	}
	if s.journal != nil {
		s.journal.Sync()
	}
	var interrupted []Result
	for _, r := range s.Jobs() {
		if r.State == StateInterrupted || r.State == StateQueued {
			interrupted = append(interrupted, r)
		}
	}
	return interrupted
}

// runJob executes one job, mirroring cmd/peak exactly so the report is
// byte-for-byte the CLI's output for the same arguments: profile, tune
// (consultant path on train; forced method on the requested dataset),
// then measure -O3 and the winner on the ref dataset.
func (s *Server) runJob(j *job) {
	j.setState(StateRunning)
	sp := j.spec

	// Per-job observability: a private buffer, metrics registry and — at
	// the end — tracer, so the job's trace is byte-identical however many
	// neighbours it ran with.
	buf := trace.NewBuffer()
	mx := trace.NewMetrics()

	fail := func(err error) {
		j.mu.Lock()
		defer j.mu.Unlock()
		if errors.Is(err, core.ErrInterrupted) {
			j.state = StateInterrupted
			j.errMsg = "interrupted by drain; completed rounds are checkpointed — resubmit to resume"
		} else {
			j.state = StateFailed
			j.errMsg = err.Error()
		}
	}

	cfg := core.DefaultConfig()
	if sp.noise != nil {
		cfg.Noise = sp.noise
	}
	// The consultant path profiles and tunes on train (cmd/peak without
	// -method); a forced method profiles and tunes on the requested
	// dataset (cmd/peak -method).
	ds := sp.dataset
	if sp.force == nil {
		ds = sp.bench.Train
	}
	prof, err := profiling.Run(sp.bench, ds, sp.mach)
	if err != nil {
		fail(err)
		return
	}
	t := &core.Tuner{
		Bench:        sp.bench,
		Mach:         sp.mach,
		Dataset:      ds,
		Cfg:          cfg,
		Profile:      prof,
		Force:        sp.force,
		Candidates:   sp.candidates,
		Interrupt:    s.draining.Load,
		Pool:         s.pool,
		Cache:        s.cache,
		Journal:      s.journal,
		CheckpointID: sp.checkpointID(),
		Trace:        buf,
	}
	res, err := t.Tune()
	if err != nil {
		fail(err)
		return
	}
	base, _, err := core.MeasurePerformance(sp.bench, sp.bench.Ref, sp.mach, opt.O3())
	if err != nil {
		fail(err)
		return
	}
	tuned, _, err := core.MeasurePerformance(sp.bench, sp.bench.Ref, sp.mach, res.Best)
	if err != nil {
		fail(err)
		return
	}
	res.FillMetrics(mx)

	var tb bytes.Buffer
	tr := trace.NewTracer(&tb)
	tr.Flush(buf)
	if err := tr.Close(); err != nil {
		fail(err)
		return
	}

	j.mu.Lock()
	j.state = StateDone
	j.res = res
	j.report = cli.FormatTuneReport(sp.bench, sp.mach, res, false, base, tuned)
	j.metrics = mx.Format()
	j.traceData = tb.Bytes()
	j.mu.Unlock()
}
