// Package serve implements the peak-serve tuning daemon: a long-running
// HTTP/JSON service that accepts tuning jobs (POST /tune), runs them
// concurrently on a shared scheduler pool through core.Tuner, and exposes
// results, per-job traces and reports, health, and server statistics.
//
// The service extends the repository's determinism contract across
// concurrency: a job's terminal Result, report and trace are byte-identical
// whether it ran alone or interleaved with any number of other jobs, with
// the shared compile cache on or off. Three mechanisms carry that:
//
//   - Jobs are content-addressed. A job's ID is a hash of its canonical
//     spec, so identical requests share one job (idempotent POST) and a
//     job's identity — which seeds every random stream in the tune via
//     sched.DeriveSeed — never depends on arrival order.
//   - Observability is per-job. Each job gets its own trace.Buffer,
//     trace.Tracer (seq restarts at 1) and trace.Metrics registry; the
//     shared cache's global counters never leak into a job's ledger
//     (TuneResult's cache counters are the tune's own memo table).
//   - Sharing is semantics-free. The compile cache stores frozen,
//     deterministically compiled versions, so sharing it across jobs
//     changes wall time, never results.
//
// Draining (SIGINT/SIGTERM in cmd/peak-serve, or Server.Drain) is
// graceful: running jobs stop at the next Iterative Elimination round
// boundary via Tuner.Interrupt, their completed rounds already checkpointed
// in the shared journal; queued jobs are marked interrupted untouched.
// Re-POSTing an interrupted job's request to a server holding the same
// journal resumes it byte-identically.
package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"peak/internal/cli"
	"peak/internal/core"
	"peak/internal/fault"
	"peak/internal/opt"
	"peak/internal/profiling"
	"peak/internal/sched"
	"peak/internal/store"
	"peak/internal/trace"
	"peak/internal/vcache"
)

// Options configures a Server.
type Options struct {
	// Workers is the shared scheduler pool's width (0 = GOMAXPROCS); all
	// jobs' candidate ratings shard across this one pool.
	Workers int
	// Jobs is the number of jobs allowed to run concurrently (job slots);
	// <= 0 means 1.
	Jobs int
	// Queue is the bounded job queue's capacity; a POST arriving with the
	// queue full is refused with 429 + Retry-After. <= 0 means 8.
	Queue int
	// NoSharedCache gives every job a private compile cache instead of
	// the process-wide shared one. Results are byte-identical either way;
	// only wall time and the /stats cache totals change.
	NoSharedCache bool
	// Journal, when non-nil, checkpoints every job after each completed
	// tuning round, keyed by "serve/" + canonical spec, and resumes jobs
	// whose spec already has journaled state. JournalPath is echoed in
	// drain messages ("" for an in-memory journal).
	Journal     *fault.Journal
	JournalPath string

	// Deadline is the default per-job wall-clock budget (0 = none); a
	// request's deadline_ms overrides it. An overrunning job is canceled
	// at its next round boundary through the engine's Interrupt hook and
	// reported timed_out with its completed rounds checkpointed —
	// resubmission resumes it.
	Deadline time.Duration

	// WatchdogStall, when > 0, arms the watchdog: a running job that makes
	// no round progress for this long is canceled like a deadline overrun
	// (state timed_out, reason "watchdog: ..."). WatchdogPoll is the scan
	// interval (0 = WatchdogStall/4, floored at 10ms).
	WatchdogStall time.Duration
	WatchdogPoll  time.Duration

	// BreakerFailures, when > 0, arms the circuit breaker: that many
	// consecutive job failures trip it open, shedding new non-duplicate
	// work with 503 (duplicate-spec results keep serving) until
	// BreakerCooldown (0 = 30s) elapses and a probe job half-opens it.
	BreakerFailures int
	BreakerCooldown time.Duration
	// QuarantineStorm, when > 0, makes a job that completes with at least
	// this many quarantined flags (miscompile storm from the fault layer)
	// count as a breaker failure even though the job itself is done.
	QuarantineStorm int

	// Store, when non-nil, is the persistent warm-start store
	// (cmd/peak-serve -cache-dir): at New the store's compile-cache
	// snapshot preloads the shared cache and every finished job recorded in
	// a previous process is restored in state "done" — a duplicate
	// submission is then answered without running a single simulation. At
	// Drain the store is flushed (cache snapshot + new memo records +
	// finished-job artifacts) so the next boot warm-starts from this one.
	// Results, reports and traces stay byte-identical with or without a
	// store; only wall time and the /stats store/memo blocks change.
	Store *store.Store
}

// Server is the tuning service. Create with New, attach Handler to an
// http.Server, and call Start; stop with Drain.
type Server struct {
	opts    Options
	pool    sched.Pool
	cache   *vcache.Cache // nil when NoSharedCache
	journal *fault.Journal
	store   *store.Store // nil without -cache-dir

	// restoredJobs counts finished jobs rebuilt from store artifacts at
	// New; storeFlushErr (under mu) records the last drain-flush failure.
	restoredJobs  atomic.Int64
	storeFlushErr string

	queue    chan *job
	draining atomic.Bool
	drainCh  chan struct{}
	wg       sync.WaitGroup

	// breaker is the failure-storm circuit breaker (nil = disabled);
	// watchdogStalls counts jobs the watchdog canceled.
	breaker        *breaker
	watchdogStalls atomic.Int64

	mu   sync.Mutex
	jobs map[string]*job // job ID -> job

	// durMu guards durations, a ring of the last recentDurations job wall
	// times (seconds) feeding the Retry-After estimate.
	durMu     sync.Mutex
	durations []float64
	durNext   int

	// gate, when non-nil, is received from before each job runs — test
	// instrumentation for pinning admission-control and drain timing.
	// roundGate, when non-nil, is received from at every Interrupt poll —
	// test instrumentation for freezing tunes at round boundaries.
	gate      chan struct{}
	roundGate chan struct{}
}

// recentDurations is the Retry-After estimator's window: the mean of the
// last 32 completed jobs' wall times.
const recentDurations = 32

// New builds a Server from opts. Call Start before serving requests.
func New(opts Options) *Server {
	if opts.Jobs <= 0 {
		opts.Jobs = 1
	}
	if opts.Queue <= 0 {
		opts.Queue = 8
	}
	s := &Server{
		opts:    opts,
		pool:    sched.New(opts.Workers),
		journal: opts.Journal,
		queue:   make(chan *job, opts.Queue),
		drainCh: make(chan struct{}),
		jobs:    make(map[string]*job),
		breaker: newBreaker(opts.BreakerFailures, opts.BreakerCooldown),
	}
	if !opts.NoSharedCache {
		s.cache = vcache.New()
	}
	if opts.Store != nil {
		s.store = opts.Store
		if s.cache != nil {
			s.store.AttachCache(s.cache)
		}
		s.restoreJobs()
	}
	return s
}

// restoreJobs rebuilds finished jobs from the store's job artifacts (the
// frozen read set loaded at Open). Each restored job sits in the jobs map
// in state "done" with its original result, report, metrics and trace, so
// a duplicate submission is answered from memory with zero simulator
// invocations. Artifacts that fail to decode, or whose canonical spec no
// longer matches their key (schema drift across versions), are skipped —
// the job simply runs fresh when resubmitted.
func (s *Server) restoreJobs() {
	s.store.MemoEach(core.MemoKindJob, func(key string, payload []byte) {
		var art jobArtifact
		if err := json.Unmarshal(payload, &art); err != nil {
			return
		}
		var req Request
		if err := json.Unmarshal(art.Request, &req); err != nil {
			return
		}
		sp, err := parseSpec(req)
		if err != nil || sp.canonical != key {
			return
		}
		j := newJob(sp)
		j.state = StateDone
		j.res = art.Result
		j.report = art.Report
		j.metrics = art.Metrics
		j.traceData = art.Trace
		s.mu.Lock()
		s.jobs[j.id] = j
		s.mu.Unlock()
		s.restoredJobs.Add(1)
	})
}

// Start launches the job slots (and the watchdog when armed). It returns
// immediately.
func (s *Server) Start() {
	for i := 0; i < s.opts.Jobs; i++ {
		s.wg.Add(1)
		go s.slot()
	}
	if s.opts.WatchdogStall > 0 {
		s.wg.Add(1)
		go s.watchdog()
	}
}

// watchdog periodically scans the running jobs and cancels any whose last
// round-progress stamp is older than WatchdogStall. The cancel fires
// through the same Interrupt path as a deadline, so the stalled job exits
// as timed_out at its next round boundary with its completed rounds
// checkpointed. A tune stuck *inside* a round can only be abandoned at
// that boundary; until then the stall is still visible in /stats.
func (s *Server) watchdog() {
	defer s.wg.Done()
	poll := s.opts.WatchdogPoll
	if poll <= 0 {
		poll = s.opts.WatchdogStall / 4
	}
	if poll < 10*time.Millisecond {
		poll = 10 * time.Millisecond
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		select {
		case <-s.drainCh:
			return
		case <-ticker.C:
		}
		cutoff := time.Now().Add(-s.opts.WatchdogStall).UnixNano()
		s.mu.Lock()
		running := make([]*job, 0, len(s.jobs))
		for _, j := range s.jobs {
			j.mu.Lock()
			if j.state == StateRunning {
				running = append(running, j)
			}
			j.mu.Unlock()
		}
		s.mu.Unlock()
		for _, j := range running {
			if last := j.progress.Load(); last > 0 && last < cutoff && j.canceled() == "" {
				j.cancelWith(fmt.Sprintf("watchdog: no round progress for %s", s.opts.WatchdogStall))
				s.watchdogStalls.Add(1)
			}
		}
	}
}

// slot is one job-runner goroutine: it drains the queue until Drain is
// signalled and the queue is empty. Jobs dequeued after the drain signal
// are marked interrupted without running (nothing is checkpointed for
// them, so resubmission simply starts them fresh).
func (s *Server) slot() {
	defer s.wg.Done()
	for {
		select {
		case j := <-s.queue:
			s.dispatch(j)
		case <-s.drainCh:
			// Drain signalled: flush what is still queued, then exit.
			for {
				select {
				case j := <-s.queue:
					s.dispatch(j)
				default:
					return
				}
			}
		}
	}
}

func (s *Server) dispatch(j *job) {
	if s.gate != nil {
		<-s.gate
	}
	if s.draining.Load() {
		j.mu.Lock()
		j.state = StateInterrupted
		j.errMsg = "server draining before the job started; resubmit to resume"
		j.mu.Unlock()
		return
	}
	s.runJob(j)
}

// Submit validates, canonicalizes and enqueues a request. The returned
// code is the HTTP status the job's admission maps to: 202 accepted, 200
// already known (idempotent resubmission — also how an interrupted or
// timed-out job is resumed), 400 invalid, 429 queue full, 503 draining or
// circuit breaker open. Known specs are answered before admission control,
// so an open breaker keeps serving finished results.
func (s *Server) Submit(req Request) (Result, int, error) {
	sp, err := parseSpec(req)
	if err != nil {
		return Result{}, 400, err
	}
	if s.draining.Load() {
		return Result{}, 503, errors.New("server is draining")
	}
	j := newJob(sp)
	s.mu.Lock()
	if existing, ok := s.jobs[j.id]; ok {
		// Same canonical spec: the job already exists (possibly finished).
		// An interrupted or timed-out job is re-queued so the tune resumes
		// from the journal; any other state is simply reported.
		requeue := false
		wasTimeout := false
		existing.mu.Lock()
		if existing.state == StateInterrupted || existing.state == StateTimedOut {
			wasTimeout = existing.state == StateTimedOut
			existing.state = StateQueued
			existing.errMsg = ""
			existing.cancelMsg = ""
			// The deadline is operational, not identity: the resume runs
			// under the new request's deadline (0 = the server default),
			// not the one that may just have expired.
			existing.spec.deadline = sp.deadline
			requeue = true
		}
		existing.mu.Unlock()
		s.mu.Unlock()
		if requeue {
			select {
			case s.queue <- existing:
			default:
				existing.mu.Lock()
				if wasTimeout {
					existing.state = StateTimedOut
				} else {
					existing.state = StateInterrupted
				}
				existing.errMsg = "job queue full before resume could start; resubmit to resume"
				existing.mu.Unlock()
				return existing.snapshot(), 429, errors.New("job queue is full")
			}
		}
		return existing.snapshot(), 200, nil
	}
	// New work passes the circuit breaker (while the breaker is open or
	// probing, fresh specs are shed; everything above — duplicates,
	// resumes, finished results — is served normally).
	if ok, reason := s.breaker.admit(j.id); !ok {
		s.mu.Unlock()
		return Result{}, 503, errors.New(reason)
	}
	s.jobs[j.id] = j
	s.mu.Unlock()

	select {
	case s.queue <- j:
		return j.snapshot(), 202, nil
	default:
		s.mu.Lock()
		delete(s.jobs, j.id)
		s.mu.Unlock()
		// If this job had just been admitted as the half-open probe, free
		// the probe slot — it never ran.
		s.breaker.abandon(j.id)
		return Result{}, 429, errors.New("job queue is full")
	}
}

// Job returns the snapshot of a job by ID.
func (s *Server) Job(id string) (Result, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return Result{}, false
	}
	return j.snapshot(), true
}

// JobTrace returns a job's flushed JSONL trace and whether the job has
// reached a terminal state (the trace is only written then).
func (s *Server) JobTrace(id string) (data []byte, done, ok bool) {
	s.mu.Lock()
	j, found := s.jobs[id]
	s.mu.Unlock()
	if !found {
		return nil, false, false
	}
	data, done = j.trace()
	return data, done, true
}

// Jobs lists every job's snapshot, sorted by canonical spec (stable
// regardless of submission order).
func (s *Server) Jobs() []Result {
	s.mu.Lock()
	js := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		js = append(js, j)
	}
	s.mu.Unlock()
	out := make([]Result, len(js))
	for i, j := range js {
		out[i] = j.snapshot()
	}
	// Sort after snapshotting so we hold no job locks while comparing.
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && out[k].Spec < out[k-1].Spec; k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	return out
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain gracefully stops the server's job slots: no new submissions are
// admitted, running jobs stop at their next round boundary (state
// "interrupted", completed rounds checkpointed when a journal is
// attached), queued jobs are marked interrupted unrun. It blocks until
// every slot has exited, syncs the journal, and returns the interrupted
// jobs' snapshots — cmd/peak-serve prints a resume command for each.
func (s *Server) Drain() []Result {
	if !s.draining.CompareAndSwap(false, true) {
		s.wg.Wait()
	} else {
		close(s.drainCh)
		s.wg.Wait()
	}
	if s.journal != nil {
		s.journal.Sync()
	}
	if s.store != nil {
		// Flush the warm-start store: the shared cache's snapshot, every
		// memo record the tunes produced, and every finished job's artifact.
		// A flush failure never blocks the drain — it is surfaced in /stats.
		if err := s.store.Flush(); err != nil {
			s.mu.Lock()
			s.storeFlushErr = err.Error()
			s.mu.Unlock()
		}
	}
	var interrupted []Result
	for _, r := range s.Jobs() {
		if r.State == StateInterrupted || r.State == StateQueued || r.State == StateTimedOut {
			interrupted = append(interrupted, r)
		}
	}
	return interrupted
}

// noteJobDuration records one job's wall time in the Retry-After ring.
func (s *Server) noteJobDuration(d time.Duration) {
	s.durMu.Lock()
	defer s.durMu.Unlock()
	if len(s.durations) < recentDurations {
		s.durations = append(s.durations, d.Seconds())
		return
	}
	s.durations[s.durNext] = d.Seconds()
	s.durNext = (s.durNext + 1) % recentDurations
}

// meanJobSeconds is the mean of the recorded ring (1s before any job has
// finished — tuning jobs are seconds-scale, never milliseconds).
func (s *Server) meanJobSeconds() float64 {
	s.durMu.Lock()
	defer s.durMu.Unlock()
	if len(s.durations) == 0 {
		return 1
	}
	var sum float64
	for _, v := range s.durations {
		sum += v
	}
	return sum / float64(len(s.durations))
}

// RetryAfterSeconds derives the 429 Retry-After hint from the work a
// refused client would wait behind: (queue depth + 1) slots of the recent
// mean job duration, divided across the job slots, rounded up and clamped
// to [1, 60]. The estimate is a pure function of those inputs, so it is
// unit-testable without a clock.
func (s *Server) RetryAfterSeconds() int {
	return retryAfterSeconds(len(s.queue), s.meanJobSeconds(), s.opts.Jobs)
}

// retryAfterSeconds is the deterministic core of RetryAfterSeconds.
func retryAfterSeconds(queueDepth int, meanSeconds float64, slots int) int {
	if slots < 1 {
		slots = 1
	}
	secs := float64(queueDepth+1) * meanSeconds / float64(slots)
	n := int(secs)
	if float64(n) < secs {
		n++
	}
	if n < 1 {
		n = 1
	}
	if n > 60 {
		n = 60
	}
	return n
}

// runJob executes one job, mirroring cmd/peak exactly so the report is
// byte-for-byte the CLI's output for the same arguments: profile, tune
// (consultant path on train; forced method on the requested dataset),
// then measure -O3 and the winner on the ref dataset. Around that core it
// runs the resilience bookkeeping: deadline/watchdog cancellation through
// the engine's Interrupt hook, liveness stamps for the watchdog, the
// Retry-After duration sample, and the circuit breaker's verdict.
func (s *Server) runJob(j *job) {
	j.noteProgress()
	j.setState(StateRunning)
	sp := j.spec
	start := time.Now()
	defer func() { s.noteJobDuration(time.Since(start)) }()

	// Per-job observability: a private buffer, metrics registry and — at
	// the end — tracer, so the job's trace is byte-identical however many
	// neighbours it ran with.
	buf := trace.NewBuffer()
	mx := trace.NewMetrics()

	fail := func(err error) {
		j.mu.Lock()
		if errors.Is(err, core.ErrInterrupted) {
			if j.cancelMsg != "" {
				j.state = StateTimedOut
				j.errMsg = j.cancelMsg + "; completed rounds are checkpointed — resubmit to resume"
			} else {
				j.state = StateInterrupted
				j.errMsg = "interrupted by drain; completed rounds are checkpointed — resubmit to resume"
			}
			j.mu.Unlock()
			// A canceled probe renders no verdict on the breaker.
			s.breaker.abandon(j.id)
			return
		}
		j.state = StateFailed
		j.errMsg = err.Error()
		j.mu.Unlock()
		s.breaker.failure(j.id, fmt.Sprintf("job %s (%s): %v", j.id, sp.canonical, err))
	}

	// The effective deadline: per-request, else the server default. The
	// Interrupt hook fires at round boundaries when the deadline passes, a
	// watchdog/deadline cancel is pending, or the server drains — and
	// every poll is a liveness stamp for the watchdog.
	var deadline time.Time
	if d := sp.deadline; d > 0 {
		deadline = start.Add(d)
	} else if s.opts.Deadline > 0 {
		deadline = start.Add(s.opts.Deadline)
	}
	interrupt := func() bool {
		j.noteProgress()
		if s.roundGate != nil {
			<-s.roundGate
		}
		if s.draining.Load() {
			return true
		}
		if j.canceled() != "" {
			return true
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			j.cancelWith(fmt.Sprintf("deadline %s exceeded", deadlineOf(sp.deadline, s.opts.Deadline)))
			return true
		}
		return false
	}

	cfg := core.DefaultConfig()
	if sp.noise != nil {
		cfg.Noise = sp.noise
	}
	cfg.Faults = sp.faults
	// The consultant path profiles and tunes on train (cmd/peak without
	// -method); a forced method profiles and tunes on the requested
	// dataset (cmd/peak -method).
	ds := sp.dataset
	if sp.force == nil {
		ds = sp.bench.Train
	}
	prof, err := profiling.Run(sp.bench, ds, sp.mach)
	if err != nil {
		fail(err)
		return
	}
	t := &core.Tuner{
		Bench:        sp.bench,
		Mach:         sp.mach,
		Dataset:      ds,
		Cfg:          cfg,
		Profile:      prof,
		Force:        sp.force,
		Candidates:   sp.candidates,
		Interrupt:    interrupt,
		OnRound:      func(int) { j.noteProgress() },
		Pool:         s.pool,
		Cache:        s.cache,
		Store:        s.store,
		Journal:      s.journal,
		CheckpointID: sp.checkpointID(),
		Trace:        buf,
	}
	res, err := t.Tune()
	if err != nil {
		fail(err)
		return
	}
	// The final measurements resolve through the shared cache and memoize
	// in the store (both nil-safe), so a warm restart answers them without
	// simulating. Measured cycles are identical on every path.
	base, _, err := core.MeasurePerformanceStored(sp.bench, sp.bench.Ref, sp.mach, opt.O3(), s.cache, s.store)
	if err != nil {
		fail(err)
		return
	}
	tuned, _, err := core.MeasurePerformanceStored(sp.bench, sp.bench.Ref, sp.mach, res.Best, s.cache, s.store)
	if err != nil {
		fail(err)
		return
	}
	res.FillMetrics(mx)

	var tb bytes.Buffer
	tr := trace.NewTracer(&tb)
	tr.Flush(buf)
	if err := tr.Close(); err != nil {
		fail(err)
		return
	}

	j.mu.Lock()
	j.state = StateDone
	j.res = res
	j.report = cli.FormatTuneReport(sp.bench, sp.mach, res, sp.faults != nil, base, tuned)
	j.metrics = mx.Format()
	j.traceData = tb.Bytes()
	j.mu.Unlock()

	if s.store != nil {
		// Persist the finished job verbatim so the next boot re-serves it
		// byte-for-byte without simulating. The artifact is deterministic
		// (the job's outputs are), so whichever process records a spec
		// first writes the same bytes any other would have.
		if payload, err := json.Marshal(jobArtifact{
			Request: json.RawMessage(sp.request),
			Result:  res,
			Report:  j.report,
			Metrics: j.metrics,
			Trace:   tb.Bytes(),
		}); err == nil {
			s.store.RecordMemo(core.MemoKindJob, sp.canonical, payload)
		}
	}

	// A done job is a breaker success — unless it quarantined so many
	// miscompiled candidates that the toolchain itself looks sick.
	if storm := s.opts.QuarantineStorm; storm > 0 && len(res.Quarantined) >= storm {
		s.breaker.failure(j.id, fmt.Sprintf("job %s (%s): quarantine storm: %d miscompiled candidates",
			j.id, sp.canonical, len(res.Quarantined)))
	} else {
		s.breaker.success(j.id)
	}
}

// deadlineOf names the deadline that applied (the request's, else the
// server default) for the timed_out message.
func deadlineOf(req, def time.Duration) time.Duration {
	if req > 0 {
		return req
	}
	return def
}
