package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"peak/internal/cli"
	"peak/internal/core"
	"peak/internal/fault"
	"peak/internal/machine"
	"peak/internal/opt"
	"peak/internal/profiling"
	"peak/internal/sched"
	"peak/internal/workloads"
)

// subsetReq builds a fast tuning request: a forced method over a small
// flag subset keeps a job to a handful of ratings instead of a full
// 38-flag elimination.
func subsetReq(benchName string, flags []opt.Flag) Request {
	names := make([]string, len(flags))
	for i, f := range flags {
		names[i] = f.String()
	}
	return Request{Bench: benchName, Machine: "sparc2", Method: "CBR", Flags: names}
}

type artifacts struct {
	body   []byte // GET /jobs/{id} response
	report []byte
	trace  []byte
}

// runAll posts every request to a fresh server behind httptest, waits for
// all jobs to finish, and returns each job's artifacts keyed by canonical
// spec.
func runAll(t *testing.T, opts Options, reqs []Request) map[string]artifacts {
	t.Helper()
	s := New(opts)
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain()

	ids := make([]string, len(reqs))
	for i, req := range reqs {
		res, code := post(t, ts.URL, req)
		if code != http.StatusAccepted && code != http.StatusOK {
			t.Fatalf("submit %d: status %d (%s)", i, code, res.Error)
		}
		ids[i] = res.ID
	}
	out := map[string]artifacts{}
	deadline := time.Now().Add(120 * time.Second)
	for _, id := range ids {
		for {
			if time.Now().After(deadline) {
				t.Fatalf("job %s did not finish in time", id)
			}
			body := get(t, ts.URL+"/jobs/"+id, http.StatusOK)
			var res Result
			if err := json.Unmarshal(body, &res); err != nil {
				t.Fatalf("decode job %s: %v", id, err)
			}
			if res.State == StateFailed {
				t.Fatalf("job %s failed: %s", id, res.Error)
			}
			if res.State == StateDone {
				out[res.Spec] = artifacts{
					body:   body,
					report: get(t, ts.URL+"/jobs/"+id+"/report", http.StatusOK),
					trace:  get(t, ts.URL+"/jobs/"+id+"/trace", http.StatusOK),
				}
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	return out
}

func post(t *testing.T, base string, req Request) (Result, int) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/tune", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res Result
	data, _ := io.ReadAll(resp.Body)
	json.Unmarshal(data, &res)
	return res, resp.StatusCode
}

func get(t *testing.T, url string, wantCode int) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s: status %d, want %d (%s)", url, resp.StatusCode, wantCode, data)
	}
	return data
}

// TestServeDeterministicPerJob is the acceptance check: a job's terminal
// Result JSON, report and trace are byte-identical whether the job ran
// alone on a serial server or interleaved with 7 other jobs on a wide
// concurrent one, with the shared compile cache on or off. Run under
// -race in the tier-1 recipe.
func TestServeDeterministicPerJob(t *testing.T) {
	all := opt.AllFlags()
	reqs := make([]Request, 8)
	for i := range reqs {
		reqs[i] = subsetReq("BZIP2", all[3*i:3*i+3])
	}

	alone := runAll(t, Options{Workers: 1, Jobs: 1}, reqs[:1])
	shared := runAll(t, Options{Workers: 4, Jobs: 8}, reqs)
	private := runAll(t, Options{Workers: 2, Jobs: 4, NoSharedCache: true}, reqs)

	if len(shared) != len(reqs) || len(private) != len(reqs) {
		t.Fatalf("finished %d shared / %d private jobs, want %d", len(shared), len(private), len(reqs))
	}
	for spec, a := range alone {
		b, ok := shared[spec]
		if !ok {
			t.Fatalf("spec %s missing from the concurrent run", spec)
		}
		if !bytes.Equal(a.body, b.body) {
			t.Errorf("spec %s: result JSON differs alone vs concurrent:\n--- alone\n%s\n--- concurrent\n%s", spec, a.body, b.body)
		}
	}
	for spec, b := range shared {
		c, ok := private[spec]
		if !ok {
			t.Fatalf("spec %s missing from the private-cache run", spec)
		}
		if !bytes.Equal(b.body, c.body) {
			t.Errorf("spec %s: result JSON differs shared vs private cache", spec)
		}
		if !bytes.Equal(b.report, c.report) {
			t.Errorf("spec %s: report differs shared vs private cache", spec)
		}
		if !bytes.Equal(b.trace, c.trace) {
			t.Errorf("spec %s: trace differs shared vs private cache", spec)
		}
	}
}

// TestServeReportMirrorsEngine pins runJob to the CLI path: the job's
// report must equal cli.FormatTuneReport over a Tuner configured exactly
// as cmd/peak configures it (the full-tune byte-parity with cmd/peak is
// asserted by the tier-1 smoke check; this is the fast in-process twin).
func TestServeReportMirrorsEngine(t *testing.T) {
	flags := opt.AllFlags()[:4]
	req := subsetReq("BZIP2", flags)
	got := runAll(t, Options{Workers: 2, Jobs: 1}, []Request{req})

	b, _ := workloads.ByName("BZIP2")
	m := mustMachine(t, "sparc2")
	method, _ := core.ParseMethod("CBR")
	prof, err := profiling.Run(b, b.Train, m)
	if err != nil {
		t.Fatal(err)
	}
	tuner := &core.Tuner{
		Bench: b, Mach: m, Dataset: b.Train, Cfg: core.DefaultConfig(),
		Profile: prof, Force: &method, Candidates: flags, Pool: sched.NewSerial(),
	}
	res, err := tuner.Tune()
	if err != nil {
		t.Fatal(err)
	}
	base, _, err := core.MeasurePerformance(b, b.Ref, m, opt.O3())
	if err != nil {
		t.Fatal(err)
	}
	tuned, _, err := core.MeasurePerformance(b, b.Ref, m, res.Best)
	if err != nil {
		t.Fatal(err)
	}
	want := cli.FormatTuneReport(b, m, res, false, base, tuned)

	var spec string
	for s := range got {
		spec = s
	}
	if string(got[spec].report) != want {
		t.Errorf("serve report differs from the engine's:\n--- serve\n%s\n--- engine\n%s", got[spec].report, want)
	}
}

// TestServeAdmissionControl: with one job slot held at the gate and a
// queue of one, a third distinct job must be refused with 429 and a
// Retry-After header; resubmitting an already-known spec stays 200.
func TestServeAdmissionControl(t *testing.T) {
	all := opt.AllFlags()
	s := New(Options{Workers: 1, Jobs: 1, Queue: 1})
	s.gate = make(chan struct{})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain()
	defer close(s.gate)

	reqs := []Request{
		subsetReq("BZIP2", all[0:1]),
		subsetReq("BZIP2", all[1:2]),
		subsetReq("BZIP2", all[2:3]),
	}
	if _, code := post(t, ts.URL, reqs[0]); code != http.StatusAccepted {
		t.Fatalf("job 1: status %d, want 202", code)
	}
	// The slot is blocked at the gate; the first job may sit in the queue
	// or already be claimed by the slot. Fill whatever queue space remains
	// before asserting the refusal.
	refused := false
	for i, req := range reqs[1:] {
		body, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+"/tune", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
		case http.StatusTooManyRequests:
			refused = true
			if resp.Header.Get("Retry-After") == "" {
				t.Error("429 without a Retry-After header")
			}
		default:
			t.Fatalf("job %d: status %d", i+2, resp.StatusCode)
		}
	}
	if !refused {
		t.Fatal("queue of 1 with a held slot admitted 3 distinct jobs")
	}
	// Idempotent resubmission of a known spec is 200, never 429.
	if _, code := post(t, ts.URL, reqs[0]); code != http.StatusOK {
		t.Fatalf("duplicate submit: status %d, want 200", code)
	}
}

// TestServeDuplicateSpec: requests that differ only in spelling (flag
// order, -f prefixes, duplicates) are one job.
func TestServeDuplicateSpec(t *testing.T) {
	all := opt.AllFlags()
	s := New(Options{Workers: 1, Jobs: 1})
	s.gate = make(chan struct{})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain()
	defer close(s.gate)

	a := subsetReq("BZIP2", []opt.Flag{all[2], all[5]})
	b := Request{Bench: "BZIP2", Machine: "sparc2", Method: "CBR",
		Flags: []string{"-f" + all[5].String(), all[2].String(), all[5].String()}}
	ra, codeA := post(t, ts.URL, a)
	rb, codeB := post(t, ts.URL, b)
	if codeA != http.StatusAccepted {
		t.Fatalf("first submit: status %d", codeA)
	}
	if codeB != http.StatusOK {
		t.Fatalf("respelled submit: status %d, want 200", codeB)
	}
	if ra.ID != rb.ID || ra.Spec != rb.Spec {
		t.Fatalf("respelled request got a different job: %s/%s vs %s/%s", ra.ID, ra.Spec, rb.ID, rb.Spec)
	}
	var listed []Result
	if err := json.Unmarshal(get(t, ts.URL+"/jobs", http.StatusOK), &listed); err != nil {
		t.Fatal(err)
	}
	if len(listed) != 1 {
		t.Fatalf("listed %d jobs, want 1", len(listed))
	}
}

// TestServeValidation: invalid requests are refused with 400 and a
// message naming the bad field.
func TestServeValidation(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		req  Request
		want string
	}{
		{"unknown bench", Request{Bench: "NOPE", Machine: "sparc2"}, "benchmark"},
		{"unknown machine", Request{Bench: "MGRID", Machine: "vax"}, "machine"},
		{"unknown method", Request{Bench: "MGRID", Machine: "sparc2", Method: "XXX"}, "method"},
		{"unknown dataset", Request{Bench: "MGRID", Machine: "sparc2", Dataset: "huge"}, "dataset"},
		{"ref without method", Request{Bench: "MGRID", Machine: "sparc2", Dataset: "ref"}, "forced method"},
		{"unknown noise", Request{Bench: "MGRID", Machine: "sparc2", Noise: "quiet"}, "noise"},
		{"unknown flag", Request{Bench: "MGRID", Machine: "sparc2", Flags: []string{"warp-speed"}}, "flag"},
	}
	for _, tc := range cases {
		res, code := post(t, ts.URL, tc.req)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, code)
			continue
		}
		if !strings.Contains(res.Error, tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, res.Error, tc.want)
		}
	}
	// A garbage body is a 400, not a 500.
	resp, err := http.Post(ts.URL+"/tune", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage body: status %d, want 400", resp.StatusCode)
	}
}

// TestServeStatsFresh: a fresh server's /stats and /healthz must marshal
// cleanly — json.Marshal rejects NaN, so this is the regression test for
// the zero-lookup cache hit rate and zero-wall pool utilization.
func TestServeStatsFresh(t *testing.T) {
	s := New(Options{Workers: 2, Jobs: 3, Queue: 5, Journal: fault.NewMemoryJournal()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var st Stats
	if err := json.Unmarshal(get(t, ts.URL+"/stats", http.StatusOK), &st); err != nil {
		t.Fatalf("fresh /stats does not decode: %v", err)
	}
	if st.Cache == nil || st.Cache.HitRate != 0 {
		t.Errorf("fresh cache hit rate = %+v, want 0", st.Cache)
	}
	if st.Pool.Utilization != 0 {
		t.Errorf("fresh pool utilization = %v, want 0", st.Pool.Utilization)
	}
	if st.QueueCapacity != 5 || st.JobSlots != 3 {
		t.Errorf("queue/slots = %d/%d, want 5/3", st.QueueCapacity, st.JobSlots)
	}
	if st.JournalIDs == nil || *st.JournalIDs != 0 {
		t.Errorf("journal ids = %v, want 0", st.JournalIDs)
	}
	var hz map[string]any
	if err := json.Unmarshal(get(t, ts.URL+"/healthz", http.StatusOK), &hz); err != nil {
		t.Fatal(err)
	}
	if hz["status"] != "ok" || hz["draining"] != false {
		t.Errorf("healthz = %v", hz)
	}
}

// TestServeDrainAndResume: draining marks unstarted jobs interrupted
// (with the drain's interruption surfaced in the job snapshot), and a new
// server sharing the journal runs the resubmitted request to a result
// byte-identical to a never-interrupted run.
func TestServeDrainAndResume(t *testing.T) {
	journal := fault.NewMemoryJournal()
	req := subsetReq("BZIP2", opt.AllFlags()[:3])

	s := New(Options{Workers: 1, Jobs: 1, Journal: journal})
	s.gate = make(chan struct{})
	s.Start()
	res, code, err := s.Submit(req)
	if err != nil || code != 202 {
		t.Fatalf("submit: %d %v", code, err)
	}
	drained := make(chan []Result)
	go func() { drained <- s.Drain() }()
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}
	close(s.gate) // release the slot into the draining server
	interrupted := <-drained
	if len(interrupted) != 1 || interrupted[0].ID != res.ID {
		t.Fatalf("drain returned %+v, want the one queued job", interrupted)
	}
	if got, _ := s.Job(res.ID); got.State != StateInterrupted {
		t.Fatalf("job state after drain = %s, want %s", got.State, StateInterrupted)
	}
	// A draining server refuses new work.
	if _, code, _ := s.Submit(subsetReq("BZIP2", opt.AllFlags()[4:5])); code != 503 {
		t.Fatalf("submit while draining: status %d, want 503", code)
	}

	// "Restart": a fresh server holding the same journal; resubmitting the
	// canonical request resumes (here: runs) the job.
	resumed := runAll(t, Options{Workers: 1, Jobs: 1, Journal: journal}, []Request{req})
	clean := runAll(t, Options{Workers: 2, Jobs: 1}, []Request{req})
	for spec, r := range resumed {
		c, ok := clean[spec]
		if !ok {
			t.Fatalf("spec %s missing from clean run", spec)
		}
		if !bytes.Equal(r.body, c.body) {
			t.Errorf("resumed result differs from a clean run:\n--- resumed\n%s\n--- clean\n%s", r.body, c.body)
		}
	}
}

// TestServeTraceIsolation: two concurrent jobs' traces both start at
// seq 1 and mention only their own tune — per-job buffers, not a shared
// stream.
func TestServeTraceIsolation(t *testing.T) {
	all := opt.AllFlags()
	reqs := []Request{subsetReq("BZIP2", all[0:2]), subsetReq("BZIP2", all[2:4])}
	got := runAll(t, Options{Workers: 2, Jobs: 2}, reqs)
	if len(got) != 2 {
		t.Fatalf("finished %d jobs, want 2", len(got))
	}
	for spec, a := range got {
		first := bytes.SplitN(a.trace, []byte("\n"), 2)[0]
		if !bytes.Contains(first, []byte(`"seq":1,`)) {
			t.Errorf("spec %s: trace does not start at seq 1: %s", spec, first)
		}
	}
}

func mustMachine(t *testing.T, name string) *machine.Machine {
	t.Helper()
	m, ok := machine.ByName(name)
	if !ok {
		t.Fatalf("unknown machine %q", name)
	}
	return m
}
