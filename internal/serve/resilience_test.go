package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"peak/internal/fault"
	"peak/internal/opt"
)

// waitState polls a job until it reaches want (fatal on failed-when-not-
// wanted or timeout).
func waitState(t *testing.T, s *Server, id, want string, timeout time.Duration) Result {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		res, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if res.State == want {
			return res
		}
		if terminalState(res.State) {
			t.Fatalf("job %s reached %s (error %q), want %s", id, res.State, res.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, res.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRetryAfterSeconds pins the 429 hint's derivation: the wait behind
// (queue depth + 1) jobs of the recent mean duration across the slots,
// rounded up, clamped to [1, 60].
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		depth int
		mean  float64
		slots int
		want  int
	}{
		{0, 1, 1, 1},     // empty queue, default mean: one job ahead
		{3, 1, 1, 4},     // 4 jobs ahead at 1s each
		{3, 1, 2, 2},     // same queue split over 2 slots
		{3, 2.5, 2, 5},   // fractional seconds round up
		{7, 0.1, 4, 1},   // sub-second estimates clamp up to 1
		{100, 30, 1, 60}, // pathological backlog clamps at 60
		{0, 0, 0, 1},     // degenerate inputs stay in range
	}
	for _, tc := range cases {
		if got := retryAfterSeconds(tc.depth, tc.mean, tc.slots); got != tc.want {
			t.Errorf("retryAfterSeconds(%d, %v, %d) = %d, want %d",
				tc.depth, tc.mean, tc.slots, got, tc.want)
		}
	}
}

// TestBreakerStateMachine drives the breaker through its full lifecycle
// with a pinned clock: closed → open at the failure threshold → half-open
// after the cooldown → closed on probe success (and re-open on probe
// failure; abandon frees the probe slot without a verdict).
func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(2, 10*time.Second)
	b.now = func() time.Time { return now }

	if ok, _ := b.admit("a"); !ok {
		t.Fatal("closed breaker refused a job")
	}
	b.failure("a", "boom 1")
	if b.degraded() {
		t.Fatal("one failure below the threshold tripped the breaker")
	}
	b.failure("b", "boom 2")
	if st := b.snapshot(); st.State != BreakerOpen || st.Opens != 1 {
		t.Fatalf("after %d failures: %+v, want open/1", 2, st)
	}
	if ok, reason := b.admit("c"); ok || !strings.Contains(reason, "open") {
		t.Fatalf("open breaker admitted a job (reason %q)", reason)
	}
	if got := b.retryAfterSeconds(); got != 10 {
		t.Fatalf("retryAfterSeconds = %d, want 10", got)
	}

	// Cooldown elapses: the next request half-opens as the probe; others
	// keep being shed while the probe is out.
	now = now.Add(11 * time.Second)
	if ok, _ := b.admit("probe1"); !ok {
		t.Fatal("cooled-down breaker refused the probe")
	}
	if st := b.snapshot(); st.State != BreakerHalfOpen || st.Probe != "probe1" {
		t.Fatalf("after probe admit: %+v", st)
	}
	if ok, reason := b.admit("d"); ok || !strings.Contains(reason, "probe") {
		t.Fatalf("half-open breaker admitted a second job (reason %q)", reason)
	}

	// Probe failure re-trips; abandon frees the slot without a verdict.
	b.failure("probe1", "still broken")
	if st := b.snapshot(); st.State != BreakerOpen || st.Opens != 2 {
		t.Fatalf("after probe failure: %+v, want open/2", st)
	}
	now = now.Add(11 * time.Second)
	if ok, _ := b.admit("probe2"); !ok {
		t.Fatal("second probe refused")
	}
	b.abandon("probe2")
	if st := b.snapshot(); st.State != BreakerHalfOpen || st.Probe != "" {
		t.Fatalf("after abandon: %+v, want half-open with a free probe slot", st)
	}
	if ok, _ := b.admit("probe3"); !ok {
		t.Fatal("free probe slot refused a new probe")
	}
	b.success("probe3")
	if st := b.snapshot(); st.State != BreakerClosed || st.ConsecutiveFailures != 0 {
		t.Fatalf("after probe success: %+v, want closed", st)
	}

	// Disabled breakers (threshold 0) are nil and admit everything.
	var nb *breaker
	if ok, _ := nb.admit("x"); !ok || nb.degraded() || nb.snapshot() != nil {
		t.Fatal("nil breaker must admit everything and report nothing")
	}
	nb.success("x")
	nb.failure("x", "ignored")
	nb.abandon("x")
}

// TestServeDeadlineTimeoutAndResume: a job whose deadline expires is
// canceled at its next round boundary as timed_out with a message naming
// the deadline; resubmitting the same spec (deadline is not part of the
// identity) re-runs it to a result identical to a never-interrupted run.
func TestServeDeadlineTimeoutAndResume(t *testing.T) {
	all := opt.AllFlags()
	req := subsetReq("BZIP2", all[0:3])
	deadlined := req
	deadlined.DeadlineMS = 1

	s := New(Options{Workers: 1, Jobs: 1, Journal: fault.NewMemoryJournal()})
	s.roundGate = make(chan struct{})
	s.Start()
	defer s.Drain()

	res, code, err := s.Submit(deadlined)
	if err != nil || code != 202 {
		t.Fatalf("submit: %d %v", code, err)
	}
	// The tune blocks at its first round poll; by the time we release it
	// the 1ms deadline has long passed, so that poll cancels the job.
	time.Sleep(20 * time.Millisecond)
	s.roundGate <- struct{}{}
	timedOut := waitState(t, s, res.ID, StateTimedOut, 5*time.Second)
	if !strings.Contains(timedOut.Error, "deadline 1ms exceeded") ||
		!strings.Contains(timedOut.Error, "resubmit to resume") {
		t.Fatalf("timed_out error = %q", timedOut.Error)
	}

	// Resubmission without a deadline requeues the same job and runs it to
	// completion (the closed gate lets every later poll pass instantly).
	close(s.roundGate)
	resumed, code, err := s.Submit(req)
	if err != nil || code != 200 {
		t.Fatalf("resubmit: %d %v", code, err)
	}
	if resumed.ID != res.ID {
		t.Fatalf("resubmission created a new job: %s vs %s", resumed.ID, res.ID)
	}
	done := waitState(t, s, res.ID, StateDone, 60*time.Second)

	clean := runAll(t, Options{Workers: 1, Jobs: 1}, []Request{req})
	want, ok := clean[done.Spec]
	if !ok {
		t.Fatalf("spec %s missing from the clean run", done.Spec)
	}
	if done.Report != string(want.report) {
		t.Errorf("report after deadline timeout + resume differs from a clean run:\n--- resumed\n%s\n--- clean\n%s",
			done.Report, want.report)
	}
}

// TestServeWatchdogCancelsStalledJob: a running job that stops making
// round progress for longer than WatchdogStall is canceled as timed_out
// with a watchdog message, and the stall is counted in /stats.
func TestServeWatchdogCancelsStalledJob(t *testing.T) {
	all := opt.AllFlags()
	req := subsetReq("BZIP2", all[3:6])

	s := New(Options{Workers: 1, Jobs: 1,
		WatchdogStall: 30 * time.Millisecond, WatchdogPoll: 10 * time.Millisecond})
	s.roundGate = make(chan struct{})
	s.Start()
	defer s.Drain()
	defer close(s.roundGate)

	res, code, err := s.Submit(req)
	if err != nil || code != 202 {
		t.Fatalf("submit: %d %v", code, err)
	}
	// The tune stamps its liveness at the first round poll and then blocks
	// on the gate — an artificial in-round stall the watchdog must flag.
	deadline := time.Now().Add(5 * time.Second)
	for s.watchdogStalls.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("watchdog never flagged the stalled job")
		}
		time.Sleep(5 * time.Millisecond)
	}
	s.roundGate <- struct{}{} // release the stalled poll; it sees the cancel
	timedOut := waitState(t, s, res.ID, StateTimedOut, 5*time.Second)
	if !strings.Contains(timedOut.Error, "watchdog: no round progress for 30ms") {
		t.Fatalf("timed_out error = %q", timedOut.Error)
	}
	if got := s.Stats().WatchdogStalls; got != 1 {
		t.Errorf("stats watchdog_stalls = %d, want 1", got)
	}
}

// TestServeBreakerTripsAndServesCached: consecutive poison-job failures
// trip the breaker; new specs are shed with 503 + Retry-After while
// finished results — done and failed alike — keep serving with 200, the
// health endpoint degrades, and /stats exposes the breaker block.
func TestServeBreakerTripsAndServesCached(t *testing.T) {
	all := opt.AllFlags()
	s := New(Options{Workers: 2, Jobs: 1, BreakerFailures: 2, BreakerCooldown: time.Hour})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain()

	good := subsetReq("BZIP2", all[0:2])
	goodRes, code := post(t, ts.URL, good)
	if code != http.StatusAccepted {
		t.Fatalf("good job: status %d", code)
	}
	waitState(t, s, goodRes.ID, StateDone, 60*time.Second)

	// Two distinct poison jobs fail deterministically back to back.
	poison := make([]Request, 2)
	for i := range poison {
		poison[i] = subsetReq("BZIP2", all[2+i:3+i])
		poison[i].Faults = "poison"
		res, code := post(t, ts.URL, poison[i])
		if code != http.StatusAccepted {
			t.Fatalf("poison job %d: status %d (%s)", i, code, res.Error)
		}
		deadline := time.Now().Add(60 * time.Second)
		for {
			snap, _ := s.Job(res.ID)
			if snap.State == StateFailed {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("poison job %d stuck in %s", i, snap.State)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	st := s.Stats()
	if st.Breaker == nil || st.Breaker.State != BreakerOpen || st.Breaker.Opens != 1 {
		t.Fatalf("breaker after 2 failures = %+v, want open", st.Breaker)
	}
	var hz map[string]any
	if err := json.Unmarshal(get(t, ts.URL+"/healthz", http.StatusOK), &hz); err != nil {
		t.Fatal(err)
	}
	if hz["status"] != "degraded" || hz["breaker"] != BreakerOpen {
		t.Errorf("healthz while open = %v", hz)
	}

	// New work is shed with 503 and the breaker's remaining cooldown.
	fresh := subsetReq("BZIP2", all[6:7])
	body, _ := json.Marshal(fresh)
	resp, err := http.Post(ts.URL+"/tune", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("new spec while open: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 while open carries no Retry-After")
	}

	// Known specs keep serving: the done job's result and even the failed
	// poison job's state are answered before admission control.
	if _, code := post(t, ts.URL, good); code != http.StatusOK {
		t.Fatalf("duplicate of a done spec while open: status %d, want 200", code)
	}
	if res, code := post(t, ts.URL, poison[0]); code != http.StatusOK || res.State != StateFailed {
		t.Fatalf("duplicate of a failed spec while open: status %d state %s, want 200 failed", code, res.State)
	}
}

// TestServeBreakerProbeCloses: after the cooldown, one healthy probe job
// closes the breaker again.
func TestServeBreakerProbeCloses(t *testing.T) {
	all := opt.AllFlags()
	s := New(Options{Workers: 2, Jobs: 1, BreakerFailures: 1, BreakerCooldown: 50 * time.Millisecond})
	s.Start()
	defer s.Drain()

	poison := subsetReq("BZIP2", all[8:9])
	poison.Faults = "poison"
	res, code, err := s.Submit(poison)
	if err != nil || code != 202 {
		t.Fatalf("poison submit: %d %v", code, err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		snap, _ := s.Job(res.ID)
		if snap.State == StateFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("poison job stuck in %s", snap.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := s.Stats().Breaker; st.State != BreakerOpen {
		t.Fatalf("breaker after poison = %+v, want open", st)
	}

	time.Sleep(80 * time.Millisecond) // cooldown elapses
	probe := subsetReq("BZIP2", all[9:10])
	pres, code, err := s.Submit(probe)
	if err != nil || code != 202 {
		t.Fatalf("probe submit after cooldown: %d %v", code, err)
	}
	waitState(t, s, pres.ID, StateDone, 60*time.Second)
	if st := s.Stats().Breaker; st.State != BreakerClosed {
		t.Fatalf("breaker after probe success = %+v, want closed", st)
	}
}

// TestServeQuarantineStormTripsBreaker: a job that *completes* but
// quarantines a storm of miscompiled flags counts as a breaker failure —
// the job's own result still serves.
func TestServeQuarantineStormTripsBreaker(t *testing.T) {
	all := opt.AllFlags()
	req := subsetReq("ART", all[0:6])
	req.Faults = "storm"

	s := New(Options{Workers: 2, Jobs: 1,
		BreakerFailures: 1, BreakerCooldown: time.Hour, QuarantineStorm: 3})
	s.Start()
	defer s.Drain()

	res, code, err := s.Submit(req)
	if err != nil || code != 202 {
		t.Fatalf("submit: %d %v", code, err)
	}
	done := waitState(t, s, res.ID, StateDone, 120*time.Second)
	if done.Result == nil || len(done.Result.Quarantined) < 3 {
		t.Fatalf("storm regime quarantined %v, want >= 3 flags", done.Result)
	}
	st := s.Stats().Breaker
	if st == nil || st.State != BreakerOpen {
		t.Fatalf("breaker after quarantine storm = %+v, want open", st)
	}
	if !strings.Contains(st.LastFailure, "quarantine storm") {
		t.Errorf("breaker last_failure = %q, want a quarantine-storm message", st.LastFailure)
	}
}

// TestServeConcurrentDrainResumeSharedJournal: two jobs in flight on one
// file journal, drained mid-tune after at least one completed round, then
// resumed on a fresh server that reopens the same journal file (CRC
// verification of every record on the way in) — both results must be
// byte-identical to a never-interrupted run.
func TestServeConcurrentDrainResumeSharedJournal(t *testing.T) {
	all := opt.AllFlags()
	reqs := []Request{subsetReq("BZIP2", all[0:3]), subsetReq("BZIP2", all[3:6])}
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := fault.NewJournal(path)
	if err != nil {
		t.Fatal(err)
	}

	s := New(Options{Workers: 2, Jobs: 2, Journal: j, JournalPath: path})
	s.roundGate = make(chan struct{})
	s.Start()
	for i, req := range reqs {
		if _, code, err := s.Submit(req); err != nil || code != 202 {
			t.Fatalf("submit %d: %d %v", i, code, err)
		}
	}
	// Release two round polls (each blocking send synchronizes with one
	// poll), then wait until at least one round has been checkpointed.
	for i := 0; i < 2; i++ {
		select {
		case s.roundGate <- struct{}{}:
		case <-time.After(30 * time.Second):
			t.Fatal("no tune reached a round poll")
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for j.Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no round was checkpointed")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Drain while both tunes sit at (or head toward) a round poll.
	drained := make(chan []Result)
	go func() { drained <- s.Drain() }()
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}
	close(s.roundGate)
	<-drained
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": reopen the journal file — every surviving record passes
	// its CRC — and run both specs to completion on a fresh server.
	j2, err := fault.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	rec := j2.Recovery()
	if rec.DroppedBytes != 0 || rec.Records == 0 {
		t.Fatalf("journal recovery after graceful drain = %+v, want intact records", rec)
	}
	resumed := runAll(t, Options{Workers: 2, Jobs: 2, Journal: j2}, reqs)
	clean := runAll(t, Options{Workers: 2, Jobs: 2}, reqs)
	if len(resumed) != len(reqs) {
		t.Fatalf("resumed %d jobs, want %d", len(resumed), len(reqs))
	}
	for spec, r := range resumed {
		c, ok := clean[spec]
		if !ok {
			t.Fatalf("spec %s missing from the clean run", spec)
		}
		if !bytes.Equal(r.body, c.body) {
			t.Errorf("spec %s: resumed result differs from a clean run:\n--- resumed\n%s\n--- clean\n%s",
				spec, r.body, c.body)
		}
		if !bytes.Equal(r.report, c.report) {
			t.Errorf("spec %s: resumed report differs from a clean run", spec)
		}
	}
}
