package serve

import (
	"math"
	"sync"
	"time"
)

// Circuit-breaker states. The breaker guards the job slots against failure
// storms: consecutive job failures (or miscompile-quarantine storms) trip
// it open, an open breaker sheds new non-duplicate work with 503 while
// cached and duplicate-spec results keep serving, and after a cooldown it
// half-opens to admit exactly one probe job whose outcome decides between
// closing again and re-opening.
const (
	BreakerClosed   = "closed"
	BreakerOpen     = "open"
	BreakerHalfOpen = "half_open"
)

// BreakerStats is the breaker block of GET /stats (and the degraded flag
// behind /healthz).
type BreakerStats struct {
	// State is "closed", "open" or "half_open".
	State string `json:"state"`
	// ConsecutiveFailures counts the failures since the last success while
	// closed; Threshold is the count that trips the breaker.
	ConsecutiveFailures int `json:"consecutive_failures"`
	Threshold           int `json:"threshold"`
	// Opens counts trips over the server's lifetime.
	Opens int64 `json:"opens"`
	// CooldownSeconds is how long an open breaker waits before half-opening.
	CooldownSeconds float64 `json:"cooldown_seconds"`
	// RetryAfterSeconds is the remaining cooldown (0 unless open).
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
	// LastFailure is the most recent failure message the breaker saw.
	LastFailure string `json:"last_failure,omitempty"`
	// Probe is the job ID of the in-flight half-open probe, if any.
	Probe string `json:"probe,omitempty"`
}

// breaker is the serve layer's circuit breaker. A nil breaker (or one with
// threshold <= 0) admits everything. All transitions happen under mu; time
// is read through now so tests and the chaos harness can pin it.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu          sync.Mutex
	state       string
	consecutive int
	openedAt    time.Time
	opens       int64
	lastFailure string
	probe       string
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold <= 0 {
		return nil
	}
	if cooldown <= 0 {
		cooldown = 30 * time.Second
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now, state: BreakerClosed}
}

// admit decides whether the new job jobID may enter the queue. While open
// it refuses everything until the cooldown elapses, then half-opens and
// admits jobID as the probe; while half-open it admits only the probe.
// Duplicate-spec requests never reach admit — they are answered from the
// job table before admission control.
func (b *breaker) admit(jobID string) (ok bool, reason string) {
	if b == nil {
		return true, ""
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false, "circuit breaker open (failure storm); cached results still served"
		}
		b.state = BreakerHalfOpen
		b.probe = jobID
		return true, ""
	case BreakerHalfOpen:
		if b.probe == "" {
			b.probe = jobID
			return true, ""
		}
		return false, "circuit breaker half-open; waiting on probe job " + b.probe
	default:
		return true, ""
	}
}

// success records a job that completed healthily. The probe's success
// closes a half-open breaker.
func (b *breaker) success(jobID string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive = 0
	if b.state == BreakerHalfOpen && b.probe == jobID {
		b.state = BreakerClosed
		b.probe = ""
	}
}

// failure records a failed job (or a quarantine storm). The probe's
// failure re-opens a half-open breaker; while closed, the threshold-th
// consecutive failure trips it.
func (b *breaker) failure(jobID, msg string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.lastFailure = msg
	switch b.state {
	case BreakerHalfOpen:
		if b.probe == jobID {
			b.probe = ""
			b.trip()
		}
	case BreakerClosed:
		b.consecutive++
		if b.consecutive >= b.threshold {
			b.trip()
		}
	}
}

// abandon releases jobID's probe slot without a verdict (the probe was
// interrupted, timed out, or never queued). The breaker stays half-open
// and the next admitted job becomes the probe.
func (b *breaker) abandon(jobID string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen && b.probe == jobID {
		b.probe = ""
	}
}

// trip opens the breaker (caller holds mu).
func (b *breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.opens++
	b.consecutive = 0
}

// retryAfterSeconds returns the remaining cooldown of an open breaker,
// rounded up (0 when not open).
func (b *breaker) retryAfterSeconds() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerOpen {
		return 0
	}
	left := b.cooldown - b.now().Sub(b.openedAt)
	if left <= 0 {
		return 0
	}
	return int(math.Ceil(left.Seconds()))
}

// degraded reports whether the breaker is shedding or probing (anything
// but closed) — the /healthz "degraded" signal.
func (b *breaker) degraded() bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state != BreakerClosed
}

// snapshot assembles the /stats block.
func (b *breaker) snapshot() *BreakerStats {
	if b == nil {
		return nil
	}
	retry := b.retryAfterSeconds()
	b.mu.Lock()
	defer b.mu.Unlock()
	return &BreakerStats{
		State:               b.state,
		ConsecutiveFailures: b.consecutive,
		Threshold:           b.threshold,
		Opens:               b.opens,
		CooldownSeconds:     b.cooldown.Seconds(),
		RetryAfterSeconds:   retry,
		LastFailure:         b.lastFailure,
		Probe:               b.probe,
	}
}
