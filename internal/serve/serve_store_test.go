package serve

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"peak/internal/opt"
	"peak/internal/store"
)

// storeOpts is the test server configuration for the warm-start tests: a
// small concurrent server with the given persistent store attached.
func storeOpts(st *store.Store) Options {
	return Options{Workers: 2, Jobs: 2, Store: st}
}

// TestServeWarmRestartByteIdentical is the serve-level acceptance check of
// the warm-start tentpole: a job run cold against an empty store, flushed
// at drain, must be re-served byte-identically by a fresh server booted
// from the same store directory — body, report and trace — without running
// a single simulation (the pool's cycle ledger stays zero and /stats
// reports the job as restored).
func TestServeWarmRestartByteIdentical(t *testing.T) {
	dir := t.TempDir()
	reqs := []Request{
		subsetReq("MGRID", opt.AllFlags()[:3]),
		subsetReq("SWIM", opt.AllFlags()[3:6]),
	}

	cold, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// runAll drains its server on return, which flushes the store.
	coldArts := runAll(t, storeOpts(cold), reqs)
	if st := cold.Stats(); st.Flushes != 1 || st.Pending == 0 {
		t.Fatalf("cold drain did not flush the store: %+v", st)
	}

	warm, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := New(storeOpts(warm))
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain()

	for _, req := range reqs {
		res, code := post(t, ts.URL, req)
		if code != 200 {
			t.Fatalf("warm submit returned %d, want 200 (already done)", code)
		}
		if res.State != StateDone {
			t.Fatalf("warm job %s is %q, want done without running", res.ID, res.State)
		}
		want, ok := coldArts[res.Spec]
		if !ok {
			t.Fatalf("warm job spec %q unknown to the cold run", res.Spec)
		}
		body := get(t, ts.URL+"/jobs/"+res.ID, 200)
		if !bytes.Equal(body, want.body) {
			t.Errorf("job %s: restored body differs from cold run:\ncold %s\nwarm %s", res.ID, want.body, body)
		}
		report := get(t, ts.URL+"/jobs/"+res.ID+"/report", 200)
		if !bytes.Equal(report, want.report) {
			t.Errorf("job %s: restored report differs from cold run", res.ID)
		}
		tr := get(t, ts.URL+"/jobs/"+res.ID+"/trace", 200)
		if !bytes.Equal(tr, want.trace) {
			t.Errorf("job %s: restored trace differs from cold run", res.ID)
		}
	}

	st := s.Stats()
	if st.Store == nil || st.Memo == nil {
		t.Fatal("/stats has no store/memo blocks despite an attached store")
	}
	if st.Store.RestoredJobs != int64(len(reqs)) {
		t.Errorf("restored_jobs = %d, want %d", st.Store.RestoredJobs, len(reqs))
	}
	if st.Pool.Cycles != 0 {
		t.Errorf("warm server simulated %d cycles re-serving restored jobs, want 0", st.Pool.Cycles)
	}
}

// TestServeWarmTuneUsesMemo covers the second warm path: a spec the store
// has rating memos for but no finished-job artifact (its artifact key is
// different) still tunes byte-identically, answering its ratings from the
// memo table instead of the simulator.
func TestServeWarmTuneUsesMemo(t *testing.T) {
	dir := t.TempDir()
	req := subsetReq("MGRID", opt.AllFlags()[:3])

	cold, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	coldArts := runAll(t, storeOpts(cold), []Request{req})

	warm, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := New(storeOpts(warm))
	// Forget the restored job so the submission truly re-runs the tune.
	s.mu.Lock()
	for id := range s.jobs {
		delete(s.jobs, id)
	}
	s.mu.Unlock()
	s.restoredJobs.Store(0)
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain()

	res, code := post(t, ts.URL, req)
	if code != 202 {
		t.Fatalf("warm submit returned %d, want 202 (job map was cleared)", code)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("warm job did not finish in time")
		}
		body := get(t, ts.URL+"/jobs/"+res.ID, 200)
		if err := json.Unmarshal(body, &res); err != nil {
			t.Fatal(err)
		}
		if res.State == StateDone {
			break
		}
		if res.State == StateFailed {
			t.Fatalf("warm job failed: %s", res.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}

	want := coldArts[res.Spec]
	report := get(t, ts.URL+"/jobs/"+res.ID+"/report", 200)
	if !bytes.Equal(report, want.report) {
		t.Error("memo-warm report differs from cold run")
	}
	st := s.Stats()
	if st.Memo == nil || st.Memo.Hits == 0 {
		t.Fatalf("memo-warm tune hit no memo records: %+v", st.Memo)
	}
	if st.Cache == nil || st.Cache.DiskHits == 0 {
		t.Fatalf("memo-warm tune took no disk-tier cache hits: %+v", st.Cache)
	}
}

// TestStatsStoreMemoBlocks pins the /stats schema around the warm-start
// store: without a store the "store" and "memo" blocks (and the cache's
// disk-tier figures) are absent, keeping the payload byte-compatible with
// pre-store servers; with a store both blocks appear with their counters.
func TestStatsStoreMemoBlocks(t *testing.T) {
	plain := New(Options{Workers: 1})
	data, err := json.MarshalIndent(plain.Stats(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	for _, forbidden := range []string{`"store"`, `"memo"`, `"disk_hits"`, `"preloaded"`} {
		if strings.Contains(string(data), forbidden) {
			t.Errorf("storeless /stats contains %s:\n%s", forbidden, data)
		}
	}

	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := New(storeOpts(st))
	data, err = json.MarshalIndent(s.Stats(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"store"`, `"memo"`, `"versions"`, `"entries"`, `"restored_jobs"`,
		`"flushes"`, `"flushed_bytes"`, `"recovery"`, `"records"`,
		`"pending"`, `"hits"`, `"misses"`,
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("store-attached /stats is missing %s:\n%s", want, data)
		}
	}
}
