package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"peak/internal/bench"
	"peak/internal/core"
	"peak/internal/experiments"
	"peak/internal/fault"
	"peak/internal/machine"
	"peak/internal/noise"
	"peak/internal/opt"
	"peak/internal/workloads"
)

// Request is the POST /tune body: which benchmark to tune on which
// machine, and optionally a forced rating method, tuning dataset, noise
// regime and flag subset. The zero values mean "same defaults as cmd/peak":
// consultant-chosen method, train dataset, the machine's calibrated noise
// model, all 38 tunable flags.
type Request struct {
	Bench   string `json:"bench"`
	Machine string `json:"machine"`
	// Method forces a rating method (CBR, MBR, RBR, AVG, WHL); empty
	// leaves the choice to the consultant, which — exactly like cmd/peak
	// without -method — profiles and tunes on the train dataset.
	Method string `json:"method,omitempty"`
	// Dataset is "train" (default) or "ref"; it applies to forced-method
	// tunes (the consultant path always tunes on train, mirroring cmd/peak).
	Dataset string `json:"dataset,omitempty"`
	// Noise names a stress regime (baseline, gauss4x, spikes, drift,
	// bursts); empty keeps the machine default.
	Noise string `json:"noise,omitempty"`
	// Faults names a fault-injection regime (f2, f5, f10, poison); empty
	// tunes fault-free. Injected faults deterministically change the
	// tune's result, so the regime is part of the job's identity.
	Faults string `json:"faults,omitempty"`
	// Flags restricts the Iterative Elimination search to this subset of
	// the tunable flag names (with or without the "-f" prefix); empty
	// searches all 38. Order and duplicates are irrelevant: the set is
	// canonicalized to ascending flag order, which is part of the job's
	// identity.
	Flags []string `json:"flags,omitempty"`
	// DeadlineMS is a per-job wall-clock deadline in milliseconds (0 uses
	// the server's -deadline default; negative is invalid). A job that
	// overruns it stops at the next round boundary as "timed_out" with its
	// completed rounds checkpointed. The deadline is an operational knob,
	// NOT part of the job's identity: resubmitting the same spec with any
	// deadline resumes the same job.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// spec is a validated, canonicalized request: everything runJob needs,
// plus the canonical string that names the job. Two Requests that differ
// only in spelling (flag order, "-f" prefixes, duplicate flags) produce
// the same spec and therefore the same job.
type spec struct {
	bench   *bench.Benchmark
	mach    *machine.Machine
	force   *core.Method // nil = consultant choice
	dataset *bench.Dataset
	noise   *noise.Model // nil = machine default
	faults  *fault.Plan  // nil = fault-free
	// candidates is the canonical flag subset (ascending, deduped); nil
	// searches all flags.
	candidates []opt.Flag
	// deadline is the job's wall-clock budget (0 = server default; it is
	// operational state, never part of the canonical identity).
	deadline time.Duration

	// canonical is "bench/machine/method/dataset/noise/faults/flags" — the
	// checkpoint ID is "serve/" + canonical, and the job ID is a hash of
	// it. request is the re-marshaled canonical Request, stored so drain
	// can print an exact resubmission command.
	canonical string
	request   []byte
}

// parseSpec validates and canonicalizes a request. Errors are user
// errors — the HTTP layer maps them to 400.
func parseSpec(req Request) (spec, error) {
	var sp spec
	b, ok := workloads.ByName(req.Bench)
	if !ok {
		return sp, fmt.Errorf("unknown benchmark %q", req.Bench)
	}
	m, ok := machine.ByName(req.Machine)
	if !ok {
		return sp, fmt.Errorf("unknown machine %q", req.Machine)
	}
	sp.bench, sp.mach = b, m

	methodName := "auto"
	if req.Method != "" {
		mm, ok := core.ParseMethod(req.Method)
		if !ok {
			return sp, fmt.Errorf("unknown method %q", req.Method)
		}
		sp.force = &mm
		methodName = mm.String()
	}

	switch req.Dataset {
	case "", "train":
		sp.dataset = b.Train
	case "ref":
		sp.dataset = b.Ref
	default:
		return sp, fmt.Errorf("unknown dataset %q (want \"train\" or \"ref\")", req.Dataset)
	}
	// The consultant path tunes on train regardless (mirroring cmd/peak,
	// which ignores -dataset without -method); reject the contradiction
	// instead of silently producing a job whose name lies about its data.
	if sp.force == nil && sp.dataset != b.Train {
		return sp, fmt.Errorf("dataset %q requires a forced method (the consultant path tunes on train)", req.Dataset)
	}

	noiseName := "default"
	if req.Noise != "" {
		regime, ok := experiments.RegimeByName(m, req.Noise)
		if !ok {
			return sp, fmt.Errorf("unknown noise regime %q", req.Noise)
		}
		model := regime.Model
		sp.noise = &model
		noiseName = regime.Name
	}

	faultsName := "none"
	if req.Faults != "" {
		regime, ok := experiments.FaultRegimeByName(req.Faults)
		if !ok {
			return sp, fmt.Errorf("unknown fault regime %q (want one of %s)",
				req.Faults, strings.Join(experiments.FaultRegimeNames(), ", "))
		}
		sp.faults = regime.Plan
		faultsName = regime.Name
	}

	if req.DeadlineMS < 0 {
		return sp, fmt.Errorf("negative deadline_ms %d", req.DeadlineMS)
	}
	sp.deadline = time.Duration(req.DeadlineMS) * time.Millisecond

	flagsName := "all"
	if len(req.Flags) > 0 {
		seen := map[opt.Flag]bool{}
		for _, name := range req.Flags {
			f, ok := opt.FlagByName(name)
			if !ok {
				return sp, fmt.Errorf("unknown flag %q", name)
			}
			if !seen[f] {
				seen[f] = true
				sp.candidates = append(sp.candidates, f)
			}
		}
		// Candidate order is part of the tune's identity (it fixes
		// reduction order and tie-breaks); ascending flag order is the
		// canonical form.
		sort.Slice(sp.candidates, func(i, j int) bool { return sp.candidates[i] < sp.candidates[j] })
		names := make([]string, len(sp.candidates))
		for i, f := range sp.candidates {
			names[i] = f.String()
		}
		flagsName = strings.Join(names, ",")
	}

	sp.canonical = fmt.Sprintf("%s/%s/%s/%s/%s/%s/%s",
		b.Name, m.Name, methodName, sp.dataset.Name, noiseName, faultsName, flagsName)
	canonReq := Request{Bench: b.Name, Machine: m.Name, Dataset: sp.dataset.Name, Noise: req.Noise}
	if sp.faults != nil {
		canonReq.Faults = faultsName
	}
	if sp.force != nil {
		canonReq.Method = sp.force.String()
	}
	if flagsName != "all" {
		canonReq.Flags = strings.Split(flagsName, ",")
	}
	sp.request, _ = json.Marshal(canonReq)
	return sp, nil
}

// id returns the job's content-addressed identifier: a short hash of the
// canonical spec. Identical requests — however they are spelled, whenever
// they are submitted — share one ID and therefore one job, which is what
// makes POST /tune idempotent and the per-job results independent of what
// else the server is running.
func (sp *spec) id() string {
	sum := sha256.Sum256([]byte(sp.canonical))
	return hex.EncodeToString(sum[:6])
}

// checkpointID is the job's key in the shared checkpoint journal. It
// embeds the full canonical spec (not just bench/machine/method/dataset,
// the engine default) so jobs differing only in noise regime or flag
// subset never share checkpoint state.
func (sp *spec) checkpointID() string { return "serve/" + sp.canonical }

// Job states. A job moves queued → running → one terminal state.
// "interrupted" (drain) and "timed_out" (deadline or watchdog) are
// resumable terminals: resubmitting the same spec re-queues the job, which
// continues from its last checkpointed round when a journal is attached.
const (
	StateQueued      = "queued"
	StateRunning     = "running"
	StateDone        = "done"
	StateFailed      = "failed"
	StateInterrupted = "interrupted"
	StateTimedOut    = "timed_out"
)

// Result is the externally visible snapshot of a job, returned by POST
// /tune and GET /jobs/{id}. For a given spec the terminal Result is
// byte-identical however the job was scheduled: everything in it is
// derived from the deterministic tune, never from server state.
type Result struct {
	ID    string `json:"id"`
	Spec  string `json:"spec"`
	State string `json:"state"`
	// Request is the canonicalized request; re-POSTing it (to a server
	// with the same journal) resumes an interrupted job.
	Request json.RawMessage `json:"request"`
	// Result is the engine's ledger, present once the job is done.
	Result *core.TuneResult `json:"result,omitempty"`
	// Report is the canonical text report — byte-for-byte what cmd/peak
	// prints for the same arguments.
	Report string `json:"report,omitempty"`
	// Metrics is the job's formatted metrics table (per-job registry,
	// isolated from every other job).
	Metrics string `json:"metrics,omitempty"`
	Error   string `json:"error,omitempty"`
}

// jobArtifact is the persisted form of a finished job: everything the
// server re-serves for it, recorded in the warm-start store under
// core.MemoKindJob keyed by the canonical spec. json.Marshal renders it
// deterministically (fixed field order, sorted map keys), which is what
// lets the store's first-write-wins rule assume identical bytes from every
// writer of one spec.
type jobArtifact struct {
	// Request is the canonicalized request body (spec.request verbatim).
	Request json.RawMessage `json:"request"`
	// Result is the engine's full deterministic ledger.
	Result *core.TuneResult `json:"result"`
	// Report and Metrics are the rendered text artifacts.
	Report  string `json:"report"`
	Metrics string `json:"metrics"`
	// Trace is the job's flushed JSONL trace.
	Trace []byte `json:"trace"`
}

// job is the internal job record. mu guards the mutable fields; the spec
// and id are immutable after creation.
type job struct {
	id   string
	spec spec

	// progress is the wall-clock nanosecond stamp of the job's last
	// liveness signal (run start, every Interrupt poll, every completed
	// round). The watchdog reads it to detect tunes that stop making
	// round progress. Atomic: the tune goroutine writes it, the watchdog
	// goroutine reads it.
	progress atomic.Int64

	mu      sync.Mutex
	state   string
	res     *core.TuneResult
	report  string
	metrics string
	// traceData is the job's flushed JSONL trace (per-job buffer, seq
	// starting at 1 — isolated from every other job's).
	traceData []byte
	errMsg    string
	// cancelMsg, once set, makes the job's Interrupt hook fire at the next
	// round boundary and names why ("deadline ... exceeded", "watchdog:
	// ..."); the job then terminates as timed_out.
	cancelMsg string
}

func newJob(sp spec) *job {
	return &job{id: sp.id(), spec: sp, state: StateQueued}
}

func (j *job) setState(s string) {
	j.mu.Lock()
	j.state = s
	j.mu.Unlock()
}

// noteProgress stamps the job's liveness clock.
func (j *job) noteProgress() { j.progress.Store(time.Now().UnixNano()) }

// cancelWith requests cancellation at the next round boundary; the first
// reason wins.
func (j *job) cancelWith(msg string) {
	j.mu.Lock()
	if j.cancelMsg == "" {
		j.cancelMsg = msg
	}
	j.mu.Unlock()
}

// canceled returns the pending cancellation reason ("" when none).
func (j *job) canceled() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancelMsg
}

// snapshot returns the job's Result under its lock.
func (j *job) snapshot() Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Result{
		ID:      j.id,
		Spec:    j.spec.canonical,
		State:   j.state,
		Request: json.RawMessage(j.spec.request),
		Result:  j.res,
		Report:  j.report,
		Metrics: j.metrics,
		Error:   j.errMsg,
	}
}

// terminalState reports whether s is a terminal job state.
func terminalState(s string) bool {
	return s == StateDone || s == StateFailed || s == StateInterrupted || s == StateTimedOut
}

// terminal reports whether the job has finished (in any way).
func (j *job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return terminalState(j.state)
}

func (j *job) trace() ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.traceData, terminalState(j.state)
}
