package fault

import (
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"peak/internal/machine"
	"peak/internal/opt"
	"peak/internal/sim"
	"peak/internal/workloads"
)

// Fault decisions must be pure functions of (seed, identity): repeated
// queries agree, and distinct identities draw independently.
func TestDecisionsAreIdentityPure(t *testing.T) {
	p := Uniform(0.3, 42)
	keys := []string{"1/ts/flags=a/p4", "1/ts/flags=b/p4", "2/ts/flags=a/p4"}
	for _, k := range keys {
		if got, again := p.CompileFailures(k), p.CompileFailures(k); got != again {
			t.Errorf("CompileFailures(%q) unstable: %d then %d", k, got, again)
		}
		if got, again := p.Miscompiles(k), p.Miscompiles(k); got != again {
			t.Errorf("Miscompiles(%q) unstable: %v then %v", k, got, again)
		}
		if got, again := p.PanicsJob(k), p.PanicsJob(k); got != again {
			t.Errorf("PanicsJob(%q) unstable: %v then %v", k, got, again)
		}
	}
	// A different seed must shuffle the victims (sanity: at rate 0.3 over
	// many keys, two seeds agreeing everywhere is astronomically unlikely).
	q := Uniform(0.3, 43)
	same := true
	for i := 0; i < 200 && same; i++ {
		k := keys[0] + string(rune('a'+i%26))
		same = p.Miscompiles(k) == q.Miscompiles(k) && p.PanicsJob(k) == q.PanicsJob(k)
	}
	if same {
		t.Error("seeds 42 and 43 produced identical fault decisions")
	}
}

func TestCompileFailuresBounded(t *testing.T) {
	p := &Plan{Seed: 7, CompileFailRate: 1} // always fails
	if got, want := p.CompileFailures("any"), p.CompileRetries()+1; got != want {
		t.Errorf("CompileFailures at rate 1 = %d, want capped %d", got, want)
	}
	if (&Plan{Seed: 7}).CompileFailures("any") != 0 {
		t.Error("zero rate must inject no compile failures")
	}
}

func TestMeasureStreamExhaustion(t *testing.T) {
	p := &Plan{Seed: 9, HangRate: 1, MaxMeasureRetries: 2}
	s := p.MeasureStream("job")
	retries, cost, err := s.HangRetries()
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("HangRetries at rate 1: err = %v, want ErrRetriesExhausted", err)
	}
	if retries != 3 {
		t.Errorf("retries = %d, want 3 (bound 2 exceeded)", retries)
	}
	wantCost := 3*p.Timeout() + p.Backoff(0) + p.Backoff(1) + p.Backoff(2)
	if cost != wantCost {
		t.Errorf("cost = %d, want %d", cost, wantCost)
	}
	if s2 := (&Plan{Seed: 9}).MeasureStream("job"); s2 != nil {
		t.Error("zero hang rate must return a nil stream")
	}
	var nilStream *MeasureStream
	if r, c, err := nilStream.HangRetries(); r != 0 || c != 0 || err != nil {
		t.Error("nil MeasureStream must be a no-op")
	}
}

// Two identical streams must replay the same hang sequence; this is what
// makes per-job hang faults reproducible across runs and worker counts.
func TestMeasureStreamDeterminism(t *testing.T) {
	p := Uniform(0.4, 11)
	a, b := p.MeasureStream("round=1/flag=gcse"), p.MeasureStream("round=1/flag=gcse")
	for i := 0; i < 50; i++ {
		ra, ca, ea := a.HangRetries()
		rb, cb, eb := b.HangRetries()
		if ra != rb || ca != cb || (ea == nil) != (eb == nil) {
			t.Fatalf("draw %d diverged: (%d,%d,%v) vs (%d,%d,%v)", i, ra, ca, ea, rb, cb, eb)
		}
	}
}

// Corrupt must be deterministic in seed and actually change the computed
// output of a real compiled workload.
func TestCorruptDeterministicAndEffective(t *testing.T) {
	all := workloads.All()
	if len(all) == 0 {
		t.Fatal("no workloads registered")
	}
	b := all[0]
	m := machine.PentiumIV()
	clean, err := opt.Compile(b.Prog, b.TS, opt.O3(), m)
	if err != nil {
		t.Fatal(err)
	}
	// Two independent compiles may legally differ in temp-register naming,
	// so determinism is checked on clones of ONE compile: what Corrupt
	// guarantees is that, given the same code and seed, it picks the same
	// site — which also holds across processes, because site selection
	// keys on opcode positions, not register names.
	v1 := &sim.Version{LF: clean.LF.Clone()}
	v2 := &sim.Version{LF: clean.LF.Clone()}
	if !Corrupt(v1, 1234) || !Corrupt(v2, 1234) {
		t.Fatal("Corrupt found no corruptible instruction in a real workload")
	}
	if !reflect.DeepEqual(v1.LF, v2.LF) {
		t.Error("same seed produced different corruptions")
	}
	if reflect.DeepEqual(v1.LF, clean.LF) {
		t.Error("Corrupt left the function unchanged")
	}
	v3 := &sim.Version{LF: clean.LF.Clone()}
	if !Corrupt(v3, 99) {
		t.Fatal("Corrupt with another seed found no site")
	}
}

func TestPlanFingerprint(t *testing.T) {
	if (&Plan{}).Fingerprint() != 0 || (*Plan)(nil).Fingerprint() != 0 {
		t.Error("zero plan must fingerprint to 0")
	}
	a, b := Uniform(0.05, 1), Uniform(0.05, 2)
	if a.Fingerprint() == 0 || a.Fingerprint() == b.Fingerprint() {
		t.Error("distinct plans must have distinct nonzero fingerprints")
	}
	if a.Fingerprint() != Uniform(0.05, 1).Fingerprint() {
		t.Error("fingerprint must be stable")
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := NewJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Kind: "round", ID: "ART/p4", Round: 0, State: []byte(`{"x":1}`)},
		{Kind: "round", ID: "SWIM/p4", Round: 0, State: []byte(`{"y":2}`)},
		{Kind: "round", ID: "ART/p4", Round: 1, Stopped: true, State: []byte(`{"x":3}`)},
	}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 2 {
		t.Fatalf("Len = %d, want 2 checkpoint IDs", j2.Len())
	}
	art, ok := j2.Latest("ART/p4")
	if !ok || art.Round != 1 || !art.Stopped || string(art.State) != `{"x":3}` {
		t.Errorf("Latest(ART/p4) = %+v, %v", art, ok)
	}
	swim, ok := j2.Latest("SWIM/p4")
	if !ok || swim.Round != 0 {
		t.Errorf("Latest(SWIM/p4) = %+v, %v", swim, ok)
	}
}

// A journal truncated mid-line (the kill-during-write case) must load every
// intact record and accept appends cleanly afterwards.
func TestJournalTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := NewJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Kind: "round", ID: "A", Round: 3}); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn write: a partial JSON line with no newline.
	if _, err := j.f.WriteString(`{"kind":"round","id":"A","rou`); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := j2.Latest("A")
	if !ok || rec.Round != 3 {
		t.Fatalf("Latest(A) after torn tail = %+v, %v; want round 3", rec, ok)
	}
	if err := j2.Append(Record{Kind: "round", ID: "A", Round: 4}); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	j3, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if rec, ok := j3.Latest("A"); !ok || rec.Round != 4 {
		t.Fatalf("Latest(A) after reopen = %+v, %v; want round 4", rec, ok)
	}
}

func TestMemoryJournal(t *testing.T) {
	j := NewMemoryJournal()
	if err := j.Append(Record{ID: "x", Round: 1}); err != nil {
		t.Fatal(err)
	}
	if rec, ok := j.Latest("x"); !ok || rec.Round != 1 {
		t.Fatal("memory journal lost its record")
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}
