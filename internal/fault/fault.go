// Package fault provides deterministic fault injection and the recovery
// primitives the tuning engine hardens itself with.
//
// The paper's offline search assumes every compile succeeds and every
// measurement returns, but the system it models does not enjoy that
// luxury: GCC flag combinations crash the compiler, miscompile programs,
// and produce runs that hang; a machine under tuning load drops jobs. A
// tuner that dies on the first such event loses hours of search. This
// package makes those events injectable so the engine's recovery paths
// (retry, quarantine, checkpoint/resume — see ARCHITECTURE.md "Failure &
// recovery contract") can be exercised and verified deterministically:
//
//   - Transient compile failures: the compiler "crashes" a seeded number
//     of times for a flag set before succeeding (CompileFailRate).
//   - Miscompiles: the compiled LIR is deliberately corrupted (Corrupt)
//     so the version produces wrong output — the case PEAK must detect by
//     golden-output verification and quarantine (MiscompileRate).
//   - Measurement hangs: a timed run "hangs" and is killed after a
//     timeout, costing TimeoutCycles plus backoff before the retry
//     (HangRate).
//   - Worker-job panics: a rating job dies mid-flight (PanicRate); the
//     scheduler and engine must isolate and retry it.
//
// Mirroring internal/noise, every decision is a pure function of the plan
// seed and a stable identity — a compile's (program, function, flags,
// machine) key, or a rating job's DAG key — never of execution order.
// Faults therefore strike the same victims at any worker count, with the
// compile cache on or off, and across a checkpoint/resume boundary, which
// is what keeps the repository's bit-identical determinism contract intact
// with injection enabled.
package fault

import (
	"errors"
	"fmt"
	"math/rand"

	"peak/internal/sched"
)

// Defaults for the optional Plan fields.
const (
	DefaultMaxCompileRetries = 6
	DefaultMaxMeasureRetries = 6
	DefaultMaxJobRetries     = 3
	DefaultTimeoutCycles     = 1_000_000
	DefaultBackoffCycles     = 50_000
)

// Plan describes one fault-injection regime. The zero value injects
// nothing. Rates are per-decision probabilities; retry bounds and cycle
// penalties have defaults (see the Default* constants) selected by zero.
type Plan struct {
	// Seed drives every fault stream. It is independent of the
	// measurement-noise seed so fault and noise regimes compose freely.
	Seed int64

	// CompileFailRate is the per-attempt probability that compiling a
	// distinct (program, function, flags, machine) combination fails
	// transiently. The injected failure count for a key is the number of
	// consecutive failing draws, so retrying eventually succeeds unless
	// the bound is exhausted first.
	CompileFailRate float64
	// MiscompileRate is the probability that a distinct compilation is
	// miscompiled: its LIR is corrupted (Corrupt) so the version computes
	// wrong results. The tuning base "-O3" is exempt — it models the
	// trusted production baseline the golden outputs come from.
	MiscompileRate float64
	// HangRate is the per-measurement probability that a timed run hangs
	// and is killed after a timeout.
	HangRate float64
	// PanicRate is the per-attempt probability that a rating job panics.
	PanicRate float64

	// MaxCompileRetries, MaxMeasureRetries and MaxJobRetries bound the
	// recovery attempts before the engine gives up and surfaces
	// ErrRetriesExhausted (0 selects the defaults; negative disables
	// retries entirely).
	MaxCompileRetries int
	MaxMeasureRetries int
	MaxJobRetries     int

	// TimeoutCycles is the simulated cost of detecting one hang (the
	// watchdog timeout); BackoffCycles the base of the exponential
	// backoff charged before each retry (doubling per attempt). Zero
	// selects the defaults.
	TimeoutCycles int64
	BackoffCycles int64
}

// Uniform returns a plan injecting every fault class at the given rate,
// except miscompiles, which are injected at rate/10: a real toolchain
// crashes and hangs far more often than it silently miscompiles, and
// quarantine — unlike the transient classes — permanently removes search
// candidates.
func Uniform(rate float64, seed int64) *Plan {
	return &Plan{
		Seed:            seed,
		CompileFailRate: rate,
		MiscompileRate:  rate / 10,
		HangRate:        rate,
		PanicRate:       rate,
	}
}

// IsZero reports whether the plan injects no faults at all.
func (p *Plan) IsZero() bool {
	return p == nil || (p.CompileFailRate == 0 && p.MiscompileRate == 0 &&
		p.HangRate == 0 && p.PanicRate == 0)
}

// Fingerprint identifies the plan's injection behaviour. Compile caches
// must not be shared across different fingerprints (a miscompiled artifact
// under one plan is a clean artifact under another); the engine folds the
// fingerprint into its cache keying so that cannot happen.
func (p *Plan) Fingerprint() uint64 {
	if p.IsZero() {
		return 0
	}
	key := fmt.Sprintf("plan/%v/%v/%v/%v/%d", p.CompileFailRate, p.MiscompileRate,
		p.HangRate, p.PanicRate, p.Seed)
	return uint64(sched.DeriveSeed(p.Seed, key)) | 1
}

// CompileRetries returns the effective transient-compile retry bound.
func (p *Plan) CompileRetries() int { return bound(p.MaxCompileRetries, DefaultMaxCompileRetries) }

// MeasureRetries returns the effective measurement retry bound.
func (p *Plan) MeasureRetries() int { return bound(p.MaxMeasureRetries, DefaultMaxMeasureRetries) }

// JobRetries returns the effective panicked-job retry bound.
func (p *Plan) JobRetries() int { return bound(p.MaxJobRetries, DefaultMaxJobRetries) }

// Timeout returns the effective hang-detection cost in simulated cycles.
func (p *Plan) Timeout() int64 {
	if p.TimeoutCycles == 0 {
		return DefaultTimeoutCycles
	}
	return p.TimeoutCycles
}

// Backoff returns the simulated backoff cost before retry attempt n
// (0-based): BackoffCycles doubled per attempt, capped at 16 doublings.
func (p *Plan) Backoff(attempt int) int64 {
	base := p.BackoffCycles
	if base == 0 {
		base = DefaultBackoffCycles
	}
	if attempt > 16 {
		attempt = 16
	}
	return base << uint(attempt)
}

func bound(v, def int) int {
	switch {
	case v == 0:
		return def
	case v < 0:
		return 0
	}
	return v
}

// ErrRetriesExhausted reports that a fault kept recurring past its retry
// bound — the run cannot make progress on this unit of work.
var ErrRetriesExhausted = errors.New("fault: retries exhausted")

// InjectedPanic is the value an injected worker-job panic carries. The
// engine's job isolation recognizes it and retries the job under a derived
// key; any other panic value is a genuine bug and is surfaced as a
// non-retryable job error instead.
type InjectedPanic struct{ Key string }

func (p InjectedPanic) String() string { return "fault: injected panic in " + p.Key }

// rng returns a private random stream for one (class, identity) decision.
func (p *Plan) rng(class, key string) *rand.Rand {
	return rand.New(rand.NewSource(sched.DeriveSeed(p.Seed, class+"/"+key)))
}

// CompileFailures returns the number of consecutive transient compile
// failures injected for the compilation identified by key — a pure
// function of (seed, key), so every requester observes the same count
// regardless of caching or scheduling. The count is capped one past the
// retry bound: callers compare against CompileRetries.
func (p *Plan) CompileFailures(key string) int {
	if p.CompileFailRate <= 0 {
		return 0
	}
	rng := p.rng("compilefail", key)
	limit := p.CompileRetries() + 1
	n := 0
	for n < limit && rng.Float64() < p.CompileFailRate {
		n++
	}
	return n
}

// Miscompiles reports whether the compilation identified by key is
// miscompiled under this plan (pure function of seed and key).
func (p *Plan) Miscompiles(key string) bool {
	if p.MiscompileRate <= 0 {
		return false
	}
	return p.rng("miscompile", key).Float64() < p.MiscompileRate
}

// PanicsJob reports whether the rating-job attempt identified by
// attemptKey panics (pure function of seed and key). Retried attempts use
// a derived key, so a panicked job's retry draws independently.
func (p *Plan) PanicsJob(attemptKey string) bool {
	if p.PanicRate <= 0 {
		return false
	}
	return p.rng("panic", attemptKey).Float64() < p.PanicRate
}

// MeasureStream is the per-job stream of measurement-hang faults, derived
// from the job's DAG key like every other per-job stream. It must stay
// confined to one goroutine.
type MeasureStream struct {
	plan *Plan
	rng  *rand.Rand
}

// MeasureStream returns the hang-fault stream for the rating job named by
// jobKey, or nil when the plan injects no hangs.
func (p *Plan) MeasureStream(jobKey string) *MeasureStream {
	if p == nil || p.HangRate <= 0 {
		return nil
	}
	return &MeasureStream{plan: p, rng: p.rng("hang", jobKey)}
}

// HangRetries draws the hang faults preceding one measurement: each hang
// costs the watchdog timeout plus exponential backoff before the retry.
// It returns the number of retries consumed and their total simulated
// cost; err is ErrRetriesExhausted when the hang recurred past the
// retry bound.
func (s *MeasureStream) HangRetries() (retries int, cost int64, err error) {
	if s == nil {
		return 0, 0, nil
	}
	max := s.plan.MeasureRetries()
	for s.rng.Float64() < s.plan.HangRate {
		cost += s.plan.Timeout() + s.plan.Backoff(retries)
		retries++
		if retries > max {
			return retries, cost, fmt.Errorf("measurement hang: %w", ErrRetriesExhausted)
		}
	}
	return retries, cost, nil
}
