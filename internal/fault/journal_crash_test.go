package fault

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeRecords(t *testing.T, path string, n int) []Record {
	t.Helper()
	j, err := NewJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{Kind: "tune", ID: string(rune('a' + i)), Round: i,
			State: json.RawMessage(`{"x":` + string(rune('0'+i)) + `}`)}
		if err := j.Append(recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return recs
}

// TestJournalTornTailNoNewline: a record torn before its trailing newline
// is dropped even when its bytes happen to parse — the newline is part of
// the atomic write.
func TestJournalTornTailNoNewline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	writeRecords(t, path, 3)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Strip exactly the final newline: the last record now parses but is
	// not newline-terminated.
	if err := os.WriteFile(path, data[:len(data)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	rep := j.Recovery()
	if rep.Records != 2 || !rep.TornTail || rep.DroppedRecords != 1 {
		t.Fatalf("recovery = %+v, want 2 records, torn tail, 1 dropped", rep)
	}
	if _, ok := j.Latest("c"); ok {
		t.Error("torn record c survived recovery")
	}
}

// TestJournalCRCCatchesCorruption: a bit flip inside a record's payload
// fails the checksum; recovery keeps the valid prefix and drops the
// damaged record and everything after it.
func TestJournalCRCCatchesCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	writeRecords(t, path, 4)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	// Flip a payload byte in the third record, keeping it valid JSON: the
	// digit inside its state object.
	corrupted := bytes.Replace(lines[2], []byte(`{"x":2}`), []byte(`{"x":7}`), 1)
	if bytes.Equal(corrupted, lines[2]) {
		t.Fatalf("corruption did not apply to line %q", lines[2])
	}
	lines[2] = corrupted
	if err := os.WriteFile(path, bytes.Join(lines, nil), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	rep := j.Recovery()
	if rep.Records != 2 || rep.DroppedRecords != 2 || !rep.Rewritten {
		t.Fatalf("recovery = %+v, want 2 kept / 2 dropped / rewritten", rep)
	}
	if _, ok := j.Latest("c"); ok {
		t.Error("corrupt record c survived the checksum")
	}
	if _, ok := j.Latest("d"); ok {
		t.Error("record d after the corruption survived")
	}
	if !strings.Contains(rep.String(), "dropped") {
		t.Errorf("recovery summary %q does not mention the drop", rep.String())
	}
}

// TestJournalRecoveryRewriteIsClean: after a torn-tail recovery the file on
// disk holds exactly the valid prefix (atomic rename, no temp debris), and
// appends continue on a clean line readable by a third open.
func TestJournalRecoveryRewriteIsClean(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.jsonl")
	writeRecords(t, path, 2)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := append(append([]byte{}, data...), []byte(`{"crc":123,"rec":{"kind":"tu`)...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if !j.Recovery().Rewritten {
		t.Fatalf("recovery = %+v, want rewritten", j.Recovery())
	}
	if err := j.Append(Record{Kind: "tune", ID: "z", Round: 9}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(got, data) {
		t.Error("recovered file does not start with the valid prefix")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("recovery left temp debris: %v", entries)
	}
	j3, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	rep := j3.Recovery()
	if rep.Records != 3 || rep.DroppedBytes != 0 || rep.TornTail {
		t.Fatalf("third open recovery = %+v, want 3 clean records", rep)
	}
	if rec, ok := j3.Latest("z"); !ok || rec.Round != 9 {
		t.Errorf("appended record z not readable after recovery: %+v %v", rec, ok)
	}
	if !strings.Contains(rep.String(), "no damage") {
		t.Errorf("clean recovery summary %q should say no damage", rep.String())
	}
}

// TestJournalReadsLegacyFormat: pre-CRC journals (bare JSON records, one
// per line) still load, flagged as legacy in the recovery report.
func TestJournalReadsLegacyFormat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	legacy := `{"kind":"tune","id":"a","round":0,"state":{"x":1}}
{"kind":"tune","id":"b","round":1,"stopped":true,"state":{"x":2}}
`
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	rep := j.Recovery()
	if rep.Records != 2 || rep.Legacy != 2 || rep.DroppedBytes != 0 {
		t.Fatalf("recovery = %+v, want 2 legacy records", rep)
	}
	rec, ok := j.Latest("b")
	if !ok || !rec.Stopped || rec.Round != 1 {
		t.Fatalf("legacy record b = %+v %v", rec, ok)
	}
}

// TestJournalAppendIsFramed: every appended line carries a CRC frame that
// decodeLine verifies.
func TestJournalAppendIsFramed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	writeRecords(t, path, 1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	line := bytes.TrimRight(data, "\n")
	var fr framedRecord
	if err := json.Unmarshal(line, &fr); err != nil || fr.Rec == nil {
		t.Fatalf("appended line %q is not CRC-framed: %v", line, err)
	}
	if _, legacy, ok := decodeLine(line); !ok || legacy {
		t.Fatalf("decodeLine(%q) = legacy=%v ok=%v, want framed ok", line, legacy, ok)
	}
}
