package fault

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"

	"peak/internal/trace"
)

// Record is one journal entry: a completed unit of work identified by a
// stable checkpoint ID (for a tune: "bench/machine/method/dataset"), the
// round it closed, and an opaque state snapshot sufficient to continue from
// the next round. Stopped marks the final record of a unit — the search
// ended and State is the finished state.
type Record struct {
	Kind    string          `json:"kind"`
	ID      string          `json:"id"`
	Round   int             `json:"round"`
	Stopped bool            `json:"stopped,omitempty"`
	State   json.RawMessage `json:"state,omitempty"`
}

// Journal is an append-only JSON-lines checkpoint journal. Appends are
// written (and flushed to the OS) one line at a time, so a killed process
// loses at most the line being written; the loader tolerates that truncated
// trailing line. A Journal is safe for concurrent use — experiment drivers
// share one journal across parallel tunes, keyed by Record.ID.
type Journal struct {
	mu     sync.Mutex
	f      *os.File // nil for an in-memory journal
	latest map[string]Record
	// appends counts records written by this process (loaded records do
	// not count); appendBytes their serialized size. Both feed the
	// "journal." metrics.
	appends     int64
	appendBytes int64
}

// NewJournal creates (truncating) the journal file at path.
func NewJournal(path string) (*Journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("fault: create journal: %w", err)
	}
	return &Journal{f: f, latest: map[string]Record{}}, nil
}

// OpenJournal opens an existing journal for resume: it loads every intact
// record (stopping at the first malformed or truncated line, which a killed
// writer legitimately leaves behind) and reopens the file for appending.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("fault: open journal: %w", err)
	}
	j := &Journal{f: f, latest: map[string]Record{}}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var good int64
	for sc.Scan() {
		line := sc.Bytes()
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			break
		}
		good += int64(len(line)) + 1
		j.latest[rec.ID] = rec
	}
	// Drop the truncated tail so appended records start on a clean line.
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, fmt.Errorf("fault: truncate journal tail: %w", err)
	}
	if _, err := f.Seek(good, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("fault: seek journal: %w", err)
	}
	return j, nil
}

// NewMemoryJournal returns a journal that keeps records in memory only
// (tests and callers that want checkpoint semantics without a file).
func NewMemoryJournal() *Journal {
	return &Journal{latest: map[string]Record{}}
}

// Append writes one record and flushes it to the OS.
func (j *Journal) Append(rec Record) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("fault: marshal record: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.latest[rec.ID] = rec
	j.appends++
	j.appendBytes += int64(len(b)) + 1
	if j.f == nil {
		return nil
	}
	if _, err := j.f.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("fault: append record: %w", err)
	}
	return nil
}

// FillMetrics folds the journal's counters into a metrics registry under
// the "journal." prefix: records appended by this process, their
// serialized bytes, and the resident checkpoint-ID count as a gauge.
// No-op when m is nil.
func (j *Journal) FillMetrics(m *trace.Metrics) {
	if m == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	m.Add("journal.appends", j.appends)
	m.Add("journal.append_bytes", j.appendBytes)
	m.Gauge("journal.ids", int64(len(j.latest)))
}

// Latest returns the most recent record for the checkpoint ID, if any.
func (j *Journal) Latest(id string) (Record, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec, ok := j.latest[id]
	return rec, ok
}

// IDs returns every checkpoint ID with at least one record, sorted. The
// serve daemon prints them on drain so an operator can see which tunes
// hold resumable state.
func (j *Journal) IDs() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	ids := make([]string, 0, len(j.latest))
	for id := range j.latest {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Len returns the number of checkpoint IDs with at least one record.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.latest)
}

// Sync forces journal contents to stable storage (SIGINT handlers call this
// before printing the resume command).
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	return j.f.Sync()
}

// Close syncs and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}
