package fault

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"peak/internal/trace"
)

// Record is one journal entry: a completed unit of work identified by a
// stable checkpoint ID (for a tune: "bench/machine/method/dataset"), the
// round it closed, and an opaque state snapshot sufficient to continue from
// the next round. Stopped marks the final record of a unit — the search
// ended and State is the finished state.
type Record struct {
	Kind    string          `json:"kind"`
	ID      string          `json:"id"`
	Round   int             `json:"round"`
	Stopped bool            `json:"stopped,omitempty"`
	State   json.RawMessage `json:"state,omitempty"`
}

// framedRecord is the on-disk line format: the record's JSON plus a CRC32
// (Castagnoli) of exactly those bytes. A torn or bit-flipped line fails the
// checksum and recovery keeps only the valid prefix before it, so a SIGKILL
// mid-write — or a disk scribble — loses at most the damaged record and its
// successors, never the journal.
type framedRecord struct {
	CRC uint32          `json:"crc"`
	Rec json.RawMessage `json:"rec"`
}

// crcTable is the Castagnoli polynomial table used for record checksums
// (hardware-accelerated on amd64/arm64).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// RecoveryReport describes what OpenJournal found: how many records (and
// distinct checkpoint IDs) survived, how many were legacy unchecksummed
// lines, and what was dropped. DroppedBytes > 0 means the file held a torn
// or corrupt tail; Rewritten reports that the valid prefix was rewritten
// in place via an atomic rename.
type RecoveryReport struct {
	// Records is the number of intact records loaded; IDs the distinct
	// checkpoint IDs among them.
	Records int `json:"records"`
	IDs     int `json:"ids"`
	// Legacy counts records accepted from the pre-CRC journal format
	// (bare JSON lines without a checksum frame).
	Legacy int `json:"legacy,omitempty"`
	// DroppedRecords / DroppedBytes describe the invalid suffix removed on
	// open: a torn final line (TornTail) and anything after the first
	// checksum or parse failure.
	DroppedRecords int   `json:"dropped_records,omitempty"`
	DroppedBytes   int64 `json:"dropped_bytes,omitempty"`
	TornTail       bool  `json:"torn_tail,omitempty"`
	// Rewritten reports that recovery rewrote the journal (valid prefix to
	// a temp file, then an atomic rename over the original).
	Rewritten bool `json:"rewritten,omitempty"`
}

// String formats the report as a one-line operator summary.
func (r RecoveryReport) String() string {
	s := fmt.Sprintf("journal recovery: %d record(s) over %d id(s) loaded", r.Records, r.IDs)
	if r.Legacy > 0 {
		s += fmt.Sprintf(", %d legacy unchecksummed", r.Legacy)
	}
	if r.DroppedBytes > 0 {
		s += fmt.Sprintf("; dropped %d byte(s)/%d record(s) of torn or corrupt tail", r.DroppedBytes, r.DroppedRecords)
	} else {
		s += "; no damage"
	}
	return s
}

// Journal is an append-only JSON-lines checkpoint journal. Every line is a
// CRC32-framed record written (and flushed to the OS) in one call, so a
// killed process loses at most the line being written; OpenJournal detects
// the torn tail by checksum, keeps the valid prefix via an atomic
// rename-on-write, and reports what it dropped. A Journal is safe for
// concurrent use — experiment drivers and the serve daemon share one
// journal across parallel tunes, keyed by Record.ID.
type Journal struct {
	mu     sync.Mutex
	f      *os.File // nil for an in-memory journal
	latest map[string]Record
	// appends counts records written by this process (loaded records do
	// not count); appendBytes their serialized size. Both feed the
	// "journal." metrics.
	appends     int64
	appendBytes int64
	// recovery is what OpenJournal found (zero value for a fresh or
	// in-memory journal).
	recovery RecoveryReport
}

// NewJournal creates (truncating) the journal file at path.
func NewJournal(path string) (*Journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("fault: create journal: %w", err)
	}
	return &Journal{f: f, latest: map[string]Record{}}, nil
}

// OpenJournal opens an existing journal for resume: it loads every record
// whose checksum verifies (bare pre-CRC lines are accepted as legacy
// records), stopping at the first torn, corrupt or malformed line — which a
// killed writer legitimately leaves behind. When anything was dropped, the
// valid prefix is rewritten to a temp file and atomically renamed over the
// original, so a crash during recovery can never lose intact records.
// Recovery() reports what was found.
func OpenJournal(path string) (*Journal, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fault: open journal: %w", err)
	}
	j := &Journal{latest: map[string]Record{}}
	var goodBytes int64
	rest := data
	for len(rest) > 0 {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			// A final fragment without its newline is a torn write even if
			// the bytes happen to parse: the '\n' is part of the record's
			// single atomic write.
			break
		}
		rec, legacy, ok := decodeLine(rest[:nl])
		if !ok {
			break
		}
		goodBytes += int64(nl) + 1
		rest = rest[nl+1:]
		j.latest[rec.ID] = rec
		j.recovery.Records++
		if legacy {
			j.recovery.Legacy++
		}
	}
	j.recovery.IDs = len(j.latest)

	if dropped := int64(len(data)) - goodBytes; dropped > 0 {
		j.recovery.DroppedBytes = dropped
		j.recovery.TornTail = true
		tail := bytes.TrimRight(data[goodBytes:], "\n")
		j.recovery.DroppedRecords = 1 + bytes.Count(tail, []byte("\n"))
		// Atomic rename-on-write: the valid prefix lands under a temp name
		// first, so a crash mid-recovery leaves either the old journal or
		// the recovered one — never a half-truncated file.
		if err := j.rewriteLocked(path, data[:goodBytes]); err != nil {
			return nil, err
		}
		j.recovery.Rewritten = true
		return j, nil
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("fault: open journal: %w", err)
	}
	if _, err := f.Seek(goodBytes, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("fault: seek journal: %w", err)
	}
	j.f = f
	return j, nil
}

// rewriteLocked replaces the journal file at path with the given contents
// via temp-file + fsync + atomic rename, and installs the new file as j.f
// positioned at its end. The caller must not yet have published j.
func (j *Journal) rewriteLocked(path string, contents []byte) error {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".recover-*")
	if err != nil {
		return fmt.Errorf("fault: recover journal: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(tmpName) }
	if _, err := tmp.Write(contents); err != nil {
		cleanup()
		return fmt.Errorf("fault: recover journal: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("fault: recover journal: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		cleanup()
		return fmt.Errorf("fault: recover journal: %w", err)
	}
	j.f = tmp
	return nil
}

// decodeLine parses one journal line, accepting both the CRC-framed format
// and the legacy bare-record format, and reports whether the line is intact.
func decodeLine(line []byte) (rec Record, legacy, ok bool) {
	var fr framedRecord
	if err := json.Unmarshal(line, &fr); err == nil && fr.Rec != nil {
		if crc32.Checksum(fr.Rec, crcTable) != fr.CRC {
			return Record{}, false, false
		}
		if err := json.Unmarshal(fr.Rec, &rec); err != nil {
			return Record{}, false, false
		}
		return rec, false, true
	}
	// Legacy pre-CRC journals framed records as bare JSON objects. They
	// carry no checksum, so only a JSON parse failure reveals damage.
	if err := json.Unmarshal(line, &rec); err != nil || rec.ID == "" {
		return Record{}, false, false
	}
	return rec, true, true
}

// NewMemoryJournal returns a journal that keeps records in memory only
// (tests and callers that want checkpoint semantics without a file).
func NewMemoryJournal() *Journal {
	return &Journal{latest: map[string]Record{}}
}

// Append writes one CRC-framed record in a single write and flushes it to
// the OS.
func (j *Journal) Append(rec Record) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("fault: marshal record: %w", err)
	}
	line, err := json.Marshal(framedRecord{CRC: crc32.Checksum(b, crcTable), Rec: b})
	if err != nil {
		return fmt.Errorf("fault: frame record: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.latest[rec.ID] = rec
	j.appends++
	j.appendBytes += int64(len(line)) + 1
	if j.f == nil {
		return nil
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("fault: append record: %w", err)
	}
	return nil
}

// Recovery returns what OpenJournal found when this journal was opened
// (the zero report for a fresh or in-memory journal).
func (j *Journal) Recovery() RecoveryReport {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.recovery
}

// FillMetrics folds the journal's counters into a metrics registry under
// the "journal." prefix: records appended by this process, their
// serialized bytes, and the resident checkpoint-ID count as a gauge.
// No-op when m is nil.
func (j *Journal) FillMetrics(m *trace.Metrics) {
	if m == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	m.Add("journal.appends", j.appends)
	m.Add("journal.append_bytes", j.appendBytes)
	m.Gauge("journal.ids", int64(len(j.latest)))
}

// Latest returns the most recent record for the checkpoint ID, if any.
func (j *Journal) Latest(id string) (Record, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec, ok := j.latest[id]
	return rec, ok
}

// IDs returns every checkpoint ID with at least one record, sorted. The
// serve daemon prints them on drain so an operator can see which tunes
// hold resumable state.
func (j *Journal) IDs() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	ids := make([]string, 0, len(j.latest))
	for id := range j.latest {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Len returns the number of checkpoint IDs with at least one record.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.latest)
}

// Sync forces journal contents to stable storage (SIGINT handlers call this
// before printing the resume command).
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	return j.f.Sync()
}

// Close syncs and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}
