package fault

import (
	"math/rand"

	"peak/internal/ir"
	"peak/internal/sim"
)

// corruptions maps each corruptible opcode to its miscompiled replacement.
// Replacements stay within the original cost class (integer/float, same
// operand shape), so a corrupted version is structurally valid, costs about
// the same, and differs only in the values it computes — exactly the
// silent-miscompile case golden-output verification exists to catch.
var corruptions = map[ir.Opcode]ir.Opcode{
	ir.LAdd:  ir.LSub,
	ir.LSub:  ir.LAdd,
	ir.LMul:  ir.LAdd,
	ir.LFAdd: ir.LFSub,
	ir.LFSub: ir.LFAdd,
	ir.LFMul: ir.LFAdd,
	ir.LFDiv: ir.LFMul,
}

// Corrupt deterministically miscompiles v in place: it picks one arithmetic
// instruction of v's function (seeded by seed) and swaps its opcode per the
// corruptions table. Returns false when the function has no corruptible
// instruction (v is left untouched). Corrupt must run before the version is
// frozen or published.
//
// A corrupted version still terminates under a Runner.MaxSteps bound —
// swapping a loop counter's add for a sub can make the loop run away, which
// the verifier's step limit converts into a quarantinable error
// (sim.ErrStepLimit) rather than a hang.
func Corrupt(v *sim.Version, seed int64) bool {
	type site struct{ b, i int }
	var sites []site
	for bi, b := range v.LF.Blocks {
		for ii := range b.Instrs {
			if _, ok := corruptions[b.Instrs[ii].Op]; ok {
				sites = append(sites, site{bi, ii})
			}
		}
	}
	if len(sites) == 0 {
		return false
	}
	rng := rand.New(rand.NewSource(seed))
	s := sites[rng.Intn(len(sites))]
	in := &v.LF.Blocks[s.b].Instrs[s.i]
	in.Op = corruptions[in.Op]
	return true
}
