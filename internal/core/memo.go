package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"peak/internal/bench"
	"peak/internal/machine"
	"peak/internal/opt"
	"peak/internal/store"
	"peak/internal/vcache"
)

// Rating memoization: with a persistent store attached (Tuner.Store), every
// finished rating job records its outcome under a key that names the job's
// complete identity, and a later process whose store holds that key
// short-circuits the simulation entirely, restoring the outcome
// byte-for-byte. Correctness rests on the engine's determinism contract: a
// rating job is a pure function of (code fingerprints, machine, dataset,
// root seed, job key, rating config incl. the resolved noise model), so the
// key below captures exactly that function's inputs and the memoized value
// is exactly what the simulation would have produced. Anything outside the
// contract — fault injection, whose draws consume per-process stream state
// — must never be memoized; the engine refuses to attach a store when
// faults are enabled.

// Memo table namespaces within the persistent store. Exported so the serve
// and experiment layers partition the same store file without colliding.
const (
	// MemoKindRate holds rating-job outcomes (internal/core engine).
	MemoKindRate = "rate"
	// MemoKindMeasure holds MeasurePerformanceStored outcomes.
	MemoKindMeasure = "measure"
	// MemoKindCell holds experiment grid-cell outcomes
	// (internal/experiments).
	MemoKindCell = "cell"
	// MemoKindJob holds finished serve-job artifacts (internal/serve).
	MemoKindJob = "job"
)

// memoVersion prefixes every memo key; bump it when the simulator, the
// rating pipeline or the payload encoding changes meaning, so stale
// records from older builds miss instead of corrupting results.
const memoVersion = "v1"

// MemoDigest renders every Config field that can influence a rating
// outcome on machine m — including the resolved measurement-noise model —
// as a compact stable string for memo keys. Floats are rendered as IEEE
// bit patterns so the digest never loses precision to formatting. Faults
// are deliberately excluded: faulted ratings are never memoized.
func (c *Config) MemoDigest(m *machine.Machine) string {
	nm := NoiseModelFor(c, m)
	fb := func(v float64) string { return fmt.Sprintf("%x", math.Float64bits(v)) }
	return fmt.Sprintf("w=%d,vt=%s,mvt=%s,ok=%s,mi=%d,src=%d,brbr=%t,insp=%t,mc=%d,mds=%s,mcomp=%d,mpv=%s,it=%s,seed=%d,conv=%d,conf=%s,cirel=%s,esc=%d,ncc=%t,noise=%s.%s.%s.%s.%d.%s.%d.%s",
		c.Window, fb(c.VarThreshold), fb(c.MBRVarThreshold), fb(c.OutlierK),
		c.MaxInvPerVersion, c.SaveRestoreCyclesPerElem, c.BasicRBR, c.RBRInspector,
		c.MaxContexts, fb(c.MinDominantShare), c.MaxComponents, fb(c.MBRMaxProfileVar),
		fb(c.ImprovementThreshold), c.Seed, c.Convergence, fb(c.confidence()),
		fb(c.CIRelThreshold), c.EscalationBudget, c.NoCompileCache,
		fb(nm.Jitter), fb(nm.SpikeProb), fb(nm.SpikeScale), fb(nm.DriftAmp), nm.DriftPeriod,
		fb(nm.BurstProb), nm.BurstLen, fb(nm.BurstScale))
}

// rateMemoKey names one rating job's complete identity. The job key
// already encodes round, method, flag and panic-retry generation; the
// fingerprints pin the exact code bodies; the root seed pins every derived
// stream; the digest pins the rating configuration and noise model.
func (e *engine) rateMemoKey(jobKey string, m Method, expFP, baseFP vcache.FP128, escalatable bool) string {
	return fmt.Sprintf("%s/%s/%s/%s/%s/seed=%d/job=%s/m=%s/exp=%s/base=%s/esc=%t/cfg=%s",
		memoVersion, e.t.Bench.Name, e.t.Mach.Name, e.t.Dataset.Name, e.ts.Name,
		e.rootSeed, jobKey, m, expFP, baseFP, escalatable, e.cfg.MemoDigest(e.t.Mach))
}

// rateMemoPayload is the binary layout of one memoized rating-job outcome:
// every field account() and emitRate() consume, floats as IEEE bits for an
// exact round trip (CIHalf is +Inf below two samples, which JSON could not
// carry).
// rateMemoLen is the exact rate-memo payload size: nine uint64 fields
// (method, EVAL, VAR, samples, outliers, CI half-width, cycles,
// invocations, runs) plus three flag bytes.
const rateMemoLen = 9*8 + 3

func encodeRateMemo(r *jobResult) []byte {
	b := make([]byte, 0, rateMemoLen)
	u64 := func(v uint64) { b = binary.LittleEndian.AppendUint64(b, v) }
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	bit := func(v bool) {
		if v {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	u64(uint64(r.rating.Method))
	f64(r.rating.EVAL)
	f64(r.rating.VAR)
	u64(uint64(int64(r.rating.Samples)))
	u64(uint64(int64(r.rating.Outliers)))
	f64(r.rating.CIHalf)
	bit(r.rating.Abandoned)
	bit(r.converged)
	bit(r.escalated)
	u64(uint64(r.ctx.cycles))
	u64(uint64(r.ctx.invocations))
	u64(uint64(int64(r.ctx.runs)))
	return b
}

// restoreRateMemo rebuilds a job result from a memo payload, reporting
// false (fall through to real simulation) on any size mismatch.
func restoreRateMemo(r *jobResult, b []byte) bool {
	if len(b) != rateMemoLen {
		return false
	}
	u64 := func() uint64 {
		v := binary.LittleEndian.Uint64(b)
		b = b[8:]
		return v
	}
	f64 := func() float64 { return math.Float64frombits(u64()) }
	bit := func() bool {
		v := b[0] != 0
		b = b[1:]
		return v
	}
	r.rating.Method = Method(u64())
	r.rating.EVAL = f64()
	r.rating.VAR = f64()
	r.rating.Samples = int(int64(u64()))
	r.rating.Outliers = int(int64(u64()))
	r.rating.CIHalf = f64()
	r.rating.Abandoned = bit()
	r.converged = bit()
	r.escalated = bit()
	r.ctx.cycles = int64(u64())
	r.ctx.invocations = int64(u64())
	r.ctx.runs = int(int64(u64()))
	return true
}

// MeasurePerformanceStored is MeasurePerformanceCached backed by the
// persistent store: the measured cycles are memoized under the resolved
// code's 128-bit fingerprint plus the (benchmark, dataset, machine)
// identity, so a warm process answers repeat measurements without running
// the simulator at all. Measurement here is noise-free and deterministic,
// so the memoized value is exactly what the simulation would produce; on
// any key miss the real simulation runs and its result is recorded for the
// next flush. A nil store behaves exactly like MeasurePerformanceCached.
func MeasurePerformanceStored(b *bench.Benchmark, ds *bench.Dataset, m *machine.Machine,
	flags opt.FlagSet, cache *vcache.Cache, st *store.Store) (tsCycles, programCycles int64, err error) {
	if st == nil {
		return MeasurePerformanceCached(b, ds, m, flags, cache)
	}
	v, fp, err := resolveMeasureVersion(b, m, flags, cache)
	if err != nil {
		return 0, 0, fmt.Errorf("measure %s: %w", b.Name, err)
	}
	key := fmt.Sprintf("%s/%s/%s/%s/%s/fp=%s", memoVersion, b.Name, m.Name, ds.Name, flags, fp)
	if payload, ok := st.LookupMemo(MemoKindMeasure, key); ok && len(payload) == 16 {
		ts := int64(binary.LittleEndian.Uint64(payload))
		prog := int64(binary.LittleEndian.Uint64(payload[8:]))
		return ts, prog, nil
	}
	tsCycles, programCycles, err = runMeasurement(b, ds, m, flags, v)
	if err != nil {
		return 0, 0, err
	}
	payload := make([]byte, 0, 16)
	payload = binary.LittleEndian.AppendUint64(payload, uint64(tsCycles))
	payload = binary.LittleEndian.AppendUint64(payload, uint64(programCycles))
	st.RecordMemo(MemoKindMeasure, key, payload)
	return tsCycles, programCycles, nil
}
