package core

import (
	"encoding/json"
	"fmt"
	"sort"

	"peak/internal/fault"
	"peak/internal/opt"
	"peak/internal/trace"
)

// engineState is the checkpoint snapshot the engine appends to its journal
// after each completed Iterative Elimination round. It captures everything
// a fresh process needs to continue the search and finish with a
// TuneResult byte-identical to an uninterrupted run: the search position
// (Current/Candidates), which flag sets have been resolved (so the restore
// can rebuild the in-memory version memo without re-accounting), and every
// accumulated counter. Flag sets serialize as their canonical uint64
// bitset; flags as their int values.
type engineState struct {
	Current    uint64   `json:"current"`
	Candidates []int    `json:"candidates"`
	MI         int      `json:"mi"`
	Switched   int      `json:"switched"`
	SharedInv  int64    `json:"sharedInv"`
	Lookups    int64    `json:"lookups"`
	Resolved   []uint64 `json:"resolved"`

	CompileRetries int   `json:"compileRetries"`
	FaultCycles    int64 `json:"faultCycles"`
	VerifyCycles   int64 `json:"verifyCycles"`
	VerifyInv      int64 `json:"verifyInv"`

	// TuneResult counters accumulated so far.
	TuningCycles   int64 `json:"tuningCycles"`
	ProgramRuns    int   `json:"programRuns"`
	Invocations    int64 `json:"invocations"`
	VersionsRated  int   `json:"versionsRated"`
	Rounds         int   `json:"rounds"`
	Removed        []int `json:"removed"`
	Escalations    int   `json:"escalations"`
	EscalatedFlags []int `json:"escalatedFlags"`
	DedupSkips     int   `json:"dedupSkips"`
	Quarantined    []int `json:"quarantined"`
	MeasureRetries int   `json:"measureRetries"`
	JobRetries     int   `json:"jobRetries"`
}

func intsOf(flags []opt.Flag) []int {
	if flags == nil {
		return nil
	}
	out := make([]int, len(flags))
	for i, f := range flags {
		out[i] = int(f)
	}
	return out
}

// checkpoint appends the post-round engine state to the journal. It runs
// on the reduction goroutine between rounds, when no rating jobs are in
// flight, so reading the result ledger needs no locking.
func (e *engine) checkpoint(round int, current opt.FlagSet, candidates []opt.Flag, stopped bool) error {
	if e.journal == nil {
		return nil
	}
	resolved := make([]uint64, 0, len(e.local))
	e.mu.Lock()
	for fs := range e.local {
		resolved = append(resolved, uint64(fs))
	}
	compileRetries, faultCycles := e.compileRetries, e.faultCycles
	verifyCycles, verifyInv := e.verifyCycles, e.verifyInv
	e.mu.Unlock()
	sort.Slice(resolved, func(i, j int) bool { return resolved[i] < resolved[j] })

	r := e.res
	st := engineState{
		Current:    uint64(current),
		Candidates: intsOf(candidates),
		MI:         e.mi,
		Switched:   e.switched,
		SharedInv:  e.sharedInv,
		Lookups:    e.lookups,
		Resolved:   resolved,

		CompileRetries: compileRetries,
		FaultCycles:    faultCycles,
		VerifyCycles:   verifyCycles,
		VerifyInv:      verifyInv,

		TuningCycles:   r.TuningCycles,
		ProgramRuns:    r.ProgramRuns,
		Invocations:    r.Invocations,
		VersionsRated:  r.VersionsRated,
		Rounds:         r.Rounds,
		Removed:        intsOf(r.Removed),
		Escalations:    r.Escalations,
		EscalatedFlags: intsOf(r.EscalatedFlags),
		DedupSkips:     r.DedupSkips,
		Quarantined:    intsOf(r.Quarantined),
		MeasureRetries: r.MeasureRetries,
		JobRetries:     r.JobRetries,
	}
	b, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("tune %s: marshal checkpoint: %w", e.t.Bench.Name, err)
	}
	if err := e.journal.Append(fault.Record{
		Kind: "tune", ID: e.ckptID, Round: round, Stopped: stopped, State: b,
	}); err != nil {
		return err
	}
	if e.tb != nil {
		ev := trace.Event{Kind: trace.KindCheckpoint, Round: round + 1,
			Count: int64(len(b)), Cycles: e.res.TuningCycles}
		if stopped {
			ev.Outcome = "stopped"
		}
		e.emit(ev)
	}
	return nil
}

// restore rebuilds the engine from a checkpoint snapshot. It re-resolves
// every flag set the interrupted process had compiled — with restoring set,
// so the recompilation (and its deterministic re-verification) accrues no
// counters — then overwrites every accumulator with the snapshot's values.
// Compilation, corruption and verification are pure functions of
// identities, so the rebuilt memo is exactly the interrupted process's.
func (e *engine) restore(state json.RawMessage) (*engineState, error) {
	var st engineState
	if err := json.Unmarshal(state, &st); err != nil {
		return nil, fmt.Errorf("tune %s: corrupt checkpoint %s: %w", e.t.Bench.Name, e.ckptID, err)
	}
	e.restoring = true
	for _, fs := range st.Resolved {
		if _, err := e.version(opt.FlagSet(fs)); err != nil {
			e.restoring = false
			return nil, fmt.Errorf("tune %s: resume recompile: %w", e.t.Bench.Name, err)
		}
	}
	e.restoring = false

	e.mi = st.MI
	e.switched = st.Switched
	e.sharedInv = st.SharedInv
	e.lookups = st.Lookups
	e.compileRetries = st.CompileRetries
	e.faultCycles = st.FaultCycles
	e.verifyCycles = st.VerifyCycles
	e.verifyInv = st.VerifyInv

	r := e.res
	r.TuningCycles = st.TuningCycles
	r.ProgramRuns = st.ProgramRuns
	r.Invocations = st.Invocations
	r.VersionsRated = st.VersionsRated
	r.Rounds = st.Rounds
	r.Removed = flagsOf(st.Removed)
	r.Escalations = st.Escalations
	r.EscalatedFlags = flagsOf(st.EscalatedFlags)
	r.DedupSkips = st.DedupSkips
	r.Quarantined = flagsOf(st.Quarantined)
	r.MeasureRetries = st.MeasureRetries
	r.JobRetries = st.JobRetries
	return &st, nil
}
