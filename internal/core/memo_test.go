package core

import (
	"reflect"
	"testing"

	"peak/internal/fault"
	"peak/internal/machine"
	"peak/internal/opt"
	"peak/internal/profiling"
	"peak/internal/sched"
	"peak/internal/store"
	"peak/internal/vcache"
)

// storedTune runs one tune of the tiny benchmark against st (nil = no
// store) with the given worker count and returns the result.
func storedTune(t *testing.T, st *store.Store, cache *vcache.Cache, workers int, plan *fault.Plan) *TuneResult {
	t.Helper()
	b := tinyBenchmark()
	m := machine.SPARCII()
	p, err := profiling.Run(b, b.Train, m)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Faults = plan
	tu := &Tuner{Bench: b, Mach: m, Dataset: b.Train, Cfg: cfg, Profile: p,
		Pool: sched.New(workers), Cache: cache, Store: st}
	res, err := tu.Tune()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestRatingMemoWarmMatchesCold is the tentpole determinism check at the
// engine level: a cold tune against an empty store, flushed and reopened,
// must warm-start a second tune to the identical TuneResult — every
// counter, cycle and flag byte-for-byte — with the rating simulations
// answered from the memo table, at several worker counts.
func TestRatingMemoWarmMatchesCold(t *testing.T) {
	dir := t.TempDir()

	cold, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	coldCache := vcache.New()
	cold.AttachCache(coldCache)
	want := storedTune(t, cold, coldCache, 4, nil)
	if st := cold.Stats(); st.MemoHits != 0 || st.Pending == 0 {
		t.Fatalf("cold store stats = %+v, want 0 hits and pending records", st)
	}
	if err := cold.Flush(); err != nil {
		t.Fatal(err)
	}

	plain := storedTune(t, nil, vcache.New(), 4, nil)
	if !reflect.DeepEqual(plain, want) {
		t.Fatalf("attaching an empty store changed the result:\nplain %+v\nstore %+v", plain, want)
	}

	for _, workers := range []int{1, 8} {
		warm, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		warmCache := vcache.New()
		if n := warm.AttachCache(warmCache); n == 0 {
			t.Fatal("warm store preloaded nothing")
		}
		got := storedTune(t, warm, warmCache, workers, nil)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("warm tune (%d workers) diverged:\ncold %+v\nwarm %+v", workers, want, got)
		}
		st := warm.Stats()
		if st.MemoHits == 0 {
			t.Fatalf("warm tune (%d workers) hit no memo records: %+v", workers, st)
		}
		if st.MemoMisses != 0 {
			t.Fatalf("warm tune (%d workers) missed %d memo lookups — key drift", workers, st.MemoMisses)
		}
		cs := warmCache.Stats()
		if cs.Misses != 0 {
			t.Fatalf("warm tune (%d workers) recompiled %d flag sets despite preload", workers, cs.Misses)
		}
	}
}

// TestRateMemoRoundTrip pins the rate-memo wire codec: every field of a
// job result must survive encode → restore, and the payload must be
// exactly rateMemoLen bytes. A length drift between the encoder and the
// decoder is invisible to the determinism tests — restore failure falls
// through to the real simulation, which produces the same bytes — so this
// is the test that keeps warm starts actually warm.
func TestRateMemoRoundTrip(t *testing.T) {
	in := jobResult{
		rating: Rating{Method: MethodCBR, EVAL: 123.456, VAR: 7.89,
			Samples: 40, Outliers: 3, CIHalf: 0.25, Abandoned: true},
		converged: true,
		escalated: true,
		ctx:       &ratingCtx{cycles: 987654321, invocations: 42, runs: 2},
	}
	payload := encodeRateMemo(&in)
	if len(payload) != rateMemoLen {
		t.Fatalf("encodeRateMemo produced %d bytes, want rateMemoLen = %d", len(payload), rateMemoLen)
	}
	out := jobResult{ctx: &ratingCtx{}}
	if !restoreRateMemo(&out, payload) {
		t.Fatal("restoreRateMemo rejected a freshly encoded payload")
	}
	if !reflect.DeepEqual(in.rating, out.rating) ||
		in.converged != out.converged || in.escalated != out.escalated ||
		in.ctx.cycles != out.ctx.cycles || in.ctx.invocations != out.ctx.invocations ||
		in.ctx.runs != out.ctx.runs {
		t.Fatalf("round trip diverged:\nin  %+v ctx %+v\nout %+v ctx %+v",
			in, *in.ctx, out, *out.ctx)
	}
	if restoreRateMemo(&out, payload[:len(payload)-1]) {
		t.Error("restoreRateMemo accepted a truncated payload")
	}
}

// TestStoreIgnoredUnderFaults pins the "never memoize faulted ratings"
// rule: a tune with fault injection and a store attached must neither
// consult nor populate the memo table, and its result must equal the same
// faulted tune without a store.
func TestStoreIgnoredUnderFaults(t *testing.T) {
	plan := fault.Uniform(0.10, 42)
	want := storedTune(t, nil, vcache.New(), 4, plan)

	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	got := storedTune(t, st, vcache.New(), 4, plan)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("store changed a faulted tune:\nwithout %+v\nwith %+v", want, got)
	}
	if s := st.Stats(); s.MemoHits != 0 || s.MemoMisses != 0 || s.Pending != 0 {
		t.Fatalf("faulted tune touched the memo table: %+v", s)
	}
}

// TestMeasurePerformanceStored pins the measurement memo: a stored
// measurement returns identical cycles to the unmemoized path, records on
// miss, and a reopened store answers without simulating (verified by the
// measure memo hitting instead of missing).
func TestMeasurePerformanceStored(t *testing.T) {
	b := tinyBenchmark()
	m := machine.SPARCII()
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cache := vcache.New()
	flags := opt.O3().Without(opt.AllFlags()[0])
	wantTS, wantProg, err := MeasurePerformance(b, b.Train, m, flags)
	if err != nil {
		t.Fatal(err)
	}
	ts, prog, err := MeasurePerformanceStored(b, b.Train, m, flags, cache, st)
	if err != nil {
		t.Fatal(err)
	}
	if ts != wantTS || prog != wantProg {
		t.Fatalf("stored measurement (%d, %d) != plain (%d, %d)", ts, prog, wantTS, wantProg)
	}
	if s := st.Stats(); s.Pending != 1 || s.MemoHits != 0 {
		t.Fatalf("cold measurement stats = %+v, want 1 pending / 0 hits", s)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	warm, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ts, prog, err = MeasurePerformanceStored(b, b.Train, m, flags, vcache.New(), warm)
	if err != nil {
		t.Fatal(err)
	}
	if ts != wantTS || prog != wantProg {
		t.Fatalf("warm measurement (%d, %d) != plain (%d, %d)", ts, prog, wantTS, wantProg)
	}
	if s := warm.Stats(); s.MemoHits != 1 {
		t.Fatalf("warm measurement stats = %+v, want 1 memo hit", s)
	}
}
