package core

import (
	"bytes"
	"reflect"
	"testing"

	"peak/internal/fault"
	"peak/internal/machine"
	"peak/internal/profiling"
	"peak/internal/sched"
	"peak/internal/trace"
)

// tracedTune runs one tune of the tiny benchmark with tracing on and
// returns the serialized trace alongside the result.
func tracedTune(t *testing.T, plan *fault.Plan, workers int, noCache bool) ([]byte, *TuneResult) {
	t.Helper()
	b := tinyBenchmark()
	m := machine.SPARCII()
	p, err := profiling.Run(b, b.Train, m)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Faults = plan
	cfg.NoCompileCache = noCache
	tb := trace.NewBuffer()
	tu := &Tuner{Bench: b, Mach: m, Dataset: b.Train, Cfg: cfg, Profile: p,
		Pool: sched.New(workers), Trace: tb}
	res, err := tu.Tune()
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	tr := trace.NewTracer(&out)
	tr.Flush(tb)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	return out.Bytes(), res
}

// TestTraceBytesDeterministic is the tentpole contract for traces: the
// serialized trace is byte-identical at any worker count and with the
// compile cache on or off — including under fault injection, whose
// recovery events are the richest part of the schema.
func TestTraceBytesDeterministic(t *testing.T) {
	for _, plan := range []*fault.Plan{nil, fault.Uniform(0.10, 42)} {
		name := "clean"
		if plan != nil {
			name = "faulted"
		}
		t.Run(name, func(t *testing.T) {
			ref, refRes := tracedTune(t, plan, 1, false)
			if len(ref) == 0 {
				t.Fatal("trace is empty")
			}
			for _, tc := range []struct {
				name    string
				workers int
				noCache bool
			}{
				{"workers=8/cache", 8, false},
				{"workers=1/nocache", 1, true},
				{"workers=8/nocache", 8, true},
			} {
				got, gotRes := tracedTune(t, plan, tc.workers, tc.noCache)
				if !bytes.Equal(got, ref) {
					t.Errorf("%s: trace differs from workers=1/cache reference", tc.name)
				}
				if !reflect.DeepEqual(gotRes, refRes) {
					t.Errorf("%s: TuneResult differs", tc.name)
				}
			}
		})
	}
}

// TestTraceDoesNotPerturbTuning: a traced tune must produce exactly the
// TuneResult an untraced one does — tracing is an observer, not a
// participant.
func TestTraceDoesNotPerturbTuning(t *testing.T) {
	_, traced := tracedTune(t, nil, 4, false)
	plain, err := faultTune(t, nil, 4, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(traced, plain) {
		t.Errorf("tracing changed the result:\ntraced: %+v\nplain:  %+v", traced, plain)
	}
}

// TestTraceMatchesLedger cross-checks the event stream against the
// TuneResult counters it narrates.
func TestTraceMatchesLedger(t *testing.T) {
	raw, res := tracedTune(t, fault.Uniform(0.10, 42), 4, false)
	events, err := trace.ReadEvents(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var starts, ends, rounds, misses, shared, quarantines int
	var rateInv, rateCycles int64
	var rates int
	for _, ev := range events {
		switch ev.Kind {
		case trace.KindTuneStart:
			starts++
		case trace.KindTuneEnd:
			ends++
			if ev.Cycles != res.TuningCycles || ev.Invocations != res.Invocations {
				t.Errorf("tune_end ledger (%d cy, %d inv) != result (%d cy, %d inv)",
					ev.Cycles, ev.Invocations, res.TuningCycles, res.Invocations)
			}
			if ev.Counts["rounds"] != int64(res.Rounds) ||
				ev.Counts["cache_misses"] != res.CacheMisses ||
				ev.Counts["measure_retries"] != int64(res.MeasureRetries) {
				t.Errorf("tune_end counts %v inconsistent with %+v", ev.Counts, res)
			}
		case trace.KindRoundStart:
			rounds++
		case trace.KindRate:
			rates++
			rateInv += ev.Invocations
			rateCycles += ev.JobCycles
		case trace.KindCache:
			switch ev.Outcome {
			case "miss":
				misses++
			case "shared":
				shared++
			case "hit":
			default:
				t.Errorf("cache event with outcome %q", ev.Outcome)
			}
		case trace.KindQuarantine:
			quarantines++
		}
	}
	if starts != 1 || ends != 1 {
		t.Fatalf("%d tune_start / %d tune_end events, want 1/1", starts, ends)
	}
	if rounds != res.Rounds {
		t.Errorf("%d round_start events, result says %d rounds", rounds, res.Rounds)
	}
	// Every distinct flag-set resolution is exactly one fresh cache event.
	if int64(misses+shared) != res.CacheMisses {
		t.Errorf("%d fresh cache events, result says %d misses", misses+shared, res.CacheMisses)
	}
	if shared != res.SharedCode {
		t.Errorf("%d shared cache events, result says %d", shared, res.SharedCode)
	}
	if quarantines != len(res.Quarantined) {
		t.Errorf("%d quarantine events, result says %d", quarantines, len(res.Quarantined))
	}
	// account() and emitRate pair one-to-one, so the job ledgers must sum
	// to the result's totals (rates == VersionsRated likewise).
	if rateInv != res.Invocations {
		t.Errorf("rate events sum to %d invocations, result says %d", rateInv, res.Invocations)
	}
	if rates != res.VersionsRated {
		t.Errorf("%d rate events, result says %d versions rated", rates, res.VersionsRated)
	}
	if rateCycles <= 0 || rateCycles > res.TuningCycles {
		t.Errorf("rate cycles %d outside (0, %d]", rateCycles, res.TuningCycles)
	}
	// The analyzer must reconstruct a coherent breakdown from the stream.
	a := trace.Analyze(events)
	if len(a.Breakdowns) != 1 {
		t.Fatalf("analyzer found %d tunes", len(a.Breakdowns))
	}
	bd := a.Breakdowns[0]
	if bd.Total != res.TuningCycles || bd.Rating <= 0 || bd.Overhead < 0 {
		t.Errorf("incoherent breakdown: %+v", bd)
	}
	if bd.Rounds != res.Rounds || bd.Misses+bd.Shared != int(res.CacheMisses) {
		t.Errorf("breakdown counts inconsistent: %+v vs %+v", bd, res)
	}
}

// TestTuneResultFillMetrics: counters land under the core. prefix and
// accumulate across tunes.
func TestTuneResultFillMetrics(t *testing.T) {
	_, res := tracedTune(t, nil, 1, false)
	m := trace.NewMetrics()
	res.FillMetrics(m)
	res.FillMetrics(m)
	if got := m.Get("core.tunes"); got != 2 {
		t.Errorf("core.tunes = %d, want 2", got)
	}
	if got := m.Get("core.tuning_cycles"); got != 2*res.TuningCycles {
		t.Errorf("core.tuning_cycles = %d, want %d", got, 2*res.TuningCycles)
	}
	res.FillMetrics(nil) // must not panic
}
