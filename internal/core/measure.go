package core

import (
	"fmt"
	"math/rand"

	"peak/internal/bench"
	"peak/internal/machine"
	"peak/internal/opt"
	"peak/internal/sim"
)

// MeasurePerformance runs the benchmark's tuning section over the dataset
// with the given flags and returns the deterministic total TS cycles plus
// the whole-program total (TS + non-TS). The tuned code is the plain
// section, "absent of any instrumentation code" (§4.2).
func MeasurePerformance(b *bench.Benchmark, ds *bench.Dataset, m *machine.Machine,
	flags opt.FlagSet) (tsCycles, programCycles int64, err error) {
	v, err := opt.Compile(b.Prog, b.TS, flags, m)
	if err != nil {
		return 0, 0, fmt.Errorf("measure %s: %w", b.Name, err)
	}
	rng := rand.New(rand.NewSource(b.Seed(31)))
	mem := sim.NewMemory(b.Prog)
	if ds.Setup != nil {
		ds.Setup(mem, rng)
	}
	runner := sim.NewRunner(m, mem, b.Seed(37))
	for i := 0; i < ds.NumInvocations; i++ {
		args := ds.Args(i, mem, rng)
		_, st, err := runner.Run(v, args)
		if err != nil {
			return 0, 0, fmt.Errorf("measure %s [%s] invocation %d: %w", b.Name, flags, i, err)
		}
		tsCycles += st.Cycles
	}
	return tsCycles, tsCycles + b.NonTSCycles, nil
}

// Improvement returns the relative performance improvement of tuned over
// base given their measured times (positive = tuned faster), the paper's
// "performance improvement over the version compiled under O3".
func Improvement(baseCycles, tunedCycles int64) float64 {
	if tunedCycles == 0 {
		return 0
	}
	return float64(baseCycles)/float64(tunedCycles) - 1
}
