package core

import (
	"fmt"
	"math/rand"

	"peak/internal/bench"
	"peak/internal/machine"
	"peak/internal/opt"
	"peak/internal/sim"
	"peak/internal/vcache"
)

// MeasurePerformance runs the benchmark's tuning section over the dataset
// with the given flags and returns the deterministic total TS cycles plus
// the whole-program total (TS + non-TS). The tuned code is the plain
// section, "absent of any instrumentation code" (§4.2).
func MeasurePerformance(b *bench.Benchmark, ds *bench.Dataset, m *machine.Machine,
	flags opt.FlagSet) (tsCycles, programCycles int64, err error) {
	return MeasurePerformanceCached(b, ds, m, flags, nil)
}

// MeasurePerformanceCached is MeasurePerformance resolving the compilation
// through a shared compile cache. The measured cycles are identical with or
// without a cache (compilation is deterministic and cached versions are
// frozen); the cache only removes repeat compile work when experiment
// drivers measure the same (benchmark, flags, machine) combination more
// than once. A nil cache compiles directly.
func MeasurePerformanceCached(b *bench.Benchmark, ds *bench.Dataset, m *machine.Machine,
	flags opt.FlagSet, cache *vcache.Cache) (tsCycles, programCycles int64, err error) {
	v, _, err := resolveMeasureVersion(b, m, flags, cache)
	if err != nil {
		return 0, 0, fmt.Errorf("measure %s: %w", b.Name, err)
	}
	return runMeasurement(b, ds, m, flags, v)
}

// resolveMeasureVersion compiles the deployment version of the TS under
// flags, through the cache when one is given, and returns it with its full
// content fingerprint (the persistent store's measurement memo key).
func resolveMeasureVersion(b *bench.Benchmark, m *machine.Machine, flags opt.FlagSet,
	cache *vcache.Cache) (*sim.Version, vcache.FP128, error) {
	if cache != nil {
		r, err := cache.Resolve(
			vcache.Key{Prog: vcache.ProgramKey(b.Prog), Fn: b.TS.Name, Flags: flags, Machine: m.Name},
			func() (*sim.Version, error) { return opt.Compile(b.Prog, b.TS, flags, m) })
		if err != nil {
			return nil, vcache.FP128{}, err
		}
		return r.V, r.FP, nil
	}
	v, err := opt.Compile(b.Prog, b.TS, flags, m)
	if err != nil {
		return nil, vcache.FP128{}, err
	}
	v.Freeze()
	return v, vcache.Fingerprint128(v), nil
}

// runMeasurement executes the resolved version over the dataset and sums
// the deterministic TS cycles (the simulation half of
// MeasurePerformanceCached).
func runMeasurement(b *bench.Benchmark, ds *bench.Dataset, m *machine.Machine,
	flags opt.FlagSet, v *sim.Version) (tsCycles, programCycles int64, err error) {
	rng := rand.New(rand.NewSource(b.Seed(31)))
	mem := sim.NewMemory(b.Prog)
	if ds.Setup != nil {
		ds.Setup(mem, rng)
	}
	runner := sim.NewRunner(m, mem, b.Seed(37))
	for i := 0; i < ds.NumInvocations; i++ {
		args := ds.Args(i, mem, rng)
		_, st, err := runner.Run(v, args)
		if err != nil {
			return 0, 0, fmt.Errorf("measure %s [%s] invocation %d: %w", b.Name, flags, i, err)
		}
		tsCycles += st.Cycles
	}
	return tsCycles, tsCycles + b.NonTSCycles, nil
}

// Improvement returns the relative performance improvement of tuned over
// base given their measured times (positive = tuned faster), the paper's
// "performance improvement over the version compiled under O3".
func Improvement(baseCycles, tunedCycles int64) float64 {
	if tunedCycles == 0 {
		return 0
	}
	return float64(baseCycles)/float64(tunedCycles) - 1
}
