package core

import (
	"math"
	"math/rand"
	"testing"

	"peak/internal/analysis"
	"peak/internal/bench"
	"peak/internal/ir"
	"peak/internal/irbuild"
	"peak/internal/machine"
	"peak/internal/opt"
	"peak/internal/profiling"
	"peak/internal/sim"
)

func TestMethodNames(t *testing.T) {
	for _, m := range []Method{MethodCBR, MethodMBR, MethodRBR, MethodAVG, MethodWHL} {
		got, ok := ParseMethod(m.String())
		if !ok || got != m {
			t.Errorf("ParseMethod(%s) = %v, %v", m, got, ok)
		}
	}
	if _, ok := ParseMethod("XYZ"); ok {
		t.Error("ParseMethod accepted junk")
	}
}

func TestRatingComparison(t *testing.T) {
	// Time-like methods: lower EVAL is better.
	a := Rating{Method: MethodCBR, EVAL: 90}
	b := Rating{Method: MethodCBR, EVAL: 100}
	if !a.Better(b) || b.Better(a) {
		t.Error("CBR: lower EVAL must win")
	}
	if imp := a.ImprovementOver(99); math.Abs(imp-0.1) > 1e-9 {
		t.Errorf("ImprovementOver = %v, want 0.1", imp)
	}
	// RBR: higher ratio is better; the rating itself is the improvement.
	r1 := Rating{Method: MethodRBR, EVAL: 1.2}
	r2 := Rating{Method: MethodRBR, EVAL: 0.9}
	if !r1.Better(r2) || r2.Better(r1) {
		t.Error("RBR: higher EVAL must win")
	}
	if imp := r1.ImprovementOver(math.NaN()); math.Abs(imp-0.2) > 1e-9 {
		t.Errorf("RBR ImprovementOver = %v, want 0.2", imp)
	}
	if imp := (Rating{Method: MethodAVG, EVAL: 0}).ImprovementOver(50); imp != 0 {
		t.Errorf("zero EVAL improvement = %v, want 0", imp)
	}
}

// synthProfile builds profiles by hand to exercise consultant paths.
func synthProfile(mutate func(p *profiling.Profile)) *profiling.Profile {
	p := &profiling.Profile{
		Invocations:        1000,
		MeanCycles:         500,
		ContextSet:         &analysis.ContextSet{Applicable: true},
		ContextArraysConst: true,
		Contexts: map[string]*profiling.ContextStat{
			"a": {Key: "a", Count: 800, TotalCycles: 400000},
			"b": {Key: "b", Count: 200, TotalCycles: 100000},
		},
		DominantContext: "a",
		Model: &analysis.ComponentModel{
			Components: []analysis.Component{
				{Rep: 1, AvgCount: 50},
				{Rep: 0, Constant: true, AvgCount: 1},
			},
			KeepCounters: map[int]bool{0: true, 1: true},
		},
		ModelVar: 0.001,
		Effects:  &analysis.MemEffects{Reads: map[string]bool{}, Writes: map[string]bool{}},
	}
	if mutate != nil {
		mutate(p)
	}
	return p
}

func TestConsultantOrderAndReasons(t *testing.T) {
	cfg := DefaultConfig()

	app := Consult(synthProfile(nil), &cfg)
	if got := app.String(); got != "CBR,MBR,RBR" {
		t.Errorf("fully applicable order = %s, want CBR,MBR,RBR", got)
	}
	if app.Chosen() != MethodCBR {
		t.Errorf("chosen = %s, want CBR", app.Chosen())
	}

	app = Consult(synthProfile(func(p *profiling.Profile) {
		p.ContextSet.Applicable = false
		p.ContextSet.Reason = "non-scalar"
	}), &cfg)
	if app.Has(MethodCBR) || app.CBRReason == "" {
		t.Error("non-scalar context vars must reject CBR with a reason")
	}
	if app.Chosen() != MethodMBR {
		t.Errorf("chosen = %s, want MBR", app.Chosen())
	}

	app = Consult(synthProfile(func(p *profiling.Profile) {
		p.ContextArraysConst = false
		p.ContextSet.NeedConstArrays = []string{"tab"}
	}), &cfg)
	if app.Has(MethodCBR) {
		t.Error("mutated control arrays must reject CBR")
	}

	app = Consult(synthProfile(func(p *profiling.Profile) {
		for i := 0; i < cfg.MaxContexts+5; i++ {
			k := string(rune('c' + i))
			p.Contexts[k] = &profiling.ContextStat{Key: k, Count: 1, TotalCycles: 10}
		}
	}), &cfg)
	if app.Has(MethodCBR) {
		t.Error("too many contexts must reject CBR (the MGRID case)")
	}

	app = Consult(synthProfile(func(p *profiling.Profile) {
		p.ModelVar = 0.5
	}), &cfg)
	if app.Has(MethodMBR) {
		t.Error("bad model fit must reject MBR (the integer-code case)")
	}

	app = Consult(synthProfile(func(p *profiling.Profile) {
		var comps []analysis.Component
		for i := 0; i < cfg.MaxComponents+2; i++ {
			comps = append(comps, analysis.Component{Rep: i})
		}
		p.Model.Components = comps
	}), &cfg)
	if app.Has(MethodMBR) {
		t.Error("too many components must reject MBR")
	}

	// Constant-only model stays applicable (degenerates to averaging).
	app = Consult(synthProfile(func(p *profiling.Profile) {
		p.Model.Components = []analysis.Component{{Rep: 0, Constant: true, AvgCount: 1}}
		p.ModelVar = 1.0
	}), &cfg)
	if !app.Has(MethodMBR) {
		t.Error("constant-only model must keep MBR applicable")
	}

	// RBR is always last-resort applicable.
	app = Consult(synthProfile(func(p *profiling.Profile) {
		p.ContextSet.Applicable = false
		p.Model = nil
	}), &cfg)
	if app.Chosen() != MethodRBR || len(app.Methods) != 1 {
		t.Errorf("methods = %s, want RBR only", app)
	}
}

func TestMeanSamplesOutlierRobustness(t *testing.T) {
	cfg := DefaultConfig()
	var ms meanSamples
	for i := 0; i < cfg.Window; i++ {
		ms.add(100 + float64(i%5))
	}
	ms.add(100000) // an interrupt spike
	r := ms.evalVar(&cfg, MethodAVG)
	if r.Outliers != 1 {
		t.Errorf("outliers = %d, want 1", r.Outliers)
	}
	if r.EVAL > 110 {
		t.Errorf("EVAL = %v, spike not rejected", r.EVAL)
	}
}

// tinyBenchmark is a fast, well-behaved workload for engine tests: one
// context, regular control flow.
func tinyBenchmark() *bench.Benchmark {
	prog := ir.NewProgram()
	prog.AddArray("tv", ir.F64, 128)
	b := irbuild.NewFunc("tiny")
	b.ScalarParam("n", ir.I64).Local("s", ir.F64)
	fn := b.Body(
		b.For("i", b.I(0), b.V("n"), 1,
			b.Set(b.V("s"), b.FAdd(b.V("s"),
				b.FMul(b.At("tv", b.V("i")), b.At("tv", b.V("i"))))),
			b.Set(b.At("tv", b.V("i")), b.FMul(b.V("s"), b.F(0.5))),
		),
		b.Ret(b.V("s")),
	)
	prog.AddFunc(fn)
	mkDS := func(name string, inv int) *bench.Dataset {
		return &bench.Dataset{
			Name: name, NumInvocations: inv,
			Setup: func(mem *sim.Memory, rng *rand.Rand) {
				d := mem.Get("tv").Data
				for i := range d {
					d[i] = rng.Float64()
				}
			},
			Args: func(i int, mem *sim.Memory, rng *rand.Rand) []float64 {
				return []float64{64}
			},
		}
	}
	return &bench.Benchmark{
		Name: "TINY", TSName: "tiny", Class: bench.FP,
		Prog: prog, TS: b.Fn(),
		Train: mkDS("train", 300), Ref: mkDS("ref", 600),
		NonTSCycles: 100_000, PaperInvocations: "(test)",
	}
}

func TestTunerEndToEnd(t *testing.T) {
	b := tinyBenchmark()
	m := machine.SPARCII()
	p, err := profiling.Run(b, b.Train, m)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	tu := &Tuner{Bench: b, Mach: m, Dataset: b.Train, Cfg: cfg, Profile: p}
	res, err := tu.Tune()
	if err != nil {
		t.Fatal(err)
	}
	// Every flag must have been considered each round — rated, or skipped
	// because its code fingerprinted identically to the base or an
	// already-rated candidate (the dedup layer).
	if res.TuningCycles <= 0 || res.ProgramRuns < 1 ||
		res.VersionsRated+res.DedupSkips < opt.NumFlags {
		t.Errorf("suspicious ledger: %+v", res)
	}
	if res.CacheLookups <= 0 || res.CacheMisses <= 0 ||
		res.CacheHits != res.CacheLookups-res.CacheMisses {
		t.Errorf("inconsistent cache ledger: %+v", res)
	}
	// The tuned version must not be worse than -O3 on the tuning dataset.
	base, _, err := MeasurePerformance(b, b.Train, m, opt.O3())
	if err != nil {
		t.Fatal(err)
	}
	tuned, _, err := MeasurePerformance(b, b.Train, m, res.Best)
	if err != nil {
		t.Fatal(err)
	}
	if float64(tuned) > float64(base)*1.01 {
		t.Errorf("tuned (%d) worse than -O3 (%d)", tuned, base)
	}
}

func TestWHLConsumesOneRunPerVersion(t *testing.T) {
	b := tinyBenchmark()
	m := machine.SPARCII()
	p, err := profiling.Run(b, b.Train, m)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	forced := MethodWHL
	tu := &Tuner{Bench: b, Mach: m, Dataset: b.Train, Cfg: cfg, Profile: p, Force: &forced}
	res, err := tu.Tune()
	if err != nil {
		t.Fatal(err)
	}
	if res.ProgramRuns != res.VersionsRated {
		t.Errorf("WHL: %d runs for %d versions, want 1:1", res.ProgramRuns, res.VersionsRated)
	}
	if res.MethodUsed != MethodWHL {
		t.Errorf("method = %s, want WHL", res.MethodUsed)
	}
}

func TestTuningTimeOrdering(t *testing.T) {
	// The paper's central claim: the rating methods tune in far less time
	// than WHL on the same search (Figure 7 c–d).
	b := tinyBenchmark()
	m := machine.SPARCII()
	p, err := profiling.Run(b, b.Train, m)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	times := map[Method]int64{}
	for _, method := range []Method{MethodCBR, MethodWHL} {
		forced := method
		tu := &Tuner{Bench: b, Mach: m, Dataset: b.Train, Cfg: cfg, Profile: p, Force: &forced}
		res, err := tu.Tune()
		if err != nil {
			t.Fatal(err)
		}
		times[method] = res.TuningCycles
	}
	if times[MethodCBR]*2 >= times[MethodWHL] {
		t.Errorf("CBR tuning time %d not well below WHL %d", times[MethodCBR], times[MethodWHL])
	}
}

// noisyBenchmark has a single context but strongly data-dependent timing,
// so CBR cannot converge and the engine must fall back to the next method
// (paper §3: "if the system cannot achieve enough accuracy ... it switches
// to the next applicable rating method").
func noisyBenchmark() *bench.Benchmark {
	prog := ir.NewProgram()
	prog.AddArray("nd", ir.F64, 256)
	b := irbuild.NewFunc("noisy")
	b.ScalarParam("n", ir.I64).Local("s", ir.F64)
	fn := b.Body(
		b.For("i", b.I(0), b.V("n"), 1,
			b.If(b.FGt(b.At("nd", b.V("i")), b.F(0)),
				// Expensive path: taken for a data-dependent subset.
				b.Set(b.V("s"), b.FAdd(b.V("s"),
					b.Call("sqrt", b.Call("abs", b.At("nd", b.V("i")))))),
			),
		),
		b.Ret(b.V("s")),
	)
	prog.AddFunc(fn)
	mkDS := func(name string, inv int) *bench.Dataset {
		return &bench.Dataset{
			Name: name, NumInvocations: inv,
			Setup: func(mem *sim.Memory, rng *rand.Rand) {},
			Args: func(i int, mem *sim.Memory, rng *rand.Rand) []float64 {
				d := mem.Get("nd").Data
				// Rewrite everything: the taken fraction swings wildly.
				bias := rng.Float64()*2 - 1
				for k := range d {
					d[k] = rng.NormFloat64() + bias
				}
				return []float64{192}
			},
		}
	}
	return &bench.Benchmark{
		Name: "NOISY", TSName: "noisy", Class: bench.FP,
		Prog: prog, TS: b.Fn(),
		Train: mkDS("train", 2000), Ref: mkDS("ref", 2000),
		NonTSCycles: 100_000, PaperInvocations: "(test)",
	}
}

func TestMethodSwitchingOnNonConvergence(t *testing.T) {
	b := noisyBenchmark()
	m := machine.SPARCII()
	p, err := profiling.Run(b, b.Train, m)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	app := Consult(p, &cfg)
	if app.Chosen() != MethodCBR {
		t.Skipf("consultant chose %s; switching path needs CBR first (%s / %s)",
			app.Chosen(), app.CBRReason, app.MBRReason)
	}
	tu := &Tuner{Bench: b, Mach: m, Dataset: b.Train, Cfg: cfg, Profile: p}
	res, err := tu.Tune()
	if err != nil {
		t.Fatal(err)
	}
	if res.MethodSwitches == 0 || res.MethodUsed == MethodCBR {
		t.Errorf("expected a method switch away from CBR, got used=%s switches=%d",
			res.MethodUsed, res.MethodSwitches)
	}
}

func TestMeasurePerformanceDeterministic(t *testing.T) {
	b := tinyBenchmark()
	m := machine.PentiumIV()
	a1, p1, err := MeasurePerformance(b, b.Train, m, opt.O3())
	if err != nil {
		t.Fatal(err)
	}
	a2, p2, err := MeasurePerformance(b, b.Train, m, opt.O3())
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 || p1 != p2 {
		t.Error("MeasurePerformance must be deterministic")
	}
	if p1 != a1+b.NonTSCycles {
		t.Errorf("program cycles %d != TS %d + NonTS %d", p1, a1, b.NonTSCycles)
	}
	if Improvement(200, 100) != 1.0 || Improvement(100, 0) != 0 {
		t.Error("Improvement arithmetic broken")
	}
}

func TestConsistencySigmaShrinksWithWindow(t *testing.T) {
	b := tinyBenchmark()
	m := machine.SPARCII()
	p, err := profiling.Run(b, b.Train, m)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	rows, err := Consistency(b, m, p, MethodRBR, []int{5, 20}, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rows))
	}
	w5, w20 := rows[0].Windows[5], rows[0].Windows[20]
	if w5.N == 0 || w20.N == 0 {
		t.Fatal("no rating samples collected")
	}
	if w20.Sigma >= w5.Sigma {
		t.Errorf("sigma did not shrink with window: w5=%v w20=%v", w5.Sigma, w20.Sigma)
	}
	if math.Abs(w20.Mu) > 0.02 {
		t.Errorf("RBR mean error = %v, want near 0", w20.Mu)
	}
}

// cacheSensitiveBenchmark walks a working set large enough that the first
// execution of an invocation warms the cache for the second — the bias the
// improved RBR method exists to remove (paper §2.4.2).
func cacheSensitiveBenchmark() *bench.Benchmark {
	prog := ir.NewProgram()
	prog.AddArray("cs", ir.F64, 4096)
	b := irbuild.NewFunc("csb")
	b.ScalarParam("off", ir.I64).Local("s", ir.F64)
	fn := b.Body(
		b.For("i", b.I(0), b.I(512), 1,
			b.Set(b.V("s"), b.FAdd(b.V("s"), b.At("cs", b.Add(b.V("off"), b.V("i"))))),
		),
		b.Ret(b.V("s")),
	)
	prog.AddFunc(fn)
	mkDS := func(name string, inv int) *bench.Dataset {
		return &bench.Dataset{
			Name: name, NumInvocations: inv,
			Setup: func(mem *sim.Memory, rng *rand.Rand) {
				d := mem.Get("cs").Data
				for i := range d {
					d[i] = rng.Float64()
				}
			},
			Args: func(i int, mem *sim.Memory, rng *rand.Rand) []float64 {
				// Stride through memory so every invocation starts cold.
				return []float64{float64((i * 512) % 3584)}
			},
		}
	}
	return &bench.Benchmark{
		Name: "CACHESENS", TSName: "csb", Class: bench.FP,
		Prog: prog, TS: b.Fn(),
		Train: mkDS("train", 600), Ref: mkDS("ref", 600),
		NonTSCycles: 10_000, PaperInvocations: "(test)",
	}
}

// TestImprovedRBRRemovesCacheBias is the §2.4.2 ablation: under the basic
// Figure-3 method the second timed execution runs against a warm cache, so
// the rating systematically exceeds 1; the improved Figure-4 method
// (preconditioning + order swapping) removes the bias.
func TestImprovedRBRRemovesCacheBias(t *testing.T) {
	b := cacheSensitiveBenchmark()
	m := machine.PentiumIV()
	p, err := profiling.Run(b, b.Train, m)
	if err != nil {
		t.Fatal(err)
	}

	bias := func(basic bool) float64 {
		cfg := DefaultConfig()
		cfg.BasicRBR = basic
		rows, err := Consistency(b, m, p, MethodRBR, []int{40}, &cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rows[0].Windows[40].Mu
	}
	basicMu := bias(true)
	improvedMu := bias(false)
	if math.Abs(improvedMu) >= math.Abs(basicMu) {
		t.Errorf("improved RBR bias %.4f not smaller than basic %.4f", improvedMu, basicMu)
	}
	if math.Abs(basicMu) < 0.01 {
		t.Errorf("basic RBR bias %.4f unexpectedly small; the ablation workload lost its point", basicMu)
	}
	if math.Abs(improvedMu) > 0.01 {
		t.Errorf("improved RBR bias %.4f still large", improvedMu)
	}
}
