package core

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"peak/internal/fault"
	"peak/internal/machine"
	"peak/internal/opt"
	"peak/internal/profiling"
	"peak/internal/sched"
)

// faultTune runs one tune of the tiny benchmark under plan, with the given
// pool/cache/journal configuration, and returns the result.
func faultTune(t *testing.T, plan *fault.Plan, workers int, noCache bool, j *fault.Journal, mutate ...func(*Config)) (*TuneResult, error) {
	t.Helper()
	b := tinyBenchmark()
	m := machine.SPARCII()
	p, err := profiling.Run(b, b.Train, m)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Faults = plan
	cfg.NoCompileCache = noCache
	for _, f := range mutate {
		f(&cfg)
	}
	tu := &Tuner{Bench: b, Mach: m, Dataset: b.Train, Cfg: cfg, Profile: p,
		Pool: sched.New(workers), Journal: j}
	return tu.Tune()
}

// TestFaultDeterminism is the tentpole contract: same seed + same fault
// plan ⇒ byte-identical TuneResult at any worker count, with the compile
// cache on or off.
func TestFaultDeterminism(t *testing.T) {
	plan := fault.Uniform(0.10, 42)
	ref, err := faultTune(t, plan, 1, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ref.CompileRetries+ref.MeasureRetries+ref.JobRetries == 0 {
		t.Error("10% fault rate injected nothing — test exercises no recovery path")
	}
	for _, tc := range []struct {
		name    string
		workers int
		noCache bool
	}{
		{"workers=8/cache", 8, false},
		{"workers=1/nocache", 1, true},
		{"workers=8/nocache", 8, true},
	} {
		got, err := faultTune(t, plan, tc.workers, tc.noCache, nil)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("%s: result differs from workers=1/cache:\n got %+v\nwant %+v", tc.name, got, ref)
		}
	}
}

// TestFaultFreeConfigUnchanged: a nil plan and an all-zero plan are both
// "off" — the recovery machinery must not perturb fault-free results.
func TestFaultFreeConfigUnchanged(t *testing.T) {
	ref, err := faultTune(t, nil, 1, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := faultTune(t, &fault.Plan{Seed: 999}, 1, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Errorf("zero-rate plan changed the result:\n got %+v\nwant %+v", got, ref)
	}
}

// TestQuarantineCatchesMiscompiles: with an aggressive miscompile rate,
// verification must quarantine candidates (and tuning must still finish,
// excluding them from the search).
func TestQuarantineCatchesMiscompiles(t *testing.T) {
	plan := &fault.Plan{Seed: 7, MiscompileRate: 0.5}
	res, err := faultTune(t, plan, 4, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantined) == 0 {
		t.Fatal("50% miscompile rate produced no quarantined flags")
	}
	seen := map[opt.Flag]bool{}
	for _, f := range res.Quarantined {
		if seen[f] {
			t.Errorf("flag %s quarantined twice", f)
		}
		seen[f] = true
	}
	// A quarantined flag's removal was never adopted: it stays enabled in
	// the tuned flag set and is never listed as removed.
	for _, f := range res.Removed {
		if seen[f] {
			t.Errorf("flag %s both quarantined and removed", f)
		}
	}
	if res.VerifyInvocations == 0 {
		t.Error("no verification invocations recorded")
	}
}

// TestRetryExhaustion: permanent faults must surface as errors wrapping
// fault.ErrRetriesExhausted, not hang or panic the tuner.
func TestRetryExhaustion(t *testing.T) {
	for _, tc := range []struct {
		name string
		plan *fault.Plan
	}{
		{"compile", &fault.Plan{Seed: 1, CompileFailRate: 1}},
		{"hang", &fault.Plan{Seed: 1, HangRate: 1}},
		{"panic", &fault.Plan{Seed: 1, PanicRate: 1}},
	} {
		_, err := faultTune(t, tc.plan, 2, false, nil)
		if !errors.Is(err, fault.ErrRetriesExhausted) {
			t.Errorf("%s: err = %v, want ErrRetriesExhausted", tc.name, err)
		}
	}
}

// TestResumeIdentical simulates a crash after each completed round: the
// journal is cut to its first k records and a fresh tuner resumes from it.
// Every resume — including from the final, stopped checkpoint — must
// reproduce the uninterrupted result byte-for-byte.
func TestResumeIdentical(t *testing.T) {
	plan := fault.Uniform(0.05, 2004)
	// A negative improvement threshold forces a removal every round, so the
	// search runs all 8 rounds and leaves one checkpoint per round to cut at.
	multiRound := func(c *Config) { c.ImprovementThreshold = -1 }
	ref, err := faultTune(t, plan, 2, false, nil, multiRound)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	full := filepath.Join(dir, "full.jsonl")
	j, err := fault.NewJournal(full)
	if err != nil {
		t.Fatal(err)
	}
	got, err := faultTune(t, plan, 2, false, j, multiRound)
	j.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Fatalf("journaling changed the result:\n got %+v\nwant %+v", got, ref)
	}

	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("journal has %d records, need ≥2 to test resume", len(lines))
	}
	for k := 1; k <= len(lines); k++ {
		cut := filepath.Join(dir, "cut.jsonl")
		if err := os.WriteFile(cut, []byte(strings.Join(lines[:k], "")), 0o644); err != nil {
			t.Fatal(err)
		}
		rj, err := fault.OpenJournal(cut)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		res, err := faultTune(t, plan, 2, false, rj, multiRound)
		rj.Close()
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if !reflect.DeepEqual(res, ref) {
			t.Errorf("k=%d: resumed result differs:\n got %+v\nwant %+v", k, res, ref)
		}
	}

	// A torn final record (the crash hit mid-write) must also resume
	// cleanly: OpenJournal drops the partial line.
	torn := filepath.Join(dir, "torn.jsonl")
	if err := os.WriteFile(torn, []byte(strings.Join(lines[:2], "")+lines[2][:len(lines[2])/2]), 0o644); err != nil {
		t.Fatal(err)
	}
	tj, err := fault.OpenJournal(torn)
	if err != nil {
		t.Fatal(err)
	}
	res, err := faultTune(t, plan, 2, false, tj, multiRound)
	tj.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, ref) {
		t.Errorf("torn-record resume differs:\n got %+v\nwant %+v", res, ref)
	}
}

// TestAdaptiveQuarantine: the online tuner must also catch miscompiles
// before any production invocation runs them, and stay deterministic.
func TestAdaptiveQuarantine(t *testing.T) {
	b := tinyBenchmark()
	m := machine.SPARCII()
	cfg := DefaultConfig()
	cfg.Window = 10
	cfg.Faults = &fault.Plan{Seed: 11, MiscompileRate: 0.5}
	at, err := NewAdaptiveTuner(b, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := at.Run(b.Ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantined) == 0 {
		t.Fatal("adaptive: 50% miscompile rate produced no quarantined flags")
	}
	for _, fs := range res.Winners {
		for _, q := range res.Quarantined {
			if fs == q {
				t.Errorf("adaptive: quarantined flag set %s adopted as winner", q)
			}
		}
	}
	again, err := at.Run(b.Ref)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, res) {
		t.Errorf("adaptive faulted run not deterministic:\n got %+v\nwant %+v", again, res)
	}
}
