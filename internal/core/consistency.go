package core

import (
	"fmt"
	"math/rand"
	"sort"

	"peak/internal/analysis"
	"peak/internal/bench"
	"peak/internal/machine"
	"peak/internal/opt"
	"peak/internal/profiling"
	"peak/internal/regress"
	"peak/internal/sim"
	"peak/internal/stats"
)

// WindowStat is one (window size → rating-error statistics) entry of
// Table 1: the Mean and Standard Deviation of the rating errors X_i
// (Eqs. 8–10), and the number of sampled ratings n.
type WindowStat struct {
	Mu, Sigma float64
	N         int
}

// ConsistencyRow is one Table-1 row: a tuning section (optionally one of
// its contexts under CBR) with its rating-error statistics per window size.
type ConsistencyRow struct {
	Benchmark string
	Section   string
	Method    Method
	// Context labels CBR rows when a section has several contexts
	// ("Context 1", ...); empty otherwise.
	Context string
	// Invocations is the dataset's invocation count (the paper's column 4,
	// scaled per DESIGN.md §6).
	Invocations int
	Windows     map[int]WindowStat
}

// Consistency reproduces the Table-1 experiment for one benchmark: using
// the training dataset and a single experimental version compiled under
// "-O3" (identical to the base version), it uniformly samples ratings
// throughout the execution and reports the mean and standard deviation of
// the rating errors for each window size (§5.1).
func Consistency(b *bench.Benchmark, m *machine.Machine, p *profiling.Profile,
	method Method, windows []int, cfg *Config) ([]ConsistencyRow, error) {
	instr := analysis.Instrument(b.TS)
	keep := map[int]bool{}
	if p.Model != nil {
		keep = p.Model.KeepCounters
	}
	ts := analysis.StripCounters(instr, keep)
	prog := b.Prog.Clone()
	prog.AddFunc(ts)

	v, err := opt.Compile(prog, ts, opt.O3(), m)
	if err != nil {
		return nil, fmt.Errorf("consistency %s: %w", b.Name, err)
	}
	// The experimental version is compiled under the same "-O3" as the
	// base (§5.1) but is a distinct code copy, with its own branch
	// predictor and icache state — as the dynamically linked versions in
	// PEAK/ADAPT are.
	v2, err := opt.Compile(prog, ts, opt.O3(), m)
	if err != nil {
		return nil, fmt.Errorf("consistency %s: %w", b.Name, err)
	}

	ds := b.Train
	rng := rand.New(rand.NewSource(cfg.Seed ^ b.Seed(41)))
	mem := sim.NewMemory(prog)
	if ds.Setup != nil {
		ds.Setup(mem, rng)
	}
	runner := sim.NewRunner(m, mem, cfg.Seed^b.Seed(43))
	clock := sim.NewClockWith(NoiseModelFor(cfg, m), cfg.Seed^b.Seed(47))

	// Collect the per-invocation stream once; windows are formed offline.
	type raw struct {
		t      float64
		key    string
		counts []float64
		ratio  float64
	}
	stream := make([]raw, 0, ds.NumInvocations)

	modInput := p.Effects.ModifiedInput()
	if cfg.BasicRBR {
		// Basic Figure-3 method: save the whole input set.
		modInput = nil
		for arr := range p.Effects.Reads {
			modInput = append(modInput, arr)
		}
		sort.Strings(modInput)
	}
	flip := false
	for i := 0; i < ds.NumInvocations; i++ {
		args := ds.Args(i, mem, rng)
		var r raw
		if method == MethodCBR {
			r.key = p.CBRKeyFor(b, args, mem)
		}
		if method == MethodRBR {
			// RBR with the experimental version equal to the base: the
			// ideal rating is exactly 1. The improved method (Figure 4)
			// swaps the two code copies each invocation and preconditions
			// the cache; the basic method (Figure 3) does neither.
			va, vb := v, v2
			if !cfg.BasicRBR && flip {
				va, vb = vb, va
			}
			flip = !flip
			snap := mem.Snapshot(modInput)
			if !cfg.BasicRBR {
				if _, _, err := runner.Run(va, args); err != nil { // precondition
					return nil, fmt.Errorf("consistency %s: %w", b.Name, err)
				}
				mem.Restore(snap)
			}
			_, s1, err := runner.Run(va, args)
			if err != nil {
				return nil, fmt.Errorf("consistency %s: %w", b.Name, err)
			}
			mem.Restore(snap)
			_, s2, err := runner.Run(vb, args)
			if err != nil {
				return nil, fmt.Errorf("consistency %s: %w", b.Name, err)
			}
			t1, t2 := clock.Measure(s1.Cycles), clock.Measure(s2.Cycles)
			// R = T(base copy) / T(experimental copy), independent of the
			// execution order.
			if va != v {
				t1, t2 = t2, t1
			}
			if t2 > 0 {
				r.ratio = t1 / t2
			}
		} else {
			_, st, err := runner.Run(v, args)
			if err != nil {
				return nil, fmt.Errorf("consistency %s: %w", b.Name, err)
			}
			r.t = clock.Measure(st.Cycles)
			if method == MethodMBR && p.Model != nil {
				r.counts = p.Model.CountsFor(st.Counters)
			}
		}
		stream = append(stream, r)
	}

	newRow := func(context string) ConsistencyRow {
		return ConsistencyRow{
			Benchmark:   b.Name,
			Section:     b.TSName,
			Method:      method,
			Context:     context,
			Invocations: ds.NumInvocations,
			Windows:     map[int]WindowStat{},
		}
	}

	switch method {
	case MethodRBR:
		vals := make([]float64, 0, len(stream))
		for _, r := range stream {
			vals = append(vals, r.ratio)
		}
		row := newRow("")
		for _, w := range windows {
			ratings := windowMeans(vals, w, cfg)
			mu, sigma := stats.RatingError(ratings, false)
			row.Windows[w] = WindowStat{Mu: mu, Sigma: sigma, N: len(ratings)}
		}
		return []ConsistencyRow{row}, nil

	case MethodAVG:
		vals := make([]float64, 0, len(stream))
		for _, r := range stream {
			vals = append(vals, r.t)
		}
		row := newRow("")
		for _, w := range windows {
			ratings := windowMeans(vals, w, cfg)
			mu, sigma := stats.RatingError(ratings, true)
			row.Windows[w] = WindowStat{Mu: mu, Sigma: sigma, N: len(ratings)}
		}
		return []ConsistencyRow{row}, nil

	case MethodCBR:
		// One row per context, most time-consuming first (the paper shows
		// up to three contexts per section).
		keys := contextOrder(p)
		var rows []ConsistencyRow
		for ci, key := range keys {
			label := ""
			if len(keys) > 1 {
				label = fmt.Sprintf("Context %d", ci+1)
			}
			row := newRow(label)
			var vals []float64
			for _, r := range stream {
				if r.key == key {
					vals = append(vals, r.t)
				}
			}
			for _, w := range windows {
				ratings := windowMeans(vals, w, cfg)
				mu, sigma := stats.RatingError(ratings, true)
				row.Windows[w] = WindowStat{Mu: mu, Sigma: sigma, N: len(ratings)}
			}
			rows = append(rows, row)
			if ci == 2 {
				break
			}
		}
		return rows, nil

	case MethodMBR:
		row := newRow("")
		for _, w := range windows {
			var ratings []float64
			for start := 0; start+w <= len(stream); start += w {
				var x [][]float64
				var y []float64
				for _, r := range stream[start : start+w] {
					x = append(x, r.counts)
					y = append(y, r.t)
				}
				res, err := regress.Solve(x, y)
				if err != nil {
					continue
				}
				ratings = append(ratings, mbrEval(res.Coef, p))
			}
			mu, sigma := stats.RatingError(ratings, true)
			row.Windows[w] = WindowStat{Mu: mu, Sigma: sigma, N: len(ratings)}
		}
		return []ConsistencyRow{row}, nil
	}
	return nil, fmt.Errorf("consistency: unsupported method %s", method)
}

// windowMeans chops the value stream into consecutive windows of size w and
// returns each window's outlier-rejected mean — the sampled ratings V_i.
func windowMeans(vals []float64, w int, cfg *Config) []float64 {
	var out []float64
	for start := 0; start+w <= len(vals); start += w {
		kept, _, _ := stats.RejectOutliers(vals[start:start+w], cfg.OutlierK)
		out = append(out, stats.Mean(kept))
	}
	return out
}

func contextOrder(p *profiling.Profile) []string {
	type kv struct {
		key    string
		cycles int64
	}
	var list []kv
	for k, st := range p.Contexts {
		list = append(list, kv{k, st.TotalCycles})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].cycles != list[j].cycles {
			return list[i].cycles > list[j].cycles
		}
		return list[i].key < list[j].key
	})
	keys := make([]string, len(list))
	for i, e := range list {
		keys[i] = e.key
	}
	return keys
}

func mbrEval(coef []float64, p *profiling.Profile) float64 {
	eval := 0.0
	for i, c := range coef {
		if i < len(p.CAvg) {
			eval += c * p.CAvg[i]
		}
	}
	return eval
}
