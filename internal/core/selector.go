package core

import (
	"fmt"
	"math/rand"
	"sort"

	"peak/internal/bench"
	"peak/internal/machine"
	"peak/internal/opt"
	"peak/internal/sim"
)

// SectionStat reports one candidate tuning section's share of a profiled
// program run (the TS Selector's evidence, paper §4.1).
type SectionStat struct {
	Name        string
	Invocations int
	TotalCycles int64
	// Share is the fraction of whole-program time (candidate cycles plus
	// the composite's non-TS time) this candidate consumes.
	Share float64
	// Selected marks candidates the selector kept.
	Selected bool
}

// SelectorConfig tunes the TS Selector.
type SelectorConfig struct {
	// CoverageTarget stops selecting once the chosen sections cover this
	// fraction of the total candidate time (default 0.9).
	CoverageTarget float64
	// MinShare drops candidates below this fraction of whole-program time
	// — too small to repay tuning (default 0.05).
	MinShare float64
	// Seed drives the profiling run.
	Seed int64
}

// DefaultSelectorConfig mirrors the paper's "most time-consuming functions"
// criterion.
func DefaultSelectorConfig() SelectorConfig {
	return SelectorConfig{CoverageTarget: 0.9, MinShare: 0.05, Seed: 2004}
}

// SelectSections runs the composite program once (all candidates compiled
// under "-O3") and returns every candidate's statistics, most expensive
// first, with the selector's choices marked: candidates are taken in
// descending time order until CoverageTarget of the candidate time is
// covered, skipping any below MinShare of whole-program time.
func SelectSections(c *bench.Composite, m *machine.Machine, cfg SelectorConfig) ([]SectionStat, error) {
	if cfg.CoverageTarget == 0 {
		cfg.CoverageTarget = 0.9
	}
	versions := map[string]*sim.Version{}
	for _, name := range c.Candidates {
		fn, ok := c.Prog.Funcs[name]
		if !ok {
			return nil, fmt.Errorf("select: candidate %q not in program", name)
		}
		v, err := opt.Compile(c.Prog, fn, opt.O3(), m)
		if err != nil {
			return nil, fmt.Errorf("select: compile %s: %w", name, err)
		}
		versions[name] = v
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	mem := sim.NewMemory(c.Prog)
	if c.Setup != nil {
		c.Setup(mem, rng)
	}
	runner := sim.NewRunner(m, mem, cfg.Seed^0x5eed)

	stats := map[string]*SectionStat{}
	for _, name := range c.Candidates {
		stats[name] = &SectionStat{Name: name}
	}
	for i := 0; i < c.NumInvocations; i++ {
		name, args := c.Next(i, mem, rng)
		v, ok := versions[name]
		if !ok {
			return nil, fmt.Errorf("select: schedule invoked unknown function %q", name)
		}
		_, st, err := runner.Run(v, args)
		if err != nil {
			return nil, fmt.Errorf("select: %s invocation %d: %w", name, i, err)
		}
		s := stats[name]
		s.Invocations++
		s.TotalCycles += st.Cycles
	}

	var out []SectionStat
	var candidateTotal int64
	for _, name := range c.Candidates {
		out = append(out, *stats[name])
		candidateTotal += stats[name].TotalCycles
	}
	programTotal := candidateTotal + c.NonTSCycles
	for i := range out {
		if programTotal > 0 {
			out[i].Share = float64(out[i].TotalCycles) / float64(programTotal)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalCycles != out[j].TotalCycles {
			return out[i].TotalCycles > out[j].TotalCycles
		}
		return out[i].Name < out[j].Name
	})

	var covered int64
	for i := range out {
		if candidateTotal > 0 && float64(covered)/float64(candidateTotal) >= cfg.CoverageTarget {
			break
		}
		if out[i].Share < cfg.MinShare {
			continue
		}
		out[i].Selected = true
		covered += out[i].TotalCycles
	}
	return out, nil
}
