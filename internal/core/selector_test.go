package core

import (
	"math/rand"
	"testing"

	"peak/internal/bench"
	"peak/internal/ir"
	"peak/internal/irbuild"
	"peak/internal/machine"
	"peak/internal/profiling"
	"peak/internal/sim"
)

// composite builds a three-kernel program: a heavy stencil, a medium
// reduction, and a trivial accessor (the classic "not worth tuning" case).
func composite() *bench.Composite {
	prog := ir.NewProgram()
	prog.AddArray("cu", ir.F64, 1024)
	prog.AddArray("cv", ir.F64, 1024)

	hb := irbuild.NewFunc("heavy")
	hb.ScalarParam("n", ir.I64)
	prog.AddFunc(hb.Body(
		hb.For("i", hb.I(1), hb.Sub(hb.V("n"), hb.I(1)), 1,
			hb.Set(hb.At("cv", hb.V("i")),
				hb.FAdd(hb.At("cu", hb.Sub(hb.V("i"), hb.I(1))),
					hb.FAdd(hb.At("cu", hb.V("i")), hb.At("cu", hb.Add(hb.V("i"), hb.I(1)))))),
		),
	))

	mb := irbuild.NewFunc("medium")
	mb.ScalarParam("n", ir.I64).Local("s", ir.F64)
	prog.AddFunc(mb.Body(
		mb.For("i", mb.I(0), mb.V("n"), 1,
			mb.Set(mb.V("s"), mb.FAdd(mb.V("s"), mb.At("cu", mb.V("i")))),
		),
		mb.Ret(mb.V("s")),
	))

	tb := irbuild.NewFunc("trivial")
	tb.ScalarParam("i", ir.I64)
	prog.AddFunc(tb.Body(tb.Ret(tb.At("cu", tb.V("i")))))

	return &bench.Composite{
		Name:           "COMPOSITE",
		Prog:           prog,
		Candidates:     []string{"heavy", "medium", "trivial"},
		NumInvocations: 900,
		Setup: func(mem *sim.Memory, rng *rand.Rand) {
			d := mem.Get("cu").Data
			for i := range d {
				d[i] = rng.Float64()
			}
		},
		Next: func(i int, mem *sim.Memory, rng *rand.Rand) (string, []float64) {
			switch i % 3 {
			case 0:
				return "heavy", []float64{900}
			case 1:
				return "medium", []float64{220}
			default:
				return "trivial", []float64{float64(i % 1000)}
			}
		},
		NonTSCycles: 200_000,
	}
}

func TestSelectSections(t *testing.T) {
	c := composite()
	stats, err := SelectSections(c, machine.SPARCII(), DefaultSelectorConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 3 {
		t.Fatalf("stats = %d, want 3", len(stats))
	}
	if stats[0].Name != "heavy" || !stats[0].Selected {
		t.Errorf("heaviest candidate %q (selected=%v), want heavy selected", stats[0].Name, stats[0].Selected)
	}
	for _, s := range stats {
		if s.Name == "trivial" && s.Selected {
			t.Error("trivial accessor must not be worth tuning")
		}
		if s.Invocations != 300 {
			t.Errorf("%s invocations = %d, want 300", s.Name, s.Invocations)
		}
	}
	// Shares sum below 1 (non-TS time holds the rest) and are ordered.
	var sum float64
	for _, s := range stats {
		sum += s.Share
	}
	if sum >= 1 {
		t.Errorf("candidate shares sum to %v, want < 1 with non-TS time", sum)
	}
	if stats[0].Share < stats[1].Share || stats[1].Share < stats[2].Share {
		t.Error("stats not sorted by share")
	}
}

func TestSelectSectionsErrors(t *testing.T) {
	c := composite()
	c.Candidates = append(c.Candidates, "ghost")
	if _, err := SelectSections(c, machine.SPARCII(), DefaultSelectorConfig()); err == nil {
		t.Error("unknown candidate accepted")
	}
}

// TestCompositeSectionTunes: a selected section converts into a standalone
// Benchmark that runs through the normal PEAK pipeline.
func TestCompositeSectionTunes(t *testing.T) {
	c := composite()
	b := c.Section("heavy", bench.FP)
	if b.TSName != "heavy" || b.Prog.Funcs["heavy"] != b.TS {
		t.Fatal("section extraction broken")
	}
	m := machine.SPARCII()
	p, err := profiling.Run(b, b.Train, m)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	app := Consult(p, &cfg)
	if !app.Has(MethodRBR) {
		t.Error("section must at least support RBR")
	}
}
