package core

import (
	"math/rand"
	"testing"

	"peak/internal/machine"
	"peak/internal/profiling"
	"peak/internal/sim"
)

// TestConsistencyAVGAndCBRPaths covers the AVG row and the per-context CBR
// rows of the consistency experiment on a controlled workload.
func TestConsistencyAVGAndCBRPaths(t *testing.T) {
	b := tinyBenchmark()
	m := machine.SPARCII()
	p, err := profiling.Run(b, b.Train, m)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()

	avgRows, err := Consistency(b, m, p, MethodAVG, []int{10, 30}, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(avgRows) != 1 || avgRows[0].Method != MethodAVG {
		t.Fatalf("AVG rows: %+v", avgRows)
	}
	if avgRows[0].Windows[10].N == 0 {
		t.Error("AVG collected no ratings")
	}

	cbrRows, err := Consistency(b, m, p, MethodCBR, []int{10, 30}, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One context: a single unlabeled row.
	if len(cbrRows) != 1 || cbrRows[0].Context != "" {
		t.Fatalf("CBR rows: %+v", cbrRows)
	}
	// With one context AVG and CBR see the same invocations, so their
	// deviations are comparable (the paper's SWIM/EQUAKE equivalence).
	aw, cw := avgRows[0].Windows[30], cbrRows[0].Windows[30]
	if aw.N != cw.N {
		t.Errorf("AVG and CBR window counts differ on a single context: %d vs %d", aw.N, cw.N)
	}

	mbrRows, err := Consistency(b, m, p, MethodMBR, []int{10}, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(mbrRows) != 1 || mbrRows[0].Windows[10].N == 0 {
		t.Fatalf("MBR rows: %+v", mbrRows)
	}
}

// TestConsistencyMultiContextRows: a workload with three contexts yields
// labeled per-context rows ordered by total time (the paper's APSI
// presentation).
func TestConsistencyMultiContextRows(t *testing.T) {
	b := tinyBenchmark()
	sizes := []float64{96, 48, 16}
	b.Train.Args = func(i int, mem *sim.Memory, rng *rand.Rand) []float64 {
		return []float64{sizes[i%len(sizes)]}
	}
	b.Train.NumInvocations = 900
	m := machine.SPARCII()
	p, err := profiling.Run(b, b.Train, m)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumContexts() != 3 {
		t.Fatalf("contexts = %d, want 3", p.NumContexts())
	}
	cfg := DefaultConfig()
	rows, err := Consistency(b, m, p, MethodCBR, []int{20}, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for i, r := range rows {
		if r.Context == "" {
			t.Errorf("row %d missing context label", i)
		}
		if r.Windows[20].N == 0 {
			t.Errorf("row %d (%s) collected no ratings", i, r.Context)
		}
	}
}
